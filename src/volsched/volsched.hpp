#pragma once
/// \file volsched.hpp
/// Umbrella header of the volsched public API.  One include gives you:
///
///  - the scheduler registry + spec grammar  (api/registry.hpp, api/spec.hpp)
///  - checkpoint/restart policies + registry (ckpt/)
///  - the fluent Simulation builder          (api/simulation_builder.hpp)
///  - the fluent Experiment builder          (api/experiment_builder.hpp)
///  - sharded, resumable campaigns + sinks   (api/campaign_builder.hpp,
///                                            exp/campaign.hpp, exp/sink.hpp)
///  - the curated paper name lists / shim    (core/factory.hpp)
///  - the simulation engine and platform     (sim/engine.hpp)
///  - availability: Markov chains, chain generators, realized RLE traces,
///    trace replay and empirical fitting     (markov/, trace/)
///  - experiment scenarios, sweeps, reports  (exp/)
///  - the off-line clairvoyant toolkit       (offline/)
///  - observability: metric registry, sim-time tracer, campaign
///    heartbeat                              (obs/, exp/status.hpp)
///  - CLI / RNG / table utilities            (util/)
///
/// Typical use (see examples/quickstart.cpp and API.md):
///
///   #include "volsched/volsched.hpp"
///   using namespace volsched;
///
///   auto simulation = sim::Simulation::builder()
///                         .platform(pf).markov(chains).seed(42).build();
///   auto sched = api::SchedulerRegistry::instance().make("thr50:emct");
///   auto metrics = simulation.run(*sched);

#include "api/campaign_builder.hpp"
#include "api/experiment_builder.hpp"
#include "api/registry.hpp"
#include "api/simulation_builder.hpp"
#include "api/spec.hpp"

#include "core/factory.hpp"

#include "ckpt/policies.hpp"
#include "ckpt/policy.hpp"
#include "ckpt/registry.hpp"

#include "sim/action_trace.hpp"
#include "sim/engine.hpp"
#include "sim/events.hpp"
#include "sim/metrics.hpp"
#include "sim/metrics_io.hpp"
#include "sim/platform.hpp"
#include "sim/scheduler.hpp"
#include "sim/timeline.hpp"

#include "markov/availability.hpp"
#include "markov/chain.hpp"
#include "markov/expectation.hpp"
#include "markov/gen.hpp"
#include "markov/io.hpp"
#include "markov/realized_trace.hpp"

#include "trace/empirical.hpp"
#include "trace/replay.hpp"
#include "trace/semi_markov.hpp"
#include "trace/sojourn.hpp"

#include "exp/campaign.hpp"
#include "exp/dfb.hpp"
#include "exp/index_sink.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/shape.hpp"
#include "exp/sink.hpp"
#include "exp/status.hpp"
#include "exp/sweep.hpp"

#include "obs/registry.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace.hpp"

#include "offline/bounds.hpp"
#include "offline/exact.hpp"
#include "offline/instance.hpp"
#include "offline/mct.hpp"
#include "offline/render.hpp"
#include "offline/sat.hpp"
#include "offline/schedule.hpp"

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
