#pragma once
/// \file runner.hpp
/// Runs a set of heuristics against one problem instance (scenario x trial
/// seed): every heuristic faces the identical availability realization, so
/// per-instance degradation-from-best is well defined.  The realization is
/// sampled once per instance into a markov::RealizedTraces snapshot and
/// replayed by every heuristic (sampling cost amortized across the set).

#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "sim/engine.hpp"

namespace volsched::exp {

struct InstanceOutcome {
    /// makespans[i] for heuristic i (engine horizon when not completed).
    std::vector<long long> makespans;
    std::vector<sim::RunMetrics> metrics;
};

/// Simulation knobs shared by a whole sweep.
struct RunConfig {
    int iterations = 10;
    int replica_cap = 2;
    long long max_slots = 2'000'000;
    sim::SchedulerClass plan_class = sim::SchedulerClass::Dynamic;
    /// Engine dead-stretch fast-forward (results identical either way;
    /// only consulted by the slot loop — see event_driven).
    bool skip_dead_slots = true;
    /// Engine stepping core (default: the event-driven core; false runs
    /// the reference slot loop; results identical either way).
    bool event_driven = true;
    /// Per-slot invariant auditing (slow; results identical either way).
    bool audit = false;
    /// Master transfer slot-units per checkpoint upload (only consulted
    /// when a scenario's checkpoint spec is not "none").
    int checkpoint_cost = 1;
};

/// Runs each heuristic (by factory name) once on the given realized
/// scenario with the trial-specific seed, under the checkpoint policy named
/// by `checkpoint` ("none" reproduces the paper's model bit-exactly).
InstanceOutcome run_instance(const RealizedScenario& rs, int tasks,
                             const std::vector<std::string>& heuristics,
                             const RunConfig& cfg, std::uint64_t trial_seed,
                             const std::string& checkpoint = "none");

} // namespace volsched::exp
