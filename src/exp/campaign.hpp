#pragma once
/// \file campaign.hpp
/// Campaign-scale sweeps: the Table-1 grid split into shards that run on
/// independent machines, stream per-instance records to durable sinks,
/// checkpoint their progress atomically, resume after interruption without
/// recomputation or duplicate records, and merge back into the paper's
/// overall / by-wmin / by-tasks / by-ncom tables **bit-identically** to a
/// single unsharded run_sweep.
///
/// Three properties make that possible:
///
///  1. *Shard-invariant seeding.*  Every scenario and trial derives its RNG
///     streams from (master seed, global grid ordinal, trial index) — never
///     from the shard, batch, or thread that happens to run it.  Shard k of
///     N takes the ordinals congruent to k-1 mod N (round-robin keeps the
///     grid cells balanced), so the union of shard outputs is exactly the
///     unsharded instance set.
///
///  2. *Deterministic emission.*  Jobs run on a thread pool, but a single
///     emitter — the only thread that touches the sinks — writes records
///     strictly in (ordinal, trial) order, so a shard's JSONL file is
///     byte-identical across runs, thread counts, and execution modes
///     (pipeline or barrier batches).
///
///  3. *Canonical aggregation.*  The merge step replays records through the
///     exact reduction run_sweep performs (per-job DfbTable built in trial
///     order, merged in ordinal order), so the floating-point operation
///     sequence — and therefore every digit of the tables — matches.
///
/// Durability model: after every `checkpoint_jobs` scenario draws the
/// runner flushes the sinks and atomically replaces the MANIFEST file
/// (fingerprint, jobs done, per-sink byte offsets).  On resume the sinks
/// are truncated to the manifest's offsets, discarding any torn tail a
/// killed process left behind, and the shard-local tables are rebuilt by
/// replaying the surviving records.

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exp/sink.hpp"
#include "exp/sweep.hpp"

namespace volsched::util {
class ThreadPool;
} // namespace volsched::util

namespace volsched::exp {

/// A campaign is a sweep plus sharding, output, and checkpoint knobs.
struct CampaignConfig {
    SweepConfig sweep;
    std::vector<std::string> heuristics;
    /// Shard output directory; receives records.jsonl, optionally
    /// records.csv, and MANIFEST.
    std::filesystem::path directory;
    int shard_index = 1; ///< 1-based k of shard_count
    int shard_count = 1;
    /// Checkpoint cadence in scenario draws (jobs); also the unit of work
    /// lost on a kill.  Larger batches amortize the flush + manifest write.
    int checkpoint_jobs = 8;
    bool write_csv = false; ///< records.csv next to the JSONL stream
    /// Pick up an existing MANIFEST in `directory` (fingerprint-checked);
    /// false starts fresh, discarding previous outputs.
    bool resume = true;
    /// Stop after this many checkpoint batches (0: run to completion).
    /// Supports time-sliced operation and the kill/resume tests.
    int stop_after_batches = 0;
    /// Execution mode.  True (default) runs the barrier-free completion
    /// pipeline: workers pull jobs from a shared cursor and run ahead past
    /// checkpoint boundaries while the driver thread — the dedicated
    /// emitter — drains finished jobs strictly in (ordinal, trial) order
    /// through the sinks, so stragglers stall neither the pool nor the
    /// I/O overlap.  False keeps the historical barrier loop (parallel_for
    /// per batch, then serial emit) for same-binary A/B benchmarking.
    /// Outputs are byte-identical either way.
    bool pipeline = true;
    /// Pipeline run-ahead bound, in jobs in flight or finished-but-unemitted
    /// (i.e. peak buffered records is pipeline_window x trials).  0 picks
    /// max(checkpoint_jobs, 2 x pool size).
    int pipeline_window = 0;
    /// Optional externally owned worker pool, shared between the in-process
    /// shard drivers of run_parallel_campaign; null makes the campaign
    /// create its own.  A shared pool requires pipeline mode: the barrier
    /// loop's parallel_for is a whole-pool barrier and would deadlock or
    /// serialize other drivers.
    util::ThreadPool* pool = nullptr;
    /// Keep an atomically-replaced status.json heartbeat in the shard
    /// directory (exp/status.hpp): live progress, pipeline occupancy, and
    /// wall-clock stage timings for `volsched_campaign status` and other
    /// observers.  Purely operational — results are byte-identical with the
    /// heartbeat on or off.
    bool heartbeat = false;
};

struct CampaignResult {
    /// Shard-local aggregate tables (resumed records included).
    SweepResult tables;
    long long jobs_total = 0;
    long long jobs_done = 0;
    long long instances_done = 0;
    bool complete = false;
    std::filesystem::path jsonl_path;

    explicit CampaignResult(std::vector<std::string> names)
        : tables(std::move(names)) {}
};

/// The deterministic shard planner: jobs of the full grid whose ordinal is
/// congruent to shard_index-1 modulo shard_count.  Throws
/// std::invalid_argument on an out-of-range shard.
std::vector<GridJob> shard_jobs(const SweepConfig& cfg, int shard_index,
                                int shard_count);

/// Order-sensitive hash of everything that determines campaign results
/// (grid axes, counts, engine knobs, master seed, heuristic specs) —
/// deliberately excluding shard index and thread count.  Guards resume and
/// merge against mixing incompatible runs.
std::uint64_t campaign_fingerprint(const SweepConfig& cfg,
                                   const std::vector<std::string>& heuristics);

/// Self-description written as the first line of every shard JSONL file:
/// the full sweep configuration, heuristic list, shard position, and
/// fingerprint, so merge/status need no side-channel configuration.
std::string campaign_header_line(const CampaignConfig& cfg);

struct CampaignHeader {
    SweepConfig sweep; ///< progress/record hooks empty, threads defaulted
    std::vector<std::string> heuristics;
    int shard_index = 1;
    int shard_count = 1;
    std::uint64_t fingerprint = 0;
};

/// Strict inverse of campaign_header_line; recomputes the fingerprint from
/// the parsed configuration and throws std::invalid_argument when it does
/// not match the stored one (tampered or version-skewed file).
CampaignHeader parse_campaign_header(const std::string& line);

/// Compact progress manifest, replaced atomically at every checkpoint.
struct CampaignManifest {
    std::uint64_t fingerprint = 0;
    int shard_index = 1;
    int shard_count = 1;
    long long jobs_done = 0;
    long long jobs_total = 0;
    long long instances_done = 0;
    std::uint64_t jsonl_bytes = 0;
    std::uint64_t csv_bytes = 0; ///< 0 when the CSV sink is disabled
    bool complete = false;
};

std::filesystem::path manifest_path(const std::filesystem::path& dir);
void write_manifest(const std::filesystem::path& dir,
                    const CampaignManifest& m);
/// std::nullopt when no manifest exists; throws on a malformed one.
std::optional<CampaignManifest>
read_manifest(const std::filesystem::path& dir);

/// Runs (or resumes) one shard of the campaign.  Returns after the shard
/// completes or after `stop_after_batches` checkpoints.  Throws
/// std::runtime_error when an existing manifest does not match the
/// configuration (fingerprint or shard position).
CampaignResult run_campaign(const CampaignConfig& cfg);

/// All shards of an N-shard campaign driven from one process.
struct ParallelCampaignResult {
    std::vector<CampaignResult> shards; ///< in shard_index order, 1..N
    long long jobs_total = 0;
    long long jobs_done = 0;
    long long instances_done = 0;
    bool complete = false;
};

/// Runs every shard of the campaign in-process: `base.shard_count` shard
/// drivers (base.shard_index is ignored), each writing its own sink set and
/// manifest under `base.directory`/shard-k-of-N, all sharing one worker
/// pool sized by base.sweep.threads.  Because seeding is shard-invariant
/// and each shard has its own single-threaded emitter, per-shard outputs
/// are byte-identical to N separate single-shard processes.  Progress is
/// aggregated across shards before reaching base.sweep.progress; the
/// base.sweep.record hook, if any, is serialized across the shard emitters
/// (records arrive shard-interleaved, each shard in order).  Requires
/// pipeline mode (the barrier loop cannot share a pool).  The first shard
/// failure (by shard index) is rethrown after all drivers stop.
ParallelCampaignResult run_parallel_campaign(const CampaignConfig& base);

/// Canonical aggregation: validates that `records` is exactly the full
/// grid's instance set (no missing, duplicate, or foreign records; seeds
/// and makespan arities cross-checked) and replays it through run_sweep's
/// reduction.  The result is bit-identical to run_sweep(cfg, heuristics).
SweepResult aggregate_records(const SweepConfig& cfg,
                              const std::vector<std::string>& heuristics,
                              const std::vector<InstanceRecord>& records);

/// Reads shard JSONL files (headers must agree on the fingerprint) and
/// aggregates them canonically via a streaming k-way merge: shard files are
/// already emitted in (ordinal, trial) order and the round-robin planner
/// assigns each ordinal to exactly one shard, so the merge walks the grid,
/// pulls each job's trials from the owning shard's stream, and reduces
/// online through merge_job_tables.  Bit-identical to the unsharded
/// run_sweep; peak memory is O(shards + grid jobs), never O(records).
/// Throws when shards are missing, duplicated, or inconsistent.
SweepResult merge_shards(const std::vector<std::filesystem::path>& jsonl_files);

/// Reads one shard JSONL file: header + records.
std::pair<CampaignHeader, std::vector<InstanceRecord>>
read_shard_records(const std::filesystem::path& jsonl_file);

/// Directory layout helpers: a campaign root holds one sub-directory per
/// shard, named shard-<k>-of-<N>.
std::string shard_directory_name(int shard_index, int shard_count);
/// Shard directories under `root` (sorted by name); only directories that
/// contain a records.jsonl count.
std::vector<std::filesystem::path>
find_shard_directories(const std::filesystem::path& root);

} // namespace volsched::exp
