#include "exp/shape.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace volsched::exp {
namespace {

/// Index of `name` in the sweep's heuristic list; throws when missing so a
/// mis-wired bench fails loudly rather than checking the wrong column.
std::size_t index_of(const SweepResult& result, const std::string& name) {
    for (std::size_t h = 0; h < result.heuristics.size(); ++h)
        if (result.heuristics[h] == name) return h;
    throw std::invalid_argument("shape check: heuristic '" + name +
                                "' not in this sweep");
}

double dfb_of(const SweepResult& result, const std::string& name) {
    return result.overall.mean_dfb(index_of(result, name));
}

/// Mean dfb across a family of heuristic names.
double family_dfb(const SweepResult& result,
                  std::initializer_list<const char*> names) {
    double sum = 0.0;
    for (const char* name : names) sum += dfb_of(result, name);
    return sum / static_cast<double>(names.size());
}

ShapeCheck less_than(std::string description, double lhs, double rhs) {
    return {std::move(description), lhs < rhs, lhs, rhs};
}

} // namespace

std::vector<ShapeCheck> check_table2_shape(const SweepResult& result) {
    std::vector<ShapeCheck> checks;
    const double emct = family_dfb(result, {"emct", "emct*"});
    const double mct = family_dfb(result, {"mct", "mct*"});
    const double ud = family_dfb(result, {"ud", "ud*"});
    const double lw = family_dfb(result, {"lw", "lw*"});
    checks.push_back(less_than("EMCT family beats MCT family", emct, mct));
    checks.push_back(less_than("MCT family beats UD family", mct, ud));
    checks.push_back(less_than("UD family beats LW family", ud, lw));

    for (const char* base : {"random1", "random2", "random3", "random4"}) {
        const std::string weighted = std::string(base) + "w";
        checks.push_back(less_than(weighted + " beats " + base,
                                   dfb_of(result, weighted),
                                   dfb_of(result, base)));
    }

    double worst_greedy = 0.0;
    for (const char* g : {"mct", "mct*", "emct", "emct*", "ud", "ud*", "lw",
                          "lw*"})
        worst_greedy = std::max(worst_greedy, dfb_of(result, g));
    double best_random = 1e300;
    for (const char* r : {"random", "random1", "random2", "random3",
                          "random4", "random1w", "random2w", "random3w",
                          "random4w"})
        best_random = std::min(best_random, dfb_of(result, r));
    checks.push_back(less_than("every greedy beats every random",
                               worst_greedy, best_random));

    long long emct_wins =
        result.overall.wins(index_of(result, "emct")) +
        result.overall.wins(index_of(result, "emct*"));
    long long max_other = 0;
    for (std::size_t h = 0; h < result.heuristics.size(); ++h) {
        if (result.heuristics[h] == "emct" || result.heuristics[h] == "emct*")
            continue;
        max_other = std::max(max_other, result.overall.wins(h));
    }
    checks.push_back(less_than("EMCT family collects the most wins",
                               static_cast<double>(max_other),
                               static_cast<double>(emct_wins)));
    return checks;
}

std::vector<ShapeCheck> check_figure2_shape(const SweepResult& result) {
    std::vector<ShapeCheck> checks;
    if (result.by_wmin.empty())
        throw std::invalid_argument("shape check: empty by_wmin series");
    const auto e = index_of(result, "emct");
    const auto m = index_of(result, "mct");
    const auto ud = index_of(result, "ud*");
    const auto lw = index_of(result, "lw*");

    bool crossover = false;
    for (const auto& [wmin, table] : result.by_wmin)
        crossover |= table.mean_dfb(e) < table.mean_dfb(m);
    checks.push_back({"EMCT dips below MCT at some wmin", crossover, 0, 0});

    // Upper half of the wmin range: EMCT below MCT on average.
    const int w_lo = result.by_wmin.begin()->first;
    const int w_hi = result.by_wmin.rbegin()->first;
    const int mid = (w_lo + w_hi) / 2;
    double emct_hi = 0, mct_hi = 0;
    int cells = 0;
    for (const auto& [wmin, table] : result.by_wmin) {
        if (wmin <= mid) continue;
        emct_hi += table.mean_dfb(e);
        mct_hi += table.mean_dfb(m);
        ++cells;
    }
    if (cells > 0)
        checks.push_back(less_than("EMCT below MCT on the large-wmin half",
                                   emct_hi / cells, mct_hi / cells));

    const auto& first = result.by_wmin.begin()->second;
    const auto& last = result.by_wmin.rbegin()->second;
    checks.push_back(less_than("UD* improves from wmin=min to wmin=max",
                               last.mean_dfb(ud), first.mean_dfb(ud)));
    checks.push_back(less_than("LW* improves from wmin=min to wmin=max",
                               last.mean_dfb(lw), first.mean_dfb(lw)));
    return checks;
}

std::vector<ShapeCheck> check_table3_shape(const SweepResult& x5,
                                           const SweepResult& x10) {
    std::vector<ShapeCheck> checks;
    auto best_name = [](const SweepResult& r) {
        std::size_t best = 0;
        for (std::size_t h = 1; h < r.heuristics.size(); ++h)
            if (r.overall.mean_dfb(h) < r.overall.mean_dfb(best)) best = h;
        return r.heuristics[best];
    };
    const auto b5 = best_name(x5);
    checks.push_back({"x5: an EMCT-family member is best (got " + b5 + ")",
                      b5 == "emct" || b5 == "emct*", 0, 0});
    const auto b10 = best_name(x10);
    checks.push_back({"x10: a UD-family member is best (got " + b10 + ")",
                      b10 == "ud" || b10 == "ud*", 0, 0});

    const double mct10 = dfb_of(x10, "mct");
    double worst_other = 0.0, best10 = 1e300;
    for (const auto& h : x10.heuristics) {
        best10 = std::min(best10, dfb_of(x10, h));
        if (h != "mct" && h != "mct*")
            worst_other = std::max(worst_other, dfb_of(x10, h));
    }
    checks.push_back(less_than("x10: plain MCT worse than every non-MCT",
                               worst_other, mct10));
    checks.push_back(less_than("x10: plain MCT at least 2x the best dfb",
                               2.0 * best10, mct10));
    return checks;
}

std::string render_checks(const std::vector<ShapeCheck>& checks) {
    std::ostringstream os;
    for (const auto& c : checks) {
        os << (c.passed ? "[PASS] " : "[FAIL] ") << c.description;
        if (c.lhs != 0.0 || c.rhs != 0.0) {
            char buf[64];
            // volsched-lint: allow(R3): shape-check console diagnostic, not a record
            std::snprintf(buf, sizeof buf, "  (%.2f vs %.2f)", c.lhs, c.rhs);
            os << buf;
        }
        os << '\n';
    }
    return os.str();
}

bool all_passed(const std::vector<ShapeCheck>& checks) {
    return std::all_of(checks.begin(), checks.end(),
                       [](const ShapeCheck& c) { return c.passed; });
}

} // namespace volsched::exp
