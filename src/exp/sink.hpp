#pragma once
/// \file sink.hpp
/// Streaming result sinks for experiment campaigns.  Instead of holding
/// every per-instance makespan vector in memory, a sweep streams one
/// InstanceRecord per (scenario, trial) instance into a ResultSink; the
/// JSONL sink is the campaign's durable, self-describing record (and the
/// input to shard merging and resume), the CSV sink is a spreadsheet-
/// friendly export.
///
/// The JSONL line format is canonical — fixed field order, shortest
/// round-trip numbers — so two runs that produce the same instances produce
/// byte-identical files, which is what makes "killed and resumed equals
/// uninterrupted" testable at the byte level.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "exp/scenario.hpp"

namespace volsched::exp {

/// One experiment instance: a scenario draw (identified by its global
/// position in the Table-1 grid enumeration), a trial index, and the
/// per-heuristic makespans (aligned with the campaign's heuristic list).
struct InstanceRecord {
    std::uint64_t scenario_ordinal = 0; ///< grid-global, shard-invariant
    int trial = 0;
    Scenario scenario;
    std::vector<long long> makespans;
};

/// Abstract streaming consumer of instance records.  Implementations are
/// called from one thread at a time (the sweep/campaign drivers serialize
/// emission) and need no locking.
class ResultSink {
public:
    virtual ~ResultSink() = default;
    virtual void write(const InstanceRecord& rec) = 0;
    /// Makes everything written so far durable (file sinks fsync): called
    /// once per checkpoint batch, right before the manifest is replaced.
    virtual void flush() = 0;
};

/// Shared append-to-file machinery: byte-offset accounting (the checkpoint
/// currency) and truncate-to-offset resume.
class FileResultSink : public ResultSink {
public:
    ~FileResultSink() override;

    FileResultSink(const FileResultSink&) = delete;
    FileResultSink& operator=(const FileResultSink&) = delete;

    void write(const InstanceRecord& rec) override;
    void flush() override;

    /// Bytes in the file so far (header included); what a campaign
    /// checkpoint manifest records per sink.
    [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }
    [[nodiscard]] const std::filesystem::path& path() const noexcept {
        return path_;
    }

    /// The resume contract: truncates the file to `offset` bytes — exactly
    /// the state of the last durable checkpoint — and continues appending
    /// from there.  Bytes written after that checkpoint (possibly a torn
    /// line from a killed process) are discarded, so a resumed campaign
    /// adds zero duplicate records.  Throws std::runtime_error if the file
    /// is shorter than `offset`.
    void resume_at(std::uint64_t offset);

protected:
    /// Opens `path` for appending, creating it (plus parent directories)
    /// when absent; `header` is written first iff the file is new/empty.
    FileResultSink(std::filesystem::path path, const std::string& header);

    /// Formats one record as a complete line/row (newline included).
    [[nodiscard]] virtual std::string format(const InstanceRecord& rec)
        const = 0;

private:
    void open_append();
    void append(std::string_view text);

    std::filesystem::path path_;
    std::FILE* file_ = nullptr;
    std::uint64_t offset_ = 0;
};

/// JSON-lines sink: one self-contained object per instance, preceded by a
/// caller-supplied header line (the campaign writes its metadata there).
///
///   {"ordinal":12,"trial":0,"p":20,"tasks":5,"ncom":5,"wmin":1,
///    "tdata_factor":1,"tprog_factor":5,"seed":123,"makespans":[100,120]}
class JsonlSink final : public FileResultSink {
public:
    /// `header_line` (without trailing newline) is written first when the
    /// file is new; pass "" for a headerless stream.
    explicit JsonlSink(std::filesystem::path path,
                       const std::string& header_line = {});

    /// Canonical record line (no trailing newline).
    static std::string format_record(const InstanceRecord& rec);
    /// Strict inverse of format_record; throws std::invalid_argument on
    /// malformed input.  The scenario's chain recipe is the paper default
    /// (records do not carry it).
    static InstanceRecord parse_record(std::string_view line);

protected:
    std::string format(const InstanceRecord& rec) const override;
};

/// CSV sink: header row names the scenario columns and one makespan column
/// per heuristic spec.  `with_checkpoint` adds a checkpoint-policy column
/// (campaigns enable it exactly when their checkpoint axis is non-trivial,
/// so classic-campaign CSVs keep their historical shape).
class CsvSink final : public FileResultSink {
public:
    CsvSink(std::filesystem::path path,
            const std::vector<std::string>& heuristics,
            bool with_checkpoint = false);

    static std::string header_row(const std::vector<std::string>& heuristics,
                                  bool with_checkpoint = false);
    /// One record as a CSV row (no trailing newline) — exactly what the
    /// sink writes; public so `volsched_campaign query --csv` can re-format
    /// JSONL records without a sink instance.
    static std::string format_row(const InstanceRecord& rec,
                                  bool with_checkpoint = false);

protected:
    std::string format(const InstanceRecord& rec) const override;

private:
    bool with_checkpoint_ = false;
};

} // namespace volsched::exp
