#include "exp/sink.hpp"

#include <stdexcept>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "util/csv.hpp"
#include "util/json.hpp"

namespace volsched::exp {

namespace {

[[noreturn]] void io_fail(const std::filesystem::path& path,
                          const char* what) {
    throw std::runtime_error("sink: " + std::string(what) + " '" +
                             path.string() + "'");
}

} // namespace

// ---------------------------------------------------------------------------
// FileResultSink
// ---------------------------------------------------------------------------

FileResultSink::FileResultSink(std::filesystem::path path,
                               const std::string& header)
    : path_(std::move(path)) {
    if (path_.has_parent_path())
        std::filesystem::create_directories(path_.parent_path());
    open_append();
    if (offset_ == 0 && !header.empty()) append(header + "\n");
}

FileResultSink::~FileResultSink() {
    if (file_) std::fclose(file_);
}

void FileResultSink::open_append() {
    file_ = std::fopen(path_.string().c_str(), "ab");
    if (!file_) io_fail(path_, "cannot open");
    offset_ = static_cast<std::uint64_t>(
        std::filesystem::file_size(path_));
}

void FileResultSink::append(std::string_view text) {
    if (std::fwrite(text.data(), 1, text.size(), file_) != text.size())
        io_fail(path_, "write error on");
    offset_ += text.size();
}

void FileResultSink::write(const InstanceRecord& rec) {
    append(format(rec));
}

void FileResultSink::flush() {
    if (std::fflush(file_) != 0) io_fail(path_, "flush error on");
#ifndef _WIN32
    // The checkpoint manifest is fsync'd before its atomic rename; the
    // bytes it vouches for must be just as durable, or a power loss could
    // leave a manifest pointing past the end of the file.
    if (::fsync(::fileno(file_)) != 0) io_fail(path_, "fsync error on");
#endif
}

void FileResultSink::resume_at(std::uint64_t offset) {
    // Validate before touching the open handle: a caller that catches the
    // throw below still holds a usable sink.
    std::fflush(file_);
    const auto size =
        static_cast<std::uint64_t>(std::filesystem::file_size(path_));
    if (size < offset)
        throw std::runtime_error(
            "sink: '" + path_.string() + "' holds " + std::to_string(size) +
            " bytes but the checkpoint expects at least " +
            std::to_string(offset) + "; the output was tampered with");
    std::fclose(file_);
    file_ = nullptr;
    if (size > offset) std::filesystem::resize_file(path_, offset);
    open_append();
}

// ---------------------------------------------------------------------------
// JsonlSink
// ---------------------------------------------------------------------------

JsonlSink::JsonlSink(std::filesystem::path path,
                     const std::string& header_line)
    : FileResultSink(std::move(path), header_line) {}

std::string JsonlSink::format_record(const InstanceRecord& rec) {
    std::string out = "{\"ordinal\":";
    out += std::to_string(rec.scenario_ordinal);
    out += ",\"trial\":";
    out += std::to_string(rec.trial);
    out += ",\"p\":";
    out += std::to_string(rec.scenario.p);
    out += ",\"tasks\":";
    out += std::to_string(rec.scenario.tasks);
    out += ",\"ncom\":";
    out += std::to_string(rec.scenario.ncom);
    out += ",\"wmin\":";
    out += std::to_string(rec.scenario.wmin);
    out += ",\"tdata_factor\":";
    out += util::json::number(rec.scenario.tdata_factor);
    out += ",\"tprog_factor\":";
    out += util::json::number(rec.scenario.tprog_factor);
    out += ",\"seed\":";
    out += std::to_string(rec.scenario.seed);
    if (rec.scenario.checkpoint != "none") {
        // Only written for real checkpoint sweeps, so classic campaigns
        // keep producing byte-identical files (and old files parse back).
        out += ",\"checkpoint\":\"";
        out += util::json::escape(rec.scenario.checkpoint);
        out += '"';
    }
    out += ",\"makespans\":[";
    for (std::size_t h = 0; h < rec.makespans.size(); ++h) {
        if (h) out += ',';
        out += std::to_string(rec.makespans[h]);
    }
    out += "]}";
    return out;
}

InstanceRecord JsonlSink::parse_record(std::string_view line) {
    const auto v = util::json::Value::parse(line);
    InstanceRecord rec;
    rec.scenario_ordinal = v.at("ordinal").as_u64();
    rec.trial = static_cast<int>(v.at("trial").as_i64());
    rec.scenario.p = static_cast<int>(v.at("p").as_i64());
    rec.scenario.tasks = static_cast<int>(v.at("tasks").as_i64());
    rec.scenario.ncom = static_cast<int>(v.at("ncom").as_i64());
    rec.scenario.wmin = static_cast<int>(v.at("wmin").as_i64());
    rec.scenario.tdata_factor = v.at("tdata_factor").as_double();
    rec.scenario.tprog_factor = v.at("tprog_factor").as_double();
    rec.scenario.seed = v.at("seed").as_u64();
    if (const auto* ckpt = v.find("checkpoint"))
        rec.scenario.checkpoint = ckpt->as_string();
    for (const auto& m : v.at("makespans").items())
        rec.makespans.push_back(m.as_i64());
    return rec;
}

std::string JsonlSink::format(const InstanceRecord& rec) const {
    return format_record(rec) + "\n";
}

// ---------------------------------------------------------------------------
// CsvSink
// ---------------------------------------------------------------------------

std::string CsvSink::header_row(const std::vector<std::string>& heuristics,
                                bool with_checkpoint) {
    std::string out = "ordinal,trial,p,tasks,ncom,wmin,tdata_factor,"
                      "tprog_factor,seed";
    if (with_checkpoint) out += ",checkpoint";
    for (const auto& h : heuristics) {
        out += ',';
        // Heuristic specs never contain CSV metacharacters today, but quote
        // defensively (RFC-4180).
        out += util::CsvWriter::escape(h);
    }
    return out;
}

CsvSink::CsvSink(std::filesystem::path path,
                 const std::vector<std::string>& heuristics,
                 bool with_checkpoint)
    : FileResultSink(std::move(path), header_row(heuristics, with_checkpoint)),
      with_checkpoint_(with_checkpoint) {}

std::string CsvSink::format_row(const InstanceRecord& rec,
                                bool with_checkpoint) {
    std::string out = std::to_string(rec.scenario_ordinal);
    out += ',';
    out += std::to_string(rec.trial);
    out += ',';
    out += std::to_string(rec.scenario.p);
    out += ',';
    out += std::to_string(rec.scenario.tasks);
    out += ',';
    out += std::to_string(rec.scenario.ncom);
    out += ',';
    out += std::to_string(rec.scenario.wmin);
    out += ',';
    out += util::json::number(rec.scenario.tdata_factor);
    out += ',';
    out += util::json::number(rec.scenario.tprog_factor);
    out += ',';
    out += std::to_string(rec.scenario.seed);
    if (with_checkpoint) {
        out += ',';
        out += util::CsvWriter::escape(rec.scenario.checkpoint);
    }
    for (long long m : rec.makespans) {
        out += ',';
        out += std::to_string(m);
    }
    return out;
}

std::string CsvSink::format(const InstanceRecord& rec) const {
    return format_row(rec, with_checkpoint_) + "\n";
}

} // namespace volsched::exp
