#pragma once
/// \file dfb.hpp
/// The paper's evaluation metric (Section 7): per-instance degradation from
/// best — the percentage relative difference between a heuristic's makespan
/// and the best makespan achieved on that instance — plus win counting
/// (being (tied-)best on an instance counts as a win).

#include <vector>

#include "util/stats.hpp"

namespace volsched::exp {

/// Accumulates dfb and wins across instances for a fixed heuristic list.
class DfbTable {
public:
    explicit DfbTable(std::size_t num_heuristics);

    /// Ingests one instance's makespans (index-aligned with the heuristic
    /// list).  Zero/negative makespans are invalid and throw.
    void add_instance(const std::vector<long long>& makespans);

    /// Merges another table (parallel sweep reduction).
    void merge(const DfbTable& other);

    [[nodiscard]] std::size_t num_heuristics() const noexcept {
        return dfb_.size();
    }
    [[nodiscard]] long long instances() const noexcept { return instances_; }
    [[nodiscard]] double mean_dfb(std::size_t h) const { return dfb_[h].mean(); }
    [[nodiscard]] const util::Accumulator& dfb(std::size_t h) const {
        return dfb_[h];
    }
    [[nodiscard]] long long wins(std::size_t h) const { return wins_[h]; }
    [[nodiscard]] const util::Accumulator& makespan(std::size_t h) const {
        return makespan_[h];
    }

private:
    std::vector<util::Accumulator> dfb_;
    std::vector<util::Accumulator> makespan_;
    std::vector<long long> wins_;
    long long instances_ = 0;
};

} // namespace volsched::exp
