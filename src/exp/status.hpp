#pragma once
/// \file status.hpp
/// Campaign heartbeat: a small, atomically-replaced `status.json` each
/// shard keeps up to date while it runs, so `volsched_campaign status` (or
/// any observer: a dashboard, a shell loop, another process) can read live
/// progress without touching the shard's data files.
///
/// Atomicity contract: the file is written with util::write_file_atomic
/// (write-to-temp, fsync, rename), so a reader sees either a complete old
/// heartbeat or a complete new one — never a torn JSON.  read_status treats
/// a missing, unreadable, or unparsable file as "no heartbeat" (nullopt),
/// not an error, because a shard killed between rename and exit leaves
/// whatever was last durable.
///
/// Everything in a heartbeat is operational (progress counts, pipeline
/// occupancy, wall-clock stage timings from obs/stopwatch); nothing here
/// feeds results — the determinism rulebook's observer-only contract
/// (ARCHITECTURE.md, "How tracing preserves determinism").

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>

namespace volsched::exp {

/// Aggregate of one pipeline stage's wall-clock samples (microseconds), a
/// flat projection of the obs::Histogram the stage records into.
struct StageStats {
    long long count = 0;
    long long total_us = 0;
    long long max_us = 0;
};

/// One shard's heartbeat.
struct ShardStatus {
    int shard = 0;  ///< this shard's index
    int shards = 1; ///< total shards in the campaign
    long long jobs_done = 0;
    long long jobs_total = 0;
    long long instances_done = 0;
    /// Completion-pipeline occupancy at write time.
    long long queue_depth = 0; ///< completed jobs waiting for the emitter
    long long emitter_lag = 0; ///< submitted - emitted (in-flight + queued)
    long long window = 0;      ///< run-ahead window size (max emitter lag)
    /// "running" while the shard works, "done" after its final flush.
    std::string state = "running";
    /// Per-stage wall-time aggregates (microseconds).
    StageStats run;       ///< simulation of one job on a worker
    StageStats serialize; ///< rendering a job's records to bytes
    StageStats fsync;     ///< checkpoint flush (jsonl/csv/index/manifest)
};

/// The heartbeat's filename inside a shard directory.
[[nodiscard]] std::filesystem::path status_path(
    const std::filesystem::path& shard_dir);

/// Renders `s` as one stable-field-order JSON object (no trailing newline).
[[nodiscard]] std::string status_to_json(const ShardStatus& s);

/// Atomically replaces the shard's status.json.  Throws std::runtime_error
/// on IO failure (same contract as util::write_file_atomic).
void write_status(const std::filesystem::path& shard_dir,
                  const ShardStatus& s);

/// Reads a shard's heartbeat; nullopt when the file is missing or does not
/// parse as a complete heartbeat (a crashed writer's leftovers never make
/// the reader fail).
[[nodiscard]] std::optional<ShardStatus> read_status(
    const std::filesystem::path& shard_dir);

} // namespace volsched::exp
