#include "exp/sweep.hpp"

#include <atomic>
#include <mutex>

#include "api/registry.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace volsched::exp {

std::vector<GridJob> grid_jobs(const SweepConfig& cfg) {
    std::vector<GridJob> jobs;
    jobs.reserve(cfg.checkpoint_values.size() * cfg.tasks_values.size() *
                 cfg.ncom_values.size() * cfg.wmin_values.size() *
                 static_cast<std::size_t>(cfg.scenarios_per_cell));
    // The checkpoint axis is outermost and seeds are derived from the
    // *inner* (classic-grid) ordinal: policies replicate the exact scenario
    // and trial streams, so cross-policy comparisons are same-realization —
    // and with the default single-"none" axis the enumeration, ordinals and
    // seeds are bit-identical to the pre-checkpoint grid.
    std::uint64_t ordinal = 0;
    for (const std::string& ckpt : cfg.checkpoint_values) {
        std::uint64_t seed_ordinal = 0;
        for (int tasks : cfg.tasks_values)
            for (int ncom : cfg.ncom_values)
                for (int wmin : cfg.wmin_values)
                    for (int s = 0; s < cfg.scenarios_per_cell; ++s) {
                        GridJob job;
                        job.scenario.p = cfg.p;
                        job.scenario.tasks = tasks;
                        job.scenario.ncom = ncom;
                        job.scenario.wmin = wmin;
                        job.scenario.tdata_factor = cfg.tdata_factor;
                        job.scenario.tprog_factor = cfg.tprog_factor;
                        job.scenario.checkpoint = ckpt;
                        job.scenario.seed = util::mix_seed(
                            cfg.master_seed, 0x5343u, seed_ordinal);
                        job.ordinal = ordinal++;
                        job.seed_ordinal = seed_ordinal++;
                        jobs.push_back(job);
                    }
    }
    return jobs;
}

SweepResult run_sweep(const SweepConfig& cfg,
                      const std::vector<std::string>& heuristics) {
    // Resolve every spec once up front: a typo fails here with the
    // registry's did-you-mean message instead of throwing mid-sweep on a
    // worker thread.
    for (const auto& name : heuristics)
        api::SchedulerRegistry::instance().validate(name);

    SweepResult result(heuristics);

    const std::vector<GridJob> jobs = grid_jobs(cfg);

    const long long total_instances =
        static_cast<long long>(jobs.size()) * cfg.trials_per_scenario;
    std::atomic<long long> completed{0};

    // Per-job local tables, merged sequentially afterwards so the result is
    // bit-identical regardless of thread interleaving.
    std::vector<DfbTable> local(jobs.size(), DfbTable(heuristics.size()));

    util::ThreadPool pool(cfg.threads);
    std::mutex record_mutex;
    pool.parallel_for(jobs.size(), [&](std::size_t j) {
        const GridJob& job = jobs[j];
        const RealizedScenario rs = realize(job.scenario);
        for (int trial = 0; trial < cfg.trials_per_scenario; ++trial) {
            const std::uint64_t trial_seed =
                util::mix_seed(cfg.master_seed, 0x54524cULL, job.seed_ordinal,
                               static_cast<std::uint64_t>(trial));
            const auto outcome =
                run_instance(rs, job.scenario.tasks, heuristics, cfg.run,
                             trial_seed, job.scenario.checkpoint);
            local[j].add_instance(outcome.makespans);
            if (cfg.record) {
                InstanceRecord rec;
                rec.scenario_ordinal = job.ordinal;
                rec.trial = trial;
                rec.scenario = job.scenario;
                rec.makespans = outcome.makespans;
                std::lock_guard lock(record_mutex);
                cfg.record(rec);
            }
            const long long done = ++completed;
            if (cfg.progress) cfg.progress(done, total_instances);
        }
    });

    for (std::size_t j = 0; j < jobs.size(); ++j)
        merge_job_tables(result, jobs[j].scenario, local[j]);
    return result;
}

void merge_job_tables(SweepResult& result, const Scenario& scenario,
                      const DfbTable& local) {
    const std::size_t num_heuristics = result.heuristics.size();
    auto merge_into = [&](std::map<int, DfbTable>& table, int key) {
        auto [it, inserted] = table.try_emplace(key, num_heuristics);
        it->second.merge(local);
    };
    result.overall.merge(local);
    merge_into(result.by_wmin, scenario.wmin);
    merge_into(result.by_tasks, scenario.tasks);
    merge_into(result.by_ncom, scenario.ncom);
    result.by_checkpoint.try_emplace(scenario.checkpoint, num_heuristics)
        .first->second.merge(local);
}

} // namespace volsched::exp
