#include "exp/sweep.hpp"

#include <atomic>
#include <mutex>

#include "api/registry.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace volsched::exp {
namespace {

struct Job {
    Scenario scenario;
    std::uint64_t scenario_ordinal; // global, seeds the scenario and trials
};

} // namespace

SweepResult run_sweep(const SweepConfig& cfg,
                      const std::vector<std::string>& heuristics) {
    // Resolve every spec once up front: a typo fails here with the
    // registry's did-you-mean message instead of throwing mid-sweep on a
    // worker thread.
    for (const auto& name : heuristics)
        api::SchedulerRegistry::instance().validate(name);

    SweepResult result(heuristics);

    // Enumerate jobs: one per (cell, scenario draw).
    std::vector<Job> jobs;
    std::uint64_t ordinal = 0;
    for (int tasks : cfg.tasks_values)
        for (int ncom : cfg.ncom_values)
            for (int wmin : cfg.wmin_values)
                for (int s = 0; s < cfg.scenarios_per_cell; ++s) {
                    Job job;
                    job.scenario.p = cfg.p;
                    job.scenario.tasks = tasks;
                    job.scenario.ncom = ncom;
                    job.scenario.wmin = wmin;
                    job.scenario.tdata_factor = cfg.tdata_factor;
                    job.scenario.tprog_factor = cfg.tprog_factor;
                    job.scenario.seed =
                        util::mix_seed(cfg.master_seed, 0x5343u, ordinal);
                    job.scenario_ordinal = ordinal++;
                    jobs.push_back(job);
                }

    const long long total_instances =
        static_cast<long long>(jobs.size()) * cfg.trials_per_scenario;
    std::atomic<long long> completed{0};

    // Per-job local tables, merged sequentially afterwards so the result is
    // bit-identical regardless of thread interleaving.
    std::vector<DfbTable> local(jobs.size(), DfbTable(heuristics.size()));

    util::ThreadPool pool(cfg.threads);
    std::mutex record_mutex;
    pool.parallel_for(jobs.size(), [&](std::size_t j) {
        const Job& job = jobs[j];
        const RealizedScenario rs = realize(job.scenario);
        for (int trial = 0; trial < cfg.trials_per_scenario; ++trial) {
            const std::uint64_t trial_seed = util::mix_seed(
                cfg.master_seed, 0x54524cULL, job.scenario_ordinal,
                static_cast<std::uint64_t>(trial));
            const auto outcome = run_instance(rs, job.scenario.tasks,
                                              heuristics, cfg.run, trial_seed);
            local[j].add_instance(outcome.makespans);
            if (cfg.record) {
                std::lock_guard lock(record_mutex);
                cfg.record(job.scenario, trial, outcome.makespans);
            }
            const long long done = ++completed;
            if (cfg.progress) cfg.progress(done, total_instances);
        }
    });

    auto merge_into = [&](std::map<int, DfbTable>& table, int key,
                          const DfbTable& part) {
        auto [it, inserted] = table.try_emplace(key, heuristics.size());
        it->second.merge(part);
    };
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        result.overall.merge(local[j]);
        merge_into(result.by_wmin, jobs[j].scenario.wmin, local[j]);
        merge_into(result.by_tasks, jobs[j].scenario.tasks, local[j]);
        merge_into(result.by_ncom, jobs[j].scenario.ncom, local[j]);
    }
    return result;
}

} // namespace volsched::exp
