#pragma once
/// \file scenario.hpp
/// Experimental scenarios exactly as Section 7 instantiates them:
/// p = 20 processors; availability chains drawn with P(x,x) ~ U[0.90, 0.99]
/// and the remaining mass split evenly; w_q ~ U[wmin, 10*wmin];
/// Tdata = tdata_factor * wmin (paper: 1, contention-prone runs: 5 or 10);
/// Tprog = tprog_factor * wmin (paper: 5, contention-prone: 25 or 50).

#include <cstdint>
#include <string>

#include "markov/chain.hpp"
#include "markov/gen.hpp"
#include "sim/platform.hpp"

namespace volsched::exp {

/// Parameters identifying one experimental scenario (one cell draw).
struct Scenario {
    int p = 20;
    int tasks = 10;  ///< the paper's n: tasks per iteration
    int ncom = 5;
    int wmin = 1;
    double tdata_factor = 1.0;
    double tprog_factor = 5.0;
    /// Checkpoint-policy spec (ckpt/registry.hpp) this scenario runs under;
    /// "none" is the paper's crash-lose-everything model.  A sweep axis:
    /// scenarios differing only here share their seed, so every policy
    /// faces the identical platform draw and availability realization.
    std::string checkpoint = "none";
    /// Availability-chain draw bounds; default is the paper's recipe
    /// (self-transition probability in [0.90, 0.99]).  Lower bounds mean
    /// shorter availability intervals, i.e. a more volatile platform.
    markov::ChainRecipe recipe{};
    std::uint64_t seed = 0; ///< drives chain + speed draws
};

/// A scenario materialized into a platform and per-processor chains.
struct RealizedScenario {
    sim::Platform platform;
    std::vector<markov::MarkovChain> chains;
};

/// Deterministically realizes a scenario from its seed.
RealizedScenario realize(const Scenario& sc);

} // namespace volsched::exp
