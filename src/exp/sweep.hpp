#pragma once
/// \file sweep.hpp
/// The full experimental campaign driver: Table 1 grid x scenarios x trials,
/// each instance run under every heuristic, reduced into overall and
/// per-wmin degradation-from-best tables.  Instances are distributed over a
/// thread pool; every instance derives its own RNG streams from the master
/// seed, so results are independent of thread count and scheduling order.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "exp/dfb.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"

namespace volsched::exp {

struct SweepConfig {
    std::vector<int> tasks_values{5, 10, 20, 40}; ///< paper's n
    std::vector<int> ncom_values{5, 10, 20};
    std::vector<int> wmin_values{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    int scenarios_per_cell = 3;   ///< paper: 247
    int trials_per_scenario = 3;  ///< paper: 10
    int p = 20;
    double tdata_factor = 1.0;
    double tprog_factor = 5.0;
    RunConfig run;
    std::uint64_t master_seed = 0xC0FFEEULL;
    std::size_t threads = 0; ///< 0: hardware concurrency
    /// Optional progress callback (instances completed, instances total).
    std::function<void(long long, long long)> progress;
    /// Optional raw-result sink, called once per instance with the scenario,
    /// the trial index, and the per-heuristic makespans (aligned with the
    /// sweep's heuristic list).  Serialized by the driver: implementations
    /// need no locking.  Useful for exporting full distributions.
    std::function<void(const Scenario&, int,
                       const std::vector<long long>&)>
        record;
};

struct SweepResult {
    std::vector<std::string> heuristics;
    DfbTable overall;
    /// Keyed by wmin — the Figure 2 series.
    std::map<int, DfbTable> by_wmin;
    /// Keyed by tasks-per-iteration (the paper's n).
    std::map<int, DfbTable> by_tasks;
    /// Keyed by the master's concurrency bound ncom.
    std::map<int, DfbTable> by_ncom;

    SweepResult(std::vector<std::string> names)
        : heuristics(std::move(names)), overall(heuristics.size()) {}
};

/// Runs the sweep; deterministic for a fixed config regardless of threads.
SweepResult run_sweep(const SweepConfig& cfg,
                      const std::vector<std::string>& heuristics);

} // namespace volsched::exp
