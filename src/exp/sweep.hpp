#pragma once
/// \file sweep.hpp
/// The full experimental campaign driver: Table 1 grid x scenarios x trials,
/// each instance run under every heuristic, reduced into overall and
/// per-wmin degradation-from-best tables.  Instances are distributed over a
/// thread pool; every instance derives its own RNG streams from the master
/// seed, so results are independent of thread count and scheduling order.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "exp/dfb.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sink.hpp"

namespace volsched::exp {

struct SweepConfig {
    std::vector<int> tasks_values{5, 10, 20, 40}; ///< paper's n
    std::vector<int> ncom_values{5, 10, 20};
    std::vector<int> wmin_values{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    /// Checkpoint-policy axis (ckpt registry specs); the default single
    /// "none" reproduces the paper's grid — enumeration order, ordinals and
    /// seeds — bit-exactly.  With several values the classic grid is
    /// replicated per policy, and the replicas share their scenario/trial
    /// seeds (see GridJob::seed_ordinal) so each policy faces the identical
    /// platform draws and availability realizations.
    std::vector<std::string> checkpoint_values{"none"};
    int scenarios_per_cell = 3;   ///< paper: 247
    int trials_per_scenario = 3;  ///< paper: 10
    int p = 20;
    double tdata_factor = 1.0;
    double tprog_factor = 5.0;
    RunConfig run;
    std::uint64_t master_seed = 0xC0FFEEULL;
    std::size_t threads = 0; ///< 0: hardware concurrency
    /// Optional progress callback (instances completed, instances total).
    /// CONCURRENCY: invoked from worker threads, potentially several at
    /// once — implementations must be thread-safe and cheap (every
    /// instance reports; rate-limit any output.  The tools use an atomic
    /// last-print timestamp for this).
    std::function<void(long long, long long)> progress;
    /// Optional raw-result hook, called once per instance with the full
    /// InstanceRecord (scenario, grid ordinal, trial, per-heuristic
    /// makespans).  Serialized by the driver — run_sweep and each
    /// campaign's single emitter thread call it from one thread at a time,
    /// and run_parallel_campaign wraps it in a shared mutex across its
    /// shard emitters — so implementations need no locking.  Wire a
    /// ResultSink here to export full distributions:
    ///   cfg.record = [&](const InstanceRecord& r) { sink.write(r); };
    std::function<void(const InstanceRecord&)> record;
};

/// One scenario draw of the Table-1 grid, tagged with its global position
/// in the enumeration.  The seed ordinal — not the thread, not the shard —
/// seeds the scenario and its trials, which is what makes sweep results
/// independent of thread count and campaign sharding.
struct GridJob {
    Scenario scenario;
    /// Global position in the enumeration (unique; drives sharding and
    /// record identity).
    std::uint64_t ordinal = 0;
    /// Position within the classic (tasks, ncom, wmin, draw) grid — equal
    /// to `ordinal` modulo the checkpoint axis, so jobs that differ only in
    /// checkpoint policy share every RNG stream.  With the default
    /// single-"none" axis, seed_ordinal == ordinal.
    std::uint64_t seed_ordinal = 0;
};

/// Enumerates the full grid in canonical order (checkpoint outermost, then
/// tasks, ncom, wmin, draw), deriving each scenario's seed from the master
/// seed and its *seed* ordinal.
std::vector<GridJob> grid_jobs(const SweepConfig& cfg);

struct SweepResult {
    std::vector<std::string> heuristics;
    DfbTable overall;
    /// Keyed by wmin — the Figure 2 series.
    std::map<int, DfbTable> by_wmin;
    /// Keyed by tasks-per-iteration (the paper's n).
    std::map<int, DfbTable> by_tasks;
    /// Keyed by the master's concurrency bound ncom.
    std::map<int, DfbTable> by_ncom;
    /// Keyed by checkpoint-policy spec (a single "none" key for the
    /// classic, checkpoint-free grid).
    std::map<std::string, DfbTable> by_checkpoint;

    SweepResult(std::vector<std::string> names)
        : heuristics(std::move(names)), overall(heuristics.size()) {}
};

/// Runs the sweep; deterministic for a fixed config regardless of threads.
SweepResult run_sweep(const SweepConfig& cfg,
                      const std::vector<std::string>& heuristics);

/// The canonical per-job reduction step: merges one job's local table into
/// the overall and by-wmin/by-tasks/by-ncom tables.  run_sweep, the
/// campaign runner, and the shard-merge replay all reduce through this one
/// function — the merging order is the bit-identical contract between
/// sharded and unsharded results, so it lives in exactly one place.
void merge_job_tables(SweepResult& result, const Scenario& scenario,
                      const DfbTable& local);

} // namespace volsched::exp
