#pragma once
/// \file index_sink.hpp
/// Sorted binary sidecar index over a campaign JSONL stream, plus the
/// query machinery built on it.  The campaign emitter writes one fixed-width
/// entry — (scenario ordinal, trial, byte offset of the record line) — per
/// JSONL record into records.idx next to records.jsonl.  Records leave the
/// emitter in (ordinal, trial) order, so append order *is* sorted order and
/// the sidecar needs no post-processing.
///
/// The index is **derived data**: its header vouches for a specific
/// fingerprint and JSONL byte length, and every reader validates both (plus
/// structural invariants) before trusting it.  Anything stale, torn, or
/// absent is rebuilt from a single JSONL scan and re-persisted — so the
/// sidecar never needs to participate in the campaign checkpoint/resume
/// contract, and deleting it is always safe.
///
/// On-disk format (little-endian, platform-independent):
///
///   header  32 bytes   magic "VSCHIDX1" | fingerprint u64 |
///                      jsonl_bytes u64 (stream length vouched for) |
///                      count u64
///   entries 20 bytes   ordinal u64 | trial u32 | offset u64   (x count,
///                      sorted by (ordinal, trial), offsets increasing)
///
/// Queries filter by ordinal/wmin/tasks/ncom ranges.  The scenario axes of
/// every ordinal are recomputed from the self-describing JSONL header's
/// grid enumeration — O(grid jobs), no record I/O — so a query touches
/// exactly the matching record lines, never the whole file.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace volsched::exp {

/// One index entry: where record (ordinal, trial) starts in the JSONL file.
struct IndexEntry {
    std::uint64_t ordinal = 0;
    int trial = 0;
    std::uint64_t offset = 0;

    friend bool operator==(const IndexEntry&, const IndexEntry&) = default;
};

/// Sidecar path next to a shard's JSONL stream: records.jsonl -> records.idx.
std::filesystem::path index_path(const std::filesystem::path& jsonl_file);

/// Append-side writer, driven by the campaign emitter thread (single-threaded
/// like every ResultSink).  Entries buffer in memory until flush(), which
/// appends them, rewrites the header to vouch for the JSONL length, and
/// fsyncs — called at every durable checkpoint, right before the manifest.
class IndexSink {
public:
    /// Creates (or truncates) the sidecar and writes an empty header.
    IndexSink(std::filesystem::path path, std::uint64_t fingerprint);
    ~IndexSink();

    IndexSink(const IndexSink&) = delete;
    IndexSink& operator=(const IndexSink&) = delete;

    /// Buffers one entry; `offset` is the JSONL byte offset of the record's
    /// line (i.e. the sink's offset() *before* writing the record).
    void add(std::uint64_t ordinal, int trial, std::uint64_t offset);

    /// Appends buffered entries, stamps the header with `jsonl_bytes` (the
    /// JSONL stream length these entries cover), and makes it all durable.
    void flush(std::uint64_t jsonl_bytes);

    [[nodiscard]] const std::filesystem::path& path() const noexcept {
        return path_;
    }

private:
    void write_header(std::uint64_t jsonl_bytes);

    std::filesystem::path path_;
    std::FILE* file_ = nullptr;
    std::uint64_t fingerprint_ = 0;
    std::uint64_t count_ = 0; ///< entries already on disk
    std::vector<IndexEntry> pending_;
};

/// Reads and validates a sidecar against the campaign `fingerprint` and the
/// current `jsonl_bytes` of the stream it indexes.  Returns std::nullopt —
/// never throws — when the file is absent, torn, mis-fingerprinted, stale
/// (vouches for a different JSONL length), or structurally inconsistent
/// (entries out of (ordinal, trial) order or offsets not increasing): all
/// of those mean "rebuild from the JSONL".
std::optional<std::vector<IndexEntry>>
read_index(const std::filesystem::path& path, std::uint64_t fingerprint,
           std::uint64_t jsonl_bytes);

/// One-pass rebuild: scans the JSONL stream line-at-a-time (O(1) record
/// memory), returning the entry per record.  Throws std::runtime_error on a
/// malformed record (torn tail — resume the shard to self-heal first).
std::vector<IndexEntry>
build_index_entries(const std::filesystem::path& jsonl_file);

/// Writes a complete sidecar in one shot (rebuild path).  The result is
/// byte-identical to what the campaign's IndexSink would have produced for
/// the same stream.
void write_index_file(const std::filesystem::path& path,
                      std::uint64_t fingerprint, std::uint64_t jsonl_bytes,
                      const std::vector<IndexEntry>& entries);

/// The query read path: returns a valid entry set for `jsonl_file`, loading
/// the sidecar when it validates and otherwise rebuilding *and re-persisting*
/// it.  `rebuilt` (optional) reports which path was taken.
std::vector<IndexEntry>
load_or_rebuild_index(const std::filesystem::path& jsonl_file,
                      bool* rebuilt = nullptr);

/// Inclusive range filters; an empty optional leaves that axis unfiltered.
/// wmin/tasks/ncom are resolved per ordinal from the campaign header's grid
/// enumeration, so filtering needs no record I/O.
struct QueryFilter {
    std::optional<std::pair<std::uint64_t, std::uint64_t>> ordinal;
    std::optional<std::pair<int, int>> wmin;
    std::optional<std::pair<int, int>> tasks;
    std::optional<std::pair<int, int>> ncom;
};

struct QueryStats {
    std::uint64_t matched = 0;   ///< records emitted
    int indexes_rebuilt = 0;     ///< shards whose sidecar was stale/absent
};

/// Streams every matching record's raw JSONL line (no trailing newline) in
/// global (ordinal, trial) order across the given shard files — the same
/// order an unsharded campaign would have emitted them, and byte-for-byte
/// the lines a full-file scan would select.  Shard headers are
/// cross-validated like merge_shards; sidecars are loaded or rebuilt per
/// load_or_rebuild_index.  Throws std::runtime_error on inconsistent or
/// unreadable shards.
QueryStats
query_shards(const std::vector<std::filesystem::path>& jsonl_files,
             const QueryFilter& filter,
             const std::function<void(const std::string& line)>& emit);

} // namespace volsched::exp
