#pragma once
/// \file shape.hpp
/// Automated reproduction verdicts.  Absolute dfb values depend on the
/// instance sample, but the paper's conclusions are *qualitative ordering
/// claims* — who beats whom, where the crossovers fall.  This module
/// encodes those claims as machine-checkable predicates over sweep results,
/// so `bench_table2` & co. can print PASS/FAIL lines and the test suite can
/// assert the reproduction holds on small sweeps.

#include <string>
#include <vector>

#include "exp/sweep.hpp"

namespace volsched::exp {

struct ShapeCheck {
    std::string description;
    bool passed = false;
    double lhs = 0.0; ///< the two quantities that were compared
    double rhs = 0.0;
};

/// Table 2 claims, for a sweep over core::all_heuristic_names() (17 names
/// in the canonical factory order):
///  - the EMCT family beats the MCT family (10%-better-makespan headline),
///  - MCT beats UD beats LW on average dfb,
///  - every speed-weighted random beats its unweighted sibling,
///  - every greedy heuristic beats every random one,
///  - the EMCT family collects the most wins.
std::vector<ShapeCheck> check_table2_shape(const SweepResult& result);

/// Figure 2 claims, for a sweep over {mct, mct*, emct, emct*, ud*, lw*}:
///  - a crossover exists: EMCT dips below MCT at some wmin,
///  - EMCT stays below MCT on the upper half of the wmin range,
///  - UD* and LW* improve monotonically-in-trend from wmin=1 to wmin=max
///    (first value strictly worse than last).
std::vector<ShapeCheck> check_figure2_shape(const SweepResult& result);

/// Table 3 claims, for two sweeps over core::greedy_heuristic_names()
/// ({mct, mct*, emct, emct*, lw, lw*, ud, ud*}):
///  - x5: an EMCT-family member is best,
///  - x10: a UD-family member is best,
///  - x10: plain MCT's collapse — worst of all greedy heuristics and at
///    least 2x the dfb of the best.
std::vector<ShapeCheck> check_table3_shape(const SweepResult& x5,
                                           const SweepResult& x10);

/// Renders one line per check: "[PASS] description (lhs vs rhs)".
std::string render_checks(const std::vector<ShapeCheck>& checks);

/// True when every check passed.
bool all_passed(const std::vector<ShapeCheck>& checks);

} // namespace volsched::exp
