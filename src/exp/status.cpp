#include "exp/status.hpp"

#include <exception>

#include "util/atomic_io.hpp"
#include "util/json.hpp"

namespace volsched::exp {
namespace {

void field(std::string& out, const char* key, long long value,
           bool first = false) {
    if (!first) out += ',';
    out += '"';
    out += key;
    out += "\":";
    out += std::to_string(value);
}

void stage(std::string& out, const char* key, const StageStats& s) {
    out += ",\"";
    out += key;
    out += "\":{";
    field(out, "count", s.count, /*first=*/true);
    field(out, "total_us", s.total_us);
    field(out, "max_us", s.max_us);
    out += '}';
}

StageStats parse_stage(const util::json::Value& v) {
    StageStats s;
    s.count = v.at("count").as_i64();
    s.total_us = v.at("total_us").as_i64();
    s.max_us = v.at("max_us").as_i64();
    return s;
}

} // namespace

std::filesystem::path status_path(const std::filesystem::path& shard_dir) {
    return shard_dir / "status.json";
}

std::string status_to_json(const ShardStatus& s) {
    std::string out = "{";
    field(out, "shard", s.shard, /*first=*/true);
    field(out, "shards", s.shards);
    field(out, "jobs_done", s.jobs_done);
    field(out, "jobs_total", s.jobs_total);
    field(out, "instances_done", s.instances_done);
    field(out, "queue_depth", s.queue_depth);
    field(out, "emitter_lag", s.emitter_lag);
    field(out, "window", s.window);
    out += ",\"state\":\"" + util::json::escape(s.state) + "\"";
    stage(out, "run", s.run);
    stage(out, "serialize", s.serialize);
    stage(out, "fsync", s.fsync);
    out += '}';
    return out;
}

void write_status(const std::filesystem::path& shard_dir,
                  const ShardStatus& s) {
    util::write_file_atomic(status_path(shard_dir), status_to_json(s));
}

std::optional<ShardStatus> read_status(
    const std::filesystem::path& shard_dir) {
    std::string text;
    try {
        text = util::read_text_file(status_path(shard_dir));
    } catch (const std::exception&) {
        return std::nullopt; // no heartbeat yet (or unreadable): not an error
    }
    try {
        const auto v = util::json::Value::parse(text);
        ShardStatus s;
        s.shard = static_cast<int>(v.at("shard").as_i64());
        s.shards = static_cast<int>(v.at("shards").as_i64());
        s.jobs_done = v.at("jobs_done").as_i64();
        s.jobs_total = v.at("jobs_total").as_i64();
        s.instances_done = v.at("instances_done").as_i64();
        s.queue_depth = v.at("queue_depth").as_i64();
        s.emitter_lag = v.at("emitter_lag").as_i64();
        s.window = v.at("window").as_i64();
        s.state = v.at("state").as_string();
        s.run = parse_stage(v.at("run"));
        s.serialize = parse_stage(v.at("serialize"));
        s.fsync = parse_stage(v.at("fsync"));
        return s;
    } catch (const std::exception&) {
        // Torn or half-written heartbeats cannot happen through
        // write_file_atomic, but a hand-edited or foreign file can; treat
        // anything unparsable as "no heartbeat".
        return std::nullopt;
    }
}

} // namespace volsched::exp
