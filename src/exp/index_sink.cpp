#include "exp/index_sink.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <stdexcept>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "exp/campaign.hpp"
#include "exp/sweep.hpp"
#include "util/atomic_io.hpp"

namespace volsched::exp {

namespace {

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("index: " + what);
}

constexpr char kMagic[8] = {'V', 'S', 'C', 'H', 'I', 'D', 'X', '1'};
constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kEntryBytes = 20;

void put_u64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint64_t get_u64(const char* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

std::uint32_t get_u32(const char* p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

std::string serialize_header(std::uint64_t fingerprint,
                             std::uint64_t jsonl_bytes, std::uint64_t count) {
    std::string out;
    out.reserve(kHeaderBytes);
    out.append(kMagic, sizeof kMagic);
    put_u64(out, fingerprint);
    put_u64(out, jsonl_bytes);
    put_u64(out, count);
    return out;
}

std::string serialize_entries(const std::vector<IndexEntry>& entries) {
    std::string out;
    out.reserve(entries.size() * kEntryBytes);
    for (const IndexEntry& e : entries) {
        put_u64(out, e.ordinal);
        put_u32(out, static_cast<std::uint32_t>(e.trial));
        put_u64(out, e.offset);
    }
    return out;
}

/// The structural invariant every reader enforces: strictly ascending
/// (ordinal, trial) keys with strictly increasing offsets bounded by the
/// JSONL length — exactly what in-order emission produces.
bool entries_consistent(const std::vector<IndexEntry>& entries,
                        std::uint64_t jsonl_bytes) {
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const IndexEntry& e = entries[i];
        if (e.trial < 0 || e.offset >= jsonl_bytes) return false;
        if (i == 0) continue;
        const IndexEntry& prev = entries[i - 1];
        if (e.offset <= prev.offset) return false;
        if (std::pair(e.ordinal, e.trial) <=
            std::pair(prev.ordinal, prev.trial))
            return false;
    }
    return true;
}

} // namespace

std::filesystem::path index_path(const std::filesystem::path& jsonl_file) {
    std::filesystem::path p = jsonl_file;
    p.replace_extension(".idx");
    return p;
}

// ---------------------------------------------------------------------------
// IndexSink (append side, campaign emitter thread)
// ---------------------------------------------------------------------------

IndexSink::IndexSink(std::filesystem::path path, std::uint64_t fingerprint)
    : path_(std::move(path)), fingerprint_(fingerprint) {
    if (path_.has_parent_path())
        std::filesystem::create_directories(path_.parent_path());
    file_ = std::fopen(path_.string().c_str(), "wb");
    if (!file_) fail("cannot open '" + path_.string() + "'");
    write_header(0);
}

IndexSink::~IndexSink() {
    if (file_) std::fclose(file_);
}

void IndexSink::add(std::uint64_t ordinal, int trial, std::uint64_t offset) {
    pending_.push_back({ordinal, trial, offset});
}

void IndexSink::write_header(std::uint64_t jsonl_bytes) {
    const std::string header =
        serialize_header(fingerprint_, jsonl_bytes, count_);
    if (std::fseek(file_, 0, SEEK_SET) != 0 ||
        std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
        std::fseek(file_, 0, SEEK_END) != 0)
        fail("write error on '" + path_.string() + "'");
}

void IndexSink::flush(std::uint64_t jsonl_bytes) {
    const std::string block = serialize_entries(pending_);
    if (std::fwrite(block.data(), 1, block.size(), file_) != block.size())
        fail("write error on '" + path_.string() + "'");
    count_ += pending_.size();
    pending_.clear();
    // Entries land before the header vouches for them: a crash between the
    // two leaves a header describing a shorter, still-valid prefix.
    write_header(jsonl_bytes);
    if (std::fflush(file_) != 0)
        fail("flush error on '" + path_.string() + "'");
#ifndef _WIN32
    if (::fsync(::fileno(file_)) != 0)
        fail("fsync error on '" + path_.string() + "'");
#endif
}

// ---------------------------------------------------------------------------
// Read / rebuild
// ---------------------------------------------------------------------------

std::optional<std::vector<IndexEntry>>
read_index(const std::filesystem::path& path, std::uint64_t fingerprint,
           std::uint64_t jsonl_bytes) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (data.size() < kHeaderBytes) return std::nullopt;
    if (std::memcmp(data.data(), kMagic, sizeof kMagic) != 0)
        return std::nullopt;
    if (get_u64(data.data() + 8) != fingerprint) return std::nullopt;
    if (get_u64(data.data() + 16) != jsonl_bytes) return std::nullopt;
    const std::uint64_t count = get_u64(data.data() + 24);
    // A crash may leave appended-but-unvouched entries past the header's
    // count; anything *shorter* than the count is torn.
    if (data.size() < kHeaderBytes + count * kEntryBytes) return std::nullopt;
    std::vector<IndexEntry> entries;
    entries.reserve(count);
    const char* p = data.data() + kHeaderBytes;
    for (std::uint64_t i = 0; i < count; ++i, p += kEntryBytes) {
        IndexEntry e;
        e.ordinal = get_u64(p);
        e.trial = static_cast<int>(get_u32(p + 8));
        e.offset = get_u64(p + 12);
        entries.push_back(e);
    }
    if (!entries_consistent(entries, jsonl_bytes)) return std::nullopt;
    return entries;
}

std::vector<IndexEntry>
build_index_entries(const std::filesystem::path& jsonl_file) {
    std::ifstream in(jsonl_file);
    if (!in) fail("cannot open '" + jsonl_file.string() + "'");
    std::string line;
    if (!std::getline(in, line))
        fail("'" + jsonl_file.string() + "' is empty");
    std::uint64_t offset = line.size() + 1; // header line + newline
    std::vector<IndexEntry> entries;
    while (std::getline(in, line)) {
        const std::uint64_t line_offset = offset;
        offset += line.size() + 1;
        if (line.empty()) continue;
        InstanceRecord rec;
        try {
            rec = JsonlSink::parse_record(line);
        } catch (const std::invalid_argument& e) {
            fail("'" + jsonl_file.string() + "' holds a malformed record (" +
                 e.what() + "); was the shard killed without a checkpoint? "
                 "resume it to self-heal, or delete the torn tail");
        }
        entries.push_back({rec.scenario_ordinal, rec.trial, line_offset});
    }
    return entries;
}

void write_index_file(const std::filesystem::path& path,
                      std::uint64_t fingerprint, std::uint64_t jsonl_bytes,
                      const std::vector<IndexEntry>& entries) {
    std::string out = serialize_header(fingerprint, jsonl_bytes,
                                       static_cast<std::uint64_t>(
                                           entries.size()));
    out += serialize_entries(entries);
    util::write_file_atomic(path, out);
}

std::vector<IndexEntry>
load_or_rebuild_index(const std::filesystem::path& jsonl_file,
                      bool* rebuilt) {
    std::ifstream in(jsonl_file);
    if (!in) fail("cannot open '" + jsonl_file.string() + "'");
    std::string header_line;
    if (!std::getline(in, header_line))
        fail("'" + jsonl_file.string() + "' is empty");
    CampaignHeader header;
    try {
        header = parse_campaign_header(header_line);
    } catch (const std::invalid_argument& e) {
        fail("'" + jsonl_file.string() + "': " + e.what());
    }
    in.close();
    const auto jsonl_bytes =
        static_cast<std::uint64_t>(std::filesystem::file_size(jsonl_file));
    const auto sidecar = index_path(jsonl_file);
    if (auto entries = read_index(sidecar, header.fingerprint, jsonl_bytes)) {
        if (rebuilt) *rebuilt = false;
        return std::move(*entries);
    }
    std::vector<IndexEntry> entries = build_index_entries(jsonl_file);
    if (!entries_consistent(entries, jsonl_bytes))
        fail("'" + jsonl_file.string() +
             "' records are not in (ordinal, trial) order; not a campaign "
             "shard stream");
    write_index_file(sidecar, header.fingerprint, jsonl_bytes, entries);
    if (rebuilt) *rebuilt = true;
    return entries;
}

// ---------------------------------------------------------------------------
// Query
// ---------------------------------------------------------------------------

namespace {

template <class T>
bool in_range(T value, const std::optional<std::pair<T, T>>& range) {
    return !range || (value >= range->first && value <= range->second);
}

bool job_matches(const GridJob& job, const QueryFilter& f) {
    return in_range(job.ordinal, f.ordinal) &&
           in_range(job.scenario.wmin, f.wmin) &&
           in_range(job.scenario.tasks, f.tasks) &&
           in_range(job.scenario.ncom, f.ncom);
}

/// One shard's read state: validated header, (loaded or rebuilt) index, and
/// an open stream to seek record lines out of.
struct ShardIndex {
    std::filesystem::path path;
    CampaignHeader header;
    std::vector<IndexEntry> entries;
    std::ifstream in;
};

} // namespace

QueryStats
query_shards(const std::vector<std::filesystem::path>& jsonl_files,
             const QueryFilter& filter,
             const std::function<void(const std::string& line)>& emit) {
    if (jsonl_files.empty()) fail("query: no shard files");

    QueryStats stats;
    std::vector<std::unique_ptr<ShardIndex>> shards;
    shards.reserve(jsonl_files.size());
    for (const auto& file : jsonl_files) {
        auto shard = std::make_unique<ShardIndex>();
        shard->path = file;
        bool rebuilt = false;
        shard->entries = load_or_rebuild_index(file, &rebuilt);
        if (rebuilt) ++stats.indexes_rebuilt;
        shard->in.open(file);
        if (!shard->in) fail("cannot open '" + file.string() + "'");
        std::string header_line;
        std::getline(shard->in, header_line);
        shard->header = parse_campaign_header(header_line);
        if (!shards.empty()) {
            const CampaignHeader& ref = shards.front()->header;
            if (shard->header.fingerprint != ref.fingerprint)
                fail("query: '" + file.string() +
                     "' belongs to a different campaign (fingerprint "
                     "mismatch)");
            if (shard->header.shard_count != ref.shard_count)
                fail("query: '" + file.string() +
                     "' disagrees on the shard count");
        }
        shards.push_back(std::move(shard));
    }
    const CampaignHeader& ref = shards.front()->header;
    std::vector<ShardIndex*> by_shard(
        static_cast<std::size_t>(ref.shard_count), nullptr);
    for (const auto& shard : shards) {
        const int k = shard->header.shard_index;
        const auto slot = static_cast<std::size_t>(k - 1);
        if (k < 1 || k > ref.shard_count || by_shard[slot])
            fail("query: shard " + std::to_string(k) +
                 " appears twice or is out of range");
        by_shard[slot] = shard.get();
    }
    for (std::size_t k = 0; k < by_shard.size(); ++k)
        if (!by_shard[k])
            fail("query: shard " + std::to_string(k + 1) + " of " +
                 std::to_string(by_shard.size()) + " is missing");

    // Walk the grid in global (ordinal, trial) order — the unsharded
    // emission order — filtering on grid axes without touching records,
    // then seek only the matching lines.  Jobs not yet durable in a
    // still-running campaign simply have no index entries and are skipped.
    const std::vector<GridJob> grid = grid_jobs(ref.sweep);
    std::string line;
    for (const GridJob& job : grid) {
        if (!job_matches(job, filter)) continue;
        ShardIndex& shard = *by_shard[static_cast<std::size_t>(
            job.ordinal % static_cast<std::uint64_t>(ref.shard_count))];
        const auto lo = std::lower_bound(
            shard.entries.begin(), shard.entries.end(), job.ordinal,
            [](const IndexEntry& e, std::uint64_t ord) {
                return e.ordinal < ord;
            });
        const auto hi = std::upper_bound(
            lo, shard.entries.end(), job.ordinal,
            [](std::uint64_t ord, const IndexEntry& e) {
                return ord < e.ordinal;
            });
        for (auto it = lo; it != hi; ++it) {
            shard.in.clear();
            shard.in.seekg(static_cast<std::streamoff>(it->offset));
            if (!std::getline(shard.in, line))
                fail("query: '" + shard.path.string() +
                     "' is shorter than its index (stale sidecar?)");
            emit(line);
            ++stats.matched;
        }
    }
    return stats;
}

} // namespace volsched::exp
