#include "exp/dfb.hpp"

#include <algorithm>
#include <stdexcept>

namespace volsched::exp {

DfbTable::DfbTable(std::size_t num_heuristics)
    : dfb_(num_heuristics), makespan_(num_heuristics),
      wins_(num_heuristics, 0) {}

void DfbTable::add_instance(const std::vector<long long>& makespans) {
    if (makespans.size() != dfb_.size())
        throw std::invalid_argument("DfbTable: heuristic count mismatch");
    const long long best =
        *std::min_element(makespans.begin(), makespans.end());
    if (best <= 0)
        throw std::invalid_argument("DfbTable: non-positive makespan");
    for (std::size_t h = 0; h < makespans.size(); ++h) {
        const double dfb = 100.0 *
                           static_cast<double>(makespans[h] - best) /
                           static_cast<double>(best);
        dfb_[h].add(dfb);
        makespan_[h].add(static_cast<double>(makespans[h]));
        if (makespans[h] == best) ++wins_[h];
    }
    ++instances_;
}

void DfbTable::merge(const DfbTable& other) {
    if (other.dfb_.size() != dfb_.size())
        throw std::invalid_argument("DfbTable: merge arity mismatch");
    for (std::size_t h = 0; h < dfb_.size(); ++h) {
        dfb_[h].merge(other.dfb_[h]);
        makespan_[h].merge(other.makespan_[h]);
        wins_[h] += other.wins_[h];
    }
    instances_ += other.instances_;
}

} // namespace volsched::exp
