#include "exp/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "api/registry.hpp"
#include "ckpt/registry.hpp"
#include "exp/index_sink.hpp"
#include "exp/status.hpp"
#include "obs/registry.hpp"
#include "obs/stopwatch.hpp"
#include "util/atomic_io.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace volsched::exp {

namespace {

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("campaign: " + what);
}

/// Minimum wall-clock between steady-state heartbeat writes (checkpoint
/// and completion writes are unconditional).
constexpr std::int64_t kHeartbeatIntervalMs = 500;

const char* plan_class_name(sim::SchedulerClass c) {
    switch (c) {
    case sim::SchedulerClass::Dynamic: return "dynamic";
    case sim::SchedulerClass::Passive: return "passive";
    case sim::SchedulerClass::Proactive: return "proactive";
    }
    fail("unknown scheduler class");
}

sim::SchedulerClass plan_class_from(const std::string& name) {
    if (name == "dynamic") return sim::SchedulerClass::Dynamic;
    if (name == "passive") return sim::SchedulerClass::Passive;
    if (name == "proactive") return sim::SchedulerClass::Proactive;
    throw std::invalid_argument("campaign: unknown plan class '" + name + "'");
}

/// FNV-1a 64-bit over a canonical serialization; stable across platforms.
std::uint64_t fnv1a(std::string_view text) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string join_ints(const std::vector<int>& xs) {
    std::string out;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (i) out += ',';
        out += std::to_string(xs[i]);
    }
    return out;
}

/// Whether the sweep actually exercises the checkpoint layer.  The default
/// single-"none" axis is the classic grid: it is excluded from the
/// fingerprint and the header so pre-checkpoint campaign files stay valid
/// (and resumable) under the current code.
bool has_checkpoint_axis(const SweepConfig& cfg) {
    return cfg.checkpoint_values.size() != 1 ||
           cfg.checkpoint_values.front() != "none";
}

/// The canonical result-determining description (no shard, no threads).
std::string canonical_description(const SweepConfig& cfg,
                                  const std::vector<std::string>& heuristics) {
    std::string s = "volsched-campaign v1;tasks=" + join_ints(cfg.tasks_values);
    s += ";ncom=" + join_ints(cfg.ncom_values);
    s += ";wmin=" + join_ints(cfg.wmin_values);
    s += ";scenarios=" + std::to_string(cfg.scenarios_per_cell);
    s += ";trials=" + std::to_string(cfg.trials_per_scenario);
    s += ";p=" + std::to_string(cfg.p);
    s += ";tdata=" + util::json::number(cfg.tdata_factor);
    s += ";tprog=" + util::json::number(cfg.tprog_factor);
    s += ";seed=" + std::to_string(cfg.master_seed);
    s += ";iterations=" + std::to_string(cfg.run.iterations);
    s += ";replica_cap=" + std::to_string(cfg.run.replica_cap);
    s += ";max_slots=" + std::to_string(cfg.run.max_slots);
    s += ";plan_class=" + std::string(plan_class_name(cfg.run.plan_class));
    if (has_checkpoint_axis(cfg)) {
        s += ";checkpoints=";
        for (std::size_t c = 0; c < cfg.checkpoint_values.size(); ++c) {
            if (c) s += ',';
            s += cfg.checkpoint_values[c];
        }
        s += ";checkpoint_cost=" + std::to_string(cfg.run.checkpoint_cost);
    }
    s += ";heuristics=";
    for (std::size_t h = 0; h < heuristics.size(); ++h) {
        if (h) s += ',';
        s += heuristics[h];
    }
    return s;
}

std::vector<int> parse_int_array(const util::json::Value& v) {
    std::vector<int> out;
    for (const auto& item : v.items())
        out.push_back(static_cast<int>(item.as_i64()));
    return out;
}

std::string json_int_array(const std::vector<int>& xs) {
    return "[" + join_ints(xs) + "]";
}

/// Replays records for the given jobs through run_sweep's exact reduction:
/// per-job DfbTable filled in trial order, merged into the overall and
/// by-key tables in job order.  `source` labels error messages.
void replay_records(SweepResult& result, const SweepConfig& cfg,
                    const std::vector<GridJob>& jobs,
                    const std::vector<InstanceRecord>& records,
                    const std::string& source) {
    const std::size_t num_heuristics = result.heuristics.size();
    const int trials = cfg.trials_per_scenario;

    std::unordered_map<std::uint64_t, std::vector<const InstanceRecord*>>
        by_ordinal;
    by_ordinal.reserve(records.size());
    for (const auto& rec : records)
        by_ordinal[rec.scenario_ordinal].push_back(&rec);

    std::size_t consumed = 0;
    for (const GridJob& job : jobs) {
        auto it = by_ordinal.find(job.ordinal);
        if (it == by_ordinal.end() ||
            it->second.size() != static_cast<std::size_t>(trials))
            fail(source + ": scenario ordinal " + std::to_string(job.ordinal) +
                 " has " +
                 std::to_string(it == by_ordinal.end() ? 0
                                                       : it->second.size()) +
                 " records, expected " + std::to_string(trials) +
                 " trials (incomplete, duplicated, or missing shard?)");
        auto& trial_records = it->second;
        std::sort(trial_records.begin(), trial_records.end(),
                  [](const InstanceRecord* a, const InstanceRecord* b) {
                      return a->trial < b->trial;
                  });
        DfbTable local(num_heuristics);
        for (int t = 0; t < trials; ++t) {
            const InstanceRecord& rec = *trial_records[static_cast<std::size_t>(t)];
            if (rec.trial != t)
                fail(source + ": ordinal " + std::to_string(job.ordinal) +
                     " has duplicate or missing trial " + std::to_string(t));
            if (rec.scenario.seed != job.scenario.seed)
                fail(source + ": ordinal " + std::to_string(job.ordinal) +
                     " carries seed " + std::to_string(rec.scenario.seed) +
                     " but the grid expects " +
                     std::to_string(job.scenario.seed) +
                     " (records from a different campaign?)");
            if (rec.scenario.checkpoint != job.scenario.checkpoint)
                fail(source + ": ordinal " + std::to_string(job.ordinal) +
                     " carries checkpoint policy '" +
                     rec.scenario.checkpoint + "' but the grid expects '" +
                     job.scenario.checkpoint + "'");
            if (rec.makespans.size() != num_heuristics)
                fail(source + ": ordinal " + std::to_string(job.ordinal) +
                     " has " + std::to_string(rec.makespans.size()) +
                     " makespans, expected " +
                     std::to_string(num_heuristics));
            local.add_instance(rec.makespans);
        }
        consumed += static_cast<std::size_t>(trials);
        merge_job_tables(result, job.scenario, local);
    }
    if (consumed != records.size())
        fail(source + ": " + std::to_string(records.size() - consumed) +
             " records do not belong to the expected grid (duplicate shard "
             "or foreign file?)");
}

/// Streams one shard's records straight off its JSONL file, one line at a
/// time — O(1) record memory for both the k-way merge and the resume
/// replay.  The header is parsed (and fingerprint-verified) on open; byte
/// offsets of the record lines are tracked for index rebuilding.
class ShardStream {
public:
    explicit ShardStream(const std::filesystem::path& file)
        : path_(file), in_(file) {
        if (!in_)
            fail("cannot open '" + file.string() + "'");
        std::string line;
        if (!std::getline(in_, line))
            fail("'" + path_.string() + "' is empty");
        offset_ = line.size() + 1;
        header_ = parse_campaign_header(line);
    }

    [[nodiscard]] const CampaignHeader& header() const noexcept {
        return header_;
    }
    [[nodiscard]] const std::filesystem::path& path() const noexcept {
        return path_;
    }
    /// Byte offset of the line the most recent next() returned.
    [[nodiscard]] std::uint64_t record_offset() const noexcept {
        return record_offset_;
    }

    /// Next record, or std::nullopt at end of stream.
    std::optional<InstanceRecord> next() {
        std::string line;
        while (std::getline(in_, line)) {
            const std::uint64_t at = offset_;
            offset_ += line.size() + 1;
            if (line.empty()) continue;
            try {
                InstanceRecord rec = JsonlSink::parse_record(line);
                record_offset_ = at;
                return rec;
            } catch (const std::invalid_argument& e) {
                fail("'" + path_.string() + "' holds a malformed record (" +
                     e.what() +
                     "); was the shard killed without a checkpoint? resume "
                     "it to self-heal, or delete the torn tail");
            }
        }
        return std::nullopt;
    }

private:
    std::filesystem::path path_;
    std::ifstream in_;
    CampaignHeader header_;
    std::uint64_t offset_ = 0;
    std::uint64_t record_offset_ = 0;
};

/// The resume replay: walks the already-checkpointed prefix of the shard's
/// grid jobs, pulling each job's trials off the (already truncated) JSONL
/// stream one line at a time and reducing through the canonical
/// merge_job_tables order — never holding more than one record in memory.
/// Every record's byte offset feeds the fresh index sidecar as it passes.
void replay_shard_stream(SweepResult& tables, IndexSink& index,
                         const std::filesystem::path& jsonl_file,
                         std::uint64_t fingerprint,
                         const std::vector<GridJob>& jobs,
                         long long jobs_done, int trials) {
    ShardStream stream(jsonl_file);
    if (stream.header().fingerprint != fingerprint)
        fail("records.jsonl header disagrees with the manifest");
    const std::size_t num_heuristics = tables.heuristics.size();
    for (long long j = 0; j < jobs_done; ++j) {
        const GridJob& job = jobs[static_cast<std::size_t>(j)];
        DfbTable local(num_heuristics);
        for (int t = 0; t < trials; ++t) {
            auto rec = stream.next();
            if (!rec)
                fail("resume: '" + jsonl_file.string() +
                     "' ran out of records at scenario ordinal " +
                     std::to_string(job.ordinal) + " trial " +
                     std::to_string(t) +
                     " (fewer records than the manifest checkpointed)");
            if (rec->scenario_ordinal != job.ordinal || rec->trial != t)
                fail("resume: '" + jsonl_file.string() +
                     "' yields (ordinal " +
                     std::to_string(rec->scenario_ordinal) + ", trial " +
                     std::to_string(rec->trial) + ") where (ordinal " +
                     std::to_string(job.ordinal) + ", trial " +
                     std::to_string(t) +
                     ") was expected (duplicate, missing, or out-of-order "
                     "record?)");
            if (rec->scenario.seed != job.scenario.seed)
                fail("resume: ordinal " + std::to_string(job.ordinal) +
                     " carries seed " + std::to_string(rec->scenario.seed) +
                     " but the grid expects " +
                     std::to_string(job.scenario.seed) +
                     " (records from a different campaign?)");
            if (rec->scenario.checkpoint != job.scenario.checkpoint)
                fail("resume: ordinal " + std::to_string(job.ordinal) +
                     " carries checkpoint policy '" +
                     rec->scenario.checkpoint + "' but the grid expects '" +
                     job.scenario.checkpoint + "'");
            if (rec->makespans.size() != num_heuristics)
                fail("resume: ordinal " + std::to_string(job.ordinal) +
                     " has " + std::to_string(rec->makespans.size()) +
                     " makespans, expected " +
                     std::to_string(num_heuristics));
            index.add(rec->scenario_ordinal, rec->trial,
                      stream.record_offset());
            local.add_instance(rec->makespans);
        }
        merge_job_tables(tables, job.scenario, local);
    }
    if (stream.next())
        fail("resume: '" + jsonl_file.string() +
             "' holds more records than the manifest checkpointed");
}

} // namespace

// ---------------------------------------------------------------------------
// Shard planner
// ---------------------------------------------------------------------------

std::vector<GridJob> shard_jobs(const SweepConfig& cfg, int shard_index,
                                int shard_count) {
    if (shard_count < 1)
        throw std::invalid_argument("campaign: shard count must be >= 1");
    if (shard_index < 1 || shard_index > shard_count)
        throw std::invalid_argument(
            "campaign: shard index " + std::to_string(shard_index) +
            " out of range 1.." + std::to_string(shard_count));
    std::vector<GridJob> all = grid_jobs(cfg);
    if (shard_count == 1) return all;
    std::vector<GridJob> mine;
    mine.reserve(all.size() / static_cast<std::size_t>(shard_count) + 1);
    for (const GridJob& job : all)
        if (job.ordinal % static_cast<std::uint64_t>(shard_count) ==
            static_cast<std::uint64_t>(shard_index - 1))
            mine.push_back(job);
    return mine;
}

std::uint64_t
campaign_fingerprint(const SweepConfig& cfg,
                     const std::vector<std::string>& heuristics) {
    return fnv1a(canonical_description(cfg, heuristics));
}

// ---------------------------------------------------------------------------
// JSONL header
// ---------------------------------------------------------------------------

std::string campaign_header_line(const CampaignConfig& cfg) {
    const SweepConfig& sw = cfg.sweep;
    std::string out = "{\"campaign\":{\"version\":1,\"fingerprint\":";
    out += std::to_string(campaign_fingerprint(sw, cfg.heuristics));
    out += ",\"shard\":";
    out += std::to_string(cfg.shard_index);
    out += ",\"shards\":";
    out += std::to_string(cfg.shard_count);
    out += ",\"heuristics\":[";
    for (std::size_t h = 0; h < cfg.heuristics.size(); ++h) {
        if (h) out += ',';
        out += '"' + util::json::escape(cfg.heuristics[h]) + '"';
    }
    out += "],\"tasks\":" + json_int_array(sw.tasks_values);
    out += ",\"ncom\":" + json_int_array(sw.ncom_values);
    out += ",\"wmin\":" + json_int_array(sw.wmin_values);
    out += ",\"scenarios_per_cell\":" + std::to_string(sw.scenarios_per_cell);
    out += ",\"trials_per_scenario\":" +
           std::to_string(sw.trials_per_scenario);
    out += ",\"p\":" + std::to_string(sw.p);
    out += ",\"tdata_factor\":" + util::json::number(sw.tdata_factor);
    out += ",\"tprog_factor\":" + util::json::number(sw.tprog_factor);
    out += ",\"master_seed\":" + std::to_string(sw.master_seed);
    out += ",\"iterations\":" + std::to_string(sw.run.iterations);
    out += ",\"replica_cap\":" + std::to_string(sw.run.replica_cap);
    out += ",\"max_slots\":" + std::to_string(sw.run.max_slots);
    out += ",\"plan_class\":\"";
    out += plan_class_name(sw.run.plan_class);
    out += '"';
    if (has_checkpoint_axis(sw)) {
        out += ",\"checkpoints\":[";
        for (std::size_t c = 0; c < sw.checkpoint_values.size(); ++c) {
            if (c) out += ',';
            out += '"' + util::json::escape(sw.checkpoint_values[c]) + '"';
        }
        out += "],\"checkpoint_cost\":" +
               std::to_string(sw.run.checkpoint_cost);
    }
    out += "}}";
    return out;
}

CampaignHeader parse_campaign_header(const std::string& line) {
    const auto doc = util::json::Value::parse(line);
    const auto& c = doc.at("campaign");
    if (c.at("version").as_i64() != 1)
        throw std::invalid_argument("campaign: unsupported header version");
    CampaignHeader header;
    header.fingerprint = c.at("fingerprint").as_u64();
    header.shard_index = static_cast<int>(c.at("shard").as_i64());
    header.shard_count = static_cast<int>(c.at("shards").as_i64());
    // The fingerprint deliberately excludes the shard fields, so they need
    // their own validation here — for merge, status, and resume at once.
    if (header.shard_count < 1 || header.shard_index < 1 ||
        header.shard_index > header.shard_count)
        throw std::invalid_argument(
            "campaign: header names shard " +
            std::to_string(header.shard_index) + " of " +
            std::to_string(header.shard_count) + ", which is out of range");
    for (const auto& h : c.at("heuristics").items())
        header.heuristics.push_back(h.as_string());
    SweepConfig& sw = header.sweep;
    sw.tasks_values = parse_int_array(c.at("tasks"));
    sw.ncom_values = parse_int_array(c.at("ncom"));
    sw.wmin_values = parse_int_array(c.at("wmin"));
    sw.scenarios_per_cell =
        static_cast<int>(c.at("scenarios_per_cell").as_i64());
    sw.trials_per_scenario =
        static_cast<int>(c.at("trials_per_scenario").as_i64());
    sw.p = static_cast<int>(c.at("p").as_i64());
    sw.tdata_factor = c.at("tdata_factor").as_double();
    sw.tprog_factor = c.at("tprog_factor").as_double();
    sw.master_seed = c.at("master_seed").as_u64();
    sw.run.iterations = static_cast<int>(c.at("iterations").as_i64());
    sw.run.replica_cap = static_cast<int>(c.at("replica_cap").as_i64());
    sw.run.max_slots = c.at("max_slots").as_i64();
    sw.run.plan_class = plan_class_from(c.at("plan_class").as_string());
    // Optional (absent in classic, checkpoint-free campaign files).
    if (const auto* ckpts = c.find("checkpoints")) {
        sw.checkpoint_values.clear();
        for (const auto& v : ckpts->items())
            sw.checkpoint_values.push_back(v.as_string());
        sw.run.checkpoint_cost =
            static_cast<int>(c.at("checkpoint_cost").as_i64());
    }
    if (campaign_fingerprint(sw, header.heuristics) != header.fingerprint)
        throw std::invalid_argument(
            "campaign: header fingerprint does not match its configuration "
            "(tampered or version-skewed shard file)");
    return header;
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

std::filesystem::path manifest_path(const std::filesystem::path& dir) {
    return dir / "MANIFEST";
}

void write_manifest(const std::filesystem::path& dir,
                    const CampaignManifest& m) {
    std::string out = "volsched-campaign-manifest 1\n";
    out += "fingerprint " + std::to_string(m.fingerprint) + "\n";
    out += "shard " + std::to_string(m.shard_index) + " " +
           std::to_string(m.shard_count) + "\n";
    out += "jobs " + std::to_string(m.jobs_done) + " " +
           std::to_string(m.jobs_total) + "\n";
    out += "instances " + std::to_string(m.instances_done) + "\n";
    out += "jsonl " + std::to_string(m.jsonl_bytes) + "\n";
    out += "csv " + std::to_string(m.csv_bytes) + "\n";
    out += "complete " + std::string(m.complete ? "1" : "0") + "\n";
    util::write_file_atomic(manifest_path(dir), out);
}

std::optional<CampaignManifest>
read_manifest(const std::filesystem::path& dir) {
    const auto path = manifest_path(dir);
    if (!std::filesystem::exists(path)) return std::nullopt;
    std::istringstream in(util::read_text_file(path));
    std::string magic;
    int version = 0;
    in >> magic >> version;
    if (magic != "volsched-campaign-manifest" || version != 1)
        fail("malformed manifest '" + path.string() + "'");
    CampaignManifest m;
    std::string key;
    while (in >> key) {
        if (key == "fingerprint") in >> m.fingerprint;
        else if (key == "shard") in >> m.shard_index >> m.shard_count;
        else if (key == "jobs") in >> m.jobs_done >> m.jobs_total;
        else if (key == "instances") in >> m.instances_done;
        else if (key == "jsonl") in >> m.jsonl_bytes;
        else if (key == "csv") in >> m.csv_bytes;
        else if (key == "complete") {
            int c = 0;
            in >> c;
            m.complete = c != 0;
        } else {
            fail("unknown manifest key '" + key + "' in '" + path.string() +
                 "'");
        }
        if (in.fail())
            fail("malformed manifest value for '" + key + "' in '" +
                 path.string() + "'");
    }
    return m;
}

// ---------------------------------------------------------------------------
// Shard run loop
// ---------------------------------------------------------------------------

CampaignResult run_campaign(const CampaignConfig& cfg) {
    if (cfg.directory.empty())
        throw std::invalid_argument("campaign: no output directory");
    if (cfg.checkpoint_jobs < 1)
        throw std::invalid_argument("campaign: checkpoint_jobs must be >= 1");
    if (cfg.pipeline_window < 0)
        throw std::invalid_argument(
            "campaign: pipeline_window must be >= 0");
    if (cfg.pool && !cfg.pipeline)
        throw std::invalid_argument(
            "campaign: a shared pool requires pipeline mode (the barrier "
            "loop's parallel_for would block other drivers)");
    if (cfg.heuristics.empty())
        throw std::invalid_argument("campaign: no heuristics");
    for (const auto& name : cfg.heuristics)
        api::SchedulerRegistry::instance().validate(name);
    if (cfg.sweep.checkpoint_values.empty())
        throw std::invalid_argument("campaign: empty checkpoint axis");
    for (const auto& spec : cfg.sweep.checkpoint_values)
        ckpt::CheckpointRegistry::instance().validate(spec);

    const std::vector<GridJob> jobs =
        shard_jobs(cfg.sweep, cfg.shard_index, cfg.shard_count);
    const std::uint64_t fingerprint =
        campaign_fingerprint(cfg.sweep, cfg.heuristics);
    const int trials = cfg.sweep.trials_per_scenario;
    const std::size_t num_heuristics = cfg.heuristics.size();

    std::filesystem::create_directories(cfg.directory);
    const auto jsonl_file = cfg.directory / "records.jsonl";
    const auto csv_file = cfg.directory / "records.csv";

    std::optional<CampaignManifest> previous;
    if (cfg.resume) previous = read_manifest(cfg.directory);
    if (!previous) {
        // Fresh start — either requested, or no durable checkpoint exists
        // (e.g. a previous run was killed before its first manifest, whose
        // un-checkpointed records must not survive).
        std::filesystem::remove(manifest_path(cfg.directory));
        std::filesystem::remove(jsonl_file);
        std::filesystem::remove(csv_file);
        std::filesystem::remove(index_path(jsonl_file));
    }

    if (previous) {
        if (previous->fingerprint != fingerprint)
            fail("manifest in '" + cfg.directory.string() +
                 "' belongs to a different campaign configuration; use a "
                 "fresh directory or disable resume");
        if (previous->shard_index != cfg.shard_index ||
            previous->shard_count != cfg.shard_count)
            fail("manifest in '" + cfg.directory.string() + "' is shard " +
                 std::to_string(previous->shard_index) + "/" +
                 std::to_string(previous->shard_count) +
                 ", not the requested " + std::to_string(cfg.shard_index) +
                 "/" + std::to_string(cfg.shard_count));
        if (previous->jobs_total != static_cast<long long>(jobs.size()))
            fail("manifest job count disagrees with the grid");
        if (previous->jobs_done < 0 ||
            previous->jobs_done > previous->jobs_total)
            fail("manifest checkpoints " +
                 std::to_string(previous->jobs_done) + " of " +
                 std::to_string(previous->jobs_total) +
                 " jobs, which is impossible (corrupted manifest?)");
        if (cfg.write_csv != (previous->csv_bytes > 0))
            fail("the CSV sink cannot be toggled across a resume");
    }

    JsonlSink jsonl(jsonl_file, campaign_header_line(cfg));
    std::optional<CsvSink> csv;
    if (cfg.write_csv)
        csv.emplace(csv_file, cfg.heuristics,
                    has_checkpoint_axis(cfg.sweep));
    // The index sidecar is derived data: started fresh on every run and
    // refilled from the replay on resume, so it never participates in the
    // truncate-to-manifest contract.
    IndexSink index(index_path(jsonl_file), fingerprint);

    CampaignResult result(cfg.heuristics);
    result.jobs_total = static_cast<long long>(jobs.size());
    result.jsonl_path = jsonl_file;

    long long jobs_done = 0;
    if (previous) {
        // The resume contract: truncate each sink to the last durable
        // checkpoint, then rebuild the shard-local tables by replaying the
        // surviving records — streamed one line at a time — through the
        // canonical reduction.
        jsonl.resume_at(previous->jsonl_bytes);
        if (csv) csv->resume_at(previous->csv_bytes);
        jobs_done = previous->jobs_done;
        replay_shard_stream(result.tables, index, jsonl_file, fingerprint,
                            jobs, jobs_done, trials);
        index.flush(previous->jsonl_bytes);
    }

    CampaignManifest manifest;
    manifest.fingerprint = fingerprint;
    manifest.shard_index = cfg.shard_index;
    manifest.shard_count = cfg.shard_count;
    manifest.jobs_total = static_cast<long long>(jobs.size());

    const long long jobs_total = static_cast<long long>(jobs.size());
    const long long shard_instances_total = jobs_total * trials;
    std::atomic<long long> instances_done{jobs_done * trials};

    std::optional<util::ThreadPool> owned_pool;
    if (!cfg.pool) owned_pool.emplace(cfg.sweep.threads);
    util::ThreadPool& pool = cfg.pool ? *cfg.pool : *owned_pool;

    // Observability (all observer-only; outputs are byte-identical with or
    // without it): pipeline occupancy gauges and stage wall-time histograms
    // into the process registry when a driver installed one, plus the
    // per-shard status.json heartbeat.  Gauges move by deltas because
    // parallel shards share them.
    obs::Registry* const reg = obs::Registry::active();
    obs::Gauge* const g_queue =
        reg ? &reg->gauge("campaign.queue_depth") : nullptr;
    obs::Gauge* const g_lag =
        reg ? &reg->gauge("campaign.emitter_lag") : nullptr;
    obs::Gauge* const g_window =
        reg ? &reg->gauge("campaign.window") : nullptr;
    obs::Histogram* const h_run =
        reg ? &reg->histogram("campaign.run_us") : nullptr;
    obs::Histogram* const h_serialize =
        reg ? &reg->histogram("campaign.serialize_us") : nullptr;
    obs::Histogram* const h_fsync =
        reg ? &reg->histogram("campaign.fsync_us") : nullptr;
    const bool timed = cfg.heartbeat || reg != nullptr;
    obs::Histogram stage_run, stage_serialize, stage_fsync;
    const auto stage_sample = [timed](obs::Histogram& local,
                                      obs::Histogram* global,
                                      std::int64_t start_us) {
        if (!timed) return;
        const std::int64_t us = obs::now_us() - start_us;
        local.observe(us);
        if (global) global->observe(us);
    };
    // Heartbeat pipeline-occupancy shadows (atomics: workers bump the
    // queue, the driver reads them when writing the heartbeat).
    std::atomic<long long> hb_queue{0};
    std::atomic<long long> hb_lag{0};
    long long hb_window = 0;
    std::int64_t last_heartbeat_ms = 0; // driver thread only
    const auto stage_stats = [](const obs::Histogram& h) {
        return StageStats{h.count(), h.sum(), h.max()};
    };
    auto write_heartbeat = [&](const char* state) {
        if (!cfg.heartbeat) return;
        ShardStatus s;
        s.shard = cfg.shard_index;
        s.shards = cfg.shard_count;
        s.jobs_done = jobs_done;
        s.jobs_total = jobs_total;
        s.instances_done = instances_done.load();
        s.queue_depth = hb_queue.load();
        s.emitter_lag = hb_lag.load();
        s.window = hb_window;
        s.state = state;
        s.run = stage_stats(stage_run);
        s.serialize = stage_stats(stage_serialize);
        s.fsync = stage_stats(stage_fsync);
        write_status(cfg.directory, s);
        last_heartbeat_ms = obs::now_ms();
    };
    auto heartbeat_tick = [&] { // driver thread, between emissions
        if (!cfg.heartbeat) return;
        if (obs::now_ms() - last_heartbeat_ms < kHeartbeatIntervalMs) return;
        write_heartbeat("running");
    };
    write_heartbeat("running");

    // Per-job compute, shared verbatim by both execution modes; runs on
    // worker threads, touches no sink.
    struct JobOutcome {
        DfbTable local;
        std::vector<InstanceRecord> records;
    };
    auto compute_job = [&](const GridJob& job) {
        const std::int64_t start_us = timed ? obs::now_us() : 0;
        JobOutcome out{DfbTable(num_heuristics), {}};
        const RealizedScenario rs = realize(job.scenario);
        out.records.reserve(static_cast<std::size_t>(trials));
        for (int trial = 0; trial < trials; ++trial) {
            const std::uint64_t trial_seed = util::mix_seed(
                cfg.sweep.master_seed, 0x54524cULL, job.seed_ordinal,
                static_cast<std::uint64_t>(trial));
            auto outcome =
                run_instance(rs, job.scenario.tasks, cfg.heuristics,
                             cfg.sweep.run, trial_seed,
                             job.scenario.checkpoint);
            out.local.add_instance(outcome.makespans);
            InstanceRecord rec;
            rec.scenario_ordinal = job.ordinal;
            rec.trial = trial;
            rec.scenario = job.scenario;
            rec.makespans = std::move(outcome.makespans);
            out.records.push_back(std::move(rec));
            const long long done = ++instances_done;
            if (cfg.sweep.progress)
                cfg.sweep.progress(done, shard_instances_total);
        }
        stage_sample(stage_run, h_run, start_us);
        return out;
    };

    // Deterministic emission: records leave in (ordinal, trial) order
    // regardless of which worker finished first.  Only ever called from
    // the driver thread — the single writer every ResultSink expects.
    auto emit_job = [&](const GridJob& job, JobOutcome& out) {
        const std::int64_t start_us = timed ? obs::now_us() : 0;
        for (const InstanceRecord& rec : out.records) {
            index.add(rec.scenario_ordinal, rec.trial, jsonl.offset());
            jsonl.write(rec);
            if (csv) csv->write(rec);
            if (cfg.sweep.record) cfg.sweep.record(rec);
        }
        merge_job_tables(result.tables, job.scenario, out.local);
        stage_sample(stage_serialize, h_serialize, start_us);
    };

    // Durable checkpoint: sink bytes hit the disk before the manifest
    // vouches for them.
    auto checkpoint = [&](long long done_now) {
        const std::int64_t start_us = timed ? obs::now_us() : 0;
        jsonl.flush();
        if (csv) csv->flush();
        index.flush(jsonl.offset());
        manifest.jobs_done = done_now;
        manifest.instances_done = done_now * trials;
        manifest.jsonl_bytes = jsonl.offset();
        manifest.csv_bytes = csv ? csv->offset() : 0;
        manifest.complete = done_now == jobs_total;
        write_manifest(cfg.directory, manifest);
        stage_sample(stage_fsync, h_fsync, start_us);
        write_heartbeat("running");
    };

    if (!cfg.pipeline) {
        // Historical barrier loop, kept for same-binary A/B benchmarking:
        // every batch waits for its slowest job before anything is emitted.
        int batches_run = 0;
        while (jobs_done < jobs_total) {
            if (cfg.stop_after_batches > 0 &&
                batches_run >= cfg.stop_after_batches)
                break;
            const std::size_t batch_begin =
                static_cast<std::size_t>(jobs_done);
            const std::size_t batch_end =
                std::min(jobs.size(),
                         batch_begin +
                             static_cast<std::size_t>(cfg.checkpoint_jobs));
            const std::size_t batch_size = batch_end - batch_begin;

            std::vector<JobOutcome> batch(
                batch_size, JobOutcome{DfbTable(num_heuristics), {}});
            pool.parallel_for(batch_size, [&](std::size_t i) {
                batch[i] = compute_job(jobs[batch_begin + i]);
            });
            for (std::size_t i = 0; i < batch_size; ++i)
                emit_job(jobs[batch_begin + i], batch[i]);

            jobs_done = static_cast<long long>(batch_end);
            checkpoint(jobs_done);
            ++batches_run;
        }
    } else {
        // The completion pipeline.  Workers pull jobs from a shared cursor
        // (`next_submit`, advanced under `mu` as the emitter frees window
        // slots) and deposit finished JobOutcomes keyed by job position;
        // this driver thread is the emitter, draining deposits strictly in
        // job order — so simulation overlaps sink I/O, a checkpoint's
        // fsync stalls nobody, and a straggler delays only emission, not
        // the pool.  The window caps finished-but-unemitted + in-flight
        // jobs, bounding peak record memory just like the batch loop did.
        const long long first_job = jobs_done;
        long long end_jobs = jobs_total;
        if (cfg.stop_after_batches > 0)
            end_jobs = std::min(
                end_jobs,
                first_job + static_cast<long long>(cfg.stop_after_batches) *
                                cfg.checkpoint_jobs);
        const long long window =
            cfg.pipeline_window > 0
                ? cfg.pipeline_window
                : std::max<long long>(
                      cfg.checkpoint_jobs,
                      2 * static_cast<long long>(pool.size()));
        hb_window = window;
        if (g_window) g_window->add(window);

        std::mutex mu;
        std::condition_variable cv;
        std::map<long long, JobOutcome> ready;
        std::exception_ptr first_error;
        long long in_flight = 0;
        long long next_submit = jobs_done;

        // Caller holds `mu`.  Tasks capture this stack frame by reference,
        // which is why every exit path below drains `in_flight` to zero
        // before unwinding.
        auto submit_upto_window = [&](long long emitted) {
            while (next_submit < end_jobs && !first_error &&
                   next_submit - emitted < window) {
                const long long j = next_submit++;
                ++in_flight;
                hb_lag.fetch_add(1, std::memory_order_relaxed);
                if (g_lag) g_lag->add(1);
                pool.submit([&, j] {
                    // notify_all happens *under* `mu`: the driver destroys
                    // `cv` (by unwinding this stack frame) the moment it
                    // observes in_flight == 0, and it cannot observe that
                    // until the lock is released — after the notify call
                    // has fully returned.
                    try {
                        JobOutcome out =
                            compute_job(jobs[static_cast<std::size_t>(j)]);
                        std::lock_guard lock(mu);
                        ready.emplace(j, std::move(out));
                        --in_flight;
                        hb_queue.fetch_add(1, std::memory_order_relaxed);
                        if (g_queue) g_queue->add(1);
                        cv.notify_all();
                    } catch (...) {
                        std::lock_guard lock(mu);
                        if (!first_error)
                            first_error = std::current_exception();
                        --in_flight;
                        cv.notify_all();
                    }
                });
            }
        };

        try {
            {
                std::unique_lock lock(mu);
                submit_upto_window(jobs_done);
            }
            while (jobs_done < end_jobs) {
                std::optional<JobOutcome> out;
                {
                    std::unique_lock lock(mu);
                    cv.wait(lock, [&] {
                        return first_error || ready.contains(jobs_done);
                    });
                    if (first_error) break;
                    auto node = ready.extract(jobs_done);
                    out.emplace(std::move(node.mapped()));
                    hb_queue.fetch_add(-1, std::memory_order_relaxed);
                    if (g_queue) g_queue->add(-1);
                    submit_upto_window(jobs_done + 1);
                }
                emit_job(jobs[static_cast<std::size_t>(jobs_done)], *out);
                hb_lag.fetch_add(-1, std::memory_order_relaxed);
                if (g_lag) g_lag->add(-1);
                ++jobs_done;
                if ((jobs_done - first_job) % cfg.checkpoint_jobs == 0 ||
                    jobs_done == jobs_total)
                    checkpoint(jobs_done);
                heartbeat_tick();
            }
        } catch (...) {
            std::lock_guard lock(mu);
            if (!first_error) first_error = std::current_exception();
        }
        {
            std::unique_lock lock(mu);
            cv.wait(lock, [&] { return in_flight == 0; });
            if (g_window) g_window->add(-window);
            if (first_error) std::rethrow_exception(first_error);
        }
    }

    write_heartbeat(jobs_done == jobs_total ? "done" : "stopped");
    result.jobs_done = jobs_done;
    result.instances_done = jobs_done * trials;
    result.complete = jobs_done == jobs_total;
    return result;
}

// ---------------------------------------------------------------------------
// In-process parallel shards
// ---------------------------------------------------------------------------

ParallelCampaignResult run_parallel_campaign(const CampaignConfig& base) {
    if (base.shard_count < 1)
        throw std::invalid_argument("campaign: shard count must be >= 1");
    if (base.directory.empty())
        throw std::invalid_argument("campaign: no output directory");
    if (!base.pipeline)
        throw std::invalid_argument(
            "campaign: parallel shards require pipeline mode (the barrier "
            "loop cannot share a worker pool)");
    const int shards = base.shard_count;
    const int trials = base.sweep.trials_per_scenario;

    // Aggregated progress: every underlying progress call is exactly one
    // newly finished instance, so a shared counter over the full grid gives
    // a monotone campaign-wide (done, total) regardless of which shard's
    // worker reports.  Resumed shards start from their manifests' counts.
    const long long grid_instances =
        static_cast<long long>(grid_jobs(base.sweep).size()) * trials;
    std::atomic<long long> aggregate_done{0};
    if (base.resume) {
        for (int k = 1; k <= shards; ++k) {
            const auto dir =
                base.directory / shard_directory_name(k, shards);
            if (const auto m = read_manifest(dir))
                aggregate_done += m->instances_done;
        }
    }

    util::ThreadPool pool(base.sweep.threads);
    std::mutex record_mutex;

    std::vector<std::optional<CampaignResult>> results(
        static_cast<std::size_t>(shards));
    std::vector<std::exception_ptr> errors(
        static_cast<std::size_t>(shards));
    std::vector<std::thread> drivers;
    drivers.reserve(static_cast<std::size_t>(shards));
    for (int k = 1; k <= shards; ++k) {
        drivers.emplace_back([&, k] {
            const auto slot = static_cast<std::size_t>(k - 1);
            try {
                CampaignConfig cfg = base;
                cfg.shard_index = k;
                cfg.directory =
                    base.directory / shard_directory_name(k, shards);
                cfg.pool = &pool;
                if (base.sweep.progress)
                    cfg.sweep.progress = [&](long long, long long) {
                        base.sweep.progress(aggregate_done.fetch_add(1) + 1,
                                            grid_instances);
                    };
                if (base.sweep.record)
                    // Each shard's emitter is single-threaded, but N of
                    // them share the caller's hook.
                    cfg.sweep.record = [&](const InstanceRecord& rec) {
                        std::lock_guard lock(record_mutex);
                        base.sweep.record(rec);
                    };
                results[slot].emplace(run_campaign(cfg));
            } catch (...) {
                errors[slot] = std::current_exception();
            }
        });
    }
    for (auto& t : drivers) t.join();
    for (const auto& e : errors)
        if (e) std::rethrow_exception(e);

    ParallelCampaignResult out;
    out.complete = true;
    for (auto& r : results) {
        out.jobs_total += r->jobs_total;
        out.jobs_done += r->jobs_done;
        out.instances_done += r->instances_done;
        out.complete = out.complete && r->complete;
        out.shards.push_back(std::move(*r));
    }
    return out;
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

std::pair<CampaignHeader, std::vector<InstanceRecord>>
read_shard_records(const std::filesystem::path& jsonl_file) {
    const std::string text = util::read_text_file(jsonl_file);
    std::size_t pos = 0;
    auto next_line = [&]() -> std::optional<std::string_view> {
        if (pos >= text.size()) return std::nullopt;
        const std::size_t nl = text.find('\n', pos);
        const std::size_t end = nl == std::string::npos ? text.size() : nl;
        std::string_view line(text.data() + pos, end - pos);
        pos = end + 1;
        return line;
    };

    const auto header_line = next_line();
    if (!header_line)
        fail("'" + jsonl_file.string() + "' is empty");
    CampaignHeader header = parse_campaign_header(std::string(*header_line));

    std::vector<InstanceRecord> records;
    while (const auto line = next_line()) {
        if (line->empty()) continue;
        try {
            records.push_back(JsonlSink::parse_record(*line));
        } catch (const std::invalid_argument& e) {
            fail("'" + jsonl_file.string() + "' holds a malformed record (" +
                 e.what() + "); was the shard killed without a checkpoint? "
                 "resume it to self-heal, or delete the torn tail");
        }
    }
    return {std::move(header), std::move(records)};
}

SweepResult aggregate_records(const SweepConfig& cfg,
                              const std::vector<std::string>& heuristics,
                              const std::vector<InstanceRecord>& records) {
    SweepResult result(heuristics);
    replay_records(result, cfg, grid_jobs(cfg), records, "aggregate");
    return result;
}

SweepResult
merge_shards(const std::vector<std::filesystem::path>& jsonl_files) {
    if (jsonl_files.empty()) fail("merge: no shard files");

    // Open every shard and cross-validate the headers up front.
    std::vector<std::unique_ptr<ShardStream>> streams;
    streams.reserve(jsonl_files.size());
    for (const auto& file : jsonl_files) {
        auto stream = std::make_unique<ShardStream>(file);
        if (!streams.empty()) {
            const CampaignHeader& ref = streams.front()->header();
            if (stream->header().fingerprint != ref.fingerprint)
                fail("merge: '" + file.string() +
                     "' belongs to a different campaign (fingerprint "
                     "mismatch)");
            if (stream->header().shard_count != ref.shard_count)
                fail("merge: '" + file.string() +
                     "' disagrees on the shard count");
        }
        streams.push_back(std::move(stream));
    }
    const CampaignHeader& ref = streams.front()->header();
    std::vector<ShardStream*> by_shard(
        static_cast<std::size_t>(ref.shard_count), nullptr);
    for (const auto& stream : streams) {
        const int k = stream->header().shard_index;
        const auto slot = static_cast<std::size_t>(k - 1);
        if (k < 1 || k > ref.shard_count || by_shard[slot])
            fail("merge: shard " + std::to_string(k) +
                 " appears twice or is out of range");
        by_shard[slot] = stream.get();
    }
    for (std::size_t k = 0; k < by_shard.size(); ++k)
        if (!by_shard[k])
            fail("merge: shard " + std::to_string(k + 1) + " of " +
                 std::to_string(by_shard.size()) + " is missing");

    // Streaming k-way merge.  The grid enumeration *is* the merged order:
    // shard k-of-N holds exactly the ordinals congruent to k-1 mod N, each
    // emitted in (ordinal, trial) order, so walking the grid and pulling
    // `trials` records from the owning shard visits every record exactly
    // once, in the order run_sweep reduces them — per-job tables built in
    // trial order, merged in ordinal order — keeping the floating-point
    // operation sequence, and therefore every digit, bit-identical to the
    // unsharded sweep.  Peak memory is O(shards + grid jobs), never
    // O(records).
    const std::vector<GridJob> grid = grid_jobs(ref.sweep);
    const int trials = ref.sweep.trials_per_scenario;
    const std::size_t num_heuristics = ref.heuristics.size();
    SweepResult result(ref.heuristics);
    for (const GridJob& job : grid) {
        ShardStream& shard = *by_shard[static_cast<std::size_t>(
            job.ordinal % static_cast<std::uint64_t>(ref.shard_count))];
        DfbTable local(num_heuristics);
        for (int t = 0; t < trials; ++t) {
            auto rec = shard.next();
            if (!rec)
                fail("merge: '" + shard.path().string() +
                     "' ran out of records at scenario ordinal " +
                     std::to_string(job.ordinal) + " trial " +
                     std::to_string(t) + " (incomplete shard?)");
            if (rec->scenario_ordinal != job.ordinal || rec->trial != t)
                fail("merge: '" + shard.path().string() +
                     "' yields (ordinal " +
                     std::to_string(rec->scenario_ordinal) + ", trial " +
                     std::to_string(rec->trial) + ") where (ordinal " +
                     std::to_string(job.ordinal) + ", trial " +
                     std::to_string(t) +
                     ") was expected (duplicate, missing, or out-of-order "
                     "record?)");
            if (rec->scenario.seed != job.scenario.seed)
                fail("merge: ordinal " + std::to_string(job.ordinal) +
                     " carries seed " + std::to_string(rec->scenario.seed) +
                     " but the grid expects " +
                     std::to_string(job.scenario.seed) +
                     " (records from a different campaign?)");
            if (rec->scenario.checkpoint != job.scenario.checkpoint)
                fail("merge: ordinal " + std::to_string(job.ordinal) +
                     " carries checkpoint policy '" +
                     rec->scenario.checkpoint + "' but the grid expects '" +
                     job.scenario.checkpoint + "'");
            if (rec->makespans.size() != num_heuristics)
                fail("merge: ordinal " + std::to_string(job.ordinal) +
                     " has " + std::to_string(rec->makespans.size()) +
                     " makespans, expected " +
                     std::to_string(num_heuristics));
            local.add_instance(rec->makespans);
        }
        merge_job_tables(result, job.scenario, local);
    }
    for (const auto& stream : streams)
        if (stream->next())
            fail("merge: '" + stream->path().string() +
                 "' holds records past the end of its shard of the grid "
                 "(duplicate shard or foreign file?)");
    return result;
}

// ---------------------------------------------------------------------------
// Directory layout
// ---------------------------------------------------------------------------

std::string shard_directory_name(int shard_index, int shard_count) {
    return "shard-" + std::to_string(shard_index) + "-of-" +
           std::to_string(shard_count);
}

std::vector<std::filesystem::path>
find_shard_directories(const std::filesystem::path& root) {
    std::vector<std::filesystem::path> dirs;
    if (!std::filesystem::is_directory(root)) return dirs;
    for (const auto& entry : std::filesystem::directory_iterator(root)) {
        if (!entry.is_directory()) continue;
        const std::string name = entry.path().filename().string();
        if (name.rfind("shard-", 0) != 0) continue;
        if (!std::filesystem::exists(entry.path() / "records.jsonl"))
            continue;
        dirs.push_back(entry.path());
    }
    std::sort(dirs.begin(), dirs.end());
    return dirs;
}

} // namespace volsched::exp
