#include "exp/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "api/registry.hpp"
#include "ckpt/registry.hpp"
#include "util/atomic_io.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace volsched::exp {

namespace {

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("campaign: " + what);
}

const char* plan_class_name(sim::SchedulerClass c) {
    switch (c) {
    case sim::SchedulerClass::Dynamic: return "dynamic";
    case sim::SchedulerClass::Passive: return "passive";
    case sim::SchedulerClass::Proactive: return "proactive";
    }
    fail("unknown scheduler class");
}

sim::SchedulerClass plan_class_from(const std::string& name) {
    if (name == "dynamic") return sim::SchedulerClass::Dynamic;
    if (name == "passive") return sim::SchedulerClass::Passive;
    if (name == "proactive") return sim::SchedulerClass::Proactive;
    throw std::invalid_argument("campaign: unknown plan class '" + name + "'");
}

/// FNV-1a 64-bit over a canonical serialization; stable across platforms.
std::uint64_t fnv1a(std::string_view text) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string join_ints(const std::vector<int>& xs) {
    std::string out;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (i) out += ',';
        out += std::to_string(xs[i]);
    }
    return out;
}

/// Whether the sweep actually exercises the checkpoint layer.  The default
/// single-"none" axis is the classic grid: it is excluded from the
/// fingerprint and the header so pre-checkpoint campaign files stay valid
/// (and resumable) under the current code.
bool has_checkpoint_axis(const SweepConfig& cfg) {
    return cfg.checkpoint_values.size() != 1 ||
           cfg.checkpoint_values.front() != "none";
}

/// The canonical result-determining description (no shard, no threads).
std::string canonical_description(const SweepConfig& cfg,
                                  const std::vector<std::string>& heuristics) {
    std::string s = "volsched-campaign v1;tasks=" + join_ints(cfg.tasks_values);
    s += ";ncom=" + join_ints(cfg.ncom_values);
    s += ";wmin=" + join_ints(cfg.wmin_values);
    s += ";scenarios=" + std::to_string(cfg.scenarios_per_cell);
    s += ";trials=" + std::to_string(cfg.trials_per_scenario);
    s += ";p=" + std::to_string(cfg.p);
    s += ";tdata=" + util::json::number(cfg.tdata_factor);
    s += ";tprog=" + util::json::number(cfg.tprog_factor);
    s += ";seed=" + std::to_string(cfg.master_seed);
    s += ";iterations=" + std::to_string(cfg.run.iterations);
    s += ";replica_cap=" + std::to_string(cfg.run.replica_cap);
    s += ";max_slots=" + std::to_string(cfg.run.max_slots);
    s += ";plan_class=" + std::string(plan_class_name(cfg.run.plan_class));
    if (has_checkpoint_axis(cfg)) {
        s += ";checkpoints=";
        for (std::size_t c = 0; c < cfg.checkpoint_values.size(); ++c) {
            if (c) s += ',';
            s += cfg.checkpoint_values[c];
        }
        s += ";checkpoint_cost=" + std::to_string(cfg.run.checkpoint_cost);
    }
    s += ";heuristics=";
    for (std::size_t h = 0; h < heuristics.size(); ++h) {
        if (h) s += ',';
        s += heuristics[h];
    }
    return s;
}

std::vector<int> parse_int_array(const util::json::Value& v) {
    std::vector<int> out;
    for (const auto& item : v.items())
        out.push_back(static_cast<int>(item.as_i64()));
    return out;
}

std::string json_int_array(const std::vector<int>& xs) {
    return "[" + join_ints(xs) + "]";
}

/// Replays records for the given jobs through run_sweep's exact reduction:
/// per-job DfbTable filled in trial order, merged into the overall and
/// by-key tables in job order.  `source` labels error messages.
void replay_records(SweepResult& result, const SweepConfig& cfg,
                    const std::vector<GridJob>& jobs,
                    const std::vector<InstanceRecord>& records,
                    const std::string& source) {
    const std::size_t num_heuristics = result.heuristics.size();
    const int trials = cfg.trials_per_scenario;

    std::unordered_map<std::uint64_t, std::vector<const InstanceRecord*>>
        by_ordinal;
    by_ordinal.reserve(records.size());
    for (const auto& rec : records)
        by_ordinal[rec.scenario_ordinal].push_back(&rec);

    std::size_t consumed = 0;
    for (const GridJob& job : jobs) {
        auto it = by_ordinal.find(job.ordinal);
        if (it == by_ordinal.end() ||
            it->second.size() != static_cast<std::size_t>(trials))
            fail(source + ": scenario ordinal " + std::to_string(job.ordinal) +
                 " has " +
                 std::to_string(it == by_ordinal.end() ? 0
                                                       : it->second.size()) +
                 " records, expected " + std::to_string(trials) +
                 " trials (incomplete, duplicated, or missing shard?)");
        auto& trial_records = it->second;
        std::sort(trial_records.begin(), trial_records.end(),
                  [](const InstanceRecord* a, const InstanceRecord* b) {
                      return a->trial < b->trial;
                  });
        DfbTable local(num_heuristics);
        for (int t = 0; t < trials; ++t) {
            const InstanceRecord& rec = *trial_records[static_cast<std::size_t>(t)];
            if (rec.trial != t)
                fail(source + ": ordinal " + std::to_string(job.ordinal) +
                     " has duplicate or missing trial " + std::to_string(t));
            if (rec.scenario.seed != job.scenario.seed)
                fail(source + ": ordinal " + std::to_string(job.ordinal) +
                     " carries seed " + std::to_string(rec.scenario.seed) +
                     " but the grid expects " +
                     std::to_string(job.scenario.seed) +
                     " (records from a different campaign?)");
            if (rec.scenario.checkpoint != job.scenario.checkpoint)
                fail(source + ": ordinal " + std::to_string(job.ordinal) +
                     " carries checkpoint policy '" +
                     rec.scenario.checkpoint + "' but the grid expects '" +
                     job.scenario.checkpoint + "'");
            if (rec.makespans.size() != num_heuristics)
                fail(source + ": ordinal " + std::to_string(job.ordinal) +
                     " has " + std::to_string(rec.makespans.size()) +
                     " makespans, expected " +
                     std::to_string(num_heuristics));
            local.add_instance(rec.makespans);
        }
        consumed += static_cast<std::size_t>(trials);
        merge_job_tables(result, job.scenario, local);
    }
    if (consumed != records.size())
        fail(source + ": " + std::to_string(records.size() - consumed) +
             " records do not belong to the expected grid (duplicate shard "
             "or foreign file?)");
}

} // namespace

// ---------------------------------------------------------------------------
// Shard planner
// ---------------------------------------------------------------------------

std::vector<GridJob> shard_jobs(const SweepConfig& cfg, int shard_index,
                                int shard_count) {
    if (shard_count < 1)
        throw std::invalid_argument("campaign: shard count must be >= 1");
    if (shard_index < 1 || shard_index > shard_count)
        throw std::invalid_argument(
            "campaign: shard index " + std::to_string(shard_index) +
            " out of range 1.." + std::to_string(shard_count));
    std::vector<GridJob> all = grid_jobs(cfg);
    if (shard_count == 1) return all;
    std::vector<GridJob> mine;
    mine.reserve(all.size() / static_cast<std::size_t>(shard_count) + 1);
    for (const GridJob& job : all)
        if (job.ordinal % static_cast<std::uint64_t>(shard_count) ==
            static_cast<std::uint64_t>(shard_index - 1))
            mine.push_back(job);
    return mine;
}

std::uint64_t
campaign_fingerprint(const SweepConfig& cfg,
                     const std::vector<std::string>& heuristics) {
    return fnv1a(canonical_description(cfg, heuristics));
}

// ---------------------------------------------------------------------------
// JSONL header
// ---------------------------------------------------------------------------

std::string campaign_header_line(const CampaignConfig& cfg) {
    const SweepConfig& sw = cfg.sweep;
    std::string out = "{\"campaign\":{\"version\":1,\"fingerprint\":";
    out += std::to_string(campaign_fingerprint(sw, cfg.heuristics));
    out += ",\"shard\":";
    out += std::to_string(cfg.shard_index);
    out += ",\"shards\":";
    out += std::to_string(cfg.shard_count);
    out += ",\"heuristics\":[";
    for (std::size_t h = 0; h < cfg.heuristics.size(); ++h) {
        if (h) out += ',';
        out += '"' + util::json::escape(cfg.heuristics[h]) + '"';
    }
    out += "],\"tasks\":" + json_int_array(sw.tasks_values);
    out += ",\"ncom\":" + json_int_array(sw.ncom_values);
    out += ",\"wmin\":" + json_int_array(sw.wmin_values);
    out += ",\"scenarios_per_cell\":" + std::to_string(sw.scenarios_per_cell);
    out += ",\"trials_per_scenario\":" +
           std::to_string(sw.trials_per_scenario);
    out += ",\"p\":" + std::to_string(sw.p);
    out += ",\"tdata_factor\":" + util::json::number(sw.tdata_factor);
    out += ",\"tprog_factor\":" + util::json::number(sw.tprog_factor);
    out += ",\"master_seed\":" + std::to_string(sw.master_seed);
    out += ",\"iterations\":" + std::to_string(sw.run.iterations);
    out += ",\"replica_cap\":" + std::to_string(sw.run.replica_cap);
    out += ",\"max_slots\":" + std::to_string(sw.run.max_slots);
    out += ",\"plan_class\":\"";
    out += plan_class_name(sw.run.plan_class);
    out += '"';
    if (has_checkpoint_axis(sw)) {
        out += ",\"checkpoints\":[";
        for (std::size_t c = 0; c < sw.checkpoint_values.size(); ++c) {
            if (c) out += ',';
            out += '"' + util::json::escape(sw.checkpoint_values[c]) + '"';
        }
        out += "],\"checkpoint_cost\":" +
               std::to_string(sw.run.checkpoint_cost);
    }
    out += "}}";
    return out;
}

CampaignHeader parse_campaign_header(const std::string& line) {
    const auto doc = util::json::Value::parse(line);
    const auto& c = doc.at("campaign");
    if (c.at("version").as_i64() != 1)
        throw std::invalid_argument("campaign: unsupported header version");
    CampaignHeader header;
    header.fingerprint = c.at("fingerprint").as_u64();
    header.shard_index = static_cast<int>(c.at("shard").as_i64());
    header.shard_count = static_cast<int>(c.at("shards").as_i64());
    // The fingerprint deliberately excludes the shard fields, so they need
    // their own validation here — for merge, status, and resume at once.
    if (header.shard_count < 1 || header.shard_index < 1 ||
        header.shard_index > header.shard_count)
        throw std::invalid_argument(
            "campaign: header names shard " +
            std::to_string(header.shard_index) + " of " +
            std::to_string(header.shard_count) + ", which is out of range");
    for (const auto& h : c.at("heuristics").items())
        header.heuristics.push_back(h.as_string());
    SweepConfig& sw = header.sweep;
    sw.tasks_values = parse_int_array(c.at("tasks"));
    sw.ncom_values = parse_int_array(c.at("ncom"));
    sw.wmin_values = parse_int_array(c.at("wmin"));
    sw.scenarios_per_cell =
        static_cast<int>(c.at("scenarios_per_cell").as_i64());
    sw.trials_per_scenario =
        static_cast<int>(c.at("trials_per_scenario").as_i64());
    sw.p = static_cast<int>(c.at("p").as_i64());
    sw.tdata_factor = c.at("tdata_factor").as_double();
    sw.tprog_factor = c.at("tprog_factor").as_double();
    sw.master_seed = c.at("master_seed").as_u64();
    sw.run.iterations = static_cast<int>(c.at("iterations").as_i64());
    sw.run.replica_cap = static_cast<int>(c.at("replica_cap").as_i64());
    sw.run.max_slots = c.at("max_slots").as_i64();
    sw.run.plan_class = plan_class_from(c.at("plan_class").as_string());
    // Optional (absent in classic, checkpoint-free campaign files).
    if (const auto* ckpts = c.find("checkpoints")) {
        sw.checkpoint_values.clear();
        for (const auto& v : ckpts->items())
            sw.checkpoint_values.push_back(v.as_string());
        sw.run.checkpoint_cost =
            static_cast<int>(c.at("checkpoint_cost").as_i64());
    }
    if (campaign_fingerprint(sw, header.heuristics) != header.fingerprint)
        throw std::invalid_argument(
            "campaign: header fingerprint does not match its configuration "
            "(tampered or version-skewed shard file)");
    return header;
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

std::filesystem::path manifest_path(const std::filesystem::path& dir) {
    return dir / "MANIFEST";
}

void write_manifest(const std::filesystem::path& dir,
                    const CampaignManifest& m) {
    std::string out = "volsched-campaign-manifest 1\n";
    out += "fingerprint " + std::to_string(m.fingerprint) + "\n";
    out += "shard " + std::to_string(m.shard_index) + " " +
           std::to_string(m.shard_count) + "\n";
    out += "jobs " + std::to_string(m.jobs_done) + " " +
           std::to_string(m.jobs_total) + "\n";
    out += "instances " + std::to_string(m.instances_done) + "\n";
    out += "jsonl " + std::to_string(m.jsonl_bytes) + "\n";
    out += "csv " + std::to_string(m.csv_bytes) + "\n";
    out += "complete " + std::string(m.complete ? "1" : "0") + "\n";
    util::write_file_atomic(manifest_path(dir), out);
}

std::optional<CampaignManifest>
read_manifest(const std::filesystem::path& dir) {
    const auto path = manifest_path(dir);
    if (!std::filesystem::exists(path)) return std::nullopt;
    std::istringstream in(util::read_text_file(path));
    std::string magic;
    int version = 0;
    in >> magic >> version;
    if (magic != "volsched-campaign-manifest" || version != 1)
        fail("malformed manifest '" + path.string() + "'");
    CampaignManifest m;
    std::string key;
    while (in >> key) {
        if (key == "fingerprint") in >> m.fingerprint;
        else if (key == "shard") in >> m.shard_index >> m.shard_count;
        else if (key == "jobs") in >> m.jobs_done >> m.jobs_total;
        else if (key == "instances") in >> m.instances_done;
        else if (key == "jsonl") in >> m.jsonl_bytes;
        else if (key == "csv") in >> m.csv_bytes;
        else if (key == "complete") {
            int c = 0;
            in >> c;
            m.complete = c != 0;
        } else {
            fail("unknown manifest key '" + key + "' in '" + path.string() +
                 "'");
        }
        if (in.fail())
            fail("malformed manifest value for '" + key + "' in '" +
                 path.string() + "'");
    }
    return m;
}

// ---------------------------------------------------------------------------
// Shard run loop
// ---------------------------------------------------------------------------

CampaignResult run_campaign(const CampaignConfig& cfg) {
    if (cfg.directory.empty())
        throw std::invalid_argument("campaign: no output directory");
    if (cfg.checkpoint_jobs < 1)
        throw std::invalid_argument("campaign: checkpoint_jobs must be >= 1");
    if (cfg.heuristics.empty())
        throw std::invalid_argument("campaign: no heuristics");
    for (const auto& name : cfg.heuristics)
        api::SchedulerRegistry::instance().validate(name);
    if (cfg.sweep.checkpoint_values.empty())
        throw std::invalid_argument("campaign: empty checkpoint axis");
    for (const auto& spec : cfg.sweep.checkpoint_values)
        ckpt::CheckpointRegistry::instance().validate(spec);

    const std::vector<GridJob> jobs =
        shard_jobs(cfg.sweep, cfg.shard_index, cfg.shard_count);
    const std::uint64_t fingerprint =
        campaign_fingerprint(cfg.sweep, cfg.heuristics);
    const int trials = cfg.sweep.trials_per_scenario;
    const std::size_t num_heuristics = cfg.heuristics.size();

    std::filesystem::create_directories(cfg.directory);
    const auto jsonl_file = cfg.directory / "records.jsonl";
    const auto csv_file = cfg.directory / "records.csv";

    std::optional<CampaignManifest> previous;
    if (cfg.resume) previous = read_manifest(cfg.directory);
    if (!previous) {
        // Fresh start — either requested, or no durable checkpoint exists
        // (e.g. a previous run was killed before its first manifest, whose
        // un-checkpointed records must not survive).
        std::filesystem::remove(manifest_path(cfg.directory));
        std::filesystem::remove(jsonl_file);
        std::filesystem::remove(csv_file);
    }

    if (previous) {
        if (previous->fingerprint != fingerprint)
            fail("manifest in '" + cfg.directory.string() +
                 "' belongs to a different campaign configuration; use a "
                 "fresh directory or disable resume");
        if (previous->shard_index != cfg.shard_index ||
            previous->shard_count != cfg.shard_count)
            fail("manifest in '" + cfg.directory.string() + "' is shard " +
                 std::to_string(previous->shard_index) + "/" +
                 std::to_string(previous->shard_count) +
                 ", not the requested " + std::to_string(cfg.shard_index) +
                 "/" + std::to_string(cfg.shard_count));
        if (previous->jobs_total != static_cast<long long>(jobs.size()))
            fail("manifest job count disagrees with the grid");
        if (previous->jobs_done < 0 ||
            previous->jobs_done > previous->jobs_total)
            fail("manifest checkpoints " +
                 std::to_string(previous->jobs_done) + " of " +
                 std::to_string(previous->jobs_total) +
                 " jobs, which is impossible (corrupted manifest?)");
        if (cfg.write_csv != (previous->csv_bytes > 0))
            fail("the CSV sink cannot be toggled across a resume");
    }

    JsonlSink jsonl(jsonl_file, campaign_header_line(cfg));
    std::optional<CsvSink> csv;
    if (cfg.write_csv)
        csv.emplace(csv_file, cfg.heuristics,
                    has_checkpoint_axis(cfg.sweep));

    CampaignResult result(cfg.heuristics);
    result.jobs_total = static_cast<long long>(jobs.size());
    result.jsonl_path = jsonl_file;

    long long jobs_done = 0;
    if (previous) {
        // The resume contract: truncate each sink to the last durable
        // checkpoint, then rebuild the shard-local tables by replaying the
        // surviving records through the canonical reduction.
        jsonl.resume_at(previous->jsonl_bytes);
        if (csv) csv->resume_at(previous->csv_bytes);
        jobs_done = previous->jobs_done;

        const auto [header, records] = read_shard_records(jsonl_file);
        if (header.fingerprint != fingerprint)
            fail("records.jsonl header disagrees with the manifest");
        if (static_cast<long long>(records.size()) != jobs_done * trials)
            fail("records.jsonl holds " + std::to_string(records.size()) +
                 " records but the manifest checkpointed " +
                 std::to_string(jobs_done * trials));
        const std::vector<GridJob> done_jobs(
            jobs.begin(), jobs.begin() + static_cast<std::ptrdiff_t>(jobs_done));
        replay_records(result.tables, cfg.sweep, done_jobs, records,
                       "resume");
    }

    CampaignManifest manifest;
    manifest.fingerprint = fingerprint;
    manifest.shard_index = cfg.shard_index;
    manifest.shard_count = cfg.shard_count;
    manifest.jobs_total = static_cast<long long>(jobs.size());

    const long long shard_instances_total =
        static_cast<long long>(jobs.size()) * trials;
    std::atomic<long long> instances_done{jobs_done * trials};

    util::ThreadPool pool(cfg.sweep.threads);
    int batches_run = 0;
    while (jobs_done < static_cast<long long>(jobs.size())) {
        if (cfg.stop_after_batches > 0 &&
            batches_run >= cfg.stop_after_batches)
            break;
        const std::size_t batch_begin = static_cast<std::size_t>(jobs_done);
        const std::size_t batch_end =
            std::min(jobs.size(), batch_begin +
                                      static_cast<std::size_t>(
                                          cfg.checkpoint_jobs));
        const std::size_t batch_size = batch_end - batch_begin;

        // Compute the batch in parallel; only bounded per-batch state is
        // held (checkpoint_jobs x trials records), never the whole sweep.
        std::vector<DfbTable> local(batch_size, DfbTable(num_heuristics));
        std::vector<std::vector<InstanceRecord>> batch_records(batch_size);
        pool.parallel_for(batch_size, [&](std::size_t i) {
            const GridJob& job = jobs[batch_begin + i];
            const RealizedScenario rs = realize(job.scenario);
            batch_records[i].reserve(static_cast<std::size_t>(trials));
            for (int trial = 0; trial < trials; ++trial) {
                const std::uint64_t trial_seed = util::mix_seed(
                    cfg.sweep.master_seed, 0x54524cULL, job.seed_ordinal,
                    static_cast<std::uint64_t>(trial));
                auto outcome =
                    run_instance(rs, job.scenario.tasks, cfg.heuristics,
                                 cfg.sweep.run, trial_seed,
                                 job.scenario.checkpoint);
                local[i].add_instance(outcome.makespans);
                InstanceRecord rec;
                rec.scenario_ordinal = job.ordinal;
                rec.trial = trial;
                rec.scenario = job.scenario;
                rec.makespans = std::move(outcome.makespans);
                batch_records[i].push_back(std::move(rec));
                const long long done = ++instances_done;
                if (cfg.sweep.progress)
                    cfg.sweep.progress(done, shard_instances_total);
            }
        });

        // Deterministic emission: records leave in (ordinal, trial) order
        // regardless of which worker finished first.
        for (std::size_t i = 0; i < batch_size; ++i) {
            for (const InstanceRecord& rec : batch_records[i]) {
                jsonl.write(rec);
                if (csv) csv->write(rec);
                if (cfg.sweep.record) cfg.sweep.record(rec);
            }
            merge_job_tables(result.tables, jobs[batch_begin + i].scenario,
                             local[i]);
        }
        jsonl.flush();
        if (csv) csv->flush();

        jobs_done = static_cast<long long>(batch_end);
        manifest.jobs_done = jobs_done;
        manifest.instances_done = jobs_done * trials;
        manifest.jsonl_bytes = jsonl.offset();
        manifest.csv_bytes = csv ? csv->offset() : 0;
        manifest.complete = jobs_done == static_cast<long long>(jobs.size());
        write_manifest(cfg.directory, manifest);
        ++batches_run;
    }

    result.jobs_done = jobs_done;
    result.instances_done = jobs_done * trials;
    result.complete = jobs_done == static_cast<long long>(jobs.size());
    return result;
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

std::pair<CampaignHeader, std::vector<InstanceRecord>>
read_shard_records(const std::filesystem::path& jsonl_file) {
    const std::string text = util::read_text_file(jsonl_file);
    std::size_t pos = 0;
    auto next_line = [&]() -> std::optional<std::string_view> {
        if (pos >= text.size()) return std::nullopt;
        const std::size_t nl = text.find('\n', pos);
        const std::size_t end = nl == std::string::npos ? text.size() : nl;
        std::string_view line(text.data() + pos, end - pos);
        pos = end + 1;
        return line;
    };

    const auto header_line = next_line();
    if (!header_line)
        fail("'" + jsonl_file.string() + "' is empty");
    CampaignHeader header = parse_campaign_header(std::string(*header_line));

    std::vector<InstanceRecord> records;
    while (const auto line = next_line()) {
        if (line->empty()) continue;
        try {
            records.push_back(JsonlSink::parse_record(*line));
        } catch (const std::invalid_argument& e) {
            fail("'" + jsonl_file.string() + "' holds a malformed record (" +
                 e.what() + "); was the shard killed without a checkpoint? "
                 "resume it to self-heal, or delete the torn tail");
        }
    }
    return {std::move(header), std::move(records)};
}

SweepResult aggregate_records(const SweepConfig& cfg,
                              const std::vector<std::string>& heuristics,
                              const std::vector<InstanceRecord>& records) {
    SweepResult result(heuristics);
    replay_records(result, cfg, grid_jobs(cfg), records, "aggregate");
    return result;
}

namespace {

/// Streams one shard's records straight off its JSONL file, one line at a
/// time — the k-way-merge leg that replaces loading whole shards into
/// memory.  The header is parsed (and fingerprint-verified) on open.
class ShardStream {
public:
    explicit ShardStream(const std::filesystem::path& file)
        : path_(file), in_(file) {
        if (!in_)
            fail("merge: cannot open '" + file.string() + "'");
        std::string line;
        if (!std::getline(in_, line))
            fail("'" + path_.string() + "' is empty");
        header_ = parse_campaign_header(line);
    }

    [[nodiscard]] const CampaignHeader& header() const noexcept {
        return header_;
    }
    [[nodiscard]] const std::filesystem::path& path() const noexcept {
        return path_;
    }

    /// Next record, or std::nullopt at end of stream.
    std::optional<InstanceRecord> next() {
        std::string line;
        while (std::getline(in_, line)) {
            if (line.empty()) continue;
            try {
                return JsonlSink::parse_record(line);
            } catch (const std::invalid_argument& e) {
                fail("'" + path_.string() + "' holds a malformed record (" +
                     e.what() +
                     "); was the shard killed without a checkpoint? resume "
                     "it to self-heal, or delete the torn tail");
            }
        }
        return std::nullopt;
    }

private:
    std::filesystem::path path_;
    std::ifstream in_;
    CampaignHeader header_;
};

} // namespace

SweepResult
merge_shards(const std::vector<std::filesystem::path>& jsonl_files) {
    if (jsonl_files.empty()) fail("merge: no shard files");

    // Open every shard and cross-validate the headers up front.
    std::vector<std::unique_ptr<ShardStream>> streams;
    streams.reserve(jsonl_files.size());
    for (const auto& file : jsonl_files) {
        auto stream = std::make_unique<ShardStream>(file);
        if (!streams.empty()) {
            const CampaignHeader& ref = streams.front()->header();
            if (stream->header().fingerprint != ref.fingerprint)
                fail("merge: '" + file.string() +
                     "' belongs to a different campaign (fingerprint "
                     "mismatch)");
            if (stream->header().shard_count != ref.shard_count)
                fail("merge: '" + file.string() +
                     "' disagrees on the shard count");
        }
        streams.push_back(std::move(stream));
    }
    const CampaignHeader& ref = streams.front()->header();
    std::vector<ShardStream*> by_shard(
        static_cast<std::size_t>(ref.shard_count), nullptr);
    for (const auto& stream : streams) {
        const int k = stream->header().shard_index;
        const auto slot = static_cast<std::size_t>(k - 1);
        if (k < 1 || k > ref.shard_count || by_shard[slot])
            fail("merge: shard " + std::to_string(k) +
                 " appears twice or is out of range");
        by_shard[slot] = stream.get();
    }
    for (std::size_t k = 0; k < by_shard.size(); ++k)
        if (!by_shard[k])
            fail("merge: shard " + std::to_string(k + 1) + " of " +
                 std::to_string(by_shard.size()) + " is missing");

    // Streaming k-way merge.  The grid enumeration *is* the merged order:
    // shard k-of-N holds exactly the ordinals congruent to k-1 mod N, each
    // emitted in (ordinal, trial) order, so walking the grid and pulling
    // `trials` records from the owning shard visits every record exactly
    // once, in the order run_sweep reduces them — per-job tables built in
    // trial order, merged in ordinal order — keeping the floating-point
    // operation sequence, and therefore every digit, bit-identical to the
    // unsharded sweep.  Peak memory is O(shards + grid jobs), never
    // O(records).
    const std::vector<GridJob> grid = grid_jobs(ref.sweep);
    const int trials = ref.sweep.trials_per_scenario;
    const std::size_t num_heuristics = ref.heuristics.size();
    SweepResult result(ref.heuristics);
    for (const GridJob& job : grid) {
        ShardStream& shard = *by_shard[static_cast<std::size_t>(
            job.ordinal % static_cast<std::uint64_t>(ref.shard_count))];
        DfbTable local(num_heuristics);
        for (int t = 0; t < trials; ++t) {
            auto rec = shard.next();
            if (!rec)
                fail("merge: '" + shard.path().string() +
                     "' ran out of records at scenario ordinal " +
                     std::to_string(job.ordinal) + " trial " +
                     std::to_string(t) + " (incomplete shard?)");
            if (rec->scenario_ordinal != job.ordinal || rec->trial != t)
                fail("merge: '" + shard.path().string() +
                     "' yields (ordinal " +
                     std::to_string(rec->scenario_ordinal) + ", trial " +
                     std::to_string(rec->trial) + ") where (ordinal " +
                     std::to_string(job.ordinal) + ", trial " +
                     std::to_string(t) +
                     ") was expected (duplicate, missing, or out-of-order "
                     "record?)");
            if (rec->scenario.seed != job.scenario.seed)
                fail("merge: ordinal " + std::to_string(job.ordinal) +
                     " carries seed " + std::to_string(rec->scenario.seed) +
                     " but the grid expects " +
                     std::to_string(job.scenario.seed) +
                     " (records from a different campaign?)");
            if (rec->scenario.checkpoint != job.scenario.checkpoint)
                fail("merge: ordinal " + std::to_string(job.ordinal) +
                     " carries checkpoint policy '" +
                     rec->scenario.checkpoint + "' but the grid expects '" +
                     job.scenario.checkpoint + "'");
            if (rec->makespans.size() != num_heuristics)
                fail("merge: ordinal " + std::to_string(job.ordinal) +
                     " has " + std::to_string(rec->makespans.size()) +
                     " makespans, expected " +
                     std::to_string(num_heuristics));
            local.add_instance(rec->makespans);
        }
        merge_job_tables(result, job.scenario, local);
    }
    for (const auto& stream : streams)
        if (stream->next())
            fail("merge: '" + stream->path().string() +
                 "' holds records past the end of its shard of the grid "
                 "(duplicate shard or foreign file?)");
    return result;
}

// ---------------------------------------------------------------------------
// Directory layout
// ---------------------------------------------------------------------------

std::string shard_directory_name(int shard_index, int shard_count) {
    return "shard-" + std::to_string(shard_index) + "-of-" +
           std::to_string(shard_count);
}

std::vector<std::filesystem::path>
find_shard_directories(const std::filesystem::path& root) {
    std::vector<std::filesystem::path> dirs;
    if (!std::filesystem::is_directory(root)) return dirs;
    for (const auto& entry : std::filesystem::directory_iterator(root)) {
        if (!entry.is_directory()) continue;
        const std::string name = entry.path().filename().string();
        if (name.rfind("shard-", 0) != 0) continue;
        if (!std::filesystem::exists(entry.path() / "records.jsonl"))
            continue;
        dirs.push_back(entry.path());
    }
    std::sort(dirs.begin(), dirs.end());
    return dirs;
}

} // namespace volsched::exp
