#include "exp/runner.hpp"

#include "api/registry.hpp"
#include "ckpt/registry.hpp"

namespace volsched::exp {

InstanceOutcome run_instance(const RealizedScenario& rs, int tasks,
                             const std::vector<std::string>& heuristics,
                             const RunConfig& cfg, std::uint64_t trial_seed,
                             const std::string& checkpoint) {
    sim::EngineConfig ec;
    ec.iterations = cfg.iterations;
    ec.tasks_per_iteration = tasks;
    ec.replica_cap = cfg.replica_cap;
    ec.max_slots = cfg.max_slots;
    ec.plan_class = cfg.plan_class;
    ec.skip_dead_slots = cfg.skip_dead_slots;
    ec.event_driven = cfg.event_driven;
    ec.audit = cfg.audit;
    ec.checkpoint_cost = cfg.checkpoint_cost;

    // The "none" fast path keeps the paper's model literally policy-free:
    // the engine runs the exact pre-checkpoint-layer code paths.
    std::unique_ptr<ckpt::CheckpointPolicy> policy;
    if (checkpoint != "none") {
        policy = ckpt::CheckpointRegistry::instance().make(checkpoint);
        ec.checkpoint = policy.get();
    }

    const auto simulation =
        sim::Simulation::from_chains(rs.platform, rs.chains, ec, trial_seed);
    // Every heuristic below replays one shared availability realization,
    // sampled lazily on the first run() and cached by the Simulation: the
    // per-slot sampling cost is paid once per (scenario, trial) — not once
    // per heuristic — and the paper's identical-realization property holds
    // by construction instead of by repeated re-sampling.
    const auto& registry = api::SchedulerRegistry::instance();
    InstanceOutcome out;
    out.makespans.reserve(heuristics.size());
    out.metrics.reserve(heuristics.size());
    for (const auto& name : heuristics) {
        const auto sched = registry.make(name);
        const auto metrics = simulation.run(*sched);
        out.makespans.push_back(metrics.makespan);
        out.metrics.push_back(metrics);
    }
    return out;
}

} // namespace volsched::exp
