#include "exp/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "markov/gen.hpp"
#include "util/rng.hpp"

namespace volsched::exp {

RealizedScenario realize(const Scenario& sc) {
    if (sc.p <= 0 || sc.tasks <= 0 || sc.ncom <= 0 || sc.wmin <= 0)
        throw std::invalid_argument("realize: non-positive scenario parameter");
    RealizedScenario out;
    util::Rng rng(util::mix_seed(sc.seed, 0x5343454eULL));

    out.platform.ncom = sc.ncom;
    out.platform.t_data = std::max(
        1, static_cast<int>(std::lround(sc.tdata_factor * sc.wmin)));
    out.platform.t_prog = std::max(
        1, static_cast<int>(std::lround(sc.tprog_factor * sc.wmin)));
    out.platform.w.reserve(static_cast<std::size_t>(sc.p));
    for (int q = 0; q < sc.p; ++q)
        out.platform.w.push_back(static_cast<int>(
            rng.uniform_int(sc.wmin, static_cast<std::uint64_t>(10) * sc.wmin)));

    out.chains = markov::generate_chains(static_cast<std::size_t>(sc.p), rng,
                                         sc.recipe);
    return out;
}

} // namespace volsched::exp
