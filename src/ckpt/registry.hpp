#pragma once
/// \file registry.hpp
/// Self-registering checkpoint-policy registry, mirroring the scheduler
/// registry (api/registry.hpp): every policy registers itself from its own
/// translation unit with VOLSCHED_REGISTER_CHECKPOINT, and the registry
/// resolves spec strings into policy instances, powers `volsched_sim
/// --list-checkpoints`, and emits did-you-mean diagnostics for typos.
///
/// Specs reuse the api/spec grammar — `name[(key=value,...)]` — but
/// checkpoint policies do not nest, so inner stages (":") are rejected.
/// Like scheduler specs, a policy may declare a `shorthand_option` so a
/// trailing integer is accepted as sugar: "periodic20" resolves exactly
/// like "periodic(k=20)".
///
/// Registering a policy from application code:
///
///   VOLSCHED_REGISTER_CHECKPOINT(my_policy, {
///       "mine", "my one-line description",
///       [](const volsched::api::SchedulerSpec&) {
///           return std::make_unique<MyPolicy>();
///       }});
///
/// The static-library force-link note of api/registry.hpp applies here too:
/// registration TUs inside libvolsched place VOLSCHED_CHECKPOINT_TU_ANCHOR
/// and are referenced from the registry itself.

#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "api/spec.hpp"
#include "ckpt/policy.hpp"

namespace volsched::ckpt {

class CheckpointRegistry;

/// One registered checkpoint policy.
struct CheckpointInfo {
    using Factory = std::function<std::unique_ptr<CheckpointPolicy>(
        const api::SchedulerSpec&)>;

    CheckpointInfo() = default;
    CheckpointInfo(std::string name_, std::string description_,
                   Factory factory_, std::string shorthand_option_ = {})
        : name(std::move(name_)),
          description(std::move(description_)),
          factory(std::move(factory_)),
          shorthand_option(std::move(shorthand_option_)) {}

    /// Canonical spec-stage name ("none", "periodic", "daly", "risk").
    std::string name;
    /// One-line description shown by `volsched_sim --list-checkpoints`.
    std::string description;
    /// Builds an instance for a resolved spec stage.
    Factory factory;
    /// When non-empty, "<name><digits>" is accepted as shorthand for
    /// "<name>(<shorthand_option>=<digits>)".
    std::string shorthand_option;
};

/// Process-wide registry of checkpoint-policy factories.  Thread-safe;
/// lookups are case-sensitive, did-you-mean suggestions are not.
class CheckpointRegistry {
public:
    static CheckpointRegistry& instance();

    /// Registers `info`; throws std::invalid_argument on an empty name, a
    /// name containing spec-structural characters, a missing factory, or a
    /// duplicate registration.
    void add(CheckpointInfo info);

    /// Removes a registration (primarily for tests); returns whether the
    /// name was present.
    bool erase(const std::string& name);

    [[nodiscard]] bool contains(const std::string& name) const;

    /// All registered entries, sorted by name.
    [[nodiscard]] std::vector<CheckpointInfo> entries() const;

    /// All registered names, sorted.
    [[nodiscard]] std::vector<std::string> names() const;

    /// Resolves and instantiates a spec string.  Throws
    /// std::invalid_argument for grammar errors, unknown names (with a
    /// did-you-mean suggestion when one is close), or an inner stage.
    [[nodiscard]] std::unique_ptr<CheckpointPolicy>
    make(const std::string& spec_text) const;
    [[nodiscard]] std::unique_ptr<CheckpointPolicy>
    make(const api::SchedulerSpec& spec) const;

    /// Parses, resolves and test-instantiates the spec (running the real
    /// factory exercises option validation), discarding the instance;
    /// throws exactly like make().
    void validate(const std::string& spec_text) const;

    /// Closest registered name by (case-insensitive) edit distance, or ""
    /// when nothing is close enough to suggest.
    [[nodiscard]] std::string suggestion_for(std::string_view name) const;

private:
    CheckpointRegistry() = default;

    struct Resolved {
        CheckpointInfo info;    // copied: safe against concurrent add/erase
        api::SchedulerSpec spec; // shorthand expanded to key=value form
    };
    [[nodiscard]] Resolved resolve(const api::SchedulerSpec& spec) const;

    mutable std::mutex mutex_;
    std::map<std::string, CheckpointInfo> entries_;
};

namespace detail {
/// Static-init-safe add(); see api::detail::add_at_static_init for why an
/// exception here must be caught and turned into a deliberate abort.
bool add_at_static_init(CheckpointInfo info) noexcept;
} // namespace detail

/// Factory-side option validation helpers (checkpoint-spec wording of the
/// api/registry.hpp pair).
void require_no_options(const api::SchedulerSpec& spec);
void require_only_options(const api::SchedulerSpec& spec,
                          std::initializer_list<std::string_view> allowed);

} // namespace volsched::ckpt

/// Registers a checkpoint policy at static-initialization time.  Use at
/// namespace scope in the policy's own translation unit; `tag` is any
/// identifier unique within the TU.
#define VOLSCHED_REGISTER_CHECKPOINT(tag, ...)                                 \
    static const bool volsched_checkpoint_registered_##tag [[maybe_unused]] =  \
        ::volsched::ckpt::detail::add_at_static_init(                          \
            ::volsched::ckpt::CheckpointInfo __VA_ARGS__)

/// Force-link anchor for registration TUs inside the volsched static
/// library (see api/registry.hpp for the mechanism).
#define VOLSCHED_CHECKPOINT_TU_ANCHOR(tag)                                     \
    namespace volsched::ckpt::detail {                                         \
    void checkpoint_tu_anchor_##tag() {}                                       \
    }
