/// \file policies.cpp
/// The built-in checkpoint policies — `none`, `periodic(k)`, `daly`, and
/// `risk(percent)` — each self-registering with the checkpoint registry
/// from this translation unit (see registry.hpp for the mechanism).
///
/// All four are pure functions of the CheckpointView: no internal state, no
/// RNG, so engine determinism is preserved by construction.

#include <cmath>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>

#include "ckpt/policies.hpp"
#include "ckpt/registry.hpp"
#include "markov/expectation.hpp"

namespace volsched::ckpt {

int daly_interval(const markov::TransitionMatrix& m, int cost) noexcept {
    const double mttd = markov::mean_time_to_down(m);
    if (!std::isfinite(mttd)) return 0;
    const double tau =
        std::sqrt(2.0 * static_cast<double>(cost < 1 ? 1 : cost) * mttd);
    const double rounded = std::nearbyint(tau);
    return rounded < 1.0 ? 1 : static_cast<int>(rounded);
}

double crash_risk(const markov::TransitionMatrix& m, int remaining) noexcept {
    if (remaining <= 0) return 0.0;
    return 1.0 - markov::p_ud_exact(m, static_cast<unsigned>(remaining));
}

namespace {

/// Strict whole-token integer option parse with a spec-quoting diagnostic.
long parse_int_option(const api::SchedulerSpec& spec, const char* key,
                      const std::string& text, long lo, long hi) {
    char* end = nullptr;
    const long value = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || value < lo || value > hi)
        throw std::invalid_argument(
            "checkpoint spec '" + spec.canonical() + "': " + key + " '" +
            text + "' is not an integer in [" + std::to_string(lo) + ", " +
            std::to_string(hi) + "]");
    return value;
}

/// The paper's model: never checkpoint.  Attaching this policy is
/// bit-identical to attaching no policy at all (pinned by test_ckpt).
class NonePolicy final : public CheckpointPolicy {
public:
    bool should_checkpoint(const CheckpointView&) const override {
        return false;
    }
    long long quiet_horizon(const CheckpointView&) const override {
        return kQuietForever;
    }
    std::string_view name() const override { return "none"; }
};

/// Fixed-interval checkpointing: snapshot after every k compute slots.
class PeriodicPolicy final : public CheckpointPolicy {
public:
    explicit PeriodicPolicy(int k) : k_(k) {}
    bool should_checkpoint(const CheckpointView& v) const override {
        return v.computed >= k_;
    }
    long long quiet_horizon(const CheckpointView& v) const override {
        // Fires exactly when `computed` reaches k_, and `computed` grows by
        // one per advanced slot.
        return v.computed >= k_ ? 0 : static_cast<long long>(k_) - v.computed;
    }
    std::string_view name() const override { return "periodic"; }

private:
    int k_;
};

/// Young/Daly interval from the worker's belief chain: checkpoint after
/// sqrt(2 * C * MTTD) compute slots.  The interval is a pure function of
/// (belief, cost), so it is re-derived per decision — cheap (a 2x2 linear
/// solve) and stateless, which is what the determinism contract wants.
class DalyPolicy final : public CheckpointPolicy {
public:
    bool should_checkpoint(const CheckpointView& v) const override {
        if (v.belief == nullptr) return false;
        const int tau = daly_interval(v.belief->matrix(), v.cost);
        return tau > 0 && v.computed >= tau;
    }
    long long quiet_horizon(const CheckpointView& v) const override {
        // The interval is a function of (belief, cost) only, both fixed
        // under arithmetic advancement, so this reduces to the periodic
        // case; tau == 0 (infinite MTTD) never fires.
        if (v.belief == nullptr) return kQuietForever;
        const int tau = daly_interval(v.belief->matrix(), v.cost);
        if (tau <= 0) return kQuietForever;
        return v.computed >= tau ? 0
                                 : static_cast<long long>(tau) - v.computed;
    }
    std::string_view name() const override { return "daly"; }
};

/// Risk threshold: checkpoint as soon as the belief chain's probability of
/// crashing before the task's completion boundary exceeds `percent`/100.
class RiskPolicy final : public CheckpointPolicy {
public:
    explicit RiskPolicy(double threshold) : threshold_(threshold) {}
    bool should_checkpoint(const CheckpointView& v) const override {
        if (v.belief == nullptr) return false;
        return crash_risk(v.belief->matrix(), v.remaining) > threshold_;
    }
    long long quiet_horizon(const CheckpointView& v) const override {
        // crash_risk is non-decreasing in `remaining` (p_ud_exact is
        // non-increasing in the slot count), and advancement only shrinks
        // `remaining`: a view that does not fire now never fires later in
        // the same uninterrupted stretch.
        if (v.belief == nullptr) return kQuietForever;
        return should_checkpoint(v) ? 0 : kQuietForever;
    }
    std::string_view name() const override { return "risk"; }

private:
    double threshold_;
};

} // namespace

} // namespace volsched::ckpt

VOLSCHED_CHECKPOINT_TU_ANCHOR(builtin)

namespace volsched::ckpt {

VOLSCHED_REGISTER_CHECKPOINT(none, {
    "none", "never checkpoint (the paper's crash-lose-everything model)",
    [](const api::SchedulerSpec& spec) -> std::unique_ptr<CheckpointPolicy> {
        require_no_options(spec);
        return std::make_unique<NonePolicy>();
    }});

VOLSCHED_REGISTER_CHECKPOINT(periodic, {
    "periodic",
    "checkpoint after every k compute slots (periodic20, periodic(k=20))",
    [](const api::SchedulerSpec& spec) -> std::unique_ptr<CheckpointPolicy> {
        require_only_options(spec, {"k"});
        const std::string* k_text = spec.option("k");
        if (k_text == nullptr)
            throw std::invalid_argument(
                "checkpoint spec '" + spec.canonical() +
                "': 'periodic' needs an interval, e.g. periodic20 or "
                "periodic(k=20)");
        const long k = parse_int_option(spec, "k", *k_text, 1, 1'000'000'000);
        return std::make_unique<PeriodicPolicy>(static_cast<int>(k));
    },
    /*shorthand_option=*/"k"});

VOLSCHED_REGISTER_CHECKPOINT(daly, {
    "daly",
    "Young/Daly interval sqrt(2*C*MTTD) from the belief chain's mean time "
    "to DOWN",
    [](const api::SchedulerSpec& spec) -> std::unique_ptr<CheckpointPolicy> {
        require_no_options(spec);
        return std::make_unique<DalyPolicy>();
    }});

VOLSCHED_REGISTER_CHECKPOINT(risk, {
    "risk",
    "checkpoint when P(crash before the task completes) exceeds percent/100 "
    "(risk25, risk(percent=25))",
    [](const api::SchedulerSpec& spec) -> std::unique_ptr<CheckpointPolicy> {
        require_only_options(spec, {"percent"});
        const std::string* percent_text = spec.option("percent");
        if (percent_text == nullptr)
            throw std::invalid_argument(
                "checkpoint spec '" + spec.canonical() +
                "': 'risk' needs a threshold, e.g. risk25 or "
                "risk(percent=25)");
        const long percent =
            parse_int_option(spec, "percent", *percent_text, 0, 100);
        return std::make_unique<RiskPolicy>(static_cast<double>(percent) /
                                            100.0);
    },
    /*shorthand_option=*/"percent"});

} // namespace volsched::ckpt
