#pragma once
/// \file policies.hpp
/// Closed forms behind the built-in checkpoint policies, exposed so tests
/// (and anyone sizing a policy by hand) can cross-check the registry-built
/// instances against the formulas.  The policies themselves self-register
/// from policies.cpp; build them via ckpt::CheckpointRegistry.

#include "markov/transition.hpp"

namespace volsched::ckpt {

/// The Young/Daly checkpoint interval in compute slots:
///   tau = sqrt(2 * C * M)
/// with C the checkpoint cost (transfer slots) and M the chain's mean time
/// to DOWN from UP (markov::mean_time_to_down), rounded to the nearest slot
/// and clamped to at least 1.  Returns 0 ("never checkpoint") when M is
/// infinite — a chain that cannot crash has nothing to protect against.
int daly_interval(const markov::TransitionMatrix& m, int cost) noexcept;

/// The `risk` policy's trigger quantity: the probability that a processor
/// currently UP enters DOWN at least once within the next `remaining`
/// slots, i.e. 1 - P_UD(remaining) via markov::p_ud_exact.  `remaining <= 0`
/// returns 0 (nothing left to lose).
double crash_risk(const markov::TransitionMatrix& m, int remaining) noexcept;

} // namespace volsched::ckpt
