#pragma once
/// \file policy.hpp
/// The checkpoint/restart layer's contract with the simulation engine.
///
/// The paper's execution model is crash-lose-everything: a newly DOWN
/// worker loses program, staged data, and partial computation (Section 3.2),
/// and RunMetrics::wasted_compute_slots shows how much compute that burns.
/// Checkpointing is the classic mitigation (the Section 8 outlook, and the
/// Young/Daly line of work): while a worker computes, a policy may decide to
/// upload a snapshot of the task's progress to the master.  The upload
/// occupies one of the master's `ncom` transfer slots for
/// EngineConfig::checkpoint_cost slot-units — checkpoints compete with
/// program and data transfers for bandwidth — and the worker's computation
/// pauses while its snapshot is in flight (the classic checkpoint
/// overhead).  Once committed, the snapshot lives at the master: when a
/// crash sends the task back to the pool, its next original incarnation
/// resumes from the committed progress instead of from scratch, on
/// whichever worker recommits it (progress is stored as a fraction of the
/// task, so a restart on a worker with a different speed w_q translates
/// it).  Speculative replicas always start from scratch — snapshots exist
/// to shorten the post-crash redo, not to hand extra copies a head start.
///
/// Policies are consulted once per slot per eligible worker (UP, computing,
/// no snapshot already in flight, task not about to finish) and must be
/// pure functions of the CheckpointView: no internal state, no RNG.  That
/// keeps the engine's determinism contract intact — for a fixed seed the
/// availability realization, and with `none` the entire action trace, are
/// bit-identical to a run without the checkpoint layer.
///
/// Built-in policies (src/ckpt/policies.cpp; `volsched_sim
/// --list-checkpoints` prints them):
///
///   none            never checkpoint (the paper's model; the default)
///   periodic(k=K)   checkpoint after every K compute slots
///   daly            Young/Daly interval sqrt(2 * C * M) with C the
///                   checkpoint cost and M the belief chain's mean time to
///                   DOWN (markov::mean_time_to_down); uninformed workers
///                   never checkpoint
///   risk(percent=P) checkpoint when the belief chain's probability of
///                   entering DOWN before the task's next completion
///                   boundary (markov::p_ud_exact over the remaining slots)
///                   exceeds P percent

#include <limits>
#include <string_view>

#include "markov/chain.hpp"

namespace volsched::ckpt {

/// Per-decision snapshot handed to a policy: one worker, one slot.
struct CheckpointView {
    /// The availability chain this worker is believed to follow, or null
    /// when the run is uninformed (belief-based policies then never fire).
    const markov::MarkovChain* belief = nullptr;
    /// Master transfer slot-units one checkpoint upload costs
    /// (EngineConfig::checkpoint_cost).
    int cost = 1;
    /// w_q: UP slots this worker needs for a whole task.
    int w = 1;
    /// Compute slots accumulated since the last snapshot (committed or
    /// currently in flight) — the progress a crash would lose right now.
    int computed = 0;
    /// Compute slots still needed before the task completes on this worker.
    int remaining = 0;
    /// Current simulation slot.
    long long slot = 0;
};

/// A checkpoint decision rule.  Implementations must be deterministic,
/// stateless functions of the view (see the file comment).
class CheckpointPolicy {
public:
    virtual ~CheckpointPolicy() = default;

    /// True when the worker should start uploading a snapshot this slot.
    [[nodiscard]] virtual bool
    should_checkpoint(const CheckpointView& view) const = 0;

    /// Sentinel quiet_horizon() meaning "never fires under this view's
    /// arithmetic advancement".
    static constexpr long long kQuietForever =
        std::numeric_limits<long long>::max();

    /// Lower bound on how long this policy stays quiet: the engine's
    /// event-driven core asks for an h >= 0 such that should_checkpoint is
    /// guaranteed false for every view reachable from `view` by k < h
    /// uninterrupted compute slots (computed += k, remaining -= k,
    /// slot += k; belief/cost/w fixed).  h == 0 means "consult me every
    /// slot" — always safe, and the default, so stateful-looking custom
    /// policies cost elision, never correctness.  Audit mode re-checks the
    /// promise by replaying should_checkpoint over every elided slot.
    [[nodiscard]] virtual long long
    quiet_horizon(const CheckpointView& view) const {
        (void)view;
        return 0;
    }

    /// Stable identifier used in reports ("none", "periodic", "daly", ...).
    [[nodiscard]] virtual std::string_view name() const = 0;
};

} // namespace volsched::ckpt
