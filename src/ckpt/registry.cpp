#include "ckpt/registry.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/fuzzy.hpp"

namespace volsched::ckpt {

// Force-link anchor of the built-in policy TU (none/periodic/daly/risk);
// referencing it here pulls that archive member — and its self-registration
// statics — into every binary that uses the registry.
namespace detail {
void checkpoint_tu_anchor_builtin();
} // namespace detail

CheckpointRegistry& CheckpointRegistry::instance() {
    static CheckpointRegistry registry;
    static const bool anchors [[maybe_unused]] =
        (detail::checkpoint_tu_anchor_builtin(), true);
    return registry;
}

void CheckpointRegistry::add(CheckpointInfo info) {
    if (info.name.empty())
        throw std::invalid_argument(
            "CheckpointRegistry::add: empty policy name");
    for (char c : info.name)
        if (api::is_spec_structural_char(c))
            throw std::invalid_argument(
                "CheckpointRegistry::add: name '" + info.name +
                "' contains the spec-structural character '" + c + "'");
    if (!info.factory)
        throw std::invalid_argument("CheckpointRegistry::add: policy '" +
                                    info.name + "' has no factory");
    std::lock_guard lock(mutex_);
    const auto [it, inserted] = entries_.try_emplace(info.name, info);
    (void)it;
    if (!inserted)
        throw std::invalid_argument("CheckpointRegistry::add: policy '" +
                                    info.name + "' is already registered");
}

bool CheckpointRegistry::erase(const std::string& name) {
    std::lock_guard lock(mutex_);
    return entries_.erase(name) > 0;
}

bool CheckpointRegistry::contains(const std::string& name) const {
    std::lock_guard lock(mutex_);
    return entries_.contains(name);
}

std::vector<CheckpointInfo> CheckpointRegistry::entries() const {
    std::lock_guard lock(mutex_);
    std::vector<CheckpointInfo> out;
    out.reserve(entries_.size());
    for (const auto& [name, info] : entries_) out.push_back(info);
    return out;
}

std::vector<std::string> CheckpointRegistry::names() const {
    std::lock_guard lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, info] : entries_) out.push_back(name);
    return out;
}

std::string CheckpointRegistry::suggestion_for(std::string_view name) const {
    return util::closest_name(name, names());
}

CheckpointRegistry::Resolved
CheckpointRegistry::resolve(const api::SchedulerSpec& spec) const {
    std::unique_lock lock(mutex_);
    if (const auto it = entries_.find(spec.name()); it != entries_.end())
        return {it->second, spec};

    // Trailing-integer shorthand: "periodic20" == "periodic(k=20)".
    const std::string& name = spec.name();
    std::size_t digits = name.size();
    while (digits > 0 &&
           std::isdigit(static_cast<unsigned char>(name[digits - 1])))
        --digits;
    if (digits > 0 && digits < name.size()) {
        const auto it = entries_.find(name.substr(0, digits));
        if (it != entries_.end() && !it->second.shorthand_option.empty()) {
            if (spec.option(it->second.shorthand_option) != nullptr)
                throw std::invalid_argument(
                    "checkpoint spec '" + spec.canonical() + "': option '" +
                    it->second.shorthand_option +
                    "' given both as shorthand and as key=value");
            api::SchedulerSpec expanded = spec;
            expanded.set_name(it->first);
            expanded.add_option(it->second.shorthand_option,
                                name.substr(digits));
            return {it->second, std::move(expanded)};
        }
    }

    lock.unlock();
    std::string message = "unknown checkpoint policy '" + spec.name() + "'";
    if (const std::string hint = suggestion_for(spec.name()); !hint.empty())
        message += "; did you mean '" + hint + "'?";
    message += "  (volsched_sim --list-checkpoints prints all names)";
    throw std::invalid_argument(message);
}

std::unique_ptr<CheckpointPolicy>
CheckpointRegistry::make(const std::string& spec_text) const {
    return make(api::SchedulerSpec::parse(spec_text));
}

std::unique_ptr<CheckpointPolicy>
CheckpointRegistry::make(const api::SchedulerSpec& spec) const {
    if (spec.has_inner())
        throw std::invalid_argument(
            "checkpoint spec '" + spec.canonical() +
            "': checkpoint policies do not nest (no ':inner' stages)");
    const Resolved resolved = resolve(spec);
    auto policy = resolved.info.factory(resolved.spec);
    if (!policy)
        throw std::logic_error("checkpoint factory for '" +
                               resolved.info.name + "' returned null");
    return policy;
}

void CheckpointRegistry::validate(const std::string& spec_text) const {
    (void)make(spec_text);
}

bool detail::add_at_static_init(CheckpointInfo info) noexcept {
    try {
        CheckpointRegistry::instance().add(std::move(info));
    } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "volsched: fatal error during checkpoint-policy "
                     "registration: %s\n",
                     e.what());
        std::abort();
    }
    return true;
}

void require_no_options(const api::SchedulerSpec& spec) {
    api::require_no_options(spec, "checkpoint spec");
}

void require_only_options(const api::SchedulerSpec& spec,
                          std::initializer_list<std::string_view> allowed) {
    api::require_only_options(spec, allowed, "checkpoint spec");
}

} // namespace volsched::ckpt
