#include "api/registry.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/fuzzy.hpp"

namespace volsched::api {

// Force-link anchors of the registration TUs that live inside the volsched
// static library (greedy, random, extension heuristics).  Referencing them
// here makes the linker pull those archive members — and with them their
// self-registration statics — into every binary that uses the registry.
namespace detail {
void scheduler_tu_anchor_greedy();
void scheduler_tu_anchor_random();
void scheduler_tu_anchor_extensions();
} // namespace detail

SchedulerRegistry& SchedulerRegistry::instance() {
    static SchedulerRegistry registry;
    static const bool anchors [[maybe_unused]] =
        (detail::scheduler_tu_anchor_greedy(),
         detail::scheduler_tu_anchor_random(),
         detail::scheduler_tu_anchor_extensions(), true);
    return registry;
}

void SchedulerRegistry::add(SchedulerInfo info) {
    if (info.name.empty())
        throw std::invalid_argument(
            "SchedulerRegistry::add: empty scheduler name");
    for (char c : info.name)
        if (is_spec_structural_char(c))
            throw std::invalid_argument(
                "SchedulerRegistry::add: name '" + info.name +
                "' contains the spec-structural character '" + c + "'");
    if (!info.factory)
        throw std::invalid_argument("SchedulerRegistry::add: scheduler '" +
                                    info.name + "' has no factory");
    std::lock_guard lock(mutex_);
    const auto [it, inserted] = entries_.try_emplace(info.name, info);
    (void)it;
    if (!inserted)
        throw std::invalid_argument("SchedulerRegistry::add: scheduler '" +
                                    info.name + "' is already registered");
}

bool SchedulerRegistry::erase(const std::string& name) {
    std::lock_guard lock(mutex_);
    return entries_.erase(name) > 0;
}

bool SchedulerRegistry::contains(const std::string& name) const {
    std::lock_guard lock(mutex_);
    return entries_.contains(name);
}

std::vector<SchedulerInfo> SchedulerRegistry::entries() const {
    std::lock_guard lock(mutex_);
    std::vector<SchedulerInfo> out;
    out.reserve(entries_.size());
    for (const auto& [name, info] : entries_) out.push_back(info);
    return out;
}

std::vector<std::string> SchedulerRegistry::names() const {
    std::lock_guard lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, info] : entries_) out.push_back(name);
    return out;
}

std::string SchedulerRegistry::suggestion_for(std::string_view name) const {
    return util::closest_name(name, names());
}

SchedulerRegistry::Resolved
SchedulerRegistry::resolve(const SchedulerSpec& spec) const {
    std::unique_lock lock(mutex_);
    if (const auto it = entries_.find(spec.name()); it != entries_.end())
        return {it->second, spec};

    // Trailing-integer shorthand: "thr50" == "thr(percent=50)".
    const std::string& name = spec.name();
    std::size_t digits = name.size();
    while (digits > 0 &&
           std::isdigit(static_cast<unsigned char>(name[digits - 1])))
        --digits;
    if (digits > 0 && digits < name.size()) {
        const auto it = entries_.find(name.substr(0, digits));
        if (it != entries_.end() && !it->second.shorthand_option.empty()) {
            if (spec.option(it->second.shorthand_option) != nullptr)
                throw std::invalid_argument(
                    "scheduler spec '" + spec.canonical() + "': option '" +
                    it->second.shorthand_option +
                    "' given both as shorthand and as key=value");
            SchedulerSpec expanded = spec;
            expanded.set_name(it->first);
            expanded.add_option(it->second.shorthand_option,
                                name.substr(digits));
            return {it->second, std::move(expanded)};
        }
    }

    lock.unlock();
    std::string message = "unknown heuristic '" + spec.name() + "'";
    if (const std::string hint = suggestion_for(spec.name()); !hint.empty())
        message += "; did you mean '" + hint + "'?";
    message += "  (volsched_sim --list-heuristics prints all names)";
    throw std::invalid_argument(message);
}

std::unique_ptr<sim::Scheduler>
SchedulerRegistry::make(const std::string& spec_text) const {
    return make(SchedulerSpec::parse(spec_text));
}

std::unique_ptr<sim::Scheduler>
SchedulerRegistry::make(const SchedulerSpec& spec) const {
    const Resolved resolved = resolve(spec);
    if (resolved.info.takes_inner && !spec.has_inner())
        throw std::invalid_argument(
            "scheduler spec '" + spec.canonical() + "': '" +
            resolved.info.name +
            "' wraps another heuristic and needs an inner stage, e.g. '" +
            spec.canonical() + ":emct'");
    if (!resolved.info.takes_inner && spec.has_inner())
        throw std::invalid_argument("scheduler spec '" + spec.canonical() +
                                    "': '" + resolved.info.name +
                                    "' does not accept an inner stage");
    auto sched = resolved.info.factory(resolved.spec, *this);
    if (!sched)
        throw std::logic_error("scheduler factory for '" +
                               resolved.info.name + "' returned null");
    return sched;
}

void SchedulerRegistry::validate(const std::string& spec_text) const {
    // Instantiation is cheap for every registered scheduler, and running
    // the real factory exercises option validation too.
    (void)make(spec_text);
}

bool detail::add_at_static_init(SchedulerInfo info) noexcept {
    try {
        SchedulerRegistry::instance().add(std::move(info));
    } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "volsched: fatal error during scheduler "
                     "registration: %s\n",
                     e.what());
        std::abort();
    }
    return true;
}

void require_no_options(const SchedulerSpec& spec) {
    require_no_options(spec, "scheduler spec");
}

void require_only_options(const SchedulerSpec& spec,
                          std::initializer_list<std::string_view> allowed) {
    require_only_options(spec, allowed, "scheduler spec");
}

} // namespace volsched::api
