#include "api/simulation_builder.hpp"

#include <stdexcept>
#include <utility>

#include "ckpt/registry.hpp"
#include "trace/empirical.hpp"

namespace volsched::api {

namespace {

[[noreturn]] void fail(const std::string& what) {
    throw std::invalid_argument("SimulationBuilder: " + what);
}

} // namespace

// ---------------------------------------------------------------------------
// AvailabilitySource factories.
// ---------------------------------------------------------------------------

AvailabilitySource
AvailabilitySource::markov(std::vector<markov::MarkovChain> chains,
                           markov::InitialState init) {
    AvailabilitySource src;
    src.origin = "markov";
    src.models.reserve(chains.size());
    for (const auto& chain : chains)
        src.models.push_back(
            std::make_unique<markov::MarkovAvailability>(chain, init));
    src.default_beliefs = std::move(chains);
    return src;
}

AvailabilitySource
AvailabilitySource::replay(std::vector<trace::RecordedTrace> traces,
                           trace::ReplayAvailability::EndPolicy policy) {
    AvailabilitySource src;
    src.origin = "replay";
    src.models.reserve(traces.size());
    for (auto& t : traces)
        src.models.push_back(
            std::make_unique<trace::ReplayAvailability>(std::move(t), policy));
    return src;
}

AvailabilitySource
AvailabilitySource::empirical(std::vector<trace::RecordedTrace> traces,
                              trace::ReplayAvailability::EndPolicy policy) {
    AvailabilitySource src;
    src.origin = "empirical";
    src.models.reserve(traces.size());
    src.default_beliefs.reserve(traces.size());
    for (auto& t : traces) {
        if (t.length() == 0)
            throw std::invalid_argument(
                "AvailabilitySource::empirical: empty trace (cannot fit a "
                "Markov belief)");
        src.default_beliefs.emplace_back(trace::fit_markov({t}));
        src.models.push_back(
            std::make_unique<trace::ReplayAvailability>(std::move(t), policy));
    }
    return src;
}

AvailabilitySource AvailabilitySource::models_from(
    std::vector<std::unique_ptr<markov::AvailabilityModel>> models) {
    AvailabilitySource src;
    src.origin = "models";
    for (const auto& m : models)
        if (!m)
            throw std::invalid_argument(
                "AvailabilitySource::models_from: null model");
    src.models = std::move(models);
    return src;
}

// ---------------------------------------------------------------------------
// SimulationBuilder.
// ---------------------------------------------------------------------------

SimulationBuilder& SimulationBuilder::platform(sim::Platform pf) {
    platform_ = std::move(pf);
    return *this;
}

SimulationBuilder& SimulationBuilder::availability(AvailabilitySource source) {
    if (source_.has_value())
        fail("availability source set twice (had '" + source_->origin +
             "', now '" + source.origin + "'); a simulation has exactly one");
    source_ = std::move(source);
    return *this;
}

SimulationBuilder&
SimulationBuilder::markov(std::vector<markov::MarkovChain> chains,
                          markov::InitialState init) {
    return availability(AvailabilitySource::markov(std::move(chains), init));
}

SimulationBuilder&
SimulationBuilder::replay(std::vector<trace::RecordedTrace> traces,
                          trace::ReplayAvailability::EndPolicy policy) {
    return availability(AvailabilitySource::replay(std::move(traces), policy));
}

SimulationBuilder&
SimulationBuilder::empirical(std::vector<trace::RecordedTrace> traces,
                             trace::ReplayAvailability::EndPolicy policy) {
    return availability(
        AvailabilitySource::empirical(std::move(traces), policy));
}

SimulationBuilder& SimulationBuilder::models(
    std::vector<std::unique_ptr<markov::AvailabilityModel>> models) {
    return availability(AvailabilitySource::models_from(std::move(models)));
}

SimulationBuilder&
SimulationBuilder::beliefs(std::vector<markov::MarkovChain> chains) {
    belief_override_ = std::move(chains);
    uninformed_ = false;
    return *this;
}

SimulationBuilder& SimulationBuilder::uninformed() {
    belief_override_.reset();
    uninformed_ = true;
    return *this;
}

SimulationBuilder& SimulationBuilder::config(sim::EngineConfig cfg) {
    config_ = cfg;
    return *this;
}

SimulationBuilder& SimulationBuilder::iterations(int n) {
    config_.iterations = n;
    return *this;
}

SimulationBuilder& SimulationBuilder::tasks_per_iteration(int n) {
    config_.tasks_per_iteration = n;
    return *this;
}

SimulationBuilder& SimulationBuilder::replica_cap(int n) {
    config_.replica_cap = n;
    return *this;
}

SimulationBuilder& SimulationBuilder::max_slots(long long n) {
    config_.max_slots = n;
    return *this;
}

SimulationBuilder& SimulationBuilder::plan_class(sim::SchedulerClass c) {
    config_.plan_class = c;
    return *this;
}

SimulationBuilder& SimulationBuilder::audit(bool on) {
    config_.audit = on;
    return *this;
}

SimulationBuilder& SimulationBuilder::events(sim::EventLog* log) {
    config_.events = log;
    return *this;
}

SimulationBuilder& SimulationBuilder::timeline(sim::Timeline* tl) {
    config_.timeline = tl;
    return *this;
}

SimulationBuilder& SimulationBuilder::actions(sim::ActionTrace* at) {
    config_.actions = at;
    return *this;
}

SimulationBuilder& SimulationBuilder::trace(obs::TraceRecorder* rec) {
    config_.tracer = rec;
    return *this;
}

SimulationBuilder& SimulationBuilder::checkpoint(const std::string& spec) {
    // Resolves eagerly: a typo fails here with the checkpoint registry's
    // did-you-mean message, not at build().
    return checkpoint(std::shared_ptr<const ckpt::CheckpointPolicy>(
        ckpt::CheckpointRegistry::instance().make(spec)));
}

SimulationBuilder& SimulationBuilder::checkpoint(
    std::shared_ptr<const ckpt::CheckpointPolicy> policy) {
    if (!policy) fail(".checkpoint(...) got a null policy");
    checkpoint_ = std::move(policy);
    return *this;
}

SimulationBuilder& SimulationBuilder::checkpoint_cost(int slots) {
    config_.checkpoint_cost = slots;
    return *this;
}

SimulationBuilder& SimulationBuilder::seed(std::uint64_t s) {
    seed_ = s;
    return *this;
}

SimulationBuilder&
SimulationBuilder::realized(std::shared_ptr<markov::RealizedTraces> traces) {
    if (!traces) fail(".realized(...) got a null realization");
    realized_ = std::move(traces);
    return *this;
}

SimulationBuilder& SimulationBuilder::trace_cache(bool on) {
    cache_traces_ = on;
    return *this;
}

SimulationBuilder& SimulationBuilder::skip_dead_slots(bool on) {
    config_.skip_dead_slots = on;
    return *this;
}

SimulationBuilder& SimulationBuilder::event_driven(bool on) {
    config_.event_driven = on;
    return *this;
}

sim::Simulation SimulationBuilder::build() {
    if (built_)
        fail("build() called twice; a builder is single-use (the first "
             "build consumed its availability models)");
    if (!platform_.has_value())
        fail("no platform; call .platform(sim::Platform) first");
    if (!source_.has_value())
        fail("no availability source; call one of .markov(chains), "
             ".replay(traces), .empirical(traces) or .models(...)");

    const int p = platform_->size();
    if (static_cast<int>(source_->models.size()) != p)
        fail("availability source '" + source_->origin + "' has " +
             std::to_string(source_->models.size()) +
             " models but the platform has " + std::to_string(p) +
             " processors; one model per processor is required");

    std::vector<markov::MarkovChain> beliefs;
    if (uninformed_) {
        // explicit .uninformed(): run without belief chains
    } else if (belief_override_.has_value()) {
        if (static_cast<int>(belief_override_->size()) != p)
            fail(".beliefs(...) got " +
                 std::to_string(belief_override_->size()) +
                 " chains but the platform has " + std::to_string(p) +
                 " processors; pass one chain per processor (or call "
                 ".uninformed() for none)");
        beliefs = std::move(*belief_override_);
    } else {
        beliefs = std::move(source_->default_beliefs);
    }

    if (realized_) {
        if (!cache_traces_)
            fail(".trace_cache(false) conflicts with .realized(...): an "
                 "attached realization is always retained and shared");
        if (realized_->size() != p)
            fail(".realized(...) holds " + std::to_string(realized_->size()) +
                 " traces but the platform has " + std::to_string(p) +
                 " processors");
        if (realized_->seed() != seed_)
            fail(".realized(...) was sampled from seed " +
                 std::to_string(realized_->seed()) +
                 " but the simulation seed is " + std::to_string(seed_) +
                 "; sharing it would break the determinism contract "
                 "(realization must be a function of the seed only)");
    }

    built_ = true;
    sim::Simulation simulation(std::move(*platform_),
                               std::move(source_->models), std::move(beliefs),
                               config_, seed_);
    simulation.cache_traces_ = cache_traces_;
    if (realized_) simulation.traces_ = std::move(realized_);
    if (checkpoint_) {
        // The simulation keeps the resolved policy alive; the raw config
        // pointer the engine reads targets the shared object.
        simulation.checkpoint_policy_ = std::move(checkpoint_);
        simulation.config_.checkpoint = simulation.checkpoint_policy_.get();
    }
    return simulation;
}

} // namespace volsched::api

// Out-of-line so sim/ never depends on api/ headers: the static factory
// declared on sim::Simulation is defined here, next to the builder.
volsched::api::SimulationBuilder volsched::sim::Simulation::builder() {
    return {};
}
