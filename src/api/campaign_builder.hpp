#pragma once
/// \file campaign_builder.hpp
/// Fluent composition of sharded, resumable campaigns on top of
/// ExperimentBuilder:
///
///   auto outcome = api::ExperimentBuilder()
///                      .greedy_heuristics()
///                      .scenarios_per_cell(10)
///                      .trials(10)
///                      .seed(0xC0FFEE)
///                      .campaign()
///                      .directory("out/table3")
///                      .shard(2, 4)          // this machine runs shard 2/4
///                      .checkpoint_every(16) // jobs per durable checkpoint
///                      .run();
///
/// run() drives exp::run_campaign: records stream to
/// <directory>/shard-k-of-N/records.jsonl, progress checkpoints land in
/// MANIFEST, and an interrupted run resumes from the last checkpoint when
/// invoked again with the same configuration.  exp::merge_shards combines
/// the shard outputs into tables bit-identical to an unsharded run.

#include <filesystem>
#include <functional>

#include "exp/campaign.hpp"

namespace volsched::api {

class CampaignBuilder {
public:
    /// Normally obtained from ExperimentBuilder::campaign(), which fills in
    /// the validated sweep configuration and heuristic list.
    explicit CampaignBuilder(exp::CampaignConfig config);

    /// Campaign root; the shard writes into <dir>/shard-<k>-of-<N>/.
    CampaignBuilder& directory(std::filesystem::path dir);
    /// This process's shard (1-based index, total count).  Default 1/1.
    CampaignBuilder& shard(int index, int count);
    /// Durable-checkpoint cadence in scenario draws.
    CampaignBuilder& checkpoint_every(int jobs);
    /// Also stream records.csv next to the JSONL file.
    CampaignBuilder& csv(bool on = true);
    /// Discard any previous output instead of resuming from it.
    CampaignBuilder& fresh();
    /// Stop after N checkpoints (time-sliced operation); 0 runs to the end.
    CampaignBuilder& stop_after_batches(int batches);
    CampaignBuilder& progress(std::function<void(long long, long long)> cb);
    /// Execution mode: the barrier-free completion pipeline (default) or
    /// the historical batch loop (pipeline(false), A/B benchmarking only).
    CampaignBuilder& pipeline(bool on = true);
    /// Pipeline run-ahead bound in jobs; 0 (default) auto-sizes to
    /// max(checkpoint cadence, 2 x pool size).
    CampaignBuilder& pipeline_window(int jobs);
    /// Keep an atomically-replaced status.json heartbeat in each shard
    /// directory (exp/status.hpp) for `volsched_campaign status` and other
    /// observers.  Off by default; results are identical either way.
    CampaignBuilder& heartbeat(bool on = true);
    /// Sets the shard count for run_parallel(): all N shards driven from
    /// this process over one shared worker pool.
    CampaignBuilder& parallel(int shard_count);

    /// The assembled configuration (directory resolved to the shard
    /// sub-directory).  Throws std::invalid_argument when incomplete.
    [[nodiscard]] exp::CampaignConfig config() const;

    /// The assembled configuration with the directory left at the campaign
    /// root (shard sub-directories are resolved per shard), as
    /// run_parallel() consumes it.
    [[nodiscard]] exp::CampaignConfig parallel_config() const;

    /// Runs (or resumes) this shard.
    exp::CampaignResult run() const;

    /// Runs (or resumes) every shard in-process — see
    /// exp::run_parallel_campaign.  Uses the .parallel(N) shard count
    /// (.shard() index is ignored).
    exp::ParallelCampaignResult run_parallel() const;

private:
    exp::CampaignConfig config_;
    std::filesystem::path root_;
};

} // namespace volsched::api
