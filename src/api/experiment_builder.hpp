#pragma once
/// \file experiment_builder.hpp
/// Fluent composition of experimental campaigns: one builder over
/// exp::Scenario / exp::RunConfig / exp::SweepConfig with registry-checked
/// heuristic specs and fail-fast validation.
///
///   auto result = api::ExperimentBuilder()
///                     .heuristics({"emct*", "mct", "thr50:emct"})
///                     .tasks({5, 10})
///                     .ncom({5})
///                     .wmin({1, 2, 3})
///                     .scenarios_per_cell(2)
///                     .trials(2)
///                     .seed(0xC0FFEE)
///                     .run();
///
/// run() drives exp::run_sweep; sweep_config()/heuristic_specs() expose the
/// validated pieces for callers that need the raw campaign description.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/sweep.hpp"

namespace volsched::api {

class CampaignBuilder; // api/campaign_builder.hpp

class ExperimentBuilder {
public:
    ExperimentBuilder();

    /// The heuristic specs to race (registry grammar; validated eagerly so
    /// a typo fails here with a did-you-mean message, not mid-sweep).
    ExperimentBuilder& heuristics(std::vector<std::string> specs);
    /// The paper's seventeen heuristics in Table 2 order.
    ExperimentBuilder& all_heuristics();
    /// The eight greedy heuristics (Table 3 / Figure 2 focus).
    ExperimentBuilder& greedy_heuristics();
    /// CLI-style selection: "all", "greedy", or a comma-separated spec
    /// list ("emct*,mct,thr50:emct").  One implementation for every tool
    /// and bench that takes a --heuristics flag.
    ExperimentBuilder& heuristic_set(const std::string& description);

    // Table 1 grid axes.
    ExperimentBuilder& tasks(std::vector<int> values);
    ExperimentBuilder& ncom(std::vector<int> values);
    ExperimentBuilder& wmin(std::vector<int> values);

    ExperimentBuilder& processors(int p);
    ExperimentBuilder& scenarios_per_cell(int n);
    ExperimentBuilder& trials(int n);
    ExperimentBuilder& tdata_factor(double f);
    ExperimentBuilder& tprog_factor(double f);

    /// The checkpoint-policy axis (ckpt registry specs, validated eagerly):
    /// the classic grid is replicated per policy with shared scenario/trial
    /// seeds, so every policy faces identical draws and realizations.
    /// Default: {"none"}, the paper's checkpoint-free grid.
    ExperimentBuilder& checkpoints(std::vector<std::string> specs);
    /// Sugar: a single-policy axis.
    ExperimentBuilder& checkpoint(const std::string& spec);

    // Per-run engine knobs (exp::RunConfig).
    ExperimentBuilder& iterations(int n);
    ExperimentBuilder& replica_cap(int n);
    ExperimentBuilder& max_slots(long long n);
    ExperimentBuilder& plan_class(sim::SchedulerClass c);
    /// Master transfer slots per checkpoint upload (default 1).
    ExperimentBuilder& checkpoint_cost(int slots);
    /// Engine dead-stretch fast-forward (default on; results identical
    /// either way — an A/B and debugging knob).
    ExperimentBuilder& skip_dead_slots(bool on = true);
    /// Engine stepping core (default: event-driven; false runs the
    /// reference slot loop — an A/B and debugging knob, results identical
    /// either way).
    ExperimentBuilder& event_driven(bool on = true);
    /// Per-slot engine invariant auditing (default off; slow).
    ExperimentBuilder& audit(bool on = true);

    ExperimentBuilder& seed(std::uint64_t master_seed);
    ExperimentBuilder& threads(std::size_t n);
    ExperimentBuilder&
    progress(std::function<void(long long, long long)> callback);
    /// Per-instance record hook; wire an exp::ResultSink here to stream raw
    /// distributions (see API.md "Campaigns").
    ExperimentBuilder&
    record(std::function<void(const exp::InstanceRecord&)> sink);

    /// The validated campaign pieces.  Throws std::invalid_argument on an
    /// empty/invalid heuristic list or a degenerate grid.
    [[nodiscard]] exp::SweepConfig sweep_config() const;
    [[nodiscard]] const std::vector<std::string>& heuristic_specs() const;

    /// Validates and runs the sweep.
    [[nodiscard]] exp::SweepResult run() const;

    /// Hands the validated sweep to a CampaignBuilder for sharded,
    /// resumable execution with streaming sinks (see API.md "Campaigns").
    [[nodiscard]] CampaignBuilder campaign() const;

private:
    void validate() const;

    exp::SweepConfig config_;
    std::vector<std::string> heuristics_;
};

} // namespace volsched::api
