#pragma once
/// \file registry.hpp
/// Self-registering scheduler registry — the open replacement for the
/// closed if/else factory.  Every heuristic registers itself from its own
/// translation unit with VOLSCHED_REGISTER_SCHEDULER; the registry resolves
/// spec strings (see spec.hpp for the grammar) into scheduler instances and
/// powers `--list-heuristics`, did-you-mean error messages, and the
/// `core::make_scheduler` compatibility shim.
///
/// Registering a new heuristic from application code:
///
///   VOLSCHED_REGISTER_SCHEDULER(my_sched, {
///       "mine", "my one-line description",
///       [](const volsched::api::SchedulerSpec&,
///          const volsched::api::SchedulerRegistry&) {
///           return std::make_unique<MyScheduler>();
///       }});
///
/// Wrapper families (like the threshold-exclusion family "thr") set
/// `takes_inner` and build their inner scheduler through the registry
/// reference they receive, and may declare a `shorthand_option` so that a
/// trailing integer is accepted as sugar: "thr50:emct" resolves exactly
/// like "thr(percent=50):emct".
///
/// Note on static libraries: the linker only pulls an archive member into
/// the final binary when something references a symbol in it, so a TU that
/// *only* self-registers would be silently dropped.  TUs compiled into the
/// `volsched` library therefore also place VOLSCHED_SCHEDULER_TU_ANCHOR and
/// are force-linked from the registry itself; TUs compiled directly into an
/// executable need no anchor.

#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "api/spec.hpp"
#include "sim/scheduler.hpp"

namespace volsched::api {

class SchedulerRegistry;

/// One registered scheduler (or scheduler family).
struct SchedulerInfo {
    using Factory = std::function<std::unique_ptr<sim::Scheduler>(
        const SchedulerSpec&, const SchedulerRegistry&)>;

    SchedulerInfo() = default;
    SchedulerInfo(std::string name_, std::string description_,
                  Factory factory_, bool takes_inner_ = false,
                  std::string shorthand_option_ = {})
        : name(std::move(name_)),
          description(std::move(description_)),
          factory(std::move(factory_)),
          takes_inner(takes_inner_),
          shorthand_option(std::move(shorthand_option_)) {}

    /// Canonical spec-stage name ("emct*", "random2w", "thr", ...).
    std::string name;
    /// One-line description shown by `volsched_sim --list-heuristics`.
    std::string description;
    /// Builds an instance for a resolved spec stage.  Wrapper families
    /// construct their inner scheduler via the registry reference.
    Factory factory;
    /// Whether specs may (and must) supply an inner stage ("thr...:emct").
    bool takes_inner = false;
    /// When non-empty, "<name><digits>" is accepted as shorthand for
    /// "<name>(<shorthand_option>=<digits>)".
    std::string shorthand_option;
};

/// Process-wide registry of scheduler factories.  Thread-safe; lookups are
/// case-sensitive, but did-you-mean suggestions are case-insensitive.
class SchedulerRegistry {
public:
    static SchedulerRegistry& instance();

    /// Registers `info`; throws std::invalid_argument on an empty name, a
    /// name containing spec-structural characters, a missing factory, or a
    /// duplicate registration.
    void add(SchedulerInfo info);

    /// Removes a registration (primarily for tests); returns whether the
    /// name was present.
    bool erase(const std::string& name);

    [[nodiscard]] bool contains(const std::string& name) const;

    /// All registered entries, sorted by name.
    [[nodiscard]] std::vector<SchedulerInfo> entries() const;

    /// All registered names, sorted.
    [[nodiscard]] std::vector<std::string> names() const;

    /// Resolves and instantiates a spec string.  Throws
    /// std::invalid_argument for grammar errors, unknown names (with a
    /// did-you-mean suggestion when a registered name is close), a wrapper
    /// without an inner stage, or an inner stage on a non-wrapper.
    [[nodiscard]] std::unique_ptr<sim::Scheduler>
    make(const std::string& spec_text) const;
    [[nodiscard]] std::unique_ptr<sim::Scheduler>
    make(const SchedulerSpec& spec) const;

    /// Parses, resolves and test-instantiates the spec (running the real
    /// factory is what exercises option validation), discarding the
    /// instance; throws exactly like make().  Keep factories cheap —
    /// callers such as ExperimentBuilder validate specs eagerly.
    void validate(const std::string& spec_text) const;

    /// Closest registered name by (case-insensitive) edit distance, or ""
    /// when nothing is close enough to suggest.
    [[nodiscard]] std::string suggestion_for(std::string_view name) const;

private:
    SchedulerRegistry() = default;

    struct Resolved {
        SchedulerInfo info; // copied: safe against concurrent add()/erase()
        SchedulerSpec spec; // shorthand expanded to its key=value form
    };
    [[nodiscard]] Resolved resolve(const SchedulerSpec& spec) const;

    mutable std::mutex mutex_;
    std::map<std::string, SchedulerInfo> entries_;
};

namespace detail {
/// Static-init-safe add() used by VOLSCHED_REGISTER_SCHEDULER: an
/// exception thrown during a namespace-scope registration would escape to
/// std::terminate with no message, so this catches it, prints the
/// diagnostic to stderr, and aborts deliberately.  Always returns true.
bool add_at_static_init(SchedulerInfo info) noexcept;
} // namespace detail

/// Factory-side option validation helpers.  `require_no_options` is for
/// schedulers that take none; `require_only_options` rejects any option key
/// outside the allowed set (so typos like "thr(prcent=50)" fail loudly).
void require_no_options(const SchedulerSpec& spec);
void require_only_options(const SchedulerSpec& spec,
                          std::initializer_list<std::string_view> allowed);

} // namespace volsched::api

/// Registers a scheduler at static-initialization time.  Use at namespace
/// scope in the scheduler's own translation unit; `tag` is any identifier
/// unique within the TU.
#define VOLSCHED_REGISTER_SCHEDULER(tag, ...)                                  \
    static const bool volsched_scheduler_registered_##tag [[maybe_unused]] =   \
        ::volsched::api::detail::add_at_static_init(                           \
            ::volsched::api::SchedulerInfo __VA_ARGS__)

/// Force-link anchor for registration TUs that live inside the volsched
/// static library (see the file comment).  Use once per such TU, at global
/// namespace scope, and reference the anchor from registry.cpp.
#define VOLSCHED_SCHEDULER_TU_ANCHOR(tag)                                      \
    namespace volsched::api::detail {                                          \
    void scheduler_tu_anchor_##tag() {}                                        \
    }
