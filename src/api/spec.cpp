#include "api/spec.hpp"

#include <stdexcept>

namespace volsched::api {
namespace {

[[noreturn]] void fail(std::string_view text, const std::string& what) {
    throw std::invalid_argument("scheduler spec '" + std::string(text) +
                                "': " + what);
}

std::string_view trim(std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
        s.remove_suffix(1);
    return s;
}

std::string check_token(std::string_view full, std::string_view tok,
                        const char* role) {
    tok = trim(tok);
    if (tok.empty()) fail(full, std::string("empty ") + role);
    for (char c : tok)
        if (is_spec_structural_char(c))
            fail(full, std::string(role) + " '" + std::string(tok) +
                           "' contains the reserved character '" + c + "'");
    return std::string(tok);
}

/// Parses one stage `name[(k=v,...)]` from `stage_text`.
SchedulerSpec parse_stage(std::string_view full, std::string_view stage_text) {
    stage_text = trim(stage_text);
    const auto open = stage_text.find('(');
    SchedulerSpec spec;
    if (open == std::string_view::npos) {
        spec.set_name(check_token(full, stage_text, "stage name"));
        return spec;
    }
    if (stage_text.back() != ')')
        fail(full, "missing ')' in stage '" + std::string(stage_text) + "'");
    spec.set_name(check_token(full, stage_text.substr(0, open), "stage name"));
    std::string_view body =
        stage_text.substr(open + 1, stage_text.size() - open - 2);
    if (trim(body).empty())
        fail(full, "empty option list in stage '" + spec.name() + "'");
    while (true) {
        const auto comma = body.find(',');
        const std::string_view kv =
            comma == std::string_view::npos ? body : body.substr(0, comma);
        const auto eq = kv.find('=');
        if (eq == std::string_view::npos)
            fail(full, "option '" + std::string(trim(kv)) +
                           "' is not of the form key=value");
        std::string key = check_token(full, kv.substr(0, eq), "option key");
        std::string value =
            check_token(full, kv.substr(eq + 1), "option value");
        if (spec.option(key) != nullptr)
            fail(full, "duplicate option key '" + key + "'");
        spec.add_option(std::move(key), std::move(value));
        if (comma == std::string_view::npos) break;
        body = body.substr(comma + 1);
    }
    return spec;
}

} // namespace

bool is_spec_structural_char(char c) noexcept {
    return c == ':' || c == '(' || c == ')' || c == ',' || c == '=';
}

namespace {

/// Parses `text`, attributing errors to the user's complete input `full`
/// (the recursion below hands in ever-shorter tails).
SchedulerSpec parse_spec(std::string_view full, std::string_view text) {
    if (trim(text).empty())
        fail(full, text.data() == full.data() && text.size() == full.size()
                       ? "empty spec"
                       : "empty inner stage after ':'");

    // Split at top-level ':' (a ':' not inside parentheses).
    int depth = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '(') {
            ++depth;
        } else if (c == ')') {
            if (--depth < 0) fail(full, "unbalanced ')'");
        } else if (c == ':' && depth == 0) {
            SchedulerSpec outer = parse_stage(full, text.substr(0, i));
            outer.set_inner(parse_spec(full, text.substr(i + 1)));
            return outer;
        }
    }
    if (depth != 0) fail(full, "unbalanced '('");
    return parse_stage(full, text);
}

} // namespace

SchedulerSpec SchedulerSpec::parse(std::string_view text) {
    return parse_spec(text, text);
}

void SchedulerSpec::add_option(std::string key, std::string value) {
    options_.emplace_back(std::move(key), std::move(value));
}

const std::string* SchedulerSpec::option(std::string_view key) const {
    for (const auto& [k, v] : options_)
        if (k == key) return &v;
    return nullptr;
}

void SchedulerSpec::set_inner(SchedulerSpec inner) {
    inner_.clear();
    inner_.push_back(std::move(inner));
}

std::string SchedulerSpec::canonical() const {
    std::string out = name_;
    if (!options_.empty()) {
        out += '(';
        for (std::size_t i = 0; i < options_.size(); ++i) {
            if (i != 0) out += ',';
            out += options_[i].first;
            out += '=';
            out += options_[i].second;
        }
        out += ')';
    }
    if (has_inner()) {
        out += ':';
        out += inner().canonical();
    }
    return out;
}

bool SchedulerSpec::operator==(const SchedulerSpec& other) const {
    return name_ == other.name_ && options_ == other.options_ &&
           inner_ == other.inner_;
}

void require_no_options(const SchedulerSpec& spec, std::string_view kind) {
    if (!spec.options().empty())
        throw std::invalid_argument(
            std::string(kind) + " '" + spec.canonical() + "': '" +
            spec.name() + "' takes no options, got '" +
            spec.options().front().first + "'");
}

void require_only_options(const SchedulerSpec& spec,
                          std::initializer_list<std::string_view> allowed,
                          std::string_view kind) {
    for (const auto& [key, value] : spec.options()) {
        bool ok = false;
        for (std::string_view a : allowed) ok = ok || key == a;
        if (!ok)
            throw std::invalid_argument(std::string(kind) + " '" +
                                        spec.canonical() +
                                        "': unknown option '" + key +
                                        "' for '" + spec.name() + "'");
    }
}

} // namespace volsched::api
