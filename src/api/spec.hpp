#pragma once
/// \file spec.hpp
/// The scheduler spec-string grammar of the public facade:
///
///   spec  := stage (":" stage)*          outermost stage first
///   stage := name [ "(" kv ("," kv)* ")" ]
///   kv    := key "=" value
///
/// `name`, `key` and `value` may contain any character except the
/// structural ones (':', '(', ')', ',', '='); surrounding whitespace is
/// trimmed.  Examples that parse:
///
///   "emct*"                 one stage, no options
///   "thr50:emct"            wrapper stage "thr50" around inner "emct"
///   "thr(percent=50):emct"  the same wrapper in key=value form
///   "thr25:thr50:emct"      wrappers nest arbitrarily deep
///
/// A parsed spec round-trips through canonical(): parse(s).canonical()
/// parses back to an equal spec (shorthand names like "thr50" are kept
/// verbatim; the registry, not the parser, knows how to expand them).

#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace volsched::api {

/// True for the characters the spec grammar reserves (':', '(', ')', ',',
/// '='): they cannot appear in stage names, option keys or values — nor,
/// therefore, in registered scheduler names.
bool is_spec_structural_char(char c) noexcept;

/// One parsed scheduler spec stage plus its (optional) inner stage chain.
class SchedulerSpec {
public:
    SchedulerSpec() = default;
    explicit SchedulerSpec(std::string name) : name_(std::move(name)) {}

    /// Parses the full grammar; throws std::invalid_argument with a
    /// position-annotated message on malformed input (empty stage name,
    /// unbalanced parens, missing '=', duplicate key, ...).
    static SchedulerSpec parse(std::string_view text);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

    /// Options in declaration order (duplicates are rejected at parse time).
    [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
    options() const noexcept {
        return options_;
    }
    void add_option(std::string key, std::string value);

    /// Pointer to the value for `key`, or nullptr when absent.
    [[nodiscard]] const std::string* option(std::string_view key) const;

    [[nodiscard]] bool has_inner() const noexcept { return !inner_.empty(); }
    /// Pre: has_inner().
    [[nodiscard]] const SchedulerSpec& inner() const { return inner_.front(); }
    void set_inner(SchedulerSpec inner);

    /// Canonical textual form; parse(x).canonical() round-trips.
    [[nodiscard]] std::string canonical() const;

    bool operator==(const SchedulerSpec& other) const;

private:
    std::string name_;
    std::vector<std::pair<std::string, std::string>> options_;
    std::vector<SchedulerSpec> inner_; // 0 or 1 elements (vector: incomplete
                                       // element type is allowed, keeps the
                                       // class copyable)
};

/// Factory-side option validation shared by the spec-driven registries
/// (scheduler and checkpoint); `kind` labels diagnostics, e.g. "scheduler
/// spec" or "checkpoint spec".  The registries wrap these with their own
/// fixed label (api::require_no_options, ckpt::require_no_options, ...).
void require_no_options(const SchedulerSpec& spec, std::string_view kind);
void require_only_options(const SchedulerSpec& spec,
                          std::initializer_list<std::string_view> allowed,
                          std::string_view kind);

} // namespace volsched::api
