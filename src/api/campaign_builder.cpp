#include "api/campaign_builder.hpp"

#include <stdexcept>

namespace volsched::api {

CampaignBuilder::CampaignBuilder(exp::CampaignConfig config)
    : config_(std::move(config)) {}

CampaignBuilder& CampaignBuilder::directory(std::filesystem::path dir) {
    root_ = std::move(dir);
    return *this;
}

CampaignBuilder& CampaignBuilder::shard(int index, int count) {
    config_.shard_index = index;
    config_.shard_count = count;
    return *this;
}

CampaignBuilder& CampaignBuilder::checkpoint_every(int jobs) {
    config_.checkpoint_jobs = jobs;
    return *this;
}

CampaignBuilder& CampaignBuilder::csv(bool on) {
    config_.write_csv = on;
    return *this;
}

CampaignBuilder& CampaignBuilder::fresh() {
    config_.resume = false;
    return *this;
}

CampaignBuilder& CampaignBuilder::stop_after_batches(int batches) {
    config_.stop_after_batches = batches;
    return *this;
}

CampaignBuilder&
CampaignBuilder::progress(std::function<void(long long, long long)> cb) {
    config_.sweep.progress = std::move(cb);
    return *this;
}

CampaignBuilder& CampaignBuilder::pipeline(bool on) {
    config_.pipeline = on;
    return *this;
}

CampaignBuilder& CampaignBuilder::pipeline_window(int jobs) {
    config_.pipeline_window = jobs;
    return *this;
}

CampaignBuilder& CampaignBuilder::heartbeat(bool on) {
    config_.heartbeat = on;
    return *this;
}

CampaignBuilder& CampaignBuilder::parallel(int shard_count) {
    config_.shard_count = shard_count;
    return *this;
}

exp::CampaignConfig CampaignBuilder::config() const {
    if (root_.empty())
        throw std::invalid_argument(
            "CampaignBuilder: no output directory; call .directory(...)");
    if (config_.shard_count < 1 || config_.shard_index < 1 ||
        config_.shard_index > config_.shard_count)
        throw std::invalid_argument(
            "CampaignBuilder: shard " + std::to_string(config_.shard_index) +
            "/" + std::to_string(config_.shard_count) + " is out of range");
    if (config_.checkpoint_jobs < 1)
        throw std::invalid_argument(
            "CampaignBuilder: checkpoint_every must be >= 1");
    exp::CampaignConfig out = config_;
    out.directory = root_ / exp::shard_directory_name(config_.shard_index,
                                                      config_.shard_count);
    return out;
}

exp::CampaignConfig CampaignBuilder::parallel_config() const {
    exp::CampaignConfig out = config();
    out.directory = root_;
    return out;
}

exp::CampaignResult CampaignBuilder::run() const {
    return exp::run_campaign(config());
}

exp::ParallelCampaignResult CampaignBuilder::run_parallel() const {
    return exp::run_parallel_campaign(parallel_config());
}

} // namespace volsched::api
