#include "api/experiment_builder.hpp"

#include <cmath>
#include <stdexcept>

#include "api/campaign_builder.hpp"
#include "api/registry.hpp"
#include "ckpt/registry.hpp"
#include "core/factory.hpp"
#include "util/cli.hpp"

namespace volsched::api {

namespace {

[[noreturn]] void fail(const std::string& what) {
    throw std::invalid_argument("ExperimentBuilder: " + what);
}

void require_positive(const char* what, long long value) {
    if (value <= 0)
        fail(std::string(what) + " must be positive, got " +
             std::to_string(value));
}

void require_axis(const char* what, const std::vector<int>& values) {
    if (values.empty()) fail(std::string(what) + " axis is empty");
    for (int v : values)
        if (v <= 0)
            fail(std::string(what) + " axis contains the non-positive value " +
                 std::to_string(v));
}

} // namespace

ExperimentBuilder::ExperimentBuilder() = default;

ExperimentBuilder&
ExperimentBuilder::heuristics(std::vector<std::string> specs) {
    // Validate eagerly: a bad spec should fail at composition time with the
    // registry's did-you-mean message, not thousands of instances into the
    // sweep on a worker thread.
    for (const auto& spec : specs)
        SchedulerRegistry::instance().validate(spec);
    heuristics_ = std::move(specs);
    return *this;
}

ExperimentBuilder& ExperimentBuilder::all_heuristics() {
    return heuristics(core::all_heuristic_names());
}

ExperimentBuilder& ExperimentBuilder::greedy_heuristics() {
    return heuristics(core::greedy_heuristic_names());
}

ExperimentBuilder&
ExperimentBuilder::heuristic_set(const std::string& description) {
    if (description == "all") return all_heuristics();
    if (description == "greedy") return greedy_heuristics();
    auto specs = util::split_list(description);
    if (specs.empty())
        fail("heuristic set '" + description +
             "' names no specs; want 'all', 'greedy', or a comma-separated "
             "spec list");
    return heuristics(std::move(specs));
}

ExperimentBuilder& ExperimentBuilder::tasks(std::vector<int> values) {
    config_.tasks_values = std::move(values);
    return *this;
}

ExperimentBuilder& ExperimentBuilder::ncom(std::vector<int> values) {
    config_.ncom_values = std::move(values);
    return *this;
}

ExperimentBuilder& ExperimentBuilder::wmin(std::vector<int> values) {
    config_.wmin_values = std::move(values);
    return *this;
}

ExperimentBuilder& ExperimentBuilder::processors(int p) {
    config_.p = p;
    return *this;
}

ExperimentBuilder& ExperimentBuilder::scenarios_per_cell(int n) {
    config_.scenarios_per_cell = n;
    return *this;
}

ExperimentBuilder& ExperimentBuilder::trials(int n) {
    config_.trials_per_scenario = n;
    return *this;
}

ExperimentBuilder& ExperimentBuilder::tdata_factor(double f) {
    config_.tdata_factor = f;
    return *this;
}

ExperimentBuilder& ExperimentBuilder::tprog_factor(double f) {
    config_.tprog_factor = f;
    return *this;
}

ExperimentBuilder& ExperimentBuilder::iterations(int n) {
    config_.run.iterations = n;
    return *this;
}

ExperimentBuilder& ExperimentBuilder::replica_cap(int n) {
    config_.run.replica_cap = n;
    return *this;
}

ExperimentBuilder& ExperimentBuilder::max_slots(long long n) {
    config_.run.max_slots = n;
    return *this;
}

ExperimentBuilder& ExperimentBuilder::plan_class(sim::SchedulerClass c) {
    config_.run.plan_class = c;
    return *this;
}

ExperimentBuilder&
ExperimentBuilder::checkpoints(std::vector<std::string> specs) {
    // Same eager-validation story as heuristics(): a typo fails at
    // composition time with the checkpoint registry's did-you-mean message.
    for (const auto& spec : specs)
        ckpt::CheckpointRegistry::instance().validate(spec);
    config_.checkpoint_values = std::move(specs);
    return *this;
}

ExperimentBuilder& ExperimentBuilder::checkpoint(const std::string& spec) {
    return checkpoints({spec});
}

ExperimentBuilder& ExperimentBuilder::checkpoint_cost(int slots) {
    config_.run.checkpoint_cost = slots;
    return *this;
}

ExperimentBuilder& ExperimentBuilder::skip_dead_slots(bool on) {
    config_.run.skip_dead_slots = on;
    return *this;
}

ExperimentBuilder& ExperimentBuilder::event_driven(bool on) {
    config_.run.event_driven = on;
    return *this;
}

ExperimentBuilder& ExperimentBuilder::audit(bool on) {
    config_.run.audit = on;
    return *this;
}

ExperimentBuilder& ExperimentBuilder::seed(std::uint64_t master_seed) {
    config_.master_seed = master_seed;
    return *this;
}

ExperimentBuilder& ExperimentBuilder::threads(std::size_t n) {
    config_.threads = n;
    return *this;
}

ExperimentBuilder& ExperimentBuilder::progress(
    std::function<void(long long, long long)> callback) {
    config_.progress = std::move(callback);
    return *this;
}

ExperimentBuilder& ExperimentBuilder::record(
    std::function<void(const exp::InstanceRecord&)> sink) {
    config_.record = std::move(sink);
    return *this;
}

void ExperimentBuilder::validate() const {
    if (heuristics_.empty())
        fail("no heuristics; call .heuristics({...}), .all_heuristics() or "
             ".greedy_heuristics()");
    require_axis("tasks", config_.tasks_values);
    require_axis("ncom", config_.ncom_values);
    require_axis("wmin", config_.wmin_values);
    require_positive("processors", config_.p);
    require_positive("scenarios_per_cell", config_.scenarios_per_cell);
    require_positive("trials", config_.trials_per_scenario);
    require_positive("iterations", config_.run.iterations);
    require_positive("max_slots", config_.run.max_slots);
    if (config_.run.replica_cap < 0) fail("replica_cap is negative");
    if (config_.run.checkpoint_cost < 0) fail("checkpoint_cost is negative");
    if (config_.checkpoint_values.empty())
        fail("checkpoint axis is empty; call .checkpoints({...}) with at "
             "least one policy spec (\"none\" is the paper's model)");
    // isfinite also rejects NaN, which every < comparison would wave
    // through — and which would poison the JSONL campaign headers.
    if (!std::isfinite(config_.tdata_factor) || config_.tdata_factor < 0 ||
        !std::isfinite(config_.tprog_factor) || config_.tprog_factor < 0)
        fail("tdata/tprog factors must be finite and non-negative");
}

exp::SweepConfig ExperimentBuilder::sweep_config() const {
    validate();
    return config_;
}

const std::vector<std::string>& ExperimentBuilder::heuristic_specs() const {
    return heuristics_;
}

exp::SweepResult ExperimentBuilder::run() const {
    validate();
    return exp::run_sweep(config_, heuristics_);
}

CampaignBuilder ExperimentBuilder::campaign() const {
    validate();
    exp::CampaignConfig config;
    config.sweep = config_;
    config.heuristics = heuristics_;
    return CampaignBuilder(std::move(config));
}

} // namespace volsched::api
