#pragma once
/// \file simulation_builder.hpp
/// Fluent construction of sim::Simulation — one entry point over the three
/// availability sources (Markov chains, recorded-trace replay, empirical
/// fit-and-replay) with validation and diagnostic error messages.  The
/// built Simulation is bit-identical to one assembled through the raw
/// constructor with the same ingredients.
///
///   auto simulation = sim::Simulation::builder()
///                         .platform(pf)
///                         .markov(chains)       // chains double as beliefs
///                         .iterations(10)
///                         .tasks_per_iteration(10)
///                         .seed(42)
///                         .build();
///
/// Availability sources (exactly one per build):
///   .markov(chains)      — the paper's setting: Markov availability, the
///                          same chains as the heuristics' beliefs
///   .replay(traces)      — replay recorded traces; uninformed by default
///   .empirical(traces)   — replay recorded traces with per-trace Markov
///                          beliefs fitted from the trace itself
///   .models(models)      — any AvailabilityModel set; uninformed default
/// followed optionally by .beliefs(chains) to override the default belief
/// set or .uninformed() to drop it.
///
/// Realization control: .realized(traces) attaches a pre-sampled
/// markov::RealizedTraces snapshot (shared availability sampling across
/// builds), .trace_cache(false) re-samples the realization on every run
/// instead of caching it, and .skip_dead_slots(false) disables the engine's
/// dead-stretch fast-forward.  None of these change results: the
/// realization is a function of the seed only.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/policy.hpp"
#include "markov/availability.hpp"
#include "markov/chain.hpp"
#include "sim/engine.hpp"
#include "trace/replay.hpp"

namespace volsched::api {

/// One availability source: per-processor models plus the belief chains the
/// source implies (may be empty for uninformed sources).
struct AvailabilitySource {
    std::vector<std::unique_ptr<markov::AvailabilityModel>> models;
    std::vector<markov::MarkovChain> default_beliefs;
    std::string origin; ///< "markov" / "replay" / "empirical" / "models"

    /// Markov availability drawn from `chains`, with the same chains as the
    /// default beliefs (the paper's experimental setting).
    static AvailabilitySource
    markov(std::vector<markov::MarkovChain> chains,
           markov::InitialState init = markov::InitialState::AlwaysUp);

    /// Replays recorded traces verbatim; no default beliefs (uninformed).
    static AvailabilitySource
    replay(std::vector<trace::RecordedTrace> traces,
           trace::ReplayAvailability::EndPolicy policy =
               trace::ReplayAvailability::EndPolicy::Loop);

    /// Replays recorded traces with per-trace maximum-likelihood Markov
    /// fits as the default beliefs — the trace-replay workflow of the
    /// paper's Section 8 (trace/empirical.hpp).
    static AvailabilitySource
    empirical(std::vector<trace::RecordedTrace> traces,
              trace::ReplayAvailability::EndPolicy policy =
                  trace::ReplayAvailability::EndPolicy::Loop);

    /// Arbitrary models; no default beliefs.
    static AvailabilitySource
    models_from(std::vector<std::unique_ptr<markov::AvailabilityModel>> models);
};

/// Fluent builder for sim::Simulation.  Single-use: build() consumes the
/// collected state.  Throws std::invalid_argument with a diagnostic message
/// naming the missing/mismatched ingredient on invalid input.
class SimulationBuilder {
public:
    SimulationBuilder& platform(sim::Platform pf);

    /// Sets the availability source (exactly one per build).
    SimulationBuilder& availability(AvailabilitySource source);

    // Sugar for the three canonical sources + raw models.
    SimulationBuilder&
    markov(std::vector<markov::MarkovChain> chains,
           markov::InitialState init = markov::InitialState::AlwaysUp);
    SimulationBuilder&
    replay(std::vector<trace::RecordedTrace> traces,
           trace::ReplayAvailability::EndPolicy policy =
               trace::ReplayAvailability::EndPolicy::Loop);
    SimulationBuilder&
    empirical(std::vector<trace::RecordedTrace> traces,
              trace::ReplayAvailability::EndPolicy policy =
                  trace::ReplayAvailability::EndPolicy::Loop);
    SimulationBuilder&
    models(std::vector<std::unique_ptr<markov::AvailabilityModel>> models);

    /// Overrides the source's default belief chains (size must match the
    /// platform at build time).
    SimulationBuilder& beliefs(std::vector<markov::MarkovChain> chains);
    /// Drops all beliefs: heuristics run uninformed (ProcView::belief null).
    SimulationBuilder& uninformed();

    /// Replaces the whole engine config; the per-knob setters below tweak
    /// the current one and may be freely mixed (last write wins).
    SimulationBuilder& config(sim::EngineConfig cfg);
    SimulationBuilder& iterations(int n);
    SimulationBuilder& tasks_per_iteration(int n);
    SimulationBuilder& replica_cap(int n);
    SimulationBuilder& max_slots(long long n);
    SimulationBuilder& plan_class(sim::SchedulerClass c);
    SimulationBuilder& audit(bool on = true);
    SimulationBuilder& events(sim::EventLog* log);
    SimulationBuilder& timeline(sim::Timeline* tl);
    SimulationBuilder& actions(sim::ActionTrace* at);
    /// Attaches a sim-time tracer (obs/trace.hpp; not owned, may be null):
    /// the run is recorded as per-worker spans exportable as
    /// Perfetto-loadable Chrome trace JSON.  Observer-only — attaching a
    /// tracer leaves every other output byte-identical.
    SimulationBuilder& trace(obs::TraceRecorder* rec);

    /// Attaches a checkpoint/restart policy by registry spec — "none",
    /// "periodic20", "daly", "risk(percent=25)", ... (ckpt/registry.hpp;
    /// `volsched_sim --list-checkpoints` prints all names).  The built
    /// Simulation owns the resolved policy.  With "none" the run is
    /// bit-identical to not calling this at all.
    SimulationBuilder& checkpoint(const std::string& spec);
    /// Attaches an already-built policy (shared across simulations).
    SimulationBuilder& checkpoint(std::shared_ptr<const ckpt::CheckpointPolicy> policy);
    /// Master transfer slot-units one checkpoint upload costs (default 1;
    /// zero commits instantly).
    SimulationBuilder& checkpoint_cost(int slots);

    SimulationBuilder& seed(std::uint64_t s);

    /// Attaches a pre-sampled realization snapshot, sharing availability
    /// sampling across several Simulations (e.g. objective variants over
    /// one instance).  The snapshot must have one trace per processor and
    /// must have been realized from the same seed as the built simulation —
    /// both are validated at build() time, because a realization that does
    /// not match the seed would silently break the determinism contract.
    SimulationBuilder& realized(std::shared_ptr<markov::RealizedTraces> traces);

    /// Controls the realization cache (default on): with `on`, the first
    /// run() samples the availability realization once and later runs
    /// replay it; with `off`, every run re-samples from the seed (the
    /// pre-trace-layer cost model — useful for memory-lean huge-horizon
    /// runs and as the benchmark baseline).  Either way results are
    /// bit-identical: the realization is a function of the seed only.
    SimulationBuilder& trace_cache(bool on = true);

    /// Disables the dead-stretch fast-forward (EngineConfig::
    /// skip_dead_slots); sugar over config() for A/B comparisons.
    SimulationBuilder& skip_dead_slots(bool on = true);

    /// Selects the stepping core (EngineConfig::event_driven, default on):
    /// `false` runs the reference slot loop.  Results are bit-identical
    /// either way; sugar over config() for A/B comparisons.
    SimulationBuilder& event_driven(bool on = true);

    /// Validates and builds.  The result bit-matches the raw
    /// sim::Simulation constructor fed the same platform, models, beliefs,
    /// config and seed.
    [[nodiscard]] sim::Simulation build();

private:
    std::optional<sim::Platform> platform_;
    std::optional<AvailabilitySource> source_;
    std::optional<std::vector<markov::MarkovChain>> belief_override_;
    std::shared_ptr<markov::RealizedTraces> realized_;
    std::shared_ptr<const ckpt::CheckpointPolicy> checkpoint_;
    bool uninformed_ = false;
    bool cache_traces_ = true;
    sim::EngineConfig config_{};
    std::uint64_t seed_ = 0;
    bool built_ = false;
};

} // namespace volsched::api
