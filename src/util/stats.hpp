#pragma once
/// \file stats.hpp
/// Streaming and batch statistics used by the experiment harness: Welford
/// accumulators (numerically stable single-pass mean/variance), summaries
/// with percentiles, and confidence intervals.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace volsched::util {

/// Single-pass, numerically stable accumulator for mean / variance / extrema
/// (Welford's algorithm).  Cheap enough to keep one per heuristic per cell.
class Accumulator {
public:
    void add(double x) noexcept;
    /// Merge another accumulator into this one (parallel reduction support;
    /// Chan et al. pairwise update).
    void merge(const Accumulator& other) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
    /// Unbiased sample variance (0 when fewer than two samples).
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    /// Standard error of the mean.
    [[nodiscard]] double sem() const noexcept;
    [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
    [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
    [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Batch summary of a sample: order statistics computed on a sorted copy.
struct Summary {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double p25 = 0.0;
    double median = 0.0;
    double p75 = 0.0;
    double p95 = 0.0;
    double max = 0.0;
};

/// Computes the summary of a sample. Empty input yields an all-zero summary.
Summary summarize(std::span<const double> xs);

/// Linear-interpolation percentile of a *sorted* sample, q in [0, 1].
double percentile_sorted(std::span<const double> sorted, double q);

/// Half-width of the normal-approximation 95% confidence interval on the
/// mean (1.96 * sem). Returns 0 for fewer than 2 samples.
double ci95_halfwidth(const Accumulator& acc);

} // namespace volsched::util
