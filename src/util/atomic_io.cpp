#include "util/atomic_io.hpp"

#include <cstdio>
#include <stdexcept>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace volsched::util {

namespace {

[[noreturn]] void fail(const std::filesystem::path& path, const char* what) {
    throw std::runtime_error("atomic_io: " + std::string(what) + " '" +
                             path.string() + "'");
}

} // namespace

std::string read_text_file(const std::filesystem::path& path) {
    std::FILE* f = std::fopen(path.string().c_str(), "rb");
    if (!f) fail(path, "cannot open");
    std::string out;
    char buf[1 << 14];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, got);
    const bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad) fail(path, "read error on");
    return out;
}

void write_file_atomic(const std::filesystem::path& path,
                       std::string_view content) {
    const std::filesystem::path tmp = path.string() + ".tmp";
    std::FILE* f = std::fopen(tmp.string().c_str(), "wb");
    if (!f) fail(tmp, "cannot create");
    const bool wrote =
        content.empty() ||
        std::fwrite(content.data(), 1, content.size(), f) == content.size();
    bool ok = wrote && std::fflush(f) == 0;
#ifndef _WIN32
    ok = ok && ::fsync(::fileno(f)) == 0;
#endif
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        std::filesystem::remove(tmp);
        fail(tmp, "write error on");
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp);
        fail(path, "rename failed for");
    }
}

} // namespace volsched::util
