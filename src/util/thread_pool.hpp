#pragma once
/// \file thread_pool.hpp
/// Work-queue thread pool used to parallelize simulation sweeps across
/// (scenario, trial) instances.  Instances are independent by construction
/// (per-instance derived RNG seeds), so the sweep is embarrassingly parallel.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace volsched::util {

/// Fixed-size pool with a single shared FIFO queue.
///
/// Exceptions thrown by tasks are caught and re-thrown (first one wins) from
/// wait_idle(), so a failing simulation aborts the sweep deterministically
/// rather than silently dropping results.
class ThreadPool {
public:
    /// `threads == 0` selects hardware_concurrency() (min 1).
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueue a task.  Must not be called after shutdown started.
    void submit(std::function<void()> task);

    /// Blocks until the queue drains and all workers are idle, then rethrows
    /// the first task exception if any occurred.
    void wait_idle();

    /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_task_;
    std::condition_variable cv_idle_;
    std::size_t active_ = 0;
    bool stop_ = false;
    std::exception_ptr first_error_;
};

} // namespace volsched::util
