#include "util/csv.hpp"

#include <charconv>
#include <stdexcept>

namespace volsched::util {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), arity_(header.size()) {
    if (header.empty())
        throw std::invalid_argument("CsvWriter: empty header");
    write_row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
    if (cells.size() != arity_)
        throw std::invalid_argument("CsvWriter: row arity mismatch");
    write_row(cells);
    ++rows_;
}

std::string CsvWriter::escape(std::string_view s) {
    const bool needs_quote =
        s.find_first_of(",\"\n\r") != std::string_view::npos;
    if (!needs_quote) return std::string(s);
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i) out_ << ',';
        out_ << escape(cells[i]);
    }
    out_ << '\n';
}

std::string CsvWriter::cell(double v) {
    // std::to_chars with general/10 renders exactly like "%.10g" under the
    // "C" locale but never consults LC_NUMERIC, so CSV records stay
    // byte-identical even inside a host application that set a locale
    // (pinned by test_golden_io).
    char buf[64];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v,
                                         std::chars_format::general, 10);
    return ec == std::errc{} ? std::string(buf, end) : std::string("nan");
}

std::string CsvWriter::cell(std::size_t v) { return std::to_string(v); }
std::string CsvWriter::cell(long long v) { return std::to_string(v); }

} // namespace volsched::util
