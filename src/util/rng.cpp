#include "util/rng.hpp"

namespace volsched::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                       std::uint64_t d) noexcept {
    SplitMix64 sm(a);
    std::uint64_t h = sm.next();
    h ^= SplitMix64(b ^ h).next();
    h ^= SplitMix64(c ^ rotl(h, 17)).next();
    h ^= SplitMix64(d ^ rotl(h, 31)).next();
    return h;
}

Rng::Rng(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
    // All-zero state is invalid for xoshiro; SplitMix64 cannot emit four
    // consecutive zeros, but guard anyway for defensive robustness.
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept {
    if (lo >= hi) return lo;
    const std::uint64_t range = hi - lo + 1;
    if (range == 0) return (*this)(); // full 64-bit range
    // Lemire's multiply-then-reject method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    auto l = static_cast<std::uint64_t>(m);
    if (l < range) {
        const std::uint64_t t = (0 - range) % range;
        while (l < t) {
            x = (*this)();
            m = static_cast<__uint128_t>(x) * range;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return lo + static_cast<std::uint64_t>(m >> 64);
}

bool Rng::bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
}

std::size_t Rng::weighted_index(const double* weights, std::size_t n) noexcept {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        if (weights[i] > 0.0) total += weights[i];
    if (total <= 0.0) return n;
    double r = uniform() * total;
    for (std::size_t i = 0; i < n; ++i) {
        if (weights[i] <= 0.0) continue;
        r -= weights[i];
        if (r < 0.0) return i;
    }
    // Floating-point slack: fall back to the last positive-weight index.
    for (std::size_t i = n; i-- > 0;)
        if (weights[i] > 0.0) return i;
    return n;
}

void Rng::jump() noexcept {
    static constexpr std::uint64_t kJump[] = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t jump : kJump) {
        for (int b = 0; b < 64; ++b) {
            if (jump & (1ULL << b)) {
                s0 ^= s_[0];
                s1 ^= s_[1];
                s2 ^= s_[2];
                s3 ^= s_[3];
            }
            (void)(*this)();
        }
    }
    s_ = {s0, s1, s2, s3};
}

} // namespace volsched::util
