#pragma once
/// \file cli.hpp
/// Tiny command-line argument parser for the bench and example binaries.
/// Supports `--name value`, `--name=value`, and boolean `--flag` options,
/// with typed getters and automatic `--help` text generation.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace volsched::util {

/// Splits a separator-joined list, stripping spaces/tabs and dropping blank
/// items ("a, b,,c" -> {"a","b","c"}).  Separators inside parentheses do
/// not split, so scheduler specs with option lists stay whole:
/// "thr(percent=50,fallback=1):emct,mct" -> two specs.  The CLI convention
/// for --heuristics and the integer grid axes.
std::vector<std::string> split_list(std::string_view text, char sep = ',');

/// Declarative option set + parsed values.
///
/// Usage:
///   Cli cli("bench_table2", "Reproduces Table 2");
///   cli.add_int("trials", 10, "trials per scenario");
///   cli.add_flag("full", "run the full paper-scale sweep");
///   if (!cli.parse(argc, argv)) return cli.exit_code();
///   int trials = cli.get_int("trials");
class Cli {
public:
    Cli(std::string program, std::string description);

    void add_int(const std::string& name, long long def, const std::string& help);
    void add_double(const std::string& name, double def, const std::string& help);
    void add_string(const std::string& name, std::string def, const std::string& help);
    void add_flag(const std::string& name, const std::string& help);

    /// Returns true when execution should continue; false for --help or a
    /// parse error (exit_code() distinguishes the two).
    bool parse(int argc, const char* const* argv);

    [[nodiscard]] long long get_int(const std::string& name) const;
    [[nodiscard]] double get_double(const std::string& name) const;
    [[nodiscard]] const std::string& get_string(const std::string& name) const;
    [[nodiscard]] bool get_flag(const std::string& name) const;

    [[nodiscard]] int exit_code() const noexcept { return exit_code_; }
    [[nodiscard]] std::string help() const;

private:
    enum class Kind { Int, Double, String, Flag };
    struct Option {
        Kind kind;
        std::string help;
        std::string value; // textual current value
        std::string def;   // textual default (for help)
    };

    Option& find(const std::string& name, Kind kind);
    const Option& find(const std::string& name, Kind kind) const;

    std::string program_;
    std::string description_;
    std::map<std::string, Option> options_;
    int exit_code_ = 0;
};

} // namespace volsched::util
