#pragma once
/// \file json.hpp
/// Minimal JSON support for the campaign result streams: canonical writers
/// (stable field order, shortest round-trip numbers, no locale dependence)
/// plus a strict recursive-descent parser.  This is deliberately not a
/// general-purpose JSON library — it covers exactly what the JSONL sinks
/// and campaign manifests emit, and rejects anything malformed loudly so a
/// truncated or hand-edited record cannot be half-read.
///
/// Numbers keep their raw token text, so 64-bit integers (RNG seeds use the
/// full range) survive a round trip exactly instead of being squeezed
/// through a double.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace volsched::util::json {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// added).  Control characters become \u00XX.
std::string escape(std::string_view s);

/// Shortest representation of `v` that parses back to the identical double
/// (std::to_chars); "0" for zero, never locale-dependent.
std::string number(double v);

/// One parsed JSON value.  Object member order is preserved.
class Value {
public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    /// Parses exactly one JSON document (trailing garbage rejected).
    /// Throws std::invalid_argument with a byte offset on malformed input.
    static Value parse(std::string_view text);

    [[nodiscard]] Kind kind() const noexcept { return kind_; }
    [[nodiscard]] bool is_object() const noexcept {
        return kind_ == Kind::Object;
    }
    [[nodiscard]] bool is_array() const noexcept {
        return kind_ == Kind::Array;
    }

    /// Typed accessors; throw std::invalid_argument on a kind mismatch or
    /// (for the integer accessors) a non-integral / out-of-range token.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_double() const;
    [[nodiscard]] long long as_i64() const;
    [[nodiscard]] std::uint64_t as_u64() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const std::vector<Value>& items() const; // array

    /// Object lookup: at() throws on a missing key, find() returns nullptr.
    [[nodiscard]] const Value& at(std::string_view key) const;
    [[nodiscard]] const Value* find(std::string_view key) const;

private:
    friend class Parser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::string scalar_; // raw number token, or decoded string
    std::vector<Value> items_;
    std::vector<std::pair<std::string, Value>> members_;
};

} // namespace volsched::util::json
