#pragma once
/// \file csv.hpp
/// Minimal CSV writer with RFC-4180 quoting, used to dump experiment results
/// for offline plotting.

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace volsched::util {

/// Streams rows to an std::ostream as CSV.  The header is written on
/// construction; each row must have exactly as many cells as the header.
class CsvWriter {
public:
    CsvWriter(std::ostream& out, std::vector<std::string> header);

    /// Writes one row. Throws std::invalid_argument on arity mismatch.
    void row(const std::vector<std::string>& cells);

    /// Convenience: formats doubles with enough digits to round-trip.
    static std::string cell(double v);
    static std::string cell(std::size_t v);
    static std::string cell(long long v);

    /// RFC-4180 quoting for one cell — the single escaping implementation
    /// every CSV emitter in the project shares.
    static std::string escape(std::string_view s);

    [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

private:
    void write_row(const std::vector<std::string>& cells);

    std::ostream& out_;
    std::size_t arity_;
    std::size_t rows_ = 0;
};

} // namespace volsched::util
