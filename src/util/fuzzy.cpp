#include "util/fuzzy.hpp"

#include <algorithm>
#include <cctype>

namespace volsched::util {

namespace {

std::string lowercase(std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

} // namespace

std::size_t edit_distance(std::string_view a, std::string_view b) {
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            diag = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
        }
    }
    return row[b.size()];
}

std::string closest_name(std::string_view name,
                         const std::vector<std::string>& candidates) {
    const std::string needle = lowercase(name);
    std::string best;
    std::size_t best_dist = 0;
    for (const auto& candidate : candidates) {
        const std::size_t d = edit_distance(needle, lowercase(candidate));
        if (best.empty() || d < best_dist ||
            (d == best_dist && candidate < best)) {
            best = candidate;
            best_dist = d;
        }
    }
    const std::size_t cutoff = std::max<std::size_t>(2, needle.size() / 3);
    if (best.empty() || best_dist > cutoff) return {};
    return best;
}

} // namespace volsched::util
