#pragma once
/// \file atomic_io.hpp
/// Crash-safe small-file IO for the campaign layer: progress manifests are
/// replaced atomically (write-to-temp, fsync, rename) so an interrupted
/// writer can never leave a torn manifest behind — a reader sees either the
/// old file or the new one, nothing in between.

#include <filesystem>
#include <string>
#include <string_view>

namespace volsched::util {

/// Reads a whole file into a string; throws std::runtime_error when the
/// file cannot be opened or read.
std::string read_text_file(const std::filesystem::path& path);

/// Atomically replaces `path` with `content`: writes `path` + ".tmp" in the
/// same directory, flushes it to disk, then renames over the target.  On
/// POSIX the rename is atomic, so concurrent/interrupted writers cannot
/// produce a partially written file.  Throws std::runtime_error on failure.
void write_file_atomic(const std::filesystem::path& path,
                       std::string_view content);

} // namespace volsched::util
