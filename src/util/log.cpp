#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace volsched::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::Debug: return "DEBUG";
        case LogLevel::Info: return "INFO";
        case LogLevel::Warn: return "WARN";
        case LogLevel::Error: return "ERROR";
        case LogLevel::Off: return "OFF";
    }
    return "?";
}

} // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
    if (level < g_level.load()) return;
    std::lock_guard lock(g_mutex);
    std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

} // namespace volsched::util
