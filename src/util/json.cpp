#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>

namespace volsched::util::json {

namespace {

[[noreturn]] void bad(const std::string& what) {
    throw std::invalid_argument("json: " + what);
}

} // namespace

std::string escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                // \u00XX by hand: keeps the canonical writers entirely
                // printf-free (c < 0x20, so the high byte is always 00).
                constexpr char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[c >> 4];
                out += hex[c & 0xF];
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string number(double v) {
    // JSON has no nan/inf tokens; refuse at the write site so a bad value
    // fails the run that produced it, not a later parse of its output.
    if (!std::isfinite(v)) bad("non-finite number cannot be serialized");
    char buf[32];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
    if (ec != std::errc{}) bad("number formatting failed");
    return std::string(buf, end);
}

bool Value::as_bool() const {
    if (kind_ != Kind::Bool) bad("not a bool");
    return bool_;
}

double Value::as_double() const {
    if (kind_ != Kind::Number) bad("not a number");
    // std::from_chars, not strtod: the latter honors the global LC_NUMERIC
    // locale, which would break record parsing in comma-decimal hosts.
    double v = 0.0;
    const auto [end, ec] =
        std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), v);
    if (ec != std::errc{} || end != scalar_.data() + scalar_.size())
        bad("malformed number");
    return v;
}

long long Value::as_i64() const {
    if (kind_ != Kind::Number) bad("not a number");
    long long v = 0;
    const auto [end, ec] =
        std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), v);
    if (ec != std::errc{} || end != scalar_.data() + scalar_.size())
        bad("not a 64-bit integer: " + scalar_);
    return v;
}

std::uint64_t Value::as_u64() const {
    if (kind_ != Kind::Number) bad("not a number");
    std::uint64_t v = 0;
    const auto [end, ec] =
        std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), v);
    if (ec != std::errc{} || end != scalar_.data() + scalar_.size())
        bad("not an unsigned 64-bit integer: " + scalar_);
    return v;
}

const std::string& Value::as_string() const {
    if (kind_ != Kind::String) bad("not a string");
    return scalar_;
}

const std::vector<Value>& Value::items() const {
    if (kind_ != Kind::Array) bad("not an array");
    return items_;
}

const Value* Value::find(std::string_view key) const {
    if (kind_ != Kind::Object) bad("not an object");
    for (const auto& [k, v] : members_)
        if (k == key) return &v;
    return nullptr;
}

const Value& Value::at(std::string_view key) const {
    if (const Value* v = find(key)) return *v;
    bad("missing key '" + std::string(key) + "'");
}

/// Strict single-pass recursive-descent parser.
class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value run() {
        Value v = value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        bad(what + " at byte " + std::to_string(pos_));
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) return false;
        pos_ += word.size();
        return true;
    }

    Value value() {
        // The campaign formats nest three levels; anything deeper is not
        // ours.  The cap turns adversarially nested input into the loud
        // exception the header promises instead of a stack overflow.
        if (++depth_ > 32) fail("nesting too deep");
        skip_ws();
        Value v;
        switch (peek()) {
        case '{': v = object(); break;
        case '[': v = array(); break;
        case '"': v = string_value(); break;
        case 't':
        case 'f': v = bool_value(); break;
        case 'n':
            if (!literal("null")) fail("bad literal");
            break;
        default: v = number_value(); break;
        }
        --depth_;
        return v;
    }

    Value object() {
        expect('{');
        Value v;
        v.kind_ = Value::Kind::Object;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            v.members_.emplace_back(std::move(key), value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Value array() {
        expect('[');
        Value v;
        v.kind_ = Value::Kind::Array;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.items_.push_back(value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    Value bool_value() {
        Value v;
        v.kind_ = Value::Kind::Bool;
        if (literal("true")) v.bool_ = true;
        else if (literal("false")) v.bool_ = false;
        else fail("bad literal");
        return v;
    }

    Value string_value() {
        Value v;
        v.kind_ = Value::Kind::String;
        v.scalar_ = parse_string();
        return v;
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            const char c = peek();
            ++pos_;
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            const char e = peek();
            ++pos_;
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
                unsigned code = 0;
                const auto* first = text_.data() + pos_;
                const auto [end, ec] = std::from_chars(first, first + 4, code, 16);
                if (ec != std::errc{} || end != first + 4)
                    fail("bad \\u escape");
                pos_ += 4;
                // The sinks only emit \u00XX; decode the Latin-1 subset and
                // reject anything that would need surrogate handling.
                if (code > 0xFF) fail("unsupported \\u escape > 0xFF");
                out += static_cast<char>(code);
                break;
            }
            default: fail("bad escape");
            }
        }
    }

    Value number_value() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        auto digits = [&] {
            std::size_t n = 0;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
                ++n;
            }
            return n;
        };
        if (digits() == 0) fail("bad number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (digits() == 0) fail("bad number");
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (digits() == 0) fail("bad number");
        }
        Value v;
        v.kind_ = Value::Kind::Number;
        v.scalar_ = std::string(text_.substr(start, pos_ - start));
        return v;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

Value Value::parse(std::string_view text) { return Parser(text).run(); }

} // namespace volsched::util::json
