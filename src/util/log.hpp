#pragma once
/// \file log.hpp
/// Leveled stderr logging with a global threshold.  The simulator itself
/// never logs on the hot path; logging is for harness progress reporting.

#include <sstream>
#include <string>

namespace volsched::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets / gets the process-wide minimum level that is emitted.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one line "[LEVEL] message" to stderr if level passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}
} // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
    if (log_level() <= LogLevel::Debug)
        log_line(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
    if (log_level() <= LogLevel::Info)
        log_line(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
    if (log_level() <= LogLevel::Warn)
        log_line(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
    if (log_level() <= LogLevel::Error)
        log_line(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

} // namespace volsched::util
