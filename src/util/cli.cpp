#include "util/cli.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace volsched::util {

std::vector<std::string> split_list(std::string_view text, char sep) {
    std::vector<std::string> out;
    std::string current;
    int parens = 0;
    for (char c : text) {
        if (c == '(') ++parens;
        else if (c == ')' && parens > 0) --parens;
        if (c == sep && parens == 0) {
            if (!current.empty()) out.push_back(current);
            current.clear();
        } else if (c != ' ' && c != '\t') {
            current += c;
        }
    }
    if (!current.empty()) out.push_back(current);
    return out;
}

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void Cli::add_int(const std::string& name, long long def,
                  const std::string& help) {
    options_[name] = {Kind::Int, help, std::to_string(def), std::to_string(def)};
}

namespace {

/// Shortest round-trip rendering, always '.'-decimal — std::to_chars is
/// locale-independent where "%g" follows LC_NUMERIC.
std::string render_double(double v) {
    char buf[64];
    auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
    return ec == std::errc{} ? std::string(buf, end) : std::string("?");
}

/// Whole-token numeric parse.  std::from_chars never consults the locale
/// and rejects leading whitespace/'+', so "1,5" or " 5" can't silently
/// become a different experiment under a different LC_NUMERIC.
template <typename T>
bool parse_whole(const std::string& text, T& out) {
    const char* first = text.c_str();
    const char* last = first + text.size();
    auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc{} && ptr == last;
}

} // namespace

void Cli::add_double(const std::string& name, double def,
                     const std::string& help) {
    const std::string rendered = render_double(def);
    options_[name] = {Kind::Double, help, rendered, rendered};
}

void Cli::add_string(const std::string& name, std::string def,
                     const std::string& help) {
    options_[name] = {Kind::String, help, def, def};
}

void Cli::add_flag(const std::string& name, const std::string& help) {
    options_[name] = {Kind::Flag, help, "0", "0"};
}

Cli::Option& Cli::find(const std::string& name, Kind kind) {
    auto it = options_.find(name);
    if (it == options_.end())
        throw std::logic_error("Cli: unknown option --" + name);
    if (it->second.kind != kind)
        throw std::logic_error("Cli: type mismatch for --" + name);
    return it->second;
}

const Cli::Option& Cli::find(const std::string& name, Kind kind) const {
    return const_cast<Cli*>(this)->find(name, kind);
}

bool Cli::parse(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(help().c_str(), stdout);
            exit_code_ = 0;
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            std::fprintf(stderr, "%s: unexpected positional argument '%s'\n",
                         program_.c_str(), arg.c_str());
            exit_code_ = 2;
            return false;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool has_value = false;
        if (auto eq = name.find('='); eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }
        auto it = options_.find(name);
        if (it == options_.end()) {
            std::fprintf(stderr, "%s: unknown option --%s\n", program_.c_str(),
                         name.c_str());
            exit_code_ = 2;
            return false;
        }
        Option& opt = it->second;
        if (opt.kind == Kind::Flag) {
            opt.value = has_value ? value : "1";
            continue;
        }
        if (!has_value) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: option --%s requires a value\n",
                             program_.c_str(), name.c_str());
                exit_code_ = 2;
                return false;
            }
            value = argv[++i];
        }
        // Numeric options must consume the whole token: "5x" or "0xC0FFEE"
        // silently prefix-parsing to a different experiment is worse than
        // an error.
        if (opt.kind != Kind::String) {
            bool ok;
            if (opt.kind == Kind::Int) {
                long long parsed;
                ok = parse_whole(value, parsed);
            } else {
                double parsed;
                ok = parse_whole(value, parsed);
            }
            if (!ok) {
                std::fprintf(stderr,
                             "%s: option --%s wants %s value, got '%s'\n",
                             program_.c_str(), name.c_str(),
                             opt.kind == Kind::Int ? "an integer"
                                                   : "a numeric",
                             value.c_str());
                exit_code_ = 2;
                return false;
            }
        }
        opt.value = value;
    }
    return true;
}

long long Cli::get_int(const std::string& name) const {
    long long out = 0;
    parse_whole(find(name, Kind::Int).value, out);
    return out;
}

double Cli::get_double(const std::string& name) const {
    double out = 0.0;
    parse_whole(find(name, Kind::Double).value, out);
    return out;
}

const std::string& Cli::get_string(const std::string& name) const {
    return find(name, Kind::String).value;
}

bool Cli::get_flag(const std::string& name) const {
    const auto& v = find(name, Kind::Flag).value;
    return v == "1" || v == "true" || v == "yes";
}

std::string Cli::help() const {
    std::ostringstream os;
    os << program_ << " — " << description_ << "\n\noptions:\n";
    for (const auto& [name, opt] : options_) {
        os << "  --" << name;
        if (opt.kind != Kind::Flag) os << " <value>";
        os << "\n      " << opt.help;
        if (opt.kind != Kind::Flag) os << " (default: " << opt.def << ")";
        os << '\n';
    }
    os << "  --help\n      show this message\n";
    return os.str();
}

} // namespace volsched::util
