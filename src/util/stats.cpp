#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace volsched::util {

void Accumulator::add(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double nt = na + nb;
    mean_ += delta * nb / nt;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const noexcept {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::sem() const noexcept {
    if (n_ < 2) return 0.0;
    return stddev() / std::sqrt(static_cast<double>(n_));
}

double percentile_sorted(std::span<const double> sorted, double q) {
    if (sorted.empty()) return 0.0;
    if (sorted.size() == 1) return sorted[0];
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::span<const double> xs) {
    Summary s;
    if (xs.empty()) return s;
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    Accumulator acc;
    for (double x : sorted) acc.add(x);
    s.count = acc.count();
    s.mean = acc.mean();
    s.stddev = acc.stddev();
    s.min = sorted.front();
    s.max = sorted.back();
    s.p25 = percentile_sorted(sorted, 0.25);
    s.median = percentile_sorted(sorted, 0.50);
    s.p75 = percentile_sorted(sorted, 0.75);
    s.p95 = percentile_sorted(sorted, 0.95);
    return s;
}

double ci95_halfwidth(const Accumulator& acc) { return 1.96 * acc.sem(); }

} // namespace volsched::util
