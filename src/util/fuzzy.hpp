#pragma once
/// \file fuzzy.hpp
/// Fuzzy name matching shared by the self-registering registries: classic
/// Levenshtein edit distance plus the "did you mean ...?" candidate search
/// both the scheduler registry and the checkpoint-policy registry use for
/// their unknown-name diagnostics.

#include <string>
#include <string_view>
#include <vector>

namespace volsched::util {

/// Classic Levenshtein distance, O(|a|*|b|) time, O(|b|) space.
std::size_t edit_distance(std::string_view a, std::string_view b);

/// The candidate closest to `name` by case-insensitive edit distance, or ""
/// when nothing is plausibly a typo of the input (the cutoff allows one
/// edit per three characters, but always at least two).  Ties break toward
/// the lexicographically smaller candidate.
std::string closest_name(std::string_view name,
                         const std::vector<std::string>& candidates);

} // namespace volsched::util
