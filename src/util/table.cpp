#include "util/table.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>
#include <stdexcept>

namespace volsched::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)), right_(header_.size(), false) {
    if (header_.empty())
        throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> cells) {
    if (cells.size() != header_.size())
        throw std::invalid_argument("TextTable: row arity mismatch");
    rows_.push_back(std::move(cells));
}

void TextTable::align_right(std::size_t col) {
    if (col >= right_.size())
        throw std::out_of_range("TextTable: column out of range");
    right_[col] = true;
}

std::string TextTable::num(double v, int decimals) {
    // Fixed-notation twin of CsvWriter::cell(double): to_chars instead of
    // "%.*f" keeps table renders independent of LC_NUMERIC.
    char buf[64];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v,
                                         std::chars_format::fixed, decimals);
    return ec == std::errc{} ? std::string(buf, end) : std::string("nan");
}

std::string TextTable::render(const std::string& title) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit_row = [&](std::ostringstream& os,
                        const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c) os << "  ";
            const auto pad = width[c] - row[c].size();
            if (right_[c]) os << std::string(pad, ' ') << row[c];
            else os << row[c] << std::string(pad, ' ');
        }
        os << '\n';
    };

    std::ostringstream os;
    if (!title.empty()) os << title << '\n';
    emit_row(os, header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) emit_row(os, row);
    return os.str();
}

} // namespace volsched::util
