#pragma once
/// \file rng.hpp
/// Deterministic, platform-independent random number generation.
///
/// We deliberately avoid `std::mt19937` + `std::uniform_*_distribution`
/// because the distribution algorithms are implementation-defined, which
/// would make experiment results differ across standard libraries.  Instead
/// we ship xoshiro256** (Blackman & Vigna) seeded via SplitMix64, plus our
/// own uniform/int/real mapping helpers, so a given master seed produces the
/// same availability traces and scenarios everywhere.

#include <array>
#include <cstdint>
#include <limits>

namespace volsched::util {

/// SplitMix64: tiny generator used for seeding and for hashing seed tuples
/// into independent streams.  Passes BigCrush when used as a generator.
class SplitMix64 {
public:
    explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// Hash an arbitrary tuple of 64-bit values into a single well-mixed seed.
/// Used to derive independent per-(scenario, trial) streams from one master
/// seed so sweeps are reproducible and embarrassingly parallel.
std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b = 0x6a09e667f3bcc909ULL,
                       std::uint64_t c = 0xbb67ae8584caa73bULL,
                       std::uint64_t d = 0x3c6ef372fe94f82bULL) noexcept;

/// xoshiro256**: fast, high-quality 256-bit-state PRNG.
/// Reference implementation by David Blackman and Sebastiano Vigna (public
/// domain), adapted to a C++ class with value semantics.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the four state words from SplitMix64(seed), as recommended by
    /// the xoshiro authors.
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    /// Next raw 64-bit output.
    result_type operator()() noexcept;

    /// Uniform double in [0, 1) with 53 bits of precision.
    double uniform() noexcept;

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept;

    /// Uniform integer in the inclusive range [lo, hi].
    /// Uses Lemire-style rejection to avoid modulo bias.
    std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept;

    /// Bernoulli draw with success probability p (clamped to [0,1]).
    bool bernoulli(double p) noexcept;

    /// Samples an index in [0, n) proportionally to the given non-negative
    /// weights (n = weights.size()); returns n if all weights are zero.
    /// Declared here, defined in rng.cpp to keep <vector> out of the hot path
    /// headers.
    std::size_t weighted_index(const double* weights, std::size_t n) noexcept;

    /// Jump function: advances the stream by 2^128 steps, for splitting one
    /// stream into non-overlapping substreams.
    void jump() noexcept;

private:
    std::array<std::uint64_t, 4> s_{};
};

} // namespace volsched::util
