#pragma once
/// \file table.hpp
/// Fixed-width ASCII table rendering, used by the bench harnesses to print
/// paper-style tables (Table 2, Table 3, Figure 2 series).

#include <string>
#include <vector>

namespace volsched::util {

/// Accumulates rows of string cells and renders them with column-fitted
/// widths, a header rule, and optional right-alignment for numeric columns.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    void add_row(std::vector<std::string> cells);

    /// Marks a column (0-based) as right-aligned (numeric convention).
    void align_right(std::size_t col);

    /// Renders the whole table, including a title line if non-empty.
    [[nodiscard]] std::string render(const std::string& title = {}) const;

    /// Formats a double with fixed decimals — helper for callers.
    static std::string num(double v, int decimals = 2);

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<bool> right_;
};

} // namespace volsched::util
