#pragma once
/// \file scheduler.hpp
/// The contract between the simulation engine and on-line scheduling
/// heuristics.  Each slot where assignable work and spare master bandwidth
/// exist, the engine runs one "round": it presents a snapshot of every
/// processor and asks the heuristic, task instance by task instance, which
/// UP processor the instance should go to — mirroring the one-by-one greedy
/// assignment of Section 6.

#include <cstdint>
#include <span>
#include <string_view>

#include "markov/chain.hpp"
#include "markov/state.hpp"
#include "sim/platform.hpp"
#include "util/rng.hpp"

namespace volsched::sim {

/// Per-processor snapshot visible to heuristics.
struct ProcView {
    markov::ProcState state = markov::ProcState::Down;
    /// Whether the processor holds a complete copy of the program.
    bool has_program = false;
    /// Whether it can accept a new staged task (buffer rule of Section 3.3:
    /// at most one task beyond the one being computed).
    bool buffer_free = true;
    /// w_q, UP slots per task.
    int w = 1;
    /// Delay(q) of Section 6.3.1: estimated slots before the processor
    /// finishes its committed program/data/compute work, assuming it stays
    /// UP and communication is contention-free.
    int delay = 0;
    /// The availability chain this processor is believed to follow (the true
    /// chain in Markov experiments, a fitted chain in trace replays).  Null
    /// when the run is deliberately uninformed.
    const markov::MarkovChain* belief = nullptr;
};

/// Snapshot of the whole round.
struct SchedView {
    const Platform* platform = nullptr;
    std::span<const ProcView> procs;
    long long slot = 0;
    /// Number of distinct processors already assigned >= 1 instance in this
    /// round (the `nactive` counter of the starred heuristics, Section 6.3.1).
    int nactive = 0;
    /// Original task instances still to assign in this round (m - m').
    int remaining_tasks = 0;
};

/// Cumulative memoization counters a scheduler may expose (heuristics
/// backed by a markov::ExpectationCache).  Purely observational: the
/// cached and uncached paths compute bit-identical scores, so these
/// numbers describe efficiency, never results.  Cumulative over the
/// scheduler's lifetime; the engine reports per-run deltas in RunMetrics.
struct SchedulerCounters {
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_invalidations = 0;
};

/// On-line scheduling heuristic.  Implementations must be deterministic
/// given the provided RNG (all randomness must come from `rng`).
class Scheduler {
public:
    virtual ~Scheduler() = default;

    /// Called once at the start of each assignment round.
    virtual void begin_round(const SchedView& view) { (void)view; }

    /// Chooses a processor for the next task instance among `eligible`
    /// (indices into view.procs, all in the UP state).  `nq[q]` is the
    /// number of instances already assigned to processor q in this round.
    /// Must return one of the eligible indices.
    virtual ProcId select(const SchedView& view,
                          std::span<const ProcId> eligible,
                          std::span<const int> nq, util::Rng& rng) = 0;

    /// Stable identifier used in reports ("emct*", "random2w", ...).
    [[nodiscard]] virtual std::string_view name() const = 0;

    /// Cumulative memoization counters (zeros for heuristics with no
    /// cache).  Wrappers must forward to the scheduler that actually
    /// scores.
    [[nodiscard]] virtual SchedulerCounters counters() const { return {}; }
};

} // namespace volsched::sim
