#pragma once
/// \file timeline.hpp
/// Per-slot activity recording: one character per (processor, slot),
/// rendered as an ASCII Gantt chart.  Attach via EngineConfig::timeline.
///
/// Codes:
///   'd' DOWN   'r' RECLAIMED   '.' UP and idle
///   'P' receiving the program      'D' receiving task data
///   'C' computing                  'B' computing + receiving data

#include <string>
#include <vector>

#include "sim/platform.hpp"

namespace volsched::sim {

class Timeline {
public:
    /// (Re)initializes for a platform of `procs` processors.
    void begin(int procs);

    /// Appends the code for processor `proc` at the next slot; the engine
    /// calls this once per processor per slot, in slot order.
    void record(ProcId proc, char code);

    [[nodiscard]] int procs() const noexcept {
        return static_cast<int>(rows_.size());
    }
    [[nodiscard]] long long slots() const noexcept {
        return rows_.empty() ? 0
                             : static_cast<long long>(rows_[0].size());
    }
    /// Code at (proc, slot); '\0' when out of range.
    [[nodiscard]] char at(ProcId proc, long long slot) const noexcept;

    /// Renders slots [first, last) as rows of characters with a slot ruler;
    /// last == -1 means "to the end".  Wide spans are rendered verbatim —
    /// callers choose the window.
    [[nodiscard]] std::string render(long long first = 0,
                                     long long last = -1) const;

private:
    std::vector<std::string> rows_;
};

} // namespace volsched::sim
