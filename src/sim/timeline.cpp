#include "sim/timeline.hpp"

#include <algorithm>
#include <sstream>

namespace volsched::sim {

void Timeline::begin(int procs) {
    rows_.assign(static_cast<std::size_t>(procs), std::string{});
}

void Timeline::record(ProcId proc, char code) {
    rows_[proc].push_back(code);
}

char Timeline::at(ProcId proc, long long slot) const noexcept {
    if (proc < 0 || proc >= procs()) return '\0';
    if (slot < 0 || slot >= static_cast<long long>(rows_[proc].size()))
        return '\0';
    return rows_[proc][static_cast<std::size_t>(slot)];
}

std::string Timeline::render(long long first, long long last) const {
    std::ostringstream os;
    const long long end =
        (last < 0) ? slots() : std::min<long long>(last, slots());
    const long long begin_slot = std::clamp<long long>(first, 0, end);
    // Ruler: a tick every 10 slots.
    os << "      ";
    for (long long t = begin_slot; t < end; ++t)
        os << (t % 10 == 0 ? '|' : ' ');
    os << '\n';
    for (int q = 0; q < procs(); ++q) {
        os << 'P' << q << (q < 10 ? "    " : "   ");
        os << rows_[q].substr(static_cast<std::size_t>(begin_slot),
                              static_cast<std::size_t>(end - begin_slot));
        os << '\n';
    }
    return os.str();
}

} // namespace volsched::sim
