#pragma once
/// \file metrics.hpp
/// Per-run outcome and accounting counters produced by the engine.

#include <vector>

namespace volsched::sim {

struct RunMetrics {
    /// Slots used to finish all iterations; equals the horizon if the run
    /// did not complete (`completed == false`).
    long long makespan = 0;
    /// True when every requested iteration finished within the horizon.
    bool completed = false;
    int iterations_completed = 0;

    /// Logical tasks completed across all iterations.
    long long tasks_completed = 0;
    /// Committed replica instances (extra copies actually staged on workers).
    long long replicas_committed = 0;
    /// Logical tasks whose first finisher was a replica instance.
    long long replica_wins = 0;

    /// Total master transfer slot-units consumed (program + data).
    long long transfer_slots = 0;
    /// Transfer slot-units lost to crashes and replica cancellations.
    long long wasted_transfer_slots = 0;
    /// Compute slot-units performed by workers.
    long long compute_slots = 0;
    /// Compute slot-units lost to crashes and replica cancellations: the
    /// work each released incarnation computed itself (restart credit
    /// excluded), net of the progress it committed to the master via
    /// checkpoints with a live future incarnation to serve.  Without a
    /// checkpoint policy this is exactly the historical all-progress-lost
    /// accounting.
    long long wasted_compute_slots = 0;

    /// Master transfer slot-units consumed by checkpoint uploads (counted
    /// separately from `transfer_slots`; both compete for the same `ncom`
    /// bandwidth).  Zero when no checkpoint policy is attached.
    long long checkpoint_slots = 0;
    /// Checkpoint snapshots fully uploaded and committed at the master.
    long long checkpoints_committed = 0;
    /// Original task incarnations that resumed from a committed checkpoint
    /// instead of starting from scratch (replicas never take credit).
    long long recoveries = 0;
    /// Compute slot-units a restart did not have to redo thanks to a
    /// committed checkpoint (accounted when the restarted instance is
    /// promoted to computing, in the restarting worker's w_q scale).
    long long saved_compute_slots = 0;

    /// Number of UP/RECLAIMED -> DOWN transitions observed.
    long long down_events = 0;

    /// Slots elided while no worker was UP (the dead-stretch fast-forward
    /// of EngineConfig::skip_dead_slots, or the event-driven core eliding a
    /// fully-absent stretch): counted toward the makespan but never
    /// simulated slot by slot.  Zero when neither mechanism triggered.
    long long dead_slots_skipped = 0;

    /// Slots elided by the event-driven core's closed-form advancement
    /// (EngineConfig::event_driven), dead stretches included — so
    /// slots_elided >= dead_slots_skipped in event-driven runs.  Zero under
    /// the reference slot loop.
    long long slots_elided = 0;

    /// Workers un-enrolled by the proactive policy (SchedulerClass::
    /// Proactive only; always zero for the paper's dynamic class).
    long long proactive_cancellations = 0;

    /// Expectation-cache traffic this run caused in the scheduler (the
    /// delta of Scheduler::counters() across the run; zeros for heuristics
    /// without a cache).  Observational only: the cached and uncached
    /// scoring paths are bit-identical, so these never affect results —
    /// they measure how much scoring work memoization absorbed.
    long long cache_hits = 0;
    long long cache_misses = 0;
    long long cache_invalidations = 0;

    /// Slot (1-based count) at which each completed iteration finished;
    /// size == iterations_completed.  Iteration k's duration is
    /// iteration_ends[k] - iteration_ends[k-1] (with iteration_ends[-1]=0);
    /// the first iteration carries the program-distribution cost, later
    /// ones do not (Section 3.1).
    std::vector<long long> iteration_ends;

    /// Per-processor accounting (all indexed by processor id).
    struct PerProc {
        long long tasks_completed = 0; ///< instances finished here
        long long compute_slots = 0;   ///< compute slot-units performed
        long long transfer_slots = 0;  ///< transfer slot-units received
        long long up_slots = 0;        ///< slots spent UP
        long long down_events = 0;     ///< transitions into DOWN
    };
    std::vector<PerProc> per_proc;
};

} // namespace volsched::sim
