#include "sim/metrics_io.hpp"

namespace volsched::sim {

namespace {

void field(std::string& out, const char* key, long long value, bool first = false) {
    if (!first) out += ',';
    out += '"';
    out += key;
    out += "\":";
    out += std::to_string(value);
}

} // namespace

std::string metrics_to_json(const RunMetrics& m) {
    std::string out = "{";
    field(out, "makespan", m.makespan, /*first=*/true);
    out += ",\"completed\":";
    out += m.completed ? "true" : "false";
    field(out, "iterations_completed", m.iterations_completed);
    field(out, "tasks_completed", m.tasks_completed);
    field(out, "replicas_committed", m.replicas_committed);
    field(out, "replica_wins", m.replica_wins);
    field(out, "transfer_slots", m.transfer_slots);
    field(out, "wasted_transfer_slots", m.wasted_transfer_slots);
    field(out, "compute_slots", m.compute_slots);
    field(out, "wasted_compute_slots", m.wasted_compute_slots);
    field(out, "checkpoint_slots", m.checkpoint_slots);
    field(out, "checkpoints_committed", m.checkpoints_committed);
    field(out, "recoveries", m.recoveries);
    field(out, "saved_compute_slots", m.saved_compute_slots);
    field(out, "down_events", m.down_events);
    field(out, "dead_slots_skipped", m.dead_slots_skipped);
    field(out, "slots_elided", m.slots_elided);
    field(out, "proactive_cancellations", m.proactive_cancellations);
    field(out, "cache_hits", m.cache_hits);
    field(out, "cache_misses", m.cache_misses);
    field(out, "cache_invalidations", m.cache_invalidations);
    out += ",\"iteration_ends\":[";
    for (std::size_t i = 0; i < m.iteration_ends.size(); ++i) {
        if (i) out += ',';
        out += std::to_string(m.iteration_ends[i]);
    }
    out += "],\"per_proc\":[";
    for (std::size_t q = 0; q < m.per_proc.size(); ++q) {
        const RunMetrics::PerProc& p = m.per_proc[q];
        if (q) out += ',';
        out += '{';
        field(out, "tasks_completed", p.tasks_completed, /*first=*/true);
        field(out, "compute_slots", p.compute_slots);
        field(out, "transfer_slots", p.transfer_slots);
        field(out, "up_slots", p.up_slots);
        field(out, "down_events", p.down_events);
        out += '}';
    }
    out += "]}";
    return out;
}

} // namespace volsched::sim
