#pragma once
/// \file events.hpp
/// Structured event log for simulation runs.  When an EventLog is attached
/// to the engine (EngineConfig::events), every protocol-level occurrence is
/// recorded: state transitions, transfer starts/completions, computation
/// starts, task completions, work loss, replication decisions, and
/// iteration boundaries.  Useful for debugging schedules, building Gantt
/// views, and post-hoc analysis of heuristic behaviour.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "markov/state.hpp"
#include "sim/platform.hpp"

namespace volsched::sim {

enum class EventKind : std::uint8_t {
    StateChange,      ///< processor changed availability state
    ProgStart,        ///< program transfer began
    ProgComplete,     ///< program fully received
    DataStart,        ///< task data transfer began
    DataComplete,     ///< task data fully received
    ComputeStart,     ///< task promoted to computing
    TaskComplete,     ///< logical task finished (instance completed)
    WorkLost,         ///< committed work wiped (crash or un-enrolment)
    ReplicaCommitted, ///< an extra replica was staged on a worker
    ReplicaCancelled, ///< a live sibling was cancelled after completion
    ProactiveCancel,  ///< the proactive policy un-enrolled a worker
    IterationComplete,///< all m tasks of the iteration finished
    CheckpointStart,  ///< a checkpoint upload began
    CheckpointCommit, ///< a checkpoint snapshot became durable at the master
    CheckpointLost,   ///< an in-flight checkpoint upload was wiped
    Recovery          ///< a task incarnation resumed from a checkpoint
};

/// Short stable identifier used in CSV output.
const char* event_kind_name(EventKind kind) noexcept;

struct Event {
    long long slot = 0;
    EventKind kind = EventKind::StateChange;
    ProcId proc = kNoProc;        ///< subject processor (if any)
    int iteration = -1;           ///< iteration index (if applicable)
    int logical = -1;             ///< logical task id (if applicable)
    bool replica = false;         ///< whether the instance was a replica
    markov::ProcState state = markov::ProcState::Up; ///< for StateChange
};

/// Append-only event container.
class EventLog {
public:
    void append(const Event& event) { events_.push_back(event); }
    void clear() noexcept { events_.clear(); }

    [[nodiscard]] std::span<const Event> events() const noexcept {
        return events_;
    }
    [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

    /// Number of recorded events of one kind.
    [[nodiscard]] std::size_t count(EventKind kind) const noexcept;

    /// Writes "slot,kind,proc,iteration,task,replica,state" rows.
    void write_csv(std::ostream& out) const;

private:
    std::vector<Event> events_;
};

} // namespace volsched::sim
