#pragma once
/// \file action_trace.hpp
/// Exact per-slot action recording: for every (processor, slot) the engine
/// writes what was received (program / task data) and what was computed.
/// The conventions match offline/schedule.hpp (`-2` program, `-1` none,
/// task id otherwise), so a recorded on-line run can be replayed through
/// the off-line validator — an end-to-end certification that the engine
/// respects the execution model (used by the cross-check test suite).
/// Checkpoint uploads (ckpt/policy.hpp) are master-bound and outside the
/// receive/compute model the validator checks, so they are deliberately
/// not recorded here; the timeline's 'K' code shows them instead.

#include <vector>

#include "sim/platform.hpp"

namespace volsched::sim {

struct RecordedAction {
    /// -2: one program slot; >= 0: one data slot of that task; -1: none.
    int recv = -1;
    /// Task id computed this slot, or -1.
    int compute = -1;
};

class ActionTrace {
public:
    void begin(int procs) {
        rows_.assign(static_cast<std::size_t>(procs), {});
    }

    /// Opens the next slot (one empty record per processor).
    void next_slot() {
        for (auto& row : rows_) row.emplace_back();
    }

    void set_recv(ProcId proc, int value) {
        rows_[proc].back().recv = value;
    }
    void set_compute(ProcId proc, int task) {
        rows_[proc].back().compute = task;
    }

    [[nodiscard]] int procs() const noexcept {
        return static_cast<int>(rows_.size());
    }
    [[nodiscard]] long long slots() const noexcept {
        return rows_.empty() ? 0 : static_cast<long long>(rows_[0].size());
    }
    [[nodiscard]] const std::vector<RecordedAction>& row(ProcId proc) const {
        return rows_[proc];
    }

private:
    std::vector<std::vector<RecordedAction>> rows_;
};

} // namespace volsched::sim
