#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "ckpt/policy.hpp"
#include "markov/expectation.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace volsched::sim {
namespace {

using markov::ProcState;

enum class InstKind : std::uint8_t { Original, Replica };
enum class InstStatus : std::uint8_t { Pool, Committed, Done, Cancelled };

/// One copy of one logical task (original or replica).
struct Instance {
    int logical = -1;
    InstKind kind = InstKind::Original;
    InstStatus status = InstStatus::Pool;
    ProcId proc = kNoProc;     ///< worker holding this instance (committed)
    ProcId planned = kNoProc;  ///< sticky-plan target while still in pool
    long long plan_seq = -1;   ///< order in which the plan chose this instance
    int data_remaining = 0;
    bool data_started = false;
    bool data_done = false;
    long long commit_slot = -1;
};

/// Runtime protocol state of the whole fleet, stored as structure-of-arrays:
/// one parallel vector per field, indexed by processor, so the per-slot
/// sweeps (state advancement, scheduler-view builds, compute advancement)
/// read contiguous memory instead of striding over an array-of-structs.
/// The platform's speed vector (`Platform::w`) and the RLE trace cursors
/// are the remaining per-worker parallels, owned by their own containers.
/// `operator[]` bundles one worker's fields as references — call sites keep
/// the old `w.field` spelling while every load/store still hits the
/// per-field array.
struct WorkerSoA {
    std::vector<ProcState> state;
    std::vector<std::uint8_t> has_program;
    std::vector<std::uint8_t> prog_in_flight;
    std::vector<int> prog_remaining;
    std::vector<long long> prog_start;
    std::vector<int> staged;    ///< instance receiving / holding next data
    std::vector<long long> data_start;
    std::vector<int> computing; ///< instance with complete data, computing
    std::vector<int> compute_remaining;
    // Checkpoint upload state (only touched when a policy is attached).
    std::vector<std::uint8_t> ckpt_in_flight; ///< upload in progress
    std::vector<int> ckpt_remaining;  ///< transfer slots left for the upload
    std::vector<long long> ckpt_start; ///< upload start slot (FIFO key)
    std::vector<int> ckpt_progress; ///< q-scale progress the upload captured
    std::vector<int> since_ckpt;    ///< compute slots since the last snapshot
    std::vector<int> compute_credit; ///< q-scale progress at promotion
    std::vector<int> ckpt_committed; ///< q-scale progress of the last
                                     ///< snapshot THIS incarnation committed

    void resize(int p) {
        const auto n = static_cast<std::size_t>(p);
        state.assign(n, ProcState::Up);
        has_program.assign(n, 0);
        prog_in_flight.assign(n, 0);
        prog_remaining.assign(n, 0);
        prog_start.assign(n, -1);
        staged.assign(n, -1);
        data_start.assign(n, -1);
        computing.assign(n, -1);
        compute_remaining.assign(n, 0);
        ckpt_in_flight.assign(n, 0);
        ckpt_remaining.assign(n, 0);
        ckpt_start.assign(n, -1);
        ckpt_progress.assign(n, 0);
        since_ckpt.assign(n, 0);
        compute_credit.assign(n, 0);
        ckpt_committed.assign(n, 0);
    }

    struct Ref {
        ProcState& state;
        std::uint8_t& has_program;
        std::uint8_t& prog_in_flight;
        int& prog_remaining;
        long long& prog_start;
        int& staged;
        long long& data_start;
        int& computing;
        int& compute_remaining;
        std::uint8_t& ckpt_in_flight;
        int& ckpt_remaining;
        long long& ckpt_start;
        int& ckpt_progress;
        int& since_ckpt;
        int& compute_credit;
        int& ckpt_committed;
    };
    struct ConstRef {
        const ProcState& state;
        const std::uint8_t& has_program;
        const std::uint8_t& prog_in_flight;
        const int& prog_remaining;
        const long long& prog_start;
        const int& staged;
        const long long& data_start;
        const int& computing;
        const int& compute_remaining;
        const std::uint8_t& ckpt_in_flight;
        const int& ckpt_remaining;
        const long long& ckpt_start;
        const int& ckpt_progress;
        const int& since_ckpt;
        const int& compute_credit;
        const int& ckpt_committed;
    };

    Ref operator[](int q) noexcept {
        return {state[q],          has_program[q],   prog_in_flight[q],
                prog_remaining[q], prog_start[q],    staged[q],
                data_start[q],     computing[q],     compute_remaining[q],
                ckpt_in_flight[q], ckpt_remaining[q], ckpt_start[q],
                ckpt_progress[q],  since_ckpt[q],    compute_credit[q],
                ckpt_committed[q]};
    }
    ConstRef operator[](int q) const noexcept {
        return {state[q],          has_program[q],   prog_in_flight[q],
                prog_remaining[q], prog_start[q],    staged[q],
                data_start[q],     computing[q],     compute_remaining[q],
                ckpt_in_flight[q], ckpt_remaining[q], ckpt_start[q],
                ckpt_progress[q],  since_ckpt[q],    compute_credit[q],
                ckpt_committed[q]};
    }
};

/// Per-logical-task checkpoint committed at the master: `done` compute
/// slots on the scale of the snapshotting worker's `w`.  A restart on a
/// worker with speed w' is credited floor(done * w' / w) slots.
struct TaskCheckpoint {
    int done = 0;
    int w = 1;
};

/// Transfer descriptor used when ordering the slot's bandwidth allocation.
/// Kind breaks (start, proc) ties when one worker both receives data and
/// uploads a checkpoint committed in the same slot.
enum class TransferKind : std::uint8_t { Prog, Data, Ckpt };
struct ActiveTransfer {
    long long start;
    ProcId proc;
    TransferKind kind;
};

/// What forces the event-driven core to simulate a slot normally.
enum class EventCause : std::uint8_t {
    Horizon,     ///< EngineConfig::max_slots
    StateChange, ///< an availability RLE segment ends
    Transfer,    ///< an advancing program/data/checkpoint transfer drains
    Checkpoint,  ///< a checkpoint policy's quiet horizon expires
    Compute,     ///< a computing worker's task reaches completion
};

/// The event-driven core's frontier of (slot, event) candidates.
/// Conceptually a priority queue ordered by slot; since any simulated slot
/// can invalidate every queued prediction (a crash reshuffles the transfer
/// queue, a heuristic round commits new work), entries are re-derived at
/// each decision point and only the minimum is ever popped — so the queue
/// keeps just the running minimum instead of a heap.
struct EventQueue {
    long long slot;
    EventCause cause;

    explicit EventQueue(long long horizon) noexcept
        : slot(horizon), cause(EventCause::Horizon) {}

    void push(long long s, EventCause c) noexcept {
        if (s < slot) {
            slot = s;
            cause = c;
        }
    }
};

class Runner {
public:
    Runner(const Platform& platform, markov::RealizedTraces& traces,
           const std::vector<markov::MarkovChain>& beliefs,
           const EngineConfig& config, std::uint64_t seed)
        : pf_(platform), config_(config) {
        const int p = pf_.size();
        workers_.resize(p);
        cursors_.reserve(p);
        for (int q = 0; q < p; ++q)
            cursors_.emplace_back(traces.trace(q));
        sched_rng_ = util::Rng(util::mix_seed(seed, 0x53434845ULL));
        beliefs_ = beliefs.empty() ? nullptr : &beliefs;
    }

    RunMetrics run(Scheduler& sched) {
        start_iteration();
        metrics_.per_proc.assign(static_cast<std::size_t>(pf_.size()), {});
        if (config_.timeline) config_.timeline->begin(pf_.size());
        if (config_.actions) config_.actions->begin(pf_.size());
        if (config_.tracer) config_.tracer->begin_run(pf_.size());
        slot_flags_.assign(static_cast<std::size_t>(pf_.size()), 0);
        long long t = 0;
        while (t < config_.max_slots) {
            // A realization that starts with every worker absent: do slot
            // 0's bookkeeping in closed form and skip the whole stretch
            // (both cores; historically the `t > 0` guard below made the
            // engine walk slot 0 of such a stretch).
            if (t == 0 && (config_.event_driven || config_.skip_dead_slots) &&
                try_skip_initial_dead(t))
                continue;
            if (config_.event_driven) {
                // Event-driven core: jump to the next candidate event and
                // advance the provably-inert slots in between
                // arithmetically.  Stretches shorter than kMinJump are not
                // worth a fast_forward's setup (except dead ones, whose
                // skip count must match the slot loop's) — they run through
                // the normal phases below, and known_inert_until_ remembers
                // the horizon so the prediction is not recomputed per slot.
                if (t > 0 && t >= known_inert_until_) {
                    const long long ev = steady_horizon(t);
                    if (ev - t >= kMinJump || (ev > t && up_count_ == 0)) {
                        fast_forward(t, ev);
                        t = ev;
                        continue;
                    }
                    known_inert_until_ = ev;
                }
            } else if (config_.skip_dead_slots && t > 0 && up_count_ == 0) {
                // Dead-stretch fast-forward: with every worker DOWN or
                // RECLAIMED nothing can transfer, compute, or complete, so
                // the slot loop is a no-op until some processor changes
                // state.
                long long change = config_.max_slots;
                for (int q = 0; q < pf_.size(); ++q)
                    change =
                        std::min(change, cursors_[q].next_change_at(t - 1,
                                                                    change));
                if (change > t) {
                    skip_dead_range(t, change);
                    t = change;
                    continue;
                }
            }
            slot_ = t;
            if (config_.actions) config_.actions->next_slot();
            std::fill(slot_flags_.begin(), slot_flags_.end(),
                      static_cast<std::uint8_t>(0));
            advance_states(t);
            int budget = pf_.ncom;
            transfers_this_slot_ = 0;
            advance_in_flight(budget);
            start_pending_data(t, budget);
            start_checkpoints(t, budget);
            plan_and_commit(sched, t, budget);
            advance_compute();
            if (config_.audit) audit_bandwidth();
            record_timeline();
            const bool finished = end_of_slot(t);
            if (config_.audit) audit_invariants();
            if (finished) {
                metrics_.completed = true;
                metrics_.makespan = t + 1;
                metrics_.iterations_completed = config_.iterations;
                if (config_.tracer) config_.tracer->end_run(t + 1);
                return metrics_;
            }
            ++t;
        }
        metrics_.completed = false;
        metrics_.makespan = config_.max_slots;
        metrics_.iterations_completed = iterations_done_;
        if (config_.tracer) config_.tracer->end_run(config_.max_slots);
        return metrics_;
    }

private:
    // ---- iteration bookkeeping ---------------------------------------

    void start_iteration() {
        const int m = config_.tasks_per_iteration;
        logical_done_.assign(m, false);
        logical_live_.assign(m, 1);
        remaining_logical_ = m;
        instances_.clear();
        instances_.reserve(static_cast<std::size_t>(m) * 2);
        for (int i = 0; i < m; ++i) {
            Instance inst;
            inst.logical = i;
            inst.kind = InstKind::Original;
            inst.data_remaining = pf_.t_data;
            instances_.push_back(inst);
        }
        ckpt_store_.assign(static_cast<std::size_t>(m), {});
        plan_counter_ = 0;
    }

    // ---- slot phases --------------------------------------------------

    void advance_states(long long t) {
        up_count_ = 0;
        for (int q = 0; q < pf_.size(); ++q) {
            const ProcState prev = workers_[q].state;
            const ProcState next = cursors_[q].state_at(t);
            workers_[q].state = next;
            if (next == ProcState::Up) {
                ++metrics_.per_proc[q].up_slots;
                ++up_count_;
            }
            if (t == 0 || next != prev)
                emit(EventKind::StateChange, q, -1, false, next);
            if (next == ProcState::Down &&
                (t == 0 || prev != ProcState::Down)) {
                ++metrics_.down_events;
                ++metrics_.per_proc[q].down_events;
                handle_down(q);
            }
        }
    }

    /// Fast-forwards the dead stretch [from, to): every worker is DOWN or
    /// RECLAIMED for the whole range, so the only per-slot obligations are
    /// the recorders (timelines and action traces must stay bit-identical
    /// to an unskipped run).  Audit mode re-verifies the premise slot by
    /// slot before trusting the jump.
    void skip_dead_range(long long from, long long to) {
        if (config_.audit) {
            for (int q = 0; q < pf_.size(); ++q) {
                const auto w = workers_[q];
                if (w.state == ProcState::Up)
                    throw std::logic_error(
                        "audit: dead-slot skip with an UP worker");
                if (w.computing != -1 && w.compute_remaining == 0)
                    throw std::logic_error(
                        "audit: dead-slot skip with a pending completion");
                if (w.computing == -1 && w.staged != -1 &&
                    instances_[w.staged].data_done)
                    throw std::logic_error(
                        "audit: dead-slot skip with a pending promotion");
                if (w.ckpt_in_flight && w.ckpt_remaining == 0)
                    throw std::logic_error(
                        "audit: dead-slot skip with a pending checkpoint "
                        "commit");
                for (long long s = from; s < to; ++s)
                    if (cursors_[q].state_at(s) != w.state)
                        throw std::logic_error(
                            "audit: dead-slot skip crossed a state change");
            }
        }
        if (config_.timeline) {
            for (int q = 0; q < pf_.size(); ++q) {
                const char code =
                    workers_[q].state == ProcState::Down ? 'd' : 'r';
                for (long long s = from; s < to; ++s)
                    config_.timeline->record(q, code);
            }
        }
        if (config_.actions)
            for (long long s = from; s < to; ++s) config_.actions->next_slot();
        if (config_.tracer) config_.tracer->elided(from, to, true);
        metrics_.dead_slots_skipped += to - from;
    }

    /// Slot-0 companion to the dead-stretch fast-forward: when the
    /// realization starts with every worker DOWN or RECLAIMED, slot 0's
    /// only observable work is the initial StateChange emission and the
    /// DOWN accounting (nothing is committed yet, so handle_down has
    /// nothing to release).  Perform exactly that bookkeeping, then skip
    /// the stretch like any other dead range.  Returns false when some
    /// worker starts UP (the normal loop then runs slot 0).
    bool try_skip_initial_dead(long long& t) {
        for (int q = 0; q < pf_.size(); ++q)
            if (cursors_[q].state_at(0) == ProcState::Up) return false;
        long long change = config_.max_slots;
        for (int q = 0; q < pf_.size(); ++q)
            change = std::min(change, cursors_[q].next_change_at(0, change));
        slot_ = 0;
        up_count_ = 0;
        for (int q = 0; q < pf_.size(); ++q) {
            const ProcState st = cursors_[q].state_at(0);
            workers_[q].state = st;
            emit(EventKind::StateChange, q, -1, false, st);
            if (st == ProcState::Down) {
                ++metrics_.down_events;
                ++metrics_.per_proc[q].down_events;
                handle_down(q);
            }
        }
        skip_dead_range(0, change);
        if (config_.event_driven) metrics_.slots_elided += change;
        t = change;
        return true;
    }

    // ---- event-driven core ---------------------------------------------

    /// Returns the first slot >= t that must be simulated normally.  Every
    /// slot in [t, result) is provably inert: worker states are constant
    /// (the RLE cursors bound the next availability transition), the same
    /// transfers advance without draining, no data transfer can start, no
    /// checkpoint policy fires, no computation completes, and the
    /// plan/commit phase would not act (a heuristic round may consume RNG,
    /// so any slot that reaches one is simulated).  Conservative by
    /// construction — any doubt returns t.  On a result the run loop will
    /// jump (>= t + kMinJump, or > t with no worker present), `active_`
    /// holds the stretch's transfer allocation for fast_forward().
    long long steady_horizon(long long t) {
        // Bandwidth allocation for the stretch: a cheap unsorted count
        // first — the advancing set only matters once the slot is known to
        // be inert, and the leftover budget feeds the act-now checks.
        // min_rem over ALL active transfers lower-bounds the remainder of
        // any advancing subset, so it bounds the first possible drain
        // without knowing the FIFO order.
        int in_flight = 0;
        int min_rem = std::numeric_limits<int>::max();
        for (int q = 0; q < pf_.size(); ++q) {
            const auto w = workers_[q];
            if (w.state != ProcState::Up) continue;
            if (w.prog_in_flight && w.prog_remaining > 0) {
                ++in_flight;
                min_rem = std::min(min_rem, w.prog_remaining);
            }
            if (w.staged != -1) {
                const Instance& inst = instances_[w.staged];
                if (inst.data_started && inst.data_remaining > 0) {
                    ++in_flight;
                    min_rem = std::min(min_rem, inst.data_remaining);
                }
            }
            if (w.ckpt_in_flight && w.ckpt_remaining > 0) {
                ++in_flight;
                min_rem = std::min(min_rem, w.ckpt_remaining);
            }
        }
        const int advancing = std::min(pf_.ncom, in_flight);
        const int budget = pf_.ncom - advancing;

        // Scheduler decision point this slot?  Checked first: in dense
        // phases this is the common exit, and it needs no sorting.
        if (plan_would_act(budget)) return t;

        // A deferred data start (phase 2b) acts as soon as bandwidth is
        // free — or instantly when data is free.
        if (budget > 0 || pf_.t_data == 0) {
            for (int q = 0; q < pf_.size(); ++q) {
                const auto w = workers_[q];
                if (w.state != ProcState::Up || !w.has_program ||
                    w.staged == -1)
                    continue;
                const Instance& inst = instances_[w.staged];
                if (!inst.data_started && !inst.data_done) return t;
            }
        }

        EventQueue next(config_.max_slots);

        // Availability transitions: worker states at t must equal the
        // states held since slot t-1, and the stretch ends where the first
        // RLE segment does.
        for (int q = 0; q < pf_.size(); ++q) {
            const long long change =
                cursors_[q].next_change_at(t - 1, next.slot);
            if (change <= t) return t;
            next.push(change, EventCause::StateChange);
        }

        // Transfer completions: each advancing transfer drains to zero —
        // and must be simulated — in slot t + remaining - 1.  min_rem is a
        // lower bound over any advancing subset, so the pushed slot is at
        // or before the true first drain (a conservative, still-inert cap).
        if (advancing > 0) {
            if (min_rem <= 1) return t;
            next.push(t + min_rem - 1, EventCause::Transfer);
        }

        // Checkpoint decisions (phase 2b'): with no bandwidth and a
        // nonzero cost the phase returns before any side effect; otherwise
        // every eligible worker is consulted every slot, so ask the policy
        // how long it is guaranteed to stay quiet under arithmetic
        // advancement.
        if (config_.checkpoint &&
            (config_.checkpoint_cost == 0 || budget > 0)) {
            for (int q = 0; q < pf_.size(); ++q) {
                const auto w = workers_[q];
                if (w.state != ProcState::Up || w.computing == -1 ||
                    w.ckpt_in_flight)
                    continue;
                // A worker with since_ckpt == 0 is first consulted one
                // slot later (after one slot of the stretch has computed).
                const int lead = w.since_ckpt > 0 ? 0 : 1;
                ckpt::CheckpointView view;
                view.belief = beliefs_ ? &(*beliefs_)[q] : nullptr;
                view.cost = config_.checkpoint_cost;
                view.w = pf_.w[q];
                view.computed = w.since_ckpt + lead;
                view.remaining = w.compute_remaining - lead;
                view.slot = t + lead;
                if (view.remaining <= 0) continue; // completion comes first
                const long long quiet =
                    config_.checkpoint->quiet_horizon(view);
                // quiet may be kQuietForever: compare without adding lead.
                if (quiet <= -static_cast<long long>(lead)) return t;
                if (quiet < config_.max_slots - t - lead)
                    next.push(t + lead + quiet, EventCause::Checkpoint);
            }
        }

        // Compute completions: an advancing computation drains to zero —
        // and completes — in slot t + remaining - 1.
        for (int q = 0; q < pf_.size(); ++q) {
            const auto w = workers_[q];
            if (w.state != ProcState::Up || w.computing == -1 ||
                w.ckpt_in_flight)
                continue;
            if (w.compute_remaining <= 1) return t;
            next.push(t + w.compute_remaining - 1, EventCause::Compute);
        }

        // Only a stretch the run loop will actually fast_forward needs the
        // sorted transfer allocation; the no-jump path skips the sort.
        if (next.slot - t >= kMinJump || up_count_ == 0) build_active();
        return next.slot;
    }

    /// Mirrors plan_and_commit's control flow without side effects: true
    /// when the phase would mutate state, consult the scheduler, or consume
    /// heuristic RNG this slot, given `budget` bandwidth units left over
    /// from the earlier phases.  Every input read here is constant across a
    /// steady stretch, so a false answer holds for the whole stretch.
    [[nodiscard]] bool plan_would_act(int budget) {
        if (proactive_would_act()) return true;
        if (budget == 0 && pf_.t_data > 0) return false;
        // With no worker present nothing plans, commits, or replicates
        // (may_replicate needs up_count_ > remaining_logical_ >= 0 and the
        // commit sweep needs an UP target), so the phase is inert.
        if (up_count_ == 0) return false;
        const bool may_replicate =
            config_.replica_cap > 0 && up_count_ > remaining_logical_;
        // A heuristic round runs: begin_round plus RNG-consuming selects.
        if (may_replicate) return true;
        if (config_.plan_class != SchedulerClass::Passive) {
            // Non-passive classes re-plan every round: any pool instance
            // means a round runs.  Early exit — this is the dense-phase
            // common path and instances_ can be long.
            for (const auto& inst : instances_)
                if (inst.status == InstStatus::Pool) return true;
            return false;
        }
        bool any_pool = false;
        bool any_unplanned = false;
        for (const auto& inst : instances_) {
            if (inst.status != InstStatus::Pool) continue;
            any_pool = true;
            if (inst.planned == kNoProc) any_unplanned = true;
        }
        if (!any_pool) return false;
        if (any_unplanned) return true;
        // Passive with every pool instance planned: only the commit sweep
        // remains.  It acts exactly when some planned target is UP with a
        // free buffer and the bandwidth/zero-cost rules let a transfer (or
        // a stage-behind-program) start.
        if (budget == 0 && pf_.t_data > 0 && pf_.t_prog > 0) return false;
        for (const auto& inst : instances_) {
            if (inst.status != InstStatus::Pool || inst.planned == kNoProc)
                continue;
            const auto w = workers_[inst.planned];
            if (w.state != ProcState::Up || w.staged != -1) continue;
            if (w.has_program) {
                if (pf_.t_data == 0 || budget > 0) return true;
            } else if (w.prog_in_flight) {
                return true; // stages behind the in-flight program, free
            } else if (pf_.t_prog == 0) {
                // Enrolment is free; the earlier guards ensure the data
                // path can start too (budget > 0 or t_data == 0).
                return true;
            } else if (budget > 0) {
                return true;
            }
        }
        return false;
    }

    /// True when proactive_reassess would un-enrol a worker this slot — or
    /// when its decision inputs could drift across an otherwise-steady
    /// stretch (an idle UP worker's in-flight program download drains,
    /// shrinking the best idle alternative slot by slot).
    [[nodiscard]] bool proactive_would_act() const {
        if (config_.plan_class != SchedulerClass::Proactive || !beliefs_)
            return false;
        double best_alt = std::numeric_limits<double>::infinity();
        bool drifting = false;
        for (int q = 0; q < pf_.size(); ++q) {
            const auto w = workers_[q];
            if (w.state != ProcState::Up || w.staged != -1 ||
                w.computing != -1)
                continue;
            if (!w.has_program && w.prog_in_flight) drifting = true;
            const double need =
                (w.has_program
                     ? 0.0
                     : static_cast<double>(w.prog_in_flight ? w.prog_remaining
                                                            : pf_.t_prog)) +
                pf_.t_data + pf_.w[q];
            best_alt = std::min(
                best_alt, markov::e_workload((*beliefs_)[q].matrix(), need));
        }
        if (std::isinf(best_alt)) return false;
        for (int q = 0; q < pf_.size(); ++q) {
            const auto w = workers_[q];
            if (w.state != ProcState::Reclaimed) continue;
            if (w.staged == -1 && w.computing == -1) continue;
            if (drifting) return true; // conservatively simulate the slot
            const auto& m = (*beliefs_)[q].matrix();
            const double p_rr = m.p_rr();
            if (p_rr >= 1.0) continue;
            const double expected_return = 1.0 / (1.0 - p_rr);
            int remaining = 0;
            if (w.computing != -1) remaining += w.compute_remaining;
            if (w.staged != -1)
                remaining += instances_[w.staged].data_remaining + pf_.w[q];
            if (best_alt < expected_return + markov::e_workload(m, remaining))
                return true;
        }
        return false;
    }

    /// Advances the steady stretch [from, to) arithmetically: states are
    /// frozen, the first min(ncom, |active_|) transfers and every
    /// unobstructed computation drain one unit per slot, and the recorders
    /// receive the identical per-slot output the slot loop would have
    /// produced.  Preconditions: steady_horizon(from) >= to, and `active_`
    /// is the list it built.
    void fast_forward(long long from, long long to) {
        const long long n = to - from;
        if (config_.audit) audit_steady_range(from, to);
        const int advancing =
            std::min(pf_.ncom, static_cast<int>(active_.size()));
        ff_recv_.assign(static_cast<std::size_t>(pf_.size()), kNoAction);
        ff_compute_.assign(static_cast<std::size_t>(pf_.size()), kNoAction);
        std::fill(slot_flags_.begin(), slot_flags_.end(),
                  static_cast<std::uint8_t>(0));
        for (int i = 0; i < advancing; ++i) {
            const ActiveTransfer& tr = active_[i];
            auto w = workers_[tr.proc];
            if (tr.kind == TransferKind::Prog) {
                w.prog_remaining -= static_cast<int>(n);
                slot_flags_[tr.proc] |= kFlagProg;
                ff_recv_[tr.proc] = -2;
            } else if (tr.kind == TransferKind::Data) {
                instances_[w.staged].data_remaining -= static_cast<int>(n);
                slot_flags_[tr.proc] |= kFlagData;
                ff_recv_[tr.proc] = instances_[w.staged].logical;
            } else {
                w.ckpt_remaining -= static_cast<int>(n);
                slot_flags_[tr.proc] |= kFlagCkpt;
                metrics_.checkpoint_slots += n;
                continue;
            }
            metrics_.per_proc[tr.proc].transfer_slots += n;
            metrics_.transfer_slots += n;
        }
        for (int q = 0; q < pf_.size(); ++q) {
            auto w = workers_[q];
            if (w.state != ProcState::Up) continue;
            metrics_.per_proc[q].up_slots += n;
            if (w.computing == -1 || w.ckpt_in_flight) continue;
            w.compute_remaining -= static_cast<int>(n);
            w.since_ckpt += static_cast<int>(n);
            metrics_.compute_slots += n;
            metrics_.per_proc[q].compute_slots += n;
            slot_flags_[q] |= kFlagCompute;
            ff_compute_[q] = instances_[w.computing].logical;
        }
        metrics_.slots_elided += n;
        if (up_count_ == 0) metrics_.dead_slots_skipped += n;
        if (config_.tracer) config_.tracer->elided(from, to, up_count_ == 0);
        if (config_.timeline) {
            for (int q = 0; q < pf_.size(); ++q) {
                char code = '.';
                const ProcState st = workers_[q].state;
                if (st == ProcState::Down) code = 'd';
                else if (st == ProcState::Reclaimed) code = 'r';
                else {
                    const std::uint8_t f = slot_flags_[q];
                    const bool compute = f & kFlagCompute;
                    const bool data = f & kFlagData;
                    const bool prog = f & kFlagProg;
                    const bool ckpt = f & kFlagCkpt;
                    if (compute && data) code = 'B';
                    else if (compute) code = 'C';
                    else if (ckpt) code = 'K';
                    else if (data) code = 'D';
                    else if (prog) code = 'P';
                }
                for (long long s = from; s < to; ++s)
                    config_.timeline->record(q, code);
            }
        }
        if (config_.actions) {
            for (long long s = from; s < to; ++s) {
                config_.actions->next_slot();
                for (int q = 0; q < pf_.size(); ++q) {
                    if (ff_recv_[q] != kNoAction)
                        config_.actions->set_recv(q, ff_recv_[q]);
                    if (ff_compute_[q] != kNoAction)
                        config_.actions->set_compute(q, ff_compute_[q]);
                }
            }
        }
    }

    /// Audit-mode re-verification of an elided range: replays the stretch's
    /// premises slot by slot against the realized trace, the drain
    /// arithmetic, and the checkpoint policy's actual should_checkpoint.
    void audit_steady_range(long long from, long long to) {
        const long long n = to - from;
        for (int q = 0; q < pf_.size(); ++q) {
            const auto w = workers_[q];
            for (long long s = from; s < to; ++s)
                if (cursors_[q].state_at(s) != w.state)
                    throw std::logic_error(
                        "audit: event elision crossed a state change");
        }
        const int advancing =
            std::min(pf_.ncom, static_cast<int>(active_.size()));
        for (int i = 0; i < advancing; ++i) {
            const ActiveTransfer& tr = active_[i];
            const auto w = workers_[tr.proc];
            const int rem = tr.kind == TransferKind::Prog ? w.prog_remaining
                            : tr.kind == TransferKind::Data
                                ? instances_[w.staged].data_remaining
                                : w.ckpt_remaining;
            if (rem <= n)
                throw std::logic_error(
                    "audit: event elision crossed a transfer completion");
        }
        const int budget = pf_.ncom - advancing;
        const bool consults = config_.checkpoint &&
                              (config_.checkpoint_cost == 0 || budget > 0);
        for (int q = 0; q < pf_.size(); ++q) {
            const auto w = workers_[q];
            if (w.state != ProcState::Up || w.computing == -1 ||
                w.ckpt_in_flight)
                continue;
            if (w.compute_remaining <= n)
                throw std::logic_error(
                    "audit: event elision crossed a compute completion");
            if (!consults) continue;
            for (long long k = 0; k < n; ++k) {
                const int computed = w.since_ckpt + static_cast<int>(k);
                const int remaining =
                    w.compute_remaining - static_cast<int>(k);
                if (computed <= 0 || remaining <= 0) continue;
                ckpt::CheckpointView view;
                view.belief = beliefs_ ? &(*beliefs_)[q] : nullptr;
                view.cost = config_.checkpoint_cost;
                view.w = pf_.w[q];
                view.computed = computed;
                view.remaining = remaining;
                view.slot = from + k;
                if (config_.checkpoint->should_checkpoint(view))
                    throw std::logic_error(
                        "audit: event elision crossed a checkpoint "
                        "decision");
            }
        }
    }

    /// DOWN semantics (Section 3.2): lose the program, staged data, and
    /// partial computation.  Original instances go back to the pool (to be
    /// resent from scratch); replicas are simply cancelled.
    void handle_down(ProcId q) {
        auto w = workers_[q];
        if (w.prog_in_flight) {
            metrics_.wasted_transfer_slots += pf_.t_prog - w.prog_remaining;
            w.prog_in_flight = false;
            w.prog_remaining = 0;
            w.prog_start = -1;
        } else if (w.has_program) {
            // A resident program lost to a crash must be resent in full.
            metrics_.wasted_transfer_slots += pf_.t_prog;
        }
        w.has_program = false;
        if (w.staged != -1) {
            emit(EventKind::WorkLost, q, instances_[w.staged].logical,
                 instances_[w.staged].kind == InstKind::Replica);
            release_instance(w.staged, /*to_pool=*/true);
        }
        if (w.computing != -1) {
            emit(EventKind::WorkLost, q, instances_[w.computing].logical,
                 instances_[w.computing].kind == InstKind::Replica);
            release_instance(w.computing, /*to_pool=*/true);
        }
        // Sticky plans targeting a crashed processor are invalidated.
        if (config_.plan_class == SchedulerClass::Passive) {
            for (auto& inst : instances_)
                if (inst.status == InstStatus::Pool && inst.planned == q)
                    inst.planned = kNoProc;
        }
    }

    /// Detaches a committed instance from its worker, accounting for the
    /// wasted work.  Originals return to the pool when `to_pool`; replicas
    /// are always cancelled (the pool only ever holds originals).
    void release_instance(int id, bool to_pool) {
        Instance& inst = instances_[id];
        const ProcId q = inst.proc;
        auto w = workers_[q];
        if (inst.data_started)
            metrics_.wasted_transfer_slots += pf_.t_data - inst.data_remaining;
        if (w.computing == id) {
            if (w.ckpt_in_flight) {
                // The upload's subject is gone; the spent bandwidth is lost.
                metrics_.wasted_transfer_slots +=
                    config_.checkpoint_cost - w.ckpt_remaining;
                w.ckpt_in_flight = false;
                w.ckpt_remaining = 0;
                w.ckpt_start = -1;
                w.ckpt_progress = 0;
                emit(EventKind::CheckpointLost, q, inst.logical,
                     inst.kind == InstKind::Replica);
            }
            // Lost progress: only the work THIS incarnation computed counts
            // (its initial credit was computed by an earlier incarnation),
            // and only the part it committed to the master survives.  A
            // cancelled sibling of a completed task preserves nothing — its
            // snapshots have no future incarnation to serve.
            const int progress = pf_.w[q] - w.compute_remaining;
            const int own = progress - w.compute_credit;
            const int preserved =
                to_pool ? std::clamp(w.ckpt_committed - w.compute_credit, 0,
                                     own)
                        : 0;
            metrics_.wasted_compute_slots += own - preserved;
            w.computing = -1;
            w.compute_remaining = 0;
            w.since_ckpt = 0;
            w.compute_credit = 0;
            w.ckpt_committed = 0;
        }
        if (w.staged == id) {
            w.staged = -1;
            w.data_start = -1;
        }
        inst.proc = kNoProc;
        inst.planned = kNoProc;
        inst.plan_seq = -1;
        inst.commit_slot = -1;
        inst.data_started = false;
        inst.data_done = false;
        inst.data_remaining = pf_.t_data;
        if (to_pool && inst.kind == InstKind::Original) {
            inst.status = InstStatus::Pool;
        } else {
            inst.status = InstStatus::Cancelled;
            --logical_live_[inst.logical];
        }
    }

    /// Phase 2a: advance in-flight transfers to/from UP workers, FIFO by
    /// start.  Checkpoint uploads ride the same queue as program and data
    /// downloads: every slot-unit of bandwidth comes out of the one `ncom`
    /// budget regardless of direction.
    /// Rebuilds `active_`: the slot's in-flight transfers to/from UP
    /// workers in bandwidth-allocation order (FIFO by start, then proc,
    /// then kind).  The first min(ncom, size) entries are the ones that
    /// advance this slot — and, since the order is a pure function of state
    /// that only simulated slots change, every slot of a steady stretch.
    void build_active() {
        active_.clear();
        for (int q = 0; q < pf_.size(); ++q) {
            const auto w = workers_[q];
            if (w.state != ProcState::Up) continue;
            if (w.prog_in_flight && w.prog_remaining > 0)
                active_.push_back({w.prog_start, q, TransferKind::Prog});
            if (w.staged != -1) {
                const Instance& inst = instances_[w.staged];
                if (inst.data_started && inst.data_remaining > 0)
                    active_.push_back({w.data_start, q, TransferKind::Data});
            }
            if (w.ckpt_in_flight && w.ckpt_remaining > 0)
                active_.push_back({w.ckpt_start, q, TransferKind::Ckpt});
        }
        std::sort(active_.begin(), active_.end(),
                  [](const ActiveTransfer& a, const ActiveTransfer& b) {
                      if (a.start != b.start) return a.start < b.start;
                      if (a.proc != b.proc) return a.proc < b.proc;
                      return a.kind < b.kind;
                  });
    }

    void advance_in_flight(int& budget) {
        build_active();
        for (const auto& tr : active_) {
            if (budget == 0) break;
            auto w = workers_[tr.proc];
            if (tr.kind == TransferKind::Prog) {
                --w.prog_remaining;
                slot_flags_[tr.proc] |= kFlagProg;
                record_recv(tr.proc, -2);
            } else if (tr.kind == TransferKind::Data) {
                --instances_[w.staged].data_remaining;
                slot_flags_[tr.proc] |= kFlagData;
                record_recv(tr.proc, instances_[w.staged].logical);
            } else {
                // Checkpoint upload: master-bound, so it is not a received
                // action (the action trace records the receive/compute
                // model the off-line validator checks) and not counted in
                // transfer_slots (program + data); it has its own counter.
                --w.ckpt_remaining;
                slot_flags_[tr.proc] |= kFlagCkpt;
                ++metrics_.checkpoint_slots;
                ++transfers_this_slot_;
                --budget;
                continue;
            }
            ++metrics_.per_proc[tr.proc].transfer_slots;
            ++metrics_.transfer_slots;
            ++transfers_this_slot_;
            --budget;
        }
    }

    /// Phase 2b': start checkpoint uploads the policy requests — after
    /// committed data transfers (work in hand beats insurance) but before
    /// the fresh assignment round (insurance beats speculation).  Pure
    /// per-worker decisions in processor order; no RNG is consumed, so a
    /// policy that never fires (`none`) leaves the run bit-identical.
    void start_checkpoints(long long t, int& budget) {
        if (!config_.checkpoint) return;
        for (int q = 0; q < pf_.size(); ++q) {
            auto w = workers_[q];
            if (w.state != ProcState::Up || w.computing == -1 ||
                w.ckpt_in_flight)
                continue;
            if (w.since_ckpt <= 0 || w.compute_remaining <= 0) continue;
            ckpt::CheckpointView view;
            view.belief = beliefs_ ? &(*beliefs_)[q] : nullptr;
            view.cost = config_.checkpoint_cost;
            view.w = pf_.w[q];
            view.computed = w.since_ckpt;
            view.remaining = w.compute_remaining;
            view.slot = t;
            if (!config_.checkpoint->should_checkpoint(view)) continue;
            const int progress = pf_.w[q] - w.compute_remaining;
            const int logical = instances_[w.computing].logical;
            const bool replica =
                instances_[w.computing].kind == InstKind::Replica;
            if (config_.checkpoint_cost == 0) { // zero-cost: instant commit
                emit(EventKind::CheckpointStart, q, logical, replica);
                commit_checkpoint(q, logical, progress);
                w.since_ckpt = 0;
                continue;
            }
            if (budget == 0) return; // no bandwidth: every later start waits
            w.ckpt_in_flight = true;
            w.ckpt_remaining = config_.checkpoint_cost - 1; // one slot now
            w.ckpt_start = t;
            w.ckpt_progress = progress;
            w.since_ckpt = 0;
            ++metrics_.checkpoint_slots;
            ++transfers_this_slot_;
            --budget;
            slot_flags_[q] |= kFlagCkpt;
            emit(EventKind::CheckpointStart, q, logical, replica);
        }
    }

    /// Records `progress` slots (on worker q's scale) as the logical task's
    /// committed checkpoint when it beats the stored fraction.
    void commit_checkpoint(ProcId q, int logical, int progress) {
        if (progress > 0) {
            workers_[q].ckpt_committed = progress;
            TaskCheckpoint& c = ckpt_store_[static_cast<std::size_t>(logical)];
            // Fraction comparison progress/w_q >= done/w, cross-multiplied.
            if (static_cast<long long>(progress) * c.w >=
                static_cast<long long>(c.done) * pf_.w[q]) {
                c.done = progress;
                c.w = pf_.w[q];
            }
        }
        ++metrics_.checkpoints_committed;
        emit(EventKind::CheckpointCommit, q, logical);
    }

    /// Restart credit for `logical` on a worker of speed `wq`: the stored
    /// fraction translated to that worker's scale.  Always < wq, because a
    /// snapshot is only taken while compute remains (done < w).
    [[nodiscard]] int ckpt_credit(int logical, int wq) const {
        const TaskCheckpoint& c =
            ckpt_store_[static_cast<std::size_t>(logical)];
        if (c.done <= 0) return 0;
        return static_cast<int>(static_cast<long long>(c.done) * wq / c.w);
    }

    /// Phase 2b: start data transfers for committed instances that were
    /// waiting behind their worker's program download (FIFO by commit time).
    void start_pending_data(long long t, int& budget) {
        pending_.clear();
        for (int q = 0; q < pf_.size(); ++q) {
            const auto w = workers_[q];
            if (w.state != ProcState::Up || !w.has_program || w.staged == -1)
                continue;
            const Instance& inst = instances_[w.staged];
            if (!inst.data_started && !inst.data_done)
                pending_.push_back(q);
        }
        std::sort(pending_.begin(), pending_.end(),
                  [this](ProcId a, ProcId b) {
                      const auto& ia = instances_[workers_[a].staged];
                      const auto& ib = instances_[workers_[b].staged];
                      return ia.commit_slot != ib.commit_slot
                                 ? ia.commit_slot < ib.commit_slot
                                 : a < b;
                  });
        for (ProcId q : pending_) {
            auto w = workers_[q];
            Instance& inst = instances_[w.staged];
            if (pf_.t_data == 0) { // zero-cost data: completes instantly
                inst.data_started = true;
                inst.data_done = true;
                emit(EventKind::DataStart, q, inst.logical,
                     inst.kind == InstKind::Replica);
                continue;
            }
            if (budget == 0) break;
            inst.data_started = true;
            w.data_start = t;
            --inst.data_remaining;
            ++metrics_.per_proc[q].transfer_slots;
            ++metrics_.transfer_slots;
            ++transfers_this_slot_;
            --budget;
            slot_flags_[q] |= kFlagData;
            record_recv(q, inst.logical);
            emit(EventKind::DataStart, q, inst.logical,
                 inst.kind == InstKind::Replica);
        }
    }

    /// Phase 2c: a heuristic round (Section 6): assign pool originals one by
    /// one, then replica candidates, then commit transfers in plan order
    /// while bandwidth lasts.
    void plan_and_commit(Scheduler& sched, long long t, int& budget) {
        proactive_reassess();
        if (budget == 0 && pf_.t_data > 0) return;

        // Pool originals needing a (re-)plan.
        pool_.clear();
        for (int id = 0; id < static_cast<int>(instances_.size()); ++id) {
            Instance& inst = instances_[id];
            if (inst.status != InstStatus::Pool) continue;
            if (config_.plan_class != SchedulerClass::Passive)
                inst.planned = kNoProc;
            pool_.push_back(id);
        }

        int up_count = 0;
        for (const ProcState s : workers_.state)
            if (s == ProcState::Up) ++up_count;

        const bool may_replicate =
            config_.replica_cap > 0 && up_count > remaining_logical_;
        const bool must_plan =
            std::any_of(pool_.begin(), pool_.end(),
                        [this](int id) {
                            return instances_[id].planned == kNoProc;
                        }) ||
            may_replicate;
        if (pool_.empty() && !may_replicate) return;
        if (up_count == 0) return;

        // Build the heuristic's snapshot: one sweep over the SoA columns
        // the scoring loops read (state, staged, speed), contiguous per
        // field.
        views_.resize(static_cast<std::size_t>(pf_.size()));
        for (int q = 0; q < pf_.size(); ++q) {
            ProcView& v = views_[q];
            v.state = workers_.state[q];
            v.has_program = workers_.has_program[q] != 0;
            v.buffer_free = (workers_.staged[q] == -1);
            v.w = pf_.w[q];
            v.delay = delay_of(q);
            v.belief = beliefs_ ? &(*beliefs_)[q] : nullptr;
        }
        SchedView view;
        view.platform = &pf_;
        view.procs = views_;
        view.slot = t;
        view.nactive = 0;
        view.remaining_tasks = static_cast<int>(pool_.size());

        nq_.assign(static_cast<std::size_t>(pf_.size()), 0);
        plan_order_.clear();
        replica_plan_.clear();

        if (must_plan) {
            if (config_.tracer)
                config_.tracer->instant_engine(t, "sched round");
            sched.begin_round(view);

            eligible_.clear();
            for (int q = 0; q < pf_.size(); ++q)
                if (workers_[q].state == ProcState::Up) eligible_.push_back(q);

            // 1. Original tasks, in logical order, one by one.  A processor
            // already holding a live sibling of the task is excluded
            // (running two copies of a task on one host is pure waste).
            for (int id : pool_) {
                Instance& inst = instances_[id];
                if (inst.planned != kNoProc) continue; // sticky, already set
                scratch_.clear();
                for (ProcId q : eligible_)
                    if (!holds_logical(q, inst.logical))
                        scratch_.push_back(q);
                if (scratch_.empty()) continue;
                const ProcId q =
                    sched.select(view, scratch_, nq_, sched_rng_);
                inst.planned = q;
                inst.plan_seq = plan_counter_++;
                if (nq_[q]++ == 0) ++view.nactive;
            }

            // 2. Replica candidates (Section 6.1): only when UP processors
            // outnumber remaining tasks; at most `replica_cap` extras per
            // logical task; restricted to buffer-free processors so that a
            // committed replica starts transferring immediately.
            if (may_replicate) {
                planned_logical_.assign(
                    static_cast<std::size_t>(pf_.size()), -1);
                for (int lt = 0; lt < config_.tasks_per_iteration; ++lt) {
                    if (logical_done_[lt]) continue;
                    int live = logical_live_[lt];
                    while (live < 1 + config_.replica_cap) {
                        scratch_.clear();
                        for (ProcId q : eligible_) {
                            if (!views_[q].buffer_free) continue;
                            if (holds_logical(q, lt)) continue;
                            if (planned_logical_[q] == lt) continue;
                            if (plans_logical(q, lt)) continue;
                            scratch_.push_back(q);
                        }
                        if (scratch_.empty()) break;
                        const ProcId q =
                            sched.select(view, scratch_, nq_, sched_rng_);
                        replica_plan_.push_back({lt, q});
                        planned_logical_[q] = lt;
                        if (nq_[q]++ == 0) ++view.nactive;
                        ++live;
                    }
                }
            }
        }

        // 3. Commit transfers in plan order: originals first (by plan_seq),
        // then replicas in planning order.
        commit_order_.clear();
        for (int id : pool_)
            if (instances_[id].planned != kNoProc) commit_order_.push_back(id);
        std::sort(commit_order_.begin(), commit_order_.end(),
                  [this](int a, int b) {
                      return instances_[a].plan_seq < instances_[b].plan_seq;
                  });
        for (int id : commit_order_) {
            if (budget == 0 && pf_.t_data > 0 && pf_.t_prog > 0) break;
            try_commit(id, instances_[id].planned, t, budget);
        }
        for (const auto& [lt, q] : replica_plan_) {
            if (budget == 0 && pf_.t_data > 0 && pf_.t_prog > 0) break;
            if (logical_done_[lt]) continue;
            if (workers_[q].staged != -1) continue;
            if (logical_live_[lt] >= 1 + config_.replica_cap) continue;
            // Materialize the replica instance only on successful commit.
            Instance inst;
            inst.logical = lt;
            inst.kind = InstKind::Replica;
            inst.data_remaining = pf_.t_data;
            inst.planned = q;
            instances_.push_back(inst);
            const int id = static_cast<int>(instances_.size()) - 1;
            ++logical_live_[lt];
            if (try_commit(id, q, t, budget)) {
                ++metrics_.replicas_committed;
                emit(EventKind::ReplicaCommitted, q, lt, true);
            } else {
                instances_.pop_back();
                --logical_live_[lt];
            }
        }
    }

    /// SchedulerClass::Proactive: un-enrol a suspended worker when an idle
    /// UP worker is expected (under the belief chains) to redo its whole
    /// committed pipeline faster than the suspended worker can finish it.
    /// Un-enrolment discards staged data and partial results (Section 3.3);
    /// the program is kept (only DOWN loses it).
    void proactive_reassess() {
        if (config_.plan_class != SchedulerClass::Proactive || !beliefs_)
            return;
        // Best idle-alternative expected pipeline: program (if missing) +
        // data + compute, inflated by expected RECLAIMED detours.
        double best_alt = std::numeric_limits<double>::infinity();
        for (int q = 0; q < pf_.size(); ++q) {
            const auto w = workers_[q];
            if (w.state != ProcState::Up || w.staged != -1 ||
                w.computing != -1)
                continue;
            const double need =
                (w.has_program
                     ? 0.0
                     : static_cast<double>(w.prog_in_flight ? w.prog_remaining
                                                            : pf_.t_prog)) +
                pf_.t_data + pf_.w[q];
            best_alt = std::min(
                best_alt,
                markov::e_workload((*beliefs_)[q].matrix(), need));
        }
        if (std::isinf(best_alt)) return;

        for (int q = 0; q < pf_.size(); ++q) {
            auto w = workers_[q];
            if (w.state != ProcState::Reclaimed) continue;
            if (w.staged == -1 && w.computing == -1) continue;
            const auto& m = (*beliefs_)[q].matrix();
            const double p_rr = m.p_rr();
            if (p_rr >= 1.0) continue; // handled below as infinite wait
            const double expected_return = 1.0 / (1.0 - p_rr);
            int remaining = 0;
            if (w.computing != -1) remaining += w.compute_remaining;
            if (w.staged != -1)
                remaining +=
                    instances_[w.staged].data_remaining + pf_.w[q];
            const double est_current =
                expected_return + markov::e_workload(m, remaining);
            if (best_alt >= est_current) continue;
            if (w.staged != -1) {
                emit(EventKind::ProactiveCancel, q,
                     instances_[w.staged].logical,
                     instances_[w.staged].kind == InstKind::Replica);
                release_instance(w.staged, /*to_pool=*/true);
            }
            if (w.computing != -1) {
                emit(EventKind::ProactiveCancel, q,
                     instances_[w.computing].logical,
                     instances_[w.computing].kind == InstKind::Replica);
                release_instance(w.computing, /*to_pool=*/true);
            }
            ++metrics_.proactive_cancellations;
        }
    }

    /// Tries to turn a planned assignment into committed work + a started
    /// transfer.  Returns true when the instance got committed.
    bool try_commit(int id, ProcId q, long long t, int& budget) {
        Instance& inst = instances_[id];
        auto w = workers_[q];
        if (w.state != ProcState::Up || w.staged != -1) return false;
        if (w.has_program) {
            // Needs a data transfer right away.
            if (pf_.t_data == 0) {
                stage(inst, id, q, t);
                inst.data_started = true;
                inst.data_done = true;
                emit(EventKind::DataStart, q, inst.logical,
                     inst.kind == InstKind::Replica);
                return true;
            }
            if (budget == 0) return false;
            stage(inst, id, q, t);
            inst.data_started = true;
            w.data_start = t;
            --inst.data_remaining;
            ++metrics_.per_proc[q].transfer_slots;
            ++metrics_.transfer_slots;
            ++transfers_this_slot_;
            --budget;
            slot_flags_[q] |= kFlagData;
            record_recv(q, inst.logical);
            emit(EventKind::DataStart, q, inst.logical,
                 inst.kind == InstKind::Replica);
            return true;
        }
        if (!w.prog_in_flight) {
            // Enrolment: the program download starts now; the task's data
            // will follow once the program is complete.
            if (pf_.t_prog == 0) {
                w.has_program = true;
                return try_commit(id, q, t, budget);
            }
            if (budget == 0) return false;
            w.prog_in_flight = true;
            w.prog_remaining = pf_.t_prog - 1; // this slot transfers already
            w.prog_start = t;
            ++metrics_.per_proc[q].transfer_slots;
            ++metrics_.transfer_slots;
            ++transfers_this_slot_;
            --budget;
            slot_flags_[q] |= kFlagProg;
            record_recv(q, -2);
            emit(EventKind::ProgStart, q, inst.logical,
                 inst.kind == InstKind::Replica);
            stage(inst, id, q, t);
            return true;
        }
        // Program already in flight (started for a since-cancelled task):
        // stage behind it at no bandwidth cost this slot.
        stage(inst, id, q, t);
        return true;
    }

    void stage(Instance& inst, int id, ProcId q, long long t) {
        inst.status = InstStatus::Committed;
        inst.proc = q;
        inst.commit_slot = t;
        workers_[q].staged = id;
    }

    void advance_compute() {
        for (int q = 0; q < pf_.size(); ++q) {
            auto w = workers_[q];
            if (w.state != ProcState::Up || w.computing == -1) continue;
            // Computation pauses while the worker's snapshot uploads — the
            // classic checkpoint overhead the policies must amortize.
            if (w.ckpt_in_flight) continue;
            --w.compute_remaining;
            ++w.since_ckpt;
            ++metrics_.compute_slots;
            ++metrics_.per_proc[q].compute_slots;
            slot_flags_[q] |= kFlagCompute;
            record_compute(q, instances_[w.computing].logical);
        }
    }

    /// Writes each worker's activity code for the slot that just ran.
    void record_timeline() {
        if (!config_.timeline) return;
        for (int q = 0; q < pf_.size(); ++q) {
            const ProcState st = workers_[q].state;
            char code = '.';
            if (st == ProcState::Down) code = 'd';
            else if (st == ProcState::Reclaimed) code = 'r';
            else {
                const std::uint8_t f = slot_flags_[q];
                const bool compute = f & kFlagCompute;
                const bool data = f & kFlagData;
                const bool prog = f & kFlagProg;
                const bool ckpt = f & kFlagCkpt;
                if (compute && data) code = 'B';
                else if (compute) code = 'C';
                else if (ckpt) code = 'K';
                else if (data) code = 'D';
                else if (prog) code = 'P';
            }
            config_.timeline->record(q, code);
        }
    }

    /// Phase 4: completions, promotions, iteration boundary.  Returns true
    /// when the final iteration finished during this slot.
    bool end_of_slot(long long t) {
        for (int q = 0; q < pf_.size(); ++q) {
            auto w = workers_[q];
            if (w.prog_in_flight && w.prog_remaining == 0) {
                w.prog_in_flight = false;
                w.has_program = true;
                w.prog_start = -1;
                emit(EventKind::ProgComplete, q);
            }
            if (w.staged != -1) {
                Instance& inst = instances_[w.staged];
                if (inst.data_started && inst.data_remaining == 0 &&
                    !inst.data_done) {
                    inst.data_done = true;
                    emit(EventKind::DataComplete, q, inst.logical,
                         inst.kind == InstKind::Replica);
                }
            }
            if (w.ckpt_in_flight && w.ckpt_remaining == 0) {
                // The upload finished: the snapshot becomes durable at the
                // master and computation resumes next slot.  ckpt_in_flight
                // implies computing != -1 (release_instance cancels the
                // upload when the subject goes away).
                w.ckpt_in_flight = false;
                w.ckpt_start = -1;
                commit_checkpoint(q, instances_[w.computing].logical,
                                  w.ckpt_progress);
                w.ckpt_progress = 0;
            }
        }
        // Task completions (may cancel siblings staged on other workers).
        for (int q = 0; q < pf_.size(); ++q) {
            auto w = workers_[q];
            if (w.computing == -1 || w.compute_remaining > 0) continue;
            complete_instance(w.computing);
        }
        // Promotions: a data-complete staged task starts computing next slot.
        for (int q = 0; q < pf_.size(); ++q) {
            auto w = workers_[q];
            if (w.computing != -1 || w.staged == -1) continue;
            Instance& inst = instances_[w.staged];
            if (!inst.data_done) continue;
            w.computing = w.staged;
            w.staged = -1;
            w.data_start = -1;
            w.compute_remaining = pf_.w[q];
            w.since_ckpt = 0;
            w.compute_credit = 0;
            w.ckpt_committed = 0;
            if (config_.checkpoint && inst.kind == InstKind::Original) {
                // Restart-from-checkpoint: a committed snapshot of this
                // logical task credits the new incarnation with the work it
                // preserves (translated to this worker's speed).  Originals
                // only — a snapshot exists to shorten the post-crash redo,
                // not to give speculative replicas a head start.
                const int credit = ckpt_credit(inst.logical, pf_.w[q]);
                if (credit > 0) {
                    w.compute_remaining -= credit;
                    w.compute_credit = credit;
                    w.ckpt_committed = credit;
                    metrics_.saved_compute_slots += credit;
                    ++metrics_.recoveries;
                    emit(EventKind::Recovery, q, inst.logical,
                         /*replica=*/false);
                }
            }
            emit(EventKind::ComputeStart, q, instances_[w.computing].logical,
                 instances_[w.computing].kind == InstKind::Replica);
        }
        if (remaining_logical_ == 0) {
            emit(EventKind::IterationComplete, kNoProc);
            ++iterations_done_;
            metrics_.iteration_ends.push_back(t + 1);
            if (iterations_done_ == config_.iterations) return true;
            start_iteration();
        }
        return false;
    }

    void complete_instance(int id) {
        Instance& inst = instances_[id];
        auto w = workers_[inst.proc];
        inst.status = InstStatus::Done;
        w.computing = -1;
        w.compute_remaining = 0;
        w.since_ckpt = 0;
        w.compute_credit = 0;
        w.ckpt_committed = 0;
        logical_done_[inst.logical] = true;
        --logical_live_[inst.logical];
        --remaining_logical_;
        ++metrics_.tasks_completed;
        ++metrics_.per_proc[inst.proc].tasks_completed;
        if (inst.kind == InstKind::Replica) ++metrics_.replica_wins;
        emit(EventKind::TaskComplete, inst.proc, inst.logical,
             inst.kind == InstKind::Replica);
        // Cancel all live siblings: their data/compute is wasted.
        for (int sid = 0; sid < static_cast<int>(instances_.size()); ++sid) {
            if (sid == id) continue;
            Instance& sib = instances_[sid];
            if (sib.logical != inst.logical) continue;
            if (sib.status == InstStatus::Pool) {
                sib.status = InstStatus::Cancelled;
                --logical_live_[sib.logical];
            } else if (sib.status == InstStatus::Committed) {
                emit(EventKind::ReplicaCancelled, sib.proc, sib.logical,
                     sib.kind == InstKind::Replica);
                release_instance(sid, /*to_pool=*/false);
            }
        }
    }

    // ---- helpers -------------------------------------------------------

    static constexpr std::uint8_t kFlagProg = 1;
    static constexpr std::uint8_t kFlagData = 2;
    static constexpr std::uint8_t kFlagCompute = 4;
    static constexpr std::uint8_t kFlagCkpt = 8;

    /// "No recorded action" sentinel for the fast-forward back-fill (-2 is
    /// the action trace's program marker, >= 0 a logical task).
    static constexpr int kNoAction = -3;

    /// Shortest inert stretch worth a fast_forward (below it, the closed-
    /// form setup costs more than stepping the slots; dead stretches are
    /// exempt so the skip count matches the slot loop's).
    static constexpr long long kMinJump = 4;
    /// Slots in [t, known_inert_until_) are known inert from an earlier
    /// steady_horizon call that fell under kMinJump; they step through the
    /// normal phases without re-running the prediction.
    long long known_inert_until_ = 0;

    void record_recv(ProcId q, int value) {
        if (config_.actions) config_.actions->set_recv(q, value);
    }
    void record_compute(ProcId q, int task) {
        if (config_.actions) config_.actions->set_compute(q, task);
    }

    void emit(EventKind kind, ProcId proc, int logical = -1,
              bool replica = false,
              ProcState state = ProcState::Up) {
        if (!config_.events && !config_.tracer) return;
        Event e;
        e.slot = slot_;
        e.kind = kind;
        e.proc = proc;
        e.iteration = iterations_done_;
        e.logical = logical;
        e.replica = replica;
        e.state = state;
        if (config_.tracer) trace_event(e);
        if (config_.events) config_.events->append(e);
    }

    /// Mirrors one engine event into the tracer's span model.  Pure
    /// observer: reads the same Event the log receives (plus the platform's
    /// transfer-cost constants, to classify zero-cost transfers) and never
    /// writes engine state.
    void trace_event(const Event& e) {
        using obs::TraceRecorder;
        TraceRecorder& tr = *config_.tracer;
        const auto task_args = [&e] {
            std::string a = "{\"task\":" + std::to_string(e.logical) +
                            ",\"iter\":" + std::to_string(e.iteration);
            if (e.replica) a += ",\"replica\":true";
            a += "}";
            return a;
        };
        switch (e.kind) {
        case EventKind::StateChange: {
            const char code = e.state == ProcState::Up        ? 'u'
                              : e.state == ProcState::Reclaimed ? 'r'
                                                                : 'd';
            // A DOWN handoff also cuts the activity lanes ("lost") inside
            // state_change — this covers the in-flight program download a
            // crash wipes without emitting any WorkLost event.
            tr.state_change(e.slot, e.proc, code);
            break;
        }
        case EventKind::ProgStart:
            tr.span_begin(e.slot, e.proc, TraceRecorder::kLaneTransfer,
                          "prog");
            break;
        case EventKind::ProgComplete:
            tr.span_end(e.slot, e.proc, TraceRecorder::kLaneTransfer);
            break;
        case EventKind::DataStart:
            // Zero-cost data transfers (t_data == 0) complete at their
            // start event and never emit DataComplete — record an instant
            // so the transfer lane is not left open.
            if (pf_.t_data == 0)
                tr.instant(e.slot, e.proc, TraceRecorder::kLaneTransfer,
                           "data (free)");
            else
                tr.span_begin(e.slot, e.proc, TraceRecorder::kLaneTransfer,
                              "data", task_args());
            break;
        case EventKind::DataComplete:
            tr.span_end(e.slot, e.proc, TraceRecorder::kLaneTransfer);
            break;
        case EventKind::ComputeStart:
            // Promotion happens at end of slot s; the computation's first
            // advancing slot is s + 1 (and completions of slot s have
            // already closed the lane, so the handoff order is safe).
            tr.span_begin(e.slot + 1, e.proc, TraceRecorder::kLaneCompute,
                          "compute", task_args());
            break;
        case EventKind::TaskComplete:
            tr.span_end(e.slot, e.proc, TraceRecorder::kLaneCompute);
            break;
        case EventKind::WorkLost:
            tr.span_cut(e.slot, e.proc, TraceRecorder::kLaneTransfer, "lost");
            tr.span_cut(e.slot, e.proc, TraceRecorder::kLaneCompute, "lost");
            break;
        case EventKind::ReplicaCommitted:
            tr.instant(e.slot, e.proc, TraceRecorder::kLaneTransfer,
                       "replica committed");
            break;
        case EventKind::ReplicaCancelled:
            tr.span_cut(e.slot, e.proc, TraceRecorder::kLaneTransfer,
                        "cancelled");
            tr.span_cut(e.slot, e.proc, TraceRecorder::kLaneCompute,
                        "cancelled");
            break;
        case EventKind::ProactiveCancel:
            tr.span_cut(e.slot, e.proc, TraceRecorder::kLaneTransfer,
                        "proactive");
            tr.span_cut(e.slot, e.proc, TraceRecorder::kLaneCompute,
                        "proactive");
            break;
        case EventKind::IterationComplete:
            tr.instant_engine(e.slot, "iteration complete");
            break;
        case EventKind::CheckpointStart:
            tr.span_begin(e.slot, e.proc, TraceRecorder::kLaneCkpt, "ckpt",
                          task_args());
            break;
        case EventKind::CheckpointCommit:
            tr.span_end(e.slot, e.proc, TraceRecorder::kLaneCkpt);
            break;
        case EventKind::CheckpointLost:
            tr.span_cut(e.slot, e.proc, TraceRecorder::kLaneCkpt, "lost");
            break;
        case EventKind::Recovery:
            tr.instant(e.slot, e.proc, TraceRecorder::kLaneCompute,
                       "recovery");
            break;
        }
    }

    /// Delay(q) of Section 6.3.1: remaining program + committed data +
    /// committed compute (plus an in-flight checkpoint upload, which blocks
    /// the compute pipeline), assuming the worker stays UP, contention-free.
    [[nodiscard]] int delay_of(ProcId q) const {
        const auto w = workers_[q];
        int d = 0;
        if (!w.has_program)
            d += w.prog_in_flight ? w.prog_remaining : pf_.t_prog;
        if (w.computing != -1) d += w.compute_remaining;
        if (w.ckpt_in_flight) d += w.ckpt_remaining;
        if (w.staged != -1)
            d += instances_[w.staged].data_remaining + pf_.w[q];
        return d;
    }

    [[nodiscard]] bool holds_logical(ProcId q, int logical) const {
        const auto w = workers_[q];
        if (w.staged != -1 && instances_[w.staged].logical == logical)
            return true;
        if (w.computing != -1 && instances_[w.computing].logical == logical)
            return true;
        return false;
    }

    /// True when some pool instance of `logical` is already planned on q.
    [[nodiscard]] bool plans_logical(ProcId q, int logical) const {
        for (int id : pool_) {
            const Instance& inst = instances_[id];
            if (inst.logical == logical && inst.planned == q) return true;
        }
        return false;
    }

    void audit_bandwidth() const {
        if (transfers_this_slot_ > pf_.ncom)
            throw std::logic_error("audit: bandwidth bound exceeded");
    }

    void audit_invariants() const {
        int live_from_counts = 0;
        for (int lt = 0; lt < config_.tasks_per_iteration; ++lt) {
            if (logical_live_[lt] < 0)
                throw std::logic_error("audit: negative live-instance count");
            live_from_counts += logical_live_[lt];
        }
        int live_scan = 0;
        for (const auto& inst : instances_)
            if (inst.status == InstStatus::Pool ||
                inst.status == InstStatus::Committed)
                ++live_scan;
        if (live_scan != live_from_counts)
            throw std::logic_error("audit: live-instance count drift");
        for (int q = 0; q < pf_.size(); ++q) {
            const auto w = workers_[q];
            if (w.prog_in_flight && w.has_program)
                throw std::logic_error("audit: program both held and in flight");
            if (w.staged != -1) {
                const Instance& inst = instances_[w.staged];
                if (inst.status != InstStatus::Committed || inst.proc != q)
                    throw std::logic_error("audit: staged link broken");
                if (inst.data_remaining < 0 || inst.data_remaining > pf_.t_data)
                    throw std::logic_error("audit: data counter out of range");
            }
            if (w.computing != -1) {
                const Instance& inst = instances_[w.computing];
                if (inst.status != InstStatus::Committed || inst.proc != q)
                    throw std::logic_error("audit: computing link broken");
                if (!inst.data_done)
                    throw std::logic_error("audit: computing without data");
                if (!w.has_program)
                    throw std::logic_error("audit: computing without program");
                if (w.compute_remaining < 0 || w.compute_remaining > pf_.w[q])
                    throw std::logic_error("audit: compute counter out of range");
                if (w.computing == w.staged)
                    throw std::logic_error("audit: instance both staged and computing");
                if (w.compute_credit < 0 || w.compute_credit >= pf_.w[q])
                    throw std::logic_error(
                        "audit: checkpoint credit out of range");
                if (w.ckpt_committed < w.compute_credit ||
                    w.ckpt_committed > pf_.w[q] - w.compute_remaining)
                    throw std::logic_error(
                        "audit: committed-snapshot coverage out of range");
            }
            if (w.ckpt_in_flight) {
                if (!config_.checkpoint)
                    throw std::logic_error(
                        "audit: checkpoint in flight without a policy");
                if (w.computing == -1)
                    throw std::logic_error(
                        "audit: checkpoint in flight without a computed task");
                if (w.ckpt_remaining < 0 ||
                    w.ckpt_remaining > config_.checkpoint_cost)
                    throw std::logic_error(
                        "audit: checkpoint counter out of range");
                if (w.ckpt_progress <= 0 || w.ckpt_progress >= pf_.w[q])
                    throw std::logic_error(
                        "audit: checkpoint snapshot out of range");
            }
        }
        for (int lt = 0; lt < config_.tasks_per_iteration; ++lt) {
            const TaskCheckpoint& c =
                ckpt_store_[static_cast<std::size_t>(lt)];
            // A committed fraction is always in (0, 1): snapshots are only
            // taken while compute remains.
            if (c.done < 0 || c.w < 1 || (c.done > 0 && c.done >= c.w))
                throw std::logic_error(
                    "audit: committed checkpoint fraction out of range");
        }
    }

    // ---- data ----------------------------------------------------------

    const Platform& pf_;
    EngineConfig config_;
    std::vector<markov::TraceCursor> cursors_;
    util::Rng sched_rng_{0};
    const std::vector<markov::MarkovChain>* beliefs_ = nullptr;

    WorkerSoA workers_;
    int up_count_ = 0;
    std::vector<Instance> instances_;
    std::vector<TaskCheckpoint> ckpt_store_; ///< per logical task, per iter
    std::vector<bool> logical_done_;
    std::vector<int> logical_live_; ///< live (pool+committed) copies per task
    int remaining_logical_ = 0;
    int iterations_done_ = 0;
    long long plan_counter_ = 0;
    int transfers_this_slot_ = 0;
    long long slot_ = 0;
    std::vector<std::uint8_t> slot_flags_;

    RunMetrics metrics_;

    // Scratch buffers reused across slots to avoid per-slot allocation.
    std::vector<ActiveTransfer> active_;
    std::vector<ProcId> pending_;
    std::vector<int> pool_;
    std::vector<ProcView> views_;
    std::vector<int> nq_;
    std::vector<ProcId> eligible_;
    std::vector<ProcId> scratch_;
    std::vector<int> commit_order_;
    std::vector<std::pair<int, ProcId>> replica_plan_;
    std::vector<int> planned_logical_;
    std::vector<int> plan_order_;
    std::vector<int> ff_recv_;    ///< fast-forward: constant recv per proc
    std::vector<int> ff_compute_; ///< fast-forward: constant compute per proc
};

} // namespace

Simulation::Simulation(
    Platform platform,
    std::vector<std::unique_ptr<markov::AvailabilityModel>> models,
    std::vector<markov::MarkovChain> beliefs, EngineConfig config,
    std::uint64_t seed)
    : platform_(std::move(platform)),
      models_(std::move(models)),
      beliefs_(std::move(beliefs)),
      config_(config),
      seed_(seed) {
    if (auto err = platform_.validate(); !err.empty())
        throw std::invalid_argument("Simulation: " + err);
    if (static_cast<int>(models_.size()) != platform_.size())
        throw std::invalid_argument(
            "Simulation: one availability model per processor required");
    if (!beliefs_.empty() &&
        static_cast<int>(beliefs_.size()) != platform_.size())
        throw std::invalid_argument(
            "Simulation: beliefs must be empty or one per processor");
    if (config_.iterations <= 0 || config_.tasks_per_iteration <= 0)
        throw std::invalid_argument(
            "Simulation: iterations and tasks per iteration must be positive");
    if (config_.replica_cap < 0)
        throw std::invalid_argument("Simulation: negative replica cap");
    if (config_.checkpoint_cost < 0)
        throw std::invalid_argument("Simulation: negative checkpoint cost");
}

Simulation Simulation::from_chains(Platform platform,
                                   const std::vector<markov::MarkovChain>& chains,
                                   EngineConfig config, std::uint64_t seed) {
    std::vector<std::unique_ptr<markov::AvailabilityModel>> models;
    models.reserve(chains.size());
    for (const auto& c : chains)
        models.push_back(std::make_unique<markov::MarkovAvailability>(c));
    return Simulation(std::move(platform), std::move(models), chains, config,
                      seed);
}

std::shared_ptr<markov::RealizedTraces> Simulation::realization() const {
    return acquire_traces();
}

std::shared_ptr<markov::RealizedTraces> Simulation::acquire_traces() const {
    if (!cache_traces_)
        return std::make_shared<markov::RealizedTraces>(models_, seed_);
    if (!traces_)
        traces_ = std::make_shared<markov::RealizedTraces>(models_, seed_);
    return traces_;
}

namespace {

/// Scheduler cache traffic attributable to one run: the counters are
/// cumulative over the scheduler's lifetime, the metrics report deltas.
void record_cache_delta(RunMetrics& m, const Scheduler& sched,
                        const SchedulerCounters& before) {
    const SchedulerCounters after = sched.counters();
    m.cache_hits =
        static_cast<long long>(after.cache_hits - before.cache_hits);
    m.cache_misses =
        static_cast<long long>(after.cache_misses - before.cache_misses);
    m.cache_invalidations = static_cast<long long>(
        after.cache_invalidations - before.cache_invalidations);
}

} // namespace

RunMetrics Simulation::run(Scheduler& sched) const {
    const auto traces = acquire_traces();
    Runner runner(platform_, *traces, beliefs_, config_, seed_);
    const SchedulerCounters before = sched.counters();
    RunMetrics m = runner.run(sched);
    record_cache_delta(m, sched, before);
    return m;
}

RunMetrics Simulation::run_for_deadline(Scheduler& sched,
                                        long long deadline_slots) const {
    EngineConfig cfg = config_;
    cfg.max_slots = deadline_slots;
    // An unreachable iteration budget: the run always ends at the deadline
    // and iterations_completed is the Section 3.4 objective value.
    cfg.iterations = std::numeric_limits<int>::max();
    const auto traces = acquire_traces();
    Runner runner(platform_, *traces, beliefs_, cfg, seed_);
    const SchedulerCounters before = sched.counters();
    RunMetrics m = runner.run(sched);
    record_cache_delta(m, sched, before);
    return m;
}

long long Simulation::min_slots_for_iterations(Scheduler& sched,
                                               int iterations) const {
    EngineConfig cfg = config_;
    cfg.iterations = iterations;
    const auto traces = acquire_traces();
    Runner runner(platform_, *traces, beliefs_, cfg, seed_);
    const auto metrics = runner.run(sched);
    return metrics.completed ? metrics.makespan : -1;
}

} // namespace volsched::sim
