#pragma once
/// \file metrics_io.hpp
/// Canonical JSON serialization of RunMetrics (util/json conventions:
/// stable field order, shortest round-trip numbers) so scripts can consume
/// single runs — `volsched_sim --metrics-json` — without going through the
/// campaign machinery.

#include <string>

#include "sim/metrics.hpp"

namespace volsched::sim {

/// One self-contained JSON object holding every RunMetrics field, the
/// per-processor accounting included.  No trailing newline.
std::string metrics_to_json(const RunMetrics& m);

} // namespace volsched::sim
