#include "sim/platform.hpp"

namespace volsched::sim {

Platform Platform::homogeneous(int p, int w_all, int ncom, int t_prog,
                               int t_data) {
    Platform pf;
    pf.w.assign(static_cast<std::size_t>(p), w_all);
    pf.ncom = ncom;
    pf.t_prog = t_prog;
    pf.t_data = t_data;
    return pf;
}

std::string Platform::validate() const {
    if (w.empty()) return "platform has no processors";
    for (std::size_t q = 0; q < w.size(); ++q)
        if (w[q] <= 0)
            return "processor " + std::to_string(q) +
                   " has non-positive task cost";
    if (ncom <= 0) return "ncom must be positive";
    if (t_prog < 0) return "t_prog must be non-negative";
    if (t_data < 0) return "t_data must be non-negative";
    return {};
}

} // namespace volsched::sim
