#pragma once
/// \file engine.hpp
/// The time-slot simulation engine implementing the execution model of
/// Section 3: master-worker iterative application, bounded multi-port
/// master bandwidth, 3-state volatile workers, task replication.
///
/// Per-slot semantics (normative; see DESIGN.md §4):
///  1. Worker states advance; newly DOWN workers lose program, staged data
///     and partial computation (originals return to the master's pool,
///     replicas are cancelled).
///  2. The master allocates its `ncom` transfer slots: in-flight transfers
///     to/from UP workers first (program and data downloads plus checkpoint
///     uploads, FIFO by start time), then data transfers that were
///     committed but waited for the program, then new checkpoint uploads
///     the attached policy requests (ckpt/policy.hpp), then — if assignable
///     work remains and bandwidth is free — a fresh assignment round with
///     the scheduling heuristic, committing new program/data transfers in
///     heuristic preference order.
///  3. UP workers holding a data-complete task advance its computation.
///  4. End of slot: transfer/compute completions are materialized, staged
///     tasks are promoted to computing, replicas of completed tasks are
///     cancelled, and iteration boundaries are crossed.
///
/// Availability is drawn from RNG streams that are independent of the
/// heuristic's stream, so for a fixed seed every heuristic faces the exact
/// same availability realization — the property the paper's per-instance
/// "degradation from best" metric relies on.  The realization is sampled
/// once into a run-length-encoded markov::RealizedTraces snapshot (a pure
/// function of the seed) that every run() replays.
///
/// The engine has two stepping cores over this identical slot semantics:
///
///  - The slot loop (EngineConfig::event_driven == false) walks every slot
///    of the horizon, optionally fast-forwarding dead stretches where no
///    worker is UP (EngineConfig::skip_dead_slots).
///  - The event-driven core (the default) keeps a frontier of (slot, event)
///    candidates — availability transitions read from the RLE segments via
///    markov::TraceCursor::next_change_at, transfer/compute/checkpoint
///    completions computed in closed form from the current counters, and
///    scheduler decision points — and advances every provably-inert slot in
///    between arithmetically (RunMetrics::slots_elided counts them).
///    Action traces, timelines, events, and RunMetrics are bit-identical
///    to the slot loop; audit mode re-verifies every elided range.

#include <memory>
#include <vector>

#include "markov/availability.hpp"
#include "markov/chain.hpp"
#include "markov/realized_trace.hpp"
#include "sim/action_trace.hpp"
#include "sim/events.hpp"
#include "sim/metrics.hpp"
#include "sim/platform.hpp"
#include "sim/scheduler.hpp"
#include "sim/timeline.hpp"

namespace volsched::api {
class SimulationBuilder; // defined in api/simulation_builder.hpp
}

namespace volsched::ckpt {
class CheckpointPolicy; // defined in ckpt/policy.hpp
}

namespace volsched::obs {
class TraceRecorder; // defined in obs/trace.hpp
}

namespace volsched::sim {

/// The scheduler-class taxonomy of Section 6.1.
enum class SchedulerClass {
    /// Un-started tasks are re-planned every round (the paper's class; all
    /// evaluated heuristics are dynamic).
    Dynamic,
    /// A planned processor is kept until it crashes — the conservative
    /// "passive" class.
    Passive,
    /// Dynamic, plus: suspended (RECLAIMED) workers holding committed work
    /// may be aggressively un-enrolled when an idle UP worker is expected
    /// to redo the work faster (requires belief chains; un-enrolment
    /// discards data and partial results per Section 3.3).
    Proactive,
};

/// Engine knobs; defaults match the paper's experiments.
struct EngineConfig {
    /// Number of iterations to complete (the paper uses 10).
    int iterations = 10;
    /// Tasks per iteration (the paper's m, called n in Section 7).
    int tasks_per_iteration = 10;
    /// Maximum number of *extra* replicas per logical task (paper: 2).
    /// Zero disables replication.
    int replica_cap = 2;
    /// Hard horizon in slots; a run that does not finish by then reports
    /// `completed == false` with `makespan == max_slots`.
    long long max_slots = 10'000'000;
    /// Scheduler class (Section 6.1); Dynamic is the paper's setting.
    SchedulerClass plan_class = SchedulerClass::Dynamic;
    /// When true (default), the engine fast-forwards stretches of slots in
    /// which no worker is UP and no availability state change occurs:
    /// nothing can transfer, compute, or complete in such a slot, so the
    /// engine jumps straight to the next state change (RunMetrics::
    /// dead_slots_skipped counts the slots elided).  Timelines and action
    /// traces are back-filled so recorded output is bit-identical with the
    /// flag on or off.
    bool skip_dead_slots = true;
    /// When true (default), the engine runs its event-driven core: between
    /// consecutive candidate events (availability transitions from the RLE
    /// trace, transfer/compute/checkpoint completions in closed form,
    /// scheduler decision points) slots are advanced arithmetically instead
    /// of simulated one by one (RunMetrics::slots_elided counts them).
    /// Output is bit-identical to the slot loop by construction; the knob
    /// exists to run the reference slot loop for validation and benchmarks.
    /// The event core subsumes `skip_dead_slots` (dead stretches are just
    /// one kind of inert range) and ignores that flag.
    bool event_driven = true;
    /// When true, the engine cross-checks model invariants every slot and
    /// throws std::logic_error on violation (skipped dead ranges and
    /// event-elided ranges are cross-checked slot by slot against the
    /// realized trace and the checkpoint policy).  Used by the test suite.
    bool audit = false;
    /// Optional checkpoint/restart policy (not owned; null means "none",
    /// the paper's crash-lose-everything model).  When set, workers may
    /// upload progress snapshots to the master (ckpt/policy.hpp): uploads
    /// compete with program/data transfers for the `ncom` bandwidth slots,
    /// computation pauses while a worker's snapshot is in flight, and a
    /// crashed task's next incarnation resumes from the last committed
    /// snapshot.  With the `none` policy (or null) action traces are
    /// bit-identical to an engine without the checkpoint layer.
    const ckpt::CheckpointPolicy* checkpoint = nullptr;
    /// Master transfer slot-units one checkpoint upload costs (>= 0; zero
    /// commits instantly, like a zero-cost data transfer).
    int checkpoint_cost = 1;
    /// Optional structured event log (not owned; may be null).
    EventLog* events = nullptr;
    /// Optional per-slot activity recorder (not owned; may be null).
    Timeline* timeline = nullptr;
    /// Optional exact action recorder (not owned; may be null); lets a run
    /// be re-validated through the off-line model checker.
    ActionTrace* actions = nullptr;
    /// Optional sim-time tracer (not owned; may be null): records the run as
    /// per-worker spans exportable as Perfetto-loadable Chrome trace JSON
    /// (obs/trace.hpp).  Strictly observer-only — attaching a tracer leaves
    /// every other output byte-identical.
    obs::TraceRecorder* tracer = nullptr;
};

/// One reproducible simulation: a platform, one availability process per
/// processor, optional per-processor belief chains for informed heuristics,
/// and a seed.  `run()` may be called several times (optionally with
/// different schedulers); each call replays the identical availability
/// realization.  The realization is sampled lazily on the first run (or by
/// realization()) and cached, so a 19-heuristic comparison pays the
/// sampling cost once, not 19 times.
///
/// Thread-safety: concurrent run() calls on one Simulation require the
/// shared realization to be materialized first — call
/// realization()->ensure(horizon) — because lazy trace growth is not
/// synchronized.  Distinct Simulation objects are always independent (the
/// pattern the sweep/campaign drivers use).
class Simulation {
public:
    /// `models` must have one entry per processor.  `beliefs` must be empty
    /// (uninformed run: ProcView::belief == nullptr) or size p.
    Simulation(Platform platform,
               std::vector<std::unique_ptr<markov::AvailabilityModel>> models,
               std::vector<markov::MarkovChain> beliefs, EngineConfig config,
               std::uint64_t seed);

    /// Convenience: Markov availability from `chains`, with the same chains
    /// used as the heuristics' beliefs (the paper's experimental setting).
    static Simulation from_chains(Platform platform,
                                  const std::vector<markov::MarkovChain>& chains,
                                  EngineConfig config, std::uint64_t seed);

    /// Entry point of the fluent facade: Simulation::builder().platform(...)
    /// .markov(chains)....build().  Defined with the builder in
    /// api/simulation_builder.hpp (include volsched/volsched.hpp).
    static api::SimulationBuilder builder();

    /// Runs one full simulation under `sched` and returns its metrics.
    RunMetrics run(Scheduler& sched) const;

    /// Section 3.4's primal objective: how many iterations complete within
    /// `deadline_slots`?  Equivalent to a run with an unbounded iteration
    /// budget and the horizon set to the deadline; the answer is
    /// `iterations_completed` of the returned metrics.
    RunMetrics run_for_deadline(Scheduler& sched,
                                long long deadline_slots) const;

    /// The dual objective (obtained in the paper via binary search over the
    /// decision problem; the simulator measures it directly): the minimum
    /// number of slots to finish `iterations` iterations, or -1 when the
    /// configured horizon is hit first.
    long long min_slots_for_iterations(Scheduler& sched, int iterations) const;

    [[nodiscard]] const Platform& platform() const noexcept { return platform_; }
    [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

    /// The shared realized-availability snapshot all runs replay: sampled
    /// lazily (a pure function of the seed and the availability models) and
    /// cached across run()/run_for_deadline()/min_slots_for_iterations().
    /// With trace caching disabled (SimulationBuilder::trace_cache(false))
    /// every call realizes afresh and nothing is retained.
    [[nodiscard]] std::shared_ptr<markov::RealizedTraces> realization() const;

private:
    /// Cached-or-fresh realization per the trace-cache policy.
    [[nodiscard]] std::shared_ptr<markov::RealizedTraces> acquire_traces() const;

    friend class api::SimulationBuilder; // installs .realized()/.trace_cache()

    Platform platform_;
    std::vector<std::unique_ptr<markov::AvailabilityModel>> models_;
    std::vector<markov::MarkovChain> beliefs_;
    EngineConfig config_;
    std::uint64_t seed_;
    /// Keeps a builder-resolved checkpoint policy alive for the lifetime of
    /// the simulation (config_.checkpoint points at it); null when the
    /// policy was attached as a raw pointer or not at all.
    std::shared_ptr<const ckpt::CheckpointPolicy> checkpoint_policy_;
    /// Realization cache; pre-seeded by SimulationBuilder::realized().
    mutable std::shared_ptr<markov::RealizedTraces> traces_;
    /// False: re-realize on every run (the pre-trace-layer cost model);
    /// set via SimulationBuilder::trace_cache(false).
    bool cache_traces_ = true;
};

} // namespace volsched::sim
