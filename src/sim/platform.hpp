#pragma once
/// \file platform.hpp
/// The platform model of Section 3.2: p volatile processors with
/// per-processor task cost w_q (UP slots per task), plus the bounded
/// multi-port communication parameters (ncom concurrent transfers at fixed
/// per-transfer bandwidth; program and data transfer times in slots).

#include <string>
#include <vector>

namespace volsched::sim {

using ProcId = int;
inline constexpr ProcId kNoProc = -1;

struct Platform {
    /// w_q: number of UP slots processor q needs to compute one task.
    std::vector<int> w;
    /// Maximum number of simultaneous master transfers (BW / bw).
    int ncom = 1;
    /// Slots to transfer the application program (Vprog / bw).
    int t_prog = 1;
    /// Slots to transfer one task's input data (Vdata / bw).
    int t_data = 1;

    [[nodiscard]] int size() const noexcept { return static_cast<int>(w.size()); }

    /// All processors with the same task cost.
    static Platform homogeneous(int p, int w_all, int ncom, int t_prog,
                                int t_data);

    /// Empty string when well-formed, else a diagnostic.
    [[nodiscard]] std::string validate() const;
};

} // namespace volsched::sim
