#include "sim/events.hpp"

#include <algorithm>
#include <ostream>

namespace volsched::sim {

const char* event_kind_name(EventKind kind) noexcept {
    switch (kind) {
        case EventKind::StateChange: return "state_change";
        case EventKind::ProgStart: return "prog_start";
        case EventKind::ProgComplete: return "prog_complete";
        case EventKind::DataStart: return "data_start";
        case EventKind::DataComplete: return "data_complete";
        case EventKind::ComputeStart: return "compute_start";
        case EventKind::TaskComplete: return "task_complete";
        case EventKind::WorkLost: return "work_lost";
        case EventKind::ReplicaCommitted: return "replica_committed";
        case EventKind::ReplicaCancelled: return "replica_cancelled";
        case EventKind::ProactiveCancel: return "proactive_cancel";
        case EventKind::IterationComplete: return "iteration_complete";
        case EventKind::CheckpointStart: return "ckpt_start";
        case EventKind::CheckpointCommit: return "ckpt_commit";
        case EventKind::CheckpointLost: return "ckpt_lost";
        case EventKind::Recovery: return "recovery";
    }
    return "?";
}

std::size_t EventLog::count(EventKind kind) const noexcept {
    return static_cast<std::size_t>(
        std::count_if(events_.begin(), events_.end(),
                      [kind](const Event& e) { return e.kind == kind; }));
}

void EventLog::write_csv(std::ostream& out) const {
    out << "slot,kind,proc,iteration,task,replica,state\n";
    for (const Event& e : events_) {
        out << e.slot << ',' << event_kind_name(e.kind) << ',' << e.proc
            << ',' << e.iteration << ',' << e.logical << ','
            << (e.replica ? 1 : 0) << ',' << markov::state_code(e.state)
            << '\n';
    }
}

} // namespace volsched::sim
