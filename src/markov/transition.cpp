#include "markov/transition.hpp"

#include <cmath>
#include <cstdio>

namespace volsched::markov {

TransitionMatrix::TransitionMatrix() noexcept
    : rows_{{{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}}} {}

TransitionMatrix::TransitionMatrix(
    const std::array<std::array<double, 3>, 3>& rows) noexcept
    : rows_(rows) {}

std::string TransitionMatrix::validate(double tol) const {
    for (int i = 0; i < kNumStates; ++i) {
        double sum = 0.0;
        for (int j = 0; j < kNumStates; ++j) {
            const double v = rows_[i][j];
            if (!(v >= 0.0 && v <= 1.0) || std::isnan(v)) {
                char buf[128];
                std::snprintf(buf, sizeof buf,
                              "entry (%d,%d) = %g outside [0,1]", i, j, v);
                return buf;
            }
            sum += v;
        }
        if (std::fabs(sum - 1.0) > tol) {
            char buf[128];
            // volsched-lint: allow(R3): validation error message, not a record
            std::snprintf(buf, sizeof buf, "row %d sums to %.12g, expected 1",
                          i, sum);
            return buf;
        }
    }
    return {};
}

TransitionMatrix TransitionMatrix::multiply(
    const TransitionMatrix& other) const noexcept {
    std::array<std::array<double, 3>, 3> out{};
    for (int i = 0; i < kNumStates; ++i)
        for (int k = 0; k < kNumStates; ++k) {
            const double a = rows_[i][k];
            if (a == 0.0) continue;
            for (int j = 0; j < kNumStates; ++j)
                out[i][j] += a * other.rows_[k][j];
        }
    return TransitionMatrix(out);
}

TransitionMatrix TransitionMatrix::power(unsigned k) const noexcept {
    TransitionMatrix result; // identity
    TransitionMatrix base = *this;
    while (k > 0) {
        if (k & 1u) result = result.multiply(base);
        base = base.multiply(base);
        k >>= 1u;
    }
    return result;
}

std::string TransitionMatrix::to_string() const {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "[u: %.4f %.4f %.4f | r: %.4f %.4f %.4f | d: %.4f %.4f %.4f]",
                  rows_[0][0], rows_[0][1], rows_[0][2], rows_[1][0],
                  rows_[1][1], rows_[1][2], rows_[2][0], rows_[2][1],
                  rows_[2][2]);
    return buf;
}

} // namespace volsched::markov
