#pragma once
/// \file chain.hpp
/// A 3-state availability Markov chain: transition matrix + cached limit
/// (stationary) distribution + state sampling.

#include <array>

#include "markov/transition.hpp"
#include "util/rng.hpp"

namespace volsched::markov {

/// Limit distribution (pi_u, pi_r, pi_d) of a chain (Section 5).
struct Stationary {
    double pi_u = 0.0;
    double pi_r = 0.0;
    double pi_d = 0.0;

    [[nodiscard]] double operator[](ProcState s) const noexcept {
        switch (s) {
            case ProcState::Up: return pi_u;
            case ProcState::Reclaimed: return pi_r;
            case ProcState::Down: return pi_d;
        }
        return 0.0;
    }
};

/// Immutable chain: matrix validated at construction, stationary distribution
/// solved once.  Throws std::invalid_argument on an invalid matrix.
class MarkovChain {
public:
    explicit MarkovChain(const TransitionMatrix& matrix);

    [[nodiscard]] const TransitionMatrix& matrix() const noexcept { return matrix_; }
    [[nodiscard]] const Stationary& stationary() const noexcept { return stationary_; }

    /// Samples the state at slot t+1 given the state at slot t.
    [[nodiscard]] ProcState sample_next(ProcState current,
                                        util::Rng& rng) const noexcept;

    /// Samples a state from the stationary distribution (used to start
    /// processors "in the steady-state regime" instead of all-UP).
    [[nodiscard]] ProcState sample_stationary(util::Rng& rng) const noexcept;

    /// Stationary distribution via power iteration — an independent
    /// cross-check of the direct linear solve, used in tests.
    [[nodiscard]] Stationary stationary_power_iteration(
        int iterations = 10000) const noexcept;

private:
    static Stationary solve_stationary(const TransitionMatrix& m);

    TransitionMatrix matrix_;
    Stationary stationary_;
    // Per-row cumulative probabilities for O(1)-ish inverse-CDF sampling.
    std::array<std::array<double, 3>, 3> cumulative_{};
};

} // namespace volsched::markov
