#pragma once
/// \file expectation_cache.hpp
/// Memoized front-end for the closed-form reliability formulas of
/// expectation.hpp.  The paper's informed heuristics (EMCT/EMCT*, LW/LW*,
/// UD/UD*, hybrid) re-evaluate P+, E(up), E(W) and P_UD once per (worker,
/// slot) even though the inputs only depend on the worker's transition
/// matrix — which never changes during a run.  This cache keys every
/// quantity on the chain's identity (and, for the workload-parameterized
/// ones, on the exact bit pattern of `k`) so each value is computed once
/// per transition matrix instead of once per score evaluation.
///
/// Contract: **bit-identical by construction.**  Every getter returns the
/// exact double the corresponding `markov::` free function would return,
/// including the documented edge cases:
///  - absorbing RECLAIMED (`P_rr == 1`): `p_plus == P_uu`, `e_up` is 1 or
///    +infinity;
///  - `P+ == 0`: `e_up`/`e_workload` return +infinity, `log_p_plus`
///    returns -infinity;
///  - `workload <= 0` returns 0 and `workload <= 1` returns `workload`
///    from `e_workload` (no cache interaction at all, like the early
///    returns of the free function);
///  - `k <= 1` returns 1 and `k <= 2` returns `1 - P_ud` from
///    `p_ud_approx`, again before any memo lookup.
/// The memo key for `p_ud_approx` / `p_ud_exact` is the *exact* `k` (bit
/// pattern for doubles), a degenerate "bucket" that can never change a
/// returned value.
///
/// Invalidation: an entry is invalidated **only** when the chain's
/// transition matrix changes.  Identity is the `MarkovChain*` address;
/// each entry snapshots the 9 matrix probabilities and re-validates them
/// on every chain-keyed access, so address reuse (a chain destroyed and
/// another constructed at the same address) is detected and never serves
/// stale values.
///
/// Hot path: the scoring loops resolve each belief once per scheduling
/// round with pin() — one hash probe plus the matrix validation — and
/// then read every quantity through the returned Handle, which is a
/// branch and a load.  A Handle stays valid until the cache is cleared or
/// the pinned chain's entry is invalidated by a chain-keyed access; pin
/// again at every round boundary (GreedyScheduler does this from
/// begin_round) rather than holding handles across rounds or runs.
///
/// Thread-safety: none — one cache per scheduler instance.  The sweep and
/// campaign drivers construct schedulers per instance per worker thread
/// (`exp::run_instance` via the registry), so caches are never shared
/// across threads; the tsan preset runs the cache property tests to keep
/// it that way.

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "markov/chain.hpp"
#include "markov/expectation.hpp"

namespace volsched::markov {

class ExpectationCache {
    struct Entry; // defined below; Handle needs the name first

public:
    /// A pinned, validated cache entry (see pin()).  Null `entry` with a
    /// non-null `chain` means the cache is bypassed: every accessor
    /// recomputes from the chain like the free functions do.  A
    /// default-constructed Handle (both null) must not be dereferenced —
    /// callers keep their existing `belief == nullptr` branches.
    class Handle {
        friend class ExpectationCache;
        Entry* entry = nullptr;
        const MarkovChain* chain = nullptr;
    };

    /// Resolve `chain` to its cache entry — one hash probe plus the
    /// matrix re-validation — and return a Handle for repeated cheap
    /// access.  Under bypass the map is not touched at all and the Handle
    /// routes every accessor to the free functions.
    Handle pin(const MarkovChain& chain) {
        Handle h;
        h.chain = &chain;
        if (!bypass_) h.entry = &entry(chain);
        return h;
    }

    /// Lemma 1 P+ (== markov::p_plus bit-for-bit).
    double p_plus(const MarkovChain& chain);
    /// std::log(p_plus): -infinity when P+ == 0.  Cached so LW's score
    /// `-ct * log(P+)` costs one load instead of a log per worker.
    double log_p_plus(const MarkovChain& chain);
    /// Theorem 2 E(up) (== markov::e_up bit-for-bit).
    double e_up(const MarkovChain& chain);
    /// Theorem 2 E(W) (== markov::e_workload bit-for-bit); computed from
    /// the cached E(up) with the free function's exact branch structure.
    double e_workload(const MarkovChain& chain, double workload);
    /// Exact P_UD(k) (== markov::p_ud_exact bit-for-bit), memoized per k.
    double p_ud_exact(const MarkovChain& chain, unsigned k);
    /// Approximate P_UD(k) (== markov::p_ud_approx with the chain's own
    /// stationary weights, bit-for-bit), memoized per exact k bits.
    double p_ud_approx(const MarkovChain& chain, double k);
    /// First-passage expectations (== the markov:: functions bit-for-bit).
    double mean_time_to_down(const MarkovChain& chain);
    double mean_time_to_down_from_reclaimed(const MarkovChain& chain);
    double mean_recovery_time(const MarkovChain& chain);

    /// Handle-keyed twins of the getters above, bit-identical to both the
    /// chain-keyed getters and the free functions.  No hash probe, no
    /// re-validation: pin() already did both for this round.
    double p_plus(Handle h) {
        if (h.entry == nullptr) return markov::p_plus(h.chain->matrix());
        return scalar(*h.entry, kPPlus);
    }
    double log_p_plus(Handle h) {
        if (h.entry == nullptr)
            return std::log(markov::p_plus(h.chain->matrix()));
        return scalar(*h.entry, kLogPPlus);
    }
    double e_up(Handle h) {
        if (h.entry == nullptr) return markov::e_up(h.chain->matrix());
        return scalar(*h.entry, kEUp);
    }
    double e_workload(Handle h, double workload) {
        if (h.entry == nullptr)
            return markov::e_workload(h.chain->matrix(), workload);
        if (workload <= 0.0) return 0.0;
        if (workload <= 1.0) return workload;
        const double eu = scalar(*h.entry, kEUp);
        if (std::isinf(eu)) return std::numeric_limits<double>::infinity();
        return 1.0 + (workload - 1.0) * eu;
    }
    double p_ud_approx(Handle h, double k) {
        if (h.entry == nullptr) {
            const Stationary& pi = h.chain->stationary();
            return markov::p_ud_approx(h.chain->matrix(), pi.pi_u, pi.pi_r,
                                       k);
        }
        if (k <= 1.0) return 1.0;
        return p_ud_approx_entry(*h.entry, k);
    }

    /// Counter sanity: a miss is a fresh computation, a hit a memoized
    /// return (one call may count several, e.g. p_ud_approx touches both
    /// its per-chain ingredients and the per-k memo).  Early-outs that
    /// the free functions take before touching any chain quantity
    /// (`workload <= 1`, `k <= 1`) count as neither: no work avoided,
    /// none done.
    [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
    [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
    /// Number of entries discarded because a chain's matrix changed (or
    /// its address was reused by a different chain).
    [[nodiscard]] std::uint64_t invalidations() const noexcept {
        return invalidations_;
    }
    /// Number of distinct chains currently cached.
    [[nodiscard]] std::size_t size() const noexcept {
        return entries_.size();
    }
    void clear() noexcept;

    /// Benchmark hook: when set, every getter forwards straight to the
    /// markov:: free function (counters untouched) and pin() skips the
    /// map, turning the cache off without recompiling — the same-binary
    /// A/B used by bench_engine's scoring-dominated regime.  Not for
    /// concurrent use, and not mid-round: flip it only while no scheduler
    /// is running (handles pinned before the flip keep their pin-time
    /// behavior).
    static void set_bypass(bool on) noexcept { bypass_ = on; }
    [[nodiscard]] static bool bypassed() noexcept { return bypass_; }

private:
    enum Scalar : std::size_t {
        kPPlus = 0,
        kLogPPlus,
        kEUp,
        kMeanTimeToDown,
        kMeanTimeToDownFromReclaimed,
        kMeanRecoveryTime,
        kScalarCount
    };

    /// Open-addressing memo for p_ud_approx's power term, keyed by the
    /// bit pattern of k.  Key 0 marks an empty slot — safe because only
    /// k > 2 reaches the memo, and +0.0 is the sole double with all-zero
    /// bits.  A plain power-of-two linear-probe table: a hit costs a
    /// handful of cycles where std::pow costs dozens.
    struct UdMemo {
        std::vector<std::uint64_t> keys;
        std::vector<double> vals;
        std::size_t count = 0;

        [[nodiscard]] static std::size_t slot_of(std::uint64_t key,
                                                 std::size_t mask) noexcept {
            return static_cast<std::size_t>(
                       (key * 0x9E3779B97F4A7C15ULL) >> 32) &
                   mask;
        }
        /// Returns the value slot for `key`, nullptr when absent.
        [[nodiscard]] const double* find(std::uint64_t key) const noexcept {
            if (keys.empty()) return nullptr;
            const std::size_t mask = keys.size() - 1;
            for (std::size_t s = slot_of(key, mask);; s = (s + 1) & mask) {
                if (keys[s] == key) return &vals[s];
                if (keys[s] == 0) return nullptr;
            }
        }
        void insert(std::uint64_t key, double value) {
            if (keys.empty() || 4 * (count + 1) > 3 * keys.size()) grow();
            const std::size_t mask = keys.size() - 1;
            std::size_t s = slot_of(key, mask);
            while (keys[s] != 0) s = (s + 1) & mask;
            keys[s] = key;
            vals[s] = value;
            ++count;
        }
        void grow() {
            const std::size_t cap = keys.empty() ? 16 : keys.size() * 2;
            std::vector<std::uint64_t> old_keys = std::move(keys);
            std::vector<double> old_vals = std::move(vals);
            keys.assign(cap, 0);
            vals.assign(cap, 0.0);
            const std::size_t mask = cap - 1;
            for (std::size_t i = 0; i < old_keys.size(); ++i) {
                if (old_keys[i] == 0) continue;
                std::size_t s = slot_of(old_keys[i], mask);
                while (keys[s] != 0) s = (s + 1) & mask;
                keys[s] = old_keys[i];
                vals[s] = old_vals[i];
            }
        }
    };

    struct Entry {
        TransitionMatrix matrix; // snapshot for change detection
        // Stationary weights snapshotted with the matrix (they are a pure
        // function of it), so handle accessors never chase the chain.
        double pi_u = 0.0;
        double pi_r = 0.0;
        double value[kScalarCount] = {};
        bool ready[kScalarCount] = {};
        // p_ud_approx ingredients (computed together on first use).
        bool ud_ready = false;
        bool ud_denom_ok = false;
        double ud_first = 0.0;
        double ud_per_slot = 0.0;
        std::unordered_map<unsigned, double> ud_exact;
        UdMemo ud_approx;
    };

    Entry& entry(const MarkovChain& chain);

    double scalar(Entry& e, Scalar which) {
        if (e.ready[which]) {
            ++hits_;
            return e.value[which];
        }
        const TransitionMatrix& m = e.matrix;
        double v = 0.0;
        switch (which) {
            case kPPlus: v = markov::p_plus(m); break;
            case kLogPPlus: v = std::log(markov::p_plus(m)); break;
            case kEUp: v = markov::e_up(m); break;
            case kMeanTimeToDown: v = markov::mean_time_to_down(m); break;
            case kMeanTimeToDownFromReclaimed:
                v = markov::mean_time_to_down_from_reclaimed(m);
                break;
            case kMeanRecoveryTime:
                v = markov::mean_recovery_time(m);
                break;
            case kScalarCount: break; // unreachable
        }
        e.value[which] = v;
        e.ready[which] = true;
        ++misses_;
        return v;
    }

    /// The shared post-`k <= 1` body of p_ud_approx, mirroring the free
    /// function's branch order exactly.
    double p_ud_approx_entry(Entry& e, double k) {
        if (!e.ud_ready) {
            e.ud_first = 1.0 - e.matrix.p_ud();
            const double denom = e.pi_u + e.pi_r;
            e.ud_denom_ok = denom > 0.0;
            e.ud_per_slot =
                e.ud_denom_ok
                    ? 1.0 - (e.matrix.p_ud() * e.pi_u +
                             e.matrix.p_rd() * e.pi_r) / denom
                    : 0.0;
            e.ud_ready = true;
            ++misses_;
        } else {
            ++hits_;
        }
        if (k <= 2.0) return e.ud_first;
        if (!e.ud_denom_ok) return 0.0;
        if (e.ud_per_slot <= 0.0) return 0.0;
        const std::uint64_t key = std::bit_cast<std::uint64_t>(k);
        if (const double* hit = e.ud_approx.find(key)) {
            ++hits_;
            return *hit;
        }
        const double v = e.ud_first * std::pow(e.ud_per_slot, k - 2.0);
        e.ud_approx.insert(key, v);
        ++misses_;
        return v;
    }

    std::unordered_map<const MarkovChain*, Entry> entries_;
    // Most-recently-used entry: pointers into entries_ stay valid across
    // inserts (node-based map); reset by clear().
    const MarkovChain* mru_chain_ = nullptr;
    Entry* mru_entry_ = nullptr;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t invalidations_ = 0;

    static inline bool bypass_ = false;
};

} // namespace volsched::markov
