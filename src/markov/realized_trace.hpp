#pragma once
/// \file realized_trace.hpp
/// Realized availability traces: each processor's AvailabilityModel stream
/// is sampled **once** into a run-length-encoded (state, length) segment
/// sequence that every heuristic replays.  Before this layer existed the
/// engine re-sampled the whole realization from the seed on every
/// Simulation::run(), so a 19-heuristic instance paid for per-slot Markov
/// sampling 19 times; now the sampling cost is paid once per (seed, model)
/// and replay is a cursor walk over the segments.
///
/// Determinism contract: a realization is a pure function of the master
/// seed (stream = mix_seed(seed, kAvailabilityStream, processor)) and the
/// availability models — never of the heuristic, the thread, the shard, or
/// of *how* the trace is queried.  RNG consumption matches the engine's
/// historical per-slot sampling exactly (one initial_state draw, then one
/// next_state draw per slot, per processor, on a dedicated stream), so
/// realizations are bit-identical to the pre-trace engine by construction.
/// Lazy chunked growth only changes *when* slots are sampled, not their
/// values: slot t depends on draws 0..t of the processor's private stream.
///
/// The run-length encoding additionally answers "when does this processor
/// next change state?" in O(1), which the engine uses to fast-forward dead
/// stretches where every worker is DOWN or RECLAIMED (the next-event-style
/// skip used by simulators such as gacspp, without giving up the slot
/// model).

#include <cstdint>
#include <memory>
#include <vector>

#include "markov/availability.hpp"
#include "markov/state.hpp"
#include "util/rng.hpp"

namespace volsched::markov {

/// Stream-purpose tag for per-processor availability RNG streams; shared
/// with the engine so traces and (historical) in-engine sampling derive the
/// exact same xoshiro streams.
inline constexpr std::uint64_t kAvailabilityStream = 0x41564149ULL; // "AVAI"

/// One processor's realized availability as run-length-encoded segments.
/// Grow-only: querying beyond the realized horizon samples further slots
/// from the model; already-realized segments never change.  Not safe for
/// concurrent growth from multiple threads — share sequentially, or call
/// ensure() up front and read concurrently afterwards.
class RealizedTrace {
public:
    /// Half-open run of identical states: state over slots [begin, end).
    struct Segment {
        ProcState state = ProcState::Up;
        long long begin = 0;
        long long end = 0;

        [[nodiscard]] long long length() const noexcept { return end - begin; }
    };

    /// Takes ownership of a freshly-cloned model; `stream_seed` seeds the
    /// processor's private availability stream.
    RealizedTrace(std::unique_ptr<AvailabilityModel> model,
                  std::uint64_t stream_seed);

    /// Extends the realization to cover slots [0, horizon).  No-op when
    /// already realized that far.
    void ensure(long long horizon);

    /// Slots realized so far.
    [[nodiscard]] long long realized() const noexcept { return realized_; }

    /// The RLE segments realized so far.  Contiguous, non-empty, adjacent
    /// segments hold different states; the last segment may still grow.
    [[nodiscard]] const std::vector<Segment>& segments() const noexcept {
        return segments_;
    }

    /// Random-access state lookup (binary search); prefer TraceCursor for
    /// the engine's monotone per-slot walk.
    [[nodiscard]] ProcState state_at(long long t);

private:
    friend class TraceCursor;

    std::unique_ptr<AvailabilityModel> model_;
    util::Rng rng_;
    std::vector<Segment> segments_;
    long long realized_ = 0;
};

/// O(1)-amortized forward iteration over one RealizedTrace.  Each engine
/// run owns its own cursors; many cursors may walk one shared trace.
/// Queries must be slot-monotone (non-decreasing t), which is exactly the
/// engine's access pattern.
class TraceCursor {
public:
    explicit TraceCursor(RealizedTrace& trace) noexcept : trace_(&trace) {}

    /// State at slot t (t >= the previous query's t).  Extends the trace
    /// on demand with chunked doubling so n monotone queries cost O(n)
    /// sampling total.
    [[nodiscard]] ProcState state_at(long long t);

    /// First slot > t whose state differs from state_at(t), capped at
    /// `limit`: returns min(end of the segment containing t, limit).
    /// Extends the realization as needed (never past `limit` on account of
    /// this query alone).
    [[nodiscard]] long long next_change_at(long long t, long long limit);

    /// Rewind to slot 0 for a fresh monotone walk.
    void reset() noexcept { seg_ = 0; }

private:
    RealizedTrace* trace_;
    std::size_t seg_ = 0;
};

/// The full realization of one simulation: one RealizedTrace per
/// processor, streams derived exactly as the engine derives them
/// (mix_seed(seed, kAvailabilityStream, q)).  Immutable in value — growth
/// only materializes more of the same seed-determined realization — and
/// shared across every heuristic run on the instance.
class RealizedTraces {
public:
    /// Clones each model and seeds each processor's private stream from
    /// `seed`.  `models` must be non-null, one per processor.
    RealizedTraces(
        const std::vector<std::unique_ptr<AvailabilityModel>>& models,
        std::uint64_t seed);

    [[nodiscard]] int size() const noexcept {
        return static_cast<int>(traces_.size());
    }
    /// The seed the realization derives from (builder validation hook).
    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

    [[nodiscard]] RealizedTrace& trace(int q) { return traces_[q]; }
    [[nodiscard]] const RealizedTrace& trace(int q) const {
        return traces_[q];
    }

    /// Realizes every processor's trace up to `horizon` slots; after this,
    /// concurrent read-only replay (cursors) of slots below `horizon` is
    /// safe.
    void ensure(long long horizon);

private:
    std::vector<RealizedTrace> traces_;
    std::uint64_t seed_ = 0;
};

} // namespace volsched::markov
