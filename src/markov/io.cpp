#include "markov/io.hpp"

#include <array>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace volsched::markov {

void write_matrices(std::ostream& out,
                    const std::vector<TransitionMatrix>& matrices) {
    out << "# volsched transition matrices: 9 row-major probabilities per "
           "line (u r d)\n";
    out.precision(17);
    for (const auto& m : matrices) {
        for (int i = 0; i < kNumStates; ++i)
            for (int j = 0; j < kNumStates; ++j) {
                if (i || j) out << ' ';
                out << m(static_cast<ProcState>(i), static_cast<ProcState>(j));
            }
        out << '\n';
    }
}

std::vector<TransitionMatrix> read_matrices(std::istream& in) {
    std::vector<TransitionMatrix> out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        std::istringstream is(line);
        std::array<std::array<double, 3>, 3> rows{};
        for (int i = 0; i < kNumStates; ++i)
            for (int j = 0; j < kNumStates; ++j)
                if (!(is >> rows[i][j]))
                    throw std::invalid_argument(
                        "read_matrices: expected 9 probabilities per line");
        double extra;
        if (is >> extra)
            throw std::invalid_argument(
                "read_matrices: trailing values on matrix line");
        TransitionMatrix m(rows);
        if (auto err = m.validate(1e-9); !err.empty())
            throw std::invalid_argument("read_matrices: " + err);
        out.push_back(m);
    }
    return out;
}

std::vector<MarkovChain> read_chains(std::istream& in) {
    std::vector<MarkovChain> chains;
    for (const auto& m : read_matrices(in)) chains.emplace_back(m);
    return chains;
}

} // namespace volsched::markov
