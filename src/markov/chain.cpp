#include "markov/chain.hpp"

#include <cmath>
#include <stdexcept>

namespace volsched::markov {
namespace {

/// Power iteration from the uniform start — the fallback for singular
/// (reducible / degenerate) chains, where it converges to *a* stationary
/// distribution, which is the sensible answer for simulation purposes.
Stationary power_iterate(const TransitionMatrix& m, int iterations) {
    std::array<double, 3> pi{1.0 / 3, 1.0 / 3, 1.0 / 3};
    for (int it = 0; it < iterations; ++it) {
        std::array<double, 3> next{};
        for (int j = 0; j < kNumStates; ++j)
            for (int i = 0; i < kNumStates; ++i)
                next[j] += pi[i] * m(static_cast<ProcState>(i),
                                     static_cast<ProcState>(j));
        double diff = 0.0;
        for (int j = 0; j < kNumStates; ++j)
            diff += std::fabs(next[j] - pi[j]);
        pi = next;
        if (diff < 1e-15) break;
    }
    return {pi[0], pi[1], pi[2]};
}

} // namespace


MarkovChain::MarkovChain(const TransitionMatrix& matrix) : matrix_(matrix) {
    if (auto err = matrix.validate(); !err.empty())
        throw std::invalid_argument("MarkovChain: invalid matrix: " + err);
    stationary_ = solve_stationary(matrix_);
    for (int i = 0; i < kNumStates; ++i) {
        double acc = 0.0;
        for (int j = 0; j < kNumStates; ++j) {
            acc += matrix_(static_cast<ProcState>(i), static_cast<ProcState>(j));
            cumulative_[i][j] = acc;
        }
        // Force the last cumulative entry to exactly 1 so a uniform draw of
        // 1-epsilon can never fall off the end due to rounding.
        cumulative_[i][kNumStates - 1] = 1.0;
    }
}

ProcState MarkovChain::sample_next(ProcState current,
                                   util::Rng& rng) const noexcept {
    const double r = rng.uniform();
    const auto& cum = cumulative_[static_cast<int>(current)];
    if (r < cum[0]) return ProcState::Up;
    if (r < cum[1]) return ProcState::Reclaimed;
    return ProcState::Down;
}

ProcState MarkovChain::sample_stationary(util::Rng& rng) const noexcept {
    const double r = rng.uniform();
    if (r < stationary_.pi_u) return ProcState::Up;
    if (r < stationary_.pi_u + stationary_.pi_r) return ProcState::Reclaimed;
    return ProcState::Down;
}

Stationary MarkovChain::stationary_power_iteration(int iterations) const noexcept {
    return power_iterate(matrix_, iterations);
}

Stationary MarkovChain::solve_stationary(const TransitionMatrix& m) {
    // Solve pi * P = pi, sum(pi) = 1, i.e. (P^T - I) pi = 0 with the third
    // equation replaced by the normalization constraint.  3x3 Gaussian
    // elimination with partial pivoting; falls back to power iteration for
    // (near-)singular systems such as reducible chains.
    double a[3][4] = {};
    for (int i = 0; i < 2; ++i) { // two eigen-equations suffice
        for (int j = 0; j < 3; ++j)
            a[i][j] = m(static_cast<ProcState>(j), static_cast<ProcState>(i)) -
                      (i == j ? 1.0 : 0.0);
        a[i][3] = 0.0;
    }
    a[2][0] = a[2][1] = a[2][2] = 1.0;
    a[2][3] = 1.0;

    for (int col = 0; col < 3; ++col) {
        int pivot = col;
        for (int r = col + 1; r < 3; ++r)
            if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
        if (std::fabs(a[pivot][col]) < 1e-13) {
            return power_iterate(m, 10000);
        }
        for (int k = 0; k < 4; ++k) std::swap(a[col][k], a[pivot][k]);
        for (int r = 0; r < 3; ++r) {
            if (r == col) continue;
            const double f = a[r][col] / a[col][col];
            for (int k = col; k < 4; ++k) a[r][k] -= f * a[col][k];
        }
    }
    Stationary pi;
    pi.pi_u = a[0][3] / a[0][0];
    pi.pi_r = a[1][3] / a[1][1];
    pi.pi_d = a[2][3] / a[2][2];
    // Clamp tiny negative round-off and renormalize.
    pi.pi_u = std::max(pi.pi_u, 0.0);
    pi.pi_r = std::max(pi.pi_r, 0.0);
    pi.pi_d = std::max(pi.pi_d, 0.0);
    const double sum = pi.pi_u + pi.pi_r + pi.pi_d;
    if (sum > 0) {
        pi.pi_u /= sum;
        pi.pi_r /= sum;
        pi.pi_d /= sum;
    }
    return pi;
}

} // namespace volsched::markov
