#include "markov/expectation_cache.hpp"

namespace volsched::markov {
namespace {

/// Exact (bitwise-equality) matrix comparison: invalidation must trigger on
/// *any* change, and probabilities are never NaN in a validated chain.
bool same_matrix(const TransitionMatrix& a,
                 const TransitionMatrix& b) noexcept {
    return a.p_uu() == b.p_uu() && a.p_ur() == b.p_ur() &&
           a.p_ud() == b.p_ud() && a.p_ru() == b.p_ru() &&
           a.p_rr() == b.p_rr() && a.p_rd() == b.p_rd() &&
           a.p_du() == b.p_du() && a.p_dr() == b.p_dr() &&
           a.p_dd() == b.p_dd();
}

} // namespace

ExpectationCache::Entry& ExpectationCache::entry(const MarkovChain& chain) {
    // MRU fast path: one score evaluation typically reads two or three
    // quantities of the same chain back to back — skip the hash probe for
    // those.  The matrix re-validation stays even here: address reuse must
    // be caught on the very next access.
    if (&chain == mru_chain_ &&
        same_matrix(mru_entry_->matrix, chain.matrix()))
        return *mru_entry_;
    auto [it, inserted] = entries_.try_emplace(&chain);
    if (inserted) {
        it->second.matrix = chain.matrix();
        it->second.pi_u = chain.stationary().pi_u;
        it->second.pi_r = chain.stationary().pi_r;
    } else if (!same_matrix(it->second.matrix, chain.matrix())) {
        it->second = Entry{};
        it->second.matrix = chain.matrix();
        it->second.pi_u = chain.stationary().pi_u;
        it->second.pi_r = chain.stationary().pi_r;
        ++invalidations_;
    }
    mru_chain_ = &chain;
    mru_entry_ = &it->second;
    return it->second;
}

double ExpectationCache::p_plus(const MarkovChain& chain) {
    if (bypass_) return markov::p_plus(chain.matrix());
    return scalar(entry(chain), kPPlus);
}

double ExpectationCache::log_p_plus(const MarkovChain& chain) {
    if (bypass_) return std::log(markov::p_plus(chain.matrix()));
    return scalar(entry(chain), kLogPPlus);
}

double ExpectationCache::e_up(const MarkovChain& chain) {
    if (bypass_) return markov::e_up(chain.matrix());
    return scalar(entry(chain), kEUp);
}

double ExpectationCache::e_workload(const MarkovChain& chain,
                                    double workload) {
    if (bypass_) return markov::e_workload(chain.matrix(), workload);
    // Same early-outs as the free function, taken before any cache work.
    if (workload <= 0.0) return 0.0;
    if (workload <= 1.0) return workload;
    const double eu = scalar(entry(chain), kEUp);
    if (std::isinf(eu)) return std::numeric_limits<double>::infinity();
    return 1.0 + (workload - 1.0) * eu;
}

double ExpectationCache::p_ud_exact(const MarkovChain& chain, unsigned k) {
    if (bypass_) return markov::p_ud_exact(chain.matrix(), k);
    if (k <= 1) return 1.0;
    Entry& e = entry(chain);
    const auto it = e.ud_exact.find(k);
    if (it != e.ud_exact.end()) {
        ++hits_;
        return it->second;
    }
    const double v = markov::p_ud_exact(e.matrix, k);
    e.ud_exact.emplace(k, v);
    ++misses_;
    return v;
}

double ExpectationCache::p_ud_approx(const MarkovChain& chain, double k) {
    if (bypass_) {
        const Stationary& pi = chain.stationary();
        return markov::p_ud_approx(chain.matrix(), pi.pi_u, pi.pi_r, k);
    }
    // Mirror the free function's branch order exactly: the k <= 1 return
    // precedes any chain quantity, and k <= 2 stops at the memoized
    // first-slot factor — neither ever reaches the power term.
    if (k <= 1.0) return 1.0;
    return p_ud_approx_entry(entry(chain), k);
}

double ExpectationCache::mean_time_to_down(const MarkovChain& chain) {
    if (bypass_) return markov::mean_time_to_down(chain.matrix());
    return scalar(entry(chain), kMeanTimeToDown);
}

double ExpectationCache::mean_time_to_down_from_reclaimed(
    const MarkovChain& chain) {
    if (bypass_)
        return markov::mean_time_to_down_from_reclaimed(chain.matrix());
    return scalar(entry(chain), kMeanTimeToDownFromReclaimed);
}

double ExpectationCache::mean_recovery_time(const MarkovChain& chain) {
    if (bypass_) return markov::mean_recovery_time(chain.matrix());
    return scalar(entry(chain), kMeanRecoveryTime);
}

void ExpectationCache::clear() noexcept {
    mru_chain_ = nullptr;
    mru_entry_ = nullptr;
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
    invalidations_ = 0;
}

} // namespace volsched::markov
