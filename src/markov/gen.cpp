#include "markov/gen.hpp"

namespace volsched::markov {

TransitionMatrix generate_matrix(util::Rng& rng, const ChainRecipe& recipe) {
    std::array<std::array<double, 3>, 3> rows{};
    for (int i = 0; i < kNumStates; ++i) {
        const double self = rng.uniform(recipe.self_lo, recipe.self_hi);
        const double other = 0.5 * (1.0 - self);
        for (int j = 0; j < kNumStates; ++j)
            rows[i][j] = (i == j) ? self : other;
    }
    return TransitionMatrix(rows);
}

MarkovChain generate_chain(util::Rng& rng, const ChainRecipe& recipe) {
    return MarkovChain(generate_matrix(rng, recipe));
}

std::vector<MarkovChain> generate_chains(std::size_t count, util::Rng& rng,
                                         const ChainRecipe& recipe) {
    std::vector<MarkovChain> chains;
    chains.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        chains.push_back(generate_chain(rng, recipe));
    return chains;
}

} // namespace volsched::markov
