#include "markov/availability.hpp"

namespace volsched::markov {

MarkovAvailability::MarkovAvailability(MarkovChain chain, InitialState init)
    : chain_(std::move(chain)), init_(init) {}

ProcState MarkovAvailability::initial_state(util::Rng& rng) {
    switch (init_) {
        case InitialState::AlwaysUp: return ProcState::Up;
        case InitialState::Stationary: return chain_.sample_stationary(rng);
    }
    return ProcState::Up;
}

ProcState MarkovAvailability::next_state(ProcState current, util::Rng& rng) {
    return chain_.sample_next(current, rng);
}

std::unique_ptr<AvailabilityModel> MarkovAvailability::clone() const {
    return std::make_unique<MarkovAvailability>(chain_, init_);
}

} // namespace volsched::markov
