#pragma once
/// \file gen.hpp
/// Random chain generation following the experimental recipe of Section 7:
/// self-transition probabilities P(x,x) drawn uniformly in [0.90, 0.99] and
/// the remaining mass split evenly, P(x,y) = 0.5 * (1 - P(x,x)) for y != x.

#include <vector>

#include "markov/chain.hpp"
#include "util/rng.hpp"

namespace volsched::markov {

/// Bounds for the self-transition draw; defaults are the paper's values.
struct ChainRecipe {
    double self_lo = 0.90;
    double self_hi = 0.99;
};

/// Draws one transition matrix per the recipe.
TransitionMatrix generate_matrix(util::Rng& rng,
                                 const ChainRecipe& recipe = {});

/// Draws a full chain (matrix + stationary distribution).
MarkovChain generate_chain(util::Rng& rng, const ChainRecipe& recipe = {});

/// Draws `count` independent chains, one per processor.
std::vector<MarkovChain> generate_chains(std::size_t count, util::Rng& rng,
                                         const ChainRecipe& recipe = {});

} // namespace volsched::markov
