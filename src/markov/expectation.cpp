#include "markov/expectation.hpp"

#include <cmath>
#include <limits>

namespace volsched::markov {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// 2x2 matrix over the {u, r} states, used for the exact P_UD computation.
struct M2 {
    double a, b, c, d; // [[a b],[c d]]

    M2 multiply(const M2& o) const noexcept {
        return {a * o.a + b * o.c, a * o.b + b * o.d, c * o.a + d * o.c,
                c * o.b + d * o.d};
    }
};

M2 power2(M2 base, unsigned k) noexcept {
    M2 result{1.0, 0.0, 0.0, 1.0};
    while (k > 0) {
        if (k & 1u) result = result.multiply(base);
        base = base.multiply(base);
        k >>= 1u;
    }
    return result;
}

} // namespace

double p_plus(const TransitionMatrix& m) noexcept {
    const double denom = 1.0 - m.p_rr();
    if (denom <= 0.0) return m.p_uu(); // RECLAIMED absorbing: never comes back
    return m.p_uu() + m.p_ur() * m.p_ru() / denom;
}

double e_up(const TransitionMatrix& m) noexcept {
    const double one_minus_rr = 1.0 - m.p_rr();
    if (one_minus_rr <= 0.0) {
        // RECLAIMED is absorbing; conditioned on returning UP the only path
        // is the direct u->u transition, which takes exactly one slot.
        return m.p_uu() > 0.0 ? 1.0 : kInf;
    }
    const double num = m.p_ur() * m.p_ru();
    const double puu = m.p_uu();
    if (puu <= 0.0) {
        if (num <= 0.0) return kInf; // no path back to UP at all
        // z -> infinity: every return detours through RECLAIMED.
        return 1.0 + 1.0 / one_minus_rr;
    }
    const double z = num / (puu * one_minus_rr);
    return 1.0 + z / (one_minus_rr * (1.0 + z));
}

double e_workload(const TransitionMatrix& m, double workload) noexcept {
    if (workload <= 0.0) return 0.0;
    if (workload <= 1.0) return workload; // already UP for the current slot
    const double eu = e_up(m);
    if (std::isinf(eu)) return kInf;
    return 1.0 + (workload - 1.0) * eu;
}

double workload_success_probability(const TransitionMatrix& m,
                                    double workload) noexcept {
    if (workload <= 1.0) return 1.0;
    return std::pow(p_plus(m), workload - 1.0);
}

double p_ud_exact(const TransitionMatrix& m, unsigned k) noexcept {
    if (k <= 1) return 1.0;
    const M2 base{m.p_uu(), m.p_ur(), m.p_ru(), m.p_rr()};
    const M2 mk = power2(base, k - 1);
    // Start in u: row u of M^(k-1) sums the probability mass of all paths
    // that stay within {u, r} for k-1 transitions.
    return mk.a + mk.b;
}

namespace {

/// Solves the 2x2 first-passage system
///   h_a = 1 + p_aa h_a + p_ab h_b
///   h_b = 1 + p_ba h_a + p_bb h_b
/// and returns h_a; +infinity when the absorbing target is unreachable
/// (singular system).
double first_passage(double p_aa, double p_ab, double p_ba,
                     double p_bb) noexcept {
    // (I - Q) h = 1 with Q = [[p_aa, p_ab], [p_ba, p_bb]].
    const double a = 1.0 - p_aa;
    const double b = -p_ab;
    const double c = -p_ba;
    const double d = 1.0 - p_bb;
    const double det = a * d - b * c;
    if (det <= 1e-15) return kInf;
    // h_a = (d*1 - b*1) / det by Cramer's rule.
    return (d - b) / det;
}

} // namespace

double mean_time_to_down(const TransitionMatrix& m) noexcept {
    return first_passage(m.p_uu(), m.p_ur(), m.p_ru(), m.p_rr());
}

double mean_time_to_down_from_reclaimed(const TransitionMatrix& m) noexcept {
    // Same system with the roles of u and r swapped for the start state.
    return first_passage(m.p_rr(), m.p_ru(), m.p_ur(), m.p_uu());
}

double mean_recovery_time(const TransitionMatrix& m) noexcept {
    // First passage to UP over the transient states {d, r}.
    return first_passage(m.p_dd(), m.p_dr(), m.p_rd(), m.p_rr());
}

double mean_up_run(const TransitionMatrix& m) noexcept {
    const double exit = 1.0 - m.p_uu();
    return exit <= 0.0 ? kInf : 1.0 / exit;
}

double p_ud_approx(const TransitionMatrix& m, double pi_u, double pi_r,
                   double k) noexcept {
    if (k <= 1.0) return 1.0;
    const double first = 1.0 - m.p_ud();
    if (k <= 2.0) return first;
    const double denom = pi_u + pi_r;
    if (denom <= 0.0) return 0.0; // chain spends all steady-state time DOWN
    const double per_slot =
        1.0 - (m.p_ud() * pi_u + m.p_rd() * pi_r) / denom;
    if (per_slot <= 0.0) return 0.0;
    return first * std::pow(per_slot, k - 2.0);
}

} // namespace volsched::markov
