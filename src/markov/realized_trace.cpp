#include "markov/realized_trace.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace volsched::markov {

namespace {

/// Minimum sampling chunk: small enough that short runs stay cheap, large
/// enough that the doubling growth amortizes the per-call overhead.
constexpr long long kMinChunk = 64;

/// Doubling growth target covering slot t.
long long grow_target(long long realized, long long t) {
    return std::max({t + 1, realized * 2, kMinChunk});
}

} // namespace

// ---------------------------------------------------------------------------
// RealizedTrace
// ---------------------------------------------------------------------------

RealizedTrace::RealizedTrace(std::unique_ptr<AvailabilityModel> model,
                             std::uint64_t stream_seed)
    : model_(std::move(model)), rng_(stream_seed) {
    if (!model_)
        throw std::invalid_argument("RealizedTrace: null availability model");
}

void RealizedTrace::ensure(long long horizon) {
    if (horizon <= realized_) return;
    if (realized_ == 0) {
        const ProcState s = model_->initial_state(rng_);
        segments_.push_back({s, 0, 1});
        realized_ = 1;
    }
    while (realized_ < horizon) {
        Segment& last = segments_.back();
        const ProcState s = model_->next_state(last.state, rng_);
        if (s == last.state)
            ++last.end;
        else
            segments_.push_back({s, realized_, realized_ + 1});
        ++realized_;
    }
}

ProcState RealizedTrace::state_at(long long t) {
    if (t < 0) throw std::out_of_range("RealizedTrace::state_at: t < 0");
    if (t >= realized_) ensure(grow_target(realized_, t));
    const auto it = std::upper_bound(
        segments_.begin(), segments_.end(), t,
        [](long long slot, const Segment& seg) { return slot < seg.end; });
    return it->state;
}

// ---------------------------------------------------------------------------
// TraceCursor
// ---------------------------------------------------------------------------

ProcState TraceCursor::state_at(long long t) {
    if (t >= trace_->realized_)
        trace_->ensure(grow_target(trace_->realized_, t));
    const auto& segs = trace_->segments_;
    assert(t >= segs[seg_].begin && "TraceCursor queries must be monotone");
    while (segs[seg_].end <= t) ++seg_;
    return segs[seg_].state;
}

long long TraceCursor::next_change_at(long long t, long long limit) {
    (void)state_at(t); // position seg_ on the segment containing t
    // While the segment containing t is the trace's open frontier segment,
    // keep sampling: either a different state closes it, or we hit `limit`.
    while (seg_ + 1 == trace_->segments_.size() &&
           trace_->segments_[seg_].end < limit)
        trace_->ensure(
            std::min(limit, grow_target(trace_->realized_, trace_->realized_)));
    return std::min(trace_->segments_[seg_].end, limit);
}

// ---------------------------------------------------------------------------
// RealizedTraces
// ---------------------------------------------------------------------------

RealizedTraces::RealizedTraces(
    const std::vector<std::unique_ptr<AvailabilityModel>>& models,
    std::uint64_t seed)
    : seed_(seed) {
    traces_.reserve(models.size());
    for (std::size_t q = 0; q < models.size(); ++q) {
        if (!models[q])
            throw std::invalid_argument("RealizedTraces: null model");
        traces_.emplace_back(models[q]->clone(),
                             util::mix_seed(seed, kAvailabilityStream, q));
    }
}

void RealizedTraces::ensure(long long horizon) {
    for (auto& trace : traces_) trace.ensure(horizon);
}

} // namespace volsched::markov
