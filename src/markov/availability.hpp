#pragma once
/// \file availability.hpp
/// Pluggable availability-process interface.  The simulator advances each
/// processor's state one slot at a time through this interface, so the same
/// engine runs Markov chains (the paper's model), replayed traces, or
/// semi-Markov processes (the paper's future-work direction).

#include <memory>

#include "markov/chain.hpp"
#include "markov/state.hpp"
#include "util/rng.hpp"

namespace volsched::markov {

/// One availability process for one processor.  Implementations may be
/// stateful (e.g., a semi-Markov sojourn countdown), hence clone() for
/// spawning per-processor instances from a prototype.
class AvailabilityModel {
public:
    virtual ~AvailabilityModel() = default;

    /// State at slot 0.
    virtual ProcState initial_state(util::Rng& rng) = 0;

    /// State at slot t+1 given the state at slot t.
    virtual ProcState next_state(ProcState current, util::Rng& rng) = 0;

    /// Deep copy, resetting any per-run internal state.
    [[nodiscard]] virtual std::unique_ptr<AvailabilityModel> clone() const = 0;
};

/// How processors start at slot 0.
enum class InitialState {
    AlwaysUp,   ///< everyone starts UP (paper experiments start this way)
    Stationary, ///< draw from the chain's limit distribution
};

/// The paper's model: a time-homogeneous 3-state Markov chain.
class MarkovAvailability final : public AvailabilityModel {
public:
    explicit MarkovAvailability(MarkovChain chain,
                                InitialState init = InitialState::AlwaysUp);

    ProcState initial_state(util::Rng& rng) override;
    ProcState next_state(ProcState current, util::Rng& rng) override;
    [[nodiscard]] std::unique_ptr<AvailabilityModel> clone() const override;

    [[nodiscard]] const MarkovChain& chain() const noexcept { return chain_; }

private:
    MarkovChain chain_;
    InitialState init_;
};

} // namespace volsched::markov
