#pragma once
/// \file transition.hpp
/// 3x3 row-stochastic transition matrix over {UP, RECLAIMED, DOWN}.

#include <array>
#include <string>

#include "markov/state.hpp"

namespace volsched::markov {

/// Row-stochastic transition matrix P, where `P(i, j)` is the probability of
/// moving from state `i` at slot t to state `j` at slot t+1 (time-homogeneous,
/// Section 5 of the paper).
class TransitionMatrix {
public:
    /// Identity (processor frozen in its state) — mostly useful in tests.
    TransitionMatrix() noexcept;

    /// Builds from a row-major 3x3 array; `validate()` is NOT called so that
    /// tests can construct deliberately broken matrices.
    explicit TransitionMatrix(
        const std::array<std::array<double, 3>, 3>& rows) noexcept;

    [[nodiscard]] double operator()(ProcState from, ProcState to) const noexcept {
        return rows_[static_cast<int>(from)][static_cast<int>(to)];
    }
    double& operator()(ProcState from, ProcState to) noexcept {
        return rows_[static_cast<int>(from)][static_cast<int>(to)];
    }

    /// Convenience accessors matching the paper's P_{u,u}, P_{u,r}, ... names.
    [[nodiscard]] double p_uu() const noexcept { return (*this)(ProcState::Up, ProcState::Up); }
    [[nodiscard]] double p_ur() const noexcept { return (*this)(ProcState::Up, ProcState::Reclaimed); }
    [[nodiscard]] double p_ud() const noexcept { return (*this)(ProcState::Up, ProcState::Down); }
    [[nodiscard]] double p_ru() const noexcept { return (*this)(ProcState::Reclaimed, ProcState::Up); }
    [[nodiscard]] double p_rr() const noexcept { return (*this)(ProcState::Reclaimed, ProcState::Reclaimed); }
    [[nodiscard]] double p_rd() const noexcept { return (*this)(ProcState::Reclaimed, ProcState::Down); }
    [[nodiscard]] double p_du() const noexcept { return (*this)(ProcState::Down, ProcState::Up); }
    [[nodiscard]] double p_dr() const noexcept { return (*this)(ProcState::Down, ProcState::Reclaimed); }
    [[nodiscard]] double p_dd() const noexcept { return (*this)(ProcState::Down, ProcState::Down); }

    /// Checks that every entry is in [0,1] and each row sums to 1 within
    /// `tol`. Returns an empty string when valid, else a diagnostic.
    [[nodiscard]] std::string validate(double tol = 1e-9) const;

    /// Matrix product (this * other), for k-step transition probabilities.
    [[nodiscard]] TransitionMatrix multiply(const TransitionMatrix& other) const noexcept;

    /// k-th matrix power by repeated squaring; power(0) is the identity.
    [[nodiscard]] TransitionMatrix power(unsigned k) const noexcept;

    /// Human-readable rendering for logs / error messages.
    [[nodiscard]] std::string to_string() const;

private:
    std::array<std::array<double, 3>, 3> rows_;
};

} // namespace volsched::markov
