#pragma once
/// \file io.hpp
/// Plain-text (de)serialization of transition matrices and chains, so that
/// experiment platforms can be frozen to disk and shared: one matrix per
/// line, nine row-major probabilities separated by spaces; `#` comments.

#include <iosfwd>
#include <vector>

#include "markov/chain.hpp"

namespace volsched::markov {

/// Writes one matrix per line (row-major, 17 significant digits so values
/// round-trip exactly).
void write_matrices(std::ostream& out,
                    const std::vector<TransitionMatrix>& matrices);

/// Parses matrices written by write_matrices.  Throws std::invalid_argument
/// on malformed rows or non-stochastic matrices.
std::vector<TransitionMatrix> read_matrices(std::istream& in);

/// Convenience: chains (validated) from a matrix file.
std::vector<MarkovChain> read_chains(std::istream& in);

} // namespace volsched::markov
