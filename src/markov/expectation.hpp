#pragma once
/// \file expectation.hpp
/// Closed-form reliability formulas from Section 5 of the paper:
///  - Lemma 1:  P+ — probability an UP processor is UP again before DOWN.
///  - Theorem 2: E(W) — expected slots to complete a W-slot workload, given
///    the processor never goes DOWN in between.
///  - Section 6.3.3: P_UD(k) — probability of avoiding DOWN for k slots,
///    both the exact matrix-power form and the paper's 1-step approximation.
///
/// These quantities drive the EMCT/EMCT*, LW/LW* and UD/UD* heuristics.

#include "markov/transition.hpp"

namespace volsched::markov {

/// Lemma 1: probability that a processor currently UP will be UP at some
/// later slot without entering DOWN in between:
///   P+ = P_uu + P_ur * P_ru / (1 - P_rr).
/// When P_rr == 1 (absorbing RECLAIMED) the geometric series vanishes and
/// P+ = P_uu.
double p_plus(const TransitionMatrix& m) noexcept;

/// Expected number of slots separating two consecutive UP slots, conditioned
/// on no DOWN in between (the E(up) of Theorem 2's proof):
///   E(up) = 1 + z / ((1 - P_rr)(1 + z)),   z = P_ur P_ru / (P_uu (1 - P_rr)).
/// Returns +infinity when the conditional event has probability zero
/// (P+ == 0).
double e_up(const TransitionMatrix& m) noexcept;

/// Theorem 2: conditional expectation of the number of slots needed by a
/// processor, currently UP, to accumulate `workload` UP slots without going
/// DOWN:
///   E(W) = 1 + (W - 1) * E(up)
///        = W + (W-1) * (P_ur P_ru)/(1-P_rr) / (P_uu (1-P_rr) + P_ur P_ru).
/// `workload` <= 0 returns 0 (nothing to do).
double e_workload(const TransitionMatrix& m, double workload) noexcept;

/// Probability that the whole workload completes before the processor goes
/// DOWN: P+^(W-1) (the processor needs W-1 further UP slots).
double workload_success_probability(const TransitionMatrix& m,
                                    double workload) noexcept;

/// Exact P_UD(k): probability that a processor starting UP does not enter
/// DOWN during k consecutive slots (k >= 1; the current slot counts).
/// Computed as  [1 1] * M^(k-1) * [1 0]^T  where M is the {u,r}-restricted
/// sub-matrix, evaluated by exponentiation-by-squaring.
double p_ud_exact(const TransitionMatrix& m, unsigned k) noexcept;

/// The paper's closed-form approximation of P_UD(k) (Section 6.3.3), which
/// forgets the exact state after the first transition and uses stationary
/// weights for the mixture:
///   P_UD(k) ~= (1 - P_ud) * (1 - (P_ud pi_u + P_rd pi_r)/(pi_u + pi_r))^(k-2).
/// Requires the stationary distribution; k <= 1 returns 1, k == 2 returns
/// (1 - P_ud).
double p_ud_approx(const TransitionMatrix& m, double pi_u, double pi_r,
                   double k) noexcept;

/// Mean time to failure: expected number of slots until the chain first
/// enters DOWN, starting from UP (the current slot not counted).  Solves
/// the 2x2 first-passage system
///   h_u = 1 + P_uu h_u + P_ur h_r,  h_r = 1 + P_ru h_u + P_rr h_r.
/// Returns +infinity when DOWN is unreachable from {u, r}.
double mean_time_to_down(const TransitionMatrix& m) noexcept;

/// Same first-passage expectation started from RECLAIMED.
double mean_time_to_down_from_reclaimed(const TransitionMatrix& m) noexcept;

/// Mean repair time: expected slots until the chain first enters UP,
/// starting from DOWN.  Solves the analogous system over {d, r}.
/// Returns +infinity when UP is unreachable.
double mean_recovery_time(const TransitionMatrix& m) noexcept;

/// Expected length of an uninterrupted UP run (geometric sojourn):
/// 1 / (1 - P_uu); +infinity when P_uu == 1.
double mean_up_run(const TransitionMatrix& m) noexcept;

} // namespace volsched::markov
