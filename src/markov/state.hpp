#pragma once
/// \file state.hpp
/// The three processor availability states of the paper (Section 3.2).

#include <cstdint>
#include <string_view>

namespace volsched::markov {

/// Availability state of a volatile processor.
///
/// - `Up`: available for computation and communication ("u").
/// - `Reclaimed`: temporarily preempted by its owner; ongoing work is
///   suspended and later resumed without loss ("r").
/// - `Down`: crashed; program, staged data and partial results are lost ("d").
enum class ProcState : std::uint8_t { Up = 0, Reclaimed = 1, Down = 2 };

inline constexpr int kNumStates = 3;

/// Single-character code used in traces and debug output (u / r / d).
constexpr char state_code(ProcState s) noexcept {
    switch (s) {
        case ProcState::Up: return 'u';
        case ProcState::Reclaimed: return 'r';
        case ProcState::Down: return 'd';
    }
    return '?';
}

/// Long name, for reports.
constexpr std::string_view state_name(ProcState s) noexcept {
    switch (s) {
        case ProcState::Up: return "UP";
        case ProcState::Reclaimed: return "RECLAIMED";
        case ProcState::Down: return "DOWN";
    }
    return "?";
}

/// Parses a single-character code; returns Down for unknown input so that
/// malformed traces fail safe (a DOWN slot can only delay, never corrupt).
constexpr ProcState state_from_code(char c) noexcept {
    switch (c) {
        case 'u': return ProcState::Up;
        case 'r': return ProcState::Reclaimed;
        default: return ProcState::Down;
    }
}

} // namespace volsched::markov
