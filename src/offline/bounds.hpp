#pragma once
/// \file bounds.hpp
/// Combinatorial lower bounds on the off-line makespan.  Used to prune the
/// exact solver and as quick infeasibility certificates:
///
/// - communication bound: every task needs Tdata slots of data, and at
///   least one program copy (Tprog) must be delivered, through at most
///   ncom transfer slots per time slot; the last-delivered task still
///   needs min_q w_q compute slots afterwards.
///
/// - compute-capacity bound: by slot T, processor q has had up_q(T) UP
///   slots and can have completed at most floor(up_q(T) / w_q) tasks; all
///   m tasks need sum_q floor(up_q(T) / w_q) >= m.  Trace-aware and
///   ignores all communication, hence a valid relaxation.

#include "offline/instance.hpp"

namespace volsched::offline {

/// The communication lower bound in slots (>= 1 for non-trivial instances).
int communication_lower_bound(const OfflineInstance& inst);

/// The compute-capacity lower bound in slots; horizon + 1 when even the
/// full horizon lacks capacity for m tasks.
int compute_lower_bound(const OfflineInstance& inst);

/// max of the individual bounds.
int makespan_lower_bound(const OfflineInstance& inst);

} // namespace volsched::offline
