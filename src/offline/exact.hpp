#pragma once
/// \file exact.hpp
/// Exhaustive branch-and-bound solver for small off-line instances, used to
/// certify the Section 4 artifacts: the MCT non-optimality example and the
/// satisfiable 3SAT gadgets.  The search enumerates, slot by slot, every
/// allocation of the master's ncom transfer slots (program slots, data
/// continuations, and fresh data transfers), with computation always
/// progressing greedily — completing a started task earlier can never hurt,
/// so this restriction preserves optimality.  Identical task sizes make
/// tasks interchangeable; fresh data transfers are canonicalized to (a) the
/// lowest-index task held nowhere, and (b) the lowest-index undone task
/// (allowing deliberate duplicate copies near the end of the schedule).
///
/// Intended for p <= ~8 processors, m <= ~20 tasks, horizon <= ~40 slots.

#include <cstdint>

#include "offline/instance.hpp"

namespace volsched::offline {

struct ExactResult {
    /// True when a schedule completing all tasks within the horizon exists.
    bool feasible = false;
    /// Minimum makespan found (slots); meaningful when `feasible`.
    int makespan = 0;
    /// True when the search space was exhausted (result is proven optimal
    /// over the explored schedule class); false when the node cap was hit.
    bool proven = false;
    long long nodes = 0;
};

/// Solves `inst` to optimality (see file comment for the schedule class).
/// `node_cap` bounds the search; when exceeded, `proven == false` and the
/// best makespan found so far (if any) is returned.
ExactResult solve_exact(const OfflineInstance& inst,
                        long long node_cap = 20'000'000);

} // namespace volsched::offline
