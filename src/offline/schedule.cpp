#include "offline/schedule.hpp"

namespace volsched::offline {

using markov::ProcState;

Schedule Schedule::idle(const OfflineInstance& inst) {
    Schedule s;
    s.actions.assign(static_cast<std::size_t>(inst.num_procs()),
                     std::vector<SlotAction>(
                         static_cast<std::size_t>(inst.horizon)));
    return s;
}

namespace {

struct ProcTracker {
    int prog_received = 0;
    int staged_task = -1;
    int staged_received = 0;
    int computing_task = -1;
    int compute_done = 0;
};

std::string at(int q, int t, const std::string& msg) {
    return "proc " + std::to_string(q) + ", slot " + std::to_string(t) + ": " +
           msg;
}

} // namespace

ValidationResult validate(const OfflineInstance& inst, const Schedule& sched) {
    ValidationResult res;
    if (auto err = inst.validate(); !err.empty()) {
        res.error = "instance: " + err;
        return res;
    }
    if (static_cast<int>(sched.actions.size()) != inst.num_procs()) {
        res.error = "schedule: wrong processor count";
        return res;
    }
    for (int q = 0; q < inst.num_procs(); ++q)
        if (static_cast<int>(sched.actions[q].size()) != inst.horizon) {
            res.error = "schedule: wrong horizon for proc " + std::to_string(q);
            return res;
        }

    const int m = inst.num_tasks;
    const auto& pf = inst.platform;
    std::vector<ProcTracker> procs(static_cast<std::size_t>(inst.num_procs()));
    std::vector<bool> done(static_cast<std::size_t>(m), false);
    int done_count = 0;

    auto fail = [&](int q, int t, const std::string& msg) {
        res.error = at(q, t, msg);
        return res;
    };

    for (int t = 0; t < inst.horizon; ++t) {
        int transfers = 0;
        for (int q = 0; q < inst.num_procs(); ++q) {
            ProcTracker& pr = procs[q];
            const ProcState st = inst.states[q][t];
            if (st == ProcState::Down) {
                // Crash semantics: lose everything held locally.
                pr = ProcTracker{};
            }
            const SlotAction& a = sched.actions[q][t];
            // Slot-start snapshot: computation in slot t may only rely on
            // program/data bytes that arrived in slots strictly before t.
            const int prog_before = pr.prog_received;
            const int staged_task_before = pr.staged_task;
            const int staged_before = pr.staged_received;
            if (a.recv == kRecvNone && a.compute == -1) continue;
            if (st != ProcState::Up)
                return fail(q, t, "action on a non-UP processor");

            if (a.recv != kRecvNone) {
                ++transfers;
                if (a.recv == kRecvProg) {
                    if (pr.prog_received >= pf.t_prog)
                        return fail(q, t, "program over-received");
                    ++pr.prog_received;
                } else {
                    const int task = a.recv;
                    if (task < 0 || task >= m)
                        return fail(q, t, "data for unknown task");
                    if (done[task])
                        return fail(q, t, "data for an already-completed task");
                    if (task == pr.computing_task)
                        return fail(q, t, "data for the task being computed");
                    if (pf.t_data == 0)
                        return fail(q, t, "data transfer with t_data == 0");
                    if (pr.staged_task != task) {
                        // Staging a new task discards any previous staged
                        // data (explicit abandonment is allowed).
                        pr.staged_task = task;
                        pr.staged_received = 0;
                    }
                    if (pr.staged_received >= pf.t_data)
                        return fail(q, t, "task data over-received");
                    ++pr.staged_received;
                }
            }

            if (a.compute != -1) {
                const int task = a.compute;
                if (task < 0 || task >= m)
                    return fail(q, t, "computing unknown task");
                if (done[task])
                    return fail(q, t, "computing an already-completed task");
                // Strict timeline: the program (and, on promotion, the task
                // data) must have been complete *before* this slot — bytes
                // arriving during slot t cannot be computed on in slot t.
                if (prog_before != pf.t_prog)
                    return fail(q, t, "computing without the full program");
                if (pr.computing_task != task) {
                    if (pr.computing_task != -1)
                        return fail(q, t,
                                    "computing a second task before finishing "
                                    "the first");
                    const bool data_ok =
                        pf.t_data == 0 || (staged_task_before == task &&
                                           staged_before == pf.t_data);
                    if (!data_ok)
                        return fail(q, t, "computing without complete data");
                    if (pr.staged_task == task) {
                        pr.staged_task = -1;
                        pr.staged_received = 0;
                    }
                    pr.computing_task = task;
                    pr.compute_done = 0;
                }
                ++pr.compute_done;
                if (pr.compute_done == pf.w[q]) {
                    done[task] = true;
                    ++done_count;
                    pr.computing_task = -1;
                    pr.compute_done = 0;
                    if (done_count == m) res.makespan = t + 1;
                }
            }
        }
        if (transfers > pf.ncom) {
            res.error = "slot " + std::to_string(t) +
                        ": master bandwidth exceeded (" +
                        std::to_string(transfers) + " > ncom)";
            return res;
        }
    }

    res.valid = true;
    res.all_done = (done_count == m);
    if (!res.all_done) res.makespan = 0;
    return res;
}

} // namespace volsched::offline
