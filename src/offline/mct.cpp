#include "offline/mct.hpp"

#include <algorithm>

namespace volsched::offline {

using markov::ProcState;

std::vector<int> simulate_processor(const OfflineInstance& inst, int q,
                                    const std::vector<int>& tasks,
                                    std::vector<SlotAction>* out) {
    const auto& pf = inst.platform;
    const int horizon = inst.horizon;
    std::vector<int> completion(tasks.size(),
                                horizon + 1); // sentinel: not completed

    if (out) out->assign(static_cast<std::size_t>(horizon), SlotAction{});

    int prog_received = 0;
    std::size_t next_data = 0;   // next task (index into `tasks`) to stage
    std::size_t computing = tasks.size(); // index being computed, or size()
    std::size_t staged = tasks.size();    // index staged, or size()
    int staged_received = 0;
    int compute_done = 0;
    std::size_t done = 0;

    for (int t = 0; t < horizon && done < tasks.size(); ++t) {
        const ProcState st = inst.states[q][t];
        if (st == ProcState::Down) {
            // Crash: everything local is lost; completed tasks are safe.
            prog_received = 0;
            staged_received = 0;
            compute_done = 0;
            // The crashed copies must be resent: rewind staging to the
            // first uncompleted task.
            computing = tasks.size();
            staged = tasks.size();
            next_data = done;
            continue;
        }
        if (st != ProcState::Up) continue; // RECLAIMED: suspended

        // Slot-start promotion: a staged task whose data (and the program)
        // completed in earlier slots starts computing now, freeing the
        // staged buffer for this slot's communication.
        if (computing == tasks.size() && prog_received == pf.t_prog) {
            if (staged != tasks.size() && staged_received == pf.t_data) {
                computing = staged;
                staged = tasks.size();
                staged_received = 0;
                compute_done = 0;
            } else if (pf.t_data == 0 && staged == tasks.size() &&
                       next_data < tasks.size()) {
                // Zero-cost data: staging and promotion are immediate.
                computing = next_data++;
                compute_done = 0;
            }
        }

        SlotAction action;

        // Communication decision (one incoming transfer per slot).
        if (prog_received < pf.t_prog) {
            action.recv = kRecvProg;
            ++prog_received;
        } else if (pf.t_data > 0) {
            if (staged == tasks.size() && next_data < tasks.size()) {
                staged = next_data++;
                staged_received = 1;
                action.recv = tasks[staged];
            } else if (staged != tasks.size() &&
                       staged_received < pf.t_data) {
                ++staged_received;
                action.recv = tasks[staged];
            }
        }

        if (computing != tasks.size()) {
            action.compute = tasks[computing];
            ++compute_done;
            if (compute_done == pf.w[q]) {
                completion[computing] = t + 1;
                ++done;
                computing = tasks.size();
                compute_done = 0;
            }
        }

        if (out) (*out)[t] = action;
    }
    return completion;
}

MctResult mct_offline(const OfflineInstance& inst) {
    MctResult res;
    const int p = inst.num_procs();
    res.assignment.assign(static_cast<std::size_t>(p), {});

    for (int task = 0; task < inst.num_tasks; ++task) {
        int best_q = -1;
        int best_completion = inst.horizon + 2;
        for (int q = 0; q < p; ++q) {
            auto trial = res.assignment[q];
            trial.push_back(task);
            const auto completion =
                simulate_processor(inst, q, trial, nullptr);
            const int c = completion.back();
            if (c < best_completion) {
                best_completion = c;
                best_q = q;
            }
        }
        // Even if no processor can finish the task in time, assign it to the
        // least-bad processor so the schedule is total.
        res.assignment[best_q == -1 ? 0 : best_q].push_back(task);
    }

    res.schedule = Schedule::idle(inst);
    res.makespan = 0;
    res.feasible = true;
    for (int q = 0; q < p; ++q) {
        std::vector<SlotAction> actions;
        const auto completion =
            simulate_processor(inst, q, res.assignment[q], &actions);
        res.schedule.actions[q] = std::move(actions);
        for (int c : completion) {
            if (c > inst.horizon) res.feasible = false;
            res.makespan = std::max(res.makespan, c);
        }
    }
    if (!res.feasible) res.makespan = inst.horizon + 1;
    return res;
}

} // namespace volsched::offline
