#include "offline/instance.hpp"

#include <stdexcept>

namespace volsched::offline {

using markov::ProcState;

std::string OfflineInstance::validate() const {
    if (auto err = platform.validate(); !err.empty()) return err;
    if (static_cast<int>(states.size()) != platform.size())
        return "state vector count differs from processor count";
    if (num_tasks <= 0) return "num_tasks must be positive";
    if (horizon <= 0) return "horizon must be positive";
    for (std::size_t q = 0; q < states.size(); ++q)
        if (static_cast<int>(states[q].size()) != horizon)
            return "state vector " + std::to_string(q) +
                   " does not span the horizon";
    return {};
}

OfflineInstance two_state_reduction(const OfflineInstance& in) {
    OfflineInstance out;
    out.platform.ncom = in.platform.ncom;
    out.platform.t_prog = in.platform.t_prog;
    out.platform.t_data = in.platform.t_data;
    out.num_tasks = in.num_tasks;
    out.horizon = in.horizon;

    for (int q = 0; q < in.num_procs(); ++q) {
        // Split the processor's timeline at every DOWN interval: each
        // maximal DOWN-free segment becomes its own 2-state processor that
        // is RECLAIMED outside the segment.  This is exactly the paper's
        // construction (applied once per DOWN interval).
        int seg_start = 0;
        bool in_segment = true;
        auto emit_segment = [&](int from, int to) { // [from, to)
            std::vector<ProcState> row(static_cast<std::size_t>(in.horizon),
                                       ProcState::Reclaimed);
            bool any_up = false;
            for (int t = from; t < to; ++t) {
                row[t] = in.states[q][t];
                any_up |= (in.states[q][t] == ProcState::Up);
            }
            if (to > from && any_up) {
                out.states.push_back(std::move(row));
                out.platform.w.push_back(in.platform.w[q]);
            }
        };
        for (int t = 0; t < in.horizon; ++t) {
            const bool down = (in.states[q][t] == ProcState::Down);
            if (down && in_segment) {
                emit_segment(seg_start, t);
                in_segment = false;
            } else if (!down && !in_segment) {
                seg_start = t;
                in_segment = true;
            }
        }
        if (in_segment) emit_segment(seg_start, in.horizon);
        if (out.platform.w.empty()) {
            // Keep at least one (all-RECLAIMED) processor so the platform
            // stays well-formed even if every processor is always DOWN.
        }
    }
    if (out.platform.w.empty()) {
        out.platform.w.push_back(in.platform.w.empty() ? 1 : in.platform.w[0]);
        out.states.emplace_back(static_cast<std::size_t>(in.horizon),
                                ProcState::Reclaimed);
    }
    return out;
}

std::vector<std::vector<ProcState>> states_from_strings(
    const std::vector<std::string>& rows) {
    std::vector<std::vector<ProcState>> out;
    out.reserve(rows.size());
    std::size_t len = rows.empty() ? 0 : rows[0].size();
    for (const auto& row : rows) {
        if (row.size() != len)
            throw std::invalid_argument(
                "states_from_strings: ragged state rows");
        std::vector<ProcState> states;
        states.reserve(row.size());
        for (char c : row) {
            if (c != 'u' && c != 'r' && c != 'd')
                throw std::invalid_argument(
                    "states_from_strings: unknown state code");
            states.push_back(markov::state_from_code(c));
        }
        out.push_back(std::move(states));
    }
    return out;
}

} // namespace volsched::offline
