#pragma once
/// \file mct.hpp
/// The off-line MCT (Minimum Completion Time) list scheduler of
/// Proposition 2: program sent as early as possible, then each task is
/// greedily given to the processor completing it soonest.  Optimal when
/// ncom = +infinity (no master bandwidth contention); a heuristic otherwise
/// (the paper's Section 4 counter-example shows non-optimality for finite
/// ncom — reproduced in tests and bench_offline).

#include <vector>

#include "offline/schedule.hpp"

namespace volsched::offline {

struct MctResult {
    /// tasks assigned to each processor, in execution order.
    std::vector<std::vector<int>> assignment;
    /// Slot count needed to complete all tasks; horizon+1 when infeasible.
    int makespan = 0;
    bool feasible = false;
    /// Fully materialized schedule (validates against the instance with
    /// ncom >= number of processors).
    Schedule schedule;
};

/// Exact completion slots of `tasks` executed in order on processor q, with
/// full knowledge of its availability vector.  Implements the worker
/// pipeline (program, then per-task data/compute with one-task look-ahead)
/// including crash-and-restart semantics on DOWN slots.  Optionally records
/// the actions into `out` (pass nullptr to skip).  Returns the completion
/// slot (1-based) of each task; tasks that do not complete get horizon+1.
std::vector<int> simulate_processor(const OfflineInstance& inst, int q,
                                    const std::vector<int>& tasks,
                                    std::vector<SlotAction>* out);

/// Runs the MCT list scheduler assuming no master bandwidth bound
/// (ncom = +infinity).  The returned schedule uses at most one transfer per
/// processor per slot, hence at most p concurrent transfers.
MctResult mct_offline(const OfflineInstance& inst);

} // namespace volsched::offline
