#pragma once
/// \file sat.hpp
/// The 3SAT -> Off-Line reduction from the proof of Theorem 1, including
/// the paper's Figure 1 example, a constructive schedule builder for
/// satisfying assignments, and a brute-force SAT decision helper for the
/// small instances used in tests.
///
/// Reduction recap: n variables and m clauses map to p = 2n processors
/// (one per literal), ncom = 1, Tprog = m, Tdata = 0, w = 1, N = m(n+1).
/// During "clause slots" 1..m, a literal's processor is UP exactly when the
/// literal appears in the clause; during "variable window" i (slots
/// mi+1..m(i+1)), both processors of variable i are UP and everyone else is
/// RECLAIMED.  The formula is satisfiable iff all m tasks can complete by N.

#include <array>
#include <vector>

#include "offline/schedule.hpp"

namespace volsched::offline {

/// One 3-literal clause; literals are +v / -v with v in [1, num_vars].
struct Clause {
    std::array<int, 3> lits{};
};

struct Sat3 {
    int num_vars = 0;
    std::vector<Clause> clauses;

    [[nodiscard]] bool satisfied_by(const std::vector<bool>& assignment) const;
};

/// The instance of the paper's Figure 1:
/// (~x1|x3|x4) & (x1|~x2|~x3) & (x2|x3|~x4) & (x1|x2|x4) & (~x1|~x2|~x4)
/// & (~x2|x3|x4).
Sat3 figure1_instance();

/// Builds the Off-Line instance of the reduction.
OfflineInstance sat_to_offline(const Sat3& sat);

/// Constructs the schedule of the "satisfiable => schedulable" direction of
/// the proof: during clause slot j the processor of a chosen true literal
/// downloads one program slot; in variable window i the processor matching
/// the assignment finishes the program and computes its share of tasks.
/// Throws std::invalid_argument when `assignment` does not satisfy `sat`.
Schedule schedule_from_assignment(const Sat3& sat, const OfflineInstance& inst,
                                  const std::vector<bool>& assignment);

/// Brute-force satisfiability check (num_vars <= 24); returns a satisfying
/// assignment through `out` when satisfiable.
bool brute_force_sat(const Sat3& sat, std::vector<bool>* out = nullptr);

} // namespace volsched::offline
