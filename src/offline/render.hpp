#pragma once
/// \file render.hpp
/// ASCII rendering of off-line schedules against their instances — the
/// static counterpart of sim::Timeline, with the same activity codes:
///   'd' DOWN   'r' RECLAIMED   '.' UP and idle
///   'P' receiving the program   'D' receiving task data
///   'C' computing               'B' computing + receiving data

#include <string>

#include "offline/schedule.hpp"

namespace volsched::offline {

/// Renders the full horizon, one row per processor with a 10-slot ruler.
/// The schedule is NOT validated here; render what was given (illegal
/// actions still show up, which is exactly what you want when debugging a
/// failed validation).
std::string render_schedule(const OfflineInstance& inst,
                            const Schedule& sched);

} // namespace volsched::offline
