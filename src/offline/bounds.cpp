#include "offline/bounds.hpp"

#include <algorithm>

namespace volsched::offline {

int communication_lower_bound(const OfflineInstance& inst) {
    const auto& pf = inst.platform;
    const long long transfer_work =
        static_cast<long long>(pf.t_prog) +
        static_cast<long long>(inst.num_tasks) * pf.t_data;
    const long long transfer_slots =
        (transfer_work + pf.ncom - 1) / pf.ncom;
    int w_min = pf.w.empty() ? 1 : pf.w[0];
    for (int w : pf.w) w_min = std::min(w_min, w);
    return static_cast<int>(transfer_slots) + w_min;
}

int compute_lower_bound(const OfflineInstance& inst) {
    const auto& pf = inst.platform;
    const int p = inst.num_procs();
    std::vector<long long> up(static_cast<std::size_t>(p), 0);
    for (int t = 0; t < inst.horizon; ++t) {
        long long capacity = 0;
        for (int q = 0; q < p; ++q) {
            if (inst.states[q][t] == markov::ProcState::Up) ++up[q];
            capacity += up[q] / pf.w[q];
        }
        if (capacity >= inst.num_tasks) return t + 1;
    }
    return inst.horizon + 1;
}

int makespan_lower_bound(const OfflineInstance& inst) {
    return std::max(communication_lower_bound(inst),
                    compute_lower_bound(inst));
}

} // namespace volsched::offline
