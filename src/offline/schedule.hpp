#pragma once
/// \file schedule.hpp
/// Off-line schedule representation and a polynomial-time validator that
/// checks every rule of the execution model (this is the certificate
/// checker that puts Off-Line in NP, cf. the proof of Theorem 1).

#include <string>
#include <vector>

#include "offline/instance.hpp"

namespace volsched::offline {

/// What a processor receives during one slot.
/// `kRecvNone`: nothing; `kRecvProg`: one slot of the program; otherwise the
/// value is a task id (>= 0) and the processor receives one slot of that
/// task's input data (or marks zero-cost data reception when t_data == 0).
inline constexpr int kRecvNone = -1;
inline constexpr int kRecvProg = -2;

/// Per-processor per-slot actions.  Communication and computation may occur
/// in the same slot on the same processor (compute/transfer overlap).
struct SlotAction {
    int recv = kRecvNone;
    int compute = -1; ///< task id being computed this slot, or -1
};

struct Schedule {
    /// actions[q][t]
    std::vector<std::vector<SlotAction>> actions;

    /// Constructs an all-idle schedule shaped like `inst`.
    static Schedule idle(const OfflineInstance& inst);
};

/// Validation outcome.
struct ValidationResult {
    bool valid = false;
    /// First violated rule, empty when valid.
    std::string error;
    /// 1 + index of the slot in which the last task completed (i.e. the
    /// makespan in slots); only meaningful when `valid && all_done`.
    int makespan = 0;
    /// Whether all m tasks completed within the horizon.
    bool all_done = false;
};

/// Replays `sched` against `inst`, enforcing:
///  - actions only on UP processors;
///  - at most ncom concurrent transfers per slot;
///  - at most one incoming transfer per processor per slot;
///  - program fully received (and not lost) before computing;
///  - task data fully received at that processor before computing it;
///  - a processor computes at most one task per slot and tasks one at a
///    time (a started task must finish or be lost before the next starts);
///  - data staged for at most one task beyond the one being computed;
///  - DOWN wipes program, data and partial computation;
///  - every task is completed at most once (replicas are an on-line coping
///    mechanism; an off-line schedule never needs them).
ValidationResult validate(const OfflineInstance& inst, const Schedule& sched);

} // namespace volsched::offline
