#include "offline/exact.hpp"

#include <cstdint>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "offline/bounds.hpp"

namespace volsched::offline {
namespace {

using markov::ProcState;

struct PState {
    std::int16_t prog_rem = 0;   // program slots still needed
    std::int16_t staged = -1;    // staged task id
    std::int16_t staged_rem = 0; // data slots still needed for staged task
    std::int16_t comp = -1;      // computing task id
    std::int16_t comp_rem = 0;   // compute slots still needed

    void wipe(int t_prog) {
        prog_rem = static_cast<std::int16_t>(t_prog);
        staged = -1;
        staged_rem = 0;
        comp = -1;
        comp_rem = 0;
    }
};

struct State {
    std::vector<PState> procs;
    std::uint32_t done = 0;

    [[nodiscard]] std::uint64_t hash(int t) const {
        std::uint64_t h =
            0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(t) + 1);
        auto mix = [&h](std::uint64_t v) {
            v *= 0xbf58476d1ce4e5b9ULL;
            v ^= v >> 29;
            h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        };
        mix(done);
        for (const auto& p : procs) {
            mix((static_cast<std::uint64_t>(static_cast<std::uint16_t>(p.prog_rem)) << 48) |
                (static_cast<std::uint64_t>(static_cast<std::uint16_t>(p.staged)) << 32) |
                (static_cast<std::uint64_t>(static_cast<std::uint16_t>(p.staged_rem)) << 16) |
                static_cast<std::uint64_t>(static_cast<std::uint16_t>(p.comp)));
            mix(static_cast<std::uint64_t>(static_cast<std::uint16_t>(p.comp_rem)));
        }
        return h;
    }
};

class Solver {
public:
    Solver(const OfflineInstance& inst, long long node_cap)
        : inst_(inst), cap_(node_cap) {}

    ExactResult solve() {
        lb_ = makespan_lower_bound(inst_);
        if (lb_ > inst_.horizon) {
            // The relaxations already rule the horizon out: proven
            // infeasible without search.
            ExactResult res;
            res.feasible = false;
            res.makespan = inst_.horizon + 1;
            res.proven = true;
            res.nodes = 0;
            return res;
        }
        State init;
        init.procs.assign(static_cast<std::size_t>(inst_.num_procs()),
                          PState{});
        for (auto& p : init.procs)
            p.prog_rem = static_cast<std::int16_t>(inst_.platform.t_prog);
        best_ = inst_.horizon + 1;
        full_mask_ = (inst_.num_tasks >= 32)
                         ? ~std::uint32_t{0}
                         : ((std::uint32_t{1} << inst_.num_tasks) - 1);
        dfs(0, init);
        ExactResult res;
        res.feasible = best_ <= inst_.horizon;
        res.makespan = best_;
        res.proven = !aborted_;
        res.nodes = nodes_;
        return res;
    }

private:
    void dfs(int t, const State& s) {
        if (s.done == full_mask_) {
            if (t < best_) best_ = t;
            if (best_ <= lb_) stop_ = true; // provably optimal already
            return;
        }
        if (t + 1 >= best_ || t >= inst_.horizon || aborted_ || stop_) return;
        if (++nodes_ > cap_) {
            aborted_ = true;
            return;
        }
        if (!visited_.insert(s.hash(t)).second) return;

        const int p = inst_.num_procs();
        State base = s;
        for (int q = 0; q < p; ++q)
            if (inst_.states[q][t] == ProcState::Down)
                base.procs[q].wipe(inst_.platform.t_prog);

        // Slot-start promotions: a task whose data (and the program)
        // completed in earlier slots starts computing now, freeing the
        // staged buffer for this very slot's transfers — exactly the
        // boundary semantics of the paper's model.  Promoting greedily is
        // never suboptimal: computation has no resource conflicts.
        std::uint32_t claimed = 0;
        for (int q = 0; q < p; ++q) {
            PState& ps = base.procs[q];
            if (inst_.states[q][t] != ProcState::Up) continue;
            if (ps.comp != -1 || ps.prog_rem != 0) continue;
            if (ps.staged != -1 && ps.staged_rem == 0) {
                ps.comp = ps.staged;
                ps.comp_rem = static_cast<std::int16_t>(inst_.platform.w[q]);
                ps.staged = -1;
            } else if (ps.staged == -1 && inst_.platform.t_data == 0) {
                const int task = lowest_uncomputed(base, claimed);
                if (task != -1) {
                    claimed |= (std::uint32_t{1} << task);
                    ps.comp = static_cast<std::int16_t>(task);
                    ps.comp_rem =
                        static_cast<std::int16_t>(inst_.platform.w[q]);
                }
            }
        }

        enumerate(t, base, 0, inst_.platform.ncom);
    }

    /// Chooses a transfer action for processor q, then recurses to q+1;
    /// once every processor has an action, completes the slot.
    void enumerate(int t, State s, int q, int budget) {
        if (aborted_ || stop_) return;
        if (q == inst_.num_procs()) {
            finish_slot(t, std::move(s));
            return;
        }
        const bool up = inst_.states[q][t] == ProcState::Up;

        // Option: no transfer to q this slot.
        enumerate(t, s, q + 1, budget);
        if (!up || budget == 0) return;

        const PState& ps = s.procs[q];
        if (ps.prog_rem > 0) { // one program slot
            State ns = s;
            --ns.procs[q].prog_rem;
            enumerate(t, std::move(ns), q + 1, budget - 1);
        }
        if (ps.staged != -1 && ps.staged_rem > 0) { // continue staged data
            State ns = s;
            --ns.procs[q].staged_rem;
            enumerate(t, std::move(ns), q + 1, budget - 1);
        }
        // Fresh data transfer.  Identical task sizes make tasks
        // interchangeable, so fresh transfers are canonicalized to the
        // lowest-index undone task held nowhere, plus — to keep end-game
        // duplicate staging available — the lowest-index undone task not
        // already held by this processor.
        if (ps.staged == -1 && inst_.platform.t_data > 0) {
            const int fresh = lowest_unheld(s, -1);
            const int dup = lowest_unheld(s, q);
            start_fresh(t, s, q, budget, fresh);
            if (dup != fresh) start_fresh(t, s, q, budget, dup);
        }
    }

    void start_fresh(int t, const State& s, int q, int budget, int task) {
        if (task == -1 || task == s.procs[q].comp) return;
        State ns = s;
        ns.procs[q].staged = static_cast<std::int16_t>(task);
        ns.procs[q].staged_rem =
            static_cast<std::int16_t>(inst_.platform.t_data - 1);
        enumerate(t, std::move(ns), q + 1, budget - 1);
    }

    /// Lowest-index undone task that no processor holds (`except == -1`),
    /// or that processor `except` itself does not hold (duplicates allowed
    /// elsewhere).
    [[nodiscard]] int lowest_unheld(const State& s, int except) const {
        for (int task = 0; task < inst_.num_tasks; ++task) {
            if (s.done & (std::uint32_t{1} << task)) continue;
            bool held = false;
            if (except >= 0) {
                held = (s.procs[except].staged == task ||
                        s.procs[except].comp == task);
            } else {
                for (const auto& ps : s.procs)
                    if (ps.staged == task || ps.comp == task) {
                        held = true;
                        break;
                    }
            }
            if (!held) return task;
        }
        return -1;
    }

    /// Deterministic computation phase: one compute slot for every UP
    /// worker whose task was promoted at slot start.  Computing greedily is
    /// never suboptimal — it has no resource conflicts and finishing
    /// earlier only helps.
    void finish_slot(int t, State s) {
        for (int q = 0; q < inst_.num_procs(); ++q) {
            if (inst_.states[q][t] != ProcState::Up) continue;
            PState& ps = s.procs[q];
            if (ps.comp != -1) {
                --ps.comp_rem;
                if (ps.comp_rem == 0) {
                    s.done |= (std::uint32_t{1} << ps.comp);
                    ps.comp = -1;
                }
            }
        }
        // A task completed by one worker may still be "computing" on another
        // (duplicate); clear such copies so they do not recompute.
        for (auto& ps : s.procs) {
            if (ps.comp != -1 && (s.done & (std::uint32_t{1} << ps.comp))) {
                ps.comp = -1;
                ps.comp_rem = 0;
            }
            if (ps.staged != -1 && (s.done & (std::uint32_t{1} << ps.staged))) {
                ps.staged = -1;
                ps.staged_rem = 0;
            }
        }
        dfs(t + 1, s);
    }

    [[nodiscard]] int lowest_uncomputed(const State& s,
                                        std::uint32_t claimed) const {
        for (int task = 0; task < inst_.num_tasks; ++task) {
            const std::uint32_t bit = std::uint32_t{1} << task;
            if ((s.done | claimed) & bit) continue;
            bool computing = false;
            for (const auto& ps : s.procs)
                if (ps.comp == task) {
                    computing = true;
                    break;
                }
            if (!computing) return task;
        }
        return -1;
    }

    const OfflineInstance& inst_;
    long long cap_;
    long long nodes_ = 0;
    int best_ = 0;
    int lb_ = 0;
    std::uint32_t full_mask_ = 0;
    bool aborted_ = false;
    bool stop_ = false;
    std::unordered_set<std::uint64_t> visited_;
};

} // namespace

ExactResult solve_exact(const OfflineInstance& inst, long long node_cap) {
    if (auto err = inst.validate(); !err.empty())
        throw std::invalid_argument("solve_exact: " + err);
    if (inst.num_tasks > 20)
        throw std::invalid_argument("solve_exact: too many tasks (max 20)");
    Solver solver(inst, node_cap);
    return solver.solve();
}

} // namespace volsched::offline
