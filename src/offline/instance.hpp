#pragma once
/// \file instance.hpp
/// The off-line problem of Section 4: processor availability is known in
/// advance (explicit state vectors), and the goal is to complete one
/// iteration of m tasks as early as possible.

#include <vector>

#include "markov/state.hpp"
#include "sim/platform.hpp"

namespace volsched::offline {

/// A fully specified off-line instance.
struct OfflineInstance {
    sim::Platform platform;
    /// states[q][t] for t in [0, horizon): the availability vector S_q.
    std::vector<std::vector<markov::ProcState>> states;
    /// Number of tasks in the iteration (m).
    int num_tasks = 0;
    /// Number of time slots (N).
    int horizon = 0;

    [[nodiscard]] int num_procs() const noexcept {
        return static_cast<int>(states.size());
    }

    /// Empty string when consistent, else a diagnostic.
    [[nodiscard]] std::string validate() const;
};

/// The DOWN-elimination rewrite of Section 4: each processor that crashes is
/// split at every DOWN interval into 2-state (UP/RECLAIMED) processors with
/// the same speed, preserving schedulability.  The result contains no DOWN
/// state; the number of processors grows by at most one per DOWN interval.
OfflineInstance two_state_reduction(const OfflineInstance& in);

/// Convenience: builds availability vectors from strings of 'u'/'r'/'d'
/// codes (one string per processor, all of the same length).
std::vector<std::vector<markov::ProcState>> states_from_strings(
    const std::vector<std::string>& rows);

} // namespace volsched::offline
