#include "offline/render.hpp"

#include <sstream>

namespace volsched::offline {

std::string render_schedule(const OfflineInstance& inst,
                            const Schedule& sched) {
    std::ostringstream os;
    os << "      ";
    for (int t = 0; t < inst.horizon; ++t)
        os << (t % 10 == 0 ? '|' : ' ');
    os << '\n';
    for (int q = 0; q < inst.num_procs() &&
                    q < static_cast<int>(sched.actions.size());
         ++q) {
        os << 'P' << q << (q < 10 ? "    " : "   ");
        for (int t = 0; t < inst.horizon &&
                        t < static_cast<int>(sched.actions[q].size());
             ++t) {
            const auto st = inst.states[q][t];
            char code = '.';
            if (st == markov::ProcState::Down) {
                code = 'd';
            } else if (st == markov::ProcState::Reclaimed) {
                code = 'r';
            } else {
                const SlotAction& a = sched.actions[q][t];
                const bool compute = a.compute != -1;
                const bool data = a.recv >= 0;
                const bool prog = a.recv == kRecvProg;
                if (compute && data) code = 'B';
                else if (compute) code = 'C';
                else if (data) code = 'D';
                else if (prog) code = 'P';
            }
            os << code;
        }
        os << '\n';
    }
    return os.str();
}

} // namespace volsched::offline
