#include "offline/sat.hpp"

#include <cstdlib>
#include <stdexcept>

namespace volsched::offline {

using markov::ProcState;

bool Sat3::satisfied_by(const std::vector<bool>& assignment) const {
    if (static_cast<int>(assignment.size()) != num_vars) return false;
    for (const auto& clause : clauses) {
        bool sat = false;
        for (int lit : clause.lits) {
            const int v = std::abs(lit) - 1;
            if (lit > 0 ? assignment[v] : !assignment[v]) {
                sat = true;
                break;
            }
        }
        if (!sat) return false;
    }
    return true;
}

Sat3 figure1_instance() {
    Sat3 sat;
    sat.num_vars = 4;
    sat.clauses = {
        Clause{{-1, 3, 4}},  Clause{{1, -2, -3}}, Clause{{2, 3, -4}},
        Clause{{1, 2, 4}},   Clause{{-1, -2, -4}}, Clause{{-2, 3, 4}},
    };
    return sat;
}

namespace {

/// Processor of the positive literal of variable v (0-based): paper's
/// P_{2i-1}; the negative literal's processor is pos + 1 (paper's P_{2i}).
int pos_proc(int v) { return 2 * v; }

/// True when literal `lit` appears in `clause`.
bool lit_in_clause(const Clause& clause, int lit) {
    for (int l : clause.lits)
        if (l == lit) return true;
    return false;
}

} // namespace

OfflineInstance sat_to_offline(const Sat3& sat) {
    if (sat.num_vars <= 0 || sat.clauses.empty())
        throw std::invalid_argument("sat_to_offline: empty instance");
    const int n = sat.num_vars;
    const int m = static_cast<int>(sat.clauses.size());

    OfflineInstance inst;
    inst.num_tasks = m;
    inst.horizon = m * (n + 1);
    inst.platform.w.assign(static_cast<std::size_t>(2 * n), 1);
    inst.platform.ncom = 1;
    inst.platform.t_prog = m;
    inst.platform.t_data = 0;
    inst.states.assign(static_cast<std::size_t>(2 * n),
                       std::vector<ProcState>(
                           static_cast<std::size_t>(inst.horizon),
                           ProcState::Reclaimed));

    for (int v = 0; v < n; ++v) {
        // Clause slots 0..m-1: UP exactly where the literal occurs.
        for (int j = 0; j < m; ++j) {
            if (lit_in_clause(sat.clauses[j], v + 1))
                inst.states[pos_proc(v)][j] = ProcState::Up;
            if (lit_in_clause(sat.clauses[j], -(v + 1)))
                inst.states[pos_proc(v) + 1][j] = ProcState::Up;
        }
        // Variable window v: slots m(v+1) .. m(v+2)-1, both processors UP.
        const int start = m * (v + 1);
        for (int j = 0; j < m; ++j) {
            inst.states[pos_proc(v)][start + j] = ProcState::Up;
            inst.states[pos_proc(v) + 1][start + j] = ProcState::Up;
        }
    }
    return inst;
}

Schedule schedule_from_assignment(const Sat3& sat, const OfflineInstance& inst,
                                  const std::vector<bool>& assignment) {
    if (!sat.satisfied_by(assignment))
        throw std::invalid_argument(
            "schedule_from_assignment: assignment does not satisfy the "
            "formula");
    const int n = sat.num_vars;
    const int m = static_cast<int>(sat.clauses.size());
    Schedule sched = Schedule::idle(inst);

    // Phase 1 (clause slots): for each clause pick one true literal; its
    // processor downloads one program slot.
    std::vector<int> early_prog(static_cast<std::size_t>(2 * n), 0);
    for (int j = 0; j < m; ++j) {
        int chosen = -1;
        for (int lit : sat.clauses[j].lits) {
            const int v = std::abs(lit) - 1;
            const bool value = lit > 0;
            if (assignment[v] == value) {
                chosen = value ? pos_proc(v) : pos_proc(v) + 1;
                break;
            }
        }
        sched.actions[chosen][j].recv = kRecvProg;
        ++early_prog[chosen];
    }

    // Phase 2 (variable windows): the assignment-matching processor p(i)
    // finishes its program during the first m - L slots of its window, then
    // computes L tasks (Tdata = 0, w = 1) in the remaining L slots.
    int next_task = 0;
    for (int v = 0; v < n; ++v) {
        const int q = assignment[v] ? pos_proc(v) : pos_proc(v) + 1;
        const int window = m * (v + 1);
        const int early = early_prog[q];
        for (int j = 0; j < m - early; ++j)
            sched.actions[q][window + j].recv = kRecvProg;
        for (int j = m - early; j < m; ++j) {
            if (next_task >= m) break;
            sched.actions[q][window + j].compute = next_task++;
        }
    }
    return sched;
}

bool brute_force_sat(const Sat3& sat, std::vector<bool>* out) {
    if (sat.num_vars > 24)
        throw std::invalid_argument("brute_force_sat: too many variables");
    const std::uint32_t limit = std::uint32_t{1} << sat.num_vars;
    std::vector<bool> assignment(static_cast<std::size_t>(sat.num_vars));
    for (std::uint32_t bits = 0; bits < limit; ++bits) {
        for (int v = 0; v < sat.num_vars; ++v)
            assignment[v] = (bits >> v) & 1u;
        if (sat.satisfied_by(assignment)) {
            if (out) *out = assignment;
            return true;
        }
    }
    return false;
}

} // namespace volsched::offline
