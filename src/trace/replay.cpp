#include "trace/replay.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace volsched::trace {

using markov::ProcState;

RecordedTrace record(const markov::AvailabilityModel& prototype,
                     std::size_t slots, util::Rng& rng) {
    RecordedTrace out;
    if (slots == 0) return out;
    out.states.reserve(slots);
    auto model = prototype.clone();
    ProcState s = model->initial_state(rng);
    out.states.push_back(s);
    for (std::size_t t = 1; t < slots; ++t) {
        s = model->next_state(s, rng);
        out.states.push_back(s);
    }
    return out;
}

void write_traces(std::ostream& out, const std::vector<RecordedTrace>& traces) {
    out << "# volsched availability traces: one processor per line, "
           "u=UP r=RECLAIMED d=DOWN\n";
    for (const auto& tr : traces) {
        std::string line;
        line.reserve(tr.states.size());
        for (ProcState s : tr.states) line.push_back(markov::state_code(s));
        out << line << '\n';
    }
}

std::vector<RecordedTrace> read_traces(std::istream& in) {
    std::vector<RecordedTrace> traces;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        RecordedTrace tr;
        tr.states.reserve(line.size());
        for (char c : line) {
            if (c == '\r') continue;
            if (c != 'u' && c != 'r' && c != 'd')
                throw std::invalid_argument(
                    "read_traces: unexpected character in trace line");
            tr.states.push_back(markov::state_from_code(c));
        }
        traces.push_back(std::move(tr));
    }
    return traces;
}

ReplayAvailability::ReplayAvailability(RecordedTrace trace, EndPolicy policy)
    : trace_(std::move(trace)), policy_(policy) {
    if (trace_.states.empty())
        throw std::invalid_argument("ReplayAvailability: empty trace");
}

ProcState ReplayAvailability::initial_state(util::Rng&) {
    cursor_ = 0;
    return trace_.states[0];
}

ProcState ReplayAvailability::next_state(ProcState, util::Rng&) {
    ++cursor_;
    if (cursor_ >= trace_.states.size()) {
        if (policy_ == EndPolicy::HoldLast) {
            cursor_ = trace_.states.size() - 1;
        } else {
            cursor_ = 0;
        }
    }
    return trace_.states[cursor_];
}

std::unique_ptr<markov::AvailabilityModel> ReplayAvailability::clone() const {
    return std::make_unique<ReplayAvailability>(trace_, policy_);
}

} // namespace volsched::trace
