#pragma once
/// \file semi_markov.hpp
/// Non-memoryless availability: a semi-Markov process whose state-sojourn
/// durations are Weibull-distributed, as empirical desktop-grid studies
/// suggest (Nurmi/Brevik/Wolski; Javadi et al. — refs [8,10] of the paper).
/// This implements the paper's Section 8 "future work" direction so that the
/// heuristics can be stress-tested when the Markov assumption is violated.

#include <array>
#include <memory>

#include "markov/availability.hpp"
#include "trace/sojourn.hpp"

namespace volsched::trace {

/// Weibull(shape k, scale lambda) duration sampler (inverse-CDF method).
/// shape < 1 yields heavy-tailed sojourns (long stretches of availability
/// punctuated by bursts of churn), the regime reported for desktop grids.
/// Thin convenience wrapper over SojournDist.
struct Weibull {
    double shape = 1.0;
    double scale = 1.0;

    /// Draws a duration in slots, at least 1.
    [[nodiscard]] long long sample_slots(util::Rng& rng) const;

    [[nodiscard]] SojournDist dist() const noexcept {
        return {SojournDist::Kind::Weibull, shape, scale};
    }
};

/// Parameters for a 3-state semi-Markov availability process: per-state
/// sojourn distributions + an embedded jump chain (row-stochastic over the
/// two states different from the current one, expressed as the probability
/// of each destination).
struct SemiMarkovParams {
    std::array<SojournDist, 3> sojourn{};   // indexed by ProcState
    // jump[i][j]: probability of jumping from state i to state j; the
    // diagonal must be zero (sojourn length handles self-persistence).
    std::array<std::array<double, 3>, 3> jump{};

    /// Validates jump rows (diagonal zero, off-diagonal sums to 1) and the
    /// sojourn parameters.
    [[nodiscard]] bool valid(double tol = 1e-9) const noexcept;
};

/// Stateful availability model: holds the remaining sojourn of the current
/// state and samples a jump when it expires.
class SemiMarkovAvailability final : public markov::AvailabilityModel {
public:
    explicit SemiMarkovAvailability(SemiMarkovParams params);

    markov::ProcState initial_state(util::Rng& rng) override;
    markov::ProcState next_state(markov::ProcState current,
                                 util::Rng& rng) override;
    [[nodiscard]] std::unique_ptr<markov::AvailabilityModel> clone() const override;

    [[nodiscard]] const SemiMarkovParams& params() const noexcept { return params_; }

    /// The time-averaged 1-step transition matrix of an *equivalent* Markov
    /// chain (geometric sojourns with the same means, same jump chain).
    /// This is what a scheduler believing the Markov assumption would fit to
    /// traces of this process; used as the heuristics' belief in experiments.
    [[nodiscard]] markov::TransitionMatrix equivalent_markov_matrix() const;

private:
    SemiMarkovParams params_;
    long long remaining_ = 0; // slots left in the current sojourn
};

/// A desktop-grid-flavoured default parameterization: heavy-tailed UP
/// sojourns (Weibull shape 0.7), shorter RECLAIMED bursts, rare long DOWN
/// periods.  `mean_up_slots` scales all sojourn means proportionally.
SemiMarkovParams desktop_grid_params(double mean_up_slots);

/// Same fleet shape with lognormal sojourns (sigma 1.2 for UP): some
/// empirical studies prefer lognormal fits for availability intervals.
SemiMarkovParams desktop_grid_params_lognormal(double mean_up_slots);

} // namespace volsched::trace
