#pragma once
/// \file empirical.hpp
/// Empirical statistics over recorded traces: state occupancy, interval
/// lengths, and maximum-likelihood fitting of a 3-state Markov chain.  The
/// fit is what a Markov-believing scheduler would estimate from history, and
/// feeds the heuristics' "belief" chains in trace-replay experiments.

#include <array>

#include "markov/chain.hpp"
#include "trace/replay.hpp"

namespace volsched::trace {

/// Occupancy fractions and per-state mean contiguous-interval lengths.
struct TraceStats {
    std::array<double, 3> occupancy{};      // fraction of slots per state
    std::array<double, 3> mean_interval{};  // mean run length per state
    std::array<std::size_t, 3> intervals{}; // number of runs per state
    std::size_t slots = 0;
};

TraceStats analyze(const RecordedTrace& trace);

/// Maximum-likelihood transition-count estimate of a Markov chain from one
/// or more traces (transition counts pooled, Laplace smoothing `alpha` to
/// avoid zero rows on short traces).  Throws on empty input.
markov::TransitionMatrix fit_markov(const std::vector<RecordedTrace>& traces,
                                    double alpha = 1e-6);

} // namespace volsched::trace
