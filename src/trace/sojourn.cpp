#include "trace/sojourn.hpp"

#include <cmath>
#include <stdexcept>

namespace volsched::trace {
namespace {

/// Standard normal via Box–Muller (one value per call; simple and fine for
/// sojourn sampling rates).
double standard_normal(volsched::util::Rng& rng) {
    const double u1 = 1.0 - rng.uniform(); // (0, 1]
    const double u2 = rng.uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
}

} // namespace

long long SojournDist::sample_slots(util::Rng& rng) const {
    double x = 1.0;
    switch (kind) {
        case Kind::Weibull: {
            const double u = 1.0 - rng.uniform(); // (0, 1]
            x = scale * std::pow(-std::log(u), 1.0 / shape);
            break;
        }
        case Kind::LogNormal: {
            x = scale * std::exp(shape * standard_normal(rng));
            break;
        }
    }
    const auto slots = static_cast<long long>(std::ceil(x));
    return slots < 1 ? 1 : slots;
}

double SojournDist::mean() const {
    switch (kind) {
        case Kind::Weibull:
            return scale * std::tgamma(1.0 + 1.0 / shape);
        case Kind::LogNormal:
            return scale * std::exp(0.5 * shape * shape);
    }
    return scale;
}

SojournDist SojournDist::weibull_with_mean(double shape, double mean) {
    if (shape <= 0.0 || mean <= 0.0)
        throw std::invalid_argument("weibull_with_mean: bad parameters");
    return {Kind::Weibull, shape, mean / std::tgamma(1.0 + 1.0 / shape)};
}

SojournDist SojournDist::lognormal_with_mean(double sigma, double mean) {
    if (sigma <= 0.0 || mean <= 0.0)
        throw std::invalid_argument("lognormal_with_mean: bad parameters");
    return {Kind::LogNormal, sigma, mean * std::exp(-0.5 * sigma * sigma)};
}

} // namespace volsched::trace
