#include "trace/empirical.hpp"

#include <stdexcept>

namespace volsched::trace {

using markov::ProcState;

TraceStats analyze(const RecordedTrace& trace) {
    TraceStats st;
    st.slots = trace.states.size();
    if (st.slots == 0) return st;

    std::array<std::size_t, 3> slot_count{};
    std::array<std::size_t, 3> run_count{};
    ProcState run_state = trace.states[0];
    for (std::size_t t = 0; t < trace.states.size(); ++t) {
        const ProcState s = trace.states[t];
        ++slot_count[static_cast<int>(s)];
        if (t == 0 || s != run_state) {
            ++run_count[static_cast<int>(s)];
            run_state = s;
        }
    }
    for (int i = 0; i < 3; ++i) {
        st.occupancy[i] =
            static_cast<double>(slot_count[i]) / static_cast<double>(st.slots);
        st.intervals[i] = run_count[i];
        st.mean_interval[i] =
            run_count[i] ? static_cast<double>(slot_count[i]) /
                               static_cast<double>(run_count[i])
                         : 0.0;
    }
    return st;
}

markov::TransitionMatrix fit_markov(const std::vector<RecordedTrace>& traces,
                                    double alpha) {
    std::array<std::array<double, 3>, 3> counts{};
    bool any = false;
    for (const auto& tr : traces) {
        for (std::size_t t = 0; t + 1 < tr.states.size(); ++t) {
            counts[static_cast<int>(tr.states[t])]
                  [static_cast<int>(tr.states[t + 1])] += 1.0;
            any = true;
        }
    }
    if (!any)
        throw std::invalid_argument("fit_markov: no transitions in input");
    std::array<std::array<double, 3>, 3> rows{};
    for (int i = 0; i < 3; ++i) {
        double total = 3.0 * alpha;
        for (int j = 0; j < 3; ++j) total += counts[i][j];
        for (int j = 0; j < 3; ++j) rows[i][j] = (counts[i][j] + alpha) / total;
    }
    return markov::TransitionMatrix(rows);
}

} // namespace volsched::trace
