#include "trace/semi_markov.hpp"

#include <cmath>
#include <stdexcept>

namespace volsched::trace {

using markov::ProcState;

long long Weibull::sample_slots(util::Rng& rng) const {
    return dist().sample_slots(rng);
}

bool SemiMarkovParams::valid(double tol) const noexcept {
    for (int i = 0; i < markov::kNumStates; ++i) {
        if (jump[i][i] != 0.0) return false;
        double sum = 0.0;
        for (int j = 0; j < markov::kNumStates; ++j) {
            if (jump[i][j] < 0.0 || jump[i][j] > 1.0) return false;
            sum += jump[i][j];
        }
        if (std::fabs(sum - 1.0) > tol) return false;
    }
    for (const auto& s : sojourn)
        if (!s.valid()) return false;
    return true;
}

SemiMarkovAvailability::SemiMarkovAvailability(SemiMarkovParams params)
    : params_(params) {
    if (!params_.valid())
        throw std::invalid_argument(
            "SemiMarkovAvailability: invalid parameters");
}

ProcState SemiMarkovAvailability::initial_state(util::Rng& rng) {
    remaining_ = params_.sojourn[0].sample_slots(rng); // start UP
    return ProcState::Up;
}

ProcState SemiMarkovAvailability::next_state(ProcState current,
                                             util::Rng& rng) {
    if (remaining_ > 1) {
        --remaining_;
        return current;
    }
    // Sojourn expired: jump to a different state and draw its sojourn.
    const auto& row = params_.jump[static_cast<int>(current)];
    const double r = rng.uniform();
    ProcState next;
    if (r < row[0]) next = ProcState::Up;
    else if (r < row[0] + row[1]) next = ProcState::Reclaimed;
    else next = ProcState::Down;
    remaining_ = params_.sojourn[static_cast<int>(next)].sample_slots(rng);
    return next;
}

std::unique_ptr<markov::AvailabilityModel> SemiMarkovAvailability::clone() const {
    return std::make_unique<SemiMarkovAvailability>(params_);
}

markov::TransitionMatrix SemiMarkovAvailability::equivalent_markov_matrix() const {
    // A geometric sojourn with the same mean has per-slot exit probability
    // 1/mean; the exit mass is split per the jump chain.
    std::array<std::array<double, 3>, 3> rows{};
    for (int i = 0; i < markov::kNumStates; ++i) {
        const double mean = params_.sojourn[i].mean();
        const double exit = mean <= 1.0 ? 1.0 : 1.0 / mean;
        for (int j = 0; j < markov::kNumStates; ++j)
            rows[i][j] = (i == j) ? 1.0 - exit : exit * params_.jump[i][j];
    }
    return markov::TransitionMatrix(rows);
}

namespace {

/// Shared fleet shape: UP = m, RECLAIMED = m/4 (coffee-break preemptions),
/// DOWN = m/2 (reboots / long failures); preemption far more common than a
/// crash; RECLAIMED mostly returns UP; a finished DOWN reboots into UP.
SemiMarkovParams desktop_grid_shape(double mean_up_slots,
                                    const std::array<SojournDist, 3>& dists) {
    if (mean_up_slots < 1.0)
        throw std::invalid_argument("desktop_grid_params: mean_up_slots < 1");
    SemiMarkovParams p;
    p.sojourn = dists;
    p.jump[0] = {0.0, 0.85, 0.15};
    p.jump[1] = {0.90, 0.0, 0.10};
    p.jump[2] = {0.95, 0.05, 0.0};
    return p;
}

} // namespace

SemiMarkovParams desktop_grid_params(double mean_up_slots) {
    if (mean_up_slots < 1.0)
        throw std::invalid_argument("desktop_grid_params: mean_up_slots < 1");
    return desktop_grid_shape(
        mean_up_slots,
        {SojournDist::weibull_with_mean(0.7, mean_up_slots),
         SojournDist::weibull_with_mean(0.9, mean_up_slots / 4.0),
         SojournDist::weibull_with_mean(0.8, mean_up_slots / 2.0)});
}

SemiMarkovParams desktop_grid_params_lognormal(double mean_up_slots) {
    if (mean_up_slots < 1.0)
        throw std::invalid_argument(
            "desktop_grid_params_lognormal: mean_up_slots < 1");
    return desktop_grid_shape(
        mean_up_slots,
        {SojournDist::lognormal_with_mean(1.2, mean_up_slots),
         SojournDist::lognormal_with_mean(0.8, mean_up_slots / 4.0),
         SojournDist::lognormal_with_mean(1.0, mean_up_slots / 2.0)});
}

} // namespace volsched::trace
