#pragma once
/// \file replay.hpp
/// Recorded availability traces: capture, (de)serialization, and an
/// AvailabilityModel that replays a trace slot by slot.  This is the code
/// path one would use with Failure Trace Archive data (the paper's stated
/// empirical next step); here traces come from our own generators.

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "markov/availability.hpp"

namespace volsched::trace {

/// One processor's availability, one ProcState per slot.
struct RecordedTrace {
    std::vector<markov::ProcState> states;

    [[nodiscard]] std::size_t length() const noexcept { return states.size(); }
};

/// Samples `slots` slots from a (clone of a) prototype model.
RecordedTrace record(const markov::AvailabilityModel& prototype,
                     std::size_t slots, util::Rng& rng);

/// Serializes traces as lines of 'u'/'r'/'d' characters, one processor per
/// line; `#`-prefixed lines are comments.
void write_traces(std::ostream& out, const std::vector<RecordedTrace>& traces);
std::vector<RecordedTrace> read_traces(std::istream& in);

/// Replays a recorded trace.  Past the end of the trace the behaviour is
/// either to hold the last state (`HoldLast`) or wrap around (`Loop`).
class ReplayAvailability final : public markov::AvailabilityModel {
public:
    enum class EndPolicy { HoldLast, Loop };

    explicit ReplayAvailability(RecordedTrace trace,
                                EndPolicy policy = EndPolicy::Loop);

    markov::ProcState initial_state(util::Rng& rng) override;
    markov::ProcState next_state(markov::ProcState current,
                                 util::Rng& rng) override;
    [[nodiscard]] std::unique_ptr<markov::AvailabilityModel> clone() const override;

private:
    RecordedTrace trace_;
    EndPolicy policy_;
    std::size_t cursor_ = 0;
};

} // namespace volsched::trace
