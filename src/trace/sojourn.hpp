#pragma once
/// \file sojourn.hpp
/// Sojourn-duration distributions for semi-Markov availability processes.
/// Empirical desktop-grid studies variously report Weibull and lognormal
/// availability-interval distributions (refs [8,10] of the paper); both are
/// provided behind one value type so experiments can swap them freely.

#include "util/rng.hpp"

namespace volsched::trace {

/// A positive duration distribution, discretized to whole slots (>= 1).
struct SojournDist {
    enum class Kind { Weibull, LogNormal };

    Kind kind = Kind::Weibull;
    /// Weibull: shape k.  LogNormal: sigma (log-space standard deviation).
    double shape = 1.0;
    /// Weibull: scale lambda.  LogNormal: exp(mu) (the median).
    double scale = 1.0;

    /// Draws a duration in slots (at least 1).
    [[nodiscard]] long long sample_slots(util::Rng& rng) const;

    /// Continuous-distribution mean (before slot discretization).
    [[nodiscard]] double mean() const;

    [[nodiscard]] bool valid() const noexcept {
        return shape > 0.0 && scale > 0.0;
    }

    /// Weibull with the given shape whose mean equals `mean`.
    static SojournDist weibull_with_mean(double shape, double mean);
    /// LogNormal with the given sigma whose mean equals `mean`.
    static SojournDist lognormal_with_mean(double sigma, double mean);
};

} // namespace volsched::trace
