#pragma once
/// \file greedy_sched.hpp
/// The eight greedy heuristics of Section 6.3, all built on the completion
/// time estimators of ct.hpp and the Markov formulas of Section 5:
///
///   MCT / MCT*   — minimize CT(q, nq+1)                     (Eq. 1 / Eq. 2)
///   EMCT / EMCT* — minimize E^q(CT(q, nq+1))                (Theorem 2)
///   LW / LW*     — maximize (P+^q)^{CT(q, nq+1)}            (Lemma 1)
///   UD / UD*     — maximize P_UD^q(E^q(CT(q, nq+1)))        (Section 6.3.3)
///
/// Ties are broken toward the smaller CT estimate, then the lower processor
/// index, making every greedy heuristic fully deterministic.
///
/// Scoring runs in batched passes over contiguous arrays — one pass fills
/// the completion-time estimates, one pass the scores, one argmin pass
/// picks the winner — with the Markov expectations memoized per transition
/// matrix (markov/expectation_cache.hpp).  Both are pure layout/caching
/// changes: decisions, tie-breaks and RNG consumption are bit-identical to
/// the scalar one-worker-at-a-time evaluation, a property the heuristic
/// test suite pins.

#include <string>
#include <vector>

#include "core/belief_pins.hpp"
#include "markov/expectation_cache.hpp"
#include "sim/scheduler.hpp"

namespace volsched::core {

/// Shared skeleton: score every eligible processor, keep the best.
class GreedyScheduler : public sim::Scheduler {
public:
    sim::ProcId select(const sim::SchedView& view,
                       std::span<const sim::ProcId> eligible,
                       std::span<const int> nq, util::Rng& rng) final;
    /// Round entry: pin every processor's belief in the expectation cache
    /// (one probe + validation each), so the scoring loops below read
    /// through handles only.
    void begin_round(const sim::SchedView& view) final {
        pins_.repin(cache_, view);
    }
    [[nodiscard]] std::string_view name() const final { return name_; }

    /// The scoring passes select() runs, exposed so the property tests can
    /// compare the batched path against scalar re-evaluation: resizes and
    /// fills `cts[i]` / `scores[i]` for `eligible[i]`.  *Smaller score is
    /// better* (maximizing heuristics negate); `cts` feeds tie-breaking.
    void batched_scores(const sim::SchedView& view,
                        std::span<const sim::ProcId> eligible,
                        std::span<const int> nq, std::vector<double>& cts,
                        std::vector<double>& scores);

    /// Scalar reference scorer: one worker at a time, straight from the
    /// markov:: free functions — the seed implementation, byte for byte.
    /// score_batch must match it bit-exactly (the property tests compare
    /// the two), and select() runs it when the expectation cache is
    /// bypassed, making the benchmark A/B a faithful before/after of the
    /// whole batched+memoized scoring path.
    [[nodiscard]] virtual double score(const sim::SchedView& view,
                                       sim::ProcId q, double ct) const = 0;

    /// Expectation-cache counters, exposed for tests and diagnostics.
    [[nodiscard]] const markov::ExpectationCache& cache() const noexcept {
        return cache_;
    }

    /// Memoization counters for RunMetrics / --metrics-json (observational
    /// only; the cached path scores bit-identically to the scalar path).
    [[nodiscard]] sim::SchedulerCounters counters() const override {
        return {cache_.hits(), cache_.misses(), cache_.invalidations()};
    }

protected:
    GreedyScheduler(std::string base_name, bool starred);

    /// One contiguous scoring pass: `scores[i]` = score of assigning the
    /// next instance to `eligible[i]` given the completion-time estimate
    /// `cts[i]`.  No per-element virtual dispatch — each heuristic is one
    /// tight loop the compiler can vectorize.
    virtual void score_batch(const sim::SchedView& view,
                             std::span<const sim::ProcId> eligible,
                             std::span<const double> cts,
                             std::span<double> scores) = 0;

    [[nodiscard]] markov::ExpectationCache& cache() noexcept {
        return cache_;
    }
    /// The handle pinned for processor `q` this round (null when the
    /// processor has no belief — callers branch on belief themselves).
    [[nodiscard]] markov::ExpectationCache::Handle pin_of(
        sim::ProcId q) const {
        return pins_.handles[static_cast<std::size_t>(q)];
    }
    /// Processor q's belief chain, read from the round's contiguous
    /// snapshot rather than the strided ProcView records.
    [[nodiscard]] const markov::MarkovChain* belief_of(sim::ProcId q) const {
        return pins_.beliefs[static_cast<std::size_t>(q)];
    }
    [[nodiscard]] bool starred() const noexcept { return starred_; }

private:
    std::string name_;
    bool starred_;
    markov::ExpectationCache cache_;
    BeliefPins pins_;
    // Scratch for select(): reused across rounds, never shrunk.
    std::vector<double> cts_;
    std::vector<double> scores_;
};

/// MCT and MCT* (Section 6.3.1): minimum estimated completion time — the
/// optimal policy for the contention-free off-line problem (Proposition 2).
class MctScheduler final : public GreedyScheduler {
public:
    explicit MctScheduler(bool starred_variant);

    [[nodiscard]] double score(const sim::SchedView& view, sim::ProcId q,
                               double ct) const override;

protected:
    void score_batch(const sim::SchedView& view,
                     std::span<const sim::ProcId> eligible,
                     std::span<const double> cts,
                     std::span<double> scores) override;
};

/// EMCT and EMCT*: minimum *expected* completion time, inflating CT by the
/// expected RECLAIMED detours via Theorem 2.
class EmctScheduler final : public GreedyScheduler {
public:
    explicit EmctScheduler(bool starred_variant);

    [[nodiscard]] double score(const sim::SchedView& view, sim::ProcId q,
                               double ct) const override;

protected:
    void score_batch(const sim::SchedView& view,
                     std::span<const sim::ProcId> eligible,
                     std::span<const double> cts,
                     std::span<double> scores) override;
};

/// LW and LW* (Section 6.3.2): maximize the probability that the processor
/// stays failure-free for its whole estimated workload, (P+)^CT.  Scores
/// compare CT * ln(P+) to avoid underflow for large workloads.
class LwScheduler final : public GreedyScheduler {
public:
    explicit LwScheduler(bool starred_variant);

    [[nodiscard]] double score(const sim::SchedView& view, sim::ProcId q,
                               double ct) const override;

protected:
    void score_batch(const sim::SchedView& view,
                     std::span<const sim::ProcId> eligible,
                     std::span<const double> cts,
                     std::span<double> scores) override;
};

/// UD and UD* (Section 6.3.3): maximize the probability of not crashing
/// during the *expected* number of wall-clock slots E(CT), RECLAIMED slots
/// included, using the paper's closed-form P_UD approximation.
class UdScheduler final : public GreedyScheduler {
public:
    explicit UdScheduler(bool starred_variant);

    [[nodiscard]] double score(const sim::SchedView& view, sim::ProcId q,
                               double ct) const override;

protected:
    void score_batch(const sim::SchedView& view,
                     std::span<const sim::ProcId> eligible,
                     std::span<const double> cts,
                     std::span<double> scores) override;
};

} // namespace volsched::core
