#pragma once
/// \file greedy_sched.hpp
/// The eight greedy heuristics of Section 6.3, all built on the completion
/// time estimators of ct.hpp and the Markov formulas of Section 5:
///
///   MCT / MCT*   — minimize CT(q, nq+1)                     (Eq. 1 / Eq. 2)
///   EMCT / EMCT* — minimize E^q(CT(q, nq+1))                (Theorem 2)
///   LW / LW*     — maximize (P+^q)^{CT(q, nq+1)}            (Lemma 1)
///   UD / UD*     — maximize P_UD^q(E^q(CT(q, nq+1)))        (Section 6.3.3)
///
/// Ties are broken toward the smaller CT estimate, then the lower processor
/// index, making every greedy heuristic fully deterministic.

#include <string>

#include "sim/scheduler.hpp"

namespace volsched::core {

/// Shared skeleton: score every eligible processor, keep the best.
class GreedyScheduler : public sim::Scheduler {
public:
    sim::ProcId select(const sim::SchedView& view,
                       std::span<const sim::ProcId> eligible,
                       std::span<const int> nq, util::Rng& rng) final;
    [[nodiscard]] std::string_view name() const final { return name_; }

protected:
    GreedyScheduler(std::string base_name, bool starred);

    /// Returns the score of assigning the next instance to q; *smaller is
    /// better* (maximizing heuristics negate).  `ct` is the matching
    /// completion-time estimate, provided for tie-breaking.
    [[nodiscard]] virtual double score(const sim::SchedView& view,
                                       sim::ProcId q, double ct) const = 0;

    [[nodiscard]] bool starred() const noexcept { return starred_; }

private:
    std::string name_;
    bool starred_;
};

/// MCT and MCT* (Section 6.3.1): minimum estimated completion time — the
/// optimal policy for the contention-free off-line problem (Proposition 2).
class MctScheduler final : public GreedyScheduler {
public:
    explicit MctScheduler(bool starred_variant);

protected:
    double score(const sim::SchedView& view, sim::ProcId q,
                 double ct) const override;
};

/// EMCT and EMCT*: minimum *expected* completion time, inflating CT by the
/// expected RECLAIMED detours via Theorem 2.
class EmctScheduler final : public GreedyScheduler {
public:
    explicit EmctScheduler(bool starred_variant);

protected:
    double score(const sim::SchedView& view, sim::ProcId q,
                 double ct) const override;
};

/// LW and LW* (Section 6.3.2): maximize the probability that the processor
/// stays failure-free for its whole estimated workload, (P+)^CT.  Scores
/// compare CT * ln(P+) to avoid underflow for large workloads.
class LwScheduler final : public GreedyScheduler {
public:
    explicit LwScheduler(bool starred_variant);

protected:
    double score(const sim::SchedView& view, sim::ProcId q,
                 double ct) const override;
};

/// UD and UD* (Section 6.3.3): maximize the probability of not crashing
/// during the *expected* number of wall-clock slots E(CT), RECLAIMED slots
/// included, using the paper's closed-form P_UD approximation.
class UdScheduler final : public GreedyScheduler {
public:
    explicit UdScheduler(bool starred_variant);

protected:
    double score(const sim::SchedView& view, sim::ProcId q,
                 double ct) const override;
};

} // namespace volsched::core
