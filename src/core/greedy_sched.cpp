#include "core/greedy_sched.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "api/registry.hpp"
#include "core/ct.hpp"
#include "markov/expectation.hpp"

namespace volsched::core {

GreedyScheduler::GreedyScheduler(std::string base_name, bool starred_variant)
    : name_(std::move(base_name)), starred_(starred_variant) {
    if (starred_) name_ += "*";
}

void GreedyScheduler::batched_scores(const sim::SchedView& view,
                                     std::span<const sim::ProcId> eligible,
                                     std::span<const int> nq,
                                     std::vector<double>& cts,
                                     std::vector<double>& scores) {
    pins_.refresh(cache(), view);
    cts.resize(eligible.size());
    scores.resize(eligible.size());
    // Inline Eq. (1)/(2) over the round's contiguous column snapshots,
    // operation for operation the arithmetic of ct_plain/ct_corrected
    // (max(n-1, 0) with n = nq[q]+1 is just nq[q]).  ct_estimate stays
    // the reference; the bypassed select() loop still calls it.
    if (!starred_) {
        const double t_data = view.platform->t_data;
        for (std::size_t i = 0; i < eligible.size(); ++i) {
            const auto q = static_cast<std::size_t>(eligible[i]);
            cts[i] = pins_.delay[q] + t_data +
                     static_cast<double>(nq[q]) * pins_.step_plain[q] +
                     pins_.w[q];
        }
    } else {
        const int ncom = view.platform->ncom;
        const double t_data = view.platform->t_data;
        // The congestion factor takes one of two values per select: q
        // already enrolled this round, or prospectively enrolled by this
        // assignment.
        const double td_already =
            static_cast<double>((view.nactive + ncom - 1) / ncom) * t_data;
        const double td_fresh =
            static_cast<double>((view.nactive + 1 + ncom - 1) / ncom) *
            t_data;
        for (std::size_t i = 0; i < eligible.size(); ++i) {
            const auto q = static_cast<std::size_t>(eligible[i]);
            const double td = nq[q] > 0 ? td_already : td_fresh;
            cts[i] = pins_.delay[q] + td +
                     static_cast<double>(nq[q]) * std::max(td, pins_.w[q]) +
                     pins_.w[q];
        }
    }
    score_batch(view, eligible, cts, scores);
}

sim::ProcId GreedyScheduler::select(const sim::SchedView& view,
                                    std::span<const sim::ProcId> eligible,
                                    std::span<const int> nq, util::Rng& rng) {
    (void)rng;
    if (markov::ExpectationCache::bypassed()) {
        // The seed scoring loop, kept verbatim: one worker at a time, a
        // virtual score() per element, every expectation recomputed.  This
        // is the benchmark A/B's "before" leg; it must stay the faithful
        // pre-change cost model, not a de-cached copy of the batched path.
        sim::ProcId best = eligible[0];
        double best_score = std::numeric_limits<double>::infinity();
        double best_ct = std::numeric_limits<double>::infinity();
        for (sim::ProcId q : eligible) {
            const double ct =
                ct_estimate(view, q, nq[q] + 1, nq[q] > 0, starred());
            const double s = score(view, q, ct);
            if (s < best_score - 1e-12 ||
                (std::fabs(s - best_score) <= 1e-12 && ct < best_ct)) {
                best = q;
                best_score = s;
                best_ct = ct;
            }
        }
        return best;
    }
    batched_scores(view, eligible, nq, cts_, scores_);
    sim::ProcId best = eligible[0];
    double best_score = std::numeric_limits<double>::infinity();
    double best_ct = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < eligible.size(); ++i) {
        const double s = scores_[i];
        const double ct = cts_[i];
        if (s < best_score - 1e-12 ||
            (std::fabs(s - best_score) <= 1e-12 && ct < best_ct)) {
            best = eligible[i];
            best_score = s;
            best_ct = ct;
        }
    }
    return best;
}

MctScheduler::MctScheduler(bool starred_variant)
    : GreedyScheduler("mct", starred_variant) {}

double MctScheduler::score(const sim::SchedView&, sim::ProcId,
                           double ct) const {
    return ct;
}

void MctScheduler::score_batch(const sim::SchedView&,
                               std::span<const sim::ProcId> eligible,
                               std::span<const double> cts,
                               std::span<double> scores) {
    for (std::size_t i = 0; i < eligible.size(); ++i) scores[i] = cts[i];
}

EmctScheduler::EmctScheduler(bool starred_variant)
    : GreedyScheduler("emct", starred_variant) {}

double EmctScheduler::score(const sim::SchedView& view, sim::ProcId q,
                            double ct) const {
    const auto* belief = view.procs[q].belief;
    if (belief == nullptr) return ct; // uninformed: degrade to MCT
    return markov::e_workload(belief->matrix(), ct);
}

void EmctScheduler::score_batch(const sim::SchedView& view,
                                std::span<const sim::ProcId> eligible,
                                std::span<const double> cts,
                                std::span<double> scores) {
    (void)view;
    for (std::size_t i = 0; i < eligible.size(); ++i) {
        scores[i] = belief_of(eligible[i]) == nullptr
                        ? cts[i] // uninformed: degrade to MCT
                        : cache().e_workload(pin_of(eligible[i]), cts[i]);
    }
}

LwScheduler::LwScheduler(bool starred_variant)
    : GreedyScheduler("lw", starred_variant) {}

double LwScheduler::score(const sim::SchedView& view, sim::ProcId q,
                          double ct) const {
    const auto* belief = view.procs[q].belief;
    if (belief == nullptr) return 0.0; // uninformed: all ties, CT breaks them
    const double p = markov::p_plus(belief->matrix());
    if (p <= 0.0) return std::numeric_limits<double>::infinity();
    // Maximize p^ct  <=>  minimize -ct * ln(p)  (ln(p) <= 0).
    return -ct * std::log(p);
}

void LwScheduler::score_batch(const sim::SchedView& view,
                              std::span<const sim::ProcId> eligible,
                              std::span<const double> cts,
                              std::span<double> scores) {
    (void)view;
    for (std::size_t i = 0; i < eligible.size(); ++i) {
        if (belief_of(eligible[i]) == nullptr) {
            scores[i] = 0.0; // uninformed: all ties, CT breaks them
            continue;
        }
        const auto h = pin_of(eligible[i]);
        const double p = cache().p_plus(h);
        // Maximize p^ct  <=>  minimize -ct * ln(p)  (ln(p) <= 0).
        scores[i] = p <= 0.0 ? std::numeric_limits<double>::infinity()
                             : -cts[i] * cache().log_p_plus(h);
    }
}

UdScheduler::UdScheduler(bool starred_variant)
    : GreedyScheduler("ud", starred_variant) {}

double UdScheduler::score(const sim::SchedView& view, sim::ProcId q,
                          double ct) const {
    const auto* belief = view.procs[q].belief;
    if (belief == nullptr) return 0.0;
    const auto& m = belief->matrix();
    const auto& pi = belief->stationary();
    const double expected = markov::e_workload(m, ct);
    if (std::isinf(expected)) return std::numeric_limits<double>::infinity();
    const double p = markov::p_ud_approx(m, pi.pi_u, pi.pi_r, expected);
    // Maximize p  <=>  minimize -p (log not needed: p is a single factor).
    return -p;
}

void UdScheduler::score_batch(const sim::SchedView& view,
                              std::span<const sim::ProcId> eligible,
                              std::span<const double> cts,
                              std::span<double> scores) {
    (void)view;
    for (std::size_t i = 0; i < eligible.size(); ++i) {
        if (belief_of(eligible[i]) == nullptr) {
            scores[i] = 0.0;
            continue;
        }
        const auto h = pin_of(eligible[i]);
        const double expected = cache().e_workload(h, cts[i]);
        if (std::isinf(expected)) {
            scores[i] = std::numeric_limits<double>::infinity();
            continue;
        }
        // Maximize p  <=>  minimize -p (log not needed: one factor).
        scores[i] = -cache().p_ud_approx(h, expected);
    }
}

// ---------------------------------------------------------------------------
// Registry self-registration: the eight greedy heuristics of Section 6.3.
// ---------------------------------------------------------------------------
namespace {

/// Factory for a greedy scheduler with no spec options beyond its name.
template <class S>
auto greedy_factory(bool starred) {
    return [starred](const api::SchedulerSpec& spec,
                     const api::SchedulerRegistry&)
               -> std::unique_ptr<sim::Scheduler> {
        api::require_no_options(spec);
        return std::make_unique<S>(starred);
    };
}

VOLSCHED_REGISTER_SCHEDULER(mct, {
    "mct", "minimum estimated completion time (Section 6.3.1)",
    greedy_factory<MctScheduler>(false)});
VOLSCHED_REGISTER_SCHEDULER(mct_star, {
    "mct*", "MCT with the nactive spread correction",
    greedy_factory<MctScheduler>(true)});
VOLSCHED_REGISTER_SCHEDULER(emct, {
    "emct", "minimum expected completion time under the belief (Theorem 2)",
    greedy_factory<EmctScheduler>(false)});
VOLSCHED_REGISTER_SCHEDULER(emct_star, {
    "emct*", "EMCT with the nactive spread correction",
    greedy_factory<EmctScheduler>(true)});
VOLSCHED_REGISTER_SCHEDULER(lw, {
    "lw", "most likely to stay up for the whole workload (Section 6.3.2)",
    greedy_factory<LwScheduler>(false)});
VOLSCHED_REGISTER_SCHEDULER(lw_star, {
    "lw*", "LW with the nactive spread correction",
    greedy_factory<LwScheduler>(true)});
VOLSCHED_REGISTER_SCHEDULER(ud, {
    "ud", "max probability of no crash during E(CT) (Section 6.3.3)",
    greedy_factory<UdScheduler>(false)});
VOLSCHED_REGISTER_SCHEDULER(ud_star, {
    "ud*", "UD with the nactive spread correction",
    greedy_factory<UdScheduler>(true)});

} // namespace

} // namespace volsched::core

VOLSCHED_SCHEDULER_TU_ANCHOR(greedy)
