#include "core/greedy_sched.hpp"

#include <cmath>
#include <limits>
#include <memory>

#include "api/registry.hpp"
#include "core/ct.hpp"
#include "markov/expectation.hpp"

namespace volsched::core {

GreedyScheduler::GreedyScheduler(std::string base_name, bool starred_variant)
    : name_(std::move(base_name)), starred_(starred_variant) {
    if (starred_) name_ += "*";
}

sim::ProcId GreedyScheduler::select(const sim::SchedView& view,
                                    std::span<const sim::ProcId> eligible,
                                    std::span<const int> nq, util::Rng& rng) {
    (void)rng;
    sim::ProcId best = eligible[0];
    double best_score = std::numeric_limits<double>::infinity();
    double best_ct = std::numeric_limits<double>::infinity();
    for (sim::ProcId q : eligible) {
        const double ct =
            ct_estimate(view, q, nq[q] + 1, nq[q] > 0, starred_);
        const double s = score(view, q, ct);
        if (s < best_score - 1e-12 ||
            (std::fabs(s - best_score) <= 1e-12 && ct < best_ct)) {
            best = q;
            best_score = s;
            best_ct = ct;
        }
    }
    return best;
}

MctScheduler::MctScheduler(bool starred_variant)
    : GreedyScheduler("mct", starred_variant) {}

double MctScheduler::score(const sim::SchedView&, sim::ProcId,
                           double ct) const {
    return ct;
}

EmctScheduler::EmctScheduler(bool starred_variant)
    : GreedyScheduler("emct", starred_variant) {}

double EmctScheduler::score(const sim::SchedView& view, sim::ProcId q,
                            double ct) const {
    const auto* belief = view.procs[q].belief;
    if (belief == nullptr) return ct; // uninformed: degrade to MCT
    return markov::e_workload(belief->matrix(), ct);
}

LwScheduler::LwScheduler(bool starred_variant)
    : GreedyScheduler("lw", starred_variant) {}

double LwScheduler::score(const sim::SchedView& view, sim::ProcId q,
                          double ct) const {
    const auto* belief = view.procs[q].belief;
    if (belief == nullptr) return 0.0; // uninformed: all ties, CT breaks them
    const double p = markov::p_plus(belief->matrix());
    if (p <= 0.0) return std::numeric_limits<double>::infinity();
    // Maximize p^ct  <=>  minimize -ct * ln(p)  (ln(p) <= 0).
    return -ct * std::log(p);
}

UdScheduler::UdScheduler(bool starred_variant)
    : GreedyScheduler("ud", starred_variant) {}

double UdScheduler::score(const sim::SchedView& view, sim::ProcId q,
                          double ct) const {
    const auto* belief = view.procs[q].belief;
    if (belief == nullptr) return 0.0;
    const auto& m = belief->matrix();
    const auto& pi = belief->stationary();
    const double expected = markov::e_workload(m, ct);
    if (std::isinf(expected)) return std::numeric_limits<double>::infinity();
    const double p = markov::p_ud_approx(m, pi.pi_u, pi.pi_r, expected);
    // Maximize p  <=>  minimize -p (log not needed: p is a single factor).
    return -p;
}

// ---------------------------------------------------------------------------
// Registry self-registration: the eight greedy heuristics of Section 6.3.
// ---------------------------------------------------------------------------
namespace {

/// Factory for a greedy scheduler with no spec options beyond its name.
template <class S>
auto greedy_factory(bool starred) {
    return [starred](const api::SchedulerSpec& spec,
                     const api::SchedulerRegistry&)
               -> std::unique_ptr<sim::Scheduler> {
        api::require_no_options(spec);
        return std::make_unique<S>(starred);
    };
}

VOLSCHED_REGISTER_SCHEDULER(mct, {
    "mct", "minimum estimated completion time (Section 6.3.1)",
    greedy_factory<MctScheduler>(false)});
VOLSCHED_REGISTER_SCHEDULER(mct_star, {
    "mct*", "MCT with the nactive spread correction",
    greedy_factory<MctScheduler>(true)});
VOLSCHED_REGISTER_SCHEDULER(emct, {
    "emct", "minimum expected completion time under the belief (Theorem 2)",
    greedy_factory<EmctScheduler>(false)});
VOLSCHED_REGISTER_SCHEDULER(emct_star, {
    "emct*", "EMCT with the nactive spread correction",
    greedy_factory<EmctScheduler>(true)});
VOLSCHED_REGISTER_SCHEDULER(lw, {
    "lw", "most likely to stay up for the whole workload (Section 6.3.2)",
    greedy_factory<LwScheduler>(false)});
VOLSCHED_REGISTER_SCHEDULER(lw_star, {
    "lw*", "LW with the nactive spread correction",
    greedy_factory<LwScheduler>(true)});
VOLSCHED_REGISTER_SCHEDULER(ud, {
    "ud", "max probability of no crash during E(CT) (Section 6.3.3)",
    greedy_factory<UdScheduler>(false)});
VOLSCHED_REGISTER_SCHEDULER(ud_star, {
    "ud*", "UD with the nactive spread correction",
    greedy_factory<UdScheduler>(true)});

} // namespace

} // namespace volsched::core

VOLSCHED_SCHEDULER_TU_ANCHOR(greedy)
