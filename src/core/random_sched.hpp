#pragma once
/// \file random_sched.hpp
/// The nine random heuristics of Section 6.2.  Each picks an UP processor
/// with probability proportional to a reliability weight:
///
///   Random   — uniform
///   Random1  — P_uu            ("long time UP")
///   Random2  — P+              ("likely to work more", Lemma 1)
///   Random3  — pi_u            ("often UP")
///   Random4  — 1 - pi_d        ("rarely DOWN")
///
/// The `w` suffix divides the weight by w_q, blending speed into the pick.

#include <string>

#include "sim/scheduler.hpp"

namespace volsched::core {

enum class RandomWeight {
    Uniform,
    LongTimeUp,     // Random1
    LikelyWorkMore, // Random2
    OftenUp,        // Random3
    RarelyDown,     // Random4
};

class RandomScheduler final : public sim::Scheduler {
public:
    RandomScheduler(RandomWeight weight, bool divide_by_speed);

    sim::ProcId select(const sim::SchedView& view,
                       std::span<const sim::ProcId> eligible,
                       std::span<const int> nq, util::Rng& rng) override;
    [[nodiscard]] std::string_view name() const override { return name_; }

private:
    [[nodiscard]] double weight_of(const sim::ProcView& pv) const;

    RandomWeight weight_;
    bool divide_by_speed_;
    std::string name_;
    std::vector<double> weights_; // scratch, sized per call
};

} // namespace volsched::core
