#pragma once
/// \file random_sched.hpp
/// The nine random heuristics of Section 6.2.  Each picks an UP processor
/// with probability proportional to a reliability weight:
///
///   Random   — uniform
///   Random1  — P_uu            ("long time UP")
///   Random2  — P+              ("likely to work more", Lemma 1)
///   Random3  — pi_u            ("often UP")
///   Random4  — 1 - pi_d        ("rarely DOWN")
///
/// The `w` suffix divides the weight by w_q, blending speed into the pick.
///
/// A processor's weight depends only on its belief chain and speed, both
/// fixed for a whole run, so begin_round() computes every weight once and
/// select() merely gathers them — same weights, same RNG draws, decisions
/// bit-identical to evaluating weight_of per pick.

#include <string>
#include <vector>

#include "sim/scheduler.hpp"

namespace volsched::core {

enum class RandomWeight {
    Uniform,
    LongTimeUp,     // Random1
    LikelyWorkMore, // Random2
    OftenUp,        // Random3
    RarelyDown,     // Random4
};

class RandomScheduler final : public sim::Scheduler {
public:
    RandomScheduler(RandomWeight weight, bool divide_by_speed);

    sim::ProcId select(const sim::SchedView& view,
                       std::span<const sim::ProcId> eligible,
                       std::span<const int> nq, util::Rng& rng) override;
    void begin_round(const sim::SchedView& view) override;
    [[nodiscard]] std::string_view name() const override { return name_; }

private:
    [[nodiscard]] double weight_of(const sim::ProcView& pv) const;
    /// Recompute weight_by_proc_ unless the view's (belief, speed) wiring
    /// matches what is already cached — the safety net for callers that
    /// drive select() without the engine's begin_round protocol.
    void refresh_weights(const sim::SchedView& view);

    RandomWeight weight_;
    bool divide_by_speed_;
    std::string name_;
    std::vector<double> weights_; // scratch, sized per call
    // Per-processor weights for the current round, plus the inputs they
    // were computed from (for refresh_weights' change detection).
    std::vector<double> weight_by_proc_;
    std::vector<const markov::MarkovChain*> weight_beliefs_;
    std::vector<double> weight_speeds_;
    /// The view begin_round() pinned: select()'s refresh is a pointer
    /// compare in the engine's begin_round protocol, and the (belief,
    /// speed) content check only runs for a foreign view.
    const sim::SchedView* weights_view_ = nullptr;
};

} // namespace volsched::core
