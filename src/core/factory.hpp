#pragma once
/// \file factory.hpp
/// Compatibility shim over the self-registering scheduler registry
/// (api/registry.hpp) plus the paper's curated heuristic name lists.
/// make_scheduler delegates to SchedulerRegistry; new heuristics register
/// themselves with VOLSCHED_REGISTER_SCHEDULER and need no edits here.

#include <memory>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"

namespace volsched::core {

/// All seventeen heuristic names of Section 6 in the paper's Table 2 order:
/// emct, emct*, mct, mct*, ud*, ud, lw*, lw, random1w..random4w (w-variants),
/// random1..random4, random.
const std::vector<std::string>& all_heuristic_names();

/// The eight greedy heuristics (Table 3 / Figure 2 focus).
const std::vector<std::string>& greedy_heuristic_names();

/// Extension heuristics (not part of the paper's evaluation): "hybrid"
/// (restart-aware expected completion) and the threshold-exclusion family
/// "thr<percent>:<inner>" (e.g. "thr50:emct" excludes processors whose
/// steady-state pi_u is below 0.50 and runs EMCT among the rest).
const std::vector<std::string>& extension_heuristic_names();

/// Constructs a heuristic from a registry spec string; throws
/// std::invalid_argument (with a did-you-mean suggestion) for an unknown
/// name.  Names are case-sensitive and match Table 2 (lowercased, e.g.
/// "emct*", "random2w"); the full spec grammar — wrapper stages and
/// key=value options like "thr(percent=50):emct" — is documented in
/// api/spec.hpp and API.md.  Thin shim over
/// api::SchedulerRegistry::instance().make(name).
std::unique_ptr<sim::Scheduler> make_scheduler(const std::string& name);

} // namespace volsched::core
