#pragma once
/// \file factory.hpp
/// String-keyed construction of every heuristic in the paper, for the
/// experiment harness, benches and examples.

#include <memory>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"

namespace volsched::core {

/// All seventeen heuristic names of Section 6 in the paper's Table 2 order:
/// emct, emct*, mct, mct*, ud*, ud, lw*, lw, random1w..random4w (w-variants),
/// random1..random4, random.
const std::vector<std::string>& all_heuristic_names();

/// The eight greedy heuristics (Table 3 / Figure 2 focus).
const std::vector<std::string>& greedy_heuristic_names();

/// Extension heuristics (not part of the paper's evaluation): "hybrid"
/// (restart-aware expected completion) and the threshold-exclusion family
/// "thr<percent>:<inner>" (e.g. "thr50:emct" excludes processors whose
/// steady-state pi_u is below 0.50 and runs EMCT among the rest).
const std::vector<std::string>& extension_heuristic_names();

/// Constructs a heuristic by name; throws std::invalid_argument for an
/// unknown name.  Names are case-sensitive and match Table 2 (lowercased,
/// e.g. "emct*", "random2w"); extension names as documented above.
std::unique_ptr<sim::Scheduler> make_scheduler(const std::string& name);

} // namespace volsched::core
