#include "core/extensions.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "api/registry.hpp"
#include "core/ct.hpp"
#include "markov/expectation.hpp"

namespace volsched::core {

ThresholdScheduler::ThresholdScheduler(std::unique_ptr<sim::Scheduler> inner,
                                       double threshold)
    : inner_(std::move(inner)), threshold_(threshold) {
    if (!inner_)
        throw std::invalid_argument("ThresholdScheduler: null inner");
    if (threshold_ < 0.0 || threshold_ > 1.0)
        throw std::invalid_argument(
            "ThresholdScheduler: threshold outside [0, 1]");
    char buf[64];
    std::snprintf(buf, sizeof buf, "thr%d:%s",
                  static_cast<int>(std::lround(100.0 * threshold_)),
                  std::string(inner_->name()).c_str());
    name_ = buf;
}

void ThresholdScheduler::begin_round(const sim::SchedView& view) {
    inner_->begin_round(view);
}

sim::ProcId ThresholdScheduler::select(const sim::SchedView& view,
                                       std::span<const sim::ProcId> eligible,
                                       std::span<const int> nq,
                                       util::Rng& rng) {
    filtered_.clear();
    for (const sim::ProcId q : eligible) {
        const auto* belief = view.procs[q].belief;
        // Uninformed processors cannot be judged; keep them.
        if (belief == nullptr ||
            belief->stationary().pi_u >= threshold_)
            filtered_.push_back(q);
    }
    if (filtered_.empty())
        return inner_->select(view, eligible, nq, rng);
    return inner_->select(view, filtered_, nq, rng);
}

sim::ProcId HybridScheduler::select(const sim::SchedView& view,
                                    std::span<const sim::ProcId> eligible,
                                    std::span<const int> nq, util::Rng& rng) {
    (void)rng;
    if (markov::ExpectationCache::bypassed()) {
        // The seed loop, kept verbatim as the benchmark A/B's "before"
        // leg: one worker at a time, every expectation recomputed.
        sim::ProcId best = eligible[0];
        double best_score = std::numeric_limits<double>::infinity();
        for (const sim::ProcId q : eligible) {
            const double ct = ct_plain(view, q, nq[q] + 1);
            double score = ct;
            if (const auto* belief = view.procs[q].belief) {
                const auto& m = belief->matrix();
                const auto& pi = belief->stationary();
                const double expected = markov::e_workload(m, ct);
                if (std::isinf(expected)) {
                    score = std::numeric_limits<double>::infinity();
                } else {
                    const double p_survive =
                        markov::p_ud_approx(m, pi.pi_u, pi.pi_r, expected);
                    score = p_survive > 0.0
                                ? expected / p_survive
                                : std::numeric_limits<double>::infinity();
                }
            }
            if (score < best_score) {
                best_score = score;
                best = q;
            }
        }
        return best;
    }
    // Batched passes over contiguous scratch (same shape as the greedy
    // skeleton): completion times, then scores, then argmin — decisions
    // identical to the former scalar loop.
    pins_.refresh(cache_, view);
    cts_.resize(eligible.size());
    scores_.resize(eligible.size());
    // Inline Eq. (1) over the round's contiguous column snapshots —
    // operation for operation the arithmetic of ct_plain.
    const double t_data = view.platform->t_data;
    for (std::size_t i = 0; i < eligible.size(); ++i) {
        const auto q = static_cast<std::size_t>(eligible[i]);
        cts_[i] = pins_.delay[q] + t_data +
                  static_cast<double>(nq[eligible[i]]) * pins_.step_plain[q] +
                  pins_.w[q];
    }
    for (std::size_t i = 0; i < eligible.size(); ++i) {
        const double ct = cts_[i];
        double score = ct;
        const auto q = static_cast<std::size_t>(eligible[i]);
        if (pins_.beliefs[q] != nullptr) {
            const auto h = pins_.handles[q];
            const double expected = cache_.e_workload(h, ct);
            if (std::isinf(expected)) {
                score = std::numeric_limits<double>::infinity();
            } else {
                const double p_survive = cache_.p_ud_approx(h, expected);
                score = p_survive > 0.0
                            ? expected / p_survive
                            : std::numeric_limits<double>::infinity();
            }
        }
        scores_[i] = score;
    }
    sim::ProcId best = eligible[0];
    double best_score = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < eligible.size(); ++i) {
        if (scores_[i] < best_score) {
            best_score = scores_[i];
            best = eligible[i];
        }
    }
    return best;
}

// ---------------------------------------------------------------------------
// Registry self-registration: the extension heuristics.
// ---------------------------------------------------------------------------
namespace {

VOLSCHED_REGISTER_SCHEDULER(hybrid, {
    "hybrid", "restart-aware expected completion: E(CT) / P_UD(E(CT))",
    [](const api::SchedulerSpec& spec, const api::SchedulerRegistry&)
        -> std::unique_ptr<sim::Scheduler> {
        api::require_no_options(spec);
        return std::make_unique<HybridScheduler>();
    }});

VOLSCHED_REGISTER_SCHEDULER(thr, {
    "thr",
    "exclude processors with steady-state pi_u below percent/100, then run "
    "the inner heuristic (thr50:emct, thr(percent=50):emct)",
    [](const api::SchedulerSpec& spec, const api::SchedulerRegistry& registry)
        -> std::unique_ptr<sim::Scheduler> {
        api::require_only_options(spec, {"percent"});
        const std::string* percent_text = spec.option("percent");
        if (percent_text == nullptr)
            throw std::invalid_argument(
                "scheduler spec '" + spec.canonical() +
                "': 'thr' needs a percent, e.g. thr50:emct or "
                "thr(percent=50):emct");
        char* end = nullptr;
        const long percent = std::strtol(percent_text->c_str(), &end, 10);
        if (end == percent_text->c_str() || *end != '\0' || percent < 0 ||
            percent > 100)
            throw std::invalid_argument(
                "scheduler spec '" + spec.canonical() + "': percent '" +
                *percent_text + "' is not an integer in [0, 100]");
        return std::make_unique<ThresholdScheduler>(
            registry.make(spec.inner()),
            static_cast<double>(percent) / 100.0);
    },
    /*takes_inner=*/true, /*shorthand_option=*/"percent"});

} // namespace

} // namespace volsched::core

VOLSCHED_SCHEDULER_TU_ANCHOR(extensions)
