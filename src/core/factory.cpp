#include "core/factory.hpp"

#include <cstdlib>
#include <stdexcept>

#include "core/extensions.hpp"
#include "core/greedy_sched.hpp"
#include "core/random_sched.hpp"

namespace volsched::core {

const std::vector<std::string>& all_heuristic_names() {
    static const std::vector<std::string> names = {
        "emct",     "emct*",    "mct",      "mct*",    "ud*",
        "ud",       "lw*",      "lw",       "random1w", "random2w",
        "random3w", "random4w", "random1",  "random2",  "random3",
        "random4",  "random"};
    return names;
}

const std::vector<std::string>& greedy_heuristic_names() {
    static const std::vector<std::string> names = {
        "mct", "mct*", "emct", "emct*", "lw", "lw*", "ud", "ud*"};
    return names;
}

const std::vector<std::string>& extension_heuristic_names() {
    static const std::vector<std::string> names = {"hybrid", "thr50:emct",
                                                   "thr50:mct", "thr25:emct"};
    return names;
}

std::unique_ptr<sim::Scheduler> make_scheduler(const std::string& name) {
    if (name == "hybrid") return std::make_unique<HybridScheduler>();
    if (name.rfind("thr", 0) == 0) {
        const auto colon = name.find(':');
        if (colon == std::string::npos || colon <= 3)
            throw std::invalid_argument(
                "make_scheduler: threshold form is thr<percent>:<inner>, "
                "got '" + name + "'");
        const std::string digits = name.substr(3, colon - 3);
        char* end = nullptr;
        const long percent = std::strtol(digits.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || percent < 0 || percent > 100)
            throw std::invalid_argument(
                "make_scheduler: bad threshold percent in '" + name + "'");
        auto inner = make_scheduler(name.substr(colon + 1));
        return std::make_unique<ThresholdScheduler>(
            std::move(inner), static_cast<double>(percent) / 100.0);
    }
    if (name == "mct") return std::make_unique<MctScheduler>(false);
    if (name == "mct*") return std::make_unique<MctScheduler>(true);
    if (name == "emct") return std::make_unique<EmctScheduler>(false);
    if (name == "emct*") return std::make_unique<EmctScheduler>(true);
    if (name == "lw") return std::make_unique<LwScheduler>(false);
    if (name == "lw*") return std::make_unique<LwScheduler>(true);
    if (name == "ud") return std::make_unique<UdScheduler>(false);
    if (name == "ud*") return std::make_unique<UdScheduler>(true);
    if (name == "random")
        return std::make_unique<RandomScheduler>(RandomWeight::Uniform, false);

    auto random_of = [&](RandomWeight w, bool speed) {
        return std::make_unique<RandomScheduler>(w, speed);
    };
    if (name == "random1") return random_of(RandomWeight::LongTimeUp, false);
    if (name == "random2") return random_of(RandomWeight::LikelyWorkMore, false);
    if (name == "random3") return random_of(RandomWeight::OftenUp, false);
    if (name == "random4") return random_of(RandomWeight::RarelyDown, false);
    if (name == "random1w") return random_of(RandomWeight::LongTimeUp, true);
    if (name == "random2w") return random_of(RandomWeight::LikelyWorkMore, true);
    if (name == "random3w") return random_of(RandomWeight::OftenUp, true);
    if (name == "random4w") return random_of(RandomWeight::RarelyDown, true);

    throw std::invalid_argument("make_scheduler: unknown heuristic '" + name +
                                "'");
}

} // namespace volsched::core
