#include "core/factory.hpp"

#include "api/registry.hpp"

namespace volsched::core {

const std::vector<std::string>& all_heuristic_names() {
    static const std::vector<std::string> names = {
        "emct",     "emct*",    "mct",      "mct*",    "ud*",
        "ud",       "lw*",      "lw",       "random1w", "random2w",
        "random3w", "random4w", "random1",  "random2",  "random3",
        "random4",  "random"};
    return names;
}

const std::vector<std::string>& greedy_heuristic_names() {
    static const std::vector<std::string> names = {
        "mct", "mct*", "emct", "emct*", "lw", "lw*", "ud", "ud*"};
    return names;
}

const std::vector<std::string>& extension_heuristic_names() {
    static const std::vector<std::string> names = {"hybrid", "thr50:emct",
                                                   "thr50:mct", "thr25:emct"};
    return names;
}

std::unique_ptr<sim::Scheduler> make_scheduler(const std::string& name) {
    return api::SchedulerRegistry::instance().make(name);
}

} // namespace volsched::core
