#pragma once
/// \file extensions.hpp
/// Heuristics beyond the paper's seventeen, motivated by its related work:
///
/// - ThresholdScheduler: the exclusion policies of the desktop-grid
///   literature the paper cites (Kondo et al. [16], Estrada et al. [18]):
///   processors whose steady-state availability pi_u falls below a
///   threshold are excluded from selection altogether; an inner heuristic
///   chooses among the survivors.  Falls back to the full eligible set when
///   the filter would empty it.
///
/// - HybridScheduler ("hybrid"): a restart-aware expected completion time.
///   If a crash forces a full redo and attempts are independent, the
///   expected number of attempts is 1 / P_success, so
///       score(q) = E^q(CT) / P_UD^q(E^q(CT))
///   blends EMCT's expectation with UD's crash probability in one number
///   instead of choosing between them.

#include <memory>
#include <string>
#include <vector>

#include "core/belief_pins.hpp"
#include "markov/expectation_cache.hpp"
#include "sim/scheduler.hpp"

namespace volsched::core {

class ThresholdScheduler final : public sim::Scheduler {
public:
    /// `threshold` in [0, 1]: minimum steady-state pi_u to stay eligible.
    ThresholdScheduler(std::unique_ptr<sim::Scheduler> inner,
                       double threshold);

    sim::ProcId select(const sim::SchedView& view,
                       std::span<const sim::ProcId> eligible,
                       std::span<const int> nq, util::Rng& rng) override;
    void begin_round(const sim::SchedView& view) override;
    [[nodiscard]] std::string_view name() const override { return name_; }

    [[nodiscard]] double threshold() const noexcept { return threshold_; }

    /// Forwards the inner heuristic's cache counters — the wrapper filters
    /// eligibility, the inner scheduler does the (possibly memoized)
    /// scoring.
    [[nodiscard]] sim::SchedulerCounters counters() const override {
        return inner_->counters();
    }

private:
    std::unique_ptr<sim::Scheduler> inner_;
    double threshold_;
    std::string name_;
    std::vector<sim::ProcId> filtered_;
};

class HybridScheduler final : public sim::Scheduler {
public:
    HybridScheduler() = default;

    sim::ProcId select(const sim::SchedView& view,
                       std::span<const sim::ProcId> eligible,
                       std::span<const int> nq, util::Rng& rng) override;
    void begin_round(const sim::SchedView& view) override {
        pins_.repin(cache_, view);
    }
    [[nodiscard]] std::string_view name() const override { return "hybrid"; }

    [[nodiscard]] sim::SchedulerCounters counters() const override {
        return {cache_.hits(), cache_.misses(), cache_.invalidations()};
    }

private:
    markov::ExpectationCache cache_;
    BeliefPins pins_;
    // Scratch for select()'s batched passes, reused across rounds.
    std::vector<double> cts_;
    std::vector<double> scores_;
};

} // namespace volsched::core
