#include "core/random_sched.hpp"

#include <memory>

#include "api/registry.hpp"
#include "markov/expectation.hpp"
#include "markov/expectation_cache.hpp"

namespace volsched::core {

RandomScheduler::RandomScheduler(RandomWeight weight, bool divide_by_speed)
    : weight_(weight), divide_by_speed_(divide_by_speed) {
    switch (weight_) {
        case RandomWeight::Uniform: name_ = "random"; break;
        case RandomWeight::LongTimeUp: name_ = "random1"; break;
        case RandomWeight::LikelyWorkMore: name_ = "random2"; break;
        case RandomWeight::OftenUp: name_ = "random3"; break;
        case RandomWeight::RarelyDown: name_ = "random4"; break;
    }
    if (divide_by_speed_ && weight_ != RandomWeight::Uniform) name_ += "w";
}

double RandomScheduler::weight_of(const sim::ProcView& pv) const {
    double w = 1.0;
    if (pv.belief != nullptr) {
        const auto& m = pv.belief->matrix();
        const auto& pi = pv.belief->stationary();
        switch (weight_) {
            case RandomWeight::Uniform: w = 1.0; break;
            case RandomWeight::LongTimeUp: w = m.p_uu(); break;
            case RandomWeight::LikelyWorkMore: w = markov::p_plus(m); break;
            case RandomWeight::OftenUp: w = pi.pi_u; break;
            case RandomWeight::RarelyDown: w = 1.0 - pi.pi_d; break;
        }
    }
    if (divide_by_speed_) w /= static_cast<double>(pv.w);
    return w;
}

void RandomScheduler::refresh_weights(const sim::SchedView& view) {
    const std::size_t n = view.procs.size();
    if (weights_view_ == &view && weight_by_proc_.size() == n) return;
    if (weight_by_proc_.size() == n) {
        bool same = true;
        for (std::size_t q = 0; q < n; ++q) {
            if (view.procs[q].belief != weight_beliefs_[q] ||
                static_cast<double>(view.procs[q].w) != weight_speeds_[q]) {
                same = false;
                break;
            }
        }
        if (same) {
            weights_view_ = &view;
            return;
        }
    }
    weights_view_ = &view;
    weight_by_proc_.resize(n);
    weight_beliefs_.resize(n);
    weight_speeds_.resize(n);
    for (std::size_t q = 0; q < n; ++q) {
        weight_by_proc_[q] = weight_of(view.procs[q]);
        weight_beliefs_[q] = view.procs[q].belief;
        weight_speeds_[q] = static_cast<double>(view.procs[q].w);
    }
}

void RandomScheduler::begin_round(const sim::SchedView& view) {
    if (markov::ExpectationCache::bypassed()) return;
    refresh_weights(view);
}

sim::ProcId RandomScheduler::select(const sim::SchedView& view,
                                    std::span<const sim::ProcId> eligible,
                                    std::span<const int> nq, util::Rng& rng) {
    (void)nq;
    weights_.resize(eligible.size());
    if (markov::ExpectationCache::bypassed()) {
        // The seed path, kept verbatim as the benchmark A/B's "before"
        // leg: every weight recomputed per pick.
        for (std::size_t i = 0; i < eligible.size(); ++i)
            weights_[i] = weight_of(view.procs[eligible[i]]);
    } else {
        refresh_weights(view);
        for (std::size_t i = 0; i < eligible.size(); ++i)
            weights_[i] = weight_by_proc_[static_cast<std::size_t>(
                eligible[i])];
    }
    const std::size_t idx = rng.weighted_index(weights_.data(), weights_.size());
    if (idx >= eligible.size()) {
        // All weights zero (e.g. pi_u == 0 everywhere): fall back to uniform.
        return eligible[rng.uniform_int(0, eligible.size() - 1)];
    }
    return eligible[idx];
}

// ---------------------------------------------------------------------------
// Registry self-registration: the nine random heuristics of Section 6.2.
// ---------------------------------------------------------------------------
namespace {

auto random_factory(RandomWeight weight, bool divide_by_speed) {
    return [weight, divide_by_speed](const api::SchedulerSpec& spec,
                                     const api::SchedulerRegistry&)
               -> std::unique_ptr<sim::Scheduler> {
        api::require_no_options(spec);
        return std::make_unique<RandomScheduler>(weight, divide_by_speed);
    };
}

VOLSCHED_REGISTER_SCHEDULER(random, {
    "random", "uniform random UP processor",
    random_factory(RandomWeight::Uniform, false)});
VOLSCHED_REGISTER_SCHEDULER(random1, {
    "random1", "random weighted by P_uu (long time up)",
    random_factory(RandomWeight::LongTimeUp, false)});
VOLSCHED_REGISTER_SCHEDULER(random2, {
    "random2", "random weighted by P+ (likely to work more, Lemma 1)",
    random_factory(RandomWeight::LikelyWorkMore, false)});
VOLSCHED_REGISTER_SCHEDULER(random3, {
    "random3", "random weighted by pi_u (often up)",
    random_factory(RandomWeight::OftenUp, false)});
VOLSCHED_REGISTER_SCHEDULER(random4, {
    "random4", "random weighted by 1 - pi_d (rarely down)",
    random_factory(RandomWeight::RarelyDown, false)});
VOLSCHED_REGISTER_SCHEDULER(random1w, {
    "random1w", "random1 with the weight divided by w_q (speed-aware)",
    random_factory(RandomWeight::LongTimeUp, true)});
VOLSCHED_REGISTER_SCHEDULER(random2w, {
    "random2w", "random2 with the weight divided by w_q (speed-aware)",
    random_factory(RandomWeight::LikelyWorkMore, true)});
VOLSCHED_REGISTER_SCHEDULER(random3w, {
    "random3w", "random3 with the weight divided by w_q (speed-aware)",
    random_factory(RandomWeight::OftenUp, true)});
VOLSCHED_REGISTER_SCHEDULER(random4w, {
    "random4w", "random4 with the weight divided by w_q (speed-aware)",
    random_factory(RandomWeight::RarelyDown, true)});

} // namespace

} // namespace volsched::core

VOLSCHED_SCHEDULER_TU_ANCHOR(random)
