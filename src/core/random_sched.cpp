#include "core/random_sched.hpp"

#include "markov/expectation.hpp"

namespace volsched::core {

RandomScheduler::RandomScheduler(RandomWeight weight, bool divide_by_speed)
    : weight_(weight), divide_by_speed_(divide_by_speed) {
    switch (weight_) {
        case RandomWeight::Uniform: name_ = "random"; break;
        case RandomWeight::LongTimeUp: name_ = "random1"; break;
        case RandomWeight::LikelyWorkMore: name_ = "random2"; break;
        case RandomWeight::OftenUp: name_ = "random3"; break;
        case RandomWeight::RarelyDown: name_ = "random4"; break;
    }
    if (divide_by_speed_ && weight_ != RandomWeight::Uniform) name_ += "w";
}

double RandomScheduler::weight_of(const sim::ProcView& pv) const {
    double w = 1.0;
    if (pv.belief != nullptr) {
        const auto& m = pv.belief->matrix();
        const auto& pi = pv.belief->stationary();
        switch (weight_) {
            case RandomWeight::Uniform: w = 1.0; break;
            case RandomWeight::LongTimeUp: w = m.p_uu(); break;
            case RandomWeight::LikelyWorkMore: w = markov::p_plus(m); break;
            case RandomWeight::OftenUp: w = pi.pi_u; break;
            case RandomWeight::RarelyDown: w = 1.0 - pi.pi_d; break;
        }
    }
    if (divide_by_speed_) w /= static_cast<double>(pv.w);
    return w;
}

sim::ProcId RandomScheduler::select(const sim::SchedView& view,
                                    std::span<const sim::ProcId> eligible,
                                    std::span<const int> nq, util::Rng& rng) {
    (void)nq;
    weights_.resize(eligible.size());
    for (std::size_t i = 0; i < eligible.size(); ++i)
        weights_[i] = weight_of(view.procs[eligible[i]]);
    const std::size_t idx = rng.weighted_index(weights_.data(), weights_.size());
    if (idx >= eligible.size()) {
        // All weights zero (e.g. pi_u == 0 everywhere): fall back to uniform.
        return eligible[rng.uniform_int(0, eligible.size() - 1)];
    }
    return eligible[idx];
}

} // namespace volsched::core
