#pragma once
/// \file belief_pins.hpp
/// Per-round scoring scratch: pinned expectation-cache handles plus
/// contiguous copies of the per-processor quantities the batched scoring
/// loops read.
///
/// The scoring loops touch several per-worker values per eligible worker
/// per select() call.  Reading them through ProcView gathers from a
/// 24-byte struct-of-everything per worker, and resolving the worker's
/// belief chain in the expectation cache each time (hash probe + matrix
/// validation) would cost about as much as recomputing the closed forms.
/// Instead the schedulers snapshot everything once per scheduling round
/// (begin_round):
///
///   handles    — expectation-cache pins, one hash probe each per round;
///                reads through a handle are a branch and a load
///   beliefs    — the belief chain pointers (null for uninformed workers)
///   w, delay   — w_q and Delay(q) pre-cast to double (exact: both ints)
///   step_plain — max(Tdata, w_q), the per-extra-task term of Eq. (1)
///
/// All five arrays are indexed by processor id and contiguous, so the
/// batched completion-time and scoring passes stream them sequentially.
/// The snapshot is keyed on the view's address: refresh() is a pointer
/// compare when the engine's begin_round protocol already pinned this
/// round's view, and a full repin the first time a foreign caller (the
/// property tests drive batched_scores directly) presents a new view.
/// Callers that mutate a view's processors *in place* and re-score
/// without an intervening begin_round are outside the contract — the
/// engine never does, and tests build a fresh fixture per case.
///
/// Handles are validated at pin time; a chain destroyed and rebuilt at
/// the same address *between* pins is caught by the pin's matrix check,
/// per the cache's invalidation contract.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "markov/expectation_cache.hpp"
#include "sim/scheduler.hpp"

namespace volsched::core {

struct BeliefPins {
    /// Unconditionally re-snapshot the round (round entry).
    void repin(markov::ExpectationCache& cache, const sim::SchedView& view) {
        pinned_view = &view;
        const std::size_t n = view.procs.size();
        handles.resize(n);
        beliefs.resize(n);
        w.resize(n);
        delay.resize(n);
        step_plain.resize(n);
        const double t_data = view.platform->t_data;
        for (std::size_t q = 0; q < n; ++q) {
            const sim::ProcView& pv = view.procs[q];
            beliefs[q] = pv.belief;
            handles[q] = pv.belief != nullptr
                             ? cache.pin(*pv.belief)
                             : markov::ExpectationCache::Handle{};
            w[q] = static_cast<double>(pv.w);
            delay[q] = static_cast<double>(pv.delay);
            step_plain[q] = std::max(t_data, w[q]);
        }
    }

    /// Re-snapshot only when `view` is not the round begin_round() pinned.
    void refresh(markov::ExpectationCache& cache,
                 const sim::SchedView& view) {
        if (pinned_view == &view && beliefs.size() == view.procs.size())
            return;
        repin(cache, view);
    }

    std::vector<markov::ExpectationCache::Handle> handles;
    std::vector<const markov::MarkovChain*> beliefs;
    std::vector<double> w;
    std::vector<double> delay;
    std::vector<double> step_plain;
    const sim::SchedView* pinned_view = nullptr;
};

} // namespace volsched::core
