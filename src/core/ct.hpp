#pragma once
/// \file ct.hpp
/// Completion-time estimators of Section 6.3.1.
///
/// Equation (1) — contention-free estimate for assigning the n-th task of
/// the current round to processor q:
///     CT(q, n) = Delay(q) + Tdata + max(n-1, 0) * max(Tdata, w_q) + w_q
///
/// Equation (2) — contention-corrected variant used by the starred
/// heuristics, replacing Tdata by ceil(nactive / ncom) * Tdata, where
/// nactive counts the processors enrolled in this round (prospectively
/// including q itself when it has no assignment yet).

#include "sim/scheduler.hpp"

namespace volsched::core {

/// Eq. (1).  `n` is the total number of round-assigned tasks q would hold,
/// i.e. nq[q] + 1 when evaluating a candidate assignment.
double ct_plain(const sim::SchedView& view, sim::ProcId q, int n) noexcept;

/// Eq. (2).  `already_assigned` tells whether q already holds a task from
/// this round (nq[q] > 0), which determines the prospective nactive.
double ct_corrected(const sim::SchedView& view, sim::ProcId q, int n,
                    bool already_assigned) noexcept;

/// Dispatch helper used by all greedy heuristics.
inline double ct_estimate(const sim::SchedView& view, sim::ProcId q, int n,
                          bool already_assigned, bool starred) noexcept {
    return starred ? ct_corrected(view, q, n, already_assigned)
                   : ct_plain(view, q, n);
}

} // namespace volsched::core
