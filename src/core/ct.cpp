#include "core/ct.hpp"

#include <algorithm>

namespace volsched::core {

double ct_plain(const sim::SchedView& view, sim::ProcId q, int n) noexcept {
    const sim::ProcView& pv = view.procs[q];
    const double t_data = view.platform->t_data;
    const double w = pv.w;
    return pv.delay + t_data +
           static_cast<double>(std::max(n - 1, 0)) * std::max(t_data, w) + w;
}

double ct_corrected(const sim::SchedView& view, sim::ProcId q, int n,
                    bool already_assigned) noexcept {
    const sim::ProcView& pv = view.procs[q];
    // Prospective enrolment: assigning to a not-yet-active processor makes
    // it active, so the congestion factor counts it.
    const int nactive = view.nactive + (already_assigned ? 0 : 1);
    const int ncom = view.platform->ncom;
    const double factor =
        static_cast<double>((nactive + ncom - 1) / ncom); // ceil
    const double t_data = factor * view.platform->t_data;
    const double w = pv.w;
    return pv.delay + t_data +
           static_cast<double>(std::max(n - 1, 0)) * std::max(t_data, w) + w;
}

} // namespace volsched::core
