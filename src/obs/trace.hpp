#pragma once
/// \file trace.hpp
/// Sim-time structured tracer: records engine activity as spans and
/// instants on a per-worker track set and exports Chrome trace-event JSON
/// (the `traceEvents` format) loadable in Perfetto / chrome://tracing.
///
/// Time base: 1 simulation slot = 1 trace microsecond (ts/dur fields are
/// slots verbatim), pid 0, and one thread id per (worker, lane):
///
///   tid 0                      the engine track (scheduler rounds,
///                              iteration boundaries, elided ranges)
///   tid 1 + 4*q + lane         worker q's lanes: availability state,
///                              master transfers (program/data), compute,
///                              checkpoint uploads
///
/// The tracer is an *observer*: the engine mirrors the same Event stream it
/// gives EventLog into these calls, the tracer allocates on its own heap,
/// consumes no RNG, and never feeds anything back — trace-on and trace-off
/// runs are byte-identical in every other output (pinned by
/// tests/test_obs.cpp in both stepping cores).  Spans carry sim-time only;
/// wall-clock never appears here (rulebook R3).
///
/// Attach with SimulationBuilder::trace(&rec) or `volsched_sim --trace-out
/// FILE`; scripts/check_trace.py validates the export in CI.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace volsched::obs {

class TraceRecorder {
public:
    /// Per-worker lanes; tid = 1 + 4*proc + lane.
    enum Lane : int {
        kLaneAvail = 0,    ///< up / reclaimed / down state spans
        kLaneTransfer = 1, ///< program + data downloads from the master
        kLaneCompute = 2,  ///< task computation
        kLaneCkpt = 3,     ///< checkpoint snapshot uploads
    };

    /// Starts a run of `procs` workers: resets all lane state and emits the
    /// thread_name metadata for every track.
    void begin_run(int procs);

    /// Ends the run at `end_slot` (exclusive; the makespan): every still-
    /// open span — activity interrupted by the horizon, and each worker's
    /// final availability state — is closed there.
    void end_run(long long end_slot);

    /// Opens a span on (proc, lane) at `slot`; an already-open span on the
    /// lane is closed end-exclusive at `slot` first (state handoff).
    /// `args_json` is an optional preformatted JSON object ("{\"task\":3}").
    void span_begin(long long slot, int proc, Lane lane, const char* name,
                    std::string args_json = {});

    /// Closes the open span on (proc, lane), slot-inclusive: an activity
    /// whose completion event fires in slot s occupied s itself, so
    /// dur = s + 1 - begin.  No-op when nothing is open.
    void span_end(long long slot, int proc, Lane lane);

    /// Cuts the open span on (proc, lane), slot-exclusive: the interrupting
    /// event (crash, cancellation) happens *before* the activity could use
    /// slot s, so dur = s - begin.  Tags the span with {"outcome": ...}.
    /// No-op when nothing is open.
    void span_cut(long long slot, int proc, Lane lane, const char* outcome);

    /// Instantaneous marker on a worker lane / on the engine track.
    void instant(long long slot, int proc, Lane lane, const char* name);
    void instant_engine(long long slot, const char* name);

    /// Availability handoff on the avail lane: 'u' up, 'r' reclaimed,
    /// 'd' down (the timeline's codes).  'd' also cuts the three activity
    /// lanes with outcome "lost" — a crash ends everything in flight,
    /// including the in-flight program download that has no Event of its
    /// own.
    void state_change(long long slot, int proc, char code);

    /// Records the engine-elided range [from, to) on the engine track
    /// (`dead` marks an all-workers-absent stretch).
    void elided(long long from, long long to, bool dead);

    /// Free-form run metadata (heuristic spec, seed, ...) rendered into the
    /// export's "otherData" object.
    void meta(const std::string& key, const std::string& value);

    /// Chrome trace-event JSON: {"traceEvents":[...],"otherData":{...}}.
    /// Events are emitted in non-decreasing ts order (metadata first).
    void write_json(std::ostream& out) const;
    [[nodiscard]] std::string json() const;

    /// Recorded events so far (spans count once, when closed).
    [[nodiscard]] std::size_t size() const noexcept {
        return events_.size();
    }

private:
    struct TraceEvent {
        long long ts = 0;
        long long dur = -1; ///< >= 0 for ph 'X' only
        int tid = 0;
        char ph = 'X'; ///< 'X' complete, 'i' instant, 'M' metadata
        std::string name;
        std::string args_json; ///< preformatted {"..."} or empty
    };
    struct OpenSpan {
        bool active = false;
        long long ts = 0;
        std::string name;
        std::string args_json;
    };

    [[nodiscard]] int tid_of(int proc, Lane lane) const noexcept {
        return 1 + 4 * proc + static_cast<int>(lane);
    }
    OpenSpan& open(int proc, Lane lane) {
        return open_[static_cast<std::size_t>(tid_of(proc, lane))];
    }
    void close_span(OpenSpan& span, int tid, long long end_exclusive,
                    std::string extra_args);
    void thread_name(int tid, std::string name);

    int procs_ = 0;
    std::vector<TraceEvent> events_;
    std::vector<OpenSpan> open_; ///< indexed by tid (slot 0 unused)
    std::vector<std::pair<std::string, std::string>> meta_;
};

} // namespace volsched::obs
