#pragma once
/// \file registry.hpp
/// Process-wide instrumentation registry: named counters, gauges, and
/// histograms for operational visibility (campaign pipeline occupancy,
/// stage wall-times, cache pressure).  Everything here is *observer-only*
/// and zero-overhead when disabled:
///
///  - No registry is installed by default.  `Registry::active()` returns
///    null until a driver (a tool's main, a test) calls `install()`, so
///    instrumented code paths cost one relaxed atomic load + branch.
///  - Metric objects are plain atomics; recording is wait-free and never
///    allocates.  Handles returned by `counter()`/`gauge()`/`histogram()`
///    are stable for the registry's lifetime — call sites resolve a name
///    once and keep the pointer.
///  - Nothing in this layer reads a clock (see obs/stopwatch.hpp for the
///    one sanctioned monotonic-clock seam) and nothing here may ever feed
///    simulation results: metrics describe the run, they must not steer it.
///    That is the determinism rulebook's carve-out contract
///    (ARCHITECTURE.md, "How tracing preserves determinism").
///
/// Name lookup uses an ordered std::map (rulebook R2: no unordered
/// iteration where output is produced) so `to_json()` renders metrics in a
/// deterministic byte order.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace volsched::obs {

/// Monotone event count.  add() is wait-free; value() is a relaxed read
/// (observers tolerate slightly stale totals).
class Counter {
public:
    void add(long long delta = 1) noexcept {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    [[nodiscard]] long long value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<long long> value_{0};
};

/// Last-write-wins level (queue depth, window occupancy).  add() supports
/// delta-tracking gauges shared by several writers (parallel shards).
class Gauge {
public:
    void set(long long v) noexcept {
        value_.store(v, std::memory_order_relaxed);
    }
    void add(long long delta) noexcept {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    [[nodiscard]] long long value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<long long> value_{0};
};

/// Power-of-two-bucket histogram over non-negative integer samples
/// (microsecond stage timings).  observe() is wait-free; count/sum/max and
/// the bucket array are independently relaxed — observers may see a sample
/// in one aggregate before another, which is fine for dashboards and
/// deliberately unsuitable for anything result-bearing.
class Histogram {
public:
    /// Bucket b counts samples with bit_width(v) == b, i.e. v in
    /// [2^(b-1), 2^b); bucket 0 counts zero.
    static constexpr int kBuckets = 63;

    void observe(long long v) noexcept;

    [[nodiscard]] long long count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] long long sum() const noexcept {
        return sum_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] long long max() const noexcept {
        return max_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] long long bucket(int b) const noexcept {
        return buckets_[b].load(std::memory_order_relaxed);
    }

private:
    std::atomic<long long> count_{0};
    std::atomic<long long> sum_{0};
    std::atomic<long long> max_{0};
    std::atomic<long long> buckets_[kBuckets] = {};
};

/// Named metric directory.  Registration (the first lookup of a name) takes
/// a mutex; the returned references stay valid and lock-free to record into
/// for the registry's lifetime.
class Registry {
public:
    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /// All metrics as one JSON object (integer fields only), names sorted:
    /// counters/gauges as {"name":value}, histograms as
    /// {"name":{"count":c,"sum":s,"max":m}}.
    [[nodiscard]] std::string to_json() const;

    /// The process-global seam.  Null (the default) means "observability
    /// off"; instrumented sites must null-check and may cache metric
    /// pointers only while the same registry stays installed.
    static Registry* active() noexcept {
        return active_.load(std::memory_order_acquire);
    }
    /// Installs `r` (or null to disable) and returns the previous registry.
    static Registry* install(Registry* r) noexcept {
        return active_.exchange(r, std::memory_order_acq_rel);
    }

private:
    static inline std::atomic<Registry*> active_{nullptr};

    mutable std::mutex mutex_;
    // node-based maps: stable addresses across later registrations.
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms_;
};

} // namespace volsched::obs
