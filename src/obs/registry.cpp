#include "obs/registry.hpp"

#include <bit>

namespace volsched::obs {

void Histogram::observe(long long v) noexcept {
    if (v < 0) v = 0;
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    long long prev = max_.load(std::memory_order_relaxed);
    while (prev < v &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
    const int b = std::bit_width(static_cast<unsigned long long>(v));
    buckets_[b < kBuckets ? b : kBuckets - 1].fetch_add(
        1, std::memory_order_relaxed);
}

Counter& Registry::counter(const std::string& name) {
    std::lock_guard lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
    std::lock_guard lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
    std::lock_guard lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<Histogram>();
    return *slot;
}

std::string Registry::to_json() const {
    std::lock_guard lock(mutex_);
    std::string out = "{";
    bool first = true;
    const auto field = [&](const std::string& name, std::string value) {
        if (!first) out += ',';
        first = false;
        out += '"' + name + "\":" + value;
    };
    for (const auto& [name, c] : counters_)
        field(name, std::to_string(c->value()));
    for (const auto& [name, g] : gauges_)
        field(name, std::to_string(g->value()));
    for (const auto& [name, h] : histograms_)
        field(name, "{\"count\":" + std::to_string(h->count()) +
                        ",\"sum\":" + std::to_string(h->sum()) +
                        ",\"max\":" + std::to_string(h->max()) + "}");
    out += '}';
    return out;
}

} // namespace volsched::obs
