#pragma once
/// \file stopwatch.hpp
/// The repository's ONE sanctioned monotonic-clock seam.  The determinism
/// rulebook (R3) bans wall-clock reads everywhere results are produced;
/// operational code (progress lines, heartbeats, stage timings) still needs
/// elapsed time.  Funneling every such read through this header keeps the
/// carve-out auditable: obs/stopwatch.cpp carries the only
/// allow-file(wall-clock) annotation in src/, and volsched_lint's self-test
/// pins that the annotation is load-bearing.
///
/// Deliberately chrono-free in the header so includers never gain
/// accidental access to <chrono> clocks.  Values are microseconds (or
/// milliseconds) from an arbitrary process-local epoch: good for intervals,
/// meaningless across processes — which is the point; nothing here can leak
/// into a record, manifest, or table without failing review.

#include <cstdint>

namespace volsched::obs {

class Histogram; // registry.hpp

/// Monotonic now, microseconds / milliseconds from a process-local epoch.
[[nodiscard]] std::int64_t now_us() noexcept;
[[nodiscard]] std::int64_t now_ms() noexcept;

/// Interval timer over the monotonic clock.
class Stopwatch {
public:
    Stopwatch() noexcept : start_us_(now_us()) {}

    [[nodiscard]] std::int64_t elapsed_us() const noexcept {
        return now_us() - start_us_;
    }
    [[nodiscard]] std::int64_t elapsed_ms() const noexcept {
        return elapsed_us() / 1000;
    }
    void restart() noexcept { start_us_ = now_us(); }

private:
    std::int64_t start_us_;
};

/// RAII stage timer: observes the scope's elapsed microseconds into a
/// Histogram on destruction.  Null-safe — `ScopedTimer t(nullptr);` is a
/// no-op, so call sites stay branch-free under a disabled registry.
class ScopedTimer {
public:
    explicit ScopedTimer(Histogram* sink) noexcept
        : sink_(sink), start_us_(sink ? now_us() : 0) {}
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;
    ~ScopedTimer();

private:
    Histogram* sink_;
    std::int64_t start_us_;
};

} // namespace volsched::obs
