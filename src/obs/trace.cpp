#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <utility>

#include "util/json.hpp"

namespace volsched::obs {
namespace {

const char* state_name(char code) noexcept {
    switch (code) {
    case 'u': return "up";
    case 'r': return "reclaimed";
    default: return "down";
    }
}

} // namespace

void TraceRecorder::thread_name(int tid, std::string name) {
    TraceEvent e;
    e.ts = 0;
    e.tid = tid;
    e.ph = 'M';
    e.name = "thread_name";
    e.args_json = "{\"name\":\"" + util::json::escape(name) + "\"}";
    events_.push_back(std::move(e));
}

void TraceRecorder::begin_run(int procs) {
    procs_ = procs;
    events_.clear();
    open_.assign(static_cast<std::size_t>(1 + 4 * procs), OpenSpan{});
    thread_name(0, "engine");
    for (int q = 0; q < procs; ++q) {
        const std::string p = "p" + std::to_string(q) + " ";
        thread_name(tid_of(q, kLaneAvail), p + "avail");
        thread_name(tid_of(q, kLaneTransfer), p + "xfer");
        thread_name(tid_of(q, kLaneCompute), p + "compute");
        thread_name(tid_of(q, kLaneCkpt), p + "ckpt");
    }
}

void TraceRecorder::close_span(OpenSpan& span, int tid,
                               long long end_exclusive,
                               std::string extra_args) {
    TraceEvent e;
    e.ts = span.ts;
    e.dur = std::max<long long>(0, end_exclusive - span.ts);
    e.tid = tid;
    e.ph = 'X';
    e.name = std::move(span.name);
    if (span.args_json.empty()) {
        e.args_json = std::move(extra_args);
    } else if (extra_args.empty()) {
        e.args_json = std::move(span.args_json);
    } else {
        // merge two preformatted one-level objects: {"a":1} + {"b":2}
        e.args_json = span.args_json.substr(0, span.args_json.size() - 1) +
                      "," + extra_args.substr(1);
    }
    span = OpenSpan{};
    events_.push_back(std::move(e));
}

void TraceRecorder::span_begin(long long slot, int proc, Lane lane,
                               const char* name, std::string args_json) {
    OpenSpan& span = open(proc, lane);
    if (span.active) close_span(span, tid_of(proc, lane), slot, {});
    span.active = true;
    span.ts = slot;
    span.name = name;
    span.args_json = std::move(args_json);
}

void TraceRecorder::span_end(long long slot, int proc, Lane lane) {
    OpenSpan& span = open(proc, lane);
    if (!span.active) return;
    close_span(span, tid_of(proc, lane), slot + 1, {});
}

void TraceRecorder::span_cut(long long slot, int proc, Lane lane,
                             const char* outcome) {
    OpenSpan& span = open(proc, lane);
    if (!span.active) return;
    close_span(span, tid_of(proc, lane), slot,
               std::string("{\"outcome\":\"") + outcome + "\"}");
}

void TraceRecorder::instant(long long slot, int proc, Lane lane,
                            const char* name) {
    TraceEvent e;
    e.ts = slot;
    e.tid = tid_of(proc, lane);
    e.ph = 'i';
    e.name = name;
    events_.push_back(std::move(e));
}

void TraceRecorder::instant_engine(long long slot, const char* name) {
    TraceEvent e;
    e.ts = slot;
    e.tid = 0;
    e.ph = 'i';
    e.name = name;
    events_.push_back(std::move(e));
}

void TraceRecorder::state_change(long long slot, int proc, char code) {
    OpenSpan& avail = open(proc, kLaneAvail);
    if (avail.active) close_span(avail, tid_of(proc, kLaneAvail), slot, {});
    avail.active = true;
    avail.ts = slot;
    avail.name = state_name(code);
    if (code == 'd') {
        span_cut(slot, proc, kLaneTransfer, "lost");
        span_cut(slot, proc, kLaneCompute, "lost");
        span_cut(slot, proc, kLaneCkpt, "lost");
    }
}

void TraceRecorder::elided(long long from, long long to, bool dead) {
    TraceEvent e;
    e.ts = from;
    e.dur = std::max<long long>(0, to - from);
    e.tid = 0;
    e.ph = 'X';
    e.name = dead ? "elided (all down)" : "elided (inert)";
    events_.push_back(std::move(e));
}

void TraceRecorder::end_run(long long end_slot) {
    for (int q = 0; q < procs_; ++q) {
        for (Lane lane : {kLaneAvail, kLaneTransfer, kLaneCompute, kLaneCkpt}) {
            OpenSpan& span = open(q, lane);
            if (!span.active) continue;
            close_span(span, tid_of(q, lane), end_slot,
                       lane == kLaneAvail ? std::string{}
                                          : "{\"outcome\":\"horizon\"}");
        }
    }
    // Stable by ts: metadata (ts 0) floats to the front, spans that opened
    // earlier sort earlier, and same-slot events keep emission order —
    // deterministic for byte-identical reruns.
    std::stable_sort(events_.begin(), events_.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         if (a.ph == 'M' && b.ph != 'M') return true;
                         if (a.ph != 'M' && b.ph == 'M') return false;
                         return a.ts < b.ts;
                     });
}

void TraceRecorder::write_json(std::ostream& out) const {
    out << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent& e : events_) {
        if (!first) out << ",";
        first = false;
        out << "\n{\"name\":\"" << util::json::escape(e.name)
            << "\",\"ph\":\"" << e.ph << "\",\"ts\":" << e.ts
            << ",\"pid\":0,\"tid\":" << e.tid;
        if (e.ph == 'X') out << ",\"dur\":" << e.dur;
        if (e.ph == 'i') out << ",\"s\":\"t\"";
        if (!e.args_json.empty()) out << ",\"args\":" << e.args_json;
        out << "}";
    }
    out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{";
    first = true;
    for (const auto& [key, value] : meta_) {
        if (!first) out << ",";
        first = false;
        out << "\"" << util::json::escape(key) << "\":\""
            << util::json::escape(value) << "\"";
    }
    out << "}}\n";
}

std::string TraceRecorder::json() const {
    std::ostringstream out;
    write_json(out);
    return out.str();
}

void TraceRecorder::meta(const std::string& key, const std::string& value) {
    meta_.emplace_back(key, value);
}

} // namespace volsched::obs
