// volsched-lint: allow-file(wall-clock): the one sanctioned monotonic-clock
// seam — interval timing for progress/heartbeat/stage metrics only; values
// never reach records, manifests, or tables (rulebook R3, ARCHITECTURE.md
// "How tracing preserves determinism").
#include "obs/stopwatch.hpp"

#include <chrono>

#include "obs/registry.hpp"

namespace volsched::obs {

std::int64_t now_us() noexcept {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::int64_t now_ms() noexcept { return now_us() / 1000; }

ScopedTimer::~ScopedTimer() {
    if (sink_) sink_->observe(now_us() - start_us_);
}

} // namespace volsched::obs
