/// Campaign subsystem: shard planner determinism, streaming sinks,
/// checkpoint/resume, and merge.  The two load-bearing guarantees pinned
/// down here are the issue's acceptance criteria: (1) a 2-shard run merged
/// is **bit-identical** to the unsharded run_sweep tables, and (2) a
/// killed-and-resumed campaign produces byte-identical JSONL output with
/// zero duplicate records.

#include <gtest/gtest.h>

#include <fstream>
#include <set>

#include "api/campaign_builder.hpp"
#include "api/experiment_builder.hpp"
#include "exp/campaign.hpp"
#include "exp/sink.hpp"
#include "exp/sweep.hpp"
#include "support/golden.hpp"

namespace ve = volsched::exp;
namespace va = volsched::api;
using volsched::test::TempDir;
using volsched::test::read_file;

namespace {

/// Small but non-trivial grid: 2x1x2 cells x 2 draws = 8 jobs, 16 instances.
ve::SweepConfig small_sweep() {
    ve::SweepConfig cfg;
    cfg.tasks_values = {3, 4};
    cfg.ncom_values = {2};
    cfg.wmin_values = {1, 2};
    cfg.scenarios_per_cell = 2;
    cfg.trials_per_scenario = 2;
    cfg.p = 4;
    cfg.run.iterations = 2;
    cfg.master_seed = 99;
    cfg.threads = 2;
    return cfg;
}

const std::vector<std::string> kHeuristics = {"mct", "emct"};

ve::CampaignConfig small_campaign(const std::filesystem::path& dir) {
    ve::CampaignConfig cfg;
    cfg.sweep = small_sweep();
    cfg.heuristics = kHeuristics;
    cfg.directory = dir;
    cfg.checkpoint_jobs = 3; // deliberately not a divisor of 8
    return cfg;
}

/// Bit-identical table comparison: exact ==, not almost-equal.
void expect_tables_identical(const ve::DfbTable& a, const ve::DfbTable& b) {
    ASSERT_EQ(a.num_heuristics(), b.num_heuristics());
    EXPECT_EQ(a.instances(), b.instances());
    for (std::size_t h = 0; h < a.num_heuristics(); ++h) {
        EXPECT_EQ(a.mean_dfb(h), b.mean_dfb(h));
        EXPECT_EQ(a.dfb(h).variance(), b.dfb(h).variance());
        EXPECT_EQ(a.dfb(h).min(), b.dfb(h).min());
        EXPECT_EQ(a.dfb(h).max(), b.dfb(h).max());
        EXPECT_EQ(a.makespan(h).mean(), b.makespan(h).mean());
        EXPECT_EQ(a.wins(h), b.wins(h));
    }
}

void expect_results_identical(const ve::SweepResult& a,
                              const ve::SweepResult& b) {
    EXPECT_EQ(a.heuristics, b.heuristics);
    expect_tables_identical(a.overall, b.overall);
    auto compare_maps = [](const std::map<int, ve::DfbTable>& ma,
                           const std::map<int, ve::DfbTable>& mb) {
        ASSERT_EQ(ma.size(), mb.size());
        for (const auto& [key, table] : ma) {
            const auto it = mb.find(key);
            ASSERT_NE(it, mb.end()) << "missing key " << key;
            expect_tables_identical(table, it->second);
        }
    };
    compare_maps(a.by_wmin, b.by_wmin);
    compare_maps(a.by_tasks, b.by_tasks);
    compare_maps(a.by_ncom, b.by_ncom);
}

} // namespace

TEST(ShardPlanner, PartitionsTheGridDisjointlyAndCompletely) {
    const auto cfg = small_sweep();
    const auto all = ve::grid_jobs(cfg);
    ASSERT_EQ(all.size(), 8u);

    std::set<std::uint64_t> seen;
    for (int k = 1; k <= 3; ++k) {
        const auto mine = ve::shard_jobs(cfg, k, 3);
        // Round-robin keeps shards balanced within one job.
        EXPECT_GE(mine.size(), all.size() / 3);
        EXPECT_LE(mine.size(), all.size() / 3 + 1);
        for (const auto& job : mine) {
            EXPECT_TRUE(seen.insert(job.ordinal).second)
                << "ordinal " << job.ordinal << " in two shards";
            // Seeds come from the global ordinal, not the shard.
            EXPECT_EQ(job.scenario.seed, all[job.ordinal].scenario.seed);
        }
    }
    EXPECT_EQ(seen.size(), all.size());

    EXPECT_THROW(ve::shard_jobs(cfg, 0, 3), std::invalid_argument);
    EXPECT_THROW(ve::shard_jobs(cfg, 4, 3), std::invalid_argument);
    EXPECT_THROW(ve::shard_jobs(cfg, 1, 0), std::invalid_argument);
}

TEST(Sink, JsonlRecordRoundTrips) {
    ve::InstanceRecord rec;
    rec.scenario_ordinal = 12345678901234567890ULL; // full uint64 range
    rec.trial = 7;
    rec.scenario.p = 20;
    rec.scenario.tasks = 40;
    rec.scenario.ncom = 10;
    rec.scenario.wmin = 3;
    rec.scenario.tdata_factor = 1.5;
    rec.scenario.tprog_factor = 5.25;
    rec.scenario.seed = 0xFFFFFFFFFFFFFFFFULL;
    rec.makespans = {123, 456789, 1};

    const auto line = ve::JsonlSink::format_record(rec);
    const auto back = ve::JsonlSink::parse_record(line);
    EXPECT_EQ(back.scenario_ordinal, rec.scenario_ordinal);
    EXPECT_EQ(back.trial, rec.trial);
    EXPECT_EQ(back.scenario.p, rec.scenario.p);
    EXPECT_EQ(back.scenario.tasks, rec.scenario.tasks);
    EXPECT_EQ(back.scenario.ncom, rec.scenario.ncom);
    EXPECT_EQ(back.scenario.wmin, rec.scenario.wmin);
    EXPECT_EQ(back.scenario.tdata_factor, rec.scenario.tdata_factor);
    EXPECT_EQ(back.scenario.tprog_factor, rec.scenario.tprog_factor);
    EXPECT_EQ(back.scenario.seed, rec.scenario.seed);
    EXPECT_EQ(back.makespans, rec.makespans);

    EXPECT_THROW(ve::JsonlSink::parse_record("{\"ordinal\":1"),
                 std::invalid_argument);
    EXPECT_THROW(ve::JsonlSink::parse_record("{\"trial\":0}"),
                 std::invalid_argument);
}

TEST(Sink, CsvSinkWritesHeaderAndRows) {
    TempDir dir;
    const auto path = dir.file("records.csv");
    {
        ve::CsvSink sink(path, {"mct", "emct"});
        ve::InstanceRecord rec;
        rec.scenario_ordinal = 3;
        rec.trial = 1;
        rec.scenario.p = 4;
        rec.scenario.tasks = 3;
        rec.scenario.ncom = 2;
        rec.scenario.wmin = 1;
        rec.scenario.seed = 42;
        rec.makespans = {100, 120};
        sink.write(rec);
        sink.flush();
    }
    const std::string text = read_file(path);
    EXPECT_EQ(text,
              "ordinal,trial,p,tasks,ncom,wmin,tdata_factor,tprog_factor,"
              "seed,mct,emct\n"
              "3,1,4,3,2,1,1,5,42,100,120\n");
}

TEST(Campaign, HeaderLineRoundTrips) {
    TempDir dir;
    auto cfg = small_campaign(dir.path());
    cfg.shard_index = 2;
    cfg.shard_count = 3;
    const auto header =
        ve::parse_campaign_header(ve::campaign_header_line(cfg));
    EXPECT_EQ(header.heuristics, cfg.heuristics);
    EXPECT_EQ(header.shard_index, 2);
    EXPECT_EQ(header.shard_count, 3);
    EXPECT_EQ(header.sweep.tasks_values, cfg.sweep.tasks_values);
    EXPECT_EQ(header.sweep.wmin_values, cfg.sweep.wmin_values);
    EXPECT_EQ(header.sweep.master_seed, cfg.sweep.master_seed);
    EXPECT_EQ(header.fingerprint,
              ve::campaign_fingerprint(cfg.sweep, cfg.heuristics));

    // Any result-determining change moves the fingerprint.
    auto other = cfg.sweep;
    other.master_seed ^= 1;
    EXPECT_NE(ve::campaign_fingerprint(other, cfg.heuristics),
              header.fingerprint);
    EXPECT_NE(ve::campaign_fingerprint(cfg.sweep, {"mct"}),
              header.fingerprint);
}

TEST(Campaign, ManifestRoundTripsAtomically) {
    TempDir dir;
    EXPECT_FALSE(ve::read_manifest(dir.path()).has_value());
    ve::CampaignManifest m;
    m.fingerprint = 0xDEADBEEFCAFEF00DULL;
    m.shard_index = 2;
    m.shard_count = 4;
    m.jobs_done = 3;
    m.jobs_total = 8;
    m.instances_done = 6;
    m.jsonl_bytes = 1234;
    m.csv_bytes = 0;
    m.complete = false;
    ve::write_manifest(dir.path(), m);
    const auto back = ve::read_manifest(dir.path());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->fingerprint, m.fingerprint);
    EXPECT_EQ(back->shard_index, 2);
    EXPECT_EQ(back->shard_count, 4);
    EXPECT_EQ(back->jobs_done, 3);
    EXPECT_EQ(back->jobs_total, 8);
    EXPECT_EQ(back->instances_done, 6);
    EXPECT_EQ(back->jsonl_bytes, 1234u);
    EXPECT_FALSE(back->complete);
    // No torn temp file left behind.
    EXPECT_FALSE(std::filesystem::exists(
        ve::manifest_path(dir.path()).string() + ".tmp"));
}

TEST(Campaign, TwoShardsMergedBitMatchUnshardedSweep) {
    const auto sweep = small_sweep();
    const auto expected = ve::run_sweep(sweep, kHeuristics);

    TempDir root;
    std::vector<std::filesystem::path> files;
    for (int k = 1; k <= 2; ++k) {
        auto cfg = small_campaign(root.path() /
                                  ve::shard_directory_name(k, 2));
        cfg.shard_index = k;
        cfg.shard_count = 2;
        const auto outcome = ve::run_campaign(cfg);
        EXPECT_TRUE(outcome.complete);
        EXPECT_EQ(outcome.jobs_done, 4);
        files.push_back(outcome.jsonl_path);
    }

    const auto merged = ve::merge_shards(files);
    expect_results_identical(merged, expected);
}

TEST(Campaign, StreamingMergeScalesToManyShardsAndJobs) {
    // A deliberately larger grid across three shards: the streaming k-way
    // merge walks the grid pulling one record at a time from the owning
    // shard's stream (peak memory O(shards + jobs), never O(records)) and
    // must still bit-match the unsharded sweep, regardless of the order
    // the shard files are presented in.
    ve::SweepConfig sweep;
    sweep.tasks_values = {2, 3};
    sweep.ncom_values = {1, 2};
    sweep.wmin_values = {1, 2, 3};
    sweep.scenarios_per_cell = 5;  // 2*2*3*5 = 60 jobs
    sweep.trials_per_scenario = 2; // 120 records across the shards
    sweep.p = 3;
    sweep.run.iterations = 1;
    sweep.master_seed = 4242;
    sweep.threads = 2;
    const auto expected = ve::run_sweep(sweep, kHeuristics);

    TempDir root;
    std::vector<std::filesystem::path> files;
    for (int k = 1; k <= 3; ++k) {
        ve::CampaignConfig cfg;
        cfg.sweep = sweep;
        cfg.heuristics = kHeuristics;
        cfg.directory = root.path() / ve::shard_directory_name(k, 3);
        cfg.shard_index = k;
        cfg.shard_count = 3;
        cfg.checkpoint_jobs = 7; // deliberately not a divisor of 20
        const auto outcome = ve::run_campaign(cfg);
        ASSERT_TRUE(outcome.complete);
        files.push_back(outcome.jsonl_path);
    }
    std::swap(files[0], files[2]); // merge order must not matter
    const auto merged = ve::merge_shards(files);
    expect_results_identical(merged, expected);
}

TEST(Campaign, SingleShardMatchesSweepAndRerunIsNoOp) {
    const auto sweep = small_sweep();
    const auto expected = ve::run_sweep(sweep, kHeuristics);

    TempDir dir;
    const auto cfg = small_campaign(dir.path());
    const auto outcome = ve::run_campaign(cfg);
    EXPECT_TRUE(outcome.complete);
    expect_results_identical(outcome.tables, expected);

    const auto bytes = read_file(outcome.jsonl_path);
    // Re-running a complete shard recomputes nothing and rewrites nothing.
    const auto again = ve::run_campaign(cfg);
    EXPECT_TRUE(again.complete);
    EXPECT_EQ(read_file(again.jsonl_path), bytes);
    expect_results_identical(again.tables, expected);
}

TEST(Campaign, KilledAndResumedProducesIdenticalOutput) {
    TempDir uninterrupted_dir, interrupted_dir;

    auto cfg = small_campaign(uninterrupted_dir.path());
    cfg.write_csv = true;
    const auto uninterrupted = ve::run_campaign(cfg);
    ASSERT_TRUE(uninterrupted.complete);
    const auto jsonl = read_file(uninterrupted.jsonl_path);
    const auto csv = read_file(uninterrupted_dir.file("records.csv"));

    // First slice: stop after one checkpoint (3 of 8 jobs durable)...
    auto sliced = small_campaign(interrupted_dir.path());
    sliced.write_csv = true;
    sliced.stop_after_batches = 1;
    const auto first = ve::run_campaign(sliced);
    EXPECT_FALSE(first.complete);
    EXPECT_EQ(first.jobs_done, 3);

    // ...then simulate a kill mid-write: torn bytes past the checkpoint.
    {
        std::ofstream torn(interrupted_dir.file("records.jsonl"),
                           std::ios::app | std::ios::binary);
        torn << "{\"ordinal\":999,\"trial\":0,\"p\":4,\"tas";
        std::ofstream torn_csv(interrupted_dir.file("records.csv"),
                               std::ios::app | std::ios::binary);
        torn_csv << "999,0,4";
    }

    // Resume to completion: torn tails truncated, zero duplicates.
    sliced.stop_after_batches = 0;
    const auto resumed = ve::run_campaign(sliced);
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(read_file(resumed.jsonl_path), jsonl);
    EXPECT_EQ(read_file(interrupted_dir.file("records.csv")), csv);
    expect_results_identical(resumed.tables, uninterrupted.tables);

    // The record stream parses back with each instance exactly once.
    const auto [header, records] =
        ve::read_shard_records(resumed.jsonl_path);
    EXPECT_EQ(header.fingerprint,
              ve::campaign_fingerprint(sliced.sweep, sliced.heuristics));
    std::set<std::pair<std::uint64_t, int>> identities;
    for (const auto& rec : records)
        EXPECT_TRUE(
            identities.emplace(rec.scenario_ordinal, rec.trial).second);
    EXPECT_EQ(static_cast<long long>(records.size()),
              resumed.instances_done);
}

TEST(Campaign, ResumeRejectsAMismatchedConfiguration) {
    TempDir dir;
    auto cfg = small_campaign(dir.path());
    cfg.stop_after_batches = 1;
    (void)ve::run_campaign(cfg);

    auto other = cfg;
    other.sweep.master_seed ^= 0xBAD;
    EXPECT_THROW(ve::run_campaign(other), std::runtime_error);

    auto reshard = cfg;
    reshard.shard_index = 1;
    reshard.shard_count = 2;
    EXPECT_THROW(ve::run_campaign(reshard), std::runtime_error);

    // CSV cannot appear or vanish across a resume.
    auto toggled = cfg;
    toggled.write_csv = true;
    EXPECT_THROW(ve::run_campaign(toggled), std::runtime_error);

    // A fresh (non-resuming) run with the new config is fine.
    auto fresh = other;
    fresh.resume = false;
    fresh.stop_after_batches = 0;
    EXPECT_TRUE(ve::run_campaign(fresh).complete);
}

TEST(Campaign, MergeDetectsMissingAndDuplicateShards) {
    TempDir root;
    std::vector<std::filesystem::path> files;
    for (int k = 1; k <= 2; ++k) {
        auto cfg = small_campaign(root.path() /
                                  ve::shard_directory_name(k, 2));
        cfg.shard_index = k;
        cfg.shard_count = 2;
        files.push_back(ve::run_campaign(cfg).jsonl_path);
    }
    EXPECT_THROW(ve::merge_shards({files[0]}), std::runtime_error);
    EXPECT_THROW(ve::merge_shards({files[0], files[0]}),
                 std::runtime_error);
    EXPECT_THROW(ve::merge_shards({}), std::runtime_error);
    EXPECT_NO_THROW(ve::merge_shards(files));

    // An incomplete shard fails the completeness check loudly.
    auto partial = small_campaign(root.path() / "partial");
    partial.shard_index = 1;
    partial.shard_count = 2;
    partial.stop_after_batches = 1;
    const auto outcome = ve::run_campaign(partial);
    EXPECT_THROW(ve::merge_shards({outcome.jsonl_path, files[1]}),
                 std::runtime_error);
}

TEST(Campaign, FindShardDirectoriesFiltersAndSorts) {
    TempDir root;
    std::filesystem::create_directories(root.path() / "shard-2-of-2");
    std::filesystem::create_directories(root.path() / "shard-1-of-2");
    std::filesystem::create_directories(root.path() / "unrelated");
    { std::ofstream(root.path() / "shard-1-of-2" / "records.jsonl") << ""; }
    { std::ofstream(root.path() / "shard-2-of-2" / "records.jsonl") << ""; }
    const auto dirs = ve::find_shard_directories(root.path());
    ASSERT_EQ(dirs.size(), 2u);
    EXPECT_EQ(dirs[0].filename().string(), "shard-1-of-2");
    EXPECT_EQ(dirs[1].filename().string(), "shard-2-of-2");
    EXPECT_TRUE(
        ve::find_shard_directories(root.path() / "nowhere").empty());
}

TEST(CampaignBuilder, ComposesAndResolvesTheShardDirectory) {
    TempDir root;
    auto builder = va::ExperimentBuilder()
                       .heuristics(kHeuristics)
                       .tasks({3})
                       .ncom({2})
                       .wmin({1})
                       .scenarios_per_cell(1)
                       .trials(1)
                       .processors(4)
                       .iterations(2)
                       .seed(7)
                       .campaign()
                       .directory(root.path())
                       .shard(2, 3)
                       .checkpoint_every(5)
                       .csv();
    const auto cfg = builder.config();
    EXPECT_EQ(cfg.directory,
              root.path() / ve::shard_directory_name(2, 3));
    EXPECT_EQ(cfg.shard_index, 2);
    EXPECT_EQ(cfg.shard_count, 3);
    EXPECT_EQ(cfg.checkpoint_jobs, 5);
    EXPECT_TRUE(cfg.write_csv);

    EXPECT_THROW(va::ExperimentBuilder()
                     .heuristics(kHeuristics)
                     .campaign()
                     .config(), // no directory
                 std::invalid_argument);
    EXPECT_THROW(builder.shard(4, 3).config(), std::invalid_argument);
}

TEST(CampaignBuilder, HeuristicSetSelectsPresetsAndSpecLists) {
    va::ExperimentBuilder b;
    b.heuristic_set("greedy");
    EXPECT_EQ(b.heuristic_specs().size(), 8u);
    b.heuristic_set("all");
    EXPECT_EQ(b.heuristic_specs().size(), 17u);
    b.heuristic_set("mct, emct");
    EXPECT_EQ(b.heuristic_specs(),
              (std::vector<std::string>{"mct", "emct"}));
    // Commas inside option parentheses do not split the spec.
    b.heuristic_set("thr(percent=50):emct,mct");
    EXPECT_EQ(b.heuristic_specs(),
              (std::vector<std::string>{"thr(percent=50):emct", "mct"}));
    EXPECT_THROW(b.heuristic_set(""), std::invalid_argument);
    EXPECT_THROW(b.heuristic_set("mtc"), std::invalid_argument);
}

TEST(CampaignBuilder, RunsEndToEndThroughTheFacade) {
    TempDir root;
    const auto outcome = va::ExperimentBuilder()
                             .heuristics(kHeuristics)
                             .tasks({3})
                             .ncom({2})
                             .wmin({1, 2})
                             .scenarios_per_cell(1)
                             .trials(2)
                             .processors(4)
                             .iterations(2)
                             .seed(11)
                             .campaign()
                             .directory(root.path())
                             .checkpoint_every(1)
                             .run();
    EXPECT_TRUE(outcome.complete);
    EXPECT_EQ(outcome.instances_done, 4);
    const auto merged = ve::merge_shards({outcome.jsonl_path});
    EXPECT_EQ(merged.overall.instances(), 4);
}
