#include "markov/expectation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "markov/chain.hpp"
#include "markov/gen.hpp"
#include "util/rng.hpp"

namespace vm = volsched::markov;
using vm::ProcState;

namespace {

/// One conditional trial for Theorem 2: starting UP, walk until `workload`
/// UP slots accumulated; reject the trial if DOWN occurs first.  Returns
/// the elapsed slots on success.
std::optional<long long> workload_trial(const vm::MarkovChain& chain,
                                        int workload,
                                        volsched::util::Rng& rng) {
    int up_slots = 1; // the current slot counts
    long long elapsed = 1;
    ProcState s = ProcState::Up;
    while (up_slots < workload) {
        s = chain.sample_next(s, rng);
        ++elapsed;
        if (s == ProcState::Down) return std::nullopt;
        if (s == ProcState::Up) ++up_slots;
        if (elapsed > 5'000'000) return std::nullopt; // pathological guard
    }
    return elapsed;
}

} // namespace

TEST(PPlus, FormulaMatchesMonteCarlo) {
    volsched::util::Rng gen(7);
    const auto chain = vm::generate_chain(gen);
    const double predicted = vm::p_plus(chain.matrix());

    volsched::util::Rng rng(8);
    int success = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        ProcState s = ProcState::Up;
        for (;;) {
            s = chain.sample_next(s, rng);
            if (s == ProcState::Up) {
                ++success;
                break;
            }
            if (s == ProcState::Down) break;
        }
    }
    EXPECT_NEAR(success / static_cast<double>(n), predicted, 0.005);
}

TEST(PPlus, AbsorbingReclaimedReducesToPuu) {
    vm::TransitionMatrix m({{{0.7, 0.2, 0.1},
                             {0.0, 1.0, 0.0},
                             {0.0, 0.0, 1.0}}});
    EXPECT_DOUBLE_EQ(vm::p_plus(m), 0.7);
}

TEST(PPlus, NoReclaimedPathGivesPuu) {
    vm::TransitionMatrix m({{{0.9, 0.0, 0.1},
                             {0.3, 0.4, 0.3},
                             {0.2, 0.2, 0.6}}});
    EXPECT_DOUBLE_EQ(vm::p_plus(m), 0.9);
}

TEST(PPlus, IsAProbability) {
    for (int seed = 0; seed < 50; ++seed) {
        volsched::util::Rng rng(seed);
        const auto m = vm::generate_matrix(rng);
        const double p = vm::p_plus(m);
        EXPECT_GT(p, 0.0);
        EXPECT_LE(p, 1.0);
    }
}

TEST(EUp, NeverReclaimedMeansOneSlot) {
    vm::TransitionMatrix m({{{0.95, 0.0, 0.05},
                             {0.3, 0.4, 0.3},
                             {0.2, 0.2, 0.6}}});
    EXPECT_DOUBLE_EQ(vm::e_up(m), 1.0);
}

TEST(EUp, DetoursInflateExpectation) {
    vm::TransitionMatrix m({{{0.5, 0.45, 0.05},
                             {0.3, 0.6, 0.1},
                             {0.2, 0.2, 0.6}}});
    EXPECT_GT(vm::e_up(m), 1.0);
}

TEST(EUp, DeadChainIsInfinite) {
    // From UP one can only go DOWN or stay RECLAIMED forever.
    vm::TransitionMatrix m({{{0.0, 0.5, 0.5},
                             {0.0, 1.0, 0.0},
                             {0.0, 0.0, 1.0}}});
    EXPECT_TRUE(std::isinf(vm::e_up(m)));
}

TEST(EWorkload, ZeroAndUnitWorkloads) {
    volsched::util::Rng rng(77);
    const auto m = vm::generate_matrix(rng);
    EXPECT_DOUBLE_EQ(vm::e_workload(m, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(vm::e_workload(m, 1.0), 1.0);
}

TEST(EWorkload, AtLeastWorkload) {
    for (int seed = 0; seed < 30; ++seed) {
        volsched::util::Rng rng(seed);
        const auto m = vm::generate_matrix(rng);
        for (double w : {2.0, 5.0, 17.0, 100.0})
            EXPECT_GE(vm::e_workload(m, w), w);
    }
}

TEST(EWorkload, LinearInWorkload) {
    volsched::util::Rng rng(88);
    const auto m = vm::generate_matrix(rng);
    const double e2 = vm::e_workload(m, 2.0);
    const double e5 = vm::e_workload(m, 5.0);
    const double e11 = vm::e_workload(m, 11.0);
    // E(W) = 1 + (W-1) E(up): affine in W.
    EXPECT_NEAR((e5 - e2) / 3.0, (e11 - e5) / 6.0, 1e-9);
}

TEST(EWorkload, ClosedFormMatchesTheorem2Expansion) {
    volsched::util::Rng rng(99);
    const auto m = vm::generate_matrix(rng);
    const double w = 13.0;
    const double direct =
        w + (w - 1.0) * (m.p_ur() * m.p_ru() / (1.0 - m.p_rr())) *
                (1.0 / (m.p_uu() * (1.0 - m.p_rr()) + m.p_ur() * m.p_ru()));
    EXPECT_NEAR(vm::e_workload(m, w), direct, 1e-9);
}

TEST(SuccessProbability, MatchesPPlusPower) {
    volsched::util::Rng rng(111);
    const auto m = vm::generate_matrix(rng);
    const double p = vm::p_plus(m);
    EXPECT_NEAR(vm::workload_success_probability(m, 6.0), std::pow(p, 5.0),
                1e-12);
    EXPECT_DOUBLE_EQ(vm::workload_success_probability(m, 1.0), 1.0);
}

TEST(PUdExact, TrivialCases) {
    volsched::util::Rng rng(123);
    const auto m = vm::generate_matrix(rng);
    EXPECT_DOUBLE_EQ(vm::p_ud_exact(m, 1), 1.0);
    EXPECT_NEAR(vm::p_ud_exact(m, 2), 1.0 - m.p_ud(), 1e-12);
}

TEST(PUdExact, DecreasesWithHorizon) {
    volsched::util::Rng rng(125);
    const auto m = vm::generate_matrix(rng);
    double prev = 1.0;
    for (unsigned k = 2; k < 40; k += 3) {
        const double p = vm::p_ud_exact(m, k);
        EXPECT_LT(p, prev);
        prev = p;
    }
}

TEST(PUdExact, MatchesMonteCarlo) {
    volsched::util::Rng gen(131);
    const auto chain = vm::generate_chain(gen);
    const unsigned k = 25;
    const double predicted = vm::p_ud_exact(chain.matrix(), k);

    volsched::util::Rng rng(132);
    int survived = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        ProcState s = ProcState::Up;
        bool ok = true;
        for (unsigned t = 1; t < k; ++t) {
            s = chain.sample_next(s, rng);
            if (s == ProcState::Down) {
                ok = false;
                break;
            }
        }
        survived += ok;
    }
    EXPECT_NEAR(survived / static_cast<double>(n), predicted, 0.01);
}

TEST(PUdApprox, TracksExactWithinCoarseTolerance) {
    // The paper's 1-step approximation deliberately forgets the state after
    // the first transition and mixes the crash hazard with stationary
    // weights; on recipe chains it deviates from the matrix power by up to
    // ~0.16 absolute (measured).  The heuristics only use it to *rank*
    // processors, so we check a coarse envelope plus shape properties.
    for (int seed = 0; seed < 20; ++seed) {
        volsched::util::Rng rng(seed + 500);
        const auto chain = vm::generate_chain(rng);
        const auto& m = chain.matrix();
        const auto& pi = chain.stationary();
        double prev = 1.0;
        for (unsigned k : {3u, 8u, 20u, 50u}) {
            const double exact = vm::p_ud_exact(m, k);
            const double approx =
                vm::p_ud_approx(m, pi.pi_u, pi.pi_r, static_cast<double>(k));
            EXPECT_NEAR(approx, exact, 0.2) << "seed " << seed << " k " << k;
            EXPECT_GE(approx, 0.0);
            EXPECT_LE(approx, 1.0);
            EXPECT_LT(approx, prev); // monotone decreasing in k
            prev = approx;
        }
    }
}

TEST(PUdApprox, EdgeCases) {
    volsched::util::Rng rng(600);
    const auto chain = vm::generate_chain(rng);
    const auto& m = chain.matrix();
    const auto& pi = chain.stationary();
    EXPECT_DOUBLE_EQ(vm::p_ud_approx(m, pi.pi_u, pi.pi_r, 1.0), 1.0);
    EXPECT_NEAR(vm::p_ud_approx(m, pi.pi_u, pi.pi_r, 2.0), 1.0 - m.p_ud(),
                1e-12);
    EXPECT_EQ(vm::p_ud_approx(m, 0.0, 0.0, 5.0), 0.0);
}

// The centerpiece property test: Theorem 2's closed form against Monte
// Carlo, across chains and workload sizes.
class Theorem2Property
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Theorem2Property, ClosedFormMatchesMonteCarlo) {
    const auto [seed, workload] = GetParam();
    volsched::util::Rng gen(static_cast<std::uint64_t>(seed) + 900);
    const auto chain = vm::generate_chain(gen);
    const double predicted =
        vm::e_workload(chain.matrix(), static_cast<double>(workload));

    volsched::util::Rng rng(static_cast<std::uint64_t>(seed) + 901);
    double sum = 0;
    long long accepted = 0;
    const int trials = 60000;
    for (int i = 0; i < trials; ++i) {
        if (const auto elapsed = workload_trial(chain, workload, rng)) {
            sum += static_cast<double>(*elapsed);
            ++accepted;
        }
    }
    ASSERT_GT(accepted, 1000);
    const double empirical = sum / static_cast<double>(accepted);
    EXPECT_NEAR(empirical, predicted, 0.05 * predicted)
        << "chain " << chain.matrix().to_string();
}

INSTANTIATE_TEST_SUITE_P(
    ChainsAndWorkloads, Theorem2Property,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(2, 5, 12, 30)));

TEST(SuccessProbability, UnitOrSmallerWorkloadIsCertain) {
    // W <= 1 means the current UP slot already covers the work: success
    // probability 1 before any P+ power is taken — even for a chain whose
    // P+ is 0, where the power itself would vanish.
    volsched::util::Rng rng(112);
    const auto m = vm::generate_matrix(rng);
    EXPECT_DOUBLE_EQ(vm::workload_success_probability(m, -3.0), 1.0);
    EXPECT_DOUBLE_EQ(vm::workload_success_probability(m, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(vm::workload_success_probability(m, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(vm::workload_success_probability(m, 1.0), 1.0);
    const vm::TransitionMatrix dead({{{0.0, 0.5, 0.5},
                                      {0.0, 1.0, 0.0},
                                      {0.0, 0.0, 1.0}}});
    EXPECT_DOUBLE_EQ(vm::workload_success_probability(dead, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(vm::workload_success_probability(dead, 2.0), 0.0);
}

TEST(SuccessProbability, DecreasesWithWorkloadBeyondOne) {
    volsched::util::Rng rng(113);
    const auto m = vm::generate_matrix(rng);
    double prev = 1.0;
    for (double w = 2.0; w <= 32.0; w *= 2.0) {
        const double p = vm::workload_success_probability(m, w);
        EXPECT_LE(p, prev);
        prev = p;
    }
}

TEST(MeanTimeFromReclaimed, DecoupledReclaimedRowIsGeometric) {
    // P_ru = 0 decouples the RECLAIMED equation: h_r = 1 / (1 - P_rr).
    const vm::TransitionMatrix m({{{0.6, 0.2, 0.2},
                                   {0.0, 0.5, 0.5},
                                   {0.3, 0.3, 0.4}}});
    EXPECT_DOUBLE_EQ(vm::mean_time_to_down_from_reclaimed(m), 2.0);
}

TEST(MeanTimeFromReclaimed, MatchesHandSolvedSystem) {
    // h_u = 1 + 0.5 h_u + 0.3 h_r, h_r = 1 + 0.4 h_u + 0.4 h_r
    // => h_u = h_r = 5.
    const vm::TransitionMatrix m({{{0.5, 0.3, 0.2},
                                   {0.4, 0.4, 0.2},
                                   {0.7, 0.2, 0.1}}});
    EXPECT_NEAR(vm::mean_time_to_down(m), 5.0, 1e-12);
    EXPECT_NEAR(vm::mean_time_to_down_from_reclaimed(m), 5.0, 1e-12);
}

TEST(MeanTimeFromReclaimed, EqualsMttfOfLabelSwappedChain) {
    // Swapping the UP and RECLAIMED labels turns "time to DOWN from
    // RECLAIMED" into plain MTTF — the two closed forms must agree bit
    // for bit on the relabeled matrix.
    volsched::util::Rng rng(114);
    const auto m = vm::generate_matrix(rng);
    const vm::TransitionMatrix swapped(
        {{{m.p_rr(), m.p_ru(), m.p_rd()},
          {m.p_ur(), m.p_uu(), m.p_ud()},
          {m.p_dr(), m.p_du(), m.p_dd()}}});
    EXPECT_EQ(vm::mean_time_to_down_from_reclaimed(m),
              vm::mean_time_to_down(swapped));
}

TEST(MeanRecovery, UnreachableUpIsInfinite) {
    // {RECLAIMED, DOWN} form a closed class: the first-passage system to
    // UP is singular and the expected recovery time diverges.
    const vm::TransitionMatrix m({{{0.6, 0.2, 0.2},
                                   {0.0, 0.4, 0.6},
                                   {0.0, 0.3, 0.7}}});
    EXPECT_TRUE(std::isinf(vm::mean_recovery_time(m)));
}

TEST(MeanRecovery, DecoupledDownRowIsGeometric) {
    // P_dr = 0 decouples the DOWN equation: h_d = 1 / (1 - P_dd).
    const vm::TransitionMatrix m({{{0.6, 0.2, 0.2},
                                   {0.5, 0.3, 0.2},
                                   {0.5, 0.0, 0.5}}});
    EXPECT_DOUBLE_EQ(vm::mean_recovery_time(m), 2.0);
}
