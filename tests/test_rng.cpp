#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace vu = volsched::util;

TEST(Rng, SameSeedSameStream) {
    vu::Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
    vu::Rng a(123), b(124);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        if (a() == b()) ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval) {
    vu::Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds) {
    vu::Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(2.5, 3.5);
        EXPECT_GE(u, 2.5);
        EXPECT_LT(u, 3.5);
    }
}

TEST(Rng, UniformMeanIsCentered) {
    vu::Rng rng(11);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntStaysInClosedRange) {
    vu::Rng rng(13);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniform_int(3, 9);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 9u);
    }
}

TEST(Rng, UniformIntDegenerateRange) {
    vu::Rng rng(15);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5u);
}

TEST(Rng, UniformIntCoversAllValues) {
    vu::Rng rng(17);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 7));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntIsApproximatelyUniform) {
    vu::Rng rng(19);
    std::array<int, 10> counts{};
    const int n = 100000;
    for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(0, 9)];
    for (int c : counts) EXPECT_NEAR(c, n / 10.0, 5 * std::sqrt(n / 10.0));
}

TEST(Rng, BernoulliEdges) {
    vu::Rng rng(21);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
        EXPECT_FALSE(rng.bernoulli(-1.0));
        EXPECT_TRUE(rng.bernoulli(2.0));
    }
}

TEST(Rng, BernoulliFrequency) {
    vu::Rng rng(23);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, WeightedIndexFollowsWeights) {
    vu::Rng rng(25);
    const double w[3] = {1.0, 2.0, 7.0};
    std::array<int, 3> counts{};
    const int n = 100000;
    for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w, 3)];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.015);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.015);
}

TEST(Rng, WeightedIndexAllZeroReturnsSize) {
    vu::Rng rng(27);
    const double w[3] = {0.0, 0.0, 0.0};
    EXPECT_EQ(rng.weighted_index(w, 3), 3u);
}

TEST(Rng, WeightedIndexSkipsZeroWeights) {
    vu::Rng rng(29);
    const double w[4] = {0.0, 1.0, 0.0, 1.0};
    for (int i = 0; i < 1000; ++i) {
        const auto idx = rng.weighted_index(w, 4);
        EXPECT_TRUE(idx == 1 || idx == 3);
    }
}

TEST(Rng, MixSeedSensitivity) {
    // Changing any argument changes the derived seed.
    const auto base = vu::mix_seed(1, 2, 3, 4);
    EXPECT_NE(base, vu::mix_seed(2, 2, 3, 4));
    EXPECT_NE(base, vu::mix_seed(1, 3, 3, 4));
    EXPECT_NE(base, vu::mix_seed(1, 2, 4, 4));
    EXPECT_NE(base, vu::mix_seed(1, 2, 3, 5));
}

TEST(Rng, MixSeedDeterministic) {
    EXPECT_EQ(vu::mix_seed(10, 20), vu::mix_seed(10, 20));
}

TEST(Rng, JumpProducesDisjointStreams) {
    vu::Rng a(31);
    vu::Rng b = a;
    b.jump();
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        if (a() == b()) ++same;
    EXPECT_LT(same, 5);
}

TEST(SplitMix64, KnownFirstOutputsDiffer) {
    vu::SplitMix64 a(0), b(1);
    EXPECT_NE(a.next(), b.next());
}
