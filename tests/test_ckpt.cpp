/// Checkpoint/restart subsystem tests: registry behaviour (self-registered
/// built-ins, shorthand expansion, option validation, did-you-mean),
/// closed-form policy math (Young/Daly interval, crash risk), and engine
/// integration — the `none` bit-identity pin the determinism contract
/// promises, waste reduction under real policies, bandwidth accounting, and
/// replay determinism with checkpointing enabled.

#include <gtest/gtest.h>

#include <cmath>

#include "api/simulation_builder.hpp"
#include "ckpt/policies.hpp"
#include "ckpt/registry.hpp"
#include "core/factory.hpp"
#include "exp/campaign.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sink.hpp"
#include "exp/sweep.hpp"
#include "markov/expectation.hpp"
#include "sim/action_trace.hpp"
#include "sim/engine.hpp"
#include "support/fixtures.hpp"

namespace vapi = volsched::api;
namespace vc = volsched::ckpt;
namespace vcore = volsched::core;
namespace ve = volsched::exp;
namespace vm = volsched::markov;
namespace vs = volsched::sim;
namespace vt = volsched::test;

namespace {

/// A small, crash-prone platform on which tasks are long enough for
/// checkpoints to matter (w up to 10) and crashes frequent enough that the
/// recovery path genuinely fires.
struct CrashySetup {
    vs::Platform pf;
    std::vector<vm::MarkovChain> chains;

    CrashySetup() {
        pf.w = {6, 8, 10};
        pf.ncom = 2;
        pf.t_prog = 3;
        pf.t_data = 1;
        chains.assign(3, vt::chain3(0.70, 0.10, 0.25, 0.30, 0.40, 0.20));
    }
};

vs::RunMetrics run_crashy(const CrashySetup& setup,
                          const vc::CheckpointPolicy* policy, int cost,
                          std::uint64_t seed, vs::ActionTrace* trace,
                          const std::string& heuristic = "emct") {
    vs::EngineConfig cfg = vt::audited_config(/*iterations=*/3, /*tasks=*/4);
    cfg.checkpoint = policy;
    cfg.checkpoint_cost = cost;
    cfg.actions = trace;
    const auto sim =
        vs::Simulation::from_chains(setup.pf, setup.chains, cfg, seed);
    const auto sched = vcore::make_scheduler(heuristic);
    return sim.run(*sched);
}

bool same_trace(const vs::ActionTrace& a, const vs::ActionTrace& b) {
    if (a.procs() != b.procs() || a.slots() != b.slots()) return false;
    for (int q = 0; q < a.procs(); ++q) {
        const auto& ra = a.row(q);
        const auto& rb = b.row(q);
        for (std::size_t t = 0; t < ra.size(); ++t)
            if (ra[t].recv != rb[t].recv || ra[t].compute != rb[t].compute)
                return false;
    }
    return true;
}

} // namespace

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(CkptRegistry, BuiltInsAreRegistered) {
    auto& reg = vc::CheckpointRegistry::instance();
    for (const char* name : {"none", "periodic", "daly", "risk"})
        EXPECT_TRUE(reg.contains(name)) << name;
    const auto names = reg.names();
    EXPECT_GE(names.size(), 4u);
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(CkptRegistry, MakesEveryBuiltInSpelling) {
    auto& reg = vc::CheckpointRegistry::instance();
    EXPECT_EQ(reg.make("none")->name(), "none");
    EXPECT_EQ(reg.make("periodic20")->name(), "periodic");
    EXPECT_EQ(reg.make("periodic(k=20)")->name(), "periodic");
    EXPECT_EQ(reg.make("daly")->name(), "daly");
    EXPECT_EQ(reg.make("risk25")->name(), "risk");
    EXPECT_EQ(reg.make("risk(percent=25)")->name(), "risk");
}

TEST(CkptRegistry, RejectsMalformedSpecs) {
    auto& reg = vc::CheckpointRegistry::instance();
    // Missing / out-of-range / unknown options.
    EXPECT_THROW((void)reg.make("periodic"), std::invalid_argument);
    EXPECT_THROW((void)reg.make("periodic(k=0)"), std::invalid_argument);
    EXPECT_THROW((void)reg.make("periodic(k=2.5)"), std::invalid_argument);
    EXPECT_THROW((void)reg.make("risk(percent=200)"), std::invalid_argument);
    EXPECT_THROW((void)reg.make("risk(prcent=25)"), std::invalid_argument);
    EXPECT_THROW((void)reg.make("daly(k=3)"), std::invalid_argument);
    // Shorthand and key=value must not both name the option.
    EXPECT_THROW((void)reg.make("periodic20(k=5)"), std::invalid_argument);
    // Policies do not nest.
    EXPECT_THROW((void)reg.make("periodic20:daly"), std::invalid_argument);
}

TEST(CkptRegistry, SuggestsCloseNames) {
    auto& reg = vc::CheckpointRegistry::instance();
    try {
        (void)reg.make("peridic8");
        FAIL() << "expected an unknown-policy error";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("periodic"), std::string::npos)
            << e.what();
    }
}

TEST(CkptRegistry, DuplicateRegistrationThrows) {
    auto& reg = vc::CheckpointRegistry::instance();
    EXPECT_THROW(
        reg.add({"none", "dup",
                 [](const vapi::SchedulerSpec&)
                     -> std::unique_ptr<vc::CheckpointPolicy> {
                     return nullptr;
                 }}),
        std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Closed forms.
// ---------------------------------------------------------------------------

TEST(CkptPolicies, DalyIntervalMatchesFormula) {
    const auto chain = vt::crashy_chain(0.05);
    const double mttd = vm::mean_time_to_down(chain.matrix());
    ASSERT_TRUE(std::isfinite(mttd));
    for (int cost : {1, 2, 5, 20}) {
        const double tau = std::sqrt(2.0 * cost * mttd);
        EXPECT_EQ(vc::daly_interval(chain.matrix(), cost),
                  std::max(1, static_cast<int>(std::nearbyint(tau))))
            << "cost " << cost;
    }
    // Zero/negative cost is clamped to 1 transfer slot.
    EXPECT_EQ(vc::daly_interval(chain.matrix(), 0),
              vc::daly_interval(chain.matrix(), 1));
}

TEST(CkptPolicies, DalyNeverFiresWithoutACrashState) {
    // DOWN unreachable: MTTD infinite, interval 0 ("never").
    EXPECT_EQ(vc::daly_interval(vt::always_up_chain().matrix(), 2), 0);
    EXPECT_EQ(vc::daly_interval(vt::flaky_chain(0.3).matrix(), 2), 0);
}

TEST(CkptPolicies, CrashRiskComplementsPud) {
    const auto chain = vt::crashy_chain(0.08);
    for (int remaining : {1, 2, 7, 40})
        EXPECT_NEAR(vc::crash_risk(chain.matrix(), remaining),
                    1.0 - vm::p_ud_exact(chain.matrix(),
                                         static_cast<unsigned>(remaining)),
                    vt::kMarkovTol)
            << remaining;
    EXPECT_EQ(vc::crash_risk(chain.matrix(), 0), 0.0);
    // Risk grows with the exposure window.
    EXPECT_LT(vc::crash_risk(chain.matrix(), 1),
              vc::crash_risk(chain.matrix(), 50));
}

TEST(CkptPolicies, DecisionRules) {
    auto& reg = vc::CheckpointRegistry::instance();
    const auto chain = vt::crashy_chain(0.05);

    vc::CheckpointView view;
    view.belief = &chain;
    view.cost = 2;
    view.w = 20;
    view.remaining = 15;

    const auto none = reg.make("none");
    const auto periodic = reg.make("periodic(k=5)");
    view.computed = 4;
    EXPECT_FALSE(none->should_checkpoint(view));
    EXPECT_FALSE(periodic->should_checkpoint(view));
    view.computed = 5;
    EXPECT_FALSE(none->should_checkpoint(view));
    EXPECT_TRUE(periodic->should_checkpoint(view));

    const auto daly = reg.make("daly");
    const int tau = vc::daly_interval(chain.matrix(), view.cost);
    ASSERT_GT(tau, 0);
    view.computed = tau - 1;
    EXPECT_FALSE(daly->should_checkpoint(view));
    view.computed = tau;
    EXPECT_TRUE(daly->should_checkpoint(view));
    // Uninformed workers never Daly-checkpoint.
    view.belief = nullptr;
    EXPECT_FALSE(daly->should_checkpoint(view));
    view.belief = &chain;

    const auto risk = reg.make("risk(percent=25)");
    view.computed = 1;
    const double r = vc::crash_risk(chain.matrix(), view.remaining);
    EXPECT_EQ(risk->should_checkpoint(view), r > 0.25);
    view.belief = nullptr;
    EXPECT_FALSE(risk->should_checkpoint(view));
}

// ---------------------------------------------------------------------------
// Engine integration.
// ---------------------------------------------------------------------------

TEST(CkptEngine, NonePolicyIsBitIdenticalToNoPolicy) {
    // The acceptance pin: with checkpoint=none, action traces and metrics
    // are bit-identical to an engine without the checkpoint layer.
    const CrashySetup setup;
    const auto none = vc::CheckpointRegistry::instance().make("none");
    for (const auto& name : vcore::greedy_heuristic_names()) {
        vs::ActionTrace bare_trace, none_trace;
        const auto bare =
            run_crashy(setup, nullptr, 1, 99, &bare_trace, name);
        const auto with_none =
            run_crashy(setup, none.get(), 7, 99, &none_trace, name);
        EXPECT_EQ(bare.makespan, with_none.makespan) << name;
        EXPECT_EQ(bare.completed, with_none.completed) << name;
        EXPECT_EQ(bare.tasks_completed, with_none.tasks_completed) << name;
        EXPECT_EQ(bare.wasted_compute_slots, with_none.wasted_compute_slots)
            << name;
        EXPECT_EQ(bare.wasted_transfer_slots,
                  with_none.wasted_transfer_slots)
            << name;
        EXPECT_EQ(bare.iteration_ends, with_none.iteration_ends) << name;
        EXPECT_EQ(with_none.checkpoint_slots, 0) << name;
        EXPECT_EQ(with_none.checkpoints_committed, 0) << name;
        EXPECT_EQ(with_none.recoveries, 0) << name;
        EXPECT_EQ(with_none.saved_compute_slots, 0) << name;
        EXPECT_TRUE(same_trace(bare_trace, none_trace))
            << name << ": attaching the none policy changed the schedule";
    }
}

TEST(CkptEngine, PeriodicReducesWasteAndRecovers) {
    const CrashySetup setup;
    const auto periodic =
        vc::CheckpointRegistry::instance().make("periodic(k=2)");
    long long recoveries = 0, saved = 0, committed = 0;
    long long wasted_none = 0, wasted_ckpt = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const auto bare = run_crashy(setup, nullptr, 1, seed, nullptr);
        const auto ckpt =
            run_crashy(setup, periodic.get(), 1, seed, nullptr);
        // Both runs replay the same availability realization; they only
        // observe different prefixes of it (down_events differ exactly when
        // makespans do, so no per-seed equality is asserted here).
        wasted_none += bare.wasted_compute_slots;
        wasted_ckpt += ckpt.wasted_compute_slots;
        recoveries += ckpt.recoveries;
        saved += ckpt.saved_compute_slots;
        committed += ckpt.checkpoints_committed;
        EXPECT_GE(ckpt.checkpoint_slots, ckpt.checkpoints_committed) << seed;
    }
    EXPECT_GT(committed, 0);
    EXPECT_GT(recoveries, 0) << "no restart ever resumed from a checkpoint";
    EXPECT_GT(saved, 0);
    EXPECT_LT(wasted_ckpt, wasted_none)
        << "checkpointing did not reduce wasted compute";
}

TEST(CkptEngine, ReplayIsDeterministic) {
    const CrashySetup setup;
    const auto daly = vc::CheckpointRegistry::instance().make("daly");
    vs::ActionTrace t1, t2;
    const auto m1 = run_crashy(setup, daly.get(), 2, 1234, &t1);
    const auto m2 = run_crashy(setup, daly.get(), 2, 1234, &t2);
    EXPECT_EQ(m1.makespan, m2.makespan);
    EXPECT_EQ(m1.checkpoint_slots, m2.checkpoint_slots);
    EXPECT_EQ(m1.checkpoints_committed, m2.checkpoints_committed);
    EXPECT_EQ(m1.recoveries, m2.recoveries);
    EXPECT_EQ(m1.saved_compute_slots, m2.saved_compute_slots);
    EXPECT_EQ(m1.wasted_compute_slots, m2.wasted_compute_slots);
    EXPECT_TRUE(same_trace(t1, t2));
}

TEST(CkptEngine, BandwidthAuditHoldsUnderTightNcom) {
    // ncom=1: checkpoint uploads, program and data transfers all fight for
    // a single slot-unit; the audited run throws if the bound is ever
    // exceeded and the run must still finish.
    CrashySetup setup;
    setup.pf.ncom = 1;
    const auto risk =
        vc::CheckpointRegistry::instance().make("risk(percent=10)");
    const auto m = run_crashy(setup, risk.get(), 2, 77, nullptr);
    EXPECT_GT(m.checkpoint_slots, 0)
        << "risk(10%) never checkpointed on a crashy platform";
}

TEST(CkptEngine, BuilderAttachesPoliciesAndValidates) {
    const CrashySetup setup;
    auto sim = vs::Simulation::builder()
                   .platform(setup.pf)
                   .markov(setup.chains)
                   .iterations(3)
                   .tasks_per_iteration(4)
                   .checkpoint("periodic(k=2)")
                   .checkpoint_cost(1)
                   .audit()
                   .seed(5)
                   .build();
    const auto sched = vcore::make_scheduler("emct");
    const auto with_builder = sim.run(*sched);
    const auto periodic =
        vc::CheckpointRegistry::instance().make("periodic(k=2)");
    const auto direct = run_crashy(setup, periodic.get(), 1, 5, nullptr);
    EXPECT_EQ(with_builder.makespan, direct.makespan);
    EXPECT_EQ(with_builder.checkpoints_committed,
              direct.checkpoints_committed);
    EXPECT_EQ(with_builder.saved_compute_slots, direct.saved_compute_slots);

    EXPECT_THROW((void)vs::Simulation::builder().checkpoint("perodic2"),
                 std::invalid_argument);
    EXPECT_THROW(
        (void)vs::Simulation::builder().checkpoint(
            std::shared_ptr<const vc::CheckpointPolicy>()),
        std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Sweep / campaign integration.
// ---------------------------------------------------------------------------

TEST(CkptSweep, DefaultAxisKeepsTheClassicGrid) {
    ve::SweepConfig cfg;
    cfg.tasks_values = {3};
    cfg.ncom_values = {2};
    cfg.wmin_values = {1, 2};
    cfg.scenarios_per_cell = 2;
    const auto jobs = ve::grid_jobs(cfg);
    ASSERT_EQ(jobs.size(), 4u);
    for (const auto& job : jobs) {
        EXPECT_EQ(job.ordinal, job.seed_ordinal);
        EXPECT_EQ(job.scenario.checkpoint, "none");
    }
}

TEST(CkptSweep, CheckpointAxisSharesSeedsAcrossPolicies) {
    ve::SweepConfig cfg;
    cfg.tasks_values = {3};
    cfg.ncom_values = {2};
    cfg.wmin_values = {1, 2};
    cfg.scenarios_per_cell = 2;
    cfg.checkpoint_values = {"none", "daly"};
    const auto jobs = ve::grid_jobs(cfg);
    ASSERT_EQ(jobs.size(), 8u);
    for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_EQ(jobs[j].scenario.checkpoint, "none");
        EXPECT_EQ(jobs[j + 4].scenario.checkpoint, "daly");
        // Same draw, same seed: cross-policy comparisons are
        // same-realization by construction.
        EXPECT_EQ(jobs[j].scenario.seed, jobs[j + 4].scenario.seed);
        EXPECT_EQ(jobs[j].seed_ordinal, jobs[j + 4].seed_ordinal);
        EXPECT_NE(jobs[j].ordinal, jobs[j + 4].ordinal);
    }
}

TEST(CkptSweep, RunSweepBreaksDownByPolicy) {
    ve::SweepConfig cfg;
    cfg.tasks_values = {3};
    cfg.ncom_values = {2};
    cfg.wmin_values = {2};
    cfg.scenarios_per_cell = 2;
    cfg.trials_per_scenario = 2;
    cfg.p = 4;
    cfg.run.iterations = 2;
    cfg.checkpoint_values = {"none", "periodic(k=2)"};
    cfg.threads = 1;
    const auto result = ve::run_sweep(cfg, {"mct", "emct"});
    ASSERT_EQ(result.by_checkpoint.size(), 2u);
    EXPECT_EQ(result.by_checkpoint.count("none"), 1u);
    EXPECT_EQ(result.by_checkpoint.count("periodic(k=2)"), 1u);
    EXPECT_EQ(result.overall.instances(),
              result.by_checkpoint.at("none").instances() +
                  result.by_checkpoint.at("periodic(k=2)").instances());
}

TEST(CkptSweep, DegradationTablesMatchPreCheckpointGolden) {
    // The acceptance pin for the sweep layer: with the default
    // checkpoint=none axis, the degradation-from-best tables are
    // bit-identical to the pre-checkpoint-subsystem engine.  The literals
    // below were produced by this exact configuration built from the last
    // pre-checkpoint commit (PR 4, 35fdd62) — %.17g, so the doubles
    // round-trip exactly.
    ve::SweepConfig cfg;
    cfg.tasks_values = {3, 5};
    cfg.ncom_values = {2};
    cfg.wmin_values = {1, 2};
    cfg.scenarios_per_cell = 2;
    cfg.trials_per_scenario = 2;
    cfg.p = 6;
    cfg.run.iterations = 2;
    cfg.threads = 1;
    const std::vector<std::string> hs = {"mct", "emct", "emct*", "random"};
    const auto r = ve::run_sweep(cfg, hs);
    ASSERT_EQ(r.overall.instances(), 16);
    const double golden_dfb[] = {14.774370242606505, 1.0352207095709569,
                                 1.0352207095709569, 94.259253868640869};
    const double golden_makespan[] = {81.3125, 62.4375, 62.4375, 121.25};
    const long long golden_wins[] = {10, 13, 13, 0};
    for (std::size_t h = 0; h < hs.size(); ++h) {
        EXPECT_EQ(r.overall.mean_dfb(h), golden_dfb[h]) << hs[h];
        EXPECT_EQ(r.overall.makespan(h).mean(), golden_makespan[h]) << hs[h];
        EXPECT_EQ(static_cast<long long>(r.overall.wins(h)), golden_wins[h])
            << hs[h];
    }
}

TEST(CkptCampaign, FingerprintAndHeaderCoverTheAxis) {
    ve::SweepConfig classic;
    const std::vector<std::string> heuristics = {"mct", "emct"};
    ve::SweepConfig swept = classic;
    swept.checkpoint_values = {"none", "daly"};
    EXPECT_NE(ve::campaign_fingerprint(classic, heuristics),
              ve::campaign_fingerprint(swept, heuristics));

    ve::CampaignConfig cfg;
    cfg.sweep = swept;
    cfg.sweep.run.checkpoint_cost = 3;
    cfg.heuristics = heuristics;
    const std::string line = ve::campaign_header_line(cfg);
    const ve::CampaignHeader header = ve::parse_campaign_header(line);
    EXPECT_EQ(header.sweep.checkpoint_values, swept.checkpoint_values);
    EXPECT_EQ(header.sweep.run.checkpoint_cost, 3);

    // Classic headers (no checkpoint fields) still round-trip and resolve
    // to the default axis.
    ve::CampaignConfig classic_cfg;
    classic_cfg.sweep = classic;
    classic_cfg.heuristics = heuristics;
    const std::string classic_line = ve::campaign_header_line(classic_cfg);
    EXPECT_EQ(classic_line.find("checkpoint"), std::string::npos);
    const auto classic_header = ve::parse_campaign_header(classic_line);
    EXPECT_EQ(classic_header.sweep.checkpoint_values,
              std::vector<std::string>{"none"});
}

TEST(CkptCampaign, RecordsCarryTheCheckpointOnlyWhenSwept) {
    ve::InstanceRecord rec;
    rec.scenario_ordinal = 12;
    rec.trial = 1;
    rec.scenario.seed = 99;
    rec.makespans = {10, 12};
    const std::string classic = ve::JsonlSink::format_record(rec);
    EXPECT_EQ(classic.find("checkpoint"), std::string::npos);
    EXPECT_EQ(ve::JsonlSink::parse_record(classic).scenario.checkpoint,
              "none");

    rec.scenario.checkpoint = "risk(percent=25)";
    const std::string swept = ve::JsonlSink::format_record(rec);
    EXPECT_NE(swept.find("\"checkpoint\":\"risk(percent=25)\""),
              std::string::npos);
    const auto back = ve::JsonlSink::parse_record(swept);
    EXPECT_EQ(back.scenario.checkpoint, "risk(percent=25)");
    EXPECT_EQ(back.makespans, rec.makespans);
}

// The remaining EngineConfig knobs ride through SweepConfig so campaigns
// can toggle them like SimulationBuilder users can: audited sweeps must
// reproduce the unaudited results exactly (auditing only observes).
TEST(CkptSweep, AuditAndSkipKnobsDoNotChangeResults) {
    ve::SweepConfig cfg;
    cfg.tasks_values = {3};
    cfg.ncom_values = {2};
    cfg.wmin_values = {2};
    cfg.scenarios_per_cell = 1;
    cfg.trials_per_scenario = 2;
    cfg.p = 4;
    cfg.run.iterations = 2;
    cfg.threads = 1;
    const std::vector<std::string> heuristics = {"mct", "emct"};
    const auto plain = ve::run_sweep(cfg, heuristics);
    cfg.run.audit = true;
    cfg.run.skip_dead_slots = false;
    const auto audited = ve::run_sweep(cfg, heuristics);
    EXPECT_EQ(plain.overall.instances(), audited.overall.instances());
    for (std::size_t h = 0; h < heuristics.size(); ++h) {
        EXPECT_EQ(plain.overall.mean_dfb(h), audited.overall.mean_dfb(h));
        EXPECT_EQ(plain.overall.makespan(h).mean(),
                  audited.overall.makespan(h).mean());
    }
}
