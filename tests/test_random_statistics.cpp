/// Statistical verification of all nine random heuristics: each weight
/// definition of Section 6.2 is checked against the empirical pick
/// frequency on hand-constructed chains with known P_uu, P+, pi_u, pi_d.

#include <gtest/gtest.h>

#include <map>

#include "core/factory.hpp"
#include "markov/expectation.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace vc = volsched::core;
namespace vs = volsched::sim;
namespace vm = volsched::markov;

namespace {

struct Fixture {
    vs::Platform platform;
    std::vector<vs::ProcView> procs;
    std::vector<vm::MarkovChain> chains;
    vs::SchedView view;

    explicit Fixture(std::vector<vm::MarkovChain> cs)
        : chains(std::move(cs)) {
        const int p = static_cast<int>(chains.size());
        platform.w.assign(static_cast<std::size_t>(p), 2);
        platform.ncom = 2;
        platform.t_prog = 5;
        platform.t_data = 1;
        procs.resize(static_cast<std::size_t>(p));
        for (int q = 0; q < p; ++q) {
            procs[q].state = vm::ProcState::Up;
            procs[q].has_program = true;
            procs[q].buffer_free = true;
            procs[q].w = 2;
            procs[q].delay = 0;
            procs[q].belief = &chains[q];
        }
        view.platform = &platform;
        view.procs = procs;
        view.remaining_tasks = 1;
    }

    /// Empirical pick fraction of processor 0 over n draws.
    double pick0_fraction(const std::string& heuristic, int n = 60000) {
        auto sched = vc::make_scheduler(heuristic);
        std::vector<int> nq(procs.size(), 0);
        std::vector<vs::ProcId> eligible;
        for (std::size_t q = 0; q < procs.size(); ++q)
            eligible.push_back(static_cast<vs::ProcId>(q));
        volsched::util::Rng rng(0xABCDEF);
        int zero = 0;
        for (int i = 0; i < n; ++i)
            zero += (sched->select(view, eligible, nq, rng) == 0);
        return zero / static_cast<double>(n);
    }
};

vm::MarkovChain chain(double uu, double ur, double ru, double rr,
                      double du = 0.5, double dr = 0.25) {
    const double ud = 1.0 - uu - ur;
    const double rd = 1.0 - ru - rr;
    const double dd = 1.0 - du - dr;
    return vm::MarkovChain(vm::TransitionMatrix(
        {{{uu, ur, ud}, {ru, rr, rd}, {du, dr, dd}}}));
}

} // namespace

TEST(RandomStats, Random1FollowsPuuRatio) {
    // P_uu: 0.6 vs 0.9 -> pick0 = 0.6 / 1.5 = 0.4.
    Fixture f({chain(0.6, 0.3, 0.4, 0.5), chain(0.9, 0.05, 0.4, 0.5)});
    EXPECT_NEAR(f.pick0_fraction("random1"), 0.4, 0.01);
}

TEST(RandomStats, Random2FollowsPPlusRatio) {
    Fixture f({chain(0.6, 0.3, 0.4, 0.5), chain(0.9, 0.05, 0.4, 0.5)});
    const double p0 = vm::p_plus(f.chains[0].matrix());
    const double p1 = vm::p_plus(f.chains[1].matrix());
    EXPECT_NEAR(f.pick0_fraction("random2"), p0 / (p0 + p1), 0.01);
}

TEST(RandomStats, Random3FollowsStationaryUpRatio) {
    Fixture f({chain(0.6, 0.3, 0.4, 0.5), chain(0.95, 0.03, 0.5, 0.45)});
    const double pi0 = f.chains[0].stationary().pi_u;
    const double pi1 = f.chains[1].stationary().pi_u;
    EXPECT_NEAR(f.pick0_fraction("random3"), pi0 / (pi0 + pi1), 0.01);
}

TEST(RandomStats, Random4FollowsRarelyDownRatio) {
    Fixture f({chain(0.6, 0.1, 0.4, 0.3), chain(0.95, 0.03, 0.5, 0.45)});
    const double w0 = 1.0 - f.chains[0].stationary().pi_d;
    const double w1 = 1.0 - f.chains[1].stationary().pi_d;
    EXPECT_NEAR(f.pick0_fraction("random4"), w0 / (w0 + w1), 0.01);
}

TEST(RandomStats, SpeedVariantsRescaleByW) {
    // Equal chains, speeds 2 vs 6: random1w picks P0 with odds (1/2):(1/6).
    Fixture f({chain(0.9, 0.05, 0.4, 0.5), chain(0.9, 0.05, 0.4, 0.5)});
    f.procs[0].w = 2;
    f.procs[1].w = 6;
    f.view.procs = f.procs;
    for (const char* name : {"random1w", "random2w", "random3w", "random4w"})
        EXPECT_NEAR(f.pick0_fraction(name), 0.75, 0.01) << name;
}

TEST(RandomStats, PlainVariantsIgnoreSpeed) {
    Fixture f({chain(0.9, 0.05, 0.4, 0.5), chain(0.9, 0.05, 0.4, 0.5)});
    f.procs[0].w = 2;
    f.procs[1].w = 6;
    f.view.procs = f.procs;
    for (const char* name : {"random1", "random2", "random3", "random4"})
        EXPECT_NEAR(f.pick0_fraction(name), 0.5, 0.01) << name;
}

TEST(RandomStats, UniformIgnoresEverything) {
    Fixture f({chain(0.6, 0.3, 0.4, 0.5), chain(0.99, 0.005, 0.5, 0.45)});
    f.procs[0].w = 1;
    f.procs[1].w = 20;
    f.view.procs = f.procs;
    EXPECT_NEAR(f.pick0_fraction("random"), 0.5, 0.01);
}

TEST(RandomStats, ThreeWayWeightsNormalizeCorrectly) {
    Fixture f({chain(0.5, 0.25, 0.4, 0.5), chain(0.75, 0.12, 0.4, 0.5),
               chain(0.95, 0.02, 0.4, 0.5)});
    // random1: expected pick0 = 0.5 / (0.5 + 0.75 + 0.95).
    EXPECT_NEAR(f.pick0_fraction("random1"), 0.5 / 2.2, 0.01);
}
