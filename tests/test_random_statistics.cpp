/// Statistical verification of all nine random heuristics: each weight
/// definition of Section 6.2 is checked against the empirical pick
/// frequency on hand-constructed chains with known P_uu, P+, pi_u, pi_d,
/// and the uniform baseline is checked with a chi-squared goodness-of-fit
/// test under a fixed RNG.

#include <gtest/gtest.h>

#include <cmath>

#include "core/factory.hpp"
#include "markov/expectation.hpp"
#include "sim/scheduler.hpp"
#include "support/fixtures.hpp"
#include "util/rng.hpp"

namespace vc = volsched::core;
namespace vs = volsched::sim;
namespace vm = volsched::markov;
namespace vt = volsched::test;

namespace {

/// Empirical pick fraction of processor 0 over n draws.
double pick0_fraction(vt::ViewFixture& f, const std::string& heuristic,
                      int n = 60000) {
    const auto sched = vc::make_scheduler(heuristic);
    const auto counts = vt::pick_counts(f, *sched, n, 0xABCDEF);
    return static_cast<double>(counts[0]) / static_cast<double>(n);
}

} // namespace

TEST(RandomStats, Random1FollowsPuuRatio) {
    // P_uu: 0.6 vs 0.9 -> pick0 = 0.6 / 1.5 = 0.4.
    vt::ViewFixture f({vt::chain3(0.6, 0.3, 0.4, 0.5),
                       vt::chain3(0.9, 0.05, 0.4, 0.5)});
    EXPECT_NEAR(pick0_fraction(f, "random1"), 0.4, 0.01);
}

TEST(RandomStats, Random2FollowsPPlusRatio) {
    vt::ViewFixture f({vt::chain3(0.6, 0.3, 0.4, 0.5),
                       vt::chain3(0.9, 0.05, 0.4, 0.5)});
    const double p0 = vm::p_plus(f.chains[0].matrix());
    const double p1 = vm::p_plus(f.chains[1].matrix());
    EXPECT_NEAR(pick0_fraction(f, "random2"), p0 / (p0 + p1), 0.01);
}

TEST(RandomStats, Random3FollowsStationaryUpRatio) {
    vt::ViewFixture f({vt::chain3(0.6, 0.3, 0.4, 0.5),
                       vt::chain3(0.95, 0.03, 0.5, 0.45)});
    const double pi0 = f.chains[0].stationary().pi_u;
    const double pi1 = f.chains[1].stationary().pi_u;
    EXPECT_NEAR(pick0_fraction(f, "random3"), pi0 / (pi0 + pi1), 0.01);
}

TEST(RandomStats, Random4FollowsRarelyDownRatio) {
    vt::ViewFixture f({vt::chain3(0.6, 0.1, 0.4, 0.3),
                       vt::chain3(0.95, 0.03, 0.5, 0.45)});
    const double w0 = 1.0 - f.chains[0].stationary().pi_d;
    const double w1 = 1.0 - f.chains[1].stationary().pi_d;
    EXPECT_NEAR(pick0_fraction(f, "random4"), w0 / (w0 + w1), 0.01);
}

TEST(RandomStats, SpeedVariantsRescaleByW) {
    // Equal chains, speeds 2 vs 6: random1w picks P0 with odds (1/2):(1/6).
    vt::ViewFixture f({vt::chain3(0.9, 0.05, 0.4, 0.5),
                       vt::chain3(0.9, 0.05, 0.4, 0.5)});
    f.procs[0].w = 2;
    f.procs[1].w = 6;
    for (const char* name : {"random1w", "random2w", "random3w", "random4w"})
        EXPECT_NEAR(pick0_fraction(f, name), 0.75, 0.01) << name;
}

TEST(RandomStats, PlainVariantsIgnoreSpeed) {
    vt::ViewFixture f({vt::chain3(0.9, 0.05, 0.4, 0.5),
                       vt::chain3(0.9, 0.05, 0.4, 0.5)});
    f.procs[0].w = 2;
    f.procs[1].w = 6;
    for (const char* name : {"random1", "random2", "random3", "random4"})
        EXPECT_NEAR(pick0_fraction(f, name), 0.5, 0.01) << name;
}

TEST(RandomStats, UniformIgnoresEverything) {
    vt::ViewFixture f({vt::chain3(0.6, 0.3, 0.4, 0.5),
                       vt::chain3(0.99, 0.005, 0.5, 0.45)});
    f.procs[0].w = 1;
    f.procs[1].w = 20;
    EXPECT_NEAR(pick0_fraction(f, "random"), 0.5, 0.01);
}

TEST(RandomStats, ThreeWayWeightsNormalizeCorrectly) {
    vt::ViewFixture f({vt::chain3(0.5, 0.25, 0.4, 0.5),
                       vt::chain3(0.75, 0.12, 0.4, 0.5),
                       vt::chain3(0.95, 0.02, 0.4, 0.5)});
    // random1: expected pick0 = 0.5 / (0.5 + 0.75 + 0.95).
    EXPECT_NEAR(pick0_fraction(f, "random1"), 0.5 / 2.2, 0.01);
}

// ---------------------------------------------------------------------------
// Chi-squared goodness of fit for the uniform RandomScheduler.
// ---------------------------------------------------------------------------

TEST(RandomStats, UniformPassesChiSquaredOverEightProcs) {
    // Eight eligible processors with wildly different chains and speeds; the
    // uniform "random" heuristic must still pick each with probability 1/8.
    std::vector<vm::MarkovChain> chains;
    for (int q = 0; q < 8; ++q)
        chains.push_back(vt::self_split_chain(0.90 + 0.01 * q));
    vt::ViewFixture f(std::move(chains));
    for (std::size_t q = 0; q < f.procs.size(); ++q)
        f.procs[q].w = 1 + static_cast<int>(q);

    const auto sched = vc::make_scheduler("random");
    const int n = 80000;
    const auto counts = vt::pick_counts(f, *sched, n, 20240717);
    const std::vector<double> uniform(8, 1.0 / 8.0);
    const double stat = vt::chi_squared(counts, uniform);
    // 7 degrees of freedom: critical value 18.48 at alpha = 0.01.  The RNG
    // seed is fixed, so this is a regression test, not a flaky one.
    EXPECT_LT(stat, 18.48) << "chi-squared statistic " << stat;
    long long total = 0;
    for (const auto c : counts) total += c;
    EXPECT_EQ(total, n);
}

TEST(RandomStats, WeightedPicksPassChiSquaredAgainstTheirWeights) {
    // random1 over three processors must match the P_uu weight vector by the
    // same chi-squared criterion (2 dof, critical value 9.21 at alpha=0.01).
    vt::ViewFixture f({vt::chain3(0.5, 0.25, 0.4, 0.5),
                       vt::chain3(0.75, 0.12, 0.4, 0.5),
                       vt::chain3(0.95, 0.02, 0.4, 0.5)});
    const auto sched = vc::make_scheduler("random1");
    const auto counts = vt::pick_counts(f, *sched, 60000, 0xFEED);
    const std::vector<double> weights = {0.5, 0.75, 0.95};
    const double stat = vt::chi_squared(counts, weights);
    EXPECT_LT(stat, 9.21) << "chi-squared statistic " << stat;
}

TEST(RandomStats, ChiSquaredHelperRejectsDegenerateInput) {
    const std::vector<long long> counts = {1, 2};
    const std::vector<double> wrong_arity = {1.0};
    EXPECT_TRUE(std::isinf(vt::chi_squared(counts, wrong_arity)));
    const std::vector<long long> empty;
    const std::vector<double> empty_w;
    EXPECT_TRUE(std::isinf(vt::chi_squared(empty, empty_w)));
}
