#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "core/factory.hpp"
#include "exp/dfb.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"

namespace ve = volsched::exp;

TEST(Scenario, RealizeIsDeterministic) {
    ve::Scenario sc;
    sc.seed = 987;
    const auto a = ve::realize(sc);
    const auto b = ve::realize(sc);
    EXPECT_EQ(a.platform.w, b.platform.w);
    ASSERT_EQ(a.chains.size(), b.chains.size());
    for (std::size_t q = 0; q < a.chains.size(); ++q)
        EXPECT_DOUBLE_EQ(a.chains[q].matrix().p_uu(),
                         b.chains[q].matrix().p_uu());
}

TEST(Scenario, SpeedsInPaperRange) {
    for (int wmin : {1, 4, 10}) {
        ve::Scenario sc;
        sc.wmin = wmin;
        sc.seed = 33 + wmin;
        const auto rs = ve::realize(sc);
        for (int w : rs.platform.w) {
            EXPECT_GE(w, wmin);
            EXPECT_LE(w, 10 * wmin);
        }
        EXPECT_EQ(rs.platform.t_data, wmin);
        EXPECT_EQ(rs.platform.t_prog, 5 * wmin);
    }
}

TEST(Scenario, ContentionFactorsScaleTransferTimes) {
    ve::Scenario sc;
    sc.wmin = 1;
    sc.tdata_factor = 5.0;
    sc.tprog_factor = 25.0;
    sc.seed = 5;
    const auto rs = ve::realize(sc);
    EXPECT_EQ(rs.platform.t_data, 5);
    EXPECT_EQ(rs.platform.t_prog, 25);
}

TEST(Scenario, RejectsBadParameters) {
    ve::Scenario sc;
    sc.p = 0;
    EXPECT_THROW(ve::realize(sc), std::invalid_argument);
}

TEST(Dfb, SingleInstanceBasics) {
    ve::DfbTable table(3);
    table.add_instance({100, 150, 100});
    EXPECT_EQ(table.instances(), 1);
    EXPECT_DOUBLE_EQ(table.mean_dfb(0), 0.0);
    EXPECT_DOUBLE_EQ(table.mean_dfb(1), 50.0);
    EXPECT_DOUBLE_EQ(table.mean_dfb(2), 0.0);
    EXPECT_EQ(table.wins(0), 1);
    EXPECT_EQ(table.wins(1), 0);
    EXPECT_EQ(table.wins(2), 1); // ties count as wins
}

TEST(Dfb, AveragesAcrossInstances) {
    ve::DfbTable table(2);
    table.add_instance({100, 120}); // dfb: 0, 20
    table.add_instance({110, 100}); // dfb: 10, 0
    EXPECT_DOUBLE_EQ(table.mean_dfb(0), 5.0);
    EXPECT_DOUBLE_EQ(table.mean_dfb(1), 10.0);
    EXPECT_EQ(table.wins(0), 1);
    EXPECT_EQ(table.wins(1), 1);
}

TEST(Dfb, RejectsBadInput) {
    ve::DfbTable table(2);
    EXPECT_THROW(table.add_instance({1, 2, 3}), std::invalid_argument);
    EXPECT_THROW(table.add_instance({0, 5}), std::invalid_argument);
}

TEST(Dfb, MergeAccumulates) {
    ve::DfbTable a(2), b(2);
    a.add_instance({100, 200});
    b.add_instance({100, 100});
    a.merge(b);
    EXPECT_EQ(a.instances(), 2);
    EXPECT_DOUBLE_EQ(a.mean_dfb(1), 50.0);
    EXPECT_EQ(a.wins(1), 1);
    ve::DfbTable wrong(3);
    EXPECT_THROW(a.merge(wrong), std::invalid_argument);
}

TEST(Runner, AllHeuristicsShareTheAvailability) {
    ve::Scenario sc;
    sc.p = 8;
    sc.tasks = 5;
    sc.ncom = 3;
    sc.wmin = 1;
    sc.seed = 1234;
    const auto rs = ve::realize(sc);
    ve::RunConfig rc;
    rc.iterations = 2;
    const auto outcome =
        ve::run_instance(rs, sc.tasks, {"mct", "emct"}, rc, 555);
    ASSERT_EQ(outcome.makespans.size(), 2u);
    EXPECT_GT(outcome.makespans[0], 0);
    EXPECT_GT(outcome.makespans[1], 0);
    // Re-running is bit-identical.
    const auto again =
        ve::run_instance(rs, sc.tasks, {"mct", "emct"}, rc, 555);
    EXPECT_EQ(outcome.makespans, again.makespans);
}

TEST(Sweep, TinySweepProducesConsistentTables) {
    ve::SweepConfig cfg;
    cfg.tasks_values = {4};
    cfg.ncom_values = {2};
    cfg.wmin_values = {1, 2};
    cfg.scenarios_per_cell = 2;
    cfg.trials_per_scenario = 2;
    cfg.p = 6;
    cfg.run.iterations = 2;
    cfg.master_seed = 99;
    const std::vector<std::string> heuristics = {"mct", "random"};
    const auto result = ve::run_sweep(cfg, heuristics);
    EXPECT_EQ(result.overall.instances(), 2LL * 2 * 2);
    ASSERT_EQ(result.by_wmin.size(), 2u);
    long long by_wmin_total = 0;
    for (const auto& [wmin, table] : result.by_wmin)
        by_wmin_total += table.instances();
    EXPECT_EQ(by_wmin_total, result.overall.instances());
    // Wins per instance: at least one heuristic wins each instance.
    long long wins = 0;
    for (std::size_t h = 0; h < heuristics.size(); ++h)
        wins += result.overall.wins(h);
    EXPECT_GE(wins, result.overall.instances());
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
    ve::SweepConfig cfg;
    cfg.tasks_values = {4};
    cfg.ncom_values = {2};
    cfg.wmin_values = {1};
    cfg.scenarios_per_cell = 2;
    cfg.trials_per_scenario = 2;
    cfg.p = 5;
    cfg.run.iterations = 2;
    cfg.master_seed = 7;
    const std::vector<std::string> heuristics = {"mct", "emct*"};

    cfg.threads = 1;
    const auto a = ve::run_sweep(cfg, heuristics);
    cfg.threads = 4;
    const auto b = ve::run_sweep(cfg, heuristics);
    for (std::size_t h = 0; h < heuristics.size(); ++h) {
        EXPECT_DOUBLE_EQ(a.overall.mean_dfb(h), b.overall.mean_dfb(h));
        EXPECT_EQ(a.overall.wins(h), b.overall.wins(h));
    }
}

TEST(Sweep, RecordSinkReceivesEveryInstance) {
    ve::SweepConfig cfg;
    cfg.tasks_values = {3, 5};
    cfg.ncom_values = {2};
    cfg.wmin_values = {1};
    cfg.scenarios_per_cell = 2;
    cfg.trials_per_scenario = 2;
    cfg.p = 4;
    cfg.run.iterations = 1;
    cfg.threads = 3;
    std::vector<ve::InstanceRecord> rows;
    cfg.record = [&](const ve::InstanceRecord& rec) { rows.push_back(rec); };
    const auto result = ve::run_sweep(cfg, {"mct", "emct"});
    EXPECT_EQ(static_cast<long long>(rows.size()),
              result.overall.instances());
    int tasks3 = 0, tasks5 = 0;
    std::set<std::pair<std::uint64_t, int>> identities;
    for (const auto& rec : rows) {
        EXPECT_EQ(rec.makespans.size(), 2u);
        for (long long ms : rec.makespans) EXPECT_GT(ms, 0);
        tasks3 += (rec.scenario.tasks == 3);
        tasks5 += (rec.scenario.tasks == 5);
        identities.emplace(rec.scenario_ordinal, rec.trial);
    }
    EXPECT_EQ(tasks3, 4);
    EXPECT_EQ(tasks5, 4);
    // Every (scenario, trial) instance is reported exactly once.
    EXPECT_EQ(identities.size(), rows.size());
}

TEST(Sweep, ProgressCallbackCoversAllInstances) {
    ve::SweepConfig cfg;
    cfg.tasks_values = {3};
    cfg.ncom_values = {2};
    cfg.wmin_values = {1};
    cfg.scenarios_per_cell = 1;
    cfg.trials_per_scenario = 3;
    cfg.p = 4;
    cfg.run.iterations = 1;
    long long last = 0, total_seen = 0;
    cfg.progress = [&](long long done, long long total) {
        last = done;
        total_seen = total;
    };
    (void)ve::run_sweep(cfg, {"mct"});
    EXPECT_EQ(last, 3);
    EXPECT_EQ(total_seen, 3);
}
