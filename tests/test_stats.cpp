#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace vu = volsched::util;

TEST(Accumulator, EmptyIsAllZero) {
    vu::Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
    EXPECT_EQ(acc.variance(), 0.0);
    EXPECT_EQ(acc.sem(), 0.0);
}

TEST(Accumulator, SingleValue) {
    vu::Accumulator acc;
    acc.add(4.5);
    EXPECT_EQ(acc.count(), 1u);
    EXPECT_DOUBLE_EQ(acc.mean(), 4.5);
    EXPECT_EQ(acc.variance(), 0.0);
    EXPECT_DOUBLE_EQ(acc.min(), 4.5);
    EXPECT_DOUBLE_EQ(acc.max(), 4.5);
}

TEST(Accumulator, KnownMeanAndVariance) {
    vu::Accumulator acc;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    // Sample variance of the classic dataset: 32 / 7.
    EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
    EXPECT_NEAR(acc.sum(), 40.0, 1e-9);
}

TEST(Accumulator, MergeMatchesSequential) {
    vu::Rng rng(77);
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i) xs.push_back(rng.uniform(-5, 17));

    vu::Accumulator whole;
    for (double x : xs) whole.add(x);

    vu::Accumulator a, b;
    for (std::size_t i = 0; i < xs.size(); ++i)
        (i < 300 ? a : b).add(xs[i]);
    a.merge(b);

    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Accumulator, MergeWithEmptySides) {
    vu::Accumulator a, b;
    a.add(1.0);
    a.add(3.0);
    vu::Accumulator a2 = a;
    a2.merge(b); // empty rhs
    EXPECT_EQ(a2.count(), 2u);
    EXPECT_DOUBLE_EQ(a2.mean(), 2.0);
    b.merge(a); // empty lhs
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Summary, EmptyInput) {
    const auto s = vu::summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.mean, 0.0);
}

TEST(Summary, OrderStatistics) {
    const std::vector<double> xs = {5, 1, 4, 2, 3};
    const auto s = vu::summarize(xs);
    EXPECT_EQ(s.count, 5u);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
    EXPECT_DOUBLE_EQ(s.median, 3.0);
    EXPECT_DOUBLE_EQ(s.p25, 2.0);
    EXPECT_DOUBLE_EQ(s.p75, 4.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
    const std::vector<double> xs = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(vu::percentile_sorted(xs, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(vu::percentile_sorted(xs, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(vu::percentile_sorted(xs, 1.0), 10.0);
    EXPECT_DOUBLE_EQ(vu::percentile_sorted(xs, 0.25), 2.5);
}

TEST(Percentile, ClampsOutOfRangeQuantiles) {
    const std::vector<double> xs = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(vu::percentile_sorted(xs, -0.5), 1.0);
    EXPECT_DOUBLE_EQ(vu::percentile_sorted(xs, 1.5), 3.0);
}

TEST(Ci95, GrowsWithSpreadShrinksWithCount) {
    vu::Accumulator narrow, wide;
    vu::Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        narrow.add(rng.uniform(0, 1));
        wide.add(rng.uniform(0, 10));
    }
    EXPECT_LT(vu::ci95_halfwidth(narrow), vu::ci95_halfwidth(wide));

    vu::Accumulator few;
    for (int i = 0; i < 10; ++i) few.add(rng.uniform(0, 1));
    EXPECT_GT(vu::ci95_halfwidth(few), vu::ci95_halfwidth(narrow));
}

// Property sweep: merging K shards equals sequential accumulation for a
// range of shard counts.
class MergeProperty : public ::testing::TestWithParam<int> {};

TEST_P(MergeProperty, ShardedMergeEqualsSequential) {
    const int shards = GetParam();
    vu::Rng rng(1000 + shards);
    std::vector<double> xs;
    for (int i = 0; i < 567; ++i) xs.push_back(rng.uniform(-3, 3));

    vu::Accumulator whole;
    for (double x : xs) whole.add(x);

    std::vector<vu::Accumulator> parts(shards);
    for (std::size_t i = 0; i < xs.size(); ++i)
        parts[i % shards].add(xs[i]);
    vu::Accumulator merged;
    for (const auto& p : parts) merged.merge(p);

    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-10);
    EXPECT_NEAR(merged.variance(), whole.variance(), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Shards, MergeProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 32));
