/// Seed-determinism regression suite: a fixed `Scenario::seed` must produce a
/// bit-identical availability realization, and — because the engine draws
/// availability from RNG streams independent of the heuristic's stream — the
/// identical schedule (action trace) and metrics for each of the eight greedy
/// heuristics on repeated runs.  This is the property the paper's
/// per-instance "degradation from best" metric relies on (engine.hpp).

#include <gtest/gtest.h>

#include <memory>

#include <sstream>

#include "api/simulation_builder.hpp"
#include "core/factory.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "sim/action_trace.hpp"
#include "sim/engine.hpp"
#include "sim/metrics_io.hpp"
#include "sim/timeline.hpp"
#include "support/fixtures.hpp"
#include "support/golden.hpp"
#include "trace/semi_markov.hpp"
#include "trace/sojourn.hpp"

namespace vs = volsched::sim;
namespace vc = volsched::core;
namespace ve = volsched::exp;
namespace vt = volsched::test;

namespace {

/// Runs one heuristic on a freshly-built simulation over the realized
/// scenario, recording the exact per-slot actions.
vs::RunMetrics run_traced(const ve::RealizedScenario& rs,
                          const std::string& heuristic, int tasks,
                          std::uint64_t sim_seed, vs::ActionTrace& trace) {
    vs::EngineConfig cfg = vt::audited_config(2, tasks);
    cfg.actions = &trace;
    const auto sim =
        vs::Simulation::from_chains(rs.platform, rs.chains, cfg, sim_seed);
    const auto sched = vc::make_scheduler(heuristic);
    return sim.run(*sched);
}

bool same_trace(const vs::ActionTrace& a, const vs::ActionTrace& b) {
    if (a.procs() != b.procs() || a.slots() != b.slots()) return false;
    for (int q = 0; q < a.procs(); ++q) {
        const auto& ra = a.row(q);
        const auto& rb = b.row(q);
        for (std::size_t t = 0; t < ra.size(); ++t)
            if (ra[t].recv != rb[t].recv || ra[t].compute != rb[t].compute)
                return false;
    }
    return true;
}

/// Run-length-encoded text form of an action trace: one line per processor,
/// `<count>x<recv>/<compute>` tokens.  Verbatim per-slot content, compact
/// enough to commit as a golden.
std::string trace_to_text(const vs::ActionTrace& t) {
    std::ostringstream os;
    for (int q = 0; q < t.procs(); ++q) {
        os << 'q' << q << ':';
        const auto& row = t.row(q);
        std::size_t i = 0;
        while (i < row.size()) {
            std::size_t j = i;
            while (j < row.size() && row[j].recv == row[i].recv &&
                   row[j].compute == row[i].compute)
                ++j;
            os << ' ' << (j - i) << 'x' << row[i].recv << '/'
               << row[i].compute;
            i = j;
        }
        os << '\n';
    }
    return os.str();
}

/// Run-length-encoded text form of a timeline (same information as
/// Timeline::render, minus the ruler): one line per processor.
std::string timeline_to_text(const vs::Timeline& t) {
    std::ostringstream os;
    for (int q = 0; q < t.procs(); ++q) {
        os << 'q' << q << ':';
        long long i = 0;
        while (i < t.slots()) {
            long long j = i;
            while (j < t.slots() && t.at(q, j) == t.at(q, i)) ++j;
            os << ' ' << (j - i) << t.at(q, i);
            i = j;
        }
        os << '\n';
    }
    return os.str();
}

} // namespace

TEST(SeedDeterminism, RealizationIsBitIdentical) {
    const auto sc = vt::small_scenario(2024);
    const auto a = ve::realize(sc);
    const auto b = ve::realize(sc);
    ASSERT_EQ(a.platform.w, b.platform.w);
    EXPECT_EQ(a.platform.ncom, b.platform.ncom);
    EXPECT_EQ(a.platform.t_prog, b.platform.t_prog);
    EXPECT_EQ(a.platform.t_data, b.platform.t_data);
    ASSERT_EQ(a.chains.size(), b.chains.size());
    for (std::size_t q = 0; q < a.chains.size(); ++q)
        EXPECT_TRUE(vt::same_matrix(a.chains[q].matrix(),
                                    b.chains[q].matrix()))
            << "chain " << q << " differs between realizations";
}

TEST(SeedDeterminism, DifferentSeedsDifferentRealizations) {
    const auto a = ve::realize(vt::small_scenario(1));
    const auto b = ve::realize(vt::small_scenario(2));
    bool any_diff = a.platform.w != b.platform.w;
    for (std::size_t q = 0; !any_diff && q < a.chains.size(); ++q)
        any_diff = !vt::same_matrix(a.chains[q].matrix(),
                                    b.chains[q].matrix());
    EXPECT_TRUE(any_diff) << "seeds 1 and 2 produced identical platforms";
}

TEST(SeedDeterminism, EveryGreedyHeuristicReplaysIdentically) {
    const auto sc = vt::small_scenario(77);
    const auto rs = ve::realize(sc);
    for (const auto& name : vc::greedy_heuristic_names()) {
        vs::ActionTrace t1, t2;
        const auto m1 = run_traced(rs, name, sc.tasks, 5, t1);
        const auto m2 = run_traced(rs, name, sc.tasks, 5, t2);
        EXPECT_EQ(m1.makespan, m2.makespan) << name;
        EXPECT_EQ(m1.completed, m2.completed) << name;
        EXPECT_EQ(m1.tasks_completed, m2.tasks_completed) << name;
        EXPECT_EQ(m1.iteration_ends, m2.iteration_ends) << name;
        EXPECT_TRUE(same_trace(t1, t2)) << name << ": schedules differ";
    }
}

TEST(SeedDeterminism, BuilderPathReplaysTheConstructorPathExactly) {
    // The facade builder must be a pure re-packaging: same platform,
    // chains, config and seed => bit-identical schedule and metrics.
    const auto sc = vt::small_scenario(77);
    const auto rs = ve::realize(sc);
    for (const auto& name : vc::greedy_heuristic_names()) {
        vs::ActionTrace t1, t2;
        const auto m1 = run_traced(rs, name, sc.tasks, 5, t1);

        vs::EngineConfig cfg = vt::audited_config(2, sc.tasks);
        const auto sim = vs::Simulation::builder()
                             .platform(rs.platform)
                             .markov(rs.chains)
                             .config(cfg)
                             .actions(&t2)
                             .seed(5)
                             .build();
        const auto sched = vc::make_scheduler(name);
        const auto m2 = sim.run(*sched);

        EXPECT_EQ(m1.makespan, m2.makespan) << name;
        EXPECT_EQ(m1.completed, m2.completed) << name;
        EXPECT_EQ(m1.tasks_completed, m2.tasks_completed) << name;
        EXPECT_EQ(m1.iteration_ends, m2.iteration_ends) << name;
        EXPECT_TRUE(same_trace(t1, t2))
            << name << ": builder-built simulation diverged";
    }
}

TEST(SeedDeterminism, SlotSkippingLeavesActionTracesUnchanged) {
    // The dead-stretch fast-forward may only elide slots in which nothing
    // can happen, so metrics and the exact per-slot action traces must be
    // bit-identical with the optimization on or off.  Volatile chains on a
    // tiny platform make all-workers-DOWN stretches frequent enough that
    // the skip path genuinely fires (asserted via dead_slots_skipped).
    vs::Platform pf;
    pf.w = {2, 3, 4};
    pf.ncom = 2;
    pf.t_prog = 3;
    pf.t_data = 1;
    const std::vector<volsched::markov::MarkovChain> chains(
        3, vt::chain3(0.35, 0.05, 0.10, 0.30, 0.15, 0.05));

    long long skipped_total = 0;
    for (const auto& name : vc::greedy_heuristic_names()) {
        vs::ActionTrace skip_trace, step_trace;

        vs::EngineConfig cfg = vt::audited_config(2, 4);
        cfg.event_driven = false; // this test pins the slot loop's skip path
        cfg.skip_dead_slots = true;
        cfg.actions = &skip_trace;
        const auto skipping =
            vs::Simulation::from_chains(pf, chains, cfg, 17);
        const auto sched1 = vc::make_scheduler(name);
        const auto m1 = skipping.run(*sched1);

        cfg.skip_dead_slots = false;
        cfg.actions = &step_trace;
        const auto stepping =
            vs::Simulation::from_chains(pf, chains, cfg, 17);
        const auto sched2 = vc::make_scheduler(name);
        const auto m2 = stepping.run(*sched2);

        EXPECT_EQ(m2.dead_slots_skipped, 0) << name;
        EXPECT_EQ(m1.makespan, m2.makespan) << name;
        EXPECT_EQ(m1.completed, m2.completed) << name;
        EXPECT_EQ(m1.tasks_completed, m2.tasks_completed) << name;
        EXPECT_EQ(m1.down_events, m2.down_events) << name;
        EXPECT_EQ(m1.transfer_slots, m2.transfer_slots) << name;
        EXPECT_EQ(m1.compute_slots, m2.compute_slots) << name;
        EXPECT_EQ(m1.iteration_ends, m2.iteration_ends) << name;
        ASSERT_EQ(m1.per_proc.size(), m2.per_proc.size()) << name;
        for (std::size_t q = 0; q < m1.per_proc.size(); ++q) {
            EXPECT_EQ(m1.per_proc[q].up_slots, m2.per_proc[q].up_slots)
                << name << " proc " << q;
            EXPECT_EQ(m1.per_proc[q].down_events, m2.per_proc[q].down_events)
                << name << " proc " << q;
        }
        EXPECT_TRUE(same_trace(skip_trace, step_trace))
            << name << ": slot-skipping changed the action trace";
        skipped_total += m1.dead_slots_skipped;
    }
    EXPECT_GT(skipped_total, 0)
        << "scenario never exercised the dead-stretch fast-forward; "
           "volatility too low for the test to be meaningful";
}

TEST(SeedDeterminism, SemiMarkovSlotSkippingLeavesActionTracesUnchanged) {
    // The Markov variant above pins skip on/off equality for memoryless
    // chains; heavy-tailed semi-Markov sojourns are the case the RLE
    // fast-forward was built for (multi-hundred-slot absences), and their
    // non-geometric run lengths exercise next_change_at differently — so
    // the equality is pinned for a SemiMarkovAvailability fleet too.
    using volsched::trace::SemiMarkovAvailability;
    using volsched::trace::SemiMarkovParams;
    using volsched::trace::SojournDist;
    constexpr int kProcs = 3;
    const auto pf =
        vs::Platform::homogeneous(kProcs, /*w_all=*/6, /*ncom=*/2,
                                  /*t_prog=*/4, /*t_data=*/1);
    SemiMarkovParams params;
    params.sojourn = {SojournDist::weibull_with_mean(0.7, 10.0),
                      SojournDist::weibull_with_mean(0.9, 25.0),
                      SojournDist::weibull_with_mean(0.8, 120.0)};
    params.jump[0] = {0.0, 0.4, 0.6};
    params.jump[1] = {0.5, 0.0, 0.5};
    params.jump[2] = {0.9, 0.1, 0.0};
    const std::vector<volsched::markov::MarkovChain> beliefs(
        kProcs, volsched::markov::MarkovChain(
                    SemiMarkovAvailability(params)
                        .equivalent_markov_matrix()));

    long long skipped_total = 0;
    for (const auto& name : vc::greedy_heuristic_names()) {
        vs::ActionTrace traces[2];
        vs::RunMetrics metrics[2];
        for (int skip = 0; skip < 2; ++skip) {
            std::vector<
                std::unique_ptr<volsched::markov::AvailabilityModel>>
                models;
            for (int q = 0; q < kProcs; ++q)
                models.push_back(
                    std::make_unique<SemiMarkovAvailability>(params));
            vs::EngineConfig cfg = vt::audited_config(2, 4);
            auto sim = vs::Simulation::builder()
                           .platform(pf)
                           .models(std::move(models))
                           .beliefs(beliefs)
                           .config(cfg)
                           .actions(&traces[skip])
                           .event_driven(false) // pins the slot loop's skip
                           .skip_dead_slots(skip == 1)
                           .seed(23)
                           .build();
            const auto sched = vc::make_scheduler(name);
            metrics[skip] = sim.run(*sched);
        }
        EXPECT_EQ(metrics[0].dead_slots_skipped, 0) << name;
        EXPECT_EQ(metrics[0].makespan, metrics[1].makespan) << name;
        EXPECT_EQ(metrics[0].completed, metrics[1].completed) << name;
        EXPECT_EQ(metrics[0].tasks_completed, metrics[1].tasks_completed)
            << name;
        EXPECT_EQ(metrics[0].down_events, metrics[1].down_events) << name;
        EXPECT_EQ(metrics[0].transfer_slots, metrics[1].transfer_slots)
            << name;
        EXPECT_EQ(metrics[0].compute_slots, metrics[1].compute_slots)
            << name;
        EXPECT_EQ(metrics[0].iteration_ends, metrics[1].iteration_ends)
            << name;
        ASSERT_EQ(metrics[0].per_proc.size(), metrics[1].per_proc.size())
            << name;
        for (std::size_t q = 0; q < metrics[0].per_proc.size(); ++q) {
            EXPECT_EQ(metrics[0].per_proc[q].up_slots,
                      metrics[1].per_proc[q].up_slots)
                << name << " proc " << q;
            EXPECT_EQ(metrics[0].per_proc[q].down_events,
                      metrics[1].per_proc[q].down_events)
                << name << " proc " << q;
        }
        EXPECT_TRUE(same_trace(traces[0], traces[1]))
            << name << ": semi-Markov slot-skipping changed the action trace";
        skipped_total += metrics[1].dead_slots_skipped;
    }
    EXPECT_GT(skipped_total, 0)
        << "fleet never exercised the dead-stretch fast-forward; absences "
           "too short for the test to be meaningful";
}

TEST(SeedDeterminism, HeuristicsShareTheAvailabilityRealization) {
    // run_instance gives every heuristic the same availability draw; the
    // per-processor UP-slot accounting must therefore agree across
    // heuristics that run for the same number of slots.
    const auto sc = vt::small_scenario(31);
    const auto rs = ve::realize(sc);
    ve::RunConfig cfg;
    cfg.iterations = 2;
    const auto out1 = ve::run_instance(rs, sc.tasks,
                                       vc::greedy_heuristic_names(), cfg, 9);
    const auto out2 = ve::run_instance(rs, sc.tasks,
                                       vc::greedy_heuristic_names(), cfg, 9);
    ASSERT_EQ(out1.makespans.size(), vc::greedy_heuristic_names().size());
    EXPECT_EQ(out1.makespans, out2.makespans)
        << "repeated run_instance with one trial seed changed makespans";
}

namespace {

/// Shared body of the SoA-vs-seed golden pins below: runs every greedy
/// heuristic over the same realized scenario and serializes the full
/// RunMetrics JSON + exact action trace + timeline into one text blob that
/// is compared against a golden generated from the pre-SoA engine
/// (regenerate only with VOLSCHED_UPDATE_GOLDEN=1 and a known-good tree).
std::string greedy_run_blob(bool event_core) {
    const auto sc = vt::small_scenario(77);
    const auto rs = ve::realize(sc);
    std::string blob;
    for (const auto& name : vc::greedy_heuristic_names()) {
        vs::ActionTrace trace;
        vs::Timeline timeline;
        vs::EngineConfig cfg = vt::audited_config(2, sc.tasks);
        cfg.event_driven = event_core;
        cfg.actions = &trace;
        cfg.timeline = &timeline;
        const auto sim =
            vs::Simulation::from_chains(rs.platform, rs.chains, cfg, 5);
        const auto sched = vc::make_scheduler(name);
        const auto m = sim.run(*sched);
        blob += "== " + name + " ==\n";
        blob += vs::metrics_to_json(m);
        blob += "\n-- actions --\n";
        blob += trace_to_text(trace);
        blob += "-- timeline --\n";
        blob += timeline_to_text(timeline);
    }
    return blob;
}

} // namespace

// The SoA worker-state layout and the batched/memoized scoring path must
// not move a single bit of output.  These pins compare against goldens
// captured *before* that refactor, for both stepping cores — a change in
// scheduler decisions, tie-breaks, RNG consumption order, or metrics
// accounting shows up as a golden diff, not just as self-consistency.
TEST(SeedDeterminism, GreedyRunsMatchPreSoAGoldenEventCore) {
    EXPECT_TRUE(vt::matches_golden(greedy_run_blob(/*event_core=*/true),
                                   "seed_determinism_greedy_event.txt"));
}

TEST(SeedDeterminism, GreedyRunsMatchPreSoAGoldenSlotCore) {
    EXPECT_TRUE(vt::matches_golden(greedy_run_blob(/*event_core=*/false),
                                   "seed_determinism_greedy_slot.txt"));
}
