/// Event-driven engine-core equality suite: the event core
/// (EngineConfig::event_driven, the default) must produce bit-identical
/// RunMetrics — every counter, not just the action traces — plus identical
/// timelines and action traces versus the reference slot loop, across
/// Markov, semi-Markov, and checkpointed regimes, with audit mode
/// re-verifying every elided range.  Also pins the slot-0 dead-stretch fix:
/// a realization that starts with every worker absent is skipped in full,
/// including slot 0, by both cores.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/simulation_builder.hpp"
#include "ckpt/registry.hpp"
#include "core/factory.hpp"
#include "sim/action_trace.hpp"
#include "sim/engine.hpp"
#include "sim/timeline.hpp"
#include "support/fixtures.hpp"
#include "trace/replay.hpp"
#include "trace/semi_markov.hpp"
#include "trace/sojourn.hpp"

namespace vc = volsched::core;
namespace vk = volsched::ckpt;
namespace vm = volsched::markov;
namespace vs = volsched::sim;
namespace vt = volsched::test;

namespace {

/// One run's full observable output.
struct Outcome {
    vs::RunMetrics m;
    vs::Timeline timeline;
    vs::ActionTrace actions;
};

/// Every RunMetrics field must agree except the elision counters noted:
/// slots_elided differs by construction (zero under the slot loop), and
/// dead_slots_skipped is asserted equal separately because both cores
/// account fully-absent stretches the same way.
void expect_same_metrics(const vs::RunMetrics& ev, const vs::RunMetrics& sl,
                         const std::string& label) {
    EXPECT_EQ(ev.makespan, sl.makespan) << label;
    EXPECT_EQ(ev.completed, sl.completed) << label;
    EXPECT_EQ(ev.iterations_completed, sl.iterations_completed) << label;
    EXPECT_EQ(ev.tasks_completed, sl.tasks_completed) << label;
    EXPECT_EQ(ev.replicas_committed, sl.replicas_committed) << label;
    EXPECT_EQ(ev.replica_wins, sl.replica_wins) << label;
    EXPECT_EQ(ev.transfer_slots, sl.transfer_slots) << label;
    EXPECT_EQ(ev.wasted_transfer_slots, sl.wasted_transfer_slots) << label;
    EXPECT_EQ(ev.compute_slots, sl.compute_slots) << label;
    EXPECT_EQ(ev.wasted_compute_slots, sl.wasted_compute_slots) << label;
    EXPECT_EQ(ev.checkpoint_slots, sl.checkpoint_slots) << label;
    EXPECT_EQ(ev.checkpoints_committed, sl.checkpoints_committed) << label;
    EXPECT_EQ(ev.recoveries, sl.recoveries) << label;
    EXPECT_EQ(ev.saved_compute_slots, sl.saved_compute_slots) << label;
    EXPECT_EQ(ev.down_events, sl.down_events) << label;
    EXPECT_EQ(ev.dead_slots_skipped, sl.dead_slots_skipped) << label;
    EXPECT_EQ(ev.proactive_cancellations, sl.proactive_cancellations)
        << label;
    EXPECT_EQ(ev.iteration_ends, sl.iteration_ends) << label;
    ASSERT_EQ(ev.per_proc.size(), sl.per_proc.size()) << label;
    for (std::size_t q = 0; q < ev.per_proc.size(); ++q) {
        const auto& a = ev.per_proc[q];
        const auto& b = sl.per_proc[q];
        EXPECT_EQ(a.tasks_completed, b.tasks_completed) << label << " q" << q;
        EXPECT_EQ(a.compute_slots, b.compute_slots) << label << " q" << q;
        EXPECT_EQ(a.transfer_slots, b.transfer_slots) << label << " q" << q;
        EXPECT_EQ(a.up_slots, b.up_slots) << label << " q" << q;
        EXPECT_EQ(a.down_events, b.down_events) << label << " q" << q;
    }
}

void expect_same_timeline(const vs::Timeline& a, const vs::Timeline& b,
                          const std::string& label) {
    ASSERT_EQ(a.procs(), b.procs()) << label;
    ASSERT_EQ(a.slots(), b.slots()) << label;
    for (int q = 0; q < a.procs(); ++q)
        for (long long s = 0; s < a.slots(); ++s)
            if (a.at(q, s) != b.at(q, s))
                FAIL() << label << ": timeline diverges at proc " << q
                       << " slot " << s << " ('" << a.at(q, s) << "' vs '"
                       << b.at(q, s) << "')";
}

void expect_same_actions(const vs::ActionTrace& a, const vs::ActionTrace& b,
                         const std::string& label) {
    ASSERT_EQ(a.procs(), b.procs()) << label;
    ASSERT_EQ(a.slots(), b.slots()) << label;
    for (int q = 0; q < a.procs(); ++q) {
        const auto& ra = a.row(q);
        const auto& rb = b.row(q);
        for (std::size_t t = 0; t < ra.size(); ++t)
            if (ra[t].recv != rb[t].recv || ra[t].compute != rb[t].compute)
                FAIL() << label << ": action trace diverges at proc " << q
                       << " slot " << t;
    }
}

/// Runs `heuristic` over `chains` under both stepping cores (audit on) and
/// checks full-output equality; returns the event core's elided-slot count.
long long run_both_and_compare(const vs::Platform& pf,
                               const std::vector<vm::MarkovChain>& chains,
                               vs::EngineConfig cfg, std::uint64_t seed,
                               const std::string& heuristic,
                               const std::string& label) {
    Outcome out[2];
    for (int event = 0; event < 2; ++event) {
        vs::EngineConfig c = cfg;
        c.event_driven = (event == 1);
        c.timeline = &out[event].timeline;
        c.actions = &out[event].actions;
        const auto sim = vs::Simulation::from_chains(pf, chains, c, seed);
        const auto sched = vc::make_scheduler(heuristic);
        out[event].m = sim.run(*sched);
    }
    EXPECT_EQ(out[0].m.slots_elided, 0)
        << label << ": slot loop must not elide";
    expect_same_metrics(out[1].m, out[0].m, label);
    expect_same_timeline(out[1].timeline, out[0].timeline, label);
    expect_same_actions(out[1].actions, out[0].actions, label);
    EXPECT_GE(out[1].m.slots_elided, out[1].m.dead_slots_skipped) << label;
    return out[1].m.slots_elided;
}

} // namespace

TEST(EventEngine, MarkovRegimeMatchesSlotLoopExactly) {
    vs::Platform pf;
    pf.w = {2, 3, 4};
    pf.ncom = 2;
    pf.t_prog = 3;
    pf.t_data = 1;
    const std::vector<vm::MarkovChain> chains(
        3, vt::chain3(0.35, 0.05, 0.10, 0.30, 0.15, 0.05));
    long long elided_total = 0;
    for (const auto& name : vc::greedy_heuristic_names())
        elided_total += run_both_and_compare(pf, chains,
                                             vt::audited_config(2, 4), 17,
                                             name, "markov/" + name);
    EXPECT_GT(elided_total, 0)
        << "event core never elided a slot; the regime is too dense for "
           "the test to be meaningful";
}

TEST(EventEngine, SemiMarkovRegimeMatchesSlotLoopExactly) {
    // Heavy-tailed sojourns: multi-hundred-slot absences plus long UP
    // bursts, the regime the closed-form advancement targets.
    using volsched::trace::SemiMarkovAvailability;
    using volsched::trace::SemiMarkovParams;
    using volsched::trace::SojournDist;
    constexpr int kProcs = 3;
    const auto pf =
        vs::Platform::homogeneous(kProcs, /*w_all=*/6, /*ncom=*/2,
                                  /*t_prog=*/4, /*t_data=*/1);
    SemiMarkovParams params;
    params.sojourn = {SojournDist::weibull_with_mean(0.7, 10.0),
                      SojournDist::weibull_with_mean(0.9, 25.0),
                      SojournDist::weibull_with_mean(0.8, 120.0)};
    params.jump[0] = {0.0, 0.4, 0.6};
    params.jump[1] = {0.5, 0.0, 0.5};
    params.jump[2] = {0.9, 0.1, 0.0};
    const std::vector<vm::MarkovChain> beliefs(
        kProcs, vm::MarkovChain(
                    SemiMarkovAvailability(params).equivalent_markov_matrix()));

    long long elided_total = 0;
    for (const auto& name : vc::greedy_heuristic_names()) {
        Outcome out[2];
        for (int event = 0; event < 2; ++event) {
            std::vector<std::unique_ptr<vm::AvailabilityModel>> models;
            for (int q = 0; q < kProcs; ++q)
                models.push_back(
                    std::make_unique<SemiMarkovAvailability>(params));
            vs::EngineConfig cfg = vt::audited_config(2, 4);
            auto sim = vs::Simulation::builder()
                           .platform(pf)
                           .models(std::move(models))
                           .beliefs(beliefs)
                           .config(cfg)
                           .timeline(&out[event].timeline)
                           .actions(&out[event].actions)
                           .event_driven(event == 1)
                           .seed(23)
                           .build();
            const auto sched = vc::make_scheduler(name);
            out[event].m = sim.run(*sched);
        }
        const std::string label = "semi-markov/" + name;
        EXPECT_EQ(out[0].m.slots_elided, 0) << label;
        expect_same_metrics(out[1].m, out[0].m, label);
        expect_same_timeline(out[1].timeline, out[0].timeline, label);
        expect_same_actions(out[1].actions, out[0].actions, label);
        elided_total += out[1].m.slots_elided;
    }
    EXPECT_GT(elided_total, 0)
        << "event core never elided a slot on the semi-Markov fleet";
}

TEST(EventEngine, CheckpointedRegimesMatchSlotLoopExactly) {
    // Checkpoint policies add upload events and per-slot policy decisions;
    // the quiet-horizon hook must never let the event core skip a slot in
    // which a policy would have fired (audit mode replays should_checkpoint
    // over every elided range).
    vs::Platform pf;
    pf.w = {4, 6, 8};
    pf.ncom = 2;
    pf.t_prog = 3;
    pf.t_data = 1;
    const std::vector<vm::MarkovChain> chains(
        3, vt::chain3(0.55, 0.05, 0.20, 0.30, 0.25, 0.05));
    auto& reg = vk::CheckpointRegistry::instance();
    long long elided_total = 0;
    long long committed_total = 0;
    for (const std::string spec : {"periodic2", "daly", "risk25"}) {
        const auto policy = reg.make(spec);
        for (const std::string name : {"mct", "emct"}) {
            vs::EngineConfig cfg = vt::audited_config(2, 4);
            cfg.checkpoint = policy.get();
            cfg.checkpoint_cost = 2;
            const long long elided = run_both_and_compare(
                pf, chains, cfg, 29, name, spec + "/" + name);
            elided_total += elided;
            vs::EngineConfig probe = vt::audited_config(2, 4);
            probe.checkpoint = policy.get();
            probe.checkpoint_cost = 2;
            const auto sim =
                vs::Simulation::from_chains(pf, chains, probe, 29);
            const auto sched = vc::make_scheduler(name);
            committed_total += sim.run(*sched).checkpoints_committed;
        }
    }
    EXPECT_GT(elided_total, 0)
        << "event core never elided a slot in the checkpointed regimes";
    EXPECT_GT(committed_total, 0)
        << "no checkpoint ever committed; the regime does not exercise the "
           "policies";
}

TEST(EventEngine, InitialDeadStretchIsSkippedInFullByBothCores) {
    // Satellite bugfix pin: a realization that starts all-DOWN used to walk
    // slot 0 (the `t > 0` guard in the skip branch), skipping only 299 of
    // 300 dead slots.  Both cores must now account the full stretch while
    // staying bit-identical to an unskipped run.
    constexpr int kDead = 300;
    volsched::trace::RecordedTrace tr;
    for (int i = 0; i < kDead; ++i)
        tr.states.push_back(vm::ProcState::Down);
    for (int i = 0; i < 5000; ++i)
        tr.states.push_back(vm::ProcState::Up);
    const auto pf = vs::Platform::homogeneous(2, /*w_all=*/4, /*ncom=*/2,
                                              /*t_prog=*/3, /*t_data=*/1);

    // Three arms: event core, slot loop + skip, slot loop unskipped.
    Outcome out[3];
    for (int arm = 0; arm < 3; ++arm) {
        auto sim = vs::Simulation::builder()
                       .platform(pf)
                       .replay({tr, tr})
                       .iterations(2)
                       .tasks_per_iteration(3)
                       .audit(true)
                       .timeline(&out[arm].timeline)
                       .actions(&out[arm].actions)
                       .event_driven(arm == 0)
                       .skip_dead_slots(arm == 1)
                       .seed(11)
                       .build();
        const auto sched = vc::make_scheduler("mct");
        out[arm].m = sim.run(*sched);
    }
    // The skip-count assertion: the WHOLE stretch, slot 0 included.
    EXPECT_EQ(out[0].m.dead_slots_skipped, kDead) << "event core";
    EXPECT_EQ(out[1].m.dead_slots_skipped, kDead) << "slot loop + skip";
    EXPECT_EQ(out[2].m.dead_slots_skipped, 0) << "unskipped reference";
    EXPECT_GE(out[0].m.slots_elided, kDead);
    EXPECT_EQ(out[0].m.down_events, 2);
    for (int arm = 0; arm < 2; ++arm) {
        const std::string label =
            arm == 0 ? "event-vs-reference" : "skip-vs-reference";
        vs::RunMetrics ref = out[2].m;
        ref.dead_slots_skipped = out[arm].m.dead_slots_skipped; // compared
        expect_same_metrics(out[arm].m, ref, label);            // above
        expect_same_timeline(out[arm].timeline, out[2].timeline, label);
        expect_same_actions(out[arm].actions, out[2].actions, label);
    }
}
