/// Deterministic engine-timing tests: every makespan below is hand-derived
/// from the per-slot semantics in DESIGN.md §4 (program, then per-task data
/// with one-task look-ahead, compute overlap, end-of-slot promotions).

#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "trace/replay.hpp"

namespace vs = volsched::sim;
namespace vm = volsched::markov;
namespace vt = volsched::trace;

namespace {

/// Builds a simulation whose availability replays the given rows (one
/// string of u/r/d per processor; HoldLast keeps the final state forever).
vs::Simulation make_replay_sim(vs::Platform pf,
                               const std::vector<std::string>& rows,
                               vs::EngineConfig cfg,
                               std::uint64_t seed = 1) {
    std::vector<std::unique_ptr<vm::AvailabilityModel>> models;
    for (const auto& row : rows) {
        vt::RecordedTrace tr;
        for (char c : row) tr.states.push_back(vm::state_from_code(c));
        models.push_back(std::make_unique<vt::ReplayAvailability>(
            tr, vt::ReplayAvailability::EndPolicy::HoldLast));
    }
    return vs::Simulation(std::move(pf), std::move(models), {}, cfg, seed);
}

vs::EngineConfig config(int iterations, int tasks, int replica_cap = 0) {
    vs::EngineConfig cfg;
    cfg.iterations = iterations;
    cfg.tasks_per_iteration = tasks;
    cfg.replica_cap = replica_cap;
    cfg.max_slots = 100000;
    cfg.audit = true;
    return cfg;
}

long long run_makespan(const vs::Simulation& sim, const std::string& name) {
    const auto sched = volsched::core::make_scheduler(name);
    const auto metrics = sim.run(*sched);
    EXPECT_TRUE(metrics.completed);
    return metrics.makespan;
}

} // namespace

TEST(EngineTiming, SingleProcComputeBoundPipeline) {
    // p=1, w=3, Tprog=2, Tdata=2, m=2: prog slots 0-1, data0 2-3,
    // compute0 4-6 (data1 overlaps 4-5), compute1 7-9 -> makespan 10.
    auto sim = make_replay_sim(vs::Platform::homogeneous(1, 3, 1, 2, 2), {"u"},
                               config(1, 2));
    EXPECT_EQ(run_makespan(sim, "mct"), 10);
}

TEST(EngineTiming, SingleProcDataBoundPipeline) {
    // p=1, w=1, Tprog=1, Tdata=3, m=3: makespan = Tprog + m*Tdata + w = 11.
    auto sim = make_replay_sim(vs::Platform::homogeneous(1, 1, 1, 1, 3), {"u"},
                               config(1, 3));
    EXPECT_EQ(run_makespan(sim, "mct"), 11);
}

TEST(EngineTiming, SecondIterationSkipsProgram) {
    // Same platform as the compute-bound case; each further iteration costs
    // Tdata + m*w = 2 + 6 = 8 slots (program already resident).
    auto pf = vs::Platform::homogeneous(1, 3, 1, 2, 2);
    auto sim1 = make_replay_sim(pf, {"u"}, config(1, 2));
    auto sim2 = make_replay_sim(pf, {"u"}, config(2, 2));
    auto sim3 = make_replay_sim(pf, {"u"}, config(3, 2));
    EXPECT_EQ(run_makespan(sim1, "mct"), 10);
    EXPECT_EQ(run_makespan(sim2, "mct"), 18);
    EXPECT_EQ(run_makespan(sim3, "mct"), 26);
}

TEST(EngineTiming, IterationEndsAreRecorded) {
    // Same timing as SecondIterationSkipsProgram: boundaries at 10, 18, 26.
    auto sim = make_replay_sim(vs::Platform::homogeneous(1, 3, 1, 2, 2), {"u"},
                               config(3, 2));
    const auto sched = volsched::core::make_scheduler("mct");
    const auto metrics = sim.run(*sched);
    ASSERT_TRUE(metrics.completed);
    ASSERT_EQ(metrics.iteration_ends.size(), 3u);
    EXPECT_EQ(metrics.iteration_ends[0], 10);
    EXPECT_EQ(metrics.iteration_ends[1], 18);
    EXPECT_EQ(metrics.iteration_ends[2], 26);
    EXPECT_EQ(metrics.iteration_ends.back(), metrics.makespan);
}

TEST(EngineTiming, FirstIterationCarriesProgramCost) {
    // Iteration durations: the first pays Tprog, later ones are identical.
    auto sim = make_replay_sim(vs::Platform::homogeneous(1, 3, 1, 2, 2), {"u"},
                               config(4, 2));
    const auto sched = volsched::core::make_scheduler("mct");
    const auto metrics = sim.run(*sched);
    ASSERT_TRUE(metrics.completed);
    ASSERT_EQ(metrics.iteration_ends.size(), 4u);
    const long long first = metrics.iteration_ends[0];
    for (std::size_t k = 1; k < 4; ++k) {
        const long long duration =
            metrics.iteration_ends[k] - metrics.iteration_ends[k - 1];
        EXPECT_EQ(duration, 8);
        EXPECT_LT(duration, first);
    }
}

TEST(EngineTiming, TwoProcsParallelWhenBandwidthAllows) {
    // p=2, w=2, Tprog=1, Tdata=1, ncom=2, m=2: both procs receive the
    // program in slot 0, data in slot 1, compute slots 2-3 -> makespan 4.
    auto sim = make_replay_sim(vs::Platform::homogeneous(2, 2, 2, 1, 1),
                               {"u", "u"}, config(1, 2));
    EXPECT_EQ(run_makespan(sim, "mct"), 4);
}

TEST(EngineTiming, NcomOneSerializesEnrolment) {
    // Same but ncom=1: P1's program waits for the channel -> makespan 6.
    auto sim = make_replay_sim(vs::Platform::homogeneous(2, 2, 1, 1, 1),
                               {"u", "u"}, config(1, 2));
    EXPECT_EQ(run_makespan(sim, "mct"), 6);
}

TEST(EngineTiming, ReclaimedSuspendsTransferAndCompute) {
    // p=1, w=1, Tprog=1, Tdata=1, m=1.
    // All-up: prog 0, data 1, compute 2 -> makespan 3.
    // "ur" at slots 1: data transfer pushed to slot 2 -> makespan 4.
    auto pf = vs::Platform::homogeneous(1, 1, 1, 1, 1);
    auto fast = make_replay_sim(pf, {"u"}, config(1, 1));
    EXPECT_EQ(run_makespan(fast, "mct"), 3);
    auto slow = make_replay_sim(pf, {"uruu"}, config(1, 1));
    EXPECT_EQ(run_makespan(slow, "mct"), 4);
}

TEST(EngineTiming, ReclaimedDuringComputeStallsIt) {
    // p=1, w=2, Tprog=1, Tdata=1, m=1, trace u u u r r u ...:
    // prog 0, data 1, compute starts 2, stalls 3-4, finishes 5 -> 6.
    auto sim = make_replay_sim(vs::Platform::homogeneous(1, 2, 1, 1, 1),
                               {"uuurruu"}, config(1, 1));
    EXPECT_EQ(run_makespan(sim, "mct"), 6);
}

TEST(EngineTiming, DownLosesProgramAndStagedData) {
    // p=1, w=1, Tprog=2, Tdata=1, m=1, trace u u d u...:
    // prog 0-1 completes, DOWN at slot 2 wipes it and returns the task to
    // the pool; re-enrol: prog 3-4, data 5, compute 6 -> makespan 7.
    auto sim = make_replay_sim(vs::Platform::homogeneous(1, 1, 1, 2, 1),
                               {"uuduuuuuu"}, config(1, 1));
    const auto sched = volsched::core::make_scheduler("mct");
    const auto metrics = sim.run(*sched);
    EXPECT_TRUE(metrics.completed);
    EXPECT_EQ(metrics.makespan, 7);
    EXPECT_EQ(metrics.down_events, 1);
    EXPECT_EQ(metrics.tasks_completed, 1);
    // The two lost program slots count as wasted transfer.
    EXPECT_EQ(metrics.wasted_transfer_slots, 2);
}

TEST(EngineTiming, DownDuringComputeRestartsTaskFromScratch) {
    // p=1, w=2, Tprog=1, Tdata=1, m=1, trace u u u d u...:
    // prog 0, data 1, compute 2 (1 of 2), DOWN 3; re-enrol: prog 4, data 5,
    // compute 6-7 -> makespan 8; one compute slot wasted.
    auto sim = make_replay_sim(vs::Platform::homogeneous(1, 2, 1, 1, 1),
                               {"uuuduuuuuu"}, config(1, 1));
    const auto sched = volsched::core::make_scheduler("mct");
    const auto metrics = sim.run(*sched);
    EXPECT_TRUE(metrics.completed);
    EXPECT_EQ(metrics.makespan, 8);
    EXPECT_EQ(metrics.wasted_compute_slots, 1);
}

TEST(EngineTiming, ReplicaOnFastLateProcessorWins) {
    // P0 slow (w=10) and UP from slot 0; P1 fast (w=1) but UP only from
    // slot 1.  m=1, Tprog=Tdata=1, cap=1.  The original lands on P0 (prog
    // slot 0, data slot 1, compute from slot 2).  P1 becomes UP at slot 1,
    // but the channel is busy, so its replica enrols at slot 2 (prog),
    // data slot 3, compute slot 4 -> replica completes first, makespan 5.
    vs::Platform pf;
    pf.w = {10, 1};
    pf.ncom = 1;
    pf.t_prog = 1;
    pf.t_data = 1;
    auto sim = make_replay_sim(pf, {"u", "ru"}, config(1, 1, /*cap=*/1));
    const auto sched = volsched::core::make_scheduler("mct");
    const auto metrics = sim.run(*sched);
    EXPECT_TRUE(metrics.completed);
    EXPECT_EQ(metrics.makespan, 5);
    EXPECT_EQ(metrics.replicas_committed, 1);
    EXPECT_EQ(metrics.replica_wins, 1);
    EXPECT_GT(metrics.wasted_compute_slots, 0); // original aborted on P0
}

TEST(EngineTiming, ReplicationDisabledUsesOriginalOnly) {
    vs::Platform pf;
    pf.w = {10, 1};
    pf.ncom = 1;
    pf.t_prog = 1;
    pf.t_data = 1;
    auto sim = make_replay_sim(pf, {"u", "ru"}, config(1, 1, /*cap=*/0));
    const auto sched = volsched::core::make_scheduler("mct");
    const auto metrics = sim.run(*sched);
    EXPECT_TRUE(metrics.completed);
    EXPECT_EQ(metrics.makespan, 12); // prog 0, data 1, compute 2-11
    EXPECT_EQ(metrics.replicas_committed, 0);
    EXPECT_EQ(metrics.replica_wins, 0);
}

TEST(EngineTiming, ReplicaCapBoundsCopies) {
    // m=1, p=5, all UP: at most 1 + cap live copies regardless of the
    // number of idle processors.
    for (int cap : {0, 1, 2}) {
        auto sim = make_replay_sim(
            vs::Platform::homogeneous(5, 50, 5, 1, 1),
            {"u", "u", "u", "u", "u"}, config(1, 1, cap));
        const auto sched = volsched::core::make_scheduler("mct");
        const auto metrics = sim.run(*sched);
        EXPECT_TRUE(metrics.completed);
        EXPECT_EQ(metrics.replicas_committed, cap);
    }
}

TEST(EngineTiming, HorizonCapReportsIncomplete) {
    vs::EngineConfig cfg = config(1, 1);
    cfg.max_slots = 50;
    cfg.audit = false;
    auto sim = make_replay_sim(vs::Platform::homogeneous(1, 1, 1, 1, 1), {"d"},
                               cfg);
    const auto sched = volsched::core::make_scheduler("mct");
    const auto metrics = sim.run(*sched);
    EXPECT_FALSE(metrics.completed);
    EXPECT_EQ(metrics.makespan, 50);
    EXPECT_EQ(metrics.iterations_completed, 0);
}

TEST(EngineTiming, StickyPlanMatchesDynamicOnQuietPlatform) {
    // With no state changes there is nothing for dynamic re-planning to
    // exploit: both policies must produce the same makespan.
    auto pf = vs::Platform::homogeneous(3, 2, 2, 1, 1);
    vs::EngineConfig dynamic = config(2, 5);
    vs::EngineConfig sticky = config(2, 5);
    sticky.plan_class = vs::SchedulerClass::Passive;
    auto sim_d = make_replay_sim(pf, {"u", "u", "u"}, dynamic);
    auto sim_s = make_replay_sim(pf, {"u", "u", "u"}, sticky);
    EXPECT_EQ(run_makespan(sim_d, "mct"), run_makespan(sim_s, "mct"));
}

TEST(EngineTiming, PassiveWaitsForPlannedProcessorDynamicSwitches) {
    // p=2, m=2, ncom=1, Tprog=Tdata=1, w=5.  At slot 0 MCT plans task1 on
    // P1 (empty pipeline beats queueing on P0), but the channel is busy, so
    // the plan cannot commit.  P1 then disappears into RECLAIMED until
    // slot 10.
    //  - dynamic: re-plans at slot 2, runs both tasks on P0 -> makespan 12.
    //  - passive: the plan sticks to P1; enrolment waits for its return ->
    //    prog 10, data 11, compute 12-16 -> makespan 17.
    vs::Platform pf = vs::Platform::homogeneous(2, 5, 1, 1, 1);
    const std::vector<std::string> rows = {"u", "urrrrrrrrruuuuuuuuuu"};
    vs::EngineConfig dynamic_cfg = config(1, 2);
    vs::EngineConfig passive_cfg = config(1, 2);
    passive_cfg.plan_class = vs::SchedulerClass::Passive;
    auto dyn = make_replay_sim(pf, rows, dynamic_cfg);
    auto pas = make_replay_sim(pf, rows, passive_cfg);
    EXPECT_EQ(run_makespan(dyn, "mct"), 12);
    EXPECT_EQ(run_makespan(pas, "mct"), 17);
}

TEST(EngineConfigChecks, RejectsInvalidConstruction) {
    auto pf = vs::Platform::homogeneous(2, 1, 1, 1, 1);
    std::vector<std::unique_ptr<vm::AvailabilityModel>> one_model;
    {
        vt::RecordedTrace tr;
        tr.states = {vm::ProcState::Up};
        one_model.push_back(std::make_unique<vt::ReplayAvailability>(tr));
    }
    vs::EngineConfig cfg = config(1, 1);
    // Model count mismatch.
    EXPECT_THROW(vs::Simulation(pf, std::move(one_model), {}, cfg, 1),
                 std::invalid_argument);
    // Bad platform.
    vs::Platform bad;
    bad.ncom = 1;
    EXPECT_THROW(vs::Simulation(bad, {}, {}, cfg, 1), std::invalid_argument);
}

TEST(EngineConfigChecks, RejectsBadIterationCounts) {
    auto pf = vs::Platform::homogeneous(1, 1, 1, 1, 1);
    std::vector<std::unique_ptr<vm::AvailabilityModel>> models;
    vt::RecordedTrace tr;
    tr.states = {vm::ProcState::Up};
    models.push_back(std::make_unique<vt::ReplayAvailability>(tr));
    vs::EngineConfig cfg = config(0, 1);
    EXPECT_THROW(vs::Simulation(pf, std::move(models), {}, cfg, 1),
                 std::invalid_argument);
}
