#include "sim/platform.hpp"

#include <gtest/gtest.h>

namespace vs = volsched::sim;

TEST(Platform, HomogeneousFactory) {
    const auto pf = vs::Platform::homogeneous(4, 3, 2, 5, 1);
    EXPECT_EQ(pf.size(), 4);
    for (int w : pf.w) EXPECT_EQ(w, 3);
    EXPECT_EQ(pf.ncom, 2);
    EXPECT_EQ(pf.t_prog, 5);
    EXPECT_EQ(pf.t_data, 1);
    EXPECT_TRUE(pf.validate().empty());
}

TEST(Platform, ValidateCatchesEmpty) {
    vs::Platform pf;
    EXPECT_FALSE(pf.validate().empty());
}

TEST(Platform, ValidateCatchesNonPositiveSpeed) {
    auto pf = vs::Platform::homogeneous(2, 1, 1, 1, 1);
    pf.w[1] = 0;
    EXPECT_FALSE(pf.validate().empty());
    pf.w[1] = -3;
    EXPECT_FALSE(pf.validate().empty());
}

TEST(Platform, ValidateCatchesBadNcom) {
    auto pf = vs::Platform::homogeneous(2, 1, 0, 1, 1);
    EXPECT_FALSE(pf.validate().empty());
}

TEST(Platform, ValidateCatchesNegativeTransferTimes) {
    auto pf = vs::Platform::homogeneous(2, 1, 1, -1, 1);
    EXPECT_FALSE(pf.validate().empty());
    pf = vs::Platform::homogeneous(2, 1, 1, 1, -1);
    EXPECT_FALSE(pf.validate().empty());
}

TEST(Platform, ZeroTransferTimesAreAllowed) {
    // Tdata = 0 is used by the 3SAT reduction (Section 4).
    const auto pf = vs::Platform::homogeneous(2, 1, 1, 0, 0);
    EXPECT_TRUE(pf.validate().empty());
}
