#include <gtest/gtest.h>

#include "offline/instance.hpp"
#include "offline/schedule.hpp"

namespace vo = volsched::offline;
using volsched::markov::ProcState;

namespace {

/// p=1, w=2, Tprog=1, Tdata=1, m=1, horizon 6, always UP.
vo::OfflineInstance tiny_instance() {
    vo::OfflineInstance inst;
    inst.platform.w = {2};
    inst.platform.ncom = 1;
    inst.platform.t_prog = 1;
    inst.platform.t_data = 1;
    inst.num_tasks = 1;
    inst.horizon = 6;
    inst.states = vo::states_from_strings({"uuuuuu"});
    return inst;
}

/// The canonical valid schedule for tiny_instance: prog 0, data 1,
/// compute 2-3.
vo::Schedule tiny_schedule() {
    auto inst = tiny_instance();
    auto sched = vo::Schedule::idle(inst);
    sched.actions[0][0].recv = vo::kRecvProg;
    sched.actions[0][1].recv = 0;
    sched.actions[0][2].compute = 0;
    sched.actions[0][3].compute = 0;
    return sched;
}

} // namespace

TEST(Validator, AcceptsCanonicalSchedule) {
    const auto inst = tiny_instance();
    const auto res = vo::validate(inst, tiny_schedule());
    EXPECT_TRUE(res.valid) << res.error;
    EXPECT_TRUE(res.all_done);
    EXPECT_EQ(res.makespan, 4);
}

TEST(Validator, IdleScheduleIsValidButIncomplete) {
    const auto inst = tiny_instance();
    const auto res = vo::validate(inst, vo::Schedule::idle(inst));
    EXPECT_TRUE(res.valid);
    EXPECT_FALSE(res.all_done);
}

TEST(Validator, RejectsActionOnReclaimedProcessor) {
    auto inst = tiny_instance();
    inst.states = vo::states_from_strings({"ruuuuu"});
    const auto res = vo::validate(inst, tiny_schedule());
    EXPECT_FALSE(res.valid);
    EXPECT_NE(res.error.find("non-UP"), std::string::npos);
}

TEST(Validator, RejectsComputeWithoutProgram) {
    const auto inst = tiny_instance();
    auto sched = vo::Schedule::idle(inst);
    sched.actions[0][0].recv = 0; // data before any program slot
    sched.actions[0][1].compute = 0;
    const auto res = vo::validate(inst, sched);
    EXPECT_FALSE(res.valid);
    EXPECT_NE(res.error.find("program"), std::string::npos);
}

TEST(Validator, RejectsComputeWithoutData) {
    const auto inst = tiny_instance();
    auto sched = vo::Schedule::idle(inst);
    sched.actions[0][0].recv = vo::kRecvProg;
    sched.actions[0][1].compute = 0; // no data yet
    const auto res = vo::validate(inst, sched);
    EXPECT_FALSE(res.valid);
    EXPECT_NE(res.error.find("data"), std::string::npos);
}

TEST(Validator, RejectsComputeInSameSlotAsLastDataByte) {
    const auto inst = tiny_instance();
    auto sched = vo::Schedule::idle(inst);
    sched.actions[0][0].recv = vo::kRecvProg;
    sched.actions[0][1].recv = 0;
    sched.actions[0][1].compute = 0; // data only completes during slot 1
    const auto res = vo::validate(inst, sched);
    EXPECT_FALSE(res.valid);
}

TEST(Validator, RejectsBandwidthOverflow) {
    vo::OfflineInstance inst;
    inst.platform.w = {1, 1};
    inst.platform.ncom = 1;
    inst.platform.t_prog = 1;
    inst.platform.t_data = 1;
    inst.num_tasks = 2;
    inst.horizon = 4;
    inst.states = vo::states_from_strings({"uuuu", "uuuu"});
    auto sched = vo::Schedule::idle(inst);
    sched.actions[0][0].recv = vo::kRecvProg;
    sched.actions[1][0].recv = vo::kRecvProg; // 2 transfers > ncom = 1
    const auto res = vo::validate(inst, sched);
    EXPECT_FALSE(res.valid);
    EXPECT_NE(res.error.find("bandwidth"), std::string::npos);
}

TEST(Validator, AllowsParallelTransfersUpToNcom) {
    vo::OfflineInstance inst;
    inst.platform.w = {1, 1};
    inst.platform.ncom = 2;
    inst.platform.t_prog = 1;
    inst.platform.t_data = 1;
    inst.num_tasks = 2;
    inst.horizon = 4;
    inst.states = vo::states_from_strings({"uuuu", "uuuu"});
    auto sched = vo::Schedule::idle(inst);
    for (int q = 0; q < 2; ++q) {
        sched.actions[q][0].recv = vo::kRecvProg;
        sched.actions[q][1].recv = q; // task q
        sched.actions[q][2].compute = q;
    }
    const auto res = vo::validate(inst, sched);
    EXPECT_TRUE(res.valid) << res.error;
    EXPECT_TRUE(res.all_done);
    EXPECT_EQ(res.makespan, 3);
}

TEST(Validator, RejectsProgramOverReception) {
    const auto inst = tiny_instance();
    auto sched = vo::Schedule::idle(inst);
    sched.actions[0][0].recv = vo::kRecvProg;
    sched.actions[0][1].recv = vo::kRecvProg; // Tprog == 1
    const auto res = vo::validate(inst, sched);
    EXPECT_FALSE(res.valid);
    EXPECT_NE(res.error.find("over-received"), std::string::npos);
}

TEST(Validator, RejectsSecondTaskBeforeFirstFinishes) {
    vo::OfflineInstance inst;
    inst.platform.w = {2};
    inst.platform.ncom = 1;
    inst.platform.t_prog = 1;
    inst.platform.t_data = 1;
    inst.num_tasks = 2;
    inst.horizon = 8;
    inst.states = vo::states_from_strings({"uuuuuuuu"});
    auto sched = vo::Schedule::idle(inst);
    sched.actions[0][0].recv = vo::kRecvProg;
    sched.actions[0][1].recv = 0;
    sched.actions[0][2].compute = 0;
    sched.actions[0][2].recv = 1;
    sched.actions[0][3].compute = 1; // task 0 needs two compute slots
    const auto res = vo::validate(inst, sched);
    EXPECT_FALSE(res.valid);
    EXPECT_NE(res.error.find("second task"), std::string::npos);
}

TEST(Validator, DownWipesProgramAndData) {
    vo::OfflineInstance inst;
    inst.platform.w = {1};
    inst.platform.ncom = 1;
    inst.platform.t_prog = 1;
    inst.platform.t_data = 1;
    inst.num_tasks = 1;
    inst.horizon = 6;
    inst.states = vo::states_from_strings({"uuduuu"});
    // Receive everything before the crash, try to compute after: invalid.
    auto sched = vo::Schedule::idle(inst);
    sched.actions[0][0].recv = vo::kRecvProg;
    sched.actions[0][1].recv = 0;
    sched.actions[0][3].compute = 0;
    auto res = vo::validate(inst, sched);
    EXPECT_FALSE(res.valid);
    // Re-receiving after the crash makes it valid.
    sched = vo::Schedule::idle(inst);
    sched.actions[0][0].recv = vo::kRecvProg;
    sched.actions[0][3].recv = vo::kRecvProg;
    sched.actions[0][4].recv = 0;
    sched.actions[0][5].compute = 0;
    res = vo::validate(inst, sched);
    EXPECT_TRUE(res.valid) << res.error;
    EXPECT_TRUE(res.all_done);
}

TEST(Validator, ComputeAndReceiveOverlapIsLegal) {
    // A processor may compute one task while receiving the next one's data.
    vo::OfflineInstance inst;
    inst.platform.w = {2};
    inst.platform.ncom = 1;
    inst.platform.t_prog = 1;
    inst.platform.t_data = 1;
    inst.num_tasks = 2;
    inst.horizon = 8;
    inst.states = vo::states_from_strings({"uuuuuuuu"});
    auto sched = vo::Schedule::idle(inst);
    sched.actions[0][0].recv = vo::kRecvProg;
    sched.actions[0][1].recv = 0;
    sched.actions[0][2].compute = 0;
    sched.actions[0][2].recv = 1; // overlap
    sched.actions[0][3].compute = 0;
    sched.actions[0][4].compute = 1;
    sched.actions[0][5].compute = 1;
    const auto res = vo::validate(inst, sched);
    EXPECT_TRUE(res.valid) << res.error;
    EXPECT_EQ(res.makespan, 6);
}

TEST(Validator, RejectsMalformedShapes) {
    const auto inst = tiny_instance();
    vo::Schedule bad; // no rows at all
    EXPECT_FALSE(vo::validate(inst, bad).valid);
}

TEST(Validator, RejectsDataForComputedTask) {
    const auto inst = tiny_instance();
    auto sched = tiny_schedule();
    sched.actions[0][4].recv = 0; // task 0 already done by slot 4
    const auto res = vo::validate(inst, sched);
    EXPECT_FALSE(res.valid);
    EXPECT_NE(res.error.find("already-completed"), std::string::npos);
}

TEST(TwoStateReduction, RemovesAllDownStates) {
    vo::OfflineInstance inst;
    inst.platform.w = {1, 2};
    inst.platform.ncom = 1;
    inst.platform.t_prog = 1;
    inst.platform.t_data = 1;
    inst.num_tasks = 1;
    inst.horizon = 8;
    inst.states = vo::states_from_strings({"uudduuuu", "uuuuuuud"});
    const auto reduced = vo::two_state_reduction(inst);
    EXPECT_TRUE(reduced.validate().empty());
    for (const auto& row : reduced.states)
        for (const auto s : row) EXPECT_NE(s, ProcState::Down);
    // P0 splits into two segments; P1's trailing DOWN yields one segment.
    EXPECT_EQ(reduced.num_procs(), 3);
    // Speeds carried over per segment.
    EXPECT_EQ(reduced.platform.w[0], 1);
    EXPECT_EQ(reduced.platform.w[1], 1);
    EXPECT_EQ(reduced.platform.w[2], 2);
}

TEST(TwoStateReduction, PreservesUpSlots) {
    vo::OfflineInstance inst;
    inst.platform.w = {3};
    inst.platform.ncom = 1;
    inst.platform.t_prog = 1;
    inst.platform.t_data = 1;
    inst.num_tasks = 1;
    inst.horizon = 6;
    inst.states = vo::states_from_strings({"ududdu"});
    const auto reduced = vo::two_state_reduction(inst);
    std::size_t up_in = 0, up_out = 0;
    for (const auto s : inst.states[0]) up_in += (s == ProcState::Up);
    for (const auto& row : reduced.states)
        for (const auto s : row) up_out += (s == ProcState::Up);
    EXPECT_EQ(up_in, up_out);
}

TEST(TwoStateReduction, AllDownProcessorYieldsPlaceholder) {
    vo::OfflineInstance inst;
    inst.platform.w = {1};
    inst.platform.ncom = 1;
    inst.platform.t_prog = 1;
    inst.platform.t_data = 1;
    inst.num_tasks = 1;
    inst.horizon = 4;
    inst.states = vo::states_from_strings({"dddd"});
    const auto reduced = vo::two_state_reduction(inst);
    EXPECT_TRUE(reduced.validate().empty());
    EXPECT_GE(reduced.num_procs(), 1);
}

TEST(StatesFromStrings, RejectsRaggedAndGarbage) {
    EXPECT_THROW(vo::states_from_strings({"uu", "u"}), std::invalid_argument);
    EXPECT_THROW(vo::states_from_strings({"ux"}), std::invalid_argument);
}
