/// Tests of the automated reproduction verdicts: hand-built sweep results
/// with known orderings must produce the expected PASS/FAIL pattern, and a
/// real (small) sweep must reproduce the paper's Table 2 shape.

#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "exp/shape.hpp"
#include "exp/sweep.hpp"

namespace ve = volsched::exp;
namespace vc = volsched::core;

namespace {

/// Builds a SweepResult whose single instance fixes the dfb ordering: the
/// heuristic at rank k gets makespan base + k * step.
ve::SweepResult synthetic_result(const std::vector<std::string>& names,
                                 const std::vector<int>& ranks) {
    ve::SweepResult result(names);
    std::vector<long long> makespans;
    for (int r : ranks) makespans.push_back(100 + 10LL * r);
    result.overall.add_instance(makespans);
    return result;
}

} // namespace

TEST(ShapeTable2, PassesOnPaperOrdering) {
    const auto& names = vc::all_heuristic_names();
    // Factory order is the paper's Table 2 order: rank = position.
    std::vector<int> ranks;
    for (std::size_t h = 0; h < names.size(); ++h)
        ranks.push_back(static_cast<int>(h));
    const auto result = synthetic_result(names, ranks);
    const auto checks = ve::check_table2_shape(result);
    EXPECT_TRUE(ve::all_passed(checks)) << ve::render_checks(checks);
    EXPECT_EQ(checks.size(), 9u);
}

TEST(ShapeTable2, FailsWhenRandomBeatsGreedy) {
    const auto& names = vc::all_heuristic_names();
    std::vector<int> ranks;
    for (std::size_t h = 0; h < names.size(); ++h)
        ranks.push_back(static_cast<int>(h));
    // Make plain "random" (last) the overall winner.
    ranks.back() = -5;
    const auto result = synthetic_result(names, ranks);
    const auto checks = ve::check_table2_shape(result);
    EXPECT_FALSE(ve::all_passed(checks));
}

TEST(ShapeTable2, ThrowsOnWrongHeuristicSet) {
    const auto result = synthetic_result({"mct", "emct"}, {0, 1});
    EXPECT_THROW(ve::check_table2_shape(result), std::invalid_argument);
}

TEST(ShapeTable3, DistinguishesTheTwoRegimes) {
    const auto& names = vc::greedy_heuristic_names();
    // x5: emct best; x10: ud best with plain mct collapsing.
    // names order: mct, mct*, emct, emct*, lw, lw*, ud, ud*.
    const auto x5 = synthetic_result(names, {4, 3, 0, 1, 6, 5, 8, 7});
    const auto x10 = synthetic_result(names, {30, 8, 3, 3, 4, 4, 0, 1});
    const auto checks = ve::check_table3_shape(x5, x10);
    EXPECT_TRUE(ve::all_passed(checks)) << ve::render_checks(checks);

    // Reversed regimes must fail.
    const auto bad = ve::check_table3_shape(x10, x5);
    EXPECT_FALSE(ve::all_passed(bad));
}

TEST(ShapeRender, MentionsEveryCheck) {
    const auto& names = vc::greedy_heuristic_names();
    const auto x5 = synthetic_result(names, {4, 3, 0, 1, 6, 5, 8, 7});
    const auto x10 = synthetic_result(names, {30, 8, 3, 3, 4, 4, 0, 1});
    const auto checks = ve::check_table3_shape(x5, x10);
    const auto text = ve::render_checks(checks);
    std::size_t lines = 0;
    for (char c : text) lines += (c == '\n');
    EXPECT_EQ(lines, checks.size());
    EXPECT_NE(text.find("[PASS]"), std::string::npos);
}

TEST(ShapeFigure2, DetectsCrossoverAndTrends) {
    const std::vector<std::string> names = {"mct",  "mct*", "emct",
                                            "emct*", "ud*",  "lw*"};
    ve::SweepResult result(names);
    // wmin=1: mct best, ud*/lw* terrible; wmin=9: emct best, ud*/lw* good.
    auto add = [&](int wmin, std::vector<long long> ms) {
        auto [it, ok] = result.by_wmin.try_emplace(wmin, names.size());
        it->second.add_instance(ms);
        result.overall.add_instance(ms);
    };
    add(1, {100, 101, 110, 111, 180, 200});
    add(5, {108, 108, 100, 100, 120, 130});
    add(9, {115, 115, 100, 100, 105, 108});
    const auto checks = ve::check_figure2_shape(result);
    EXPECT_TRUE(ve::all_passed(checks)) << ve::render_checks(checks);
}

TEST(ShapeFigure2, FailsWithoutCrossover) {
    const std::vector<std::string> names = {"mct",  "mct*", "emct",
                                            "emct*", "ud*",  "lw*"};
    ve::SweepResult result(names);
    auto add = [&](int wmin, std::vector<long long> ms) {
        auto [it, ok] = result.by_wmin.try_emplace(wmin, names.size());
        it->second.add_instance(ms);
    };
    // MCT always wins: no crossover, EMCT never below.
    add(1, {100, 100, 120, 120, 150, 150});
    add(9, {100, 100, 120, 120, 150, 160});
    const auto checks = ve::check_figure2_shape(result);
    EXPECT_FALSE(ve::all_passed(checks));
}

TEST(ShapeEndToEnd, SmallRealSweepReproducesTable2Shape) {
    // A modest but real sweep.  The wmin values must span the grid the way
    // the paper's does (1..10): the "MCT < UD" ordering only holds when
    // low-wmin cells — where UD's coarse crash estimate misleads it — are
    // part of the average (cf. Figure 2).
    ve::SweepConfig cfg;
    cfg.tasks_values = {5, 10};
    cfg.ncom_values = {5};
    cfg.wmin_values = {1, 5, 9};
    cfg.scenarios_per_cell = 3;
    cfg.trials_per_scenario = 2;
    cfg.p = 12;
    cfg.run.iterations = 5;
    cfg.master_seed = 20110516;
    const auto result = ve::run_sweep(cfg, vc::all_heuristic_names());
    const auto checks = ve::check_table2_shape(result);
    EXPECT_TRUE(ve::all_passed(checks)) << ve::render_checks(checks);
}
