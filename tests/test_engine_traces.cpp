/// Stochastic engine tests: audited runs on recipe-generated Markov
/// platforms, conservation laws, determinism, and scheduler-independent
/// availability.

#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "markov/gen.hpp"
#include "sim/engine.hpp"
#include "support/fixtures.hpp"
#include "util/rng.hpp"

namespace vs = volsched::sim;
namespace vm = volsched::markov;
namespace vc = volsched::core;

using volsched::test::recipe_setup;

namespace {

vs::EngineConfig audited(int iterations, int tasks) {
    return volsched::test::audited_config(iterations, tasks);
}

} // namespace

TEST(EngineStochastic, AuditedRunCompletesUnderEveryHeuristic) {
    const auto s = recipe_setup(8, 3, 2, 42);
    const auto sim =
        vs::Simulation::from_chains(s.platform, s.chains, audited(3, 6), 7);
    for (const auto& name : vc::all_heuristic_names()) {
        const auto sched = vc::make_scheduler(name);
        const auto metrics = sim.run(*sched);
        EXPECT_TRUE(metrics.completed) << name;
        EXPECT_GT(metrics.makespan, 0) << name;
    }
}

TEST(EngineStochastic, TasksConservation) {
    const auto s = recipe_setup(6, 2, 1, 43);
    const auto sim =
        vs::Simulation::from_chains(s.platform, s.chains, audited(4, 5), 9);
    const auto sched = vc::make_scheduler("emct*");
    const auto metrics = sim.run(*sched);
    ASSERT_TRUE(metrics.completed);
    EXPECT_EQ(metrics.tasks_completed, 4 * 5);
    EXPECT_EQ(metrics.iterations_completed, 4);
}

TEST(EngineStochastic, SameSeedSameOutcome) {
    const auto s = recipe_setup(10, 5, 2, 44);
    const auto sim =
        vs::Simulation::from_chains(s.platform, s.chains, audited(2, 8), 11);
    const auto sched1 = vc::make_scheduler("ud*");
    const auto sched2 = vc::make_scheduler("ud*");
    const auto m1 = sim.run(*sched1);
    const auto m2 = sim.run(*sched2);
    EXPECT_EQ(m1.makespan, m2.makespan);
    EXPECT_EQ(m1.transfer_slots, m2.transfer_slots);
    EXPECT_EQ(m1.compute_slots, m2.compute_slots);
    EXPECT_EQ(m1.down_events, m2.down_events);
}

TEST(EngineStochastic, DifferentSeedsDifferentOutcomes) {
    const auto s = recipe_setup(10, 5, 2, 45);
    const auto a =
        vs::Simulation::from_chains(s.platform, s.chains, audited(2, 8), 1);
    const auto b =
        vs::Simulation::from_chains(s.platform, s.chains, audited(2, 8), 2);
    const auto sched = vc::make_scheduler("mct");
    // Makespans could coincide by chance; down-event counts almost surely
    // differ across independent availability realizations of this length.
    const auto ma = a.run(*sched);
    const auto mb = b.run(*sched);
    EXPECT_TRUE(ma.makespan != mb.makespan ||
                ma.down_events != mb.down_events);
}

TEST(EngineStochastic, AvailabilityIndependentOfScheduler) {
    // The availability realization is a function of the seed only, so two
    // different schedulers running "side by side" must observe comparable
    // volatility.  down_events depends on how long the run lasts, so compare
    // the rate on runs of the same seed via a scheduler-independent proxy:
    // re-running the same scheduler twice must give identical down_events,
    // and a second scheduler's events-per-slot must be similar.
    const auto s = recipe_setup(10, 5, 1, 46);
    const auto sim =
        vs::Simulation::from_chains(s.platform, s.chains, audited(3, 10), 21);
    const auto mct = vc::make_scheduler("mct");
    const auto rnd = vc::make_scheduler("random");
    const auto m1 = sim.run(*mct);
    const auto m2 = sim.run(*rnd);
    ASSERT_TRUE(m1.completed);
    ASSERT_TRUE(m2.completed);
    const double rate1 =
        static_cast<double>(m1.down_events) / static_cast<double>(m1.makespan);
    const double rate2 =
        static_cast<double>(m2.down_events) / static_cast<double>(m2.makespan);
    EXPECT_NEAR(rate1, rate2, 0.5 * std::max(rate1, rate2));
}

TEST(EngineStochastic, BandwidthAccountingIsBounded) {
    const auto s = recipe_setup(12, 4, 1, 47);
    const auto sim =
        vs::Simulation::from_chains(s.platform, s.chains, audited(2, 10), 31);
    const auto sched = vc::make_scheduler("emct");
    const auto metrics = sim.run(*sched);
    ASSERT_TRUE(metrics.completed);
    // ncom transfers per slot at most.
    EXPECT_LE(metrics.transfer_slots,
              static_cast<long long>(s.platform.ncom) * metrics.makespan);
    // Minimum useful transfer volume: every task needs its data once.
    EXPECT_GE(metrics.transfer_slots,
              static_cast<long long>(2 * 10) * s.platform.t_data);
}

TEST(EngineStochastic, ComputeAccountingIsBounded) {
    const auto s = recipe_setup(8, 4, 1, 48);
    const auto sim =
        vs::Simulation::from_chains(s.platform, s.chains, audited(2, 6), 33);
    const auto sched = vc::make_scheduler("mct*");
    const auto metrics = sim.run(*sched);
    ASSERT_TRUE(metrics.completed);
    int w_min = s.platform.w[0], w_max = s.platform.w[0];
    for (int w : s.platform.w) {
        w_min = std::min(w_min, w);
        w_max = std::max(w_max, w);
    }
    // Useful compute: every completed task costs at least w_min slots.
    EXPECT_GE(metrics.compute_slots,
              metrics.tasks_completed * static_cast<long long>(w_min));
    // And wasted + useful is bounded by p * makespan.
    EXPECT_LE(metrics.compute_slots,
              static_cast<long long>(s.platform.w.size()) * metrics.makespan);
}

TEST(EngineStochastic, StickyPlanAuditsCleanly) {
    const auto s = recipe_setup(8, 3, 2, 49);
    auto cfg = audited(2, 6);
    cfg.plan_class = vs::SchedulerClass::Passive;
    const auto sim = vs::Simulation::from_chains(s.platform, s.chains, cfg, 5);
    const auto sched = vc::make_scheduler("mct");
    const auto metrics = sim.run(*sched);
    EXPECT_TRUE(metrics.completed);
}

TEST(EngineStochastic, ReplicaWinsAreCounted) {
    // With heavy volatility and replication enabled, at least some runs see
    // replica wins; aggregate across seeds for a robust check.
    long long wins = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        const auto s = recipe_setup(10, 5, 3, 50 + seed);
        const auto sim = vs::Simulation::from_chains(s.platform, s.chains,
                                                     audited(2, 4), seed);
        const auto sched = vc::make_scheduler("mct");
        wins += sim.run(*sched).replica_wins;
    }
    EXPECT_GT(wins, 0);
}

TEST(EngineStochastic, UninformedBeliefsStillComplete) {
    // Simulation constructed without belief chains: informed heuristics
    // degrade gracefully (EMCT -> MCT, LW/UD -> ties) but must still finish.
    const auto s = recipe_setup(6, 2, 1, 60);
    std::vector<std::unique_ptr<vm::AvailabilityModel>> models;
    for (const auto& c : s.chains)
        models.push_back(std::make_unique<vm::MarkovAvailability>(c));
    const vs::Simulation sim(s.platform, std::move(models), {}, audited(2, 5),
                             3);
    for (const auto& name : {"emct", "lw", "ud", "random2"}) {
        const auto sched = vc::make_scheduler(name);
        EXPECT_TRUE(sim.run(*sched).completed) << name;
    }
}
