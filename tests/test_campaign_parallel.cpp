/// Campaign scale-out: the barrier-free completion pipeline, in-process
/// parallel shards, and the queryable index sidecar.  The load-bearing
/// guarantees pinned here are the scale-out issue's acceptance criteria:
/// (1) pipeline and barrier execution emit byte-identical outputs, (2) an
/// in-process N-shard parallel run is byte-identical to N separate
/// sequential shard processes — and merges bit-identically to the unsharded
/// sweep, (3) kill/resume under the pipelined emitter stays byte-identical,
/// and (4) an indexed query selects exactly the lines a brute-force JSONL
/// scan would, including through the stale/absent-sidecar rebuild path.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "api/campaign_builder.hpp"
#include "api/experiment_builder.hpp"
#include "exp/campaign.hpp"
#include "exp/index_sink.hpp"
#include "exp/sink.hpp"
#include "exp/sweep.hpp"
#include "support/golden.hpp"
#include "util/thread_pool.hpp"

namespace ve = volsched::exp;
namespace va = volsched::api;
using volsched::test::TempDir;
using volsched::test::read_file;

namespace {

/// Same 8-job / 16-instance grid the campaign tests use.
ve::SweepConfig small_sweep() {
    ve::SweepConfig cfg;
    cfg.tasks_values = {3, 4};
    cfg.ncom_values = {2};
    cfg.wmin_values = {1, 2};
    cfg.scenarios_per_cell = 2;
    cfg.trials_per_scenario = 2;
    cfg.p = 4;
    cfg.run.iterations = 2;
    cfg.master_seed = 99;
    cfg.threads = 2;
    return cfg;
}

const std::vector<std::string> kHeuristics = {"mct", "emct"};

ve::CampaignConfig small_campaign(const std::filesystem::path& dir) {
    ve::CampaignConfig cfg;
    cfg.sweep = small_sweep();
    cfg.heuristics = kHeuristics;
    cfg.directory = dir;
    cfg.checkpoint_jobs = 3; // deliberately not a divisor of 8
    return cfg;
}

void expect_tables_identical(const ve::DfbTable& a, const ve::DfbTable& b) {
    ASSERT_EQ(a.num_heuristics(), b.num_heuristics());
    EXPECT_EQ(a.instances(), b.instances());
    for (std::size_t h = 0; h < a.num_heuristics(); ++h) {
        EXPECT_EQ(a.mean_dfb(h), b.mean_dfb(h));
        EXPECT_EQ(a.dfb(h).variance(), b.dfb(h).variance());
        EXPECT_EQ(a.makespan(h).mean(), b.makespan(h).mean());
        EXPECT_EQ(a.wins(h), b.wins(h));
    }
}

void expect_results_identical(const ve::SweepResult& a,
                              const ve::SweepResult& b) {
    EXPECT_EQ(a.heuristics, b.heuristics);
    expect_tables_identical(a.overall, b.overall);
    ASSERT_EQ(a.by_wmin.size(), b.by_wmin.size());
    for (const auto& [key, table] : a.by_wmin) {
        const auto it = b.by_wmin.find(key);
        ASSERT_NE(it, b.by_wmin.end());
        expect_tables_identical(table, it->second);
    }
}

/// The three durable artifacts of one shard, as raw bytes.
struct ShardBytes {
    std::string jsonl, idx, manifest;
};

ShardBytes shard_bytes(const std::filesystem::path& dir) {
    return {read_file(dir / "records.jsonl"),
            read_file(dir / "records.idx"), read_file(dir / "MANIFEST")};
}

/// Brute force the query contract: scan every record line of every shard,
/// filter on the parsed scenario, and order globally by (ordinal, trial).
std::vector<std::string>
scan_matching_lines(const std::vector<std::filesystem::path>& files,
                    const ve::QueryFilter& f) {
    struct Hit {
        std::uint64_t ordinal;
        int trial;
        std::string line;
    };
    std::vector<Hit> hits;
    for (const auto& file : files) {
        std::ifstream in(file);
        std::string line;
        std::getline(in, line); // header
        while (std::getline(in, line)) {
            const auto rec = ve::JsonlSink::parse_record(line);
            auto in_range = [](auto value, const auto& range) {
                return !range || (value >= range->first &&
                                  value <= range->second);
            };
            if (in_range(rec.scenario_ordinal, f.ordinal) &&
                in_range(rec.scenario.wmin, f.wmin) &&
                in_range(rec.scenario.tasks, f.tasks) &&
                in_range(rec.scenario.ncom, f.ncom))
                hits.push_back({rec.scenario_ordinal, rec.trial, line});
        }
    }
    std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
        return std::tie(a.ordinal, a.trial) < std::tie(b.ordinal, b.trial);
    });
    std::vector<std::string> lines;
    for (auto& h : hits)
        lines.push_back(std::move(h.line));
    return lines;
}

std::vector<std::string>
query_lines(const std::vector<std::filesystem::path>& files,
            const ve::QueryFilter& f, ve::QueryStats* stats = nullptr) {
    std::vector<std::string> lines;
    const auto s = ve::query_shards(
        files, f, [&](const std::string& line) { lines.push_back(line); });
    if (stats)
        *stats = s;
    return lines;
}

} // namespace

TEST(Pipeline, MatchesBarrierLoopByteForByte) {
    TempDir piped_dir, barrier_dir;

    auto piped = small_campaign(piped_dir.path());
    piped.write_csv = true;
    ASSERT_TRUE(piped.pipeline); // the default execution mode
    const auto a = ve::run_campaign(piped);
    ASSERT_TRUE(a.complete);

    auto barrier = small_campaign(barrier_dir.path());
    barrier.write_csv = true;
    barrier.pipeline = false;
    const auto b = ve::run_campaign(barrier);
    ASSERT_TRUE(b.complete);

    const auto pa = shard_bytes(piped_dir.path());
    const auto pb = shard_bytes(barrier_dir.path());
    EXPECT_EQ(pa.jsonl, pb.jsonl);
    EXPECT_EQ(pa.idx, pb.idx);
    EXPECT_EQ(pa.manifest, pb.manifest);
    EXPECT_EQ(read_file(piped_dir.file("records.csv")),
              read_file(barrier_dir.file("records.csv")));
    expect_results_identical(a.tables, b.tables);
}

TEST(Pipeline, WindowOfOneDegeneratesSafely) {
    // window=1 forces lock-step submit/emit — the pipeline's worst case
    // must still produce the canonical bytes.
    TempDir reference_dir, narrow_dir;
    const auto reference =
        ve::run_campaign(small_campaign(reference_dir.path()));
    ASSERT_TRUE(reference.complete);

    auto narrow = small_campaign(narrow_dir.path());
    narrow.pipeline_window = 1;
    ASSERT_TRUE(ve::run_campaign(narrow).complete);
    EXPECT_EQ(read_file(narrow_dir.file("records.jsonl")),
              read_file(reference_dir.file("records.jsonl")));
    EXPECT_EQ(read_file(narrow_dir.file("records.idx")),
              read_file(reference_dir.file("records.idx")));

    auto bad = small_campaign(narrow_dir.path());
    bad.pipeline_window = -1;
    EXPECT_THROW(ve::run_campaign(bad), std::invalid_argument);
}

TEST(Pipeline, SharedPoolRequiresPipelineMode) {
    TempDir dir;
    volsched::util::ThreadPool pool(2);
    auto cfg = small_campaign(dir.path());
    cfg.pool = &pool;
    cfg.pipeline = false; // barrier loop would monopolize the shared pool
    EXPECT_THROW(ve::run_campaign(cfg), std::invalid_argument);
    cfg.pipeline = true;
    EXPECT_TRUE(ve::run_campaign(cfg).complete);
}

TEST(Pipeline, KilledAndResumedStaysByteIdentical) {
    TempDir uninterrupted_dir, interrupted_dir;

    const auto uninterrupted =
        ve::run_campaign(small_campaign(uninterrupted_dir.path()));
    ASSERT_TRUE(uninterrupted.complete);
    const auto reference = shard_bytes(uninterrupted_dir.path());

    // One checkpoint (3 of 8 jobs durable), then a kill mid-write: torn
    // JSONL tail *and* index entries past the vouched-for header.
    auto sliced = small_campaign(interrupted_dir.path());
    sliced.stop_after_batches = 1;
    const auto first = ve::run_campaign(sliced);
    EXPECT_FALSE(first.complete);
    EXPECT_EQ(first.jobs_done, 3);
    {
        std::ofstream torn(interrupted_dir.file("records.jsonl"),
                           std::ios::app | std::ios::binary);
        torn << "{\"ordinal\":999,\"trial\":0,\"p\":4,\"tas";
        std::ofstream torn_idx(interrupted_dir.file("records.idx"),
                               std::ios::app | std::ios::binary);
        torn_idx << "\x01\x02\x03";
    }

    // The streaming replay rebuilds tables and the sidecar from the durable
    // prefix; the finished run must be indistinguishable from uninterrupted.
    sliced.stop_after_batches = 0;
    const auto resumed = ve::run_campaign(sliced);
    EXPECT_TRUE(resumed.complete);
    const auto healed = shard_bytes(interrupted_dir.path());
    EXPECT_EQ(healed.jsonl, reference.jsonl);
    EXPECT_EQ(healed.idx, reference.idx);
    EXPECT_EQ(healed.manifest, reference.manifest);
    expect_results_identical(resumed.tables, uninterrupted.tables);
}

TEST(ParallelCampaign, MatchesSeparateSequentialShardRuns) {
    constexpr int kShards = 3;
    const auto sweep = small_sweep();
    const auto expected = ve::run_sweep(sweep, kHeuristics);

    // Reference: each shard in its own sequential run_campaign call, the
    // way N separate processes would execute them.
    TempDir sequential_root;
    for (int k = 1; k <= kShards; ++k) {
        auto cfg = small_campaign(sequential_root.path() /
                                  ve::shard_directory_name(k, kShards));
        cfg.shard_index = k;
        cfg.shard_count = kShards;
        ASSERT_TRUE(ve::run_campaign(cfg).complete);
    }

    TempDir parallel_root;
    auto base = small_campaign(parallel_root.path());
    base.shard_count = kShards;
    const auto outcome = ve::run_parallel_campaign(base);
    EXPECT_TRUE(outcome.complete);
    ASSERT_EQ(outcome.shards.size(), static_cast<std::size_t>(kShards));
    EXPECT_EQ(outcome.jobs_total, 8);
    EXPECT_EQ(outcome.jobs_done, 8);
    EXPECT_EQ(outcome.instances_done, 16);

    std::vector<std::filesystem::path> files;
    for (int k = 1; k <= kShards; ++k) {
        const auto name = ve::shard_directory_name(k, kShards);
        const auto par = shard_bytes(parallel_root.path() / name);
        const auto seq = shard_bytes(sequential_root.path() / name);
        EXPECT_EQ(par.jsonl, seq.jsonl) << name;
        EXPECT_EQ(par.idx, seq.idx) << name;
        EXPECT_EQ(par.manifest, seq.manifest) << name;
        files.push_back(parallel_root.path() / name / "records.jsonl");
    }

    // ...and the parallel shard set still merges bit-identically to the
    // unsharded sweep.
    expect_results_identical(ve::merge_shards(files), expected);
}

TEST(ParallelCampaign, AggregatesProgressAndSerializesRecords) {
    TempDir root;
    std::atomic<long long> last_done{0};
    std::atomic<long long> calls{0};
    std::vector<ve::InstanceRecord> recorded;

    auto base = small_campaign(root.path());
    base.shard_count = 2;
    base.sweep.progress = [&](long long done, long long total) {
        EXPECT_EQ(total, 16);
        EXPECT_GE(done, 1);
        EXPECT_LE(done, total);
        last_done.store(done);
        ++calls;
    };
    // The record hook is serialized across shard emitters, so a plain
    // vector (no locking here) must survive TSan.
    base.sweep.record = [&](const ve::InstanceRecord& rec) {
        recorded.push_back(rec);
    };
    const auto outcome = ve::run_parallel_campaign(base);
    EXPECT_TRUE(outcome.complete);
    EXPECT_EQ(calls.load(), 16); // every instance reports exactly once
    EXPECT_EQ(last_done.load(), 16);

    std::set<std::pair<std::uint64_t, int>> identities;
    for (const auto& rec : recorded)
        EXPECT_TRUE(
            identities.emplace(rec.scenario_ordinal, rec.trial).second);
    EXPECT_EQ(identities.size(), 16u);

    // Re-running the complete parallel campaign resumes to a no-op.
    const auto again = ve::run_parallel_campaign(base);
    EXPECT_TRUE(again.complete);
    EXPECT_EQ(again.instances_done, 16);

    auto invalid = base;
    invalid.shard_count = 0;
    EXPECT_THROW(ve::run_parallel_campaign(invalid), std::invalid_argument);
    auto barrier = base;
    barrier.pipeline = false;
    EXPECT_THROW(ve::run_parallel_campaign(barrier), std::invalid_argument);
}

TEST(ParallelCampaign, RunsThroughTheBuilderFacade) {
    TempDir root;
    const auto outcome = va::ExperimentBuilder()
                             .heuristics(kHeuristics)
                             .tasks({3})
                             .ncom({2})
                             .wmin({1, 2})
                             .scenarios_per_cell(1)
                             .trials(2)
                             .processors(4)
                             .iterations(2)
                             .seed(11)
                             .campaign()
                             .directory(root.path())
                             .parallel(2)
                             .checkpoint_every(1)
                             .run_parallel();
    EXPECT_TRUE(outcome.complete);
    EXPECT_EQ(outcome.instances_done, 4);
    std::vector<std::filesystem::path> files;
    for (const auto& dir : ve::find_shard_directories(root.path()))
        files.push_back(dir / "records.jsonl");
    ASSERT_EQ(files.size(), 2u);
    EXPECT_EQ(ve::merge_shards(files).overall.instances(), 4);
}

TEST(IndexSink, RoundTripsAndRejectsAnythingUntrustworthy) {
    TempDir dir;
    const auto path = dir.file("records.idx");
    constexpr std::uint64_t kFingerprint = 0xFEEDFACE12345678ULL;

    {
        ve::IndexSink sink(path, kFingerprint);
        sink.add(0, 0, 100);
        sink.add(0, 1, 180);
        sink.flush(250);
        sink.add(5, 0, 250); // second checkpoint appends incrementally
        sink.flush(333);
    }
    const auto loaded = ve::read_index(path, kFingerprint, 333);
    ASSERT_TRUE(loaded.has_value());
    const std::vector<ve::IndexEntry> expected = {
        {0, 0, 100}, {0, 1, 180}, {5, 0, 250}};
    EXPECT_EQ(*loaded, expected);

    // The one-shot rebuild writer must be byte-identical to the streaming
    // sink — that is what makes "rebuilt" indistinguishable from "original".
    const auto original = read_file(path);
    ve::write_index_file(path, kFingerprint, 333, expected);
    EXPECT_EQ(read_file(path), original);

    // Every invalidity degrades to nullopt (rebuild), never an exception.
    EXPECT_FALSE(ve::read_index(path, kFingerprint ^ 1, 333)); // fingerprint
    EXPECT_FALSE(ve::read_index(path, kFingerprint, 334));     // stale length
    EXPECT_FALSE(ve::read_index(dir.file("absent.idx"), kFingerprint, 333));
    {
        std::ofstream torn(dir.file("torn.idx"), std::ios::binary);
        torn << read_file(path).substr(0, 40); // mid-entry truncation
    }
    EXPECT_FALSE(ve::read_index(dir.file("torn.idx"), kFingerprint, 333));
    ve::write_index_file(path, kFingerprint, 333,
                         {{5, 0, 250}, {0, 0, 100}}); // unsorted
    EXPECT_FALSE(ve::read_index(path, kFingerprint, 333));

    EXPECT_EQ(ve::index_path("out/records.jsonl"),
              std::filesystem::path("out/records.idx"));
}

TEST(IndexedQuery, BitEqualsABruteForceScanOnEveryAxis) {
    constexpr int kShards = 2;
    TempDir root;
    auto base = small_campaign(root.path());
    base.shard_count = kShards;
    ASSERT_TRUE(ve::run_parallel_campaign(base).complete);

    std::vector<std::filesystem::path> files;
    for (const auto& dir : ve::find_shard_directories(root.path()))
        files.push_back(dir / "records.jsonl");
    ASSERT_EQ(files.size(), static_cast<std::size_t>(kShards));

    std::vector<ve::QueryFilter> filters(5);
    filters[1].ordinal = {2, 5};               // ordinal window
    filters[2].wmin = {2, 2};                  // one wmin level
    filters[3].tasks = {4, 4};                 // combined axes...
    filters[3].ncom = {2, 2};
    filters[4].wmin = {7, 9};                  // empty result set
    // (filters[0] left open: everything matches)
    for (const auto& f : filters) {
        ve::QueryStats stats;
        const auto indexed = query_lines(files, f, &stats);
        EXPECT_EQ(indexed, scan_matching_lines(files, f));
        EXPECT_EQ(stats.matched, indexed.size());
        EXPECT_EQ(stats.indexes_rebuilt, 0); // fresh campaign: sidecars valid
    }

    // An incomplete shard set cannot answer global-order queries.
    EXPECT_THROW(query_lines({files[0]}, {}), std::runtime_error);
}

TEST(IndexedQuery, RebuildsStaleOrMissingSidecarsTransparently) {
    TempDir root;
    auto base = small_campaign(root.path());
    base.shard_count = 2;
    ASSERT_TRUE(ve::run_parallel_campaign(base).complete);
    std::vector<std::filesystem::path> files;
    for (const auto& dir : ve::find_shard_directories(root.path()))
        files.push_back(dir / "records.jsonl");

    const auto expected = scan_matching_lines(files, {});
    const auto sidecar0 = ve::index_path(files[0]);
    const auto pristine = read_file(sidecar0);

    // Absent sidecar: rebuilt, re-persisted, and byte-identical to the
    // one the campaign emitter wrote.
    std::filesystem::remove(sidecar0);
    ve::QueryStats stats;
    EXPECT_EQ(query_lines(files, {}, &stats), expected);
    EXPECT_EQ(stats.indexes_rebuilt, 1);
    EXPECT_EQ(read_file(sidecar0), pristine);

    // Corrupted sidecar (flipped byte inside the entry region): same story.
    {
        auto bytes = pristine;
        bytes[bytes.size() - 1] ^= 0x40;
        std::ofstream out(sidecar0, std::ios::binary | std::ios::trunc);
        out << bytes;
    }
    EXPECT_EQ(query_lines(files, {}, &stats), expected);
    EXPECT_EQ(stats.indexes_rebuilt, 1);
    EXPECT_EQ(read_file(sidecar0), pristine);

    // Once healed, the next query trusts the sidecars again.
    EXPECT_EQ(query_lines(files, {}, &stats), expected);
    EXPECT_EQ(stats.indexes_rebuilt, 0);

    // load_or_rebuild_index reports which path it took.
    bool rebuilt = false;
    (void)ve::load_or_rebuild_index(files[0], &rebuilt);
    EXPECT_FALSE(rebuilt);
    std::filesystem::remove(sidecar0);
    const auto entries = ve::load_or_rebuild_index(files[0], &rebuilt);
    EXPECT_TRUE(rebuilt);
    EXPECT_EQ(entries, ve::build_index_entries(files[0]));
}
