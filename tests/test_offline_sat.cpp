#include "offline/sat.hpp"

#include <gtest/gtest.h>

#include "offline/exact.hpp"
#include "util/rng.hpp"

namespace vo = volsched::offline;
using volsched::markov::ProcState;

TEST(Sat3, SatisfiedByChecksClauses) {
    vo::Sat3 sat;
    sat.num_vars = 2;
    sat.clauses = {vo::Clause{{1, 2, 2}}, vo::Clause{{-1, 2, 2}}};
    EXPECT_TRUE(sat.satisfied_by({true, true}));
    EXPECT_TRUE(sat.satisfied_by({false, true}));
    EXPECT_FALSE(sat.satisfied_by({true, false}));
    EXPECT_FALSE(sat.satisfied_by({false, false})); // clause 1 fails
    EXPECT_FALSE(sat.satisfied_by({true}));         // wrong arity
}

TEST(Sat3, BruteForceFindsWitness) {
    vo::Sat3 sat;
    sat.num_vars = 3;
    sat.clauses = {vo::Clause{{1, 2, 3}}, vo::Clause{{-1, -2, -3}}};
    std::vector<bool> witness;
    ASSERT_TRUE(vo::brute_force_sat(sat, &witness));
    EXPECT_TRUE(sat.satisfied_by(witness));
}

TEST(Sat3, BruteForceDetectsUnsat) {
    // (x1) & (~x1) in 3-literal padding.
    vo::Sat3 sat;
    sat.num_vars = 1;
    sat.clauses = {vo::Clause{{1, 1, 1}}, vo::Clause{{-1, -1, -1}}};
    EXPECT_FALSE(vo::brute_force_sat(sat));
}

TEST(Figure1, IsSatisfiable) {
    const auto sat = vo::figure1_instance();
    EXPECT_EQ(sat.num_vars, 4);
    EXPECT_EQ(sat.clauses.size(), 6u);
    std::vector<bool> witness;
    EXPECT_TRUE(vo::brute_force_sat(sat, &witness));
}

TEST(Reduction, InstanceShapeMatchesTheorem1) {
    const auto sat = vo::figure1_instance();
    const auto inst = vo::sat_to_offline(sat);
    EXPECT_TRUE(inst.validate().empty());
    EXPECT_EQ(inst.num_procs(), 8);        // 2n
    EXPECT_EQ(inst.num_tasks, 6);          // m
    EXPECT_EQ(inst.horizon, 6 * 5);        // m(n+1)
    EXPECT_EQ(inst.platform.ncom, 1);
    EXPECT_EQ(inst.platform.t_prog, 6);    // m
    EXPECT_EQ(inst.platform.t_data, 0);
    for (int w : inst.platform.w) EXPECT_EQ(w, 1);
}

TEST(Reduction, ClauseSlotsEncodeLiterals) {
    const auto sat = vo::figure1_instance();
    const auto inst = vo::sat_to_offline(sat);
    // Clause 0 = (~x1 | x3 | x4): processors of ~x1 (idx 1), x3 (idx 4),
    // x4 (idx 6) are UP in slot 0; x1 (idx 0) is not.
    EXPECT_EQ(inst.states[1][0], ProcState::Up);
    EXPECT_EQ(inst.states[4][0], ProcState::Up);
    EXPECT_EQ(inst.states[6][0], ProcState::Up);
    EXPECT_EQ(inst.states[0][0], ProcState::Reclaimed);
}

TEST(Reduction, VariableWindowsAreExclusive) {
    const auto sat = vo::figure1_instance();
    const auto inst = vo::sat_to_offline(sat);
    const int m = inst.num_tasks;
    for (int v = 0; v < sat.num_vars; ++v) {
        for (int j = 0; j < m; ++j) {
            const int t = m * (v + 1) + j;
            for (int q = 0; q < inst.num_procs(); ++q) {
                const bool own = (q / 2 == v);
                EXPECT_EQ(inst.states[q][t] == ProcState::Up, own)
                    << "proc " << q << " slot " << t;
            }
        }
    }
}

TEST(Reduction, SatisfyingAssignmentYieldsValidSchedule) {
    const auto sat = vo::figure1_instance();
    const auto inst = vo::sat_to_offline(sat);
    std::vector<bool> witness;
    ASSERT_TRUE(vo::brute_force_sat(sat, &witness));
    const auto sched = vo::schedule_from_assignment(sat, inst, witness);
    const auto res = vo::validate(inst, sched);
    ASSERT_TRUE(res.valid) << res.error;
    EXPECT_TRUE(res.all_done);
    EXPECT_LE(res.makespan, inst.horizon);
}

TEST(Reduction, RejectsNonSatisfyingAssignment) {
    const auto sat = vo::figure1_instance();
    const auto inst = vo::sat_to_offline(sat);
    std::vector<bool> witness;
    ASSERT_TRUE(vo::brute_force_sat(sat, &witness));
    // Find an assignment that does NOT satisfy the formula.
    std::vector<bool> bad = witness;
    for (std::uint32_t bits = 0; bits < 16; ++bits) {
        for (int v = 0; v < 4; ++v) bad[v] = (bits >> v) & 1u;
        if (!sat.satisfied_by(bad)) break;
    }
    ASSERT_FALSE(sat.satisfied_by(bad));
    EXPECT_THROW(vo::schedule_from_assignment(sat, inst, bad),
                 std::invalid_argument);
}

TEST(Reduction, RejectsEmptyFormula) {
    vo::Sat3 empty;
    EXPECT_THROW(vo::sat_to_offline(empty), std::invalid_argument);
}

namespace {

/// Random tiny 3SAT instance over `n` variables with `m` clauses.  Within a
/// clause each variable gets a single sign (no tautological x | ~x pairs),
/// matching the proper-clause assumption of the Theorem 1 reduction.
vo::Sat3 random_sat(int n, int m, std::uint64_t seed) {
    volsched::util::Rng rng(seed);
    vo::Sat3 sat;
    sat.num_vars = n;
    for (int c = 0; c < m; ++c) {
        std::vector<bool> sign(static_cast<std::size_t>(n));
        for (int v = 0; v < n; ++v) sign[v] = rng.bernoulli(0.5);
        vo::Clause clause;
        for (int k = 0; k < 3; ++k) {
            const int var = 1 + static_cast<int>(rng.uniform_int(0, n - 1));
            clause.lits[k] = sign[var - 1] ? var : -var;
        }
        sat.clauses.push_back(clause);
    }
    return sat;
}

} // namespace

// The crown-jewel equivalence: a formula is satisfiable if and only if the
// reduced Off-Line instance can complete within N = m(n+1) slots.  The
// exact solver decides the right-hand side.
class ReductionEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ReductionEquivalence, SatIffSchedulable) {
    const auto seed = static_cast<std::uint64_t>(GetParam());
    const auto sat = random_sat(/*n=*/2, /*m=*/3, seed);
    const auto inst = vo::sat_to_offline(sat);
    const bool satisfiable = vo::brute_force_sat(sat);
    const auto exact = vo::solve_exact(inst, 20'000'000);
    ASSERT_TRUE(exact.proven) << "node cap hit at seed " << seed;
    EXPECT_EQ(exact.feasible, satisfiable) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionEquivalence, ::testing::Range(0, 10));

TEST(ReductionEquivalence, ConstructiveDirectionOnRandomInstances) {
    // For satisfiable formulas, the constructive schedule always validates.
    int built = 0;
    for (std::uint64_t seed = 100; seed < 130 && built < 8; ++seed) {
        const auto sat = random_sat(3, 4, seed);
        std::vector<bool> witness;
        if (!vo::brute_force_sat(sat, &witness)) continue;
        const auto inst = vo::sat_to_offline(sat);
        const auto sched = vo::schedule_from_assignment(sat, inst, witness);
        const auto res = vo::validate(inst, sched);
        ASSERT_TRUE(res.valid) << res.error << " at seed " << seed;
        EXPECT_TRUE(res.all_done);
        ++built;
    }
    EXPECT_GE(built, 5);
}
