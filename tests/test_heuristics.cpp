#include <gtest/gtest.h>

#include <array>
#include <map>

#include "core/ct.hpp"
#include "core/factory.hpp"
#include "markov/expectation.hpp"
#include "sim/scheduler.hpp"
#include "support/fixtures.hpp"
#include "util/rng.hpp"

namespace vc = volsched::core;
namespace vs = volsched::sim;
namespace vm = volsched::markov;

using volsched::test::ViewFixture;
using volsched::test::all_procs;
using volsched::test::always_up_chain;
using volsched::test::crashy_chain;
using volsched::test::flaky_chain;

TEST(Ct, PlainMatchesEquation1) {
    ViewFixture f(2, 4, 10, 3);
    f.procs[0].delay = 7;
    f.procs[0].w = 5;
    auto& view = f.finalize();
    // n = 1: Delay + Tdata + w = 7 + 3 + 5.
    EXPECT_DOUBLE_EQ(vc::ct_plain(view, 0, 1), 15.0);
    // n = 3: + 2 * max(Tdata, w) = + 10.
    EXPECT_DOUBLE_EQ(vc::ct_plain(view, 0, 3), 25.0);
}

TEST(Ct, PlainUsesMaxOfDataAndCompute) {
    ViewFixture f(1, 4, 10, 9);
    f.procs[0].w = 2;
    auto& view = f.finalize();
    // max(Tdata, w) = 9 dominates the pipeline of queued tasks.
    EXPECT_DOUBLE_EQ(vc::ct_plain(view, 0, 2), 0 + 9 + 9 + 2);
}

TEST(Ct, CorrectedAppliesCongestionFactor) {
    ViewFixture f(2, 2, 10, 3);
    f.procs[0].w = 5;
    auto& view = f.finalize(/*nactive=*/3, /*remaining=*/4);
    // Prospective enrolment: nactive 3 -> 4; ceil(4/2) = 2 -> Tdata' = 6.
    EXPECT_DOUBLE_EQ(vc::ct_corrected(view, 0, 1, /*already=*/false),
                     0 + 6 + 5);
    // Already active: ceil(3/2) = 2 as well.
    EXPECT_DOUBLE_EQ(vc::ct_corrected(view, 0, 1, /*already=*/true),
                     0 + 6 + 5);
    // Low activity: factor 1 reduces to Eq. (1).
    auto& view2 = f.finalize(/*nactive=*/0);
    EXPECT_DOUBLE_EQ(vc::ct_corrected(view2, 0, 1, false),
                     vc::ct_plain(view2, 0, 1));
}

TEST(Factory, AllSeventeenNamesConstruct) {
    const auto& names = vc::all_heuristic_names();
    EXPECT_EQ(names.size(), 17u);
    for (const auto& name : names) {
        const auto sched = vc::make_scheduler(name);
        ASSERT_NE(sched, nullptr) << name;
        EXPECT_EQ(sched->name(), name);
    }
}

TEST(Factory, GreedySubsetIsEight) {
    EXPECT_EQ(vc::greedy_heuristic_names().size(), 8u);
}

TEST(Factory, UnknownNameThrows) {
    EXPECT_THROW(vc::make_scheduler("bogus"), std::invalid_argument);
    EXPECT_THROW(vc::make_scheduler("EMCT"), std::invalid_argument); // case
}

TEST(Mct, PicksSmallestCompletionTime) {
    ViewFixture f(3, 4, 10, 2);
    f.procs[0].w = 9;
    f.procs[1].w = 2; // fastest
    f.procs[2].w = 5;
    f.procs[1].delay = 0;
    auto& view = f.finalize();
    auto sched = vc::make_scheduler("mct");
    std::vector<int> nq(3, 0);
    volsched::util::Rng rng(1);
    EXPECT_EQ(sched->select(view, all_procs(3), nq, rng), 1);
}

TEST(Mct, DelayOutweighsSpeed) {
    ViewFixture f(2, 4, 10, 2);
    f.procs[0].w = 2;
    f.procs[0].delay = 50; // fast but busy
    f.procs[1].w = 4;
    f.procs[1].delay = 0;
    auto& view = f.finalize();
    auto sched = vc::make_scheduler("mct");
    std::vector<int> nq(2, 0);
    volsched::util::Rng rng(1);
    EXPECT_EQ(sched->select(view, all_procs(2), nq, rng), 1);
}

TEST(Mct, QueueLengthMatters) {
    ViewFixture f(2, 4, 10, 2);
    f.procs[0].w = 3;
    f.procs[1].w = 4;
    auto& view = f.finalize();
    auto sched = vc::make_scheduler("mct");
    volsched::util::Rng rng(1);
    // First pick: P0 (faster).  With 3 tasks already queued on P0 this
    // round, the next task goes to P1.
    std::vector<int> nq = {0, 0};
    EXPECT_EQ(sched->select(view, all_procs(2), nq, rng), 0);
    nq = {3, 0};
    EXPECT_EQ(sched->select(view, all_procs(2), nq, rng), 1);
}

TEST(Emct, ReducesToMctWhenNoReclaimed) {
    // P+ = 1 and E(W) = W for an always-up chain: EMCT == MCT choice.
    ViewFixture f(2, 4, 10, 2);
    f.procs[0].w = 3;
    f.procs[1].w = 7;
    f.set_chains({always_up_chain(), always_up_chain()});
    auto& view = f.finalize();
    auto emct = vc::make_scheduler("emct");
    auto mct = vc::make_scheduler("mct");
    std::vector<int> nq(2, 0);
    volsched::util::Rng rng(1);
    EXPECT_EQ(emct->select(view, all_procs(2), nq, rng),
              mct->select(view, all_procs(2), nq, rng));
}

TEST(Emct, PenalizesReclaimedProneProcessor) {
    // Equal speed; P0 detours via RECLAIMED half the time, P1 never.
    ViewFixture f(2, 4, 10, 2);
    f.procs[0].w = 3;
    f.procs[1].w = 3;
    f.set_chains({flaky_chain(0.5), always_up_chain()});
    auto& view = f.finalize();
    auto emct = vc::make_scheduler("emct");
    std::vector<int> nq(2, 0);
    volsched::util::Rng rng(1);
    EXPECT_EQ(emct->select(view, all_procs(2), nq, rng), 1);
    // MCT cannot see the difference and keeps the tie-break winner P0.
    auto mct = vc::make_scheduler("mct");
    EXPECT_EQ(mct->select(view, all_procs(2), nq, rng), 0);
}

TEST(Emct, FlakyButMuchFasterCanStillWin) {
    // EMCT trades expected detours against raw speed.
    ViewFixture f(2, 4, 10, 2);
    f.procs[0].w = 2;  // fast, mildly flaky
    f.procs[1].w = 20; // reliable but 10x slower
    f.set_chains({flaky_chain(0.05), always_up_chain()});
    auto& view = f.finalize();
    auto emct = vc::make_scheduler("emct");
    std::vector<int> nq(2, 0);
    volsched::util::Rng rng(1);
    EXPECT_EQ(emct->select(view, all_procs(2), nq, rng), 0);
}

TEST(Lw, PrefersCrashSafeProcessor) {
    // Equal CT; P0 crashes with 5% per UP slot, P1 never.
    ViewFixture f(2, 4, 10, 2);
    f.procs[0].w = 3;
    f.procs[1].w = 3;
    f.set_chains({crashy_chain(0.05), always_up_chain()});
    auto& view = f.finalize();
    auto lw = vc::make_scheduler("lw");
    std::vector<int> nq(2, 0);
    volsched::util::Rng rng(1);
    EXPECT_EQ(lw->select(view, all_procs(2), nq, rng), 1);
}

TEST(Lw, AllSafeFallsBackToCtTieBreak) {
    ViewFixture f(2, 4, 10, 2);
    f.procs[0].w = 9;
    f.procs[1].w = 2;
    f.set_chains({always_up_chain(), always_up_chain()});
    auto& view = f.finalize();
    auto lw = vc::make_scheduler("lw");
    std::vector<int> nq(2, 0);
    volsched::util::Rng rng(1);
    // P+ = 1 for both: scores tie at 0, the smaller CT (P1) wins.
    EXPECT_EQ(lw->select(view, all_procs(2), nq, rng), 1);
}

TEST(Ud, PrefersLowCrashProbabilityOverWorkload) {
    ViewFixture f(2, 4, 10, 2);
    f.procs[0].w = 3;
    f.procs[1].w = 3;
    f.set_chains({crashy_chain(0.10), crashy_chain(0.01)});
    auto& view = f.finalize();
    auto ud = vc::make_scheduler("ud");
    std::vector<int> nq(2, 0);
    volsched::util::Rng rng(1);
    EXPECT_EQ(ud->select(view, all_procs(2), nq, rng), 1);
}

TEST(StarredVariants, ReactToCongestion) {
    // With heavy round activity, the starred CT inflates Tdata; a processor
    // whose w dominates Tdata is then preferred over a queue on the fast
    // one.  Construct: P0 fast (w=1), already 1 task; P1 slower (w=4).
    ViewFixture f(2, 1, 10, 3);
    f.procs[0].w = 1;
    f.procs[1].w = 4;
    auto mct_star = vc::make_scheduler("mct*");
    auto mct = vc::make_scheduler("mct");
    volsched::util::Rng rng(1);
    std::vector<int> nq = {1, 0};
    // Plain: CT(P0)=3+max(3,1)+1=7 (n=2), CT(P1)=3+4=7 -> tie, P0 by CT tie?
    // both 7 -> lower index wins.
    auto& view_plain = f.finalize(/*nactive=*/1);
    EXPECT_EQ(mct->select(view_plain, all_procs(2), nq, rng), 0);
    // Starred with nactive=1 (P0 active): for P1 prospective nactive=2,
    // factor ceil(2/1)=2 -> Tdata'=6: CT(P1)=6+4=10;
    // for P0 factor ceil(1/1)=1 -> CT(P0)=3+3+1=7 -> P0 still.
    EXPECT_EQ(mct_star->select(view_plain, all_procs(2), nq, rng), 0);
}

TEST(RandomHeuristics, UniformCoversAllEligible) {
    ViewFixture f(4, 4, 10, 2);
    auto& view = f.finalize();
    auto sched = vc::make_scheduler("random");
    std::vector<int> nq(4, 0);
    volsched::util::Rng rng(5);
    std::map<int, int> counts;
    for (int i = 0; i < 4000; ++i)
        ++counts[sched->select(view, all_procs(4), nq, rng)];
    for (int q = 0; q < 4; ++q)
        EXPECT_NEAR(counts[q], 1000, 150) << q;
}

TEST(RandomHeuristics, Random1FavorsStableUp) {
    // P0: P_uu = 0.5; P1: P_uu = 1.0 -> P1 picked ~2/3 of the time.
    ViewFixture f(2, 4, 10, 2);
    f.set_chains({flaky_chain(0.5), always_up_chain()});
    auto& view = f.finalize();
    auto sched = vc::make_scheduler("random1");
    std::vector<int> nq(2, 0);
    volsched::util::Rng rng(6);
    int p1 = 0;
    const int n = 30000;
    for (int i = 0; i < n; ++i)
        p1 += (sched->select(view, all_procs(2), nq, rng) == 1);
    EXPECT_NEAR(p1 / static_cast<double>(n), 1.0 / 1.5, 0.02);
}

TEST(RandomHeuristics, SpeedWeightingPrefersFastProcessors) {
    // random1w with equal chains: weights 1/w -> P1 (w=1) over P0 (w=4).
    ViewFixture f(2, 4, 10, 2);
    f.procs[0].w = 4;
    f.procs[1].w = 1;
    f.set_chains({always_up_chain(), always_up_chain()});
    auto& view = f.finalize();
    auto sched = vc::make_scheduler("random1w");
    std::vector<int> nq(2, 0);
    volsched::util::Rng rng(7);
    int p1 = 0;
    const int n = 30000;
    for (int i = 0; i < n; ++i)
        p1 += (sched->select(view, all_procs(2), nq, rng) == 1);
    EXPECT_NEAR(p1 / static_cast<double>(n), 0.8, 0.02);
}

TEST(RandomHeuristics, RespectsEligibleSubset) {
    ViewFixture f(4, 4, 10, 2);
    auto& view = f.finalize();
    auto sched = vc::make_scheduler("random");
    std::vector<int> nq(4, 0);
    volsched::util::Rng rng(8);
    const std::vector<vs::ProcId> eligible = {1, 3};
    for (int i = 0; i < 500; ++i) {
        const auto q = sched->select(view, eligible, nq, rng);
        EXPECT_TRUE(q == 1 || q == 3);
    }
}

TEST(GreedyHeuristics, DeterministicAcrossCalls) {
    ViewFixture f(5, 4, 10, 2);
    for (int q = 0; q < 5; ++q) f.procs[q].w = 1 + q;
    auto& view = f.finalize();
    std::vector<int> nq(5, 0);
    volsched::util::Rng rng(9);
    for (const auto& name : vc::greedy_heuristic_names()) {
        auto sched = vc::make_scheduler(name);
        const auto first = sched->select(view, all_procs(5), nq, rng);
        for (int i = 0; i < 10; ++i)
            EXPECT_EQ(sched->select(view, all_procs(5), nq, rng), first)
                << name;
    }
}
