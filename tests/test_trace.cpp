#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "markov/gen.hpp"
#include "trace/empirical.hpp"
#include "trace/replay.hpp"
#include "trace/semi_markov.hpp"
#include "util/rng.hpp"

namespace vt = volsched::trace;
namespace vm = volsched::markov;
using vm::ProcState;

TEST(Weibull, SamplesArePositive) {
    vt::Weibull w{0.7, 50.0};
    volsched::util::Rng rng(1);
    for (int i = 0; i < 1000; ++i) EXPECT_GE(w.sample_slots(rng), 1);
}

TEST(Weibull, MeanApproximatesScaleGamma) {
    const double shape = 2.0, scale = 30.0;
    vt::Weibull w{shape, scale};
    volsched::util::Rng rng(2);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(w.sample_slots(rng));
    const double expected = scale * std::tgamma(1.0 + 1.0 / shape);
    // Ceil-rounding to slots adds up to ~0.5 of bias.
    EXPECT_NEAR(sum / n, expected + 0.5, 0.5);
}

TEST(SemiMarkovParams, DesktopGridDefaultsAreValid) {
    EXPECT_TRUE(vt::desktop_grid_params(100.0).valid());
    EXPECT_THROW(vt::desktop_grid_params(0.5), std::invalid_argument);
}

TEST(SemiMarkovParams, RejectsBadJumpRows) {
    auto p = vt::desktop_grid_params(50.0);
    p.jump[0] = {0.5, 0.5, 0.5};
    EXPECT_FALSE(p.valid());
    p = vt::desktop_grid_params(50.0);
    p.jump[1][1] = 0.1; // non-zero diagonal
    EXPECT_FALSE(p.valid());
}

TEST(SemiMarkov, StartsUp) {
    vt::SemiMarkovAvailability model(vt::desktop_grid_params(40.0));
    volsched::util::Rng rng(3);
    EXPECT_EQ(model.initial_state(rng), ProcState::Up);
}

TEST(SemiMarkov, ProducesAllThreeStates) {
    vt::SemiMarkovAvailability model(vt::desktop_grid_params(20.0));
    volsched::util::Rng rng(4);
    std::array<long long, 3> counts{};
    ProcState s = model.initial_state(rng);
    for (int t = 0; t < 200000; ++t) {
        s = model.next_state(s, rng);
        ++counts[static_cast<int>(s)];
    }
    EXPECT_GT(counts[0], 0);
    EXPECT_GT(counts[1], 0);
    EXPECT_GT(counts[2], 0);
    // UP dominates: mean UP sojourn is 4x RECLAIMED and 2x DOWN.
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[0], counts[2]);
}

TEST(SemiMarkov, EquivalentMarkovMatrixIsStochastic) {
    vt::SemiMarkovAvailability model(vt::desktop_grid_params(30.0));
    EXPECT_TRUE(model.equivalent_markov_matrix().validate(1e-9).empty());
}

TEST(Record, ProducesRequestedLength) {
    volsched::util::Rng gen(5);
    vm::MarkovAvailability proto(vm::generate_chain(gen));
    volsched::util::Rng rng(6);
    const auto trace = vt::record(proto, 500, rng);
    EXPECT_EQ(trace.length(), 500u);
    EXPECT_EQ(trace.states[0], ProcState::Up);
}

TEST(Record, ZeroSlotsGivesEmptyTrace) {
    volsched::util::Rng gen(7);
    vm::MarkovAvailability proto(vm::generate_chain(gen));
    volsched::util::Rng rng(8);
    EXPECT_EQ(vt::record(proto, 0, rng).length(), 0u);
}

TEST(TraceIo, RoundTripsThroughText) {
    volsched::util::Rng gen(9), rng(10);
    vm::MarkovAvailability proto(vm::generate_chain(gen));
    std::vector<vt::RecordedTrace> traces;
    traces.push_back(vt::record(proto, 100, rng));
    traces.push_back(vt::record(proto, 100, rng));

    std::stringstream ss;
    vt::write_traces(ss, traces);
    const auto parsed = vt::read_traces(ss);
    ASSERT_EQ(parsed.size(), 2u);
    for (int i = 0; i < 2; ++i)
        EXPECT_EQ(parsed[i].states, traces[i].states);
}

TEST(TraceIo, RejectsGarbage) {
    std::stringstream ss("uurzx\n");
    EXPECT_THROW(vt::read_traces(ss), std::invalid_argument);
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
    std::stringstream ss("# comment\n\nuur\n");
    const auto parsed = vt::read_traces(ss);
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0].length(), 3u);
}

TEST(Replay, ReplaysExactSequence) {
    vt::RecordedTrace tr;
    tr.states = {ProcState::Up, ProcState::Reclaimed, ProcState::Down,
                 ProcState::Up};
    vt::ReplayAvailability model(tr, vt::ReplayAvailability::EndPolicy::Loop);
    volsched::util::Rng rng(11);
    EXPECT_EQ(model.initial_state(rng), ProcState::Up);
    EXPECT_EQ(model.next_state(ProcState::Up, rng), ProcState::Reclaimed);
    EXPECT_EQ(model.next_state(ProcState::Reclaimed, rng), ProcState::Down);
    EXPECT_EQ(model.next_state(ProcState::Down, rng), ProcState::Up);
    // Loop policy wraps to the beginning.
    EXPECT_EQ(model.next_state(ProcState::Up, rng), ProcState::Up);
}

TEST(Replay, HoldLastPolicySticks) {
    vt::RecordedTrace tr;
    tr.states = {ProcState::Up, ProcState::Reclaimed};
    vt::ReplayAvailability model(tr,
                                 vt::ReplayAvailability::EndPolicy::HoldLast);
    volsched::util::Rng rng(12);
    EXPECT_EQ(model.initial_state(rng), ProcState::Up);
    EXPECT_EQ(model.next_state(ProcState::Up, rng), ProcState::Reclaimed);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(model.next_state(ProcState::Reclaimed, rng),
                  ProcState::Reclaimed);
}

TEST(Replay, RejectsEmptyTrace) {
    EXPECT_THROW(vt::ReplayAvailability(vt::RecordedTrace{}),
                 std::invalid_argument);
}

TEST(Replay, CloneRestartsFromBeginning) {
    vt::RecordedTrace tr;
    tr.states = {ProcState::Up, ProcState::Down};
    vt::ReplayAvailability model(tr);
    volsched::util::Rng rng(13);
    model.initial_state(rng);
    model.next_state(ProcState::Up, rng);
    const auto clone = model.clone();
    EXPECT_EQ(clone->initial_state(rng), ProcState::Up);
}

TEST(Analyze, CountsOccupancyAndRuns) {
    vt::RecordedTrace tr;
    // u u r r r d u  -> occupancy u:3/7, r:3/7, d:1/7
    for (char c : std::string("uurrrdu"))
        tr.states.push_back(vm::state_from_code(c));
    const auto st = vt::analyze(tr);
    EXPECT_EQ(st.slots, 7u);
    EXPECT_NEAR(st.occupancy[0], 3.0 / 7.0, 1e-12);
    EXPECT_NEAR(st.occupancy[1], 3.0 / 7.0, 1e-12);
    EXPECT_NEAR(st.occupancy[2], 1.0 / 7.0, 1e-12);
    EXPECT_EQ(st.intervals[0], 2u); // "uu" and "u"
    EXPECT_EQ(st.intervals[1], 1u);
    EXPECT_EQ(st.intervals[2], 1u);
    EXPECT_NEAR(st.mean_interval[0], 1.5, 1e-12);
    EXPECT_NEAR(st.mean_interval[1], 3.0, 1e-12);
}

TEST(Analyze, EmptyTrace) {
    const auto st = vt::analyze(vt::RecordedTrace{});
    EXPECT_EQ(st.slots, 0u);
}

TEST(FitMarkov, RecoversGeneratingChain) {
    volsched::util::Rng gen(14);
    const auto chain = vm::generate_chain(gen);
    vm::MarkovAvailability proto(chain);
    volsched::util::Rng rng(15);
    std::vector<vt::RecordedTrace> traces;
    for (int i = 0; i < 4; ++i)
        traces.push_back(vt::record(proto, 200000, rng));
    const auto fitted = vt::fit_markov(traces);
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            EXPECT_NEAR(fitted(static_cast<ProcState>(i),
                               static_cast<ProcState>(j)),
                        chain.matrix()(static_cast<ProcState>(i),
                                       static_cast<ProcState>(j)),
                        0.01);
}

TEST(FitMarkov, ThrowsOnEmptyInput) {
    EXPECT_THROW(vt::fit_markov({}), std::invalid_argument);
    std::vector<vt::RecordedTrace> one_slot(1);
    one_slot[0].states = {ProcState::Up};
    EXPECT_THROW(vt::fit_markov(one_slot), std::invalid_argument);
}

TEST(FitMarkov, FittedMatrixIsValid) {
    volsched::util::Rng gen(16), rng(17);
    vt::SemiMarkovAvailability proto(vt::desktop_grid_params(25.0));
    std::vector<vt::RecordedTrace> traces{vt::record(proto, 50000, rng)};
    EXPECT_TRUE(vt::fit_markov(traces).validate(1e-9).empty());
}
