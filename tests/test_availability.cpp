#include "markov/availability.hpp"

#include <gtest/gtest.h>

#include <array>

#include "markov/gen.hpp"
#include "util/rng.hpp"

namespace vm = volsched::markov;
using vm::ProcState;

TEST(MarkovAvailability, AlwaysUpInitialState) {
    volsched::util::Rng gen(1);
    vm::MarkovAvailability model(vm::generate_chain(gen),
                                 vm::InitialState::AlwaysUp);
    volsched::util::Rng rng(2);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(model.initial_state(rng), ProcState::Up);
}

TEST(MarkovAvailability, StationaryInitialStateFrequencies) {
    volsched::util::Rng gen(3);
    const auto chain = vm::generate_chain(gen);
    vm::MarkovAvailability model(chain, vm::InitialState::Stationary);
    volsched::util::Rng rng(4);
    std::array<int, 3> counts{};
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[static_cast<int>(model.initial_state(rng))];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), chain.stationary().pi_u,
                0.01);
}

TEST(MarkovAvailability, NextStateUsesChain) {
    volsched::util::Rng gen(5);
    const auto chain = vm::generate_chain(gen);
    vm::MarkovAvailability model(chain);
    volsched::util::Rng rng(6);
    std::array<int, 3> counts{};
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[static_cast<int>(model.next_state(ProcState::Reclaimed, rng))];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), chain.matrix().p_ru(), 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), chain.matrix().p_rr(), 0.01);
}

TEST(MarkovAvailability, CloneIsIndependentButIdenticallyDistributed) {
    volsched::util::Rng gen(7);
    vm::MarkovAvailability model(vm::generate_chain(gen));
    const auto clone = model.clone();
    // Identical RNG stream => identical sampled sequence.
    volsched::util::Rng r1(42), r2(42);
    ProcState a = ProcState::Up, b = ProcState::Up;
    for (int i = 0; i < 200; ++i) {
        a = model.next_state(a, r1);
        b = clone->next_state(b, r2);
        EXPECT_EQ(a, b);
    }
}

TEST(StateCodes, RoundTrip) {
    EXPECT_EQ(vm::state_code(ProcState::Up), 'u');
    EXPECT_EQ(vm::state_code(ProcState::Reclaimed), 'r');
    EXPECT_EQ(vm::state_code(ProcState::Down), 'd');
    EXPECT_EQ(vm::state_from_code('u'), ProcState::Up);
    EXPECT_EQ(vm::state_from_code('r'), ProcState::Reclaimed);
    EXPECT_EQ(vm::state_from_code('d'), ProcState::Down);
    // Unknown codes fail safe to DOWN.
    EXPECT_EQ(vm::state_from_code('x'), ProcState::Down);
}

TEST(StateNames, AreHumanReadable) {
    EXPECT_EQ(vm::state_name(ProcState::Up), "UP");
    EXPECT_EQ(vm::state_name(ProcState::Reclaimed), "RECLAIMED");
    EXPECT_EQ(vm::state_name(ProcState::Down), "DOWN");
}
