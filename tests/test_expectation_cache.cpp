/// Bit-identity pins for markov::ExpectationCache: every cached getter —
/// chain-keyed and handle-keyed — must return the exact double the
/// corresponding markov:: free function returns, across the canonical
/// fixture chains, generated chains, and all documented edge cases.  Also
/// covers the invalidation contract (matrix change at a reused address),
/// the hit/miss counters, clear(), and the benchmark bypass hook.

#include "markov/expectation_cache.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "markov/chain.hpp"
#include "markov/expectation.hpp"
#include "markov/gen.hpp"
#include "support/fixtures.hpp"
#include "util/rng.hpp"

namespace vm = volsched::markov;
namespace vt = volsched::test;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The chains every bit-identity sweep runs over: the canonical fixtures
/// (including the degenerate always-up and absorbing cases) plus a spread
/// of generated recipe chains.
std::vector<vm::MarkovChain> sweep_chains() {
    std::vector<vm::MarkovChain> cs;
    cs.push_back(vt::always_up_chain());
    cs.push_back(vt::flaky_chain(0.3));
    cs.push_back(vt::crashy_chain(0.2));
    cs.push_back(vt::self_split_chain(0.95));
    cs.push_back(vt::chain3(0.6, 0.3, 0.2, 0.5, 0.4, 0.1));
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        volsched::util::Rng rng(seed);
        cs.push_back(vm::generate_chain(rng));
    }
    return cs;
}

/// Restores the global bypass flag even when an assertion fails mid-test.
struct BypassGuard {
    ~BypassGuard() { vm::ExpectationCache::set_bypass(false); }
};

const double kWorkloads[] = {-3.0, 0.0, 0.25, 1.0, 1.5, 2.0, 7.25, 40.0};
const double kHorizons[] = {0.5, 1.0, 1.75, 2.0, 2.5, 3.0, 17.75, 64.5};
const unsigned kExactHorizons[] = {0u, 1u, 2u, 3u, 7u, 32u};

} // namespace

TEST(ExpectationCache, ChainKeyedGettersMatchFreeFunctionsBitExactly) {
    // EXPECT_EQ on doubles: the cache must agree to the last bit, not
    // within a tolerance.
    vm::ExpectationCache cache;
    for (const auto& chain : sweep_chains()) {
        const auto& m = chain.matrix();
        const auto& pi = chain.stationary();
        // Twice each: first resolves, second replays the memo.
        for (int pass = 0; pass < 2; ++pass) {
            EXPECT_EQ(cache.p_plus(chain), vm::p_plus(m));
            EXPECT_EQ(cache.log_p_plus(chain), std::log(vm::p_plus(m)));
            EXPECT_EQ(cache.e_up(chain), vm::e_up(m));
            EXPECT_EQ(cache.mean_time_to_down(chain),
                      vm::mean_time_to_down(m));
            EXPECT_EQ(cache.mean_time_to_down_from_reclaimed(chain),
                      vm::mean_time_to_down_from_reclaimed(m));
            EXPECT_EQ(cache.mean_recovery_time(chain),
                      vm::mean_recovery_time(m));
            for (const double w : kWorkloads)
                EXPECT_EQ(cache.e_workload(chain, w), vm::e_workload(m, w));
            for (const double k : kHorizons)
                EXPECT_EQ(cache.p_ud_approx(chain, k),
                          vm::p_ud_approx(m, pi.pi_u, pi.pi_r, k));
            for (const unsigned k : kExactHorizons)
                EXPECT_EQ(cache.p_ud_exact(chain, k), vm::p_ud_exact(m, k));
        }
    }
}

TEST(ExpectationCache, HandleGettersMatchFreeFunctionsBitExactly) {
    vm::ExpectationCache cache;
    for (const auto& chain : sweep_chains()) {
        const auto& m = chain.matrix();
        const auto& pi = chain.stationary();
        // Pin twice: a fresh entry, then a re-validation of a warm one.
        for (int pass = 0; pass < 2; ++pass) {
            const auto h = cache.pin(chain);
            EXPECT_EQ(cache.p_plus(h), vm::p_plus(m));
            EXPECT_EQ(cache.log_p_plus(h), std::log(vm::p_plus(m)));
            EXPECT_EQ(cache.e_up(h), vm::e_up(m));
            for (const double w : kWorkloads)
                EXPECT_EQ(cache.e_workload(h, w), vm::e_workload(m, w));
            for (const double k : kHorizons)
                EXPECT_EQ(cache.p_ud_approx(h, k),
                          vm::p_ud_approx(m, pi.pi_u, pi.pi_r, k));
        }
    }
}

TEST(ExpectationCache, AbsorbingReclaimedEdgeCases) {
    // P_rr == 1: P+ collapses to P_uu and E(up) to 1 (the only way back
    // UP is the direct u->u transition).
    const vm::MarkovChain absorbing(vm::TransitionMatrix(
        {{{0.7, 0.2, 0.1}, {0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}}}));
    vm::ExpectationCache cache;
    EXPECT_DOUBLE_EQ(cache.p_plus(absorbing), 0.7);
    EXPECT_DOUBLE_EQ(cache.e_up(absorbing), 1.0);

    // Same but with P_uu == 0: UP is never re-entered, so P+ == 0,
    // log(P+) == -inf, and expectations diverge.
    const vm::MarkovChain dead(vm::TransitionMatrix(
        {{{0.0, 0.5, 0.5}, {0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}}}));
    EXPECT_EQ(cache.p_plus(dead), 0.0);
    EXPECT_EQ(cache.log_p_plus(dead), -kInf);
    EXPECT_EQ(cache.e_up(dead), kInf);
    EXPECT_EQ(cache.e_workload(dead, 5.0), kInf);
    const auto h = cache.pin(dead);
    EXPECT_EQ(cache.log_p_plus(h), -kInf);
    EXPECT_EQ(cache.e_workload(h, 5.0), kInf);
}

TEST(ExpectationCache, WorkloadEarlyOutsSkipTheCache) {
    // workload <= 0 and workload <= 1 return before any chain quantity is
    // touched, exactly like the free function.
    const auto chain = vt::flaky_chain(0.25);
    vm::ExpectationCache cache;
    EXPECT_EQ(cache.e_workload(chain, -2.0), 0.0);
    EXPECT_EQ(cache.e_workload(chain, 0.0), 0.0);
    EXPECT_EQ(cache.e_workload(chain, 0.75), 0.75);
    EXPECT_EQ(cache.e_workload(chain, 1.0), 1.0);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    const auto h = cache.pin(chain);
    EXPECT_EQ(cache.e_workload(h, 0.5), 0.5);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
}

TEST(ExpectationCache, PUdSmallHorizonEdgeCases) {
    const auto chain = vt::crashy_chain(0.15);
    const auto& m = chain.matrix();
    vm::ExpectationCache cache;
    const auto h = cache.pin(chain);
    // k <= 1: certain survival, before any memo interaction.
    EXPECT_EQ(cache.p_ud_approx(chain, 0.5), 1.0);
    EXPECT_EQ(cache.p_ud_approx(chain, 1.0), 1.0);
    EXPECT_EQ(cache.p_ud_approx(h, 1.0), 1.0);
    EXPECT_EQ(cache.p_ud_exact(chain, 0u), 1.0);
    EXPECT_EQ(cache.p_ud_exact(chain, 1u), 1.0);
    // 1 < k <= 2: exactly the first-transition survival 1 - P_ud.
    EXPECT_EQ(cache.p_ud_approx(chain, 1.5), 1.0 - m.p_ud());
    EXPECT_EQ(cache.p_ud_approx(chain, 2.0), 1.0 - m.p_ud());
    EXPECT_EQ(cache.p_ud_approx(h, 2.0), 1.0 - m.p_ud());
}

TEST(ExpectationCache, DegenerateStationaryGivesZeroSurvival) {
    // All steady-state mass on DOWN: pi_u + pi_r == 0, so the approximate
    // survival for k > 2 is 0 — through the cache and the free function.
    const auto chain = vt::chain3(0.2, 0.3, 0.1, 0.2, 0.0, 0.0);
    const auto& pi = chain.stationary();
    ASSERT_EQ(pi.pi_u + pi.pi_r, 0.0);
    vm::ExpectationCache cache;
    EXPECT_EQ(cache.p_ud_approx(chain, 5.0),
              vm::p_ud_approx(chain.matrix(), pi.pi_u, pi.pi_r, 5.0));
    EXPECT_EQ(cache.p_ud_approx(chain, 5.0), 0.0);
}

TEST(ExpectationCache, InvalidatesWhenMatrixChangesAtSameAddress) {
    // Chain identity is the object's address; the entry snapshots the
    // matrix and must detect a different chain rebuilt in the same spot.
    std::optional<vm::MarkovChain> slot;
    slot.emplace(vt::flaky_chain(0.3));
    vm::ExpectationCache cache;
    const double first = cache.p_plus(*slot);
    EXPECT_EQ(first, vm::p_plus(slot->matrix()));
    EXPECT_EQ(cache.invalidations(), 0u);
    EXPECT_EQ(cache.size(), 1u);

    slot.emplace(vt::crashy_chain(0.4));
    const double second = cache.p_plus(*slot);
    EXPECT_EQ(second, vm::p_plus(slot->matrix()));
    EXPECT_NE(second, first);
    EXPECT_EQ(cache.invalidations(), 1u);
    EXPECT_EQ(cache.size(), 1u); // replaced, not duplicated

    // pin() performs the same validation: a handle taken after the swap
    // serves the new chain's values.
    slot.emplace(vt::self_split_chain(0.9));
    const auto h = cache.pin(*slot);
    EXPECT_EQ(cache.p_plus(h), vm::p_plus(slot->matrix()));
    EXPECT_EQ(cache.invalidations(), 2u);
}

TEST(ExpectationCache, CountersTrackMissesAndHits) {
    const auto chain = vt::flaky_chain(0.2);
    vm::ExpectationCache cache;
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.size(), 0u);

    (void)cache.p_plus(chain);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.size(), 1u);
    (void)cache.p_plus(chain);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);

    // e_workload(w > 1) resolves E(up) once, then replays it.
    (void)cache.e_workload(chain, 5.0);
    EXPECT_EQ(cache.misses(), 2u);
    (void)cache.e_workload(chain, 6.0);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), 2u);

    // p_ud_approx(k > 2) misses twice cold (per-chain ingredients + the
    // per-k power memo) and hits twice warm.
    const std::uint64_t miss0 = cache.misses();
    const std::uint64_t hit0 = cache.hits();
    (void)cache.p_ud_approx(chain, 9.5);
    EXPECT_EQ(cache.misses(), miss0 + 2);
    EXPECT_EQ(cache.hits(), hit0);
    (void)cache.p_ud_approx(chain, 9.5);
    EXPECT_EQ(cache.misses(), miss0 + 2);
    EXPECT_EQ(cache.hits(), hit0 + 2);
    // A different k re-uses the ingredients but pays one pow.
    (void)cache.p_ud_approx(chain, 10.5);
    EXPECT_EQ(cache.misses(), miss0 + 3);
    EXPECT_EQ(cache.hits(), hit0 + 3);

    // A second chain gets its own entry.
    const auto other = vt::crashy_chain(0.1);
    (void)cache.p_plus(other);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ExpectationCache, ClearResetsEntriesAndCounters) {
    const auto chain = vt::flaky_chain(0.2);
    vm::ExpectationCache cache;
    (void)cache.p_plus(chain);
    (void)cache.p_plus(chain);
    (void)cache.p_ud_exact(chain, 6u);
    ASSERT_GT(cache.size(), 0u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.invalidations(), 0u);
    // Next access recomputes from scratch, still bit-exact.
    EXPECT_EQ(cache.p_plus(chain), vm::p_plus(chain.matrix()));
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(ExpectationCache, BypassForwardsToFreeFunctions) {
    BypassGuard guard;
    const auto chain = vt::crashy_chain(0.15);
    const auto& m = chain.matrix();
    const auto& pi = chain.stationary();
    vm::ExpectationCache cache;
    vm::ExpectationCache::set_bypass(true);
    EXPECT_TRUE(vm::ExpectationCache::bypassed());
    EXPECT_EQ(cache.p_plus(chain), vm::p_plus(m));
    EXPECT_EQ(cache.e_workload(chain, 4.5), vm::e_workload(m, 4.5));
    EXPECT_EQ(cache.p_ud_approx(chain, 7.5),
              vm::p_ud_approx(m, pi.pi_u, pi.pi_r, 7.5));
    // Handle accessors recompute per call as well.
    const auto h = cache.pin(chain);
    EXPECT_EQ(cache.p_plus(h), vm::p_plus(m));
    EXPECT_EQ(cache.log_p_plus(h), std::log(vm::p_plus(m)));
    EXPECT_EQ(cache.e_up(h), vm::e_up(m));
    EXPECT_EQ(cache.e_workload(h, 4.5), vm::e_workload(m, 4.5));
    EXPECT_EQ(cache.p_ud_approx(h, 7.5),
              vm::p_ud_approx(m, pi.pi_u, pi.pi_r, 7.5));
    // The bypassed cache does no bookkeeping at all.
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);

    vm::ExpectationCache::set_bypass(false);
    EXPECT_FALSE(vm::ExpectationCache::bypassed());
    EXPECT_EQ(cache.p_plus(chain), vm::p_plus(m));
    EXPECT_EQ(cache.size(), 1u);
}
