#include "offline/mct.hpp"

#include <gtest/gtest.h>

#include "offline/exact.hpp"
#include "util/rng.hpp"

namespace vo = volsched::offline;

namespace {

vo::OfflineInstance always_up(int p, int w, int t_prog, int t_data, int m,
                              int horizon) {
    vo::OfflineInstance inst;
    inst.platform.w.assign(static_cast<std::size_t>(p), w);
    inst.platform.ncom = p; // effectively unbounded: <=1 transfer per proc
    inst.platform.t_prog = t_prog;
    inst.platform.t_data = t_data;
    inst.num_tasks = m;
    inst.horizon = horizon;
    inst.states.assign(static_cast<std::size_t>(p),
                       std::vector<volsched::markov::ProcState>(
                           static_cast<std::size_t>(horizon),
                           volsched::markov::ProcState::Up));
    return inst;
}

/// Random small 2-state (u/r) instance for property tests.
vo::OfflineInstance random_two_state(int p, int m, int horizon,
                                     std::uint64_t seed) {
    volsched::util::Rng rng(seed);
    vo::OfflineInstance inst;
    inst.num_tasks = m;
    inst.horizon = horizon;
    inst.platform.ncom = p;
    inst.platform.t_prog = 1 + static_cast<int>(rng.uniform_int(0, 1));
    inst.platform.t_data = 1;
    for (int q = 0; q < p; ++q) {
        inst.platform.w.push_back(1 + static_cast<int>(rng.uniform_int(0, 1)));
        std::vector<volsched::markov::ProcState> row;
        for (int t = 0; t < horizon; ++t)
            row.push_back(rng.bernoulli(0.75)
                              ? volsched::markov::ProcState::Up
                              : volsched::markov::ProcState::Reclaimed);
        inst.states.push_back(std::move(row));
    }
    return inst;
}

} // namespace

TEST(SimulateProcessor, SingleTaskPipeline) {
    const auto inst = always_up(1, 2, 1, 1, 1, 10);
    const auto completion = vo::simulate_processor(inst, 0, {0}, nullptr);
    // prog 0, data 1, compute 2-3 -> completion slot 4 (1-based count).
    ASSERT_EQ(completion.size(), 1u);
    EXPECT_EQ(completion[0], 4);
}

TEST(SimulateProcessor, PipelineOverlapsDataWithCompute) {
    const auto inst = always_up(1, 2, 1, 1, 2, 10);
    const auto completion = vo::simulate_processor(inst, 0, {0, 1}, nullptr);
    // task0 at 4; task1's data arrives during task0's compute; compute 4-5
    // -> completion 6.
    EXPECT_EQ(completion[0], 4);
    EXPECT_EQ(completion[1], 6);
}

TEST(SimulateProcessor, DataBoundPipeline) {
    const auto inst = always_up(1, 1, 1, 3, 2, 12);
    const auto completion = vo::simulate_processor(inst, 0, {0, 1}, nullptr);
    // prog 0; data0 1-3; compute0 4; data1 4-6; compute1 7 -> 5 and 8.
    EXPECT_EQ(completion[0], 5);
    EXPECT_EQ(completion[1], 8);
}

TEST(SimulateProcessor, ReclaimedPausesEverything) {
    auto inst = always_up(1, 1, 1, 1, 1, 10);
    inst.states = vo::states_from_strings({"urruuuuuuu"});
    const auto completion = vo::simulate_processor(inst, 0, {0}, nullptr);
    // prog 0, r r, data 3, compute 4 -> completion 5.
    EXPECT_EQ(completion[0], 5);
}

TEST(SimulateProcessor, DownRestartsFromScratch) {
    auto inst = always_up(1, 1, 2, 1, 1, 12);
    inst.states = vo::states_from_strings({"uuuduuuuuuuu"});
    const auto completion = vo::simulate_processor(inst, 0, {0}, nullptr);
    // prog 0-1, data 2, crash 3 (everything lost), prog 4-5, data 6,
    // compute 7 -> completion 8.
    EXPECT_EQ(completion[0], 8);
}

TEST(SimulateProcessor, IncompleteTasksGetSentinel) {
    const auto inst = always_up(1, 5, 1, 1, 1, 4);
    const auto completion = vo::simulate_processor(inst, 0, {0}, nullptr);
    EXPECT_GT(completion[0], inst.horizon);
}

TEST(SimulateProcessor, EmittedActionsValidate) {
    auto inst = always_up(1, 2, 2, 2, 3, 30);
    std::vector<vo::SlotAction> actions;
    const auto completion = vo::simulate_processor(inst, 0, {0, 1, 2}, &actions);
    EXPECT_LE(completion.back(), inst.horizon);
    vo::Schedule sched;
    sched.actions.push_back(actions);
    const auto res = vo::validate(inst, sched);
    EXPECT_TRUE(res.valid) << res.error;
    EXPECT_TRUE(res.all_done);
    EXPECT_EQ(res.makespan, completion.back());
}

TEST(MctOffline, SpreadsTasksAcrossEqualProcessors) {
    const auto inst = always_up(2, 2, 1, 1, 2, 20);
    const auto res = vo::mct_offline(inst);
    ASSERT_TRUE(res.feasible);
    EXPECT_EQ(res.assignment[0].size(), 1u);
    EXPECT_EQ(res.assignment[1].size(), 1u);
    EXPECT_EQ(res.makespan, 4);
}

TEST(MctOffline, ScheduleValidates) {
    const auto inst = always_up(3, 2, 2, 1, 5, 40);
    const auto res = vo::mct_offline(inst);
    ASSERT_TRUE(res.feasible);
    const auto v = vo::validate(inst, res.schedule);
    EXPECT_TRUE(v.valid) << v.error;
    EXPECT_TRUE(v.all_done);
    EXPECT_EQ(v.makespan, res.makespan);
}

TEST(MctOffline, PrefersFasterProcessor) {
    auto inst = always_up(2, 1, 1, 1, 1, 20);
    inst.platform.w = {5, 1};
    const auto res = vo::mct_offline(inst);
    ASSERT_TRUE(res.feasible);
    EXPECT_TRUE(res.assignment[0].empty());
    EXPECT_EQ(res.assignment[1].size(), 1u);
}

TEST(MctOffline, AvoidsReclaimedProcessor) {
    auto inst = always_up(2, 1, 1, 1, 1, 20);
    inst.states = vo::states_from_strings(
        {"rrrrrrrrrruuuuuuuuuu", "uuuuuuuuuuuuuuuuuuuu"});
    const auto res = vo::mct_offline(inst);
    ASSERT_TRUE(res.feasible);
    EXPECT_EQ(res.assignment[1].size(), 1u);
    EXPECT_EQ(res.makespan, 3);
}

TEST(MctOffline, InfeasibleReportsSentinel) {
    auto inst = always_up(1, 10, 1, 1, 2, 5);
    const auto res = vo::mct_offline(inst);
    EXPECT_FALSE(res.feasible);
    EXPECT_EQ(res.makespan, inst.horizon + 1);
}

// Proposition 2: with unbounded ncom, MCT is optimal.  Cross-check against
// the exact solver on random small 2-state instances.
class MctOptimality : public ::testing::TestWithParam<int> {};

TEST_P(MctOptimality, MatchesExactSolverWithUnboundedNcom) {
    const auto inst = random_two_state(/*p=*/2, /*m=*/3, /*horizon=*/16,
                                       static_cast<std::uint64_t>(GetParam()));
    const auto mct = vo::mct_offline(inst);
    const auto exact = vo::solve_exact(inst, 10'000'000);
    ASSERT_TRUE(exact.proven) << "node cap hit";
    if (exact.feasible) {
        ASSERT_TRUE(mct.feasible)
            << "MCT infeasible where exact found " << exact.makespan;
        EXPECT_EQ(mct.makespan, exact.makespan) << "seed " << GetParam();
    } else {
        EXPECT_FALSE(mct.feasible);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MctOptimality, ::testing::Range(0, 12));
