/// Tests for the sojourn-distribution abstraction (Weibull + lognormal),
/// the lognormal desktop-grid parameterization, the sweep per-dimension
/// breakdowns, and the offline schedule renderer.

#include <gtest/gtest.h>

#include "exp/sweep.hpp"
#include "offline/mct.hpp"
#include "offline/render.hpp"
#include "trace/replay.hpp"
#include "trace/semi_markov.hpp"
#include "trace/sojourn.hpp"
#include "util/rng.hpp"

namespace vt = volsched::trace;
namespace vo = volsched::offline;
namespace ve = volsched::exp;

TEST(Sojourn, WeibullMeanMatchesFormula) {
    const auto d = vt::SojournDist::weibull_with_mean(0.7, 120.0);
    EXPECT_NEAR(d.mean(), 120.0, 1e-9);
    volsched::util::Rng rng(1);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(d.sample_slots(rng));
    EXPECT_NEAR(sum / n, 120.5, 2.0); // +~0.5 ceil bias
}

TEST(Sojourn, LogNormalMeanMatchesFormula) {
    const auto d = vt::SojournDist::lognormal_with_mean(1.0, 80.0);
    EXPECT_NEAR(d.mean(), 80.0, 1e-9);
    volsched::util::Rng rng(2);
    double sum = 0;
    const int n = 400000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(d.sample_slots(rng));
    EXPECT_NEAR(sum / n, 80.5, 2.5);
}

TEST(Sojourn, SamplesArePositive) {
    for (const auto d : {vt::SojournDist::weibull_with_mean(0.5, 3.0),
                         vt::SojournDist::lognormal_with_mean(2.0, 3.0)}) {
        volsched::util::Rng rng(3);
        for (int i = 0; i < 2000; ++i) EXPECT_GE(d.sample_slots(rng), 1);
    }
}

TEST(Sojourn, LogNormalIsHeavierTailedThanItsMedian) {
    // For lognormal, mean > median; most samples fall below the mean.
    const auto d = vt::SojournDist::lognormal_with_mean(1.5, 100.0);
    volsched::util::Rng rng(4);
    int below = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) below += (d.sample_slots(rng) < 100);
    EXPECT_GT(below, n / 2);
}

TEST(Sojourn, RejectsBadParameters) {
    EXPECT_THROW(vt::SojournDist::weibull_with_mean(0.0, 5.0),
                 std::invalid_argument);
    EXPECT_THROW(vt::SojournDist::lognormal_with_mean(1.0, -5.0),
                 std::invalid_argument);
    vt::SojournDist bad;
    bad.scale = 0.0;
    EXPECT_FALSE(bad.valid());
}

TEST(Sojourn, LegacyWeibullWrapperMatchesDist) {
    vt::Weibull w{0.9, 40.0};
    volsched::util::Rng r1(5), r2(5);
    const auto d = w.dist();
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(w.sample_slots(r1), d.sample_slots(r2));
}

TEST(LogNormalFleet, ParamsValidAndRunnable) {
    const auto params = vt::desktop_grid_params_lognormal(60.0);
    EXPECT_TRUE(params.valid());
    EXPECT_THROW(vt::desktop_grid_params_lognormal(0.1),
                 std::invalid_argument);
    vt::SemiMarkovAvailability model(params);
    volsched::util::Rng rng(6);
    auto s = model.initial_state(rng);
    std::array<long long, 3> counts{};
    for (int t = 0; t < 100000; ++t) {
        s = model.next_state(s, rng);
        ++counts[static_cast<int>(s)];
    }
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[0], counts[2]);
    EXPECT_TRUE(model.equivalent_markov_matrix().validate(1e-9).empty());
}

TEST(SweepBreakdowns, PartitionsMatchOverall) {
    ve::SweepConfig cfg;
    cfg.tasks_values = {3, 6};
    cfg.ncom_values = {2, 4};
    cfg.wmin_values = {1};
    cfg.scenarios_per_cell = 1;
    cfg.trials_per_scenario = 2;
    cfg.p = 5;
    cfg.run.iterations = 2;
    cfg.master_seed = 11;
    const auto result = ve::run_sweep(cfg, {"mct", "emct"});
    ASSERT_EQ(result.by_tasks.size(), 2u);
    ASSERT_EQ(result.by_ncom.size(), 2u);
    long long tasks_total = 0, ncom_total = 0;
    for (const auto& [k, t] : result.by_tasks) tasks_total += t.instances();
    for (const auto& [k, t] : result.by_ncom) ncom_total += t.instances();
    EXPECT_EQ(tasks_total, result.overall.instances());
    EXPECT_EQ(ncom_total, result.overall.instances());
    // Each tasks-cell holds exactly half the instances.
    for (const auto& [k, t] : result.by_tasks)
        EXPECT_EQ(t.instances(), result.overall.instances() / 2);
}

TEST(OfflineRender, ShowsPipelinePhases) {
    vo::OfflineInstance inst;
    inst.platform.w = {2};
    inst.platform.ncom = 1;
    inst.platform.t_prog = 1;
    inst.platform.t_data = 1;
    inst.num_tasks = 2;
    inst.horizon = 8;
    inst.states = vo::states_from_strings({"uuuuuuur"});
    const auto mct = vo::mct_offline(inst);
    ASSERT_TRUE(mct.feasible);
    const auto text = vo::render_schedule(inst, mct.schedule);
    // prog 0, data0 1, compute+data1 2, compute 3, compute1 4-5, idle, r.
    EXPECT_NE(text.find("P0"), std::string::npos);
    EXPECT_NE(text.find('|'), std::string::npos);
    EXPECT_NE(text.find('P'), std::string::npos);
    EXPECT_NE(text.find('B'), std::string::npos);
    EXPECT_NE(text.find('C'), std::string::npos);
    EXPECT_NE(text.find('r'), std::string::npos);
}

TEST(OfflineRender, MarksDownSlots) {
    vo::OfflineInstance inst;
    inst.platform.w = {1};
    inst.platform.ncom = 1;
    inst.platform.t_prog = 1;
    inst.platform.t_data = 1;
    inst.num_tasks = 1;
    inst.horizon = 4;
    inst.states = vo::states_from_strings({"udud"});
    const auto text = vo::render_schedule(inst, vo::Schedule::idle(inst));
    EXPECT_NE(text.find('d'), std::string::npos);
    EXPECT_NE(text.find('.'), std::string::npos);
}
