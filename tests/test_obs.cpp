/// Observability-layer suite (src/obs + exp/status): the load-bearing
/// invariant is that tracing and metrics are provably *non-perturbing* —
/// attaching a TraceRecorder (or installing a Registry) must leave every
/// existing output byte-identical, across the Markov, semi-Markov, and
/// checkpointed regimes and under both stepping cores.  Also pins the
/// Chrome-trace JSON schema (Perfetto loadability), the registry's
/// concurrency and rendering contracts, the status.json heartbeat
/// round-trip and torn-file tolerance, and the ExpectationCache counters
/// surfaced through RunMetrics.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/simulation_builder.hpp"
#include "ckpt/registry.hpp"
#include "core/factory.hpp"
#include "exp/campaign.hpp"
#include "exp/status.hpp"
#include "obs/registry.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace.hpp"
#include "sim/action_trace.hpp"
#include "sim/engine.hpp"
#include "sim/metrics_io.hpp"
#include "sim/timeline.hpp"
#include "support/fixtures.hpp"
#include "support/golden.hpp"
#include "trace/semi_markov.hpp"
#include "trace/sojourn.hpp"
#include "util/json.hpp"

namespace vc = volsched::core;
namespace ve = volsched::exp;
namespace vk = volsched::ckpt;
namespace vm = volsched::markov;
namespace vo = volsched::obs;
namespace vs = volsched::sim;
namespace vt = volsched::test;
namespace vj = volsched::util::json;

namespace {

// -------------------------------------------------------------------------
// Trace-on / trace-off byte identity.
// -------------------------------------------------------------------------

/// Run-length-encoded text form of an action trace — verbatim per-slot
/// content, so string equality is action-trace equality.
std::string actions_to_text(const vs::ActionTrace& t) {
    std::ostringstream os;
    for (int q = 0; q < t.procs(); ++q) {
        os << 'q' << q << ':';
        const auto& row = t.row(q);
        std::size_t i = 0;
        while (i < row.size()) {
            std::size_t j = i;
            while (j < row.size() && row[j].recv == row[i].recv &&
                   row[j].compute == row[i].compute)
                ++j;
            os << ' ' << (j - i) << 'x' << row[i].recv << '/'
               << row[i].compute;
            i = j;
        }
        os << '\n';
    }
    return os.str();
}

/// Every observable output of one run, rendered to bytes.
struct Snapshot {
    std::string metrics;
    std::string timeline;
    std::string actions;
    std::string trace_json; ///< empty for the untraced arm
};

/// The regimes under test; each builds and runs one simulation.
struct Regime {
    std::string label;
    // Runs the regime and fills `out`; `tracer` is null for the off arm.
    std::function<vs::RunMetrics(bool event_core, vo::TraceRecorder* tracer,
                                 vs::Timeline* tl, vs::ActionTrace* at)>
        run;
};

std::vector<Regime> regimes() {
    std::vector<Regime> rs;

    // Markov chains over a small heterogeneous platform (test_event_engine's
    // canonical fixture).
    rs.push_back({"markov", [](bool event_core, vo::TraceRecorder* tracer,
                               vs::Timeline* tl, vs::ActionTrace* at) {
                      vs::Platform pf;
                      pf.w = {2, 3, 4};
                      pf.ncom = 2;
                      pf.t_prog = 3;
                      pf.t_data = 1;
                      const std::vector<vm::MarkovChain> chains(
                          3, vt::chain3(0.35, 0.05, 0.10, 0.30, 0.15, 0.05));
                      vs::EngineConfig cfg = vt::audited_config(2, 4);
                      cfg.event_driven = event_core;
                      cfg.timeline = tl;
                      cfg.actions = at;
                      cfg.tracer = tracer;
                      const auto sim =
                          vs::Simulation::from_chains(pf, chains, cfg, 17);
                      const auto sched = vc::make_scheduler("mct");
                      return sim.run(*sched);
                  }});

    // Heavy-tailed semi-Markov sojourns: long absences exercise the event
    // core's elision (and the tracer's elided-range spans).
    rs.push_back({"semi-markov",
                  [](bool event_core, vo::TraceRecorder* tracer,
                     vs::Timeline* tl, vs::ActionTrace* at) {
                      using volsched::trace::SemiMarkovAvailability;
                      using volsched::trace::SemiMarkovParams;
                      using volsched::trace::SojournDist;
                      constexpr int kProcs = 3;
                      const auto pf = vs::Platform::homogeneous(
                          kProcs, /*w_all=*/6, /*ncom=*/2, /*t_prog=*/4,
                          /*t_data=*/1);
                      SemiMarkovParams params;
                      params.sojourn = {
                          SojournDist::weibull_with_mean(0.7, 10.0),
                          SojournDist::weibull_with_mean(0.9, 25.0),
                          SojournDist::weibull_with_mean(0.8, 120.0)};
                      params.jump[0] = {0.0, 0.4, 0.6};
                      params.jump[1] = {0.5, 0.0, 0.5};
                      params.jump[2] = {0.9, 0.1, 0.0};
                      const std::vector<vm::MarkovChain> beliefs(
                          kProcs,
                          vm::MarkovChain(SemiMarkovAvailability(params)
                                              .equivalent_markov_matrix()));
                      std::vector<std::unique_ptr<vm::AvailabilityModel>>
                          models;
                      for (int q = 0; q < kProcs; ++q)
                          models.push_back(
                              std::make_unique<SemiMarkovAvailability>(
                                  params));
                      vs::EngineConfig cfg = vt::audited_config(2, 4);
                      cfg.tracer = tracer;
                      auto sim = vs::Simulation::builder()
                                     .platform(pf)
                                     .models(std::move(models))
                                     .beliefs(beliefs)
                                     .config(cfg)
                                     .timeline(tl)
                                     .actions(at)
                                     .event_driven(event_core)
                                     .seed(23)
                                     .build();
                      const auto sched = vc::make_scheduler("emct");
                      return sim.run(*sched);
                  }});

    // Checkpointed regime: upload events and recoveries add the ckpt lane.
    rs.push_back({"checkpointed",
                  [](bool event_core, vo::TraceRecorder* tracer,
                     vs::Timeline* tl, vs::ActionTrace* at) {
                      vs::Platform pf;
                      pf.w = {4, 6, 8};
                      pf.ncom = 2;
                      pf.t_prog = 3;
                      pf.t_data = 1;
                      const std::vector<vm::MarkovChain> chains(
                          3, vt::chain3(0.55, 0.05, 0.20, 0.30, 0.25, 0.05));
                      const auto policy =
                          vk::CheckpointRegistry::instance().make("daly");
                      vs::EngineConfig cfg = vt::audited_config(2, 4);
                      cfg.checkpoint = policy.get();
                      cfg.checkpoint_cost = 2;
                      cfg.event_driven = event_core;
                      cfg.timeline = tl;
                      cfg.actions = at;
                      cfg.tracer = tracer;
                      const auto sim =
                          vs::Simulation::from_chains(pf, chains, cfg, 29);
                      const auto sched = vc::make_scheduler("mct");
                      return sim.run(*sched);
                  }});
    return rs;
}

Snapshot snapshot(const Regime& regime, bool event_core, bool traced) {
    vs::Timeline tl;
    vs::ActionTrace at;
    vo::TraceRecorder rec;
    const auto m =
        regime.run(event_core, traced ? &rec : nullptr, &tl, &at);
    Snapshot s;
    s.metrics = vs::metrics_to_json(m);
    s.timeline = tl.render();
    s.actions = actions_to_text(at);
    if (traced) s.trace_json = rec.json();
    return s;
}

// -------------------------------------------------------------------------
// Chrome-trace schema validation (what scripts/check_trace.py checks in CI,
// pinned here so the contract breaks loudly in ctest too).
// -------------------------------------------------------------------------

void validate_trace_json(const std::string& text, const std::string& label) {
    const auto doc = vj::Value::parse(text);
    ASSERT_TRUE(doc.is_object()) << label;
    EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms") << label;
    const auto& events = doc.at("traceEvents").items();
    ASSERT_FALSE(events.empty()) << label;

    bool seen_non_meta = false;
    // Open-interval bookkeeping per track: X spans on one tid must not
    // overlap (Perfetto renders overlap as nested slices — wrong here).
    std::map<long long, long long> track_end; // tid -> last span end ts
    long long prev_ts = -1;
    for (const auto& ev : events) {
        ASSERT_TRUE(ev.is_object()) << label;
        const std::string ph = ev.at("ph").as_string();
        ASSERT_TRUE(ph == "M" || ph == "X" || ph == "i")
            << label << ": unexpected phase " << ph;
        EXPECT_EQ(ev.at("pid").as_i64(), 0) << label;
        (void)ev.at("name").as_string();
        const long long tid = ev.at("tid").as_i64();
        const long long ts = ev.at("ts").as_i64();
        if (ph == "M") {
            // Metadata first: a thread_name arriving after events on its
            // track is honored inconsistently across viewers.
            EXPECT_FALSE(seen_non_meta)
                << label << ": metadata event after a trace event";
            continue;
        }
        seen_non_meta = true;
        EXPECT_GE(ts, 0) << label;
        EXPECT_GE(ts, prev_ts) << label << ": ts not monotone in file order";
        prev_ts = ts;
        if (ph == "X") {
            const long long dur = ev.at("dur").as_i64();
            EXPECT_GE(dur, 0) << label;
            auto [it, fresh] = track_end.try_emplace(tid, ts + dur);
            if (!fresh) {
                EXPECT_GE(ts, it->second)
                    << label << ": overlapping spans on tid " << tid;
                it->second = ts + dur;
            }
        } else {
            EXPECT_EQ(ev.at("s").as_string(), "t") << label;
        }
    }
    EXPECT_TRUE(seen_non_meta) << label << ": metadata only, no events";
}

} // namespace

// -------------------------------------------------------------------------
// The non-perturbation invariant.
// -------------------------------------------------------------------------

TEST(TraceIdentity, TracingIsByteInvisibleInAllRegimesAndBothCores) {
    for (const auto& regime : regimes()) {
        for (const bool event_core : {false, true}) {
            const std::string label =
                regime.label + (event_core ? "/event" : "/slot");
            const Snapshot off = snapshot(regime, event_core, false);
            const Snapshot on = snapshot(regime, event_core, true);
            EXPECT_EQ(off.metrics, on.metrics) << label;
            EXPECT_EQ(off.timeline, on.timeline) << label;
            EXPECT_EQ(off.actions, on.actions) << label;
            ASSERT_FALSE(on.trace_json.empty()) << label;
            validate_trace_json(on.trace_json, label);
        }
    }
}

TEST(TraceIdentity, TraceIsDeterministicAcrossRepeatedRuns) {
    const auto regime = regimes().front();
    const Snapshot a = snapshot(regime, true, true);
    const Snapshot b = snapshot(regime, true, true);
    EXPECT_EQ(a.trace_json, b.trace_json);
}

TEST(TraceIdentity, InstalledRegistryDoesNotPerturbResults) {
    // The registry seam is the other observer: flipping it on around a run
    // must be byte-invisible too.
    const auto regime = regimes().front();
    const Snapshot off = snapshot(regime, true, false);
    vo::Registry registry;
    vo::Registry::install(&registry);
    const Snapshot on = snapshot(regime, true, false);
    vo::Registry::install(nullptr);
    EXPECT_EQ(off.metrics, on.metrics);
    EXPECT_EQ(off.timeline, on.timeline);
    EXPECT_EQ(off.actions, on.actions);
}

// -------------------------------------------------------------------------
// Registry contracts.
// -------------------------------------------------------------------------

TEST(ObsRegistry, HandlesAreStableAndJsonIsDeterministic) {
    vo::Registry r;
    vo::Counter& c = r.counter("b.count");
    vo::Gauge& g = r.gauge("a.level");
    vo::Histogram& h = r.histogram("c.lat_us");
    c.add(3);
    g.set(-2);
    h.observe(0);
    h.observe(5);
    // Registering more names must not move existing handles.
    for (int i = 0; i < 64; ++i) r.counter("extra." + std::to_string(i));
    EXPECT_EQ(&c, &r.counter("b.count"));
    EXPECT_EQ(&g, &r.gauge("a.level"));
    EXPECT_EQ(&h, &r.histogram("c.lat_us"));
    EXPECT_EQ(c.value(), 3);
    EXPECT_EQ(g.value(), -2);
    EXPECT_EQ(h.count(), 2);
    EXPECT_EQ(h.sum(), 5);
    EXPECT_EQ(h.max(), 5);

    const std::string json = r.to_json();
    const auto doc = vj::Value::parse(json);
    EXPECT_EQ(doc.at("b.count").as_i64(), 3);
    EXPECT_EQ(doc.at("a.level").as_i64(), -2);
    EXPECT_EQ(doc.at("c.lat_us").at("count").as_i64(), 2);
    EXPECT_EQ(doc.at("c.lat_us").at("sum").as_i64(), 5);
    EXPECT_EQ(doc.at("c.lat_us").at("max").as_i64(), 5);
    EXPECT_EQ(json, r.to_json()) << "rendering must be reproducible";
}

TEST(ObsRegistry, ConcurrentRegistrationAndRecordingIsLossless) {
    vo::Registry r;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 5000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i)
        threads.emplace_back([&r, i] {
            // Each thread re-resolves shared names and pounds them,
            // interleaved with registering thread-private ones.
            for (int k = 0; k < kPerThread; ++k) {
                r.counter("shared.count").add(1);
                r.histogram("shared.lat").observe(k);
                if (k % 512 == 0)
                    r.gauge("private." + std::to_string(i)).set(k);
            }
        });
    for (auto& t : threads) t.join();
    EXPECT_EQ(r.counter("shared.count").value(),
              static_cast<long long>(kThreads) * kPerThread);
    EXPECT_EQ(r.histogram("shared.lat").count(),
              static_cast<long long>(kThreads) * kPerThread);
    EXPECT_EQ(r.histogram("shared.lat").max(), kPerThread - 1);
}

TEST(ObsRegistry, InstallSeamNestsAndRestores) {
    ASSERT_EQ(vo::Registry::active(), nullptr)
        << "tests assume no ambient registry";
    vo::Registry outer, inner;
    EXPECT_EQ(vo::Registry::install(&outer), nullptr);
    EXPECT_EQ(vo::Registry::active(), &outer);
    EXPECT_EQ(vo::Registry::install(&inner), &outer);
    EXPECT_EQ(vo::Registry::install(nullptr), &inner);
    EXPECT_EQ(vo::Registry::active(), nullptr);
}

TEST(ObsStopwatch, MonotoneAndScopedTimerFeedsHistogram) {
    const std::int64_t a = vo::now_us();
    const std::int64_t b = vo::now_us();
    EXPECT_GE(b, a);
    vo::Histogram h;
    {
        vo::ScopedTimer t(&h);
    }
    { vo::ScopedTimer none(nullptr); } // null sink must be a no-op
    EXPECT_EQ(h.count(), 1);
    EXPECT_GE(h.max(), 0);
}

// -------------------------------------------------------------------------
// status.json heartbeat.
// -------------------------------------------------------------------------

TEST(ShardStatus, RoundTripsThroughJson) {
    vt::TempDir dir;
    ve::ShardStatus s;
    s.shard = 2;
    s.shards = 4;
    s.jobs_done = 7;
    s.jobs_total = 12;
    s.instances_done = 21;
    s.queue_depth = 3;
    s.emitter_lag = 5;
    s.window = 8;
    s.state = "running";
    s.run = {7, 4200, 900};
    s.serialize = {7, 64, 12};
    s.fsync = {2, 2048, 1500};
    ve::write_status(dir.path(), s);

    const auto back = ve::read_status(dir.path());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->shard, 2);
    EXPECT_EQ(back->shards, 4);
    EXPECT_EQ(back->jobs_done, 7);
    EXPECT_EQ(back->jobs_total, 12);
    EXPECT_EQ(back->instances_done, 21);
    EXPECT_EQ(back->queue_depth, 3);
    EXPECT_EQ(back->emitter_lag, 5);
    EXPECT_EQ(back->window, 8);
    EXPECT_EQ(back->state, "running");
    EXPECT_EQ(back->run.count, 7);
    EXPECT_EQ(back->run.total_us, 4200);
    EXPECT_EQ(back->run.max_us, 900);
    EXPECT_EQ(back->serialize.count, 7);
    EXPECT_EQ(back->fsync.max_us, 1500);
}

TEST(ShardStatus, MissingAndTornFilesReadAsNoHeartbeat) {
    vt::TempDir dir;
    EXPECT_FALSE(ve::read_status(dir.path()).has_value()) << "missing";

    // A torn or foreign file must read as "no heartbeat", never throw:
    // a shard killed mid-write leaves whatever was last durable.
    const auto path = ve::status_path(dir.path());
    for (const std::string& torn :
         {std::string("{\"shard\":1,\"shards\":2,\"jobs_"), // truncated
          std::string("not json at all"), std::string(""),
          std::string("[1,2,3]")}) {
        vt::write_file(path, torn);
        EXPECT_FALSE(ve::read_status(dir.path()).has_value())
            << "content: " << torn;
    }
}

TEST(ShardStatus, CampaignHeartbeatReportsCompletion) {
    vt::TempDir dir;
    ve::CampaignConfig cfg;
    cfg.sweep.tasks_values = {3};
    cfg.sweep.ncom_values = {2};
    cfg.sweep.wmin_values = {1, 2};
    cfg.sweep.scenarios_per_cell = 2;
    cfg.sweep.trials_per_scenario = 2;
    cfg.sweep.p = 4;
    cfg.sweep.run.iterations = 2;
    cfg.sweep.master_seed = 7;
    cfg.sweep.threads = 2;
    cfg.heuristics = {"mct", "emct"};
    cfg.directory = dir.path();
    cfg.checkpoint_jobs = 2;
    cfg.heartbeat = true;

    const auto outcome = ve::run_campaign(cfg);
    ASSERT_TRUE(outcome.complete);

    const auto status = ve::read_status(dir.path());
    ASSERT_TRUE(status.has_value()) << "heartbeat file missing";
    EXPECT_EQ(status->state, "done");
    EXPECT_EQ(status->jobs_done, outcome.jobs_done);
    EXPECT_EQ(status->jobs_total, outcome.jobs_total);
    EXPECT_EQ(status->instances_done, outcome.instances_done);
    EXPECT_EQ(status->queue_depth, 0);
    EXPECT_EQ(status->emitter_lag, 0);
    EXPECT_GT(status->run.count, 0) << "no run-stage samples";
    EXPECT_GE(status->run.total_us, 0);
    EXPECT_GT(status->fsync.count, 0) << "no checkpoint flush samples";
}

TEST(ShardStatus, HeartbeatDoesNotPerturbCampaignRecords) {
    // The records stream must be byte-identical with the heartbeat on or
    // off — the observer-only contract at campaign scale.
    auto base = [](const std::filesystem::path& dir) {
        ve::CampaignConfig cfg;
        cfg.sweep.tasks_values = {3};
        cfg.sweep.ncom_values = {2};
        cfg.sweep.wmin_values = {1};
        cfg.sweep.scenarios_per_cell = 2;
        cfg.sweep.trials_per_scenario = 2;
        cfg.sweep.p = 4;
        cfg.sweep.run.iterations = 2;
        cfg.sweep.master_seed = 11;
        cfg.sweep.threads = 2;
        cfg.heuristics = {"mct", "emct"};
        cfg.directory = dir;
        cfg.checkpoint_jobs = 2;
        return cfg;
    };
    vt::TempDir with, without;
    auto on = base(with.path());
    on.heartbeat = true;
    auto off = base(without.path());
    const auto a = ve::run_campaign(on);
    const auto b = ve::run_campaign(off);
    ASSERT_TRUE(a.complete);
    ASSERT_TRUE(b.complete);
    EXPECT_EQ(vt::read_file(a.jsonl_path), vt::read_file(b.jsonl_path));
}

// -------------------------------------------------------------------------
// ExpectationCache counters surfaced through RunMetrics.
// -------------------------------------------------------------------------

TEST(CacheCounters, GreedyRunReportsCacheTrafficInMetricsAndJson) {
    vs::Platform pf;
    pf.w = {2, 3, 4};
    pf.ncom = 2;
    pf.t_prog = 3;
    pf.t_data = 1;
    const std::vector<vm::MarkovChain> chains(
        3, vt::chain3(0.35, 0.05, 0.10, 0.30, 0.15, 0.05));
    const auto sim = vs::Simulation::from_chains(
        pf, chains, vt::audited_config(2, 4), 17);
    const auto sched = vc::make_scheduler("emct");
    const auto m = sim.run(*sched);
    EXPECT_GT(m.cache_hits + m.cache_misses, 0)
        << "a scoring heuristic must touch the expectation cache";
    EXPECT_GE(m.cache_hits, 0);
    EXPECT_GE(m.cache_misses, 0);
    EXPECT_GE(m.cache_invalidations, 0);

    const auto doc = vj::Value::parse(vs::metrics_to_json(m));
    EXPECT_EQ(doc.at("cache_hits").as_i64(), m.cache_hits);
    EXPECT_EQ(doc.at("cache_misses").as_i64(), m.cache_misses);
    EXPECT_EQ(doc.at("cache_invalidations").as_i64(),
              m.cache_invalidations);
}

TEST(CacheCounters, NonScoringSchedulerReportsZero) {
    vs::Platform pf;
    pf.w = {2, 3};
    pf.ncom = 2;
    pf.t_prog = 3;
    pf.t_data = 1;
    const std::vector<vm::MarkovChain> chains(2, vt::always_up_chain());
    const auto sim = vs::Simulation::from_chains(
        pf, chains, vt::audited_config(1, 3), 5);
    const auto sched = vc::make_scheduler("random");
    const auto m = sim.run(*sched);
    EXPECT_EQ(m.cache_hits, 0);
    EXPECT_EQ(m.cache_misses, 0);
    EXPECT_EQ(m.cache_invalidations, 0);
}
