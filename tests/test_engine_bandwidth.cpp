/// Deterministic tests of the bounded multi-port bandwidth semantics:
/// suspended transfers release the channel, in-flight transfers resume in
/// FIFO order, and the two-state reduction preserves exact optima.

#include <gtest/gtest.h>

#include <memory>

#include "core/factory.hpp"
#include "offline/exact.hpp"
#include "offline/instance.hpp"
#include "markov/gen.hpp"
#include "sim/engine.hpp"
#include "trace/replay.hpp"
#include "util/rng.hpp"

namespace vs = volsched::sim;
namespace vm = volsched::markov;
namespace vt = volsched::trace;
namespace vo = volsched::offline;

namespace {

vs::Simulation make_replay_sim(vs::Platform pf,
                               const std::vector<std::string>& rows,
                               vs::EngineConfig cfg) {
    std::vector<std::unique_ptr<vm::AvailabilityModel>> models;
    for (const auto& row : rows) {
        vt::RecordedTrace tr;
        for (char c : row) tr.states.push_back(vm::state_from_code(c));
        models.push_back(std::make_unique<vt::ReplayAvailability>(
            tr, vt::ReplayAvailability::EndPolicy::HoldLast));
    }
    return vs::Simulation(std::move(pf), std::move(models), {}, cfg, 1);
}

vs::EngineConfig config(int iterations, int tasks) {
    vs::EngineConfig cfg;
    cfg.iterations = iterations;
    cfg.tasks_per_iteration = tasks;
    cfg.replica_cap = 0;
    cfg.max_slots = 100000;
    cfg.audit = true;
    return cfg;
}

} // namespace

TEST(Bandwidth, SuspendedTransferReleasesTheChannel) {
    // p=2, ncom=1, w=1, Tprog=1, Tdata=2, m=2.  P0 enrols first (prog slot
    // 0, data slot 1) then is RECLAIMED from slot 2: its half-finished data
    // transfer suspends, freeing the channel for P1's full pipeline (prog
    // slot 2, data slots 3-4, compute slot 5 -> task1 done end slot 5).
    // P0 resumes at slot 9: data slot 9, compute slot 10 -> makespan 11.
    vs::Platform pf = vs::Platform::homogeneous(2, 1, 1, 1, 2);
    auto sim = make_replay_sim(
        pf, {"uurrrrrrruuuuu", std::string(14, 'u')}, config(1, 2));
    const auto sched = volsched::core::make_scheduler("mct");
    const auto metrics = sim.run(*sched);
    ASSERT_TRUE(metrics.completed);
    EXPECT_EQ(metrics.makespan, 11);
}

TEST(Bandwidth, ResumedTransfersAdvanceInFifoOrder) {
    // p=2, ncom=1, w=1, Tprog=3, Tdata=1, m=2.
    // P0: prog slot 0 (started first), RECLAIMED slots 1-2, UP after.
    // P1: enrols slot 1 while P0 is suspended.
    // From slot 3 both transfers are live; P0's (older) wins the channel:
    // P0 prog 3-4, P1 prog resumes 5; data P0 6, data P1 7; computes 7 and
    // 8 -> makespan 9.
    vs::Platform pf = vs::Platform::homogeneous(2, 1, 1, 3, 1);
    auto sim = make_replay_sim(pf, {"urruuuuuuu", std::string(10, 'u')},
                               config(1, 2));
    const auto sched = volsched::core::make_scheduler("mct");
    const auto metrics = sim.run(*sched);
    ASSERT_TRUE(metrics.completed);
    EXPECT_EQ(metrics.makespan, 9);
}

TEST(Bandwidth, NcomLimitsScaleEnrolmentLatency) {
    // p=4, identical workers, m=4: doubling ncom halves the enrolment wave.
    auto run_with = [](int ncom) {
        vs::Platform pf = vs::Platform::homogeneous(4, 2, ncom, 2, 1);
        auto sim = make_replay_sim(
            pf, {"u", "u", "u", "u"},
            config(1, 4));
        const auto sched = volsched::core::make_scheduler("mct");
        const auto metrics = sim.run(*sched);
        EXPECT_TRUE(metrics.completed);
        return metrics.makespan;
    };
    const auto serial = run_with(1);
    const auto dual = run_with(2);
    const auto full = run_with(4);
    EXPECT_GT(serial, dual);
    EXPECT_GE(dual, full);
    // Full parallel enrolment: prog 0-1, data 2, compute 3-4 -> 5 slots.
    EXPECT_EQ(full, 5);
}

TEST(Bandwidth, TransfersNeverExceedNcomTimesMakespan) {
    volsched::util::Rng rng(123);
    for (int trial = 0; trial < 5; ++trial) {
        const auto chains = vm::generate_chains(10, rng);
        vs::Platform pf;
        pf.ncom = 1 + trial;
        pf.t_prog = 4;
        pf.t_data = 2;
        for (int q = 0; q < 10; ++q)
            pf.w.push_back(1 + static_cast<int>(rng.uniform_int(0, 9)));
        auto cfg = config(2, 6);
        cfg.replica_cap = 2;
        const auto sim = vs::Simulation::from_chains(pf, chains, cfg,
                                                     900 + trial);
        const auto sched = volsched::core::make_scheduler("emct*");
        const auto metrics = sim.run(*sched);
        ASSERT_TRUE(metrics.completed);
        EXPECT_LE(metrics.transfer_slots,
                  static_cast<long long>(pf.ncom) * metrics.makespan);
    }
}

// Section 4's DOWN-elimination preserves the exact optimum on instances
// small enough for the solver (the reduction's whole point).
class ReductionPreservesOptimum : public ::testing::TestWithParam<int> {};

TEST_P(ReductionPreservesOptimum, ExactOptimaMatch) {
    volsched::util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 300);
    vo::OfflineInstance inst;
    inst.num_tasks = 2;
    inst.horizon = 12;
    inst.platform.ncom = 2;
    inst.platform.t_prog = 1;
    inst.platform.t_data = 1;
    for (int q = 0; q < 2; ++q) {
        inst.platform.w.push_back(1);
        std::vector<vm::ProcState> row;
        for (int t = 0; t < inst.horizon; ++t) {
            const double roll = rng.uniform();
            row.push_back(roll < 0.6   ? vm::ProcState::Up
                          : roll < 0.8 ? vm::ProcState::Reclaimed
                                       : vm::ProcState::Down);
        }
        inst.states.push_back(std::move(row));
    }
    const auto reduced = vo::two_state_reduction(inst);
    // The reduced instance may have more processors; ncom must cover the
    // same relative bound (unbounded here: ncom = p in both).
    vo::OfflineInstance reduced_unbounded = reduced;
    reduced_unbounded.platform.ncom = reduced.num_procs();
    vo::OfflineInstance original_unbounded = inst;
    original_unbounded.platform.ncom = inst.num_procs();

    const auto a = vo::solve_exact(original_unbounded, 30'000'000);
    const auto b = vo::solve_exact(reduced_unbounded, 30'000'000);
    ASSERT_TRUE(a.proven);
    ASSERT_TRUE(b.proven);
    EXPECT_EQ(a.feasible, b.feasible) << "seed " << GetParam();
    if (a.feasible) {
        EXPECT_EQ(a.makespan, b.makespan) << "seed " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionPreservesOptimum,
                         ::testing::Range(0, 8));
