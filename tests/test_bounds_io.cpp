/// Tests for the off-line makespan lower bounds, chain (de)serialization,
/// and the extension heuristics (threshold exclusion + hybrid).

#include <gtest/gtest.h>

#include <sstream>

#include "core/extensions.hpp"
#include "core/factory.hpp"
#include "markov/gen.hpp"
#include "markov/io.hpp"
#include "offline/bounds.hpp"
#include "offline/exact.hpp"
#include "sim/engine.hpp"
#include "support/fixtures.hpp"
#include "util/rng.hpp"

namespace vo = volsched::offline;
namespace vm = volsched::markov;
namespace vc = volsched::core;
namespace vs = volsched::sim;

namespace {

vo::OfflineInstance always_up(int p, int w, int ncom, int t_prog, int t_data,
                              int m, int horizon) {
    vo::OfflineInstance inst;
    inst.platform.w.assign(static_cast<std::size_t>(p), w);
    inst.platform.ncom = ncom;
    inst.platform.t_prog = t_prog;
    inst.platform.t_data = t_data;
    inst.num_tasks = m;
    inst.horizon = horizon;
    inst.states.assign(static_cast<std::size_t>(p),
                       std::vector<vm::ProcState>(
                           static_cast<std::size_t>(horizon),
                           vm::ProcState::Up));
    return inst;
}

} // namespace

TEST(Bounds, CommunicationBoundIsTightOnDataBoundPipeline) {
    // p=1, w=1, Tprog=1, Tdata=3, m=3: exact optimum 11 = (1+9)/1 + 1.
    const auto inst = always_up(1, 1, 1, 1, 3, 3, 20);
    EXPECT_EQ(vo::communication_lower_bound(inst), 11);
    const auto exact = vo::solve_exact(inst);
    ASSERT_TRUE(exact.feasible);
    EXPECT_EQ(exact.makespan, vo::communication_lower_bound(inst));
}

TEST(Bounds, ComputeBoundIsTightOnComputeBoundPlatform) {
    // One processor, w=4, m=3: capacity reaches 3 tasks at slot 12.
    const auto inst = always_up(1, 4, 1, 1, 1, 3, 30);
    EXPECT_EQ(vo::compute_lower_bound(inst), 12);
}

TEST(Bounds, ComputeBoundSeesReclaimedGaps) {
    auto inst = always_up(1, 2, 1, 1, 1, 1, 10);
    inst.states = vo::states_from_strings({"rrrruuuuuu"});
    // First two UP slots are 4 and 5 -> one task possible at slot 6.
    EXPECT_EQ(vo::compute_lower_bound(inst), 6);
}

TEST(Bounds, InfeasibleHorizonDetectedWithoutSearch) {
    auto inst = always_up(1, 10, 1, 1, 1, 3, 8); // needs >= 30 compute slots
    EXPECT_GT(vo::compute_lower_bound(inst), inst.horizon);
    const auto exact = vo::solve_exact(inst);
    EXPECT_TRUE(exact.proven);
    EXPECT_FALSE(exact.feasible);
    EXPECT_EQ(exact.nodes, 0); // pruned before any search
}

// Property: the bound never exceeds the exact optimum.
class BoundProperty : public ::testing::TestWithParam<int> {};

TEST_P(BoundProperty, NeverExceedsExactOptimum) {
    volsched::util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 900);
    vo::OfflineInstance inst;
    inst.num_tasks = 2 + static_cast<int>(rng.uniform_int(0, 1));
    inst.horizon = 16;
    inst.platform.ncom = 1 + static_cast<int>(rng.uniform_int(0, 1));
    inst.platform.t_prog = 1 + static_cast<int>(rng.uniform_int(0, 2));
    inst.platform.t_data = 1;
    for (int q = 0; q < 2; ++q) {
        inst.platform.w.push_back(1 + static_cast<int>(rng.uniform_int(0, 1)));
        std::vector<vm::ProcState> row;
        for (int t = 0; t < inst.horizon; ++t)
            row.push_back(rng.bernoulli(0.8) ? vm::ProcState::Up
                                             : vm::ProcState::Reclaimed);
        inst.states.push_back(std::move(row));
    }
    const auto exact = vo::solve_exact(inst, 20'000'000);
    if (!exact.proven || !exact.feasible) return;
    EXPECT_LE(vo::makespan_lower_bound(inst), exact.makespan)
        << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundProperty, ::testing::Range(0, 12));

TEST(MarkovIo, RoundTripsMatricesExactly) {
    volsched::util::Rng rng(5);
    std::vector<vm::TransitionMatrix> matrices;
    for (int i = 0; i < 6; ++i) matrices.push_back(vm::generate_matrix(rng));
    std::stringstream ss;
    vm::write_matrices(ss, matrices);
    const auto parsed = vm::read_matrices(ss);
    ASSERT_EQ(parsed.size(), matrices.size());
    for (std::size_t k = 0; k < matrices.size(); ++k)
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                EXPECT_DOUBLE_EQ(
                    parsed[k](static_cast<vm::ProcState>(i),
                              static_cast<vm::ProcState>(j)),
                    matrices[k](static_cast<vm::ProcState>(i),
                                static_cast<vm::ProcState>(j)));
}

TEST(MarkovIo, ReadChainsValidates) {
    volsched::util::Rng rng(7);
    std::stringstream ss;
    vm::write_matrices(ss, {vm::generate_matrix(rng)});
    const auto chains = vm::read_chains(ss);
    ASSERT_EQ(chains.size(), 1u);
    EXPECT_NEAR(chains[0].stationary().pi_u + chains[0].stationary().pi_r +
                    chains[0].stationary().pi_d,
                1.0, 1e-12);
}

TEST(MarkovIo, RejectsMalformedLines) {
    std::stringstream short_line("0.5 0.5\n");
    EXPECT_THROW(vm::read_matrices(short_line), std::invalid_argument);
    std::stringstream long_line(
        "0.9 0.05 0.05 0.9 0.05 0.05 0.9 0.05 0.05 0.1\n");
    EXPECT_THROW(vm::read_matrices(long_line), std::invalid_argument);
    std::stringstream bad_rows("0.5 0.1 0.1 0.9 0.05 0.05 0.9 0.05 0.05\n");
    EXPECT_THROW(vm::read_matrices(bad_rows), std::invalid_argument);
}

TEST(MarkovIo, SkipsComments) {
    std::stringstream ss(
        "# header\n0.9 0.05 0.05 0.9 0.05 0.05 0.9 0.05 0.05\n");
    EXPECT_EQ(vm::read_matrices(ss).size(), 1u);
}

// ---- extension heuristics ----------------------------------------------

namespace {

/// ViewFixture with the extension-test platform shape (w=3) and the view
/// pre-finalized, matching the historical MiniView helper.
struct MiniView : volsched::test::ViewFixture {
    explicit MiniView(std::vector<vm::MarkovChain> cs)
        : volsched::test::ViewFixture(std::move(cs), /*w=*/3) {
        finalize();
    }
};

vm::MarkovChain chain_with_pi_u(double self_up) {
    // Tune pi_u via the UP self-probability (rest split evenly).
    const double other = 0.5 * (1.0 - self_up);
    return vm::MarkovChain(vm::TransitionMatrix({{{self_up, other, other},
                                                  {0.5, 0.4, 0.1},
                                                  {0.5, 0.1, 0.4}}}));
}

} // namespace

TEST(Threshold, ExcludesLowAvailabilityProcessors) {
    // P0 mostly DOWN/RECLAIMED (pi_u small), P1 mostly UP but slower CT.
    MiniView f({chain_with_pi_u(0.2), chain_with_pi_u(0.98)});
    f.procs[0].w = 1; // P0 is the faster machine: MCT would take it
    f.view.procs = f.procs;
    std::vector<int> nq(2, 0);
    volsched::util::Rng rng(1);
    auto plain = vc::make_scheduler("mct");
    EXPECT_EQ(plain->select(f.view, std::vector<vs::ProcId>{0, 1}, nq, rng),
              0);
    auto thr = vc::make_scheduler("thr70:mct");
    EXPECT_EQ(thr->select(f.view, std::vector<vs::ProcId>{0, 1}, nq, rng), 1);
}

TEST(Threshold, FallsBackWhenAllExcluded) {
    MiniView f({chain_with_pi_u(0.2), chain_with_pi_u(0.3)});
    std::vector<int> nq(2, 0);
    volsched::util::Rng rng(2);
    auto thr = vc::make_scheduler("thr99:mct");
    const auto pick =
        thr->select(f.view, std::vector<vs::ProcId>{0, 1}, nq, rng);
    EXPECT_TRUE(pick == 0 || pick == 1);
}

TEST(Threshold, NameEncodesParameters) {
    auto thr = vc::make_scheduler("thr50:emct");
    EXPECT_EQ(thr->name(), "thr50:emct");
}

TEST(Threshold, RejectsMalformedNames) {
    EXPECT_THROW(vc::make_scheduler("thr:mct"), std::invalid_argument);
    EXPECT_THROW(vc::make_scheduler("thr500:mct"), std::invalid_argument);
    EXPECT_THROW(vc::make_scheduler("thr50:"), std::invalid_argument);
    EXPECT_THROW(vc::make_scheduler("thr50"), std::invalid_argument);
}

TEST(Hybrid, PrefersSurvivableProcessorDespiteSlowerSpeed) {
    // P0 fast but crash-prone; P1 a bit slower but safe.  The restart-aware
    // score E/P picks P1 once the crash risk outweighs the speed edge.
    const vm::MarkovChain risky(vm::TransitionMatrix({{{0.80, 0.0, 0.20},
                                                       {0.5, 0.4, 0.1},
                                                       {0.5, 0.1, 0.4}}}));
    const vm::MarkovChain safe(vm::TransitionMatrix({{{0.999, 0.0005, 0.0005},
                                                      {0.5, 0.4, 0.1},
                                                      {0.5, 0.1, 0.4}}}));
    MiniView f({risky, safe});
    f.procs[0].w = 8;
    f.procs[1].w = 10;
    f.view.procs = f.procs;
    std::vector<int> nq(2, 0);
    volsched::util::Rng rng(3);
    auto mct = vc::make_scheduler("mct");
    EXPECT_EQ(mct->select(f.view, std::vector<vs::ProcId>{0, 1}, nq, rng), 0);
    auto hybrid = vc::make_scheduler("hybrid");
    EXPECT_EQ(hybrid->select(f.view, std::vector<vs::ProcId>{0, 1}, nq, rng),
              1);
}

TEST(Extensions, AllNamesConstructAndComplete) {
    volsched::util::Rng rng(11);
    const auto chains = vm::generate_chains(6, rng);
    vs::Platform pf;
    pf.ncom = 2;
    pf.t_prog = 5;
    pf.t_data = 1;
    for (int q = 0; q < 6; ++q)
        pf.w.push_back(1 + static_cast<int>(rng.uniform_int(0, 9)));
    vs::EngineConfig cfg;
    cfg.iterations = 2;
    cfg.tasks_per_iteration = 5;
    cfg.audit = true;
    const auto sim = vs::Simulation::from_chains(pf, chains, cfg, 17);
    for (const auto& name : vc::extension_heuristic_names()) {
        const auto sched = vc::make_scheduler(name);
        EXPECT_EQ(sched->name(), name);
        EXPECT_TRUE(sim.run(*sched).completed) << name;
    }
}

TEST(PerProcMetrics, AccountingSumsMatchTotals) {
    volsched::util::Rng rng(13);
    const auto chains = vm::generate_chains(8, rng);
    vs::Platform pf;
    pf.ncom = 3;
    pf.t_prog = 4;
    pf.t_data = 1;
    for (int q = 0; q < 8; ++q)
        pf.w.push_back(1 + static_cast<int>(rng.uniform_int(0, 9)));
    vs::EngineConfig cfg;
    cfg.iterations = 3;
    cfg.tasks_per_iteration = 6;
    cfg.replica_cap = 2;
    cfg.audit = true;
    const auto sim = vs::Simulation::from_chains(pf, chains, cfg, 23);
    const auto sched = vc::make_scheduler("emct*");
    const auto m = sim.run(*sched);
    ASSERT_TRUE(m.completed);
    ASSERT_EQ(m.per_proc.size(), 8u);
    long long tasks = 0, compute = 0, transfer = 0, downs = 0;
    for (const auto& pp : m.per_proc) {
        tasks += pp.tasks_completed;
        compute += pp.compute_slots;
        transfer += pp.transfer_slots;
        downs += pp.down_events;
        EXPECT_LE(pp.up_slots, m.makespan);
    }
    EXPECT_EQ(tasks, m.tasks_completed);
    EXPECT_EQ(compute, m.compute_slots);
    EXPECT_EQ(transfer, m.transfer_slots);
    EXPECT_EQ(downs, m.down_events);
}
