/// Realized-trace layer (markov/realized_trace.hpp): the property the whole
/// engine refactor rests on is that RLE replay is **bit-identical** to live
/// per-slot model sampling for every AvailabilityModel — Markov (both
/// InitialState modes), recorded-trace replay (both end policies), and
/// semi-Markov — and that realizations are a pure function of the seed, not
/// of how (or how often) the trace is queried.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "api/simulation_builder.hpp"
#include "core/factory.hpp"
#include "exp/scenario.hpp"
#include "markov/availability.hpp"
#include "markov/realized_trace.hpp"
#include "support/fixtures.hpp"
#include "trace/replay.hpp"
#include "trace/semi_markov.hpp"
#include "util/rng.hpp"

namespace vm = volsched::markov;
namespace vs = volsched::sim;
namespace ve = volsched::exp;
namespace vtr = volsched::trace;
namespace vt = volsched::test;
namespace vu = volsched::util;

namespace {

constexpr long long kSlots = 4000;
constexpr std::uint64_t kSeed = 20260730;

/// The engine's historical sampling loop: one initial_state draw, then one
/// next_state draw per slot, on the processor's private stream.
std::vector<vm::ProcState> live_sample(const vm::AvailabilityModel& prototype,
                                       std::uint64_t stream_seed,
                                       long long slots) {
    std::vector<vm::ProcState> out;
    out.reserve(static_cast<std::size_t>(slots));
    const auto model = prototype.clone();
    vu::Rng rng(stream_seed);
    vm::ProcState s = model->initial_state(rng);
    out.push_back(s);
    for (long long t = 1; t < slots; ++t) {
        s = model->next_state(s, rng);
        out.push_back(s);
    }
    return out;
}

/// One model of every kind the simulator supports, labelled for diagnostics.
std::vector<std::pair<std::string, std::unique_ptr<vm::AvailabilityModel>>>
all_model_kinds() {
    std::vector<std::pair<std::string, std::unique_ptr<vm::AvailabilityModel>>>
        models;
    models.emplace_back("markov/always-up-start",
                        std::make_unique<vm::MarkovAvailability>(
                            vt::flaky_chain(0.3), vm::InitialState::AlwaysUp));
    models.emplace_back(
        "markov/stationary-start",
        std::make_unique<vm::MarkovAvailability>(
            vt::crashy_chain(0.2), vm::InitialState::Stationary));
    models.emplace_back("markov/self-split",
                        std::make_unique<vm::MarkovAvailability>(
                            vt::self_split_chain(0.9)));

    vu::Rng record_rng(7);
    const auto recorded = vtr::record(
        vm::MarkovAvailability(vt::crashy_chain(0.15)), 257, record_rng);
    models.emplace_back("replay/loop",
                        std::make_unique<vtr::ReplayAvailability>(
                            recorded, vtr::ReplayAvailability::EndPolicy::Loop));
    models.emplace_back(
        "replay/hold-last",
        std::make_unique<vtr::ReplayAvailability>(
            recorded, vtr::ReplayAvailability::EndPolicy::HoldLast));

    models.emplace_back("semi-markov/weibull",
                        std::make_unique<vtr::SemiMarkovAvailability>(
                            vtr::desktop_grid_params(40.0)));
    models.emplace_back("semi-markov/lognormal",
                        std::make_unique<vtr::SemiMarkovAvailability>(
                            vtr::desktop_grid_params_lognormal(25.0)));
    return models;
}

/// Structural RLE invariants: contiguous coverage from slot 0, non-empty
/// segments, adjacent segments hold different states.
void expect_well_formed(const vm::RealizedTrace& trace,
                        const std::string& label) {
    const auto& segs = trace.segments();
    ASSERT_FALSE(segs.empty()) << label;
    long long expected_begin = 0;
    for (std::size_t i = 0; i < segs.size(); ++i) {
        EXPECT_EQ(segs[i].begin, expected_begin) << label << " segment " << i;
        EXPECT_GE(segs[i].length(), 1) << label << " segment " << i;
        if (i > 0) {
            EXPECT_NE(segs[i].state, segs[i - 1].state)
                << label << ": adjacent segments must differ (RLE maximality)";
        }
        expected_begin = segs[i].end;
    }
    EXPECT_EQ(expected_begin, trace.realized()) << label;
}

} // namespace

TEST(RealizedTrace, ReplayIsBitIdenticalToLiveSamplingForEveryModelKind) {
    const auto models = all_model_kinds();
    for (std::size_t q = 0; q < models.size(); ++q) {
        const auto& [label, model] = models[q];
        const std::uint64_t stream =
            vu::mix_seed(kSeed, vm::kAvailabilityStream, q);
        const auto live = live_sample(*model, stream, kSlots);

        vm::RealizedTrace trace(model->clone(), stream);
        vm::TraceCursor cursor(trace);
        for (long long t = 0; t < kSlots; ++t) {
            ASSERT_EQ(cursor.state_at(t), live[static_cast<std::size_t>(t)])
                << label << " diverges from live sampling at slot " << t;
        }
        expect_well_formed(trace, label);
    }
}

TEST(RealizedTrace, RealizedTracesDeriveTheEnginePerProcessorStreams) {
    // RealizedTraces must seed processor q's stream exactly as the engine
    // always has: mix_seed(seed, kAvailabilityStream, q).
    auto kinds = all_model_kinds();
    std::vector<std::unique_ptr<vm::AvailabilityModel>> models;
    std::vector<std::string> labels;
    for (auto& [label, model] : kinds) {
        labels.push_back(label);
        models.push_back(std::move(model));
    }
    vm::RealizedTraces traces(models, kSeed);
    ASSERT_EQ(traces.size(), static_cast<int>(models.size()));
    EXPECT_EQ(traces.seed(), kSeed);
    for (int q = 0; q < traces.size(); ++q) {
        const auto live = live_sample(
            *models[static_cast<std::size_t>(q)],
            vu::mix_seed(kSeed, vm::kAvailabilityStream,
                         static_cast<std::uint64_t>(q)),
            kSlots);
        vm::TraceCursor cursor(traces.trace(q));
        for (long long t = 0; t < kSlots; ++t) {
            ASSERT_EQ(cursor.state_at(t), live[static_cast<std::size_t>(t)])
                << labels[static_cast<std::size_t>(q)] << " at slot " << t;
        }
    }
}

TEST(RealizedTrace, RealizationIsIndependentOfTheQueryPattern) {
    // Driving one trace slot by slot and another via next_change_at() hops
    // (plus a third realized eagerly in one go) must materialize identical
    // segments: lazy chunked growth changes *when* slots are sampled, never
    // their values.
    for (const auto& [label, model] : all_model_kinds()) {
        vm::RealizedTrace by_slot(model->clone(), 42);
        vm::RealizedTrace by_hops(model->clone(), 42);
        vm::RealizedTrace eager(model->clone(), 42);

        vm::TraceCursor slot_cursor(by_slot);
        for (long long t = 0; t < kSlots; ++t) (void)slot_cursor.state_at(t);

        vm::TraceCursor hop_cursor(by_hops);
        long long t = 0;
        while (t < kSlots) {
            const long long change = hop_cursor.next_change_at(t, kSlots);
            ASSERT_GT(change, t) << label;
            if (change < kSlots) {
                ASSERT_NE(hop_cursor.state_at(change), by_hops.state_at(t))
                    << label << ": next_change_at(" << t
                    << ") returned a slot with an unchanged state";
            }
            t = change;
        }

        eager.ensure(kSlots);

        const auto common = std::min(
            {by_slot.realized(), by_hops.realized(), eager.realized()});
        ASSERT_GE(common, kSlots) << label;
        for (long long s = 0; s < kSlots; ++s) {
            ASSERT_EQ(by_slot.state_at(s), by_hops.state_at(s))
                << label << " at slot " << s;
            ASSERT_EQ(by_slot.state_at(s), eager.state_at(s))
                << label << " at slot " << s;
        }
        expect_well_formed(by_slot, label);
        expect_well_formed(by_hops, label);
        expect_well_formed(eager, label);
    }
}

TEST(RealizedTrace, ManyCursorsShareOneTrace) {
    // The 19-heuristic pattern: one shared trace, one cursor per run; later
    // cursors replay slots the first cursor already forced into existence.
    vm::RealizedTrace trace(
        std::make_unique<vm::MarkovAvailability>(vt::crashy_chain(0.1)), 99);
    std::vector<vm::ProcState> first;
    {
        vm::TraceCursor cursor(trace);
        for (long long t = 0; t < 1000; ++t)
            first.push_back(cursor.state_at(t));
    }
    for (int replay = 0; replay < 3; ++replay) {
        vm::TraceCursor cursor(trace);
        for (long long t = 0; t < 1000; ++t)
            ASSERT_EQ(cursor.state_at(t), first[static_cast<std::size_t>(t)])
                << "replay cursor " << replay << " diverged at slot " << t;
    }
}

TEST(RealizedTrace, NextChangeAtRespectsTheLimit) {
    // An always-UP model never changes state: next_change_at must cap its
    // probing at `limit` instead of sampling forever.
    vm::RealizedTrace trace(
        std::make_unique<vm::MarkovAvailability>(vt::always_up_chain()), 5);
    vm::TraceCursor cursor(trace);
    EXPECT_EQ(cursor.next_change_at(0, 512), 512);
    EXPECT_LE(trace.realized(), 1024); // chunked growth may overshoot, bounded
    EXPECT_EQ(trace.segments().size(), 1u);
}

TEST(RealizedTrace, SimulationSharesOneRealizationAcrossRuns) {
    // Simulation::realization() is the cache every run replays: repeated
    // runs must not advance any RNG state (bit-identical metrics), and the
    // snapshot handle must be stable.
    const auto sc = vt::small_scenario(2026);
    const auto rs = ve::realize(sc);
    const auto sim = vs::Simulation::from_chains(
        rs.platform, rs.chains, vt::audited_config(2, sc.tasks), 11);
    const auto traces = sim.realization();
    ASSERT_NE(traces, nullptr);
    EXPECT_EQ(traces.get(), sim.realization().get())
        << "realization() must hand out the one cached snapshot";
    EXPECT_EQ(traces->size(), rs.platform.size());

    const auto sched = volsched::core::make_scheduler("emct");
    const auto m1 = sim.run(*sched);
    const auto m2 = sim.run(*sched);
    EXPECT_EQ(m1.makespan, m2.makespan);
    EXPECT_EQ(m1.iteration_ends, m2.iteration_ends);
    EXPECT_EQ(m1.down_events, m2.down_events);
}

TEST(RealizedTrace, BuilderRealizedAttachesAndValidatesSnapshots) {
    const auto sc = vt::small_scenario(314);
    const auto rs = ve::realize(sc);
    const auto cfg = vt::audited_config(2, sc.tasks);
    const auto sched = volsched::core::make_scheduler("mct*");

    // Baseline: private realization.
    const auto base = vs::Simulation::from_chains(rs.platform, rs.chains,
                                                  cfg, 21);
    const auto expected = base.run(*sched);

    // Shared snapshot attached through the builder: same seed, same result.
    const auto shared = base.realization();
    const auto sim = vs::Simulation::builder()
                         .platform(rs.platform)
                         .markov(rs.chains)
                         .config(cfg)
                         .seed(21)
                         .realized(shared)
                         .build();
    const auto got = sim.run(*sched);
    EXPECT_EQ(got.makespan, expected.makespan);
    EXPECT_EQ(got.iteration_ends, expected.iteration_ends);
    EXPECT_EQ(sim.realization().get(), shared.get());

    // A snapshot from the wrong seed is rejected at build time.
    EXPECT_THROW(vs::Simulation::builder()
                     .platform(rs.platform)
                     .markov(rs.chains)
                     .config(cfg)
                     .seed(22)
                     .realized(shared)
                     .build(),
                 std::invalid_argument);
    // As is combining an attached snapshot with a disabled cache.
    EXPECT_THROW(vs::Simulation::builder()
                     .platform(rs.platform)
                     .markov(rs.chains)
                     .config(cfg)
                     .seed(21)
                     .realized(shared)
                     .trace_cache(false)
                     .build(),
                 std::invalid_argument);
}

TEST(RealizedTrace, TraceCacheOffReplaysIdentically) {
    // trace_cache(false) re-samples per run (the pre-trace-layer cost
    // model); results must be bit-identical either way.
    const auto sc = vt::small_scenario(555);
    const auto rs = ve::realize(sc);
    const auto cfg = vt::audited_config(2, sc.tasks);
    for (const auto& name : {"emct", "random"}) {
        const auto sched = volsched::core::make_scheduler(name);
        const auto cached = vs::Simulation::builder()
                                .platform(rs.platform)
                                .markov(rs.chains)
                                .config(cfg)
                                .seed(3)
                                .build();
        const auto uncached = vs::Simulation::builder()
                                  .platform(rs.platform)
                                  .markov(rs.chains)
                                  .config(cfg)
                                  .seed(3)
                                  .trace_cache(false)
                                  .build();
        const auto m1 = cached.run(*sched);
        const auto m2 = uncached.run(*sched);
        const auto m3 = uncached.run(*sched);
        EXPECT_EQ(m1.makespan, m2.makespan) << name;
        EXPECT_EQ(m1.iteration_ends, m2.iteration_ends) << name;
        EXPECT_EQ(m2.makespan, m3.makespan) << name;
    }
}
