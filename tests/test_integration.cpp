/// End-to-end integration tests: whole-stack behaviour that the paper's
/// conclusions rely on, run at small scale so the suite stays fast.

#include <gtest/gtest.h>

#include <map>

#include "core/factory.hpp"
#include "exp/dfb.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "trace/empirical.hpp"
#include "trace/semi_markov.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace ve = volsched::exp;
namespace vs = volsched::sim;
namespace vm = volsched::markov;
namespace vt = volsched::trace;
namespace vc = volsched::core;

namespace {

/// Average dfb of each heuristic across a batch of small instances.
std::vector<double> average_dfb(const std::vector<std::string>& heuristics,
                                int wmin, int instances,
                                std::uint64_t seed_base,
                                int iterations = 3) {
    ve::DfbTable table(heuristics.size());
    for (int i = 0; i < instances; ++i) {
        ve::Scenario sc;
        sc.p = 10;
        sc.tasks = 8;
        sc.ncom = 3;
        sc.wmin = wmin;
        sc.seed = seed_base + static_cast<std::uint64_t>(i);
        const auto rs = ve::realize(sc);
        ve::RunConfig rc;
        rc.iterations = iterations;
        const auto outcome = ve::run_instance(rs, sc.tasks, heuristics, rc,
                                              seed_base * 1000 + i);
        table.add_instance(outcome.makespans);
    }
    std::vector<double> out;
    for (std::size_t h = 0; h < heuristics.size(); ++h)
        out.push_back(table.mean_dfb(h));
    return out;
}

} // namespace

TEST(Integration, GreedyBeatsUniformRandomOnAverage) {
    // The paper's headline qualitative result (Table 2): informed greedy
    // heuristics dominate blind random selection.
    const std::vector<std::string> heuristics = {"emct", "mct", "random"};
    const auto dfb = average_dfb(heuristics, /*wmin=*/2, /*instances=*/30,
                                 /*seed=*/2024);
    EXPECT_LT(dfb[0], dfb[2]);
    EXPECT_LT(dfb[1], dfb[2]);
}

TEST(Integration, SpeedWeightedRandomBeatsUnweighted) {
    // Table 2: randomXw always outperforms randomX.
    const std::vector<std::string> heuristics = {"random2w", "random2"};
    const auto dfb = average_dfb(heuristics, /*wmin=*/2, /*instances=*/40,
                                 /*seed=*/4048);
    EXPECT_LT(dfb[0], dfb[1]);
}

TEST(Integration, AllHeuristicsCompleteOnSemiMarkovTraces) {
    // Section 8 extension: replay non-memoryless availability; beliefs are
    // the Markov chain fitted from a recorded history of each process.
    const int p = 8;
    vs::Platform pf;
    pf.ncom = 3;
    pf.t_prog = 5;
    pf.t_data = 1;
    volsched::util::Rng rng(71);
    std::vector<std::unique_ptr<vm::AvailabilityModel>> models;
    std::vector<vm::MarkovChain> beliefs;
    for (int q = 0; q < p; ++q) {
        pf.w.push_back(1 + static_cast<int>(rng.uniform_int(0, 9)));
        const auto params = vt::desktop_grid_params(60.0 + 10.0 * q);
        vt::SemiMarkovAvailability proto(params);
        // Fit a Markov belief from a recorded history (what a Markov-based
        // scheduler could actually estimate in the field).
        volsched::util::Rng fit_rng(1000 + q);
        const auto history = vt::record(proto, 20000, fit_rng);
        beliefs.emplace_back(vt::fit_markov({history}));
        models.push_back(std::make_unique<vt::SemiMarkovAvailability>(params));
    }
    vs::EngineConfig cfg;
    cfg.iterations = 2;
    cfg.tasks_per_iteration = 6;
    cfg.audit = true;
    cfg.max_slots = 500000;
    const vs::Simulation sim(pf, std::move(models), beliefs, cfg, 99);
    for (const auto& name : {"emct*", "ud*", "mct", "random2w"}) {
        const auto sched = vc::make_scheduler(name);
        const auto metrics = sim.run(*sched);
        EXPECT_TRUE(metrics.completed) << name;
    }
}

TEST(Integration, ReplicationNeverHurtsMuchAndOftenHelps) {
    // The paper argues replication is "never detrimental"; with volatile
    // processors the replicated runs should not be meaningfully slower on
    // aggregate.
    long long with_rep = 0, without_rep = 0;
    for (int i = 0; i < 15; ++i) {
        ve::Scenario sc;
        sc.p = 10;
        sc.tasks = 4; // small m: replication matters most (Section 6.1)
        sc.ncom = 3;
        sc.wmin = 3;
        sc.seed = 8800 + static_cast<std::uint64_t>(i);
        const auto rs = ve::realize(sc);
        ve::RunConfig rc;
        rc.iterations = 2;
        rc.replica_cap = 2;
        const auto rep = ve::run_instance(rs, sc.tasks, {"emct"}, rc, 17 + i);
        rc.replica_cap = 0;
        const auto norep =
            ve::run_instance(rs, sc.tasks, {"emct"}, rc, 17 + i);
        with_rep += rep.makespans[0];
        without_rep += norep.makespans[0];
    }
    EXPECT_LE(with_rep, without_rep + without_rep / 10);
}

TEST(Integration, HigherVolatilityMeansLongerMakespans) {
    // Scaling wmin up makes tasks long relative to availability intervals;
    // makespans (in slots) must grow superlinearly versus the wmin=1 case.
    ve::Scenario sc;
    sc.p = 10;
    sc.tasks = 8;
    sc.ncom = 3;
    sc.seed = 31337;
    ve::RunConfig rc;
    rc.iterations = 2;
    sc.wmin = 1;
    const auto fast = ve::run_instance(ve::realize(sc), sc.tasks, {"emct"},
                                       rc, 3);
    sc.wmin = 6;
    const auto slow = ve::run_instance(ve::realize(sc), sc.tasks, {"emct"},
                                       rc, 3);
    EXPECT_GT(slow.makespans[0], fast.makespans[0]);
}

TEST(Integration, MetricsAreInternallyConsistent) {
    ve::Scenario sc;
    sc.p = 12;
    sc.tasks = 10;
    sc.ncom = 4;
    sc.wmin = 2;
    sc.seed = 60601;
    const auto rs = ve::realize(sc);
    ve::RunConfig rc;
    rc.iterations = 3;
    const auto outcome = ve::run_instance(rs, sc.tasks, {"emct*"}, rc, 42);
    const auto& m = outcome.metrics[0];
    ASSERT_TRUE(m.completed);
    EXPECT_EQ(m.tasks_completed, 3 * 10);
    EXPECT_GE(m.replica_wins, 0);
    EXPECT_LE(m.replica_wins, m.replicas_committed);
    EXPECT_LE(m.wasted_compute_slots, m.compute_slots);
    EXPECT_GT(m.transfer_slots, 0);
}
