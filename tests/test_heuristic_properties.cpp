/// Property-style sweeps over the heuristic scoring functions: invariants
/// that must hold for any recipe chain and any processor configuration.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/ct.hpp"
#include "core/factory.hpp"
#include "core/greedy_sched.hpp"
#include "markov/expectation.hpp"
#include "markov/expectation_cache.hpp"
#include "markov/gen.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace vc = volsched::core;
namespace vs = volsched::sim;
namespace vm = volsched::markov;

namespace {

struct Fixture {
    vs::Platform platform;
    std::vector<vs::ProcView> procs;
    std::vector<vm::MarkovChain> chains;
    vs::SchedView view;

    Fixture(int p, std::uint64_t seed) {
        volsched::util::Rng rng(seed);
        platform.ncom = 1 + static_cast<int>(rng.uniform_int(0, 4));
        platform.t_prog = 1 + static_cast<int>(rng.uniform_int(0, 19));
        platform.t_data = 1 + static_cast<int>(rng.uniform_int(0, 9));
        platform.w.resize(static_cast<std::size_t>(p));
        procs.resize(static_cast<std::size_t>(p));
        chains.reserve(static_cast<std::size_t>(p));
        for (int q = 0; q < p; ++q) {
            chains.push_back(vm::generate_chain(rng));
            platform.w[q] = 1 + static_cast<int>(rng.uniform_int(0, 19));
            auto& pv = procs[q];
            pv.state = vm::ProcState::Up;
            pv.has_program = rng.bernoulli(0.5);
            pv.buffer_free = true;
            pv.w = platform.w[q];
            pv.delay = static_cast<int>(rng.uniform_int(0, 40));
        }
        for (int q = 0; q < p; ++q) procs[q].belief = &chains[q];
        view.platform = &platform;
        view.procs = procs;
        view.slot = 0;
        view.nactive = static_cast<int>(rng.uniform_int(0, p));
        view.remaining_tasks = 3;
    }
};

std::vector<vs::ProcId> all_procs(int p) {
    std::vector<vs::ProcId> out(static_cast<std::size_t>(p));
    for (int q = 0; q < p; ++q) out[q] = q;
    return out;
}

} // namespace

class HeuristicProperty : public ::testing::TestWithParam<int> {};

TEST_P(HeuristicProperty, CtIsMonotoneInQueueLengthAndDelay) {
    Fixture f(6, static_cast<std::uint64_t>(GetParam()));
    for (int q = 0; q < 6; ++q) {
        double prev = 0.0;
        for (int n = 1; n <= 5; ++n) {
            const double ct = vc::ct_plain(f.view, q, n);
            EXPECT_GT(ct, prev);
            prev = ct;
        }
        // The corrected estimate never undercuts the plain one (the factor
        // is ceil(.) >= 1).
        EXPECT_GE(vc::ct_corrected(f.view, q, 1, false),
                  vc::ct_plain(f.view, q, 1));
    }
}

TEST_P(HeuristicProperty, EveryGreedyChoiceIsEligible) {
    Fixture f(6, static_cast<std::uint64_t>(GetParam()) + 50);
    const std::vector<vs::ProcId> eligible = {1, 3, 4};
    std::vector<int> nq(6, 0);
    volsched::util::Rng rng(9);
    for (const auto& name : vc::all_heuristic_names()) {
        auto sched = vc::make_scheduler(name);
        const auto pick = sched->select(f.view, eligible, nq, rng);
        EXPECT_TRUE(pick == 1 || pick == 3 || pick == 4) << name;
    }
}

TEST_P(HeuristicProperty, SingleEligibleProcessorIsAlwaysChosen) {
    Fixture f(4, static_cast<std::uint64_t>(GetParam()) + 100);
    const std::vector<vs::ProcId> eligible = {2};
    std::vector<int> nq(4, 0);
    volsched::util::Rng rng(10);
    for (const auto& name : vc::all_heuristic_names()) {
        auto sched = vc::make_scheduler(name);
        EXPECT_EQ(sched->select(f.view, eligible, nq, rng), 2) << name;
    }
}

TEST_P(HeuristicProperty, EmctNeverRanksBelowItsOwnCt) {
    // E(W) >= W pointwise, so the EMCT score of any processor dominates its
    // MCT score — the expectation only adds RECLAIMED detours.
    Fixture f(6, static_cast<std::uint64_t>(GetParam()) + 200);
    for (int q = 0; q < 6; ++q) {
        const double ct = vc::ct_plain(f.view, q, 1);
        const double e = vm::e_workload(f.chains[q].matrix(), ct);
        EXPECT_GE(e, ct);
    }
}

TEST_P(HeuristicProperty, MctPrefersStrictlyDominatingProcessor) {
    // If one processor has smaller delay AND smaller w, MCT must take it.
    Fixture f(2, static_cast<std::uint64_t>(GetParam()) + 300);
    f.procs[0].delay = 10;
    f.procs[0].w = 8;
    f.procs[1].delay = 2;
    f.procs[1].w = 3;
    f.view.procs = f.procs;
    std::vector<int> nq(2, 0);
    volsched::util::Rng rng(11);
    auto sched = vc::make_scheduler("mct");
    EXPECT_EQ(sched->select(f.view, all_procs(2), nq, rng), 1);
}

TEST_P(HeuristicProperty, InformedFamiliesAgreeOnIdenticalProcessors) {
    // With identical chains, speeds and delays, every deterministic greedy
    // heuristic must tie-break to the lowest index.
    Fixture f(5, static_cast<std::uint64_t>(GetParam()) + 400);
    volsched::util::Rng rng(12);
    const auto chain = vm::generate_chain(rng);
    for (int q = 0; q < 5; ++q) {
        f.chains[q] = chain;
        f.procs[q].w = 4;
        f.procs[q].delay = 3;
        f.procs[q].has_program = true;
    }
    for (int q = 0; q < 5; ++q) f.procs[q].belief = &f.chains[q];
    f.view.procs = f.procs;
    std::vector<int> nq(5, 0);
    for (const auto& name : vc::greedy_heuristic_names()) {
        auto sched = vc::make_scheduler(name);
        EXPECT_EQ(sched->select(f.view, all_procs(5), nq, rng), 0) << name;
    }
}

TEST_P(HeuristicProperty, BatchedScoresMatchScalarReferenceBitExactly) {
    // The batched scoring passes (contiguous CT fill + score_batch over
    // pinned cache handles) must reproduce the scalar reference — one
    // worker at a time, straight from the markov:: free functions — to
    // the last bit, uninformed workers included.
    Fixture f(8, static_cast<std::uint64_t>(GetParam()) + 500);
    f.procs[2].belief = nullptr;
    f.procs[6].belief = nullptr;
    f.view.procs = f.procs;
    const std::vector<int> nq = {0, 3, 1, 0, 2, 0, 5, 1};
    const auto eligible = all_procs(8);
    for (const auto& name : vc::greedy_heuristic_names()) {
        auto sched = vc::make_scheduler(name);
        auto* greedy = dynamic_cast<vc::GreedyScheduler*>(sched.get());
        ASSERT_NE(greedy, nullptr) << name;
        const bool starred = !name.empty() && name.back() == '*';
        greedy->begin_round(f.view);
        std::vector<double> cts;
        std::vector<double> scores;
        greedy->batched_scores(f.view, eligible, nq, cts, scores);
        ASSERT_EQ(cts.size(), eligible.size()) << name;
        ASSERT_EQ(scores.size(), eligible.size()) << name;
        for (std::size_t i = 0; i < eligible.size(); ++i) {
            const auto q = eligible[i];
            const double ct =
                vc::ct_estimate(f.view, q, nq[q] + 1, nq[q] > 0, starred);
            EXPECT_EQ(cts[i], ct) << name << " ct of proc " << q;
            EXPECT_EQ(scores[i], greedy->score(f.view, q, ct))
                << name << " score of proc " << q;
        }
    }
}

TEST_P(HeuristicProperty, DecisionsInvariantUnderWorkerPermutation) {
    // Relabeling the workers (shuffling their insertion order into the
    // per-round arrays) while presenting the same candidates in the same
    // sequence must relabel the decision and nothing else — scoring reads
    // per-worker state only, never array positions.
    constexpr int p = 7;
    const auto seed = static_cast<std::uint64_t>(GetParam());
    Fixture f(p, seed + 600);
    Fixture g(p, seed + 600); // identical platform draw, rewired below
    std::vector<vs::ProcId> perm(p);
    std::iota(perm.begin(), perm.end(), 0);
    volsched::util::Rng shuffle_rng(seed + 601);
    for (int i = p - 1; i > 0; --i)
        std::swap(perm[static_cast<std::size_t>(i)],
                  perm[shuffle_rng.uniform_int(
                      0, static_cast<std::uint64_t>(i))]);
    for (int q = 0; q < p; ++q) {
        const auto to = static_cast<std::size_t>(perm[q]);
        g.procs[to] = f.procs[q];
        g.chains[to] = f.chains[q];
        g.platform.w[to] = f.platform.w[q];
    }
    for (int q = 0; q < p; ++q) g.procs[q].belief = &g.chains[q];
    g.view.procs = g.procs;

    const auto eligible_f = all_procs(p);
    std::vector<vs::ProcId> eligible_g(eligible_f.size());
    for (std::size_t i = 0; i < eligible_f.size(); ++i)
        eligible_g[i] = perm[static_cast<std::size_t>(eligible_f[i])];
    const std::vector<int> nq_f = {0, 2, 0, 1, 4, 0, 1};
    std::vector<int> nq_g(p, 0);
    for (int q = 0; q < p; ++q)
        nq_g[static_cast<std::size_t>(perm[q])] = nq_f[q];

    auto names = vc::all_heuristic_names();
    const auto& ext = vc::extension_heuristic_names();
    names.insert(names.end(), ext.begin(), ext.end());
    for (const auto& name : names) {
        auto sched_f = vc::make_scheduler(name);
        auto sched_g = vc::make_scheduler(name);
        volsched::util::Rng rng_f(77);
        volsched::util::Rng rng_g(77);
        sched_f->begin_round(f.view);
        sched_g->begin_round(g.view);
        const auto pick_f = sched_f->select(f.view, eligible_f, nq_f, rng_f);
        const auto pick_g = sched_g->select(g.view, eligible_g, nq_g, rng_g);
        EXPECT_EQ(pick_g, perm[static_cast<std::size_t>(pick_f)]) << name;
    }
}

TEST_P(HeuristicProperty, CachedSelectMatchesBypassedScalarSelect) {
    // select() with the expectation cache engaged (batched passes) and
    // with the cache bypassed (the pre-change scalar loops, kept verbatim
    // for the benchmark A/B) must make identical decisions from identical
    // RNG streams.
    struct BypassGuard {
        ~BypassGuard() { vm::ExpectationCache::set_bypass(false); }
    } guard;
    Fixture f(6, static_cast<std::uint64_t>(GetParam()) + 700);
    const std::vector<int> nq = {1, 0, 2, 0, 0, 3};
    const auto eligible = all_procs(6);
    auto names = vc::all_heuristic_names();
    const auto& ext = vc::extension_heuristic_names();
    names.insert(names.end(), ext.begin(), ext.end());
    for (const auto& name : names) {
        auto cached = vc::make_scheduler(name);
        auto scalar = vc::make_scheduler(name);
        volsched::util::Rng rng_cached(5);
        volsched::util::Rng rng_scalar(5);
        cached->begin_round(f.view);
        const auto pick_cached =
            cached->select(f.view, eligible, nq, rng_cached);
        vm::ExpectationCache::set_bypass(true);
        scalar->begin_round(f.view);
        const auto pick_scalar =
            scalar->select(f.view, eligible, nq, rng_scalar);
        vm::ExpectationCache::set_bypass(false);
        EXPECT_EQ(pick_cached, pick_scalar) << name;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeuristicProperty, ::testing::Range(0, 10));

TEST(HeuristicNames, FactoryOrderMatchesPaperTable2) {
    const auto& names = vc::all_heuristic_names();
    // The paper's Table 2 lists the EMCT family first and plain random last.
    EXPECT_EQ(names.front(), "emct");
    EXPECT_EQ(names.back(), "random");
}
