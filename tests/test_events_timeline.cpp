/// Tests for the structured event log and the per-slot timeline recorder,
/// plus the proactive scheduler class.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/factory.hpp"
#include "markov/gen.hpp"
#include "sim/engine.hpp"
#include "trace/replay.hpp"
#include "util/rng.hpp"

namespace vs = volsched::sim;
namespace vm = volsched::markov;
namespace vt = volsched::trace;

namespace {

vs::Simulation make_replay_sim(vs::Platform pf,
                               const std::vector<std::string>& rows,
                               vs::EngineConfig cfg,
                               std::vector<vm::MarkovChain> beliefs = {}) {
    std::vector<std::unique_ptr<vm::AvailabilityModel>> models;
    for (const auto& row : rows) {
        vt::RecordedTrace tr;
        for (char c : row) tr.states.push_back(vm::state_from_code(c));
        models.push_back(std::make_unique<vt::ReplayAvailability>(
            tr, vt::ReplayAvailability::EndPolicy::HoldLast));
    }
    return vs::Simulation(std::move(pf), std::move(models),
                          std::move(beliefs), cfg, 1);
}

vs::EngineConfig config(int iterations, int tasks) {
    vs::EngineConfig cfg;
    cfg.iterations = iterations;
    cfg.tasks_per_iteration = tasks;
    cfg.replica_cap = 0;
    cfg.max_slots = 100000;
    cfg.audit = true;
    return cfg;
}

} // namespace

TEST(EventLogging, PipelineEmitsExpectedEventCounts) {
    // p=1, w=3, Tprog=2, Tdata=2, m=2, always UP (cf. EngineTiming).
    vs::EventLog log;
    auto cfg = config(1, 2);
    cfg.events = &log;
    auto sim = make_replay_sim(vs::Platform::homogeneous(1, 3, 1, 2, 2), {"u"},
                               cfg);
    const auto sched = volsched::core::make_scheduler("mct");
    ASSERT_TRUE(sim.run(*sched).completed);

    EXPECT_EQ(log.count(vs::EventKind::StateChange), 1u); // slot-0 UP
    EXPECT_EQ(log.count(vs::EventKind::ProgStart), 1u);
    EXPECT_EQ(log.count(vs::EventKind::ProgComplete), 1u);
    EXPECT_EQ(log.count(vs::EventKind::DataStart), 2u);
    EXPECT_EQ(log.count(vs::EventKind::DataComplete), 2u);
    EXPECT_EQ(log.count(vs::EventKind::ComputeStart), 2u);
    EXPECT_EQ(log.count(vs::EventKind::TaskComplete), 2u);
    EXPECT_EQ(log.count(vs::EventKind::IterationComplete), 1u);
    EXPECT_EQ(log.count(vs::EventKind::WorkLost), 0u);
}

TEST(EventLogging, EventsAreChronological) {
    vs::EventLog log;
    auto cfg = config(2, 3);
    cfg.events = &log;
    auto sim = make_replay_sim(vs::Platform::homogeneous(2, 2, 2, 1, 1),
                               {"u", "u"}, cfg);
    const auto sched = volsched::core::make_scheduler("mct");
    ASSERT_TRUE(sim.run(*sched).completed);
    long long prev = -1;
    for (const auto& e : log.events()) {
        EXPECT_GE(e.slot, prev);
        prev = e.slot;
    }
}

TEST(EventLogging, CrashEmitsWorkLost) {
    vs::EventLog log;
    auto cfg = config(1, 1);
    cfg.events = &log;
    auto sim = make_replay_sim(vs::Platform::homogeneous(1, 1, 1, 2, 1),
                               {"uuduuuuuu"}, cfg);
    const auto sched = volsched::core::make_scheduler("mct");
    ASSERT_TRUE(sim.run(*sched).completed);
    EXPECT_EQ(log.count(vs::EventKind::WorkLost), 1u);
    // The DOWN state change is recorded too.
    std::size_t downs = 0;
    for (const auto& e : log.events())
        if (e.kind == vs::EventKind::StateChange &&
            e.state == vm::ProcState::Down)
            ++downs;
    EXPECT_EQ(downs, 1u);
}

TEST(EventLogging, TaskCompletionsMatchMetrics) {
    vs::EventLog log;
    volsched::util::Rng rng(9);
    const auto chains = vm::generate_chains(8, rng);
    vs::Platform pf;
    pf.ncom = 3;
    pf.t_prog = 5;
    pf.t_data = 1;
    for (int q = 0; q < 8; ++q)
        pf.w.push_back(1 + static_cast<int>(rng.uniform_int(0, 9)));
    auto cfg = config(3, 6);
    cfg.replica_cap = 2;
    cfg.events = &log;
    const auto sim = vs::Simulation::from_chains(pf, chains, cfg, 77);
    const auto sched = volsched::core::make_scheduler("emct*");
    const auto metrics = sim.run(*sched);
    ASSERT_TRUE(metrics.completed);
    EXPECT_EQ(log.count(vs::EventKind::TaskComplete),
              static_cast<std::size_t>(metrics.tasks_completed));
    EXPECT_EQ(log.count(vs::EventKind::ReplicaCommitted),
              static_cast<std::size_t>(metrics.replicas_committed));
    EXPECT_EQ(log.count(vs::EventKind::IterationComplete), 3u);
}

TEST(EventLogging, CsvHasHeaderAndOneRowPerEvent) {
    vs::EventLog log;
    auto cfg = config(1, 1);
    cfg.events = &log;
    auto sim = make_replay_sim(vs::Platform::homogeneous(1, 1, 1, 1, 1), {"u"},
                               cfg);
    const auto sched = volsched::core::make_scheduler("mct");
    ASSERT_TRUE(sim.run(*sched).completed);
    std::ostringstream os;
    log.write_csv(os);
    std::size_t lines = 0;
    std::string line;
    std::istringstream is(os.str());
    while (std::getline(is, line)) ++lines;
    EXPECT_EQ(lines, log.size() + 1);
    EXPECT_EQ(os.str().rfind("slot,kind,proc", 0), 0u);
}

TEST(EventKindNames, AllDistinct) {
    const vs::EventKind kinds[] = {
        vs::EventKind::StateChange,   vs::EventKind::ProgStart,
        vs::EventKind::ProgComplete,  vs::EventKind::DataStart,
        vs::EventKind::DataComplete,  vs::EventKind::ComputeStart,
        vs::EventKind::TaskComplete,  vs::EventKind::WorkLost,
        vs::EventKind::ReplicaCommitted, vs::EventKind::ReplicaCancelled,
        vs::EventKind::ProactiveCancel, vs::EventKind::IterationComplete};
    for (std::size_t i = 0; i < std::size(kinds); ++i)
        for (std::size_t j = i + 1; j < std::size(kinds); ++j)
            EXPECT_STRNE(vs::event_kind_name(kinds[i]),
                         vs::event_kind_name(kinds[j]));
}

TEST(TimelineRecording, DeterministicPipelineChart) {
    vs::Timeline timeline;
    auto cfg = config(1, 2);
    cfg.timeline = &timeline;
    auto sim = make_replay_sim(vs::Platform::homogeneous(1, 3, 1, 2, 2), {"u"},
                               cfg);
    const auto sched = volsched::core::make_scheduler("mct");
    ASSERT_TRUE(sim.run(*sched).completed);
    ASSERT_EQ(timeline.procs(), 1);
    ASSERT_EQ(timeline.slots(), 10);
    std::string row;
    for (long long t = 0; t < 10; ++t) row.push_back(timeline.at(0, t));
    // prog 0-1, data0 2-3, compute+data1 4-5, compute 6, compute task1 7-9.
    EXPECT_EQ(row, "PPDDBBCCCC");
}

TEST(TimelineRecording, StateCodesAppear) {
    vs::Timeline timeline;
    auto cfg = config(1, 1);
    cfg.timeline = &timeline;
    auto sim = make_replay_sim(vs::Platform::homogeneous(1, 1, 1, 1, 1),
                               {"urduu"}, cfg);
    const auto sched = volsched::core::make_scheduler("mct");
    ASSERT_TRUE(sim.run(*sched).completed);
    EXPECT_EQ(timeline.at(0, 1), 'r');
    EXPECT_EQ(timeline.at(0, 2), 'd');
}

TEST(TimelineRecording, RenderHasRulerAndRows) {
    vs::Timeline timeline;
    auto cfg = config(1, 2);
    cfg.timeline = &timeline;
    auto sim = make_replay_sim(vs::Platform::homogeneous(2, 2, 2, 1, 1),
                               {"u", "u"}, cfg);
    const auto sched = volsched::core::make_scheduler("mct");
    ASSERT_TRUE(sim.run(*sched).completed);
    const auto text = timeline.render();
    EXPECT_NE(text.find("P0"), std::string::npos);
    EXPECT_NE(text.find("P1"), std::string::npos);
    EXPECT_NE(text.find('|'), std::string::npos);
    // Out-of-range windows clamp to empty rows; out-of-range lookups are
    // null characters.
    const auto clamped = timeline.render(100, 200);
    EXPECT_NE(clamped.find("P0"), std::string::npos);
    EXPECT_EQ(timeline.at(0, 9999), '\0');
    EXPECT_EQ(timeline.at(57, 0), '\0');
}

TEST(Proactive, RescuesTaskFromLongReclaimedWorker) {
    // P0 stages the task then disappears into RECLAIMED for 20 slots; P1
    // sits idle UP.  Dynamic waits for P0; Proactive re-enrols on P1.
    vs::Platform pf = vs::Platform::homogeneous(2, 2, 1, 1, 2);
    const std::string p0 = "uu" + std::string(20, 'r') + "uuuuuuuuuu";
    const std::vector<std::string> rows = {p0, std::string(40, 'u')};
    // Beliefs: P0 has sticky RECLAIMED (P_rr = 0.9); P1 is rock solid.
    std::vector<vm::MarkovChain> beliefs;
    beliefs.emplace_back(vm::TransitionMatrix({{{0.70, 0.25, 0.05},
                                                {0.05, 0.90, 0.05},
                                                {0.50, 0.25, 0.25}}}));
    beliefs.emplace_back(vm::TransitionMatrix({{{0.99, 0.005, 0.005},
                                                {0.50, 0.25, 0.25},
                                                {0.50, 0.25, 0.25}}}));

    auto dynamic_cfg = config(1, 1);
    auto proactive_cfg = config(1, 1);
    proactive_cfg.plan_class = vs::SchedulerClass::Proactive;

    auto dyn_sim = make_replay_sim(pf, rows, dynamic_cfg, beliefs);
    auto pro_sim = make_replay_sim(pf, rows, proactive_cfg, beliefs);
    const auto sched1 = volsched::core::make_scheduler("mct");
    const auto sched2 = volsched::core::make_scheduler("mct");

    const auto dyn = dyn_sim.run(*sched1);
    const auto pro = pro_sim.run(*sched2);
    ASSERT_TRUE(dyn.completed);
    ASSERT_TRUE(pro.completed);
    EXPECT_EQ(dyn.proactive_cancellations, 0);
    EXPECT_GE(pro.proactive_cancellations, 1);
    EXPECT_LT(pro.makespan, dyn.makespan);
}

TEST(Proactive, NoBeliefsMeansNoCancellations) {
    vs::Platform pf = vs::Platform::homogeneous(2, 2, 1, 1, 2);
    auto cfg = config(1, 1);
    cfg.plan_class = vs::SchedulerClass::Proactive;
    auto sim = make_replay_sim(pf, {"uurrrrruuu", "uuuuuuuuuu"}, cfg);
    const auto sched = volsched::core::make_scheduler("mct");
    const auto metrics = sim.run(*sched);
    ASSERT_TRUE(metrics.completed);
    EXPECT_EQ(metrics.proactive_cancellations, 0);
}

TEST(Proactive, AuditsCleanlyOnStochasticPlatforms) {
    volsched::util::Rng rng(5);
    const auto chains = vm::generate_chains(10, rng);
    vs::Platform pf;
    pf.ncom = 4;
    pf.t_prog = 10;
    pf.t_data = 2;
    for (int q = 0; q < 10; ++q)
        pf.w.push_back(2 + static_cast<int>(rng.uniform_int(0, 18)));
    auto cfg = config(3, 8);
    cfg.replica_cap = 2;
    cfg.plan_class = vs::SchedulerClass::Proactive;
    const auto sim = vs::Simulation::from_chains(pf, chains, cfg, 123);
    for (const auto& name : {"emct*", "mct", "random2w"}) {
        const auto sched = volsched::core::make_scheduler(name);
        const auto metrics = sim.run(*sched);
        EXPECT_TRUE(metrics.completed) << name;
    }
}
