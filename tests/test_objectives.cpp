/// Tests of the Section 3.4 objective duality: maximizing iterations within
/// a deadline vs. minimizing slots for a fixed number of iterations.

#include <gtest/gtest.h>

#include <memory>

#include "core/factory.hpp"
#include "markov/gen.hpp"
#include "sim/engine.hpp"
#include "trace/replay.hpp"
#include "util/rng.hpp"

namespace vs = volsched::sim;
namespace vm = volsched::markov;
namespace vt = volsched::trace;

namespace {

vs::Simulation always_up_sim() {
    // p=1, w=3, Tprog=2, Tdata=2: iteration 1 ends at slot 10, each further
    // iteration adds Tdata + 2w = 8 slots (see EngineTiming).
    std::vector<std::unique_ptr<vm::AvailabilityModel>> models;
    vt::RecordedTrace tr;
    tr.states = {vm::ProcState::Up};
    models.push_back(std::make_unique<vt::ReplayAvailability>(
        tr, vt::ReplayAvailability::EndPolicy::HoldLast));
    vs::EngineConfig cfg;
    cfg.iterations = 1;
    cfg.tasks_per_iteration = 2;
    cfg.replica_cap = 0;
    cfg.max_slots = 100000;
    return vs::Simulation(vs::Platform::homogeneous(1, 3, 1, 2, 2),
                          std::move(models), {}, cfg, 1);
}

long long predicted_min_slots(int iterations) {
    return 10 + 8LL * (iterations - 1);
}

} // namespace

TEST(Objectives, MinSlotsMatchesHandDerivedSchedule) {
    auto sim = always_up_sim();
    const auto sched = volsched::core::make_scheduler("mct");
    for (int k = 1; k <= 5; ++k)
        EXPECT_EQ(sim.min_slots_for_iterations(*sched, k),
                  predicted_min_slots(k))
            << "k=" << k;
}

TEST(Objectives, MinSlotsReportsHorizonFailure) {
    auto sim = always_up_sim();
    const auto sched = volsched::core::make_scheduler("mct");
    // Horizon (config.max_slots = 100000) cannot fit 20000 iterations.
    EXPECT_EQ(sim.min_slots_for_iterations(*sched, 20000), -1);
}

TEST(Objectives, DeadlineRunCountsIterations) {
    auto sim = always_up_sim();
    const auto sched = volsched::core::make_scheduler("mct");
    const auto at_deadline = [&](long long d) {
        return sim.run_for_deadline(*sched, d).iterations_completed;
    };
    EXPECT_EQ(at_deadline(9), 0);
    EXPECT_EQ(at_deadline(10), 1);
    EXPECT_EQ(at_deadline(17), 1);
    EXPECT_EQ(at_deadline(18), 2);
    EXPECT_EQ(at_deadline(100), 1 + (100 - 10) / 8);
}

// The duality property itself, parameterized over deadlines:
// iterations(deadline) >= k  <=>  min_slots(k) <= deadline.
class DualityProperty : public ::testing::TestWithParam<long long> {};

TEST_P(DualityProperty, DeterministicPlatform) {
    const long long deadline = GetParam();
    auto sim = always_up_sim();
    const auto sched = volsched::core::make_scheduler("mct");
    const int achieved =
        sim.run_for_deadline(*sched, deadline).iterations_completed;
    if (achieved > 0) {
        EXPECT_LE(sim.min_slots_for_iterations(*sched, achieved), deadline);
    }
    const long long next =
        sim.min_slots_for_iterations(*sched, achieved + 1);
    EXPECT_TRUE(next == -1 || next > deadline);
}

INSTANTIATE_TEST_SUITE_P(Deadlines, DualityProperty,
                         ::testing::Values(1, 9, 10, 18, 26, 50, 101));

TEST(Objectives, DualityOnStochasticPlatform) {
    volsched::util::Rng rng(17);
    const auto chains = vm::generate_chains(8, rng);
    vs::Platform pf;
    pf.ncom = 3;
    pf.t_prog = 5;
    pf.t_data = 1;
    for (int q = 0; q < 8; ++q)
        pf.w.push_back(1 + static_cast<int>(rng.uniform_int(0, 9)));
    vs::EngineConfig cfg;
    cfg.iterations = 1;
    cfg.tasks_per_iteration = 5;
    cfg.max_slots = 500000;
    const auto sim = vs::Simulation::from_chains(pf, chains, cfg, 321);
    const auto sched = volsched::core::make_scheduler("emct");
    // The availability realization is seed-determined, so both objective
    // directions see the same world and the duality must hold exactly.
    for (long long deadline : {50LL, 150LL, 400LL, 1000LL}) {
        const int achieved =
            sim.run_for_deadline(*sched, deadline).iterations_completed;
        if (achieved > 0) {
            const long long needed =
                sim.min_slots_for_iterations(*sched, achieved);
            ASSERT_NE(needed, -1);
            EXPECT_LE(needed, deadline) << "deadline " << deadline;
        }
        const long long next =
            sim.min_slots_for_iterations(*sched, achieved + 1);
        EXPECT_TRUE(next == -1 || next > deadline) << "deadline " << deadline;
    }
}

TEST(Objectives, DeadlineRunNeverClaimsCompletion) {
    auto sim = always_up_sim();
    const auto sched = volsched::core::make_scheduler("mct");
    const auto metrics = sim.run_for_deadline(*sched, 100);
    EXPECT_FALSE(metrics.completed); // iteration budget is unbounded
    EXPECT_EQ(metrics.makespan, 100);
}
