#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace vu = volsched::util;

TEST(Csv, HeaderAndRows) {
    std::ostringstream os;
    vu::CsvWriter csv(os, {"a", "b"});
    csv.row({"1", "2"});
    csv.row({"x", "y"});
    EXPECT_EQ(os.str(), "a,b\n1,2\nx,y\n");
    EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, QuotesSpecialCharacters) {
    std::ostringstream os;
    vu::CsvWriter csv(os, {"v"});
    csv.row({"has,comma"});
    csv.row({"has\"quote"});
    csv.row({"has\nnewline"});
    EXPECT_EQ(os.str(),
              "v\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(Csv, RejectsArityMismatch) {
    std::ostringstream os;
    vu::CsvWriter csv(os, {"a", "b"});
    EXPECT_THROW(csv.row({"only-one"}), std::invalid_argument);
}

TEST(Csv, RejectsEmptyHeader) {
    std::ostringstream os;
    EXPECT_THROW(vu::CsvWriter(os, {}), std::invalid_argument);
}

TEST(Csv, NumericCells) {
    EXPECT_EQ(vu::CsvWriter::cell(static_cast<std::size_t>(42)), "42");
    EXPECT_EQ(vu::CsvWriter::cell(static_cast<long long>(-7)), "-7");
    EXPECT_EQ(vu::CsvWriter::cell(1.5), "1.5");
}

TEST(Table, RendersAlignedColumns) {
    vu::TextTable t({"name", "value"});
    t.align_right(1);
    t.add_row({"alpha", "1.00"});
    t.add_row({"b", "10.50"});
    const std::string out = t.render("title");
    EXPECT_NE(out.find("title\n"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    // Right-aligned: "1.00" must be padded to the width of "10.50".
    EXPECT_NE(out.find(" 1.00"), std::string::npos);
}

TEST(Table, RejectsBadArityAndColumn) {
    vu::TextTable t({"a"});
    EXPECT_THROW(t.add_row({"x", "y"}), std::invalid_argument);
    EXPECT_THROW(t.align_right(3), std::out_of_range);
}

TEST(Table, NumFormatsDecimals) {
    EXPECT_EQ(vu::TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(vu::TextTable::num(2.0, 0), "2");
}

TEST(Cli, ParsesAllForms) {
    vu::Cli cli("prog", "test");
    cli.add_int("count", 5, "a count");
    cli.add_double("ratio", 0.5, "a ratio");
    cli.add_string("mode", "fast", "a mode");
    cli.add_flag("verbose", "chatty");
    const char* argv[] = {"prog",    "--count", "7",         "--ratio=0.25",
                          "--mode",  "slow",    "--verbose"};
    ASSERT_TRUE(cli.parse(7, argv));
    EXPECT_EQ(cli.get_int("count"), 7);
    EXPECT_DOUBLE_EQ(cli.get_double("ratio"), 0.25);
    EXPECT_EQ(cli.get_string("mode"), "slow");
    EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, DefaultsSurviveWhenUnset) {
    vu::Cli cli("prog", "test");
    cli.add_int("count", 5, "a count");
    cli.add_flag("verbose", "chatty");
    const char* argv[] = {"prog"};
    ASSERT_TRUE(cli.parse(1, argv));
    EXPECT_EQ(cli.get_int("count"), 5);
    EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, UnknownOptionFails) {
    vu::Cli cli("prog", "test");
    const char* argv[] = {"prog", "--nope"};
    EXPECT_FALSE(cli.parse(2, argv));
    EXPECT_EQ(cli.exit_code(), 2);
}

TEST(Cli, MissingValueFails) {
    vu::Cli cli("prog", "test");
    cli.add_int("count", 5, "a count");
    const char* argv[] = {"prog", "--count"};
    EXPECT_FALSE(cli.parse(2, argv));
    EXPECT_EQ(cli.exit_code(), 2);
}

TEST(Cli, HelpStopsExecutionWithZero) {
    vu::Cli cli("prog", "test");
    const char* argv[] = {"prog", "--help"};
    EXPECT_FALSE(cli.parse(2, argv));
    EXPECT_EQ(cli.exit_code(), 0);
}

TEST(Cli, HelpTextMentionsOptions) {
    vu::Cli cli("prog", "does things");
    cli.add_int("count", 5, "how many");
    const std::string h = cli.help();
    EXPECT_NE(h.find("--count"), std::string::npos);
    EXPECT_NE(h.find("how many"), std::string::npos);
    EXPECT_NE(h.find("does things"), std::string::npos);
}

TEST(Log, LevelFiltering) {
    vu::set_log_level(vu::LogLevel::Warn);
    EXPECT_EQ(vu::log_level(), vu::LogLevel::Warn);
    vu::set_log_level(vu::LogLevel::Info);
    EXPECT_EQ(vu::log_level(), vu::LogLevel::Info);
}
