#include <gtest/gtest.h>

#include <clocale>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace vu = volsched::util;

TEST(Csv, HeaderAndRows) {
    std::ostringstream os;
    vu::CsvWriter csv(os, {"a", "b"});
    csv.row({"1", "2"});
    csv.row({"x", "y"});
    EXPECT_EQ(os.str(), "a,b\n1,2\nx,y\n");
    EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, QuotesSpecialCharacters) {
    std::ostringstream os;
    vu::CsvWriter csv(os, {"v"});
    csv.row({"has,comma"});
    csv.row({"has\"quote"});
    csv.row({"has\nnewline"});
    EXPECT_EQ(os.str(),
              "v\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(Csv, RejectsArityMismatch) {
    std::ostringstream os;
    vu::CsvWriter csv(os, {"a", "b"});
    EXPECT_THROW(csv.row({"only-one"}), std::invalid_argument);
}

TEST(Csv, RejectsEmptyHeader) {
    std::ostringstream os;
    EXPECT_THROW(vu::CsvWriter(os, {}), std::invalid_argument);
}

TEST(Csv, NumericCells) {
    EXPECT_EQ(vu::CsvWriter::cell(static_cast<std::size_t>(42)), "42");
    EXPECT_EQ(vu::CsvWriter::cell(static_cast<long long>(-7)), "-7");
    EXPECT_EQ(vu::CsvWriter::cell(1.5), "1.5");
}

TEST(Table, RendersAlignedColumns) {
    vu::TextTable t({"name", "value"});
    t.align_right(1);
    t.add_row({"alpha", "1.00"});
    t.add_row({"b", "10.50"});
    const std::string out = t.render("title");
    EXPECT_NE(out.find("title\n"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    // Right-aligned: "1.00" must be padded to the width of "10.50".
    EXPECT_NE(out.find(" 1.00"), std::string::npos);
}

TEST(Table, RejectsBadArityAndColumn) {
    vu::TextTable t({"a"});
    EXPECT_THROW(t.add_row({"x", "y"}), std::invalid_argument);
    EXPECT_THROW(t.align_right(3), std::out_of_range);
}

TEST(Table, NumFormatsDecimals) {
    EXPECT_EQ(vu::TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(vu::TextTable::num(2.0, 0), "2");
}

TEST(Cli, ParsesAllForms) {
    vu::Cli cli("prog", "test");
    cli.add_int("count", 5, "a count");
    cli.add_double("ratio", 0.5, "a ratio");
    cli.add_string("mode", "fast", "a mode");
    cli.add_flag("verbose", "chatty");
    const char* argv[] = {"prog",    "--count", "7",         "--ratio=0.25",
                          "--mode",  "slow",    "--verbose"};
    ASSERT_TRUE(cli.parse(7, argv));
    EXPECT_EQ(cli.get_int("count"), 7);
    EXPECT_DOUBLE_EQ(cli.get_double("ratio"), 0.25);
    EXPECT_EQ(cli.get_string("mode"), "slow");
    EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, DefaultsSurviveWhenUnset) {
    vu::Cli cli("prog", "test");
    cli.add_int("count", 5, "a count");
    cli.add_flag("verbose", "chatty");
    const char* argv[] = {"prog"};
    ASSERT_TRUE(cli.parse(1, argv));
    EXPECT_EQ(cli.get_int("count"), 5);
    EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, UnknownOptionFails) {
    vu::Cli cli("prog", "test");
    const char* argv[] = {"prog", "--nope"};
    EXPECT_FALSE(cli.parse(2, argv));
    EXPECT_EQ(cli.exit_code(), 2);
}

TEST(Cli, MissingValueFails) {
    vu::Cli cli("prog", "test");
    cli.add_int("count", 5, "a count");
    const char* argv[] = {"prog", "--count"};
    EXPECT_FALSE(cli.parse(2, argv));
    EXPECT_EQ(cli.exit_code(), 2);
}

TEST(Cli, HelpStopsExecutionWithZero) {
    vu::Cli cli("prog", "test");
    const char* argv[] = {"prog", "--help"};
    EXPECT_FALSE(cli.parse(2, argv));
    EXPECT_EQ(cli.exit_code(), 0);
}

// Regression for the R3/wall-clock lint finding: Cli used strtod/strtoll,
// whose decimal point follows LC_NUMERIC — under a comma-decimal locale
// "--ratio 1.5" would stop parsing at the '.' and be rejected as a
// malformed token.  std::from_chars never consults the locale.
TEST(Cli, NumericParsingIsLocaleIndependent) {
    const char* saved = std::setlocale(LC_NUMERIC, nullptr);
    const std::string saved_name = saved ? saved : "C";
    const bool have_comma_locale =
        std::setlocale(LC_NUMERIC, "de_DE.UTF-8") != nullptr ||
        std::setlocale(LC_NUMERIC, "de_DE.utf8") != nullptr ||
        std::setlocale(LC_NUMERIC, "fr_FR.UTF-8") != nullptr;

    vu::Cli cli("prog", "test");
    cli.add_double("ratio", 0.5, "a ratio");
    const char* argv[] = {"prog", "--ratio", "1.5"};
    const bool ok = cli.parse(3, argv);
    const double parsed = ok ? cli.get_double("ratio") : 0.0;
    std::setlocale(LC_NUMERIC, saved_name.c_str());

    ASSERT_TRUE(ok);
    EXPECT_EQ(parsed, 1.5);
    if (!have_comma_locale)
        GTEST_SKIP() << "no comma-decimal locale installed; exercised the "
                        "default locale only";
}

// from_chars is also stricter than strtod: whole tokens only, no leading
// whitespace or '+', and never a locale-dependent comma.
TEST(Cli, RejectsNonCanonicalNumericTokens) {
    for (const char* bad : {"1,5", " 5", "5 ", "+5", "", "1.5.0"}) {
        vu::Cli cli("prog", "test");
        cli.add_double("ratio", 0.5, "a ratio");
        const char* argv[] = {"prog", "--ratio", bad};
        EXPECT_FALSE(cli.parse(3, argv)) << "token '" << bad << "'";
        EXPECT_EQ(cli.exit_code(), 2) << "token '" << bad << "'";
    }
    for (const char* good : {"-3", "2.5e-1", ".5"}) {
        vu::Cli cli("prog", "test");
        cli.add_double("ratio", 0.5, "a ratio");
        const char* argv[] = {"prog", "--ratio", good};
        EXPECT_TRUE(cli.parse(3, argv)) << "token '" << good << "'";
    }
}

// Default values render via to_chars (shortest round-trip, '.'-decimal),
// so help text is byte-stable across locales and platforms.
TEST(Cli, DoubleDefaultRendersShortestRoundTrip) {
    vu::Cli cli("prog", "test");
    cli.add_double("ratio", 0.1, "a ratio");
    cli.add_double("scale", 5.0, "a scale");
    const std::string h = cli.help();
    EXPECT_NE(h.find("default: 0.1"), std::string::npos) << h;
    EXPECT_NE(h.find("default: 5"), std::string::npos) << h;
    EXPECT_EQ(cli.get_double("ratio"), 0.1);
}

TEST(Cli, HelpTextMentionsOptions) {
    vu::Cli cli("prog", "does things");
    cli.add_int("count", 5, "how many");
    const std::string h = cli.help();
    EXPECT_NE(h.find("--count"), std::string::npos);
    EXPECT_NE(h.find("how many"), std::string::npos);
    EXPECT_NE(h.find("does things"), std::string::npos);
}

TEST(Log, LevelFiltering) {
    vu::set_log_level(vu::LogLevel::Warn);
    EXPECT_EQ(vu::log_level(), vu::LogLevel::Warn);
    vu::set_log_level(vu::LogLevel::Info);
    EXPECT_EQ(vu::log_level(), vu::LogLevel::Info);
}
