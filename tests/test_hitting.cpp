/// Tests for the first-passage (hitting-time) closed forms: mean time to
/// failure, mean recovery time, mean UP-run length.

#include <gtest/gtest.h>

#include <cmath>

#include "markov/chain.hpp"
#include "markov/expectation.hpp"
#include "markov/gen.hpp"
#include "util/rng.hpp"

namespace vm = volsched::markov;
using vm::ProcState;

namespace {

/// Empirical mean slots from `start` until first entry into `target`.
double monte_carlo_hitting(const vm::MarkovChain& chain, ProcState start,
                           ProcState target, int trials,
                           volsched::util::Rng& rng) {
    double total = 0;
    for (int i = 0; i < trials; ++i) {
        ProcState s = start;
        long long steps = 0;
        do {
            s = chain.sample_next(s, rng);
            ++steps;
        } while (s != target && steps < 1'000'000);
        total += static_cast<double>(steps);
    }
    return total / trials;
}

} // namespace

TEST(HittingTimes, MttfMatchesMonteCarlo) {
    volsched::util::Rng gen(3);
    const auto chain = vm::generate_chain(gen);
    const double predicted = vm::mean_time_to_down(chain.matrix());
    volsched::util::Rng rng(4);
    const double empirical =
        monte_carlo_hitting(chain, ProcState::Up, ProcState::Down, 40000, rng);
    EXPECT_NEAR(empirical, predicted, 0.03 * predicted);
}

TEST(HittingTimes, MttfFromReclaimedMatchesMonteCarlo) {
    volsched::util::Rng gen(5);
    const auto chain = vm::generate_chain(gen);
    const double predicted =
        vm::mean_time_to_down_from_reclaimed(chain.matrix());
    volsched::util::Rng rng(6);
    const double empirical = monte_carlo_hitting(chain, ProcState::Reclaimed,
                                                 ProcState::Down, 40000, rng);
    EXPECT_NEAR(empirical, predicted, 0.03 * predicted);
}

TEST(HittingTimes, RecoveryMatchesMonteCarlo) {
    volsched::util::Rng gen(7);
    const auto chain = vm::generate_chain(gen);
    const double predicted = vm::mean_recovery_time(chain.matrix());
    volsched::util::Rng rng(8);
    const double empirical =
        monte_carlo_hitting(chain, ProcState::Down, ProcState::Up, 40000, rng);
    EXPECT_NEAR(empirical, predicted, 0.03 * predicted);
}

TEST(HittingTimes, CrashFreeChainHasInfiniteMttf) {
    vm::TransitionMatrix m({{{0.9, 0.1, 0.0},
                             {0.4, 0.6, 0.0},
                             {0.5, 0.0, 0.5}}});
    EXPECT_TRUE(std::isinf(vm::mean_time_to_down(m)));
    EXPECT_TRUE(std::isinf(vm::mean_time_to_down_from_reclaimed(m)));
}

TEST(HittingTimes, PermanentlyDeadChainHasInfiniteRecovery) {
    vm::TransitionMatrix m({{{0.5, 0.0, 0.5},
                             {0.0, 1.0, 0.0},
                             {0.0, 0.5, 0.5}}});
    EXPECT_TRUE(std::isinf(vm::mean_recovery_time(m)));
}

TEST(HittingTimes, DirectCrashIsGeometric) {
    // No RECLAIMED detours: MTTF from UP is geometric with rate P_ud.
    vm::TransitionMatrix m({{{0.9, 0.0, 0.1},
                             {0.0, 0.0, 1.0},
                             {1.0, 0.0, 0.0}}});
    EXPECT_NEAR(vm::mean_time_to_down(m), 10.0, 1e-9);
}

TEST(HittingTimes, MeanUpRunFormula) {
    volsched::util::Rng gen(9);
    const auto m = vm::generate_matrix(gen);
    EXPECT_NEAR(vm::mean_up_run(m), 1.0 / (1.0 - m.p_uu()), 1e-12);
    vm::TransitionMatrix frozen; // identity: never leaves UP
    EXPECT_TRUE(std::isinf(vm::mean_up_run(frozen)));
}

TEST(HittingTimes, MttfExceedsMeanUpRun) {
    // Leaving UP does not mean crashing: the time to DOWN includes possible
    // returns from RECLAIMED, so it dominates the single-run length.
    for (int seed = 0; seed < 10; ++seed) {
        volsched::util::Rng gen(seed + 40);
        const auto m = vm::generate_matrix(gen);
        EXPECT_GT(vm::mean_time_to_down(m), vm::mean_up_run(m));
    }
}

TEST(HittingTimes, ConsistentWithStationaryCycleStructure) {
    // Renewal check: in steady state the chain spends pi_d of its time in
    // DOWN; the mean DOWN sojourn is 1/(1 - P_dd).  The implied cycle ratio
    // must match the hitting-time scale (loose sanity bound).
    volsched::util::Rng gen(77);
    const auto chain = vm::generate_chain(gen);
    const auto& m = chain.matrix();
    const double mttf = vm::mean_time_to_down(m);
    const double down_sojourn = 1.0 / (1.0 - m.p_dd());
    const double implied_pi_d = down_sojourn / (down_sojourn + mttf);
    // The one-sojourn approximation ignores d -> r -> d revisits during the
    // recovery phase, so only a factor-2 envelope is guaranteed for recipe
    // chains.
    EXPECT_GT(implied_pi_d, 0.5 * chain.stationary().pi_d);
    EXPECT_LT(implied_pi_d, 2.0 * chain.stationary().pi_d);
}
