#include "offline/exact.hpp"

#include <gtest/gtest.h>

#include "offline/instance.hpp"
#include "offline/mct.hpp"
#include "util/rng.hpp"

namespace vo = volsched::offline;

namespace {

vo::OfflineInstance always_up(int p, int w, int ncom, int t_prog, int t_data,
                              int m, int horizon) {
    vo::OfflineInstance inst;
    inst.platform.w.assign(static_cast<std::size_t>(p), w);
    inst.platform.ncom = ncom;
    inst.platform.t_prog = t_prog;
    inst.platform.t_data = t_data;
    inst.num_tasks = m;
    inst.horizon = horizon;
    inst.states.assign(static_cast<std::size_t>(p),
                       std::vector<volsched::markov::ProcState>(
                           static_cast<std::size_t>(horizon),
                           volsched::markov::ProcState::Up));
    return inst;
}

} // namespace

TEST(Exact, SingleProcSingleTask) {
    const auto inst = always_up(1, 2, 1, 1, 1, 1, 10);
    const auto res = vo::solve_exact(inst);
    ASSERT_TRUE(res.proven);
    ASSERT_TRUE(res.feasible);
    // prog 0, data 1, compute 2-3 -> makespan 4.
    EXPECT_EQ(res.makespan, 4);
}

TEST(Exact, ParallelismWithUnboundedBandwidth) {
    const auto inst = always_up(2, 2, 2, 1, 1, 2, 10);
    const auto res = vo::solve_exact(inst);
    ASSERT_TRUE(res.feasible);
    EXPECT_EQ(res.makespan, 4); // both procs in lockstep
}

TEST(Exact, BandwidthSerializationCost) {
    const auto inst = always_up(2, 2, 1, 1, 1, 2, 12);
    const auto res = vo::solve_exact(inst);
    ASSERT_TRUE(res.feasible);
    // Optimal interleaving: prog P0 (0), data P0 (1), prog P1 (2),
    // data P1 (3); computes 2-3 and 4-5 -> makespan 6... or pipeline both
    // tasks on P0: prog 0, data0 1, data1 2, compute0 2-3, compute1 4-5
    // -> also 6.
    EXPECT_EQ(res.makespan, 6);
}

TEST(Exact, InfeasibleWhenHorizonTooShort) {
    const auto inst = always_up(1, 5, 1, 1, 1, 1, 4);
    const auto res = vo::solve_exact(inst);
    ASSERT_TRUE(res.proven);
    EXPECT_FALSE(res.feasible);
}

TEST(Exact, ZeroDataCostGrabsTasksInstantly) {
    // Tprog = 2, Tdata = 0, w = 1, m = 3, single proc:
    // prog 0-1, computes slots 2, 3, 4 -> makespan 5.
    const auto inst = always_up(1, 1, 1, 2, 0, 3, 10);
    const auto res = vo::solve_exact(inst);
    ASSERT_TRUE(res.feasible);
    EXPECT_EQ(res.makespan, 5);
}

TEST(Exact, PaperMctCounterExample) {
    // Section 4's example: Tprog = Tdata = 2, m = 2, p = 2, w = 2, ncom = 1,
    // S1 = [u u u u u u r r r], S2 = [r u u u u u u u u].
    // The optimum waits one slot and funnels everything through P2: 9 slots.
    vo::OfflineInstance inst;
    inst.platform.w = {2, 2};
    inst.platform.ncom = 1;
    inst.platform.t_prog = 2;
    inst.platform.t_data = 2;
    inst.num_tasks = 2;
    inst.horizon = 9;
    inst.states = vo::states_from_strings({"uuuuuurrr", "ruuuuuuuu"});
    const auto res = vo::solve_exact(inst);
    ASSERT_TRUE(res.proven);
    ASSERT_TRUE(res.feasible);
    EXPECT_EQ(res.makespan, 9);
}

TEST(Exact, PaperCounterExampleGreedyStartIsWorse) {
    // Same instance, but emulate MCT's greedy first decision by denying P2
    // (make it RECLAIMED until slot 5): committing P1 to task 1 first, the
    // remaining schedule cannot finish both tasks by slot 9.
    vo::OfflineInstance inst;
    inst.platform.w = {2, 2};
    inst.platform.ncom = 1;
    inst.platform.t_prog = 2;
    inst.platform.t_data = 2;
    inst.num_tasks = 2;
    inst.horizon = 9;
    inst.states = vo::states_from_strings({"uuuuuurrr", "rrrrruuuu"});
    const auto res = vo::solve_exact(inst);
    ASSERT_TRUE(res.proven);
    EXPECT_FALSE(res.feasible); // P2's window is now too short
}

TEST(Exact, MatchesValidatedScheduleOnPaperExample) {
    // Build the paper's optimal 9-slot schedule explicitly and validate it.
    vo::OfflineInstance inst;
    inst.platform.w = {2, 2};
    inst.platform.ncom = 1;
    inst.platform.t_prog = 2;
    inst.platform.t_data = 2;
    inst.num_tasks = 2;
    inst.horizon = 9;
    inst.states = vo::states_from_strings({"uuuuuurrr", "ruuuuuuuu"});
    auto sched = vo::Schedule::idle(inst);
    // P2 (index 1): prog slots 1-2, data0 slots 3-4, compute0 5-6 with
    // data1 slots 5-6 overlapped, compute1 7-8.
    sched.actions[1][1].recv = vo::kRecvProg;
    sched.actions[1][2].recv = vo::kRecvProg;
    sched.actions[1][3].recv = 0;
    sched.actions[1][4].recv = 0;
    sched.actions[1][5].compute = 0;
    sched.actions[1][5].recv = 1;
    sched.actions[1][6].compute = 0;
    sched.actions[1][6].recv = 1;
    sched.actions[1][7].compute = 1;
    sched.actions[1][8].compute = 1;
    const auto v = vo::validate(inst, sched);
    ASSERT_TRUE(v.valid) << v.error;
    EXPECT_TRUE(v.all_done);
    EXPECT_EQ(v.makespan, 9);
}

TEST(Exact, NodeCapReportsUnproven) {
    const auto inst = always_up(3, 2, 2, 2, 2, 4, 20);
    const auto res = vo::solve_exact(inst, /*node_cap=*/50);
    EXPECT_FALSE(res.proven);
}

TEST(Exact, RejectsTooManyTasks) {
    const auto inst = always_up(1, 1, 1, 1, 1, 21, 100);
    EXPECT_THROW(vo::solve_exact(inst), std::invalid_argument);
}

TEST(Exact, RejectsMalformedInstance) {
    vo::OfflineInstance inst; // empty
    EXPECT_THROW(vo::solve_exact(inst), std::invalid_argument);
}

TEST(Exact, NeverBeatsAnyValidSchedule) {
    // Sanity: on random instances, the MCT schedule's makespan is an upper
    // bound for the exact optimum.
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        volsched::util::Rng rng(seed + 77);
        auto inst = always_up(2, 1 + static_cast<int>(rng.uniform_int(0, 1)),
                              2, 1, 1, 3, 14);
        for (auto& row : inst.states)
            for (auto& s : row)
                if (rng.bernoulli(0.25))
                    s = volsched::markov::ProcState::Reclaimed;
        const auto mct = vo::mct_offline(inst);
        const auto exact = vo::solve_exact(inst, 5'000'000);
        if (!exact.proven) continue;
        if (mct.feasible) {
            ASSERT_TRUE(exact.feasible);
            EXPECT_LE(exact.makespan, mct.makespan) << "seed " << seed;
        }
    }
}
