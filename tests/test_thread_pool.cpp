#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "exp/sweep.hpp"
#include "util/rng.hpp"

namespace vu = volsched::util;
namespace ve = volsched::exp;

TEST(ThreadPool, RunsAllSubmittedTasks) {
    vu::ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
    vu::ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for(hits.size(), [&hits](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesFirstException) {
    vu::ThreadPool pool(2);
    for (int i = 0; i < 10; ++i)
        pool.submit([i] {
            if (i == 3) throw std::runtime_error("boom");
        });
    EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ThreadPool, UsableAfterException) {
    vu::ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait_idle(), std::runtime_error);
    std::atomic<int> counter{0};
    pool.submit([&counter] { ++counter; });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
    vu::ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        pool.submit([&order, i] { order.push_back(i); });
    pool.wait_idle();
    // One worker: strict FIFO execution.
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
    vu::ThreadPool pool(2);
    pool.wait_idle();
    SUCCEED();
}

namespace {

/// Unevenly-sized busy work so task completion order is thoroughly shuffled
/// relative to submission order: heavy and light tasks interleave and the
/// queue drains out of index order on any pool with >1 worker.
double busy_work(std::size_t i) {
    vu::Rng rng(vu::mix_seed(0xB05Bu, i));
    const std::size_t spins = 64 + 8 * (rng() % 512);
    double acc = 0.0;
    for (std::size_t k = 0; k < spins; ++k)
        acc += std::sqrt(static_cast<double>(i + k + 1));
    return acc;
}

} // namespace

/// The determinism contract the parallel-campaign work inherits: per-slot
/// results land in per-index storage and are reduced *in index order*, so
/// the floating-point sum is bit-identical to a serial run no matter how
/// the pool interleaves completions.  Summing in completion order instead
/// would reassociate the doubles and drift.
TEST(ThreadPool, OrderedReductionBitMatchesSerialUnderConcurrency) {
    constexpr std::size_t kTasks = 512;

    // Serial reference, single thread of execution, index order.
    std::vector<double> serial(kTasks);
    for (std::size_t i = 0; i < kTasks; ++i) serial[i] = busy_work(i);
    double serial_sum = 0.0;
    for (double v : serial) serial_sum += v;

    for (std::size_t threads : {2u, 3u, 7u}) {
        vu::ThreadPool pool(threads);
        std::vector<double> partial(kTasks, 0.0);
        std::vector<std::size_t> completion_order;
        std::mutex order_mutex;
        pool.parallel_for(kTasks, [&](std::size_t i) {
            partial[i] = busy_work(i);
            std::lock_guard lock(order_mutex);
            completion_order.push_back(i);
        });
        ASSERT_EQ(completion_order.size(), kTasks);

        // Ordered reduction: bit-identical, not just approximately equal.
        double pool_sum = 0.0;
        for (double v : partial) pool_sum += v;
        EXPECT_EQ(pool_sum, serial_sum) << "threads=" << threads;
        EXPECT_EQ(partial, serial) << "threads=" << threads;
    }
}

/// Repeated waves through one pool: parallel_for barriers followed by loose
/// submit()s must not lose tasks or deadlock (exercises the idle/active
/// bookkeeping under contention; run under the tsan preset).
TEST(ThreadPool, RepeatedWavesRetainEveryTask) {
    vu::ThreadPool pool(4);
    std::atomic<long long> total{0};
    for (int wave = 0; wave < 20; ++wave) {
        pool.parallel_for(50, [&](std::size_t) { ++total; });
        for (int i = 0; i < 10; ++i)
            pool.submit([&total] { ++total; });
        pool.wait_idle();
    }
    EXPECT_EQ(total.load(), 20 * (50 + 10));
}

namespace {

/// Bit-identical table comparison: exact ==, not almost-equal (mirrors
/// test_campaign's shard-merge contract).
void expect_tables_identical(const ve::DfbTable& a, const ve::DfbTable& b) {
    ASSERT_EQ(a.num_heuristics(), b.num_heuristics());
    EXPECT_EQ(a.instances(), b.instances());
    for (std::size_t h = 0; h < a.num_heuristics(); ++h) {
        EXPECT_EQ(a.mean_dfb(h), b.mean_dfb(h));
        EXPECT_EQ(a.dfb(h).variance(), b.dfb(h).variance());
        EXPECT_EQ(a.dfb(h).min(), b.dfb(h).min());
        EXPECT_EQ(a.dfb(h).max(), b.dfb(h).max());
        EXPECT_EQ(a.makespan(h).mean(), b.makespan(h).mean());
        EXPECT_EQ(a.wins(h), b.wins(h));
    }
}

template <typename Key>
void expect_maps_identical(const std::map<Key, ve::DfbTable>& ma,
                           const std::map<Key, ve::DfbTable>& mb) {
    ASSERT_EQ(ma.size(), mb.size());
    for (const auto& [key, table] : ma) {
        const auto it = mb.find(key);
        ASSERT_NE(it, mb.end()) << "missing key " << key;
        expect_tables_identical(table, it->second);
    }
}

} // namespace

/// run_sweep over the pool is the seam the in-process parallel-campaign
/// work will widen: pin that thread count never leaks into results.  Every
/// instance derives its RNG streams from (master_seed, seed_ordinal, trial)
/// and per-job tables merge in job order, so 1, 2, and 5 threads must
/// produce bit-identical SweepResults.
TEST(ThreadPool, RunSweepBitIdenticalAcrossThreadCounts) {
    ve::SweepConfig cfg;
    cfg.tasks_values = {3, 4};
    cfg.ncom_values = {2};
    cfg.wmin_values = {1, 2};
    cfg.scenarios_per_cell = 2;
    cfg.trials_per_scenario = 2;
    cfg.p = 4;
    cfg.run.iterations = 2;
    cfg.master_seed = 2026;
    const std::vector<std::string> heuristics = {"mct", "emct"};

    cfg.threads = 1;
    const ve::SweepResult serial = ve::run_sweep(cfg, heuristics);
    ASSERT_GT(serial.overall.instances(), 0);

    for (std::size_t threads : {2u, 5u}) {
        cfg.threads = threads;
        const ve::SweepResult parallel = ve::run_sweep(cfg, heuristics);
        EXPECT_EQ(parallel.heuristics, serial.heuristics);
        expect_tables_identical(parallel.overall, serial.overall);
        expect_maps_identical(parallel.by_wmin, serial.by_wmin);
        expect_maps_identical(parallel.by_tasks, serial.by_tasks);
        expect_maps_identical(parallel.by_ncom, serial.by_ncom);
        expect_maps_identical(parallel.by_checkpoint, serial.by_checkpoint);
    }
}

TEST(ThreadPool, LargeReductionIsCorrect) {
    vu::ThreadPool pool(4);
    std::vector<long long> partial(1000, 0);
    pool.parallel_for(partial.size(), [&partial](std::size_t i) {
        partial[i] = static_cast<long long>(i) * i;
    });
    const long long total =
        std::accumulate(partial.begin(), partial.end(), 0LL);
    long long expect = 0;
    for (long long i = 0; i < 1000; ++i) expect += i * i;
    EXPECT_EQ(total, expect);
}
