#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace vu = volsched::util;

TEST(ThreadPool, RunsAllSubmittedTasks) {
    vu::ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
    vu::ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for(hits.size(), [&hits](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesFirstException) {
    vu::ThreadPool pool(2);
    for (int i = 0; i < 10; ++i)
        pool.submit([i] {
            if (i == 3) throw std::runtime_error("boom");
        });
    EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ThreadPool, UsableAfterException) {
    vu::ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait_idle(), std::runtime_error);
    std::atomic<int> counter{0};
    pool.submit([&counter] { ++counter; });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
    vu::ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        pool.submit([&order, i] { order.push_back(i); });
    pool.wait_idle();
    // One worker: strict FIFO execution.
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
    vu::ThreadPool pool(2);
    pool.wait_idle();
    SUCCEED();
}

TEST(ThreadPool, LargeReductionIsCorrect) {
    vu::ThreadPool pool(4);
    std::vector<long long> partial(1000, 0);
    pool.parallel_for(partial.size(), [&partial](std::size_t i) {
        partial[i] = static_cast<long long>(i) * i;
    });
    const long long total =
        std::accumulate(partial.begin(), partial.end(), 0LL);
    long long expect = 0;
    for (long long i = 0; i < 1000; ++i) expect += i * i;
    EXPECT_EQ(total, expect);
}
