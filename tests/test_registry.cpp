/// Facade regression suite: scheduler registry (self-registration, spec
/// grammar round-trips, duplicate rejection, did-you-mean errors) and the
/// fluent Simulation/Experiment builders (validation diagnostics, and
/// bit-identity of the builder path against the raw constructor path).

#include <gtest/gtest.h>

#include <stdexcept>

#include "support/fixtures.hpp"
#include "volsched/volsched.hpp"

namespace va = volsched::api;
namespace vc = volsched::core;
namespace vm = volsched::markov;
namespace vs = volsched::sim;
namespace ve = volsched::exp;
namespace vtr = volsched::trace;
namespace vt = volsched::test;

namespace {

/// A registry-visible dummy scheduler registered from this TU via the
/// public macro — proves that new heuristics plug in without touching any
/// core file.
class FirstEligibleScheduler final : public vs::Scheduler {
public:
    vs::ProcId select(const vs::SchedView&,
                      std::span<const vs::ProcId> eligible,
                      std::span<const int>, volsched::util::Rng&) override {
        return eligible.front();
    }
    [[nodiscard]] std::string_view name() const override {
        return "test-first";
    }
};

std::string message_of(const std::function<void()>& fn) {
    try {
        fn();
    } catch (const std::invalid_argument& e) {
        return e.what();
    }
    return {};
}

} // namespace

VOLSCHED_REGISTER_SCHEDULER(test_first, {
    "test-first", "test-only: always picks the first eligible processor",
    [](const va::SchedulerSpec& spec, const va::SchedulerRegistry&)
        -> std::unique_ptr<vs::Scheduler> {
        va::require_no_options(spec);
        return std::make_unique<FirstEligibleScheduler>();
    }});

// ---------------------------------------------------------------------------
// Spec grammar.
// ---------------------------------------------------------------------------

TEST(SchedulerSpec, ParsesPlainNames) {
    const auto spec = va::SchedulerSpec::parse("emct*");
    EXPECT_EQ(spec.name(), "emct*");
    EXPECT_TRUE(spec.options().empty());
    EXPECT_FALSE(spec.has_inner());
}

TEST(SchedulerSpec, ParsesWrapperChainsAndOptions) {
    const auto spec = va::SchedulerSpec::parse("thr(percent=50):emct");
    EXPECT_EQ(spec.name(), "thr");
    ASSERT_NE(spec.option("percent"), nullptr);
    EXPECT_EQ(*spec.option("percent"), "50");
    ASSERT_TRUE(spec.has_inner());
    EXPECT_EQ(spec.inner().name(), "emct");

    const auto nested = va::SchedulerSpec::parse("thr25:thr50:emct");
    EXPECT_EQ(nested.name(), "thr25");
    ASSERT_TRUE(nested.has_inner());
    EXPECT_EQ(nested.inner().name(), "thr50");
    ASSERT_TRUE(nested.inner().has_inner());
    EXPECT_EQ(nested.inner().inner().name(), "emct");
}

TEST(SchedulerSpec, CanonicalRoundTrips) {
    for (const char* text :
         {"emct*", "thr50:emct", "thr(percent=50):emct",
          "thr(percent=25):thr(percent=50):mct*", "random2w",
          "a(k=v,k2=v2):b"}) {
        const auto spec = va::SchedulerSpec::parse(text);
        EXPECT_EQ(spec.canonical(), text) << text;
        EXPECT_EQ(va::SchedulerSpec::parse(spec.canonical()), spec) << text;
    }
    // Whitespace normalizes away.
    EXPECT_EQ(va::SchedulerSpec::parse(" thr50 : emct ").canonical(),
              "thr50:emct");
    EXPECT_EQ(va::SchedulerSpec::parse("thr( percent = 50 ):emct").canonical(),
              "thr(percent=50):emct");
}

TEST(SchedulerSpec, RejectsMalformedInput) {
    for (const char* text :
         {"", "  ", "thr50:", ":emct", "a(", "a)", "a()", "a(b)", "a(b=c",
          "a(b=c,b=d)", "a(=c)", "a(b=)", "a(,)", "emct::mct"}) {
        EXPECT_THROW((void)va::SchedulerSpec::parse(text),
                     std::invalid_argument)
            << "accepted '" << text << "'";
    }
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(SchedulerRegistry, AllPaperAndExtensionNamesResolve) {
    const auto& registry = va::SchedulerRegistry::instance();
    for (const auto& name : vc::all_heuristic_names()) {
        EXPECT_TRUE(registry.contains(name)) << name;
        EXPECT_EQ(registry.make(name)->name(), name);
    }
    for (const auto& name : vc::extension_heuristic_names())
        EXPECT_EQ(registry.make(name)->name(), name);
}

TEST(SchedulerRegistry, MacroRegistrationFromThisTuIsVisible) {
    // Both through the registry and through the legacy factory shim.
    EXPECT_TRUE(va::SchedulerRegistry::instance().contains("test-first"));
    EXPECT_EQ(vc::make_scheduler("test-first")->name(), "test-first");
}

TEST(SchedulerRegistry, ShorthandAndKeyValueSpecsAreEquivalent) {
    const auto& registry = va::SchedulerRegistry::instance();
    const auto a = registry.make("thr50:emct");
    const auto b = registry.make("thr(percent=50):emct");
    EXPECT_EQ(a->name(), b->name());
    EXPECT_EQ(a->name(), "thr50:emct");
}

TEST(SchedulerRegistry, DuplicateRegistrationIsRejected) {
    auto& registry = va::SchedulerRegistry::instance();
    va::SchedulerInfo info{
        "test-dup", "test-only duplicate probe",
        [](const va::SchedulerSpec&, const va::SchedulerRegistry&)
            -> std::unique_ptr<vs::Scheduler> {
            return std::make_unique<FirstEligibleScheduler>();
        }};
    registry.add(info);
    EXPECT_THROW(registry.add(info), std::invalid_argument);
    EXPECT_TRUE(registry.erase("test-dup"));
    EXPECT_FALSE(registry.erase("test-dup"));
}

TEST(SchedulerRegistry, RejectsBadRegistrations) {
    auto& registry = va::SchedulerRegistry::instance();
    EXPECT_THROW(registry.add({"", "no name", nullptr}),
                 std::invalid_argument);
    EXPECT_THROW(registry.add({"bad:name", "structural char", nullptr}),
                 std::invalid_argument);
    EXPECT_THROW(registry.add({"test-nofactory", "null factory", nullptr}),
                 std::invalid_argument);
}

TEST(SchedulerRegistry, UnknownNamesGetEditDistanceSuggestions) {
    const auto& registry = va::SchedulerRegistry::instance();
    const std::string transposed =
        message_of([&] { (void)registry.make("emtc"); });
    EXPECT_NE(transposed.find("did you mean 'emct'"), std::string::npos)
        << transposed;
    // Case-insensitive match: the legacy factory rejected "EMCT" with no
    // hint; the registry still throws but points at the lowercase name.
    const std::string upper =
        message_of([&] { (void)registry.make("EMCT"); });
    EXPECT_NE(upper.find("did you mean 'emct'"), std::string::npos) << upper;
    // Nothing close: no misleading suggestion.
    const std::string garbage = message_of(
        [&] { (void)registry.make("qqqqqqqqqqqqqqqqqq"); });
    EXPECT_EQ(garbage.find("did you mean"), std::string::npos) << garbage;
}

TEST(SchedulerRegistry, WrapperStageRulesAreEnforced) {
    const auto& registry = va::SchedulerRegistry::instance();
    // thr without an inner stage / percent out of range / unknown option.
    EXPECT_THROW((void)registry.make("thr50"), std::invalid_argument);
    EXPECT_THROW((void)registry.make("thr:mct"), std::invalid_argument);
    EXPECT_THROW((void)registry.make("thr500:mct"), std::invalid_argument);
    EXPECT_THROW((void)registry.make("thr(pct=50):mct"),
                 std::invalid_argument);
    // Inner stage on a non-wrapper, options on an option-free scheduler.
    EXPECT_THROW((void)registry.make("emct:mct"), std::invalid_argument);
    EXPECT_THROW((void)registry.make("mct(foo=1)"), std::invalid_argument);
}

TEST(SchedulerRegistry, ValidateMatchesMake) {
    const auto& registry = va::SchedulerRegistry::instance();
    EXPECT_NO_THROW(registry.validate("thr(percent=25):emct*"));
    EXPECT_THROW(registry.validate("thr(percent=25):emtc"),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SimulationBuilder.
// ---------------------------------------------------------------------------

TEST(SimulationBuilder, MissingIngredientsProduceDiagnostics) {
    const auto setup = vt::recipe_setup(4, 2, 2, 11);

    const std::string no_platform = message_of(
        [&] { (void)vs::Simulation::builder().markov(setup.chains).build(); });
    EXPECT_NE(no_platform.find("no platform"), std::string::npos)
        << no_platform;

    const std::string no_availability = message_of(
        [&] { (void)vs::Simulation::builder().platform(setup.platform).build(); });
    EXPECT_NE(no_availability.find("no availability source"),
              std::string::npos)
        << no_availability;
}

TEST(SimulationBuilder, SizeMismatchesProduceDiagnostics) {
    const auto setup = vt::recipe_setup(4, 2, 2, 11);

    auto short_chains = setup.chains;
    short_chains.pop_back();
    const std::string wrong_models = message_of([&] {
        (void)vs::Simulation::builder()
            .platform(setup.platform)
            .markov(short_chains)
            .build();
    });
    EXPECT_NE(wrong_models.find("3 models"), std::string::npos)
        << wrong_models;
    EXPECT_NE(wrong_models.find("4 processors"), std::string::npos)
        << wrong_models;

    const std::string wrong_beliefs = message_of([&] {
        (void)vs::Simulation::builder()
            .platform(setup.platform)
            .markov(setup.chains)
            .beliefs(short_chains)
            .build();
    });
    EXPECT_NE(wrong_beliefs.find(".beliefs(...) got 3"), std::string::npos)
        << wrong_beliefs;
}

TEST(SimulationBuilder, RejectsTwoSourcesAndDoubleBuild) {
    const auto setup = vt::recipe_setup(3, 2, 2, 5);
    EXPECT_THROW((void)vs::Simulation::builder()
                     .markov(setup.chains)
                     .markov(setup.chains),
                 std::invalid_argument);

    auto builder = vs::Simulation::builder();
    builder.platform(setup.platform).markov(setup.chains);
    (void)builder.build();
    EXPECT_THROW((void)builder.build(), std::invalid_argument);
}

TEST(SimulationBuilder, BuilderPathBitMatchesConstructorPath) {
    const auto sc = vt::small_scenario(77);
    const auto rs = ve::realize(sc);
    vs::EngineConfig cfg = vt::audited_config(2, sc.tasks);

    for (const char* name : {"emct*", "mct", "random2w"}) {
        vs::ActionTrace ta, tb;
        vs::EngineConfig ca = cfg;
        ca.actions = &ta;
        const auto a =
            vs::Simulation::from_chains(rs.platform, rs.chains, ca, 5);
        const auto ma = a.run(*vc::make_scheduler(name));

        const auto b = vs::Simulation::builder()
                           .platform(rs.platform)
                           .markov(rs.chains)
                           .config(cfg)
                           .actions(&tb)
                           .seed(5)
                           .build();
        const auto mb =
            b.run(*va::SchedulerRegistry::instance().make(name));

        EXPECT_EQ(ma.makespan, mb.makespan) << name;
        EXPECT_EQ(ma.completed, mb.completed) << name;
        EXPECT_EQ(ma.tasks_completed, mb.tasks_completed) << name;
        EXPECT_EQ(ma.down_events, mb.down_events) << name;
        EXPECT_EQ(ma.iteration_ends, mb.iteration_ends) << name;

        ASSERT_EQ(ta.procs(), tb.procs()) << name;
        ASSERT_EQ(ta.slots(), tb.slots()) << name;
        for (int q = 0; q < ta.procs(); ++q) {
            const auto& ra = ta.row(q);
            const auto& rb = tb.row(q);
            for (std::size_t t = 0; t < ra.size(); ++t) {
                ASSERT_EQ(ra[t].recv, rb[t].recv) << name;
                ASSERT_EQ(ra[t].compute, rb[t].compute) << name;
            }
        }
    }
}

TEST(SimulationBuilder, ReplayAndEmpiricalSourcesRun) {
    const auto setup = vt::recipe_setup(4, 2, 1, 3);
    volsched::util::Rng rng(9);
    std::vector<vtr::RecordedTrace> traces;
    for (const auto& chain : setup.chains) {
        const vm::MarkovAvailability proto(chain);
        traces.push_back(vtr::record(proto, 4000, rng));
    }

    // replay(): uninformed — the traces drive availability verbatim.
    const auto replayed = vs::Simulation::builder()
                              .platform(setup.platform)
                              .replay(traces)
                              .iterations(2)
                              .tasks_per_iteration(4)
                              .seed(3)
                              .build();
    const auto mr = replayed.run(*vc::make_scheduler("mct"));
    EXPECT_TRUE(mr.completed);

    // empirical(): same replay plus per-trace fitted Markov beliefs, which
    // informed heuristics can exploit.
    const auto empirical = vs::Simulation::builder()
                               .platform(setup.platform)
                               .empirical(traces)
                               .iterations(2)
                               .tasks_per_iteration(4)
                               .seed(3)
                               .build();
    const auto me = empirical.run(*vc::make_scheduler("emct*"));
    EXPECT_TRUE(me.completed);

    EXPECT_THROW((void)vs::Simulation::builder()
                     .platform(setup.platform)
                     .empirical({vtr::RecordedTrace{}}),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ExperimentBuilder.
// ---------------------------------------------------------------------------

TEST(ExperimentBuilder, ValidatesHeuristicsAndGrid) {
    EXPECT_THROW((void)va::ExperimentBuilder().run(), std::invalid_argument);
    EXPECT_THROW(va::ExperimentBuilder().heuristics({"emtc"}),
                 std::invalid_argument);
    const std::string typo = message_of(
        [&] { va::ExperimentBuilder().heuristics({"mct", "emtc"}); });
    EXPECT_NE(typo.find("did you mean 'emct'"), std::string::npos) << typo;

    va::ExperimentBuilder degenerate;
    degenerate.heuristics({"mct"}).tasks({});
    EXPECT_THROW((void)degenerate.sweep_config(), std::invalid_argument);
    va::ExperimentBuilder negative;
    negative.heuristics({"mct"}).trials(0);
    EXPECT_THROW((void)negative.run(), std::invalid_argument);
}

TEST(ExperimentBuilder, RunMatchesRawSweep) {
    va::ExperimentBuilder experiment;
    experiment.heuristics({"mct", "emct"})
        .tasks({4})
        .ncom({2})
        .wmin({1, 2})
        .processors(4)
        .scenarios_per_cell(1)
        .trials(2)
        .iterations(2)
        .seed(0xFEED)
        .threads(2);

    const auto via_builder = experiment.run();

    ve::SweepConfig cfg;
    cfg.tasks_values = {4};
    cfg.ncom_values = {2};
    cfg.wmin_values = {1, 2};
    cfg.p = 4;
    cfg.scenarios_per_cell = 1;
    cfg.trials_per_scenario = 2;
    cfg.run.iterations = 2;
    cfg.master_seed = 0xFEED;
    cfg.threads = 2;
    const auto raw = ve::run_sweep(cfg, {"mct", "emct"});

    ASSERT_EQ(via_builder.heuristics, raw.heuristics);
    ASSERT_EQ(via_builder.overall.instances(), raw.overall.instances());
    for (std::size_t h = 0; h < raw.heuristics.size(); ++h)
        EXPECT_DOUBLE_EQ(via_builder.overall.mean_dfb(h),
                         raw.overall.mean_dfb(h));
}

TEST(RawSweep, RejectsUnknownHeuristicUpFront) {
    ve::SweepConfig cfg;
    cfg.tasks_values = {4};
    cfg.ncom_values = {2};
    cfg.wmin_values = {1};
    cfg.scenarios_per_cell = 1;
    cfg.trials_per_scenario = 1;
    EXPECT_THROW((void)ve::run_sweep(cfg, {"mct", "not-a-heuristic"}),
                 std::invalid_argument);
}
