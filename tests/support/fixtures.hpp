#pragma once
/// \file fixtures.hpp
/// Shared deterministic test fixtures: canonical 3-state chains with known
/// closed-form properties, the Section 7 platform recipe used by the engine
/// tests, audited engine configs, small scenario builders, and tolerance
/// helpers for Markov expectations.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "exp/scenario.hpp"
#include "markov/chain.hpp"
#include "sim/engine.hpp"
#include "sim/platform.hpp"
#include "sim/scheduler.hpp"

namespace volsched::test {

// -------------------------------------------------------------------------
// Canonical chains.
// -------------------------------------------------------------------------

/// Chain that never leaves UP (P_uu = 1): reliability formulas collapse.
markov::MarkovChain always_up_chain();

/// Chain with frequent RECLAIMED detours but no crashes.
markov::MarkovChain flaky_chain(double p_ur);

/// Chain with a real crash probability.
markov::MarkovChain crashy_chain(double p_ud);

/// The paper's generation shape with a fixed self-transition probability:
/// P(x,x) = self and the remaining mass split evenly over the other states.
markov::MarkovChain self_split_chain(double self);

/// Fully general chain from the two free entries of each row (third entry is
/// the complement).  Rows: UP = (uu, ur, .), RECLAIMED = (ru, rr, .),
/// DOWN = (du, dr, .).
markov::MarkovChain chain3(double uu, double ur, double ru, double rr,
                           double du = 0.5, double dr = 0.25);

// -------------------------------------------------------------------------
// Platforms + engine configs.
// -------------------------------------------------------------------------

/// A platform plus one availability chain per processor, drawn with the
/// Section 7 recipe (w_q ~ U[wmin, 10*wmin], t_data = wmin,
/// t_prog = 5*wmin) from a single deterministic stream.
struct RecipeSetup {
    sim::Platform platform;
    std::vector<markov::MarkovChain> chains;
};

RecipeSetup recipe_setup(int p, int ncom, int wmin, std::uint64_t seed);

/// Engine config with invariant auditing on — the default for engine tests.
sim::EngineConfig audited_config(int iterations, int tasks,
                                 int replica_cap = 2,
                                 long long max_slots = 2'000'000);

/// A deliberately small Section 7 scenario (p processors, n tasks) that
/// keeps engine tests fast while exercising the full realize() path.
exp::Scenario small_scenario(std::uint64_t seed, int p = 8, int tasks = 6);

// -------------------------------------------------------------------------
// Hand-built scheduling rounds (no engine).
// -------------------------------------------------------------------------

/// One assignment-round snapshot: p UP processors holding the program with
/// free buffers, plus optional per-processor belief chains.  Used by the
/// heuristic unit tests to probe Scheduler::select in isolation.
struct ViewFixture {
    sim::Platform platform;
    std::vector<sim::ProcView> procs;
    std::vector<markov::MarkovChain> chains;
    sim::SchedView view;

    ViewFixture(int p, int ncom, int t_prog, int t_data, int w = 1);

    /// Construct directly from belief chains (one processor per chain) with
    /// the default small-platform parameters of the random-heuristic tests.
    explicit ViewFixture(std::vector<markov::MarkovChain> cs, int w = 2,
                         int ncom = 2, int t_prog = 5, int t_data = 1);

    // view/procs hold pointers and spans into this object; copying or moving
    // a finalized fixture would leave them dangling.
    ViewFixture(const ViewFixture&) = delete;
    ViewFixture& operator=(const ViewFixture&) = delete;

    /// Attach per-proc belief chains (the fixture keeps them alive).
    void set_chains(std::vector<markov::MarkovChain> cs);

    /// Builds the SchedView over the current procs and returns it.
    sim::SchedView& finalize(int nactive = 0, int remaining = 1);
};

/// Identity eligibility: {0, 1, ..., p-1}.
std::vector<sim::ProcId> all_procs(int p);

/// Empirical per-processor selection counts over `n` single-instance rounds
/// with every processor eligible, under a fixed RNG seed.
std::vector<long long> pick_counts(ViewFixture& fixture, sim::Scheduler& sched,
                                   int n, std::uint64_t rng_seed);

// -------------------------------------------------------------------------
// Tolerance helpers.
// -------------------------------------------------------------------------

/// Default absolute tolerance for comparing Markov closed forms against
/// simulation / power-iteration estimates.
inline constexpr double kMarkovTol = 1e-9;

/// EXPECT_TRUE(near_rel(a, b, 0.01)): |a-b| <= tol * max(|a|, |b|, 1).
::testing::AssertionResult near_rel(double actual, double expected,
                                    double rel_tol);

/// True when two transition matrices are bit-identical (determinism checks).
bool same_matrix(const markov::TransitionMatrix& a,
                 const markov::TransitionMatrix& b);

/// Pearson chi-squared statistic of observed counts against expected
/// probabilities (sizes must match; probabilities need not be normalized).
double chi_squared(std::span<const long long> observed,
                   std::span<const double> expected_probs);

} // namespace volsched::test
