#include "support/golden.hpp"

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>

namespace volsched::test {
namespace fs = std::filesystem;

namespace {

fs::path unique_temp_path() {
    // Per-process random tag + per-call counter: unique across the parallel
    // ctest processes that share the system temp directory, without any
    // POSIX-only API.
    static const unsigned process_tag = std::random_device{}();
    static std::atomic<unsigned> counter{0};
    std::ostringstream name;
    name << "volsched-test-" << std::hex << process_tag << "-" << std::dec
         << counter.fetch_add(1, std::memory_order_relaxed);
    return fs::temp_directory_path() / name.str();
}

} // namespace

TempDir::TempDir() : path_(unique_temp_path()) {
    fs::create_directories(path_);
}

TempDir::~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec); // best effort; never throw from a dtor
}

std::string read_file(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    if (!in) throw std::runtime_error("cannot read " + p.string());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void write_file(const fs::path& p, const std::string& content) {
    if (p.has_parent_path()) fs::create_directories(p.parent_path());
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write " + p.string());
    out << content;
    if (!out) throw std::runtime_error("write failed for " + p.string());
}

fs::path test_data_dir() {
#ifdef VOLSCHED_TEST_DATA_DIR
    return fs::path(VOLSCHED_TEST_DATA_DIR);
#else
    return fs::path("tests") / "data";
#endif
}

::testing::AssertionResult matches_golden(const std::string& actual,
                                          const std::string& golden_name) {
    const fs::path golden = test_data_dir() / golden_name;
    const char* update = std::getenv("VOLSCHED_UPDATE_GOLDEN");
    if (update && *update && std::string(update) != "0") {
        write_file(golden, actual);
        return ::testing::AssertionSuccess()
               << "golden file " << golden.string() << " updated";
    }
    if (!fs::exists(golden))
        return ::testing::AssertionFailure()
               << "golden file " << golden.string()
               << " missing (run with VOLSCHED_UPDATE_GOLDEN=1 to create)";
    const std::string expected = read_file(golden);
    if (actual == expected) return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "output differs from golden " << golden.string()
           << "\n--- expected (" << expected.size() << " bytes) ---\n"
           << expected << "\n--- actual (" << actual.size() << " bytes) ---\n"
           << actual;
}

} // namespace volsched::test
