#include "support/fixtures.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "markov/gen.hpp"
#include "util/rng.hpp"

namespace volsched::test {

markov::MarkovChain always_up_chain() {
    return markov::MarkovChain(markov::TransitionMatrix({{{1.0, 0.0, 0.0},
                                                          {1.0, 0.0, 0.0},
                                                          {1.0, 0.0, 0.0}}}));
}

markov::MarkovChain flaky_chain(double p_ur) {
    return markov::MarkovChain(markov::TransitionMatrix(
        {{{1.0 - p_ur, p_ur, 0.0}, {0.5, 0.5, 0.0}, {0.0, 0.0, 1.0}}}));
}

markov::MarkovChain crashy_chain(double p_ud) {
    return markov::MarkovChain(markov::TransitionMatrix({{{1.0 - p_ud, 0.0, p_ud},
                                                          {0.5, 0.5, 0.0},
                                                          {1.0, 0.0, 0.0}}}));
}

markov::MarkovChain self_split_chain(double self) {
    const double other = (1.0 - self) / 2.0;
    return markov::MarkovChain(
        markov::TransitionMatrix({{{self, other, other},
                                   {other, self, other},
                                   {other, other, self}}}));
}

markov::MarkovChain chain3(double uu, double ur, double ru, double rr,
                           double du, double dr) {
    const double ud = 1.0 - uu - ur;
    const double rd = 1.0 - ru - rr;
    const double dd = 1.0 - du - dr;
    return markov::MarkovChain(markov::TransitionMatrix(
        {{{uu, ur, ud}, {ru, rr, rd}, {du, dr, dd}}}));
}

RecipeSetup recipe_setup(int p, int ncom, int wmin, std::uint64_t seed) {
    RecipeSetup s;
    util::Rng rng(seed);
    s.platform.ncom = ncom;
    s.platform.t_data = wmin;
    s.platform.t_prog = 5 * wmin;
    for (int q = 0; q < p; ++q)
        s.platform.w.push_back(static_cast<int>(
            rng.uniform_int(wmin, static_cast<std::uint64_t>(10) * wmin)));
    s.chains = markov::generate_chains(static_cast<std::size_t>(p), rng);
    return s;
}

sim::EngineConfig audited_config(int iterations, int tasks, int replica_cap,
                                 long long max_slots) {
    sim::EngineConfig cfg;
    cfg.iterations = iterations;
    cfg.tasks_per_iteration = tasks;
    cfg.replica_cap = replica_cap;
    cfg.max_slots = max_slots;
    cfg.audit = true;
    return cfg;
}

exp::Scenario small_scenario(std::uint64_t seed, int p, int tasks) {
    exp::Scenario sc;
    sc.p = p;
    sc.tasks = tasks;
    sc.ncom = 3;
    sc.wmin = 2;
    sc.seed = seed;
    return sc;
}

ViewFixture::ViewFixture(int p, int ncom, int t_prog, int t_data, int w) {
    platform.w.assign(static_cast<std::size_t>(p), w);
    platform.ncom = ncom;
    platform.t_prog = t_prog;
    platform.t_data = t_data;
    procs.resize(static_cast<std::size_t>(p));
    for (auto& pv : procs) {
        pv.state = markov::ProcState::Up;
        pv.has_program = true;
        pv.buffer_free = true;
        pv.w = w;
        pv.delay = 0;
    }
}

ViewFixture::ViewFixture(std::vector<markov::MarkovChain> cs, int w, int ncom,
                         int t_prog, int t_data)
    : ViewFixture(static_cast<int>(cs.size()), ncom, t_prog, t_data, w) {
    set_chains(std::move(cs));
}

void ViewFixture::set_chains(std::vector<markov::MarkovChain> cs) {
    if (cs.size() != procs.size())
        throw std::invalid_argument(
            "ViewFixture::set_chains: chain count does not match processor "
            "count");
    chains = std::move(cs);
    for (std::size_t q = 0; q < procs.size(); ++q)
        procs[q].belief = &chains[q];
}

sim::SchedView& ViewFixture::finalize(int nactive, int remaining) {
    view.platform = &platform;
    view.procs = procs;
    view.slot = 0;
    view.nactive = nactive;
    view.remaining_tasks = remaining;
    return view;
}

std::vector<sim::ProcId> all_procs(int p) {
    std::vector<sim::ProcId> out(static_cast<std::size_t>(p));
    for (int q = 0; q < p; ++q) out[q] = q;
    return out;
}

std::vector<long long> pick_counts(ViewFixture& fixture, sim::Scheduler& sched,
                                   int n, std::uint64_t rng_seed) {
    auto& view = fixture.finalize();
    const auto eligible = all_procs(static_cast<int>(fixture.procs.size()));
    std::vector<int> nq(fixture.procs.size(), 0);
    std::vector<long long> counts(fixture.procs.size(), 0);
    util::Rng rng(rng_seed);
    for (int i = 0; i < n; ++i) {
        const auto pick = sched.select(view, eligible, nq, rng);
        ++counts[static_cast<std::size_t>(pick)];
    }
    return counts;
}

::testing::AssertionResult near_rel(double actual, double expected,
                                    double rel_tol) {
    const double scale =
        std::max({std::fabs(actual), std::fabs(expected), 1.0});
    const double diff = std::fabs(actual - expected);
    if (diff <= rel_tol * scale) return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "actual " << actual << " vs expected " << expected
           << " differs by " << diff << " (allowed " << rel_tol * scale << ")";
}

bool same_matrix(const markov::TransitionMatrix& a,
                 const markov::TransitionMatrix& b) {
    for (int i = 0; i < markov::kNumStates; ++i)
        for (int j = 0; j < markov::kNumStates; ++j) {
            const auto from = static_cast<markov::ProcState>(i);
            const auto to = static_cast<markov::ProcState>(j);
            if (a(from, to) != b(from, to)) return false;
        }
    return true;
}

double chi_squared(std::span<const long long> observed,
                   std::span<const double> expected_probs) {
    if (observed.size() != expected_probs.size() || observed.empty())
        return std::numeric_limits<double>::infinity();
    long long n = 0;
    double mass = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        n += observed[i];
        mass += expected_probs[i];
    }
    if (n == 0 || mass <= 0.0) return std::numeric_limits<double>::infinity();
    double stat = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        const double expect =
            static_cast<double>(n) * (expected_probs[i] / mass);
        if (expect <= 0.0) return std::numeric_limits<double>::infinity();
        const double d = static_cast<double>(observed[i]) - expect;
        stat += d * d / expect;
    }
    return stat;
}

} // namespace volsched::test
