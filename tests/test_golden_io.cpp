/// Golden-file round-trip tests for util/csv and util/table: the exact bytes
/// these writers emit are part of the experiment-harness contract (results
/// are diffed across campaign runs), so renders are pinned against checked-in
/// files under tests/data/.  Regenerate with VOLSCHED_UPDATE_GOLDEN=1.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "support/golden.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace vu = volsched::util;
namespace vt = volsched::test;

namespace {

/// The CSV every heuristic-sweep campaign writes: heuristic, cell
/// parameters, and summary statistics — including cells that need RFC-4180
/// quoting.
std::string sample_csv() {
    std::ostringstream os;
    vu::CsvWriter csv(os, {"heuristic", "p", "wmin", "mean_makespan", "note"});
    csv.row({"emct*", vu::CsvWriter::cell(static_cast<std::size_t>(20)),
             vu::CsvWriter::cell(static_cast<long long>(1)),
             vu::CsvWriter::cell(1234.5), "baseline"});
    csv.row({"random2w", "20", "5", vu::CsvWriter::cell(2048.25),
             "volatile, contention-prone"});
    csv.row({"mct", "10", "2", vu::CsvWriter::cell(0.125),
             "says \"fast\"\nand wraps"});
    return os.str();
}

std::string sample_table() {
    vu::TextTable t({"heuristic", "avg dfb", "worst dfb"});
    t.align_right(1);
    t.align_right(2);
    t.add_row({"emct*", vu::TextTable::num(1.04), vu::TextTable::num(1.37)});
    t.add_row({"mct", vu::TextTable::num(1.18), vu::TextTable::num(2.5, 1)});
    t.add_row({"random", vu::TextTable::num(3.0, 0), vu::TextTable::num(9.99)});
    return t.render("Table 3 (excerpt)");
}

} // namespace

TEST(GoldenCsv, SweepResultRenderIsStable) {
    EXPECT_TRUE(vt::matches_golden(sample_csv(), "sweep_results.csv"));
}

TEST(GoldenCsv, RoundTripsThroughDisk) {
    // What the writer produced must survive a disk round trip byte-for-byte
    // (no newline translation, quoting preserved).
    const std::string rendered = sample_csv();
    vt::TempDir tmp;
    const auto path = tmp.file("results.csv");
    vt::write_file(path, rendered);
    EXPECT_EQ(vt::read_file(path), rendered);
}

TEST(GoldenTable, PaperTableRenderIsStable) {
    EXPECT_TRUE(vt::matches_golden(sample_table(), "table3_excerpt.txt"));
}

TEST(GoldenTable, RoundTripsThroughDisk) {
    const std::string rendered = sample_table();
    vt::TempDir tmp;
    const auto path = tmp.file("table.txt");
    vt::write_file(path, rendered);
    EXPECT_EQ(vt::read_file(path), rendered);
}

TEST(Golden, MissingGoldenFileFailsWithHint) {
    // Force comparison mode: under VOLSCHED_UPDATE_GOLDEN=1 the helper would
    // otherwise create the deliberately-missing file and pass.
    const char* saved = std::getenv("VOLSCHED_UPDATE_GOLDEN");
    const std::string saved_value = saved ? saved : "";
    ::unsetenv("VOLSCHED_UPDATE_GOLDEN");
    const auto result = vt::matches_golden("x", "does_not_exist.golden");
    if (saved) ::setenv("VOLSCHED_UPDATE_GOLDEN", saved_value.c_str(), 1);
    EXPECT_FALSE(result);
    EXPECT_NE(std::string(result.message()).find("VOLSCHED_UPDATE_GOLDEN"),
              std::string::npos);
}

TEST(Golden, TempDirIsCreatedAndRemoved) {
    std::filesystem::path kept;
    {
        vt::TempDir tmp;
        kept = tmp.path();
        EXPECT_TRUE(std::filesystem::is_directory(kept));
        vt::write_file(tmp.file("nested/dir/file.txt"), "payload");
        EXPECT_EQ(vt::read_file(tmp.file("nested/dir/file.txt")), "payload");
    }
    EXPECT_FALSE(std::filesystem::exists(kept));
}
